// Command nvmecr-comd runs the CoMD proxy application over a chosen
// storage system on the simulated paper testbed, printing checkpoint
// times, efficiency, recovery time, and progress rate — a command-line
// version of the paper's application evaluation (§IV-H).
//
// Usage:
//
//	nvmecr-comd -system nvme-cr -ranks 448 -checkpoints 10
//	nvmecr-comd -system glusterfs -ranks 112
//
// With -tcp-verify the simulated run is followed by a functional pass:
// one rank's checkpoint is replayed through a multi-queue-pair HostPool
// against a real in-process TCP NVMe-oF target and read back verified,
// reporting wall-clock (not simulated) bandwidth.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/nvme-cr/nvmecr/internal/balancer"
	"github.com/nvme-cr/nvmecr/internal/baseline"
	"github.com/nvme-cr/nvmecr/internal/comd"
	"github.com/nvme-cr/nvmecr/internal/core"
	"github.com/nvme-cr/nvmecr/internal/fabric"
	"github.com/nvme-cr/nvmecr/internal/metrics"
	"github.com/nvme-cr/nvmecr/internal/microfs"
	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/mpi"
	"github.com/nvme-cr/nvmecr/internal/nvme"
	"github.com/nvme-cr/nvmecr/internal/nvmeof"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/topology"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

func main() {
	system := flag.String("system", "nvme-cr", "storage system: nvme-cr, orangefs, glusterfs")
	ranks := flag.Int("ranks", 112, "MPI processes")
	ckpts := flag.Int("checkpoints", 3, "checkpoint phases")
	mb := flag.Int64("mb", 156, "checkpoint MiB per rank per phase")
	strong := flag.Bool("strong", false, "strong scaling (fixed total problem) instead of weak")
	tcpVerify := flag.Bool("tcp-verify", false, "replay one rank's checkpoint over a real TCP NVMe-oF pool afterwards")
	tcpQP := flag.Int("tcp-qp", 4, "queue pairs for the -tcp-verify pool")
	flag.Parse()

	cluster, err := topology.New(topology.PaperTestbed())
	if err != nil {
		log.Fatal(err)
	}
	env := sim.NewEnv()
	params := model.Default()
	fab := fabric.New(env, cluster, params.Net)
	world, err := mpi.NewWorld(env, cluster, *ranks)
	if err != nil {
		log.Fatal(err)
	}

	var cfg comd.Config
	if *strong {
		cfg = comd.StrongScaling(*ranks)
	} else {
		cfg = comd.WeakScaling()
		cfg.CheckpointBytesPerRank = *mb * model.MB
	}
	cfg.Checkpoints = *ckpts

	clients := make([]vfs.Client, *ranks)
	app, err := comd.New(world, clients, nil, cfg)
	if err != nil {
		log.Fatal(err)
	}

	var rt *core.Runtime
	switch *system {
	case "nvme-cr":
		var devices []balancer.StorageDevice
		for _, sn := range cluster.StorageNodes() {
			devices = append(devices, balancer.StorageDevice{
				Node: sn, Device: nvme.New(env, sn.Name, params.SSD, false),
			})
		}
		rt, err = core.NewRuntime(env, world, fab, devices, core.Options{
			Mode: core.RemoteSPDK, Features: microfs.AllFeatures(),
			Background: true, SSDs: len(devices),
		})
		if err != nil {
			log.Fatal(err)
		}
	case "orangefs", "glusterfs":
		var nodes []*topology.Node
		var devs []*nvme.Device
		for _, sn := range cluster.StorageNodes() {
			nodes = append(nodes, sn)
			devs = append(devs, nvme.New(env, sn.Name, params.SSD, false))
		}
		backend, err := baseline.NewBackend(env, fab, nodes, devs)
		if err != nil {
			log.Fatal(err)
		}
		var fs *baseline.DistFS
		if *system == "orangefs" {
			fs = baseline.NewOrangeFS(backend, params)
		} else {
			fs = baseline.NewGlusterFS(backend, params)
		}
		for i := 0; i < *ranks; i++ {
			clients[i] = fs.NewClient(world.Node(i))
		}
	default:
		log.Fatalf("unknown system %q", *system)
	}

	var recovery time.Duration
	errs := make([]error, *ranks)
	world.Launch(func(r *mpi.Rank, p *sim.Proc) {
		me := r.ID()
		if rt != nil {
			c, err := rt.InitRank(p, r)
			if err != nil {
				errs[me] = err
				return
			}
			clients[me] = c
		}
		if err := app.RankBody(r, p); err != nil {
			errs[me] = err
			return
		}
		if err := app.Recover(r, p, &recovery); err != nil {
			errs[me] = err
			return
		}
		if rt != nil {
			errs[me] = rt.Finalize(p, r)
		}
	})
	if _, err := env.Run(); err != nil {
		log.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			log.Fatalf("rank %d: %v", i, e)
		}
	}

	res := app.Result()
	peak := params.SSD.WriteBW * 8
	fmt.Printf("%s: %d ranks, %d checkpoints of %d MiB/rank\n",
		*system, *ranks, *ckpts, cfg.CheckpointBytesPerRank>>20)
	for i, d := range res.CheckpointTimes {
		bw := metrics.Bandwidth(res.BytesPerCheckpoint, d)
		fmt.Printf("  checkpoint %d: %10v  %7.2f GB/s  efficiency %.3f\n",
			i, d.Round(time.Microsecond), bw/1e9, metrics.Efficiency(bw, peak))
	}
	fmt.Printf("  recovery: %v; compute %v; progress rate %.3f\n",
		recovery.Round(time.Millisecond), res.ComputeTime.Round(time.Millisecond), res.ProgressRate())

	if *tcpVerify {
		if err := verifyOverTCP(cfg.CheckpointBytesPerRank, *tcpQP); err != nil {
			log.Fatalf("tcp-verify: %v", err)
		}
	}
}

// verifyOverTCP replays one rank's checkpoint through a HostPool
// against a real loopback TCP target: the functional counterpart of
// the simulated numbers above, over actual sockets.
func verifyOverTCP(ckptBytes int64, queuePairs int) error {
	tgt := nvmeof.NewTarget()
	if err := tgt.AddNamespace(1, nvmeof.NewMemNamespace(ckptBytes+model.MB)); err != nil {
		return err
	}
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer tgt.Close()
	pool, err := nvmeof.DialPool(addr, 1, nvmeof.PoolConfig{
		QueuePairs:     queuePairs,
		CommandTimeout: 30 * time.Second,
	})
	if err != nil {
		return err
	}
	defer pool.Close()

	const chunk = 256 * model.KB
	payload := make([]byte, chunk)
	for i := range payload {
		payload[i] = byte(i)
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, 0)
	var errMu sync.Mutex
	sem := make(chan struct{}, 2*queuePairs)
	for off := int64(0); off < ckptBytes; off += chunk {
		n := chunk
		if off+n > ckptBytes {
			n = ckptBytes - off
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(off, n int64) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := pool.WriteAt(off, payload[:n]); err != nil {
				errMu.Lock()
				errs = append(errs, err)
				errMu.Unlock()
			}
		}(off, n)
	}
	wg.Wait()
	if len(errs) > 0 {
		return errs[0]
	}
	if err := pool.Flush(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	for off := int64(0); off < ckptBytes; off += chunk {
		n := chunk
		if off+n > ckptBytes {
			n = ckptBytes - off
		}
		got, err := pool.ReadAt(off, n)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload[:n]) {
			return fmt.Errorf("read-back mismatch at offset %d", off)
		}
	}
	bw := metrics.Bandwidth(ckptBytes, elapsed)
	fmt.Printf("  tcp-verify: %d MiB over %d queue pairs in %v (%.2f GB/s wall clock), read back ok\n",
		ckptBytes>>20, queuePairs, elapsed.Round(time.Millisecond), bw/1e9)
	for _, st := range pool.Snapshot() {
		fmt.Printf("    qp %d: %d commands, %d errors, %d reconnects\n",
			st.ID, st.Commands, st.Errors, st.Reconnects)
	}
	return nil
}
