// Command nvmecr-fsck checks the consistency of a microfs partition on
// a live TCP NVMe-oF target: it reads the metadata snapshot and the
// provenance log over the wire, verifies CRCs, dry-runs the recovery
// replay, and reports what a restarted runtime would see.
//
// Usage (against a target started with nvmecrd or examples/nvmeof):
//
//	nvmecr-fsck -addr 127.0.0.1:4420 -nsid 1 [-base 0] [-size N]
//	            [-log-mb 4] [-snap-mb 64] [-hugeblock 32768]
//	            [-qp 2] [-timeout 30s]
//
// The flags must match the runtime configuration that wrote the
// partition (region sizes define where the log and snapshot live).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/nvme-cr/nvmecr/internal/microfs"
	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/nvmeof"
	"github.com/nvme-cr/nvmecr/internal/sim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4420", "target address")
	nsid := flag.Uint("nsid", 1, "namespace id")
	base := flag.Int64("base", 0, "partition base offset")
	size := flag.Int64("size", 0, "partition size (0 = whole namespace)")
	logMB := flag.Int64("log-mb", 4, "provenance log region MiB")
	snapMB := flag.Int64("snap-mb", 64, "snapshot region MiB")
	hugeblock := flag.Int64("hugeblock", 32*model.KB, "hugeblock bytes")
	qp := flag.Int("qp", 2, "queue pairs to the target")
	timeout := flag.Duration("timeout", 30*time.Second, "per-command deadline (0 disables)")
	flag.Parse()

	// A pool rather than a single queue pair: fsck is all idempotent
	// READs, so transient target hiccups retry transparently.
	h, err := nvmeof.DialPool(*addr, uint32(*nsid), nvmeof.PoolConfig{
		QueuePairs:     *qp,
		CommandTimeout: *timeout,
	})
	if err != nil {
		log.Fatalf("nvmecr-fsck: %v", err)
	}
	defer h.Close()
	sz := *size
	if sz == 0 {
		sz = h.NamespaceSize() - *base
	}
	pl, err := nvmeof.NewTCPPlane(h, *base, sz)
	if err != nil {
		log.Fatalf("nvmecr-fsck: %v", err)
	}

	env := sim.NewEnv()
	var rep *microfs.Report
	var checkErr error
	env.Go("fsck", func(p *sim.Proc) {
		rep, checkErr = microfs.Check(p, env, pl, microfs.Config{
			Host:           model.Default().Host,
			Features:       microfs.AllFeatures(),
			HugeblockBytes: *hugeblock,
			LogBytes:       *logMB * model.MB,
			SnapBytes:      *snapMB * model.MB,
		})
	})
	if _, err := env.Run(); err != nil {
		log.Fatalf("nvmecr-fsck: %v", err)
	}
	if checkErr != nil {
		fmt.Fprintf(os.Stderr, "nvmecr-fsck: partition is NOT recoverable: %v\n", checkErr)
		os.Exit(1)
	}
	fmt.Print(rep.String())
}
