package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/telemetry"
)

// rebalanceEvent builds one rebalance.transition event the way it
// round-trips through JSON: numeric attributes decode as float64.
func rebalanceEvent(wallNS int64, migration, child, group float64, from, to, spare string, copied float64, reason string) telemetry.Event {
	return telemetry.Event{
		Name:   "rebalance.transition",
		WallNS: wallNS,
		Attrs: map[string]any{
			"migration": migration, "child": child, "group": group,
			"from": from, "to": to, "spare": spare,
			"copied": copied, "reason": reason,
		},
	}
}

func TestPrintRebalanceTimeline(t *testing.T) {
	base := int64(1_000_000_000)
	events := []telemetry.Event{
		{Name: "health.transition", WallNS: base - 1000}, // ignored
		rebalanceEvent(base, 1, 3, 1, "", "draining", "", 0, "health:dead"),
		rebalanceEvent(base+int64(5*time.Millisecond), 1, 3, 1, "draining", "copying", "127.0.0.1:7777", 0, "health:dead"),
		rebalanceEvent(base+int64(40*time.Millisecond), 1, 3, 1, "copying", "cutover", "127.0.0.1:7777", 1048576, "health:dead"),
		rebalanceEvent(base+int64(41*time.Millisecond), 1, 3, 1, "cutover", "done", "127.0.0.1:7777", 1048576, "health:dead"),
	}
	var buf bytes.Buffer
	printRebalance(&buf, events)
	out := buf.String()

	for _, want := range []string{
		"Rebalance migrations",
		"migration 1 member 3 (group 1): new -> draining",
		"draining -> copying spare=127.0.0.1:7777",
		"copying -> cutover spare=127.0.0.1:7777 copied=1048576",
		"cutover -> done",
		"+40ms",
		"reason=health:dead",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q in:\n%s", want, out)
		}
	}
}

func TestPrintRebalanceEmptyTraceSilent(t *testing.T) {
	var buf bytes.Buffer
	printRebalance(&buf, []telemetry.Event{{Name: "health.transition"}})
	if buf.Len() != 0 {
		t.Fatalf("no rebalance events must print nothing, got %q", buf.String())
	}
}
