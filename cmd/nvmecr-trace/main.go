// Command nvmecr-trace analyses JSON Lines traces written by the
// harness (nvmecr-bench -trace) or any telemetry.Tracer sink.
//
// Usage:
//
//	nvmecr-trace [-top K] [-epochs] [-chrome file] [trace.jsonl]
//
// With no file argument the trace is read from stdin. The default
// output is a span summary (count and duration quantiles per span
// name), the per-opcode NVMe-oF phase breakdown (wire / queue /
// service p50/p95/p99, from nvmeof.cmd spans), the top-K slowest
// commands annotated with any flight-recorder context dumped into the
// trace (nvmeof.flight events), a timeline of health-engine state
// transitions (health.transition events) with their incident bundles
// for forensics, and a timeline of stripe-migration state transitions
// (rebalance.transition events). -epochs adds per-rank checkpoint-epoch
// critical paths derived from the virtual-clock microfs spans. -chrome
// exports the whole trace as Chrome trace_event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing: the wall and virtual
// clocks become separate processes, ranks become threads.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"github.com/nvme-cr/nvmecr/internal/telemetry"
)

func main() {
	topK := flag.Int("top", 10, "how many slowest commands to list")
	epochs := flag.Bool("epochs", false, "print per-rank checkpoint-epoch critical paths")
	chrome := flag.String("chrome", "", "export Chrome trace_event JSON to `file` (Perfetto)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nvmecr-trace [-top K] [-epochs] [-chrome file] [trace.jsonl]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	events, err := readTrace(in)
	if err != nil {
		fatal(err)
	}
	if len(events) == 0 {
		fatal(fmt.Errorf("no events in trace"))
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fatal(err)
		}
		if err := writeChrome(f, events); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d trace events to %s\n", len(events), *chrome)
		return
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	printSummary(w, events)
	printPhases(w, events)
	printSlowest(w, events, *topK)
	printFlightDumps(w, events)
	printHealth(w, events)
	printRebalance(w, events)
	if *epochs {
		printEpochs(w, events)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nvmecr-trace: %v\n", err)
	os.Exit(1)
}

// readTrace decodes one telemetry.Event per line, skipping blanks.
func readTrace(r io.Reader) ([]telemetry.Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24) // flight dumps make long lines
	var events []telemetry.Event
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev telemetry.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	return events, sc.Err()
}

// dur returns the event's span duration on whichever clock it carries.
func dur(ev telemetry.Event) time.Duration {
	if ev.WallDurNS > 0 {
		return time.Duration(ev.WallDurNS)
	}
	return time.Duration(ev.VirtEndNS - ev.VirtStartNS)
}

// quantile returns the q-th quantile (0..1) of sorted durations by
// linear interpolation between closest ranks.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[lo+1]-sorted[lo]))
}

// attrFloat reads a numeric attribute (JSON numbers decode as float64).
func attrFloat(ev telemetry.Event, key string) (float64, bool) {
	v, ok := ev.Attrs[key]
	if !ok {
		return 0, false
	}
	f, ok := v.(float64)
	return f, ok
}

func attrString(ev telemetry.Event, key string) string {
	s, _ := ev.Attrs[key].(string)
	return s
}

// printSummary prints count and duration quantiles per span name.
func printSummary(w io.Writer, events []telemetry.Event) {
	byName := map[string][]time.Duration{}
	var names []string
	for _, ev := range events {
		if ev.Kind != "span" {
			continue
		}
		if _, ok := byName[ev.Name]; !ok {
			names = append(names, ev.Name)
		}
		byName[ev.Name] = append(byName[ev.Name], dur(ev))
	}
	sort.Strings(names)
	fmt.Fprintf(w, "Span summary (%d events)\n", len(events))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  span\tcount\ttotal\tp50\tp95\tp99\n")
	for _, name := range names {
		ds := byName[name]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		var total time.Duration
		for _, d := range ds {
			total += d
		}
		fmt.Fprintf(tw, "  %s\t%d\t%v\t%v\t%v\t%v\n", name, len(ds),
			total.Round(time.Microsecond),
			quantile(ds, 0.50).Round(time.Nanosecond),
			quantile(ds, 0.95).Round(time.Nanosecond),
			quantile(ds, 0.99).Round(time.Nanosecond))
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// phaseKeys are the nvmeof.cmd span attributes holding the breakdown.
var phaseKeys = []string{"wire_ns", "queue_ns", "service_ns"}

// printPhases prints the per-opcode phase breakdown from nvmeof.cmd
// spans: for each opcode, p50/p95/p99 of wire, queue, and service time.
func printPhases(w io.Writer, events []telemetry.Event) {
	type phaseSet map[string][]time.Duration
	byOp := map[string]phaseSet{}
	var ops []string
	for _, ev := range events {
		if ev.Name != "nvmeof.cmd" {
			continue
		}
		op := attrString(ev, "op")
		if op == "" {
			op = "?"
		}
		ps, ok := byOp[op]
		if !ok {
			ps = phaseSet{}
			byOp[op] = ps
			ops = append(ops, op)
		}
		for _, key := range phaseKeys {
			if f, ok := attrFloat(ev, key); ok {
				ps[key] = append(ps[key], time.Duration(f))
			}
		}
		ps["rtt"] = append(ps["rtt"], dur(ev))
	}
	if len(ops) == 0 {
		fmt.Fprintf(w, "NVMe-oF command phases: no nvmeof.cmd spans in trace\n\n")
		return
	}
	sort.Strings(ops)
	fmt.Fprintf(w, "NVMe-oF command phases\n")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  op\tphase\tcount\tp50\tp95\tp99\n")
	for _, op := range ops {
		ps := byOp[op]
		for _, key := range append([]string{"rtt"}, phaseKeys...) {
			ds := ps[key]
			if len(ds) == 0 {
				continue
			}
			sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
			fmt.Fprintf(tw, "  %s\t%s\t%d\t%v\t%v\t%v\n", op, key, len(ds),
				quantile(ds, 0.50).Round(time.Nanosecond),
				quantile(ds, 0.95).Round(time.Nanosecond),
				quantile(ds, 0.99).Round(time.Nanosecond))
		}
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// flightIndex maps trace IDs (as emitted: 16-hex-digit strings) to the
// flight records that mention them, collected from nvmeof.flight dumps.
func flightIndex(events []telemetry.Event) map[string][]map[string]any {
	idx := map[string][]map[string]any{}
	for _, ev := range events {
		if ev.Name != "nvmeof.flight" {
			continue
		}
		recs, _ := ev.Attrs["records"].([]any)
		for _, r := range recs {
			rec, ok := r.(map[string]any)
			if !ok {
				continue
			}
			if id, ok := rec["trace_id"].(float64); ok && id != 0 {
				key := fmt.Sprintf("%016x", uint64(id))
				idx[key] = append(idx[key], rec)
			}
		}
	}
	return idx
}

// printSlowest lists the top-K slowest commands. When the trace holds
// nvmeof.cmd spans they rank; otherwise the slowest spans of any name
// rank, so purely simulated traces still get a useful hot list. Each
// slow command is annotated with flight-recorder context when a dump
// in the trace mentions its trace ID.
func printSlowest(w io.Writer, events []telemetry.Event, k int) {
	if k <= 0 {
		return
	}
	var cmds []telemetry.Event
	for _, ev := range events {
		if ev.Name == "nvmeof.cmd" {
			cmds = append(cmds, ev)
		}
	}
	title := "Slowest commands"
	if len(cmds) == 0 {
		title = "Slowest spans"
		for _, ev := range events {
			if ev.Kind == "span" {
				cmds = append(cmds, ev)
			}
		}
	}
	if len(cmds) == 0 {
		return
	}
	sort.Slice(cmds, func(i, j int) bool { return dur(cmds[i]) > dur(cmds[j]) })
	if len(cmds) > k {
		cmds = cmds[:k]
	}
	flights := flightIndex(events)
	fmt.Fprintf(w, "%s (top %d)\n", title, len(cmds))
	for i, ev := range cmds {
		fmt.Fprintf(w, "  %2d. %-16s %v", i+1, ev.Name, dur(ev).Round(time.Nanosecond))
		if op := attrString(ev, "op"); op != "" {
			fmt.Fprintf(w, "  op=%s", op)
		}
		if ev.Rank >= 0 {
			fmt.Fprintf(w, "  rank=%d", ev.Rank)
		}
		if qp, ok := attrFloat(ev, "qp"); ok {
			fmt.Fprintf(w, "  qp=%d", int(qp))
		}
		for _, key := range phaseKeys {
			if f, ok := attrFloat(ev, key); ok {
				fmt.Fprintf(w, "  %s=%v", key[:len(key)-3], time.Duration(f))
			}
		}
		fmt.Fprintln(w)
		if id := attrString(ev, "trace_id"); id != "" {
			for _, rec := range flights[id] {
				fmt.Fprintf(w, "      flight: %s\n", flightLine(rec))
			}
		}
	}
	fmt.Fprintln(w)
}

// flightLine renders one JSON-decoded FlightRecord compactly.
func flightLine(rec map[string]any) string {
	op, _ := rec["op"].(string)
	s := op
	if cid, ok := rec["cid"].(float64); ok {
		s += fmt.Sprintf(" cid=%d", int(cid))
	}
	if qp, ok := rec["qp"].(float64); ok {
		s += fmt.Sprintf(" qp=%d", int(qp))
	}
	if st, ok := rec["status"].(float64); ok {
		s += fmt.Sprintf(" status=%d", int(st))
	}
	if el, ok := rec["elapsed_ns"].(float64); ok {
		s += fmt.Sprintf(" elapsed=%v", time.Duration(el))
	}
	if errStr, ok := rec["err"].(string); ok && errStr != "" {
		s += " err=" + errStr
	}
	return s
}

// printHealth lists the health engine's state transitions in trace
// order: when each subject moved, where to, at what score, and which
// incident bundle (if any) captured the moment.
func printHealth(w io.Writer, events []telemetry.Event) {
	var base int64
	for _, ev := range events {
		if ev.Name != "health.transition" {
			continue
		}
		if base == 0 {
			base = ev.WallNS
			fmt.Fprintf(w, "Health transitions\n")
		}
		at := time.Duration(ev.WallNS - base)
		line := fmt.Sprintf("  +%-12v %s/%s: %s -> %s (score %.3f)",
			at.Round(time.Microsecond),
			attrString(ev, "kind"), attrString(ev, "name"),
			attrString(ev, "from"), attrString(ev, "to"),
			mustFloat(ev, "score"))
		if inc := attrString(ev, "incident"); inc != "" {
			line += "  incident=" + inc
		}
		fmt.Fprintln(w, line)
	}
	if base != 0 {
		fmt.Fprintln(w)
	}
}

func mustFloat(ev telemetry.Event, key string) float64 {
	f, _ := attrFloat(ev, key)
	return f
}

// printRebalance lists the migration plane's state transitions in
// trace order: each migration's member, state chain, spare label, and
// bytes copied so far — the timeline of a live stripe move, from drain
// through cutover (or rollback).
func printRebalance(w io.Writer, events []telemetry.Event) {
	var base int64
	for _, ev := range events {
		if ev.Name != "rebalance.transition" {
			continue
		}
		if base == 0 {
			base = ev.WallNS
			fmt.Fprintf(w, "Rebalance migrations\n")
		}
		at := time.Duration(ev.WallNS - base)
		from := attrString(ev, "from")
		if from == "" {
			from = "new"
		}
		line := fmt.Sprintf("  +%-12v migration %d member %d (group %d): %s -> %s",
			at.Round(time.Microsecond),
			int64(mustFloat(ev, "migration")),
			int64(mustFloat(ev, "child")),
			int64(mustFloat(ev, "group")),
			from, attrString(ev, "to"))
		if spare := attrString(ev, "spare"); spare != "" {
			line += " spare=" + spare
		}
		if copied := mustFloat(ev, "copied"); copied > 0 {
			line += fmt.Sprintf(" copied=%d", int64(copied))
		}
		if reason := attrString(ev, "reason"); reason != "" {
			line += " reason=" + reason
		}
		fmt.Fprintln(w, line)
	}
	if base != 0 {
		fmt.Fprintln(w)
	}
}

// printFlightDumps summarises every flight-recorder dump in the trace:
// why it fired, which queue pair, and the tail of its ring.
func printFlightDumps(w io.Writer, events []telemetry.Event) {
	n := 0
	for _, ev := range events {
		if ev.Name != "nvmeof.flight" {
			continue
		}
		if n == 0 {
			fmt.Fprintf(w, "Flight-recorder dumps\n")
		}
		n++
		recs, _ := ev.Attrs["records"].([]any)
		qp, _ := attrFloat(ev, "qp")
		fmt.Fprintf(w, "  qp=%d reason=%s (%d records)\n",
			int(qp), attrString(ev, "reason"), len(recs))
		// The ring is oldest-first; the tail is what led up to the dump.
		tail := recs
		if len(tail) > 5 {
			tail = tail[len(tail)-5:]
		}
		for _, r := range tail {
			if rec, ok := r.(map[string]any); ok {
				fmt.Fprintf(w, "      %s\n", flightLine(rec))
			}
		}
	}
	if n > 0 {
		fmt.Fprintln(w)
	}
}

// epoch is one checkpoint interval on one rank: the spans between two
// durability barriers (microfs.fsync or microfs.snapshot completions).
type epoch struct {
	rank      int
	start     time.Duration // virtual
	end       time.Duration
	writeNS   time.Duration
	writes    int
	barrier   string
	barrierNS time.Duration
}

// printEpochs derives per-rank checkpoint epochs from the virtual
// microfs spans and prints each epoch's critical path: how much of the
// epoch was write time vs the closing durability barrier.
func printEpochs(w io.Writer, events []telemetry.Event) {
	byRank := map[int][]telemetry.Event{}
	var ranks []int
	for _, ev := range events {
		if ev.Kind != "span" || ev.Rank < 0 || ev.VirtEndNS == 0 {
			continue
		}
		if _, ok := byRank[ev.Rank]; !ok {
			ranks = append(ranks, ev.Rank)
		}
		byRank[ev.Rank] = append(byRank[ev.Rank], ev)
	}
	sort.Ints(ranks)
	fmt.Fprintf(w, "Checkpoint epochs (virtual clock)\n")
	total := 0
	for _, rank := range ranks {
		spans := byRank[rank]
		sort.Slice(spans, func(i, j int) bool { return spans[i].VirtStartNS < spans[j].VirtStartNS })
		var eps []epoch
		cur := epoch{rank: rank, start: time.Duration(spans[0].VirtStartNS)}
		for _, ev := range spans {
			switch ev.Name {
			case "microfs.write":
				cur.writeNS += dur(ev)
				cur.writes++
			case "microfs.fsync", "microfs.snapshot":
				cur.barrier = ev.Name
				cur.barrierNS = dur(ev)
				cur.end = time.Duration(ev.VirtEndNS)
				// Barriers on concurrent files can end at the same
				// virtual instant; they are one epoch boundary, not an
				// empty epoch each.
				if cur.end > cur.start || cur.writes > 0 {
					eps = append(eps, cur)
				}
				cur = epoch{rank: rank, start: time.Duration(ev.VirtEndNS)}
			}
		}
		for i, ep := range eps {
			span := ep.end - ep.start
			other := span - ep.writeNS - ep.barrierNS
			if other < 0 {
				other = 0
			}
			fmt.Fprintf(w, "  rank %d epoch %d: %v  (write %v x%d, %s %v, other %v)\n",
				rank, i, span.Round(time.Microsecond),
				ep.writeNS.Round(time.Microsecond), ep.writes,
				ep.barrier, ep.barrierNS.Round(time.Microsecond),
				other.Round(time.Microsecond))
			total++
		}
	}
	if total == 0 {
		fmt.Fprintf(w, "  no rank-scoped virtual spans with durability barriers\n")
	}
	fmt.Fprintln(w)
}

// chromeEvent is one Chrome trace_event record ("X" complete spans,
// "i" instants, "M" metadata). Timestamps are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	TsUS float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Str  string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

const (
	pidWall = 1 // wall-clock events (real TCP paths, harness markers)
	pidVirt = 2 // virtual-clock events (deterministic simulation)
)

// writeChrome exports the trace in Chrome trace_event JSON (the
// "traceEvents" object form), loadable in Perfetto or chrome://tracing.
// Wall and virtual clocks become separate processes so their
// incomparable timebases never share an axis; ranks become threads
// (rank -1, the fabric, is thread 0 keyed by queue pair when known).
func writeChrome(w io.Writer, events []telemetry.Event) error {
	out := []chromeEvent{
		{Name: "process_name", Ph: "M", Pid: pidWall, Args: map[string]any{"name": "wall clock"}},
		{Name: "process_name", Ph: "M", Pid: pidVirt, Args: map[string]any{"name": "virtual clock"}},
	}
	// Rebase wall timestamps so the trace starts near zero; Perfetto
	// renders absolute UnixNano-derived stamps far off-screen.
	var wallBase int64
	for _, ev := range events {
		if ev.WallNS > 0 && (wallBase == 0 || ev.WallNS < wallBase) {
			wallBase = ev.WallNS
		}
	}
	for _, ev := range events {
		isVirt := ev.VirtEndNS > 0 || (ev.Kind == "span" && ev.WallDurNS == 0)
		ce := chromeEvent{Name: ev.Name, Args: ev.Attrs}
		if isVirt {
			ce.Pid = pidVirt
			ce.Tid = ev.Rank
			ce.TsUS = float64(ev.VirtStartNS) / 1e3
		} else {
			ce.Pid = pidWall
			ce.Tid = ev.Rank
			if ev.Rank < 0 {
				ce.Tid = 0
				if qp, ok := attrFloat(ev, "qp"); ok {
					ce.Tid = int(qp)
				}
			}
			ce.TsUS = float64(ev.WallNS-wallBase) / 1e3
		}
		if ev.Kind == "span" {
			ce.Ph = "X"
			ce.Dur = float64(dur(ev)) / 1e3
		} else {
			ce.Ph = "i"
			ce.Str = "t" // thread-scoped instant
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}
