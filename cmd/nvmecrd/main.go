// Command nvmecrd is the standalone TCP NVMe-oF target daemon: the
// storage-node half of the functional remote data plane. It exports one
// or more in-memory namespaces and serves queue pairs until interrupted.
//
// Usage:
//
//	nvmecrd -addr 127.0.0.1:4420 -namespaces 4 -size-mb 256
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"github.com/nvme-cr/nvmecr/internal/health"
	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/nvmeof"
	"github.com/nvme-cr/nvmecr/internal/qos"
	"github.com/nvme-cr/nvmecr/internal/rebalance"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4420", "listen address")
	count := flag.Int("namespaces", 2, "number of namespaces to export (NSIDs 1..n)")
	sizeMB := flag.Int64("size-mb", 256, "size of each namespace in MiB")
	latency := flag.Duration("latency", 0, "simulated per-command device latency (e.g. 20us; 0 = none)")
	statsEvery := flag.Duration("stats", 10*time.Second, "stats reporting interval (0 disables)")
	qpStats := flag.Bool("qp-stats", false, "also report per-queue-pair stats each interval")
	admin := flag.String("admin", "", "admin HTTP listen address for /metrics, /health, /healthz, pprof (empty disables)")
	tenants := flag.String("tenants", "", "comma-separated tenant mounts `name[:quota-mb]`; each gets /tenants/<name> on an in-memory backend, with nvmecr_mount_* series on /metrics and the table on /tenants")
	qosOps := flag.Float64("qos-ops", 0, "per-tenant admission budget in ops/sec for -tenants mounts (0 = unlimited)")
	qosBytes := flag.Float64("qos-bytes", 0, "per-tenant admission budget in bytes/sec for -tenants mounts (0 = unlimited)")
	healthEvery := flag.Duration("health-interval", time.Second, "health-engine evaluation cadence (0 disables the engine)")
	incidentDir := flag.String("incident-dir", "", "directory for black-box incident bundles on SLO breach or suspect verdicts (empty disables capture)")
	mirror := flag.String("mirror", "", "comma-separated member target addresses to aggregate as a mirrored striped plane (mirror-head mode; count must be a multiple of -mirror-replicas)")
	mirrorReplicas := flag.Int("mirror-replicas", 2, "replicas per mirror group in -mirror mode")
	mirrorUnitKB := flag.Int64("mirror-unit-kb", 64, "stripe unit in KiB in -mirror mode")
	mirrorJournal := flag.String("mirror-journal", "nvmecr-rebalance.journal", "migration journal path in -mirror mode (interrupted migrations resume or roll back from it on restart)")
	flag.Parse()

	tgt := nvmeof.NewTarget()
	for i := 1; i <= *count; i++ {
		ns := nvmeof.NewMemNamespaceWithLatency(*sizeMB*model.MB, *latency)
		if err := tgt.AddNamespace(uint32(i), ns); err != nil {
			log.Fatal(err)
		}
	}
	var mounts *vfs.Namespace
	var qosCtrl *qos.Controller
	if *tenants != "" {
		var lim qos.TenantLimits
		if *qosOps > 0 || *qosBytes > 0 {
			qosCtrl = qos.NewController(tgt.Telemetry())
			lim = qos.TenantLimits{OpsPerSec: *qosOps, BytesPerSec: *qosBytes}
		}
		ns, err := buildTenantNamespace(tgt.Telemetry(), *tenants, qosCtrl, lim)
		if err != nil {
			log.Fatal(err)
		}
		mounts = ns
		for _, m := range ns.Mounts() {
			qb, _ := m.Quota()
			if qb > 0 {
				log.Printf("nvmecrd: tenant %s mounted at %s (quota %d MiB)", m.Name(), m.Path(), qb>>20)
			} else {
				log.Printf("nvmecrd: tenant %s mounted at %s (no quota)", m.Name(), m.Path())
			}
		}
		if qosCtrl != nil {
			log.Printf("nvmecrd: qos admission on tenant mounts (%g ops/s, %g bytes/s per tenant)", *qosOps, *qosBytes)
		}
	} else if *qosOps > 0 || *qosBytes > 0 {
		log.Fatal("nvmecrd: -qos-ops/-qos-bytes require -tenants")
	}
	bound, err := tgt.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("nvmecrd: serving %d namespaces of %d MiB on %s", *count, *sizeMB, bound)

	var eng *health.Engine
	if *healthEvery > 0 {
		eng = health.New(health.Config{
			Interval: *healthEvery,
			Registry: tgt.Telemetry(),
			Capture:  health.CaptureConfig{Dir: *incidentDir},
		})
		if _, err := health.BindTarget(eng, tgt, bound, nil); err != nil {
			log.Fatal(err)
		}
		if mounts != nil {
			if _, err := health.BindNamespace(eng, mounts, nil, nil); err != nil {
				log.Fatal(err)
			}
		}
		eng.Start()
		defer eng.Close()
		if *incidentDir != "" {
			log.Printf("nvmecrd: health engine every %v, incidents to %s", *healthEvery, *incidentDir)
		} else {
			log.Printf("nvmecrd: health engine every %v", *healthEvery)
		}
	}
	var head *mirrorHead
	if *mirror != "" {
		head, err = startMirror(eng, tgt.Telemetry(), *mirror, *mirrorReplicas, *mirrorUnitKB, *mirrorJournal)
		if err != nil {
			log.Fatal(err)
		}
		defer head.Close()
		geo := head.plane.Geometry()
		log.Printf("nvmecrd: mirror head over %d members (%d groups x %d replicas, unit %d KiB, %d MiB usable), journal %s",
			head.plane.Children(), geo.Groups(), geo.Replicas, *mirrorUnitKB, head.plane.Size()>>20, *mirrorJournal)
	}
	if *admin != "" {
		var mig *rebalance.Migrator
		if head != nil {
			mig = head.migrator
		}
		adminAddr, err := startAdmin(*admin, tgt, mounts, qosCtrl, eng, mig)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("nvmecrd: admin on http://%s (/metrics, /health, /healthz, /debug/pprof)", adminAddr)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	shutdown := func() {
		fmt.Println()
		snap := tgt.Snapshot()
		log.Printf("nvmecrd: shutting down, draining %d queue pairs", len(snap.QueuePairs))
		tgt.Close() // waits for in-flight commands to complete
		log.Print("nvmecrd: drained")
	}
	if *statsEvery > 0 {
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				snap := tgt.Snapshot()
				log.Printf("nvmecrd: %d queue pairs, %d commands, %d errors, %d MiB in, %d MiB out, p99 %v",
					len(snap.QueuePairs), snap.Commands, snap.Errors,
					snap.BytesIn>>20, snap.BytesOut>>20, snap.Latency.P99)
				if *qpStats {
					for _, qp := range snap.QueuePairs {
						log.Printf("nvmecrd:   qp %d (%s, ns %d): %d commands, %d errors, %d MiB in, %d MiB out",
							qp.ID, qp.Remote, qp.NSID, qp.Commands, qp.Errors, qp.BytesIn>>20, qp.BytesOut>>20)
					}
				}
			case <-stop:
				shutdown()
				return
			}
		}
	}
	<-stop
	shutdown()
}
