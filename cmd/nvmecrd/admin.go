// Admin HTTP listener: live metrics, health, and profiling for a
// running target. Off by default; enable with -admin host:port. The
// listener binds before serving so a bad address fails fast at startup.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"github.com/nvme-cr/nvmecr/internal/health"
	"github.com/nvme-cr/nvmecr/internal/nvmeof"
	"github.com/nvme-cr/nvmecr/internal/qos"
	"github.com/nvme-cr/nvmecr/internal/rebalance"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

// healthzDoc is the structured /healthz response: the health engine's
// per-layer rollup plus the target's headline counters.
type healthzDoc struct {
	Status     health.State                  `json:"status"`
	Layers     map[string]health.LayerHealth `json:"layers"`
	QueuePairs int                           `json:"queue_pairs"`
	Commands   uint64                        `json:"commands"`
	Errors     uint64                        `json:"errors"`
}

// startAdmin serves /metrics (Prometheus text exposition of the
// target's registry), /healthz (per-layer JSON rollup; plaintext kept
// behind ?format=text for legacy probes), /health (the engine's full
// per-subject verdicts), /debug/flight (the flight recorder's last
// commands per queue pair), /tenants (the mount table, when -tenants
// is set), /qos (per-tenant admission buckets, when -qos-ops or
// -qos-bytes is set), /rebalance (migration progress, and POST
// ?child=N to force a move, when -mirror is set), and the standard
// pprof endpoints on addr. It returns the bound address (useful with
// ":0"). eng may be nil (-health-interval 0): /health answers 404 and
// /healthz rolls up with no layers. mig may be nil (no -mirror):
// /rebalance answers 404. ctrl may be nil (no QoS): /qos answers 404.
func startAdmin(addr string, tgt *nvmeof.Target, mounts *vfs.Namespace, ctrl *qos.Controller, eng *health.Engine, mig *rebalance.Migrator) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("admin listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := tgt.Telemetry().WritePrometheus(w); err != nil {
			log.Printf("nvmecrd: /metrics: %v", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		snap := tgt.Snapshot()
		if r.URL.Query().Get("format") == "text" {
			fmt.Fprintf(w, "ok\nqueue_pairs %d\ncommands %d\nerrors %d\n",
				len(snap.QueuePairs), snap.Commands, snap.Errors)
			return
		}
		doc := healthzDoc{
			Layers:     map[string]health.LayerHealth{},
			QueuePairs: len(snap.QueuePairs),
			Commands:   snap.Commands,
			Errors:     snap.Errors,
		}
		if eng != nil {
			roll := eng.Rollup()
			doc.Status, doc.Layers = roll.Status, roll.Layers
		}
		w.Header().Set("Content-Type", "application/json")
		if doc.Status >= health.Suspect {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			log.Printf("nvmecrd: /healthz: %v", err)
		}
	})
	if eng != nil {
		mux.Handle("/health", health.Handler(eng))
	}
	if mig != nil {
		mux.Handle("/rebalance", mig.Handler())
	}
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if q := r.URL.Query().Get("qp"); q != "" {
			qp, err := strconv.Atoi(q)
			if err != nil {
				http.Error(w, "bad qp: "+err.Error(), http.StatusBadRequest)
				return
			}
			if err := enc.Encode(tgt.Flight().QueuePair(qp)); err != nil {
				log.Printf("nvmecrd: /debug/flight: %v", err)
			}
			return
		}
		if err := enc.Encode(tgt.Flight().Snapshot()); err != nil {
			log.Printf("nvmecrd: /debug/flight: %v", err)
		}
	})
	if mounts != nil {
		mux.HandleFunc("/tenants", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(tenantTable(mounts)); err != nil {
				log.Printf("nvmecrd: /tenants: %v", err)
			}
		})
	}
	if ctrl != nil {
		mux.HandleFunc("/qos", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(ctrl.Snapshot()); err != nil {
				log.Printf("nvmecrd: /qos: %v", err)
			}
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("nvmecrd: admin server: %v", err)
		}
	}()
	return ln.Addr().String(), nil
}
