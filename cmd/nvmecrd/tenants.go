// Tenant mount table: -tenants provisions a vfs.Namespace inside the
// daemon, one mount per tenant on an in-memory backend with an optional
// byte quota and, when -qos-ops/-qos-bytes are set, a per-tenant
// admission budget. The mounts' nvmecr_mount_* and nvmecr_qos_* series
// live in the target's telemetry registry, so /metrics exposes
// per-tenant usage alongside the wire counters, /tenants reports the
// mount table as JSON, and /qos reports the admission buckets.
package main

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/qos"
	"github.com/nvme-cr/nvmecr/internal/telemetry"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

// buildTenantNamespace parses "name[:quota-mb],..." and mounts each
// tenant at /tenants/<name>. When ctrl is non-nil every mount gets its
// own admission bucket with limits lim; quota is still consulted first,
// so a tenant at both limits sees ErrNoSpace, not ErrAdmission.
func buildTenantNamespace(reg *telemetry.Registry, spec string, ctrl *qos.Controller, lim qos.TenantLimits) (*vfs.Namespace, error) {
	ns := vfs.NewNamespace(reg)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, quota := part, int64(0)
		if i := strings.IndexByte(part, ':'); i >= 0 {
			name = part[:i]
			mb, err := strconv.ParseInt(part[i+1:], 10, 64)
			if err != nil || mb <= 0 {
				return nil, fmt.Errorf("tenant %q: quota must be a positive MiB count", part)
			}
			quota = mb * model.MB
		}
		if name == "" || strings.ContainsAny(name, "/ ") {
			return nil, fmt.Errorf("tenant name %q: must be non-empty without '/' or spaces", name)
		}
		var adm vfs.Admission
		if ctrl != nil {
			adm = ctrl.Tenant(name, lim)
		}
		if _, err := ns.Mount(vfs.MountConfig{
			Path:       "/tenants/" + name,
			Backend:    vfs.NewMemBackend(),
			Name:       name,
			QuotaBytes: quota,
			Admission:  adm,
		}); err != nil {
			return nil, fmt.Errorf("tenant %q: %w", name, err)
		}
	}
	if len(ns.Mounts()) == 0 {
		return nil, fmt.Errorf("-tenants %q: no tenants", spec)
	}
	return ns, nil
}

// tenantStatus is one /tenants row.
type tenantStatus struct {
	Name       string `json:"name"`
	Path       string `json:"path"`
	QuotaBytes int64  `json:"quota_bytes,omitempty"`
	BytesUsed  int64  `json:"bytes_used"`
	InodesUsed int64  `json:"inodes_used"`
}

func tenantTable(ns *vfs.Namespace) []tenantStatus {
	var out []tenantStatus
	for _, m := range ns.Mounts() {
		b, i := m.Usage()
		qb, _ := m.Quota()
		out = append(out, tenantStatus{
			Name: m.Name(), Path: m.Path(), QuotaBytes: qb,
			BytesUsed: b, InodesUsed: i,
		})
	}
	return out
}
