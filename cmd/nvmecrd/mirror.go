// Mirror-head mode: with -mirror, nvmecrd also acts as an initiator
// that aggregates remote member targets into one R-way mirrored
// striped plane (RAID-10 shape), wires a health subject per member
// (TCP liveness probes through the engine's hysteresis), and runs the
// rebalance migration plane: when a member is demoted to dead, its
// stripes are re-replicated onto a freshly dialed spare while traffic
// continues, journaled so an interrupted move resumes or rolls back on
// restart. Progress is served on the admin listener at /rebalance and
// in /metrics (nvmecr_rebalance_* series).
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"time"

	"github.com/nvme-cr/nvmecr/internal/health"
	"github.com/nvme-cr/nvmecr/internal/nvmeof"
	"github.com/nvme-cr/nvmecr/internal/plane"
	"github.com/nvme-cr/nvmecr/internal/rebalance"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/telemetry"
)

// mirrorHead is the daemon's initiator-side aggregate: the mirrored
// plane, its migrator, and the member bookkeeping behind both.
type mirrorHead struct {
	plane    *nvmeof.StripedPlane
	migrator *rebalance.Migrator
	journal  *rebalance.Journal
	addrs    []string
}

// dialMirrorMember connects one member target and wraps it as a plane
// partition covering [0, size). The pool rides the plane so Close
// tears the sockets down with it.
func dialMirrorMember(addr string, size int64) (plane.Plane, error) {
	pool, err := nvmeof.DialPool(addr, 1, nvmeof.PoolConfig{
		QueuePairs:       2,
		CommandTimeout:   2 * time.Second,
		MaxRetries:       4,
		RetryBackoff:     10 * time.Millisecond,
		ReconnectBackoff: 50 * time.Millisecond,
		Batch:            nvmeof.BatchConfig{Enabled: true, MergeWrites: true},
	})
	if err != nil {
		return nil, fmt.Errorf("mirror member %s: %w", addr, err)
	}
	if size <= 0 {
		size = pool.NamespaceSize()
	}
	tp, err := nvmeof.NewTCPPlane(pool, 0, size)
	if err != nil {
		pool.Close()
		return nil, fmt.Errorf("mirror member %s: %w", addr, err)
	}
	return &memberPlane{TCPPlane: tp, pool: pool}, nil
}

// memberPlane pairs the plane partition with its connection pool so
// closing the plane closes the sockets.
type memberPlane struct {
	*nvmeof.TCPPlane
	pool *nvmeof.HostPool
}

func (m *memberPlane) Close() error { return m.pool.Close() }

var _ io.Closer = (*memberPlane)(nil)

// downPlane holds the slot of a member that was unreachable at boot.
// The slot is marked down before the plane serves traffic, so these
// methods are never reached while it stands in; a successful migration
// replaces it with a freshly dialed spare.
type downPlane struct {
	addr string
	size int64
}

func (d downPlane) Size() int64 { return d.size }
func (d downPlane) Write(*sim.Proc, int64, int64, []byte, int64) error {
	return fmt.Errorf("mirror member %s down since boot", d.addr)
}
func (d downPlane) Read(*sim.Proc, int64, int64, int64) ([]byte, error) {
	return nil, fmt.Errorf("mirror member %s down since boot", d.addr)
}
func (d downPlane) Flush(*sim.Proc) error {
	return fmt.Errorf("mirror member %s down since boot", d.addr)
}

// startMirror dials every member in spec (comma-separated addresses,
// count a multiple of replicas), builds the mirrored plane, opens the
// migration journal, recovers any interrupted migration, and — when
// the health engine is running — registers one probed subject per
// member and arms a dead-triggered migration watch on each. Member
// partitions are clamped to the smallest exported namespace so the
// geometry stays uniform.
func startMirror(eng *health.Engine, reg *telemetry.Registry, spec string, replicas int, unitKB int64, journalPath string) (*mirrorHead, error) {
	addrs := strings.Split(spec, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
		if addrs[i] == "" {
			return nil, fmt.Errorf("mirror: empty member address in %q", spec)
		}
	}
	if replicas < 1 {
		return nil, fmt.Errorf("mirror: replicas %d < 1", replicas)
	}
	if len(addrs)%replicas != 0 {
		return nil, fmt.Errorf("mirror: %d members is not a multiple of %d replicas", len(addrs), replicas)
	}
	if unitKB <= 0 {
		return nil, fmt.Errorf("mirror: unit %d KiB", unitKB)
	}

	// First pass sizes every member; the second dials the uniform
	// partition the geometry needs. A member that refuses the dial does
	// NOT fail the boot — surviving a down member is what the mirror is
	// for: its slot is held by a placeholder, marked down before any
	// traffic, and re-admitted by migration once the target is back.
	size := int64(0)
	down := make([]bool, len(addrs))
	for i, addr := range addrs {
		probe, err := dialMirrorMember(addr, 0)
		if err != nil {
			log.Printf("nvmecrd: mirror member %d (%s) unreachable at boot, starting degraded: %v", i, addr, err)
			down[i] = true
			continue
		}
		if s := probe.Size(); size == 0 || s < size {
			size = s
		}
		probe.(io.Closer).Close()
	}
	if size == 0 {
		return nil, fmt.Errorf("mirror: no member of %q reachable", spec)
	}
	children := make([]plane.Plane, len(addrs))
	for i, addr := range addrs {
		if down[i] {
			children[i] = downPlane{addr: addr, size: size}
			continue
		}
		child, err := dialMirrorMember(addr, size)
		if err != nil {
			log.Printf("nvmecrd: mirror member %d (%s) lost between sizing and dial, starting degraded: %v", i, addr, err)
			down[i] = true
			children[i] = downPlane{addr: addr, size: size}
			continue
		}
		children[i] = child
	}
	sp, err := nvmeof.NewMirroredPlane(children, unitKB<<10, replicas)
	if err != nil {
		return nil, err
	}
	for i := range addrs {
		if down[i] {
			if err := sp.SetChildDown(i); err != nil {
				sp.Close()
				return nil, err
			}
		}
	}
	sp.Instrument(reg)

	journal, err := rebalance.OpenJournal(journalPath)
	if err != nil {
		sp.Close()
		return nil, err
	}
	redial := func(addr string) (plane.Plane, error) { return dialMirrorMember(addr, size) }
	mig, err := rebalance.New(rebalance.Config{
		Plane:    sp,
		Journal:  journal,
		Registry: reg,
		// A member's spare is a fresh dial of the same address: the
		// operator restarts (or replaces) the target behind it and the
		// migrator re-replicates onto the empty namespace. The address
		// doubles as the journal label so recovery re-dials the same
		// endpoint.
		Spare: func(child int) (plane.Plane, string, error) {
			addr := addrs[child]
			p, err := redial(addr)
			return p, addr, err
		},
		Restore: redial,
	})
	if err != nil {
		sp.Close()
		journal.Close()
		return nil, err
	}
	// Finish or roll back any migration a previous process left open
	// before the plane serves traffic.
	if sts, err := mig.Recover(); err != nil {
		log.Printf("nvmecrd: mirror recovery: %v", err)
	} else {
		for _, st := range sts {
			log.Printf("nvmecrd: recovered migration %d (member %d): %s", st.ID, st.Child, st.State)
		}
	}

	head := &mirrorHead{plane: sp, migrator: mig, journal: journal, addrs: addrs}
	if eng != nil {
		if err := head.watch(eng); err != nil {
			sp.Close()
			journal.Close()
			return nil, err
		}
	}
	return head, nil
}

// watch registers one health subject per member — TCP liveness probes
// run through the engine's hysteresis — and arms a migration on each
// member's demotion to dead. Because the spare is a fresh dial of the
// member's own address, the dead-triggered migration usually cannot
// dial it (the target is exactly what just went unreachable) and rolls
// back; a second subscription therefore re-arms the move on the
// subject's promotion back out of dead, when a fresh dial can succeed.
func (h *mirrorHead) watch(eng *health.Engine) error {
	probe := func(addr string) bool {
		c, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
		if err != nil {
			return false
		}
		c.Close()
		return true
	}
	for i, addr := range h.addrs {
		i, addr := i, addr
		subj, err := eng.Register(health.SubjectConfig{
			Kind: "mirror-member",
			Name: addr,
			Collect: func(*telemetry.RegistrySnapshot) health.Sample {
				return health.Sample{Live: probe(addr)}
			},
		})
		if err != nil {
			return err
		}
		h.migrator.Watch(subj, i, health.Dead, func(st rebalance.Status, err error) {
			if err != nil {
				log.Printf("nvmecrd: migration of member %d (%s): %v", i, addr, err)
				return
			}
			log.Printf("nvmecrd: member %d (%s) migrated: %s, %d bytes", i, addr, st.State, st.Copied)
		})
		subj.Subscribe(func(old, new health.State, _ health.Verdict) {
			if old < health.Dead || new >= health.Dead {
				return
			}
			// The target is reachable again. If the member's slot is
			// still down — the dead-triggered migration rolled back
			// because its spare dial hit the unreachable target — rerun
			// the move now that the dial can land on the restarted
			// (empty or stale) namespace.
			if h.plane.State(i) != nvmeof.ChildDown {
				return
			}
			go func() {
				st, err := h.migrator.Migrate(i, "health:recovered")
				if err != nil {
					if errors.Is(err, rebalance.ErrMigrationActive) {
						return
					}
					log.Printf("nvmecrd: re-admission of member %d (%s): %v", i, addr, err)
					return
				}
				log.Printf("nvmecrd: member %d (%s) re-admitted: %s, %d bytes", i, addr, st.State, st.Copied)
			}()
		})
	}
	return nil
}

// Close tears down the plane (and with it every member pool) and the
// journal.
func (h *mirrorHead) Close() error {
	err := h.plane.Close()
	if jerr := h.journal.Close(); err == nil {
		err = jerr
	}
	return err
}
