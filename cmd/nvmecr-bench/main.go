// Command nvmecr-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	nvmecr-bench [-quick] [-trace file] [experiment ...]
//
// With no arguments it runs every experiment (fig1, fig7a-d, fig8a-b,
// fig9strong, fig9weak, tab1, tab2). -quick shrinks scales so the whole
// suite completes in seconds; the default reproduces paper scale (448
// processes, hundreds of GB of simulated checkpoint IO) and takes
// correspondingly longer. -trace appends every experiment's span
// events as JSON Lines to file, for analysis with nvmecr-trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/nvme-cr/nvmecr/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale (seconds instead of minutes)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	trace := flag.String("trace", "", "write span events as JSON Lines to `file` (see nvmecr-trace)")
	camp := flag.String("campaign", "", "run the multi-tenant QoS campaign and write its JSON report to `file` (- for stdout)")
	campSeed := flag.Int64("campaign-seed", 1, "seed for -campaign")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nvmecr-bench [-quick] [-list] [-trace file] [-campaign file] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "experiments: %s\n", strings.Join(harness.IDs(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, id := range harness.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *camp != "" {
		out := os.Stdout
		if *camp != "-" {
			f, err := os.Create(*camp)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nvmecr-bench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := runCampaign(out, *campSeed); err != nil {
			fmt.Fprintf(os.Stderr, "nvmecr-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	opts := harness.Options{Quick: *quick}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmecr-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		opts.Trace = f
	}
	ids := flag.Args()
	if len(ids) == 0 {
		ids = harness.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		tab, err := harness.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmecr-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		tab.Print(os.Stdout)
		fmt.Printf("   (%s wall)\n\n", time.Since(start).Round(time.Millisecond))
	}
}
