package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/nvme-cr/nvmecr/internal/qos/campaign"
)

// campaignReport is the BENCH_qos.json payload Gate 6 parses: the
// victim-tail and fairness numbers from the two canonical QoS
// scenarios, plus enough context to read the file standalone.
type campaignReport struct {
	Seed int64 `json:"seed"`

	// Duel: victim + one admission-limited aggressor, no faults.
	VictimP999Ms     float64 `json:"victim_p999_ms"`
	SoloP999Ms       float64 `json:"solo_p999_ms"`
	VictimP999Ratio  float64 `json:"victim_p999_ratio"`
	VictimCompleted  uint64  `json:"victim_completed"`
	AggressorAdmit   uint64  `json:"aggressor_admitted"`
	AggressorRejects uint64  `json:"aggressor_rejected"`

	// Four identical tenants splitting the same targets.
	JainEqual4 float64 `json:"jain_equal4"`

	Violations []string `json:"violations"`
}

// runCampaign executes the bench QoS campaign (Gate 6): the duel
// scenario for the victim p99.9 ratio and the equal-4 scenario for
// Jain's fairness index, writing the JSON report to w. Any invariant
// violation from either run lands in the report and fails the caller.
func runCampaign(w io.Writer, seed int64) error {
	duel, err := campaign.Run(campaign.DuelConfig(seed))
	if err != nil {
		return fmt.Errorf("campaign duel: %w", err)
	}
	equal, err := campaign.Run(campaign.EqualConfig(seed, 4))
	if err != nil {
		return fmt.Errorf("campaign equal4: %w", err)
	}

	victim := duel.Tenant("victim")
	agg := duel.Tenant("aggressor")
	rep := campaignReport{
		Seed:            seed,
		VictimP999Ms:    float64(victim.P999) / float64(time.Millisecond),
		SoloP999Ms:      float64(duel.SoloVictimP999) / float64(time.Millisecond),
		VictimCompleted: victim.Completed,
		JainEqual4:      equal.Jain,
	}
	if agg != nil {
		rep.AggressorAdmit = agg.Admitted
		rep.AggressorRejects = agg.Rejected
	}
	if duel.SoloVictimP999 > 0 {
		rep.VictimP999Ratio = float64(victim.P999) / float64(duel.SoloVictimP999)
	}
	rep.Violations = append(rep.Violations, duel.Violations...)
	rep.Violations = append(rep.Violations, equal.Violations...)
	if rep.Violations == nil {
		rep.Violations = []string{}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if len(rep.Violations) > 0 {
		return fmt.Errorf("campaign: %d invariant violations (seed %d): %s", len(rep.Violations), seed, rep.Violations[0])
	}
	fmt.Fprintf(os.Stderr, "campaign: victim p99.9 %.2fms (solo %.2fms, ratio %.2f), jain(4) %.3f\n",
		rep.VictimP999Ms, rep.SoloP999Ms, rep.VictimP999Ratio, rep.JainEqual4)
	return nil
}
