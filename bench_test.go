package nvmecr

// One benchmark per table and figure in the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Each
// macro benchmark regenerates its artifact through the harness at quick
// scale (the nvmecr-bench binary runs the same experiments at full
// paper scale) and reports the headline quantity as a custom metric.

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/cache"
	"github.com/nvme-cr/nvmecr/internal/harness"
	"github.com/nvme-cr/nvmecr/internal/incremental"
	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/nvme"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/spdk"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

// runExperiment drives one harness experiment per iteration.
func runExperiment(b *testing.B, id string) *harness.Table {
	b.Helper()
	var tab *harness.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = harness.Run(id, harness.Options{Quick: true})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	return tab
}

func cellFloat(b *testing.B, tab *harness.Table, row, col int) float64 {
	b.Helper()
	s := strings.TrimSuffix(strings.TrimPrefix(tab.Rows[row][col], "+"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell %d,%d = %q", row, col, tab.Rows[row][col])
	}
	return v
}

// BenchmarkFig1WeakScalingBandwidth regenerates Figure 1.
func BenchmarkFig1WeakScalingBandwidth(b *testing.B) {
	tab := runExperiment(b, "fig1")
	last := len(tab.Rows) - 1
	b.ReportMetric(cellFloat(b, tab, last, 1), "orangefs-GB/s")
	b.ReportMetric(cellFloat(b, tab, last, 2), "glusterfs-GB/s")
}

// BenchmarkFig7aHugeblockSweep regenerates Figure 7a.
func BenchmarkFig7aHugeblockSweep(b *testing.B) {
	tab := runExperiment(b, "fig7a")
	for i, row := range tab.Rows {
		if row[0] == "4K" {
			b.ReportMetric(cellFloat(b, tab, i, 2), "pct-worse-4K-vs-32K")
		}
	}
}

// BenchmarkFig7bLoadImbalance regenerates Figure 7b.
func BenchmarkFig7bLoadImbalance(b *testing.B) {
	tab := runExperiment(b, "fig7b")
	b.ReportMetric(cellFloat(b, tab, 0, 3), "glusterfs-CoV-low-procs")
	b.ReportMetric(cellFloat(b, tab, 0, 1), "nvmecr-CoV")
}

// BenchmarkFig7cDirectAccess regenerates Figure 7c.
func BenchmarkFig7cDirectAccess(b *testing.B) {
	tab := runExperiment(b, "fig7c")
	last := len(tab.Rows) - 1
	cr := cellFloat(b, tab, last, 1)
	xfs := cellFloat(b, tab, last, 3)
	ext4 := cellFloat(b, tab, last, 4)
	b.ReportMetric((xfs-cr)/xfs*100, "improve-vs-xfs-%")
	b.ReportMetric((ext4-cr)/ext4*100, "improve-vs-ext4-%")
}

// BenchmarkFig7dDrilldown regenerates Figure 7d.
func BenchmarkFig7dDrilldown(b *testing.B) {
	tab := runExperiment(b, "fig7d")
	last := len(tab.Rows) - 1
	base := cellFloat(b, tab, last, 1)
	full := cellFloat(b, tab, last, 4)
	b.ReportMetric((base-full)/base*100, "total-improvement-%")
}

// BenchmarkFig8aNVMfOverhead regenerates Figure 8a.
func BenchmarkFig8aNVMfOverhead(b *testing.B) {
	tab := runExperiment(b, "fig8a")
	last := len(tab.Rows) - 1
	b.ReportMetric(cellFloat(b, tab, last, 3), "nvmf-overhead-%")
}

// BenchmarkFig8bCreateThroughput regenerates Figure 8b.
func BenchmarkFig8bCreateThroughput(b *testing.B) {
	tab := runExperiment(b, "fig8b")
	last := len(tab.Rows) - 1
	b.ReportMetric(cellFloat(b, tab, last, 4), "x-vs-orangefs")
	b.ReportMetric(cellFloat(b, tab, last, 5), "x-vs-glusterfs")
}

// BenchmarkFig9StrongScaling regenerates Figures 9a/9b.
func BenchmarkFig9StrongScaling(b *testing.B) {
	tab := runExperiment(b, "fig9strong")
	last := len(tab.Rows) - 1
	b.ReportMetric(cellFloat(b, tab, last, 1), "nvmecr-ckpt-efficiency")
}

// BenchmarkFig9WeakScaling regenerates Figures 9c/9d.
func BenchmarkFig9WeakScaling(b *testing.B) {
	tab := runExperiment(b, "fig9weak")
	last := len(tab.Rows) - 1
	b.ReportMetric(cellFloat(b, tab, last, 1), "nvmecr-ckpt-efficiency")
	b.ReportMetric(cellFloat(b, tab, last, 4), "nvmecr-rec-efficiency")
}

// BenchmarkTab1MetadataOverhead regenerates Table I.
func BenchmarkTab1MetadataOverhead(b *testing.B) {
	tab := runExperiment(b, "tab1")
	for i, row := range tab.Rows {
		if row[0] == "nvme-cr" {
			b.ReportMetric(cellFloat(b, tab, i, 2), "nvmecr-meta-MB")
		}
	}
}

// BenchmarkTab2MultiLevel regenerates Table II.
func BenchmarkTab2MultiLevel(b *testing.B) {
	tab := runExperiment(b, "tab2")
	for i, row := range tab.Rows {
		if row[0] == "nvme-cr" {
			b.ReportMetric(cellFloat(b, tab, i, 3), "nvmecr-progress-rate")
		}
	}
}

// Ablation benches (DESIGN.md §5): single-knob comparisons on the public
// Job API.

// jobDump runs one checkpoint dump (chunked write calls, so per-op
// software costs are visible) and returns the aggregate bandwidth plus
// the jobs' runtime for follow-up inspection.
func jobDump(b *testing.B, opts Options, ranks int, perRank, chunk int64) (float64, *Job) {
	b.Helper()
	job, err := NewJob(JobConfig{Ranks: ranks, Options: opts})
	if err != nil {
		b.Fatal(err)
	}
	elapsed, err := job.Run(func(ctx *RankCtx) error {
		f, err := ctx.FS.Open(ctx.Proc, fmt.Sprintf("/r%04d", ctx.Rank.ID()), vfs.O_WRONLY|vfs.O_CREATE|vfs.O_EXCL, 0o644)
		if err != nil {
			return err
		}
		for off := int64(0); off < perRank; off += chunk {
			if _, err := f.WriteN(ctx.Proc, chunk); err != nil {
				return err
			}
		}
		if err := f.Fsync(ctx.Proc); err != nil {
			return err
		}
		return f.Close(ctx.Proc)
	})
	if err != nil {
		b.Fatal(err)
	}
	return float64(int64(ranks)*perRank) / elapsed.Seconds(), job
}

// BenchmarkAblationCoalescing compares log pressure with and without log
// record coalescing: the records a recovery must replay shrink by orders
// of magnitude with coalescing (the paper's instant-recovery claim).
func BenchmarkAblationCoalescing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := Options{Mode: RemoteSPDK, Features: AllFeatures()}
		without := with
		without.NoCoalesce = true
		_, jobWith := jobDump(b, with, 8, 32*model.MB, 256*model.KB)
		_, jobWithout := jobDump(b, without, 8, 32*model.MB, 256*model.KB)
		recs := func(j *Job) float64 {
			var total int64
			for r := 0; r < 8; r++ {
				total += j.Runtime.Client(r).Log().Records()
			}
			return float64(total)
		}
		b.ReportMetric(recs(jobWith), "log-records-coalescing")
		b.ReportMetric(recs(jobWithout), "log-records-no-coalescing")
	}
}

// BenchmarkAblationPrivateNamespace compares private namespaces against
// the emulated global-namespace lock under a create-heavy load.
func BenchmarkAblationPrivateNamespace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(global bool) float64 {
			opts := Options{Mode: RemoteSPDK, Features: AllFeatures(), GlobalNamespace: global}
			job, err := NewJob(JobConfig{Ranks: 32, Options: opts})
			if err != nil {
				b.Fatal(err)
			}
			const files = 32
			elapsed, err := job.Run(func(ctx *RankCtx) error {
				for j := 0; j < files; j++ {
					f, err := ctx.FS.Open(ctx.Proc, fmt.Sprintf("/f%03d", j), vfs.O_WRONLY|vfs.O_CREATE|vfs.O_EXCL, 0o644)
					if err != nil {
						return err
					}
					if err := f.Close(ctx.Proc); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			return float64(32*files) / elapsed.Seconds()
		}
		b.ReportMetric(run(false), "creates/s-private")
		b.ReportMetric(run(true), "creates/s-global")
	}
}

// BenchmarkAblationProvenance compares compact operation logging against
// physical journaling (small chunked writes make the journal traffic
// visible).
func BenchmarkAblationProvenance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prov := Options{Mode: RemoteSPDK, Features: AllFeatures()}
		physical := prov
		physical.Features = Features{Hugeblocks: true} // provenance off
		bwProv, _ := jobDump(b, prov, 4, 64*model.MB, 256*model.KB)
		bwPhys, _ := jobDump(b, physical, 4, 64*model.MB, 256*model.KB)
		b.ReportMetric(bwProv/1e9, "GB/s-provenance")
		b.ReportMetric(bwPhys/1e9, "GB/s-physical-journal")
	}
}

// BenchmarkAblationKernelPath compares the userspace NVMe-oF path to the
// kernel nvme_rdma path at small IO, where per-op kernel costs dominate.
func BenchmarkAblationKernelPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		user := Options{Mode: RemoteSPDK, Features: AllFeatures()}
		kernel := user
		kernel.Mode = RemoteKernel
		bwUser, _ := jobDump(b, user, 4, 16*model.MB, 64*model.KB)
		bwKernel, _ := jobDump(b, kernel, 4, 16*model.MB, 64*model.KB)
		b.ReportMetric(bwUser/1e9, "GB/s-userspace")
		b.ReportMetric(bwKernel/1e9, "GB/s-kernel")
	}
}

// BenchmarkExtensionCacheLayer measures the paper's future-work cache
// layer: repeated restart reads of the same checkpoint, cold versus
// warm.
func BenchmarkExtensionCacheLayer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		params := model.Default()
		dev := nvme.New(env, "ssd", params.SSD, false)
		ns, err := dev.CreateNamespace(1 * model.GB)
		if err != nil {
			b.Fatal(err)
		}
		acct := &vfs.Account{}
		inner, err := spdk.NewPlane(ns, 0, ns.Size(), params.Host, acct)
		if err != nil {
			b.Fatal(err)
		}
		cached, err := cache.New(inner, acct, cache.Config{CapacityBytes: 512 * model.MB})
		if err != nil {
			b.Fatal(err)
		}
		var cold, warm time.Duration
		env.Go("reader", func(p *sim.Proc) {
			inner.Write(p, 0, 256*model.MB, nil, 32*model.KB)
			t0 := p.Now()
			cached.Read(p, 0, 256*model.MB, 32*model.KB)
			cold = p.Now() - t0
			t0 = p.Now()
			cached.Read(p, 0, 256*model.MB, 32*model.KB)
			warm = p.Now() - t0
		})
		if _, err := env.Run(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(256.0/cold.Seconds()/1024, "GB/s-cold-restart")
		b.ReportMetric(256.0/warm.Seconds()/1024, "GB/s-warm-restart")
	}
}

// BenchmarkExtensionIncremental measures hash-based incremental
// checkpointing layered over NVMe-CR: dump volume when 5% of pages
// change per interval.
func BenchmarkExtensionIncremental(b *testing.B) {
	for i := 0; i < b.N; i++ {
		job, err := NewJob(JobConfig{Ranks: 1, Capture: true})
		if err != nil {
			b.Fatal(err)
		}
		var savings float64
		_, err = job.Run(func(ctx *RankCtx) error {
			w := incremental.New(ctx.FS, 4096)
			state := make([]byte, 8*model.MB)
			for round := 0; round < 5; round++ {
				// Dirty ~5% of pages.
				for pg := 0; pg < len(state)/4096; pg += 20 {
					state[pg*4096] = byte(round + 1)
				}
				if _, err := w.Checkpoint(ctx.Proc, "/inc.ckpt", state); err != nil {
					return err
				}
			}
			savings = w.SavingsRatio()
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(savings*100, "pct-pages-skipped")
	}
}

// BenchmarkAblationHugeblocks compares 32 KB hugeblocks against 4 KB
// kernel-style blocks on the same workload.
func BenchmarkAblationHugeblocks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		huge := Options{Mode: RemoteSPDK, Features: AllFeatures()}
		small := Options{Mode: RemoteSPDK, Features: Features{Provenance: true}}
		bwHuge, _ := jobDump(b, huge, 8, 64*model.MB, 1*model.MB)
		bwSmall, _ := jobDump(b, small, 8, 64*model.MB, 1*model.MB)
		b.ReportMetric(bwHuge/1e9, "GB/s-32K")
		b.ReportMetric(bwSmall/1e9, "GB/s-4K")
	}
}
