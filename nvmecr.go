// Package nvmecr is the public API of the NVMe-CR reproduction: a
// scalable ephemeral storage runtime for checkpoint/restart with
// NVMe-over-Fabrics (Gugnani, Li, Lu — IPDPS 2021), together with the
// simulated disaggregated cluster it runs on and every baseline system
// the paper compares against.
//
// The central abstraction is the microfs: a per-process, private-
// namespace, userspace filesystem over a directly-accessed SSD
// partition. A Job wires a whole cluster together — topology, fabric,
// MPI world, storage balancer, NVMe devices — and hands each rank a
// POSIX-like client:
//
//	job, _ := nvmecr.NewJob(nvmecr.JobConfig{Ranks: 64})
//	elapsed, _ := job.Run(func(ctx *nvmecr.RankCtx) error {
//		f, _ := ctx.FS.Open(ctx.Proc, "/ckpt.dat", vfs.O_WRONLY|vfs.O_CREATE|vfs.O_EXCL, 0o644)
//		f.WriteN(ctx.Proc, 64<<20)
//		f.Fsync(ctx.Proc)
//		return f.Close(ctx.Proc)
//	})
//
// Everything runs on a deterministic discrete-event simulation of the
// paper's testbed (see DESIGN.md for the substitution rationale); a real
// TCP NVMe-oF target/host pair (package internal/nvmeof) provides a
// genuine wire-level remote data plane for functional use.
package nvmecr

import (
	"fmt"
	"io"
	"time"

	"github.com/nvme-cr/nvmecr/internal/balancer"
	"github.com/nvme-cr/nvmecr/internal/core"
	"github.com/nvme-cr/nvmecr/internal/fabric"
	"github.com/nvme-cr/nvmecr/internal/harness"
	"github.com/nvme-cr/nvmecr/internal/microfs"
	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/mpi"
	"github.com/nvme-cr/nvmecr/internal/nvme"
	"github.com/nvme-cr/nvmecr/internal/nvmeof"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/telemetry"
	"github.com/nvme-cr/nvmecr/internal/topology"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

// Re-exported core types, so downstream code imports only this package.
type (
	// Params is the calibrated model parameter set.
	Params = model.Params
	// ClusterConfig describes cluster shape.
	ClusterConfig = topology.Config
	// Options configures the runtime (plane mode, features, sizes).
	Options = core.Options
	// Features toggles the paper's individual optimizations.
	Features = microfs.Features
	// Client is the per-rank filesystem interface.
	Client = vfs.Client
	// File is an open file handle.
	File = vfs.File
	// OpenFlags is the POSIX-style open(2) flag bitmask.
	OpenFlags = vfs.OpenFlags
	// FileInfo describes one file or directory.
	FileInfo = vfs.FileInfo
	// PlaneMode selects the data-plane path.
	PlaneMode = core.PlaneMode
	// ExperimentOptions configures harness runs.
	ExperimentOptions = harness.Options
	// ExperimentTable is one reproduced figure/table.
	ExperimentTable = harness.Table
	// Proc is a simulated process handle.
	Proc = sim.Proc
)

// Telemetry (metrics registry, snapshots, and JSONL tracing).
type (
	// Registry is a concurrency-safe metrics registry: counters,
	// gauges, and latency histograms with a Prometheus text
	// exposition. Attach one via Options.Telemetry (simulated jobs) or
	// read the registry every Target/Queue creates for itself.
	Registry = telemetry.Registry
	// MetricLabels distinguishes series of the same metric name.
	MetricLabels = telemetry.Labels
	// Tracer writes a JSONL event stream (one telemetry.Event per
	// line). Attach via Options.Tracer or ExperimentOptions.Trace.
	Tracer = telemetry.Tracer
	// TraceEvent is one point or span in a trace stream.
	TraceEvent = telemetry.Event
	// LatencySnapshot summarizes a latency histogram (count, mean,
	// p50/p95/p99).
	LatencySnapshot = telemetry.LatencySnapshot
	// QueueSnapshot is one initiator queue pair's counters.
	QueueSnapshot = telemetry.HostQPSnapshot
	// TargetSnapshot is a target's aggregate and per-QP counters.
	TargetSnapshot = telemetry.TargetSnapshot
)

// Multi-tenant namespaces (mount table over pluggable backends; see
// docs/vfs.md).
type (
	// Backend is the six-method contract a storage engine implements to
	// be mountable (microfs instances, baselines, MemBackend all do).
	Backend = vfs.Backend
	// Namespace is a mount table dispatching paths to backends by
	// longest-prefix match, with per-mount quotas and telemetry.
	Namespace = vfs.Namespace
	// MountConfig describes one mount: path, backend, quotas, fault
	// plan, telemetry label.
	MountConfig = vfs.MountConfig
	// MountPoint is one live mount (usage, quota, backend accessors).
	MountPoint = vfs.Mount
	// MemBackend is a heap-backed Backend for tests, tooling, and
	// tenants that need no durability.
	MemBackend = vfs.MemBackend
)

// Open flags (Linux ABI encoding; combine with |).
const (
	O_RDONLY = vfs.O_RDONLY
	O_WRONLY = vfs.O_WRONLY
	O_RDWR   = vfs.O_RDWR
	O_CREATE = vfs.O_CREATE
	O_EXCL   = vfs.O_EXCL
	O_TRUNC  = vfs.O_TRUNC
	O_APPEND = vfs.O_APPEND
)

// NewNamespace creates an empty mount table. reg may be nil to skip
// per-mount telemetry.
func NewNamespace(reg *Registry) *Namespace { return vfs.NewNamespace(reg) }

// NewMemBackend creates an empty in-memory backend.
func NewMemBackend() *MemBackend { return vfs.NewMemBackend() }

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry { return telemetry.New() }

// NewTracer creates a tracer writing JSONL events to w.
func NewTracer(w io.Writer) *Tracer { return telemetry.NewTracer(w) }

// Plane modes.
const (
	// RemoteSPDK is the production NVMe-oF userspace path.
	RemoteSPDK = core.RemoteSPDK
	// LocalSPDK accesses a node-local SSD directly.
	LocalSPDK = core.LocalSPDK
	// RemoteKernel is the in-kernel nvme_rdma baseline path.
	RemoteKernel = core.RemoteKernel
	// LocalKernel traps into the kernel for a local SSD.
	LocalKernel = core.LocalKernel
)

// DefaultParams returns the paper-calibrated model constants.
func DefaultParams() Params { return model.Default() }

// PaperTestbed returns the paper's cluster shape (16 compute nodes x 28
// cores, 8 storage nodes x 1 SSD).
func PaperTestbed() ClusterConfig { return topology.PaperTestbed() }

// AllFeatures returns the production feature set (metadata provenance +
// hugeblocks).
func AllFeatures() Features { return microfs.AllFeatures() }

// DefaultOptions returns the production runtime configuration: remote
// NVMe-oF userspace plane, all features, background provenance thread.
// Modify the returned value to diverge from one blessed default instead
// of constructing Options field by field.
func DefaultOptions() Options { return core.DefaultOptions() }

// JobConfig configures NewJob.
type JobConfig struct {
	// Ranks is the number of MPI processes (required).
	Ranks int
	// Topology overrides the cluster shape (default: paper testbed).
	Topology ClusterConfig
	// Params overrides model constants (default: DefaultParams).
	Params *Params
	// Options configures the runtime; the zero value and
	// DefaultOptions() both mean production remote NVMe-oF with all
	// features. Start from DefaultOptions() to override single fields.
	Options Options
	// Capture stores real payload bytes on the simulated devices so
	// files can be read back verbatim (slower; for functional use).
	Capture bool
}

// Job is a fully wired simulated job: cluster, fabric, world, devices,
// and the NVMe-CR runtime.
type Job struct {
	Env     *sim.Env
	Cluster *topology.Cluster
	Fabric  *fabric.Fabric
	World   *mpi.World
	Runtime *core.Runtime
	Devices []balancer.StorageDevice
}

// RankCtx is what each rank's body receives.
type RankCtx struct {
	Rank *mpi.Rank
	Proc *sim.Proc
	// FS is the rank's NVMe-CR client (its private namespace).
	FS *core.Client
}

// NewJob builds a job over a fresh simulated cluster.
func NewJob(cfg JobConfig) (*Job, error) {
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("nvmecr: JobConfig.Ranks must be positive")
	}
	topo := cfg.Topology
	if topo.ComputeNodes == 0 {
		topo = topology.PaperTestbed()
	}
	params := model.Default()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	cluster, err := topology.New(topo)
	if err != nil {
		return nil, err
	}
	env := sim.NewEnv()
	fab := fabric.New(env, cluster, params.Net)
	world, err := mpi.NewWorld(env, cluster, cfg.Ranks)
	if err != nil {
		return nil, err
	}
	var devices []balancer.StorageDevice
	for _, sn := range cluster.StorageNodes() {
		for i := 0; i < sn.SSDs; i++ {
			devices = append(devices, balancer.StorageDevice{
				Node:   sn,
				Device: nvme.New(env, fmt.Sprintf("%s-ssd%d", sn.Name, i), params.SSD, cfg.Capture),
			})
		}
	}
	opts := cfg.Options
	if !opts.IsDefaulted() && opts == (core.Options{}) {
		opts = core.DefaultOptions()
	}
	rt, err := core.NewRuntime(env, world, fab, devices, opts)
	if err != nil {
		return nil, err
	}
	return &Job{
		Env:     env,
		Cluster: cluster,
		Fabric:  fab,
		World:   world,
		Runtime: rt,
		Devices: devices,
	}, nil
}

// Run launches every rank: the runtime initializes (balancer,
// MPI_COMM_CR, partitioning), body executes, and the runtime finalizes.
// It returns the virtual makespan. A Job can be Run once.
func (j *Job) Run(body func(ctx *RankCtx) error) (time.Duration, error) {
	errs := make([]error, j.World.Size())
	j.World.Launch(func(r *mpi.Rank, p *sim.Proc) {
		me := r.ID()
		client, err := j.Runtime.InitRank(p, r)
		if err != nil {
			errs[me] = err
			return
		}
		if err := body(&RankCtx{Rank: r, Proc: p, FS: client}); err != nil {
			errs[me] = err
			return
		}
		errs[me] = j.Runtime.Finalize(p, r)
	})
	end, runErr := j.Env.Run()
	for i, e := range errs {
		if e != nil {
			return end, fmt.Errorf("nvmecr: rank %d: %w", i, e)
		}
	}
	return end, runErr
}

// RunExperiment regenerates one of the paper's tables/figures by id
// (fig1, fig7a..fig7d, fig8a, fig8b, fig9strong, fig9weak, tab1, tab2).
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentTable, error) {
	return harness.Run(id, opts)
}

// Experiments lists the available experiment ids.
func Experiments() []string { return harness.IDs() }

// TCP NVMe-oF (functional remote data plane; see internal/nvmeof).

// Queue is the canonical NVMe-oF initiator: namespace-aware reads,
// writes, and flushes plus a telemetry snapshot, whether backed by one
// queue pair (DialTarget) or a sharded pool (DialTargetPool). Write
// code against Queue; reach for the concrete Host/HostPool types only
// when you need their extra knobs.
type Queue = nvmeof.Queue

// Target is a TCP NVMe-oF target daemon.
type Target = nvmeof.Target

// Host is a single-queue-pair TCP NVMe-oF initiator (advanced; most
// code should hold a Queue).
type Host = nvmeof.Host

// NewTarget creates an empty TCP NVMe-oF target.
func NewTarget() *Target { return nvmeof.NewTarget() }

// NewMemNamespace creates a target-side namespace of the given size.
func NewMemNamespace(size int64) *nvmeof.MemNamespace { return nvmeof.NewMemNamespace(size) }

// DialTarget connects a single queue pair to a TCP target.
func DialTarget(addr string, nsid uint32) (Queue, error) { return nvmeof.Dial(addr, nsid) }

// HostPool is a multi-queue-pair TCP NVMe-oF initiator: commands shard
// across independent connections, idempotent commands retry, and failed
// queue pairs reconnect in the background (advanced; most code should
// hold a Queue).
type HostPool = nvmeof.HostPool

// PoolConfig tunes DialTargetPool (queue pairs, deadlines, retry and
// reconnect backoff, shared telemetry registry).
type PoolConfig = nvmeof.PoolConfig

// DialTargetPool connects a pool of queue pairs to a TCP target.
func DialTargetPool(addr string, nsid uint32, cfg PoolConfig) (Queue, error) {
	return nvmeof.DialPool(addr, nsid, cfg)
}
