#!/bin/sh
# Tier-1 verification gate. Run from the repo root.
#
# The shadow-variable check needs the standalone analyzer binary
# (golang.org/x/tools/go/analysis/passes/shadow/cmd/shadow); it is
# skipped with a note when the binary is not installed, so this script
# never requires network access or new dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

if command -v shadow >/dev/null 2>&1; then
	echo "== go vet -vettool=shadow"
	go vet -vettool="$(command -v shadow)" ./...
else
	echo "== shadow analyzer not installed; skipping shadow check"
fi

echo "== go test"
go test ./...

echo "== go test -race (concurrent transport + telemetry)"
go test -race ./internal/nvmeof ./internal/telemetry

echo "tier-1 verify: OK"
