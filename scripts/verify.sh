#!/bin/sh
# Tier-1 verification gate. Run from the repo root.
#
# The shadow-variable check needs the standalone analyzer binary
# (golang.org/x/tools/go/analysis/passes/shadow/cmd/shadow); it is
# skipped with a note when the binary is not installed, so this script
# never requires network access or new dependencies.
#
# The crash-consistency property suite runs here in short mode (25
# seeded iterations). The nightly-style full sweep (200 iterations) is:
#
#     go test ./internal/core -run CrashProp -count=1
#
# A failure prints the reproducing seed and the fault trace; pin the
# seed in rerunSeed (internal/core/crashprop_test.go) to replay that
# one iteration locally. See docs/faults.md.
set -eu

cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

if command -v shadow >/dev/null 2>&1; then
	echo "== go vet -vettool=shadow"
	go vet -vettool="$(command -v shadow)" ./...
else
	echo "== shadow analyzer not installed; skipping shadow check"
fi

echo "== go test (shuffled)"
# -shuffle=on randomizes test and subtest order per run so that
# order-dependent tests (shared package state, leaked globals) fail
# here instead of in some future refactor. A failure prints the shuffle
# seed; replay with: go test -shuffle=<seed> <package>
go test -shuffle=on ./...

echo "== go test -race (concurrent transport + telemetry)"
# ./internal/nvmeof includes the batching and striping concurrency
# suites: concurrent stripe submission, batch flusher vs reconnect,
# flight-recorder dump during a batched timeout, and the striped/single
# equivalence property test.
go test -race ./internal/nvmeof ./internal/telemetry ./internal/balancer

echo "== go test -race (slot ring + registered buffer lifetime)"
# The polled submission path's lock-free spine and the zero-copy buffer
# contract, named explicitly so a test rename cannot silently drop
# them: the MPMC index ring under concurrent push/pop across the
# ticket-wraparound boundary, and buffer mutate-after-completion safety
# under batching and merge (a transport goroutine still touching a
# completed buffer's bytes is a -race failure here). -count=1 defeats
# the cache so the race detector actually re-executes them.
go test -race -count=1 -run 'TestIndexRing|TestBuffer' ./internal/nvmeof

echo "== go test -race (mount table / multi-tenant namespace)"
# The vfs.Namespace is used from live goroutines (nvmecrd -tenants), not
# just the serialized simulation: mount resolution, quota counters, and
# per-mount telemetry must be race-clean.
go test -race ./internal/vfs

echo "== go test -race (qos admission + deadline gate)"
# Token buckets are hit from every rank goroutine and the EDF gate
# hands slots directly between goroutines under its lock; both must be
# race-clean, as must the pool's gate acquire/release composition.
go test -race ./internal/qos ./internal/sched

echo "== multi-tenant QoS campaign (short mode)"
# 10 seeded iterations of the mixed campaign — victim + 32-rank
# aggressor + bursty + restart-storm tenants over real TCP targets with
# mid-campaign fault injection — asserting victim tail bounds, Jain
# fairness, command conservation, and telemetry agreement. The
# nightly-style 100-seed sweep (128-rank aggressors) is:
#
#     go test -count=1 ./internal/qos/campaign
#
# A failure prints the reproducing seed, the violations, and the fault
# trace.
go test -short -count=1 ./internal/qos/campaign

echo "== go test -race (health/SLO engine)"
# The engine ticks from its own goroutine while subjects register,
# deregister, and serve /health concurrently; transitions drive pool
# bias from the tick goroutine. All of it must be race-clean.
go test -race ./internal/health

echo "== go test -race (stripe migration plane, short mode)"
# The migrator sweeps stripes off a suspect member while writers keep
# hitting the same plane, and the seeded crash/recovery campaign
# restarts the "process" mid-move — sweep-lock ordering and journal
# replay must be race-clean. Short mode runs 20 crash seeds; the full
# 100-seed campaign is: go test -count=1 ./internal/rebalance
go test -race -short -count=1 ./internal/rebalance

echo "== mirrored no-lost-byte property suite (short mode)"
# 20 seeded iterations of the mirrored/single equivalence campaign,
# each with mid-batch target kills plus a disk-death-and-live-migration
# cycle. The nightly-style 100-seed sweep is:
#
#     go test -count=1 -run MirroredSingleEquivalence ./internal/nvmeof
#
# A failure prints the reproducing seed and both fault traces.
go test -short -count=1 -run 'TestMirroredSingleEquivalence|TestMigrationCrashRecovery' \
	./internal/nvmeof ./internal/rebalance

echo "== deprecated vfs API gate"
# The old Create/ReadOnly/WriteOnly surface lives on only inside the
# compat shims; new in-repo callers must use Open with O_* flags.
deprecated="$(grep -rn --include='*.go' \
	-e 'vfs\.ReadOnly' -e 'vfs\.WriteOnly' \
	-e '\.Create(\(p\|ctx\.Proc\|nil\), ' \
	. | grep -v '/compat\.go:' || true)"
if [ -n "$deprecated" ]; then
	echo "deprecated vfs API used outside compat shims:"
	echo "$deprecated"
	exit 1
fi

echo "== go test -race (runtime core)"
go test -race ./internal/core

echo "== go test -race (fault injection + provenance log)"
go test -race ./internal/faults ./internal/wal

echo "== crash-consistency property suite (short mode)"
go test -short -count=1 -run CrashProp ./internal/core

echo "== nvmecr-trace smoke test"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/nvmecr-bench -quick -trace "$tmp/trace.jsonl" tab2 >/dev/null
report="$(go run ./cmd/nvmecr-trace -epochs "$tmp/trace.jsonl")"
echo "$report" | grep -q "Span summary" || { echo "trace report missing span summary"; exit 1; }
echo "$report" | grep -q "microfs.fsync" || { echo "trace report missing microfs spans"; exit 1; }
echo "$report" | grep -q "epoch 0" || { echo "trace report missing checkpoint epochs"; exit 1; }
go run ./cmd/nvmecr-trace -chrome "$tmp/chrome.json" "$tmp/trace.jsonl" >/dev/null
grep -q '"traceEvents"' "$tmp/chrome.json" || { echo "chrome export invalid"; exit 1; }

echo "== nvmecrd /health smoke test"
# Boot the daemon on ephemeral ports and check the three health
# surfaces: /health (per-subject verdicts), /healthz (per-layer JSON
# rollup), and the legacy plaintext form behind ?format=text.
go build -o "$tmp/nvmecrd" ./cmd/nvmecrd
"$tmp/nvmecrd" -addr 127.0.0.1:0 -admin 127.0.0.1:0 -stats 0 \
	-health-interval 50ms >"$tmp/nvmecrd.log" 2>&1 &
daemon=$!
trap 'kill "$daemon" 2>/dev/null || true; rm -rf "$tmp"' EXIT
admin=""
i=0
while [ "$i" -lt 50 ]; do
	admin="$(sed -n 's|.*admin on http://\([^ ]*\) .*|\1|p' "$tmp/nvmecrd.log")"
	[ -n "$admin" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$admin" ]; then
	echo "nvmecrd admin address never appeared:"
	cat "$tmp/nvmecrd.log"
	exit 1
fi
curl -fsS "http://$admin/health" | grep -q '"status"' \
	|| { echo "/health missing status field"; exit 1; }
curl -fsS "http://$admin/healthz" | grep -q '"layers"' \
	|| { echo "/healthz missing layers rollup"; exit 1; }
curl -fsS "http://$admin/healthz?format=text" | grep -q '^ok' \
	|| { echo "/healthz?format=text lost the legacy form"; exit 1; }
curl -fsS "http://$admin/metrics" | grep -q '^nvmecr_health_state' \
	|| { echo "/metrics missing nvmecr_health_state"; exit 1; }
kill "$daemon"

echo "tier-1 verify: OK"
