#!/bin/sh
# NVMe-oF data-plane benchmark regression harness. Run from anywhere:
#
#     scripts/bench.sh          # full run (2s per benchmark)
#     scripts/bench.sh -q       # quick mode (200ms per benchmark) for
#                               # a fast local smoke of the same gates
#
# Runs the transport hot-path benchmarks — BenchmarkHostPool (batched
# vs unbatched small commands across queue-pair counts),
# BenchmarkHostPoolDeviceBound (the device-limited regime where
# batching must be neutral), BenchmarkStripedPlane (striped vs
# single-target large transfers), BenchmarkMirroredPlane (RAID-10
# mirror vs RAID-0 over the same members), BenchmarkHostPolled (the busy-poll
# reap knob on a synchronous submitter), BenchmarkIndexRing (the raw
# slot-ring cycle), and BenchmarkHostPoolHealth (the same loaded pool
# with and without a bound health engine) — and emits BENCH_nvmeof.json
# with ns/op, MB/s, and allocs/op per case.
#
# Regression gates (full runs only; quick mode prints the values but
# does not fail on them — 200ms samples are too noisy to gate on):
#   - batched throughput >= 1.5x unbatched for small (<=4KB) commands
#     at qp>=4
#   - striped throughput at targets=2 >= 1.1x targets=1 (aggregate
#     device bandwidth must actually scale)
#   - batched steady state at qp=4 runs at 0 allocs/op (the polled
#     zero-copy submission path's contract; counted process-wide,
#     in-process target included)
#   - health-engine overhead: engine=on ns/op <= 1.05x engine=off (the
#     judgment layer must stay off the data hot path)
#   - mirrored R=2 writes >= 0.45x RAID-0 (ideal 0.5x: every byte hits
#     two devices) and mirrored reads >= 0.9x RAID-0 (replica-split
#     reads keep RAID-0 read bandwidth)
#   - multi-tenant QoS (BENCH_qos.json via nvmecr-bench -campaign):
#     victim p99.9 with one admission-limited aggressor <= 3x its solo
#     p99.9, and Jain's fairness index >= 0.8 across 4 equal tenants
set -eu

cd "$(dirname "$0")/.."

benchtime="${BENCH_TIME:-2s}"
gate=1
if [ "${1:-}" = "-q" ]; then
	benchtime=200ms
	gate=0
fi
out="${BENCH_OUT:-BENCH_nvmeof.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "== go test -bench (nvmeof hot paths, benchtime=$benchtime)"
go test ./internal/nvmeof -run '^$' \
	-bench 'BenchmarkHostPool|BenchmarkHostPolled|BenchmarkStripedPlane|BenchmarkMirroredPlane|BenchmarkIndexRing' \
	-benchmem -benchtime "$benchtime" -count=1 | tee "$raw"

echo "== go test -bench (health-engine overhead, benchtime=$benchtime)"
go test ./internal/health -run '^$' \
	-bench 'BenchmarkHostPoolHealth' \
	-benchmem -benchtime "$benchtime" -count=1 | tee -a "$raw"

# Benchmark lines look like:
#   BenchmarkHostPool/qp=4/batch=true-4  333538  7630 ns/op  536.83 MB/s  1234 B/op  25 allocs/op
awk -v benchtime="$benchtime" '
BEGIN { n = 0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; mbs = ""; allocs = ""; bop = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		if ($i == "MB/s") mbs = $(i - 1)
		if ($i == "B/op") bop = $(i - 1)
		if ($i == "allocs/op") allocs = $(i - 1)
	}
	if (ns == "") next
	names[n] = name; nss[n] = ns; mbss[n] = mbs; bops[n] = bop; allocss[n] = allocs
	n++
}
END {
	printf "{\n  \"benchtime\": \"%s\",\n  \"results\": [\n", benchtime
	for (i = 0; i < n; i++) {
		printf "    {\"name\": \"%s\", \"ns_per_op\": %s", names[i], nss[i]
		if (mbss[i] != "") printf ", \"mb_per_s\": %s", mbss[i]
		if (bops[i] != "") printf ", \"bytes_per_op\": %s", bops[i]
		if (allocss[i] != "") printf ", \"allocs_per_op\": %s", allocss[i]
		printf "}%s\n", (i < n - 1 ? "," : "")
	}
	printf "  ]\n}\n"
}' "$raw" > "$out"
echo "== wrote $out"

# Gate 1: batched vs unbatched small-command throughput at qp=4.
ratio="$(awk '
$1 ~ /^BenchmarkHostPool\/qp=4\/batch=false(-[0-9]+)?$/ { for (i=2;i<=NF;i++) if ($i=="MB/s") base=$(i-1) }
$1 ~ /^BenchmarkHostPool\/qp=4\/batch=true(-[0-9]+)?$/  { for (i=2;i<=NF;i++) if ($i=="MB/s") got=$(i-1) }
END { if (base > 0) printf "%.2f", got / base; else print "0" }' "$raw")"
echo "== batched/unbatched small-command throughput at qp=4: ${ratio}x (gate: >= 1.5x)"
if [ "$gate" = 1 ]; then
	awk -v r="$ratio" 'BEGIN { exit (r >= 1.5 ? 0 : 1) }' || {
		echo "FAIL: batching regression — ratio ${ratio}x below 1.5x gate" >&2
		exit 1
	}
fi

# Gate 2: striped aggregate bandwidth must scale — two targets beat one.
stripe="$(awk '
$1 ~ /^BenchmarkStripedPlane\/targets=1(-[0-9]+)?$/ { for (i=2;i<=NF;i++) if ($i=="MB/s") base=$(i-1) }
$1 ~ /^BenchmarkStripedPlane\/targets=2(-[0-9]+)?$/ { for (i=2;i<=NF;i++) if ($i=="MB/s") got=$(i-1) }
END { if (base > 0) printf "%.2f", got / base; else print "0" }' "$raw")"
echo "== striped targets=2 / targets=1 throughput: ${stripe}x (gate: >= 1.1x)"
if [ "$gate" = 1 ]; then
	awk -v r="$stripe" 'BEGIN { exit (r >= 1.1 ? 0 : 1) }' || {
		echo "FAIL: striping regression — targets=2 at ${stripe}x of a single target, below 1.1x gate" >&2
		exit 1
	}
fi

# Gate 3: the batched steady state allocates nothing per op.
allocs="$(awk '
$1 ~ /^BenchmarkHostPool\/qp=4\/batch=true(-[0-9]+)?$/ { for (i=2;i<=NF;i++) if ($i=="allocs/op") a=$(i-1) }
END { print (a == "" ? "-1" : a) }' "$raw")"
echo "== batched steady-state allocations at qp=4: ${allocs} allocs/op (gate: 0)"
if [ "$gate" = 1 ] && [ "$allocs" != 0 ]; then
	echo "FAIL: zero-copy regression — batched steady state at ${allocs} allocs/op, want 0" >&2
	exit 1
fi

# Gate 4: the health engine stays off the data hot path — per-op
# latency with a bound engine ticking at 5ms within 5% of the same
# pool without one.
hratio="$(awk '
$1 ~ /^BenchmarkHostPoolHealth\/engine=off(-[0-9]+)?$/ { for (i=2;i<=NF;i++) if ($i=="ns/op") base=$(i-1) }
$1 ~ /^BenchmarkHostPoolHealth\/engine=on(-[0-9]+)?$/  { for (i=2;i<=NF;i++) if ($i=="ns/op") got=$(i-1) }
END { if (base > 0) printf "%.3f", got / base; else print "0" }' "$raw")"
echo "== health-engine on/off ns/op ratio: ${hratio}x (gate: <= 1.05x)"
if [ "$gate" = 1 ]; then
	awk -v r="$hratio" 'BEGIN { exit (r > 0 && r <= 1.05 ? 0 : 1) }' || {
		echo "FAIL: health-engine overhead — engine=on at ${hratio}x engine=off ns/op, above the 1.05x gate" >&2
		exit 1
	}
fi

# Gate 5: mirroring costs its fundamental write tax and no more —
# R=2 writes hold >= 0.45x RAID-0 over the same four members (every
# byte hits two devices, so the ideal is 0.5x), and replica-split reads
# stay within 0.9x of RAID-0 read bandwidth.
mw="$(awk '
$1 ~ /^BenchmarkMirroredPlane\/mode=raid0\/op=write(-[0-9]+)?$/   { for (i=2;i<=NF;i++) if ($i=="MB/s") base=$(i-1) }
$1 ~ /^BenchmarkMirroredPlane\/mode=mirror2\/op=write(-[0-9]+)?$/ { for (i=2;i<=NF;i++) if ($i=="MB/s") got=$(i-1) }
END { if (base > 0) printf "%.2f", got / base; else print "0" }' "$raw")"
mr="$(awk '
$1 ~ /^BenchmarkMirroredPlane\/mode=raid0\/op=read(-[0-9]+)?$/   { for (i=2;i<=NF;i++) if ($i=="MB/s") base=$(i-1) }
$1 ~ /^BenchmarkMirroredPlane\/mode=mirror2\/op=read(-[0-9]+)?$/ { for (i=2;i<=NF;i++) if ($i=="MB/s") got=$(i-1) }
END { if (base > 0) printf "%.2f", got / base; else print "0" }' "$raw")"
echo "== mirrored R=2 / RAID-0 throughput: writes ${mw}x (gate: >= 0.45x), reads ${mr}x (gate: >= 0.9x)"
if [ "$gate" = 1 ]; then
	awk -v r="$mw" 'BEGIN { exit (r >= 0.45 ? 0 : 1) }' || {
		echo "FAIL: mirror write regression — R=2 at ${mw}x RAID-0, below 0.45x gate" >&2
		exit 1
	}
	awk -v r="$mr" 'BEGIN { exit (r >= 0.9 ? 0 : 1) }' || {
		echo "FAIL: mirror read regression — R=2 at ${mr}x RAID-0, below 0.9x gate (replica read-split broken?)" >&2
		exit 1
	}
fi

# Gate 6: multi-tenant QoS holds the victim's tail and stays fair.
# nvmecr-bench -campaign runs the duel scenario (victim vs an
# admission-limited aggressor over real TCP targets) and the equal-4
# fairness scenario, and itself fails on any campaign invariant
# violation (lost commands, telemetry drift). Full runs only: the quick
# mode's 200ms samples are fine for throughput but the campaign's tail
# quantiles need the real run.
if [ "$gate" = 1 ]; then
	qout="${BENCH_QOS_OUT:-BENCH_qos.json}"
	echo "== nvmecr-bench -campaign (multi-tenant QoS)"
	go run ./cmd/nvmecr-bench -campaign "$qout"
	echo "== wrote $qout"
	vratio="$(sed -n 's/.*"victim_p999_ratio": \([0-9.eE+-]*\).*/\1/p' "$qout" | head -1)"
	jain="$(sed -n 's/.*"jain_equal4": \([0-9.eE+-]*\).*/\1/p' "$qout" | head -1)"
	echo "== qos victim p99.9 under aggressor: ${vratio}x solo (gate: <= 3x), jain(4 equal tenants): ${jain} (gate: >= 0.8)"
	awk -v r="$vratio" 'BEGIN { exit (r > 0 && r <= 3.0 ? 0 : 1) }' || {
		echo "FAIL: qos isolation regression — victim p99.9 at ${vratio}x solo, above the 3x gate" >&2
		exit 1
	}
	awk -v j="$jain" 'BEGIN { exit (j >= 0.8 ? 0 : 1) }' || {
		echo "FAIL: qos fairness regression — Jain index ${jain} below the 0.8 gate" >&2
		exit 1
	}
fi
