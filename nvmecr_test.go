package nvmecr

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

func TestJobQuickstart(t *testing.T) {
	job, err := NewJob(JobConfig{Ranks: 16})
	if err != nil {
		t.Fatal(err)
	}
	elapsed, err := job.Run(func(ctx *RankCtx) error {
		f, err := ctx.FS.Create(ctx.Proc, "/state.dat", 0o644)
		if err != nil {
			return err
		}
		if _, err := f.WriteN(ctx.Proc, 8*model.MB); err != nil {
			return err
		}
		if err := f.Fsync(ctx.Proc); err != nil {
			return err
		}
		return f.Close(ctx.Proc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Error("job cost no virtual time")
	}
}

func TestJobValidation(t *testing.T) {
	if _, err := NewJob(JobConfig{}); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := NewJob(JobConfig{Ranks: 1 << 20}); err == nil {
		t.Error("oversized job accepted")
	}
}

func TestJobRankErrorSurfaces(t *testing.T) {
	job, err := NewJob(JobConfig{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, err = job.Run(func(ctx *RankCtx) error {
		if ctx.Rank.ID() == 2 {
			return fmt.Errorf("injected failure")
		}
		return nil
	})
	if err == nil {
		t.Fatal("rank error swallowed")
	}
}

func TestJobCaptureReadBack(t *testing.T) {
	job, err := NewJob(JobConfig{Ranks: 4, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("verify"), 10000)
	_, err = job.Run(func(ctx *RankCtx) error {
		p := ctx.Proc
		f, err := ctx.FS.Create(p, "/v.dat", 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(p, payload); err != nil {
			return err
		}
		if err := f.Close(p); err != nil {
			return err
		}
		g, err := ctx.FS.Open(p, "/v.dat", vfs.ReadOnly)
		if err != nil {
			return err
		}
		buf := make([]byte, len(payload))
		n, err := g.Read(p, buf)
		if err != nil {
			return err
		}
		if n != len(payload) || !bytes.Equal(buf, payload) {
			return fmt.Errorf("rank %d: payload mismatch", ctx.Rank.ID())
		}
		return g.Close(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExperimentsListed(t *testing.T) {
	ids := Experiments()
	if len(ids) != 13 {
		t.Errorf("Experiments() = %v, want 13 entries", ids)
	}
	tab, err := RunExperiment("fig7a", ExperimentOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "fig7a" || len(tab.Rows) == 0 {
		t.Errorf("RunExperiment returned %+v", tab)
	}
}

func TestTCPFacade(t *testing.T) {
	tgt := NewTarget()
	if err := tgt.AddNamespace(1, NewMemNamespace(1*model.MB)); err != nil {
		t.Fatal(err)
	}
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	h, err := DialTarget(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.WriteAt(0, []byte("facade")); err != nil {
		t.Fatal(err)
	}
	got, err := h.ReadAt(0, 6)
	if err != nil || string(got) != "facade" {
		t.Fatalf("ReadAt = %q, %v", got, err)
	}
}

func TestDefaultParamsSane(t *testing.T) {
	p := DefaultParams()
	if p.SSD.WriteBW <= 0 || p.Net.NICBW <= p.SSD.WriteBW {
		t.Errorf("params implausible: %+v", p.SSD)
	}
	cfg := PaperTestbed()
	if cfg.ComputeNodes != 16 || cfg.StorageNodes != 8 {
		t.Errorf("paper testbed = %+v", cfg)
	}
	f := AllFeatures()
	if !f.Provenance || !f.Hugeblocks {
		t.Errorf("AllFeatures = %+v", f)
	}
}
