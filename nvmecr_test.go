package nvmecr

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

func TestJobQuickstart(t *testing.T) {
	job, err := NewJob(JobConfig{Ranks: 16})
	if err != nil {
		t.Fatal(err)
	}
	elapsed, err := job.Run(func(ctx *RankCtx) error {
		f, err := ctx.FS.Open(ctx.Proc, "/state.dat", vfs.O_WRONLY|vfs.O_CREATE|vfs.O_EXCL, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.WriteN(ctx.Proc, 8*model.MB); err != nil {
			return err
		}
		if err := f.Fsync(ctx.Proc); err != nil {
			return err
		}
		return f.Close(ctx.Proc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Error("job cost no virtual time")
	}
}

func TestJobValidation(t *testing.T) {
	if _, err := NewJob(JobConfig{}); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := NewJob(JobConfig{Ranks: 1 << 20}); err == nil {
		t.Error("oversized job accepted")
	}
}

func TestJobRankErrorSurfaces(t *testing.T) {
	job, err := NewJob(JobConfig{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, err = job.Run(func(ctx *RankCtx) error {
		if ctx.Rank.ID() == 2 {
			return fmt.Errorf("injected failure")
		}
		return nil
	})
	if err == nil {
		t.Fatal("rank error swallowed")
	}
}

func TestJobCaptureReadBack(t *testing.T) {
	job, err := NewJob(JobConfig{Ranks: 4, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("verify"), 10000)
	_, err = job.Run(func(ctx *RankCtx) error {
		p := ctx.Proc
		f, err := ctx.FS.Open(p, "/v.dat", vfs.O_WRONLY|vfs.O_CREATE|vfs.O_EXCL, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(p, payload); err != nil {
			return err
		}
		if err := f.Close(p); err != nil {
			return err
		}
		g, err := ctx.FS.Open(p, "/v.dat", vfs.O_RDONLY, 0)
		if err != nil {
			return err
		}
		buf := make([]byte, len(payload))
		n, err := g.Read(p, buf)
		if err != nil {
			return err
		}
		if n != len(payload) || !bytes.Equal(buf, payload) {
			return fmt.Errorf("rank %d: payload mismatch", ctx.Rank.ID())
		}
		return g.Close(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExperimentsListed(t *testing.T) {
	ids := Experiments()
	if len(ids) != 15 {
		t.Errorf("Experiments() = %v, want 15 entries", ids)
	}
	tab, err := RunExperiment("fig7a", ExperimentOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "fig7a" || len(tab.Rows) == 0 {
		t.Errorf("RunExperiment returned %+v", tab)
	}
}

func TestTCPFacade(t *testing.T) {
	tgt := NewTarget()
	if err := tgt.AddNamespace(1, NewMemNamespace(1*model.MB)); err != nil {
		t.Fatal(err)
	}
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	h, err := DialTarget(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.WriteAt(0, []byte("facade")); err != nil {
		t.Fatal(err)
	}
	got, err := h.ReadAt(0, 6)
	if err != nil || string(got) != "facade" {
		t.Fatalf("ReadAt = %q, %v", got, err)
	}
	// Single-QP dial and pooled dial both satisfy Queue and report
	// through the same snapshot surface.
	var q Queue = h
	snaps := q.Snapshot()
	if len(snaps) != 1 || snaps[0].Commands == 0 {
		t.Fatalf("Snapshot() = %+v, want one active queue pair", snaps)
	}
	pool, err := DialTargetPool(addr, 1, PoolConfig{QueuePairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if err := pool.WriteAt(64, []byte("pooled")); err != nil {
		t.Fatal(err)
	}
	if got := len(pool.Snapshot()); got != 2 {
		t.Fatalf("pool Snapshot() has %d entries, want 2", got)
	}
	var sb strings.Builder
	if err := pool.Telemetry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "nvmecr_qp_commands_total") {
		t.Error("pool registry exposition missing per-QP command counters")
	}
	if tgt.Snapshot().Commands == 0 {
		t.Error("target snapshot counted no commands")
	}
}

func TestDefaultOptionsFacade(t *testing.T) {
	o := DefaultOptions()
	if !o.IsDefaulted() || o.Mode != RemoteSPDK || !o.Background {
		t.Fatalf("DefaultOptions() = %+v", o)
	}
	// A job built from DefaultOptions with one field changed keeps that
	// field (the zero-value rescue in NewJob must not overwrite it).
	o.Background = false
	job, err := NewJob(JobConfig{Ranks: 2, Options: o})
	if err != nil {
		t.Fatal(err)
	}
	if job.Runtime.Options().Background {
		t.Error("NewJob overwrote an explicitly defaulted Options value")
	}
}

func TestDefaultParamsSane(t *testing.T) {
	p := DefaultParams()
	if p.SSD.WriteBW <= 0 || p.Net.NICBW <= p.SSD.WriteBW {
		t.Errorf("params implausible: %+v", p.SSD)
	}
	cfg := PaperTestbed()
	if cfg.ComputeNodes != 16 || cfg.StorageNodes != 8 {
		t.Errorf("paper testbed = %+v", cfg)
	}
	f := AllFeatures()
	if !f.Provenance || !f.Hugeblocks {
		t.Errorf("AllFeatures = %+v", f)
	}
}
