// Multi-level checkpointing (paper §III-F, evaluated in Table II):
// most checkpoints go to the fast NVMe-CR tier, every k-th to a slower
// but replicated Lustre-like PFS. A cascading failure that takes out a
// storage domain loses the NVMe tier — the job then falls back to the
// PFS copy, which is the whole point of the scheme.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/nvme-cr/nvmecr/internal/balancer"
	"github.com/nvme-cr/nvmecr/internal/baseline"
	"github.com/nvme-cr/nvmecr/internal/comd"
	"github.com/nvme-cr/nvmecr/internal/core"
	"github.com/nvme-cr/nvmecr/internal/fabric"
	"github.com/nvme-cr/nvmecr/internal/metrics"
	"github.com/nvme-cr/nvmecr/internal/microfs"
	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/mpi"
	"github.com/nvme-cr/nvmecr/internal/nvme"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/topology"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

func main() {
	const ranks = 56
	cluster, err := topology.New(topology.PaperTestbed())
	if err != nil {
		log.Fatal(err)
	}
	env := sim.NewEnv()
	params := model.Default()
	fab := fabric.New(env, cluster, params.Net)
	world, err := mpi.NewWorld(env, cluster, ranks)
	if err != nil {
		log.Fatal(err)
	}

	// Tier 1: NVMe-CR over the storage rack.
	var devices []balancer.StorageDevice
	for _, sn := range cluster.StorageNodes() {
		devices = append(devices, balancer.StorageDevice{
			Node: sn, Device: nvme.New(env, sn.Name, params.SSD, false),
		})
	}
	rt, err := core.NewRuntime(env, world, fab, devices, core.Options{
		Mode: core.RemoteSPDK, Features: microfs.AllFeatures(),
		Background: true, SSDs: len(devices),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Tier 2: a Lustre-like PFS on 4 RAID-limited servers.
	var lnodes []*topology.Node
	var ldevs []*nvme.Device
	for i, sn := range cluster.StorageNodes() {
		if i >= params.Lustre.Servers {
			break
		}
		lnodes = append(lnodes, sn)
		ldevs = append(ldevs, nvme.New(env, sn.Name+"-pfs", params.SSD, false))
	}
	lbackend, err := baseline.NewBackend(env, fab, lnodes, ldevs)
	if err != nil {
		log.Fatal(err)
	}
	lustre := baseline.NewLustre(lbackend, params)

	cfg := comd.WeakScaling()
	cfg.Checkpoints = 10
	cfg.MultiLevelEvery = 5 // every 5th checkpoint to the PFS
	cfg.CheckpointBytesPerRank = 64 * model.MB
	cfg.StepsPerInterval = 10

	clients := make([]vfs.Client, ranks)
	second := make([]vfs.Client, ranks)
	for i := 0; i < ranks; i++ {
		second[i] = lustre.NewClient(world.Node(i))
	}
	app, err := comd.New(world, clients, second, cfg)
	if err != nil {
		log.Fatal(err)
	}

	var pfsRecovery time.Duration
	errs := make([]error, ranks)
	world.Launch(func(r *mpi.Rank, p *sim.Proc) {
		me := r.ID()
		c, err := rt.InitRank(p, r)
		if err != nil {
			errs[me] = err
			return
		}
		clients[me] = c
		if err := app.RankBody(r, p); err != nil {
			errs[me] = err
			return
		}
		// Cascading failure: the NVMe tier's domain is gone. Restart
		// from the most recent PFS checkpoint (checkpoint 9, written
		// to Lustre by the 1-in-5 policy).
		world.Comm().Barrier(p, r)
		start := p.Now()
		path := fmt.Sprintf("/rank%05d.ckpt%04d.dat", me, 9)
		f, err := second[me].Open(p, path, vfs.O_RDONLY, 0)
		if err != nil {
			errs[me] = fmt.Errorf("PFS fallback open: %w", err)
			return
		}
		if _, err := vfs.ReadAllN(p, f, cfg.CheckpointBytesPerRank, cfg.ChunkBytes); err != nil {
			errs[me] = err
			return
		}
		f.Close(p)
		world.Comm().Barrier(p, r)
		if me == 0 {
			pfsRecovery = p.Now() - start
		}
		errs[me] = rt.Finalize(p, r)
	})
	if _, err := env.Run(); err != nil {
		log.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			log.Fatalf("rank %d: %v", i, e)
		}
	}

	res := app.Result()
	total := cfg.CheckpointBytesPerRank * int64(ranks)
	fmt.Printf("multi-level C/R: %d ranks, %d checkpoints, every %dth to Lustre\n",
		ranks, cfg.Checkpoints, cfg.MultiLevelEvery)
	for i, d := range res.CheckpointTimes {
		tier := "nvme-cr"
		if (i+1)%cfg.MultiLevelEvery == 0 {
			tier = "lustre "
		}
		fmt.Printf("  ckpt %2d [%s]: %9v  %6.2f GB/s\n",
			i, tier, d.Round(time.Microsecond), metrics.Bandwidth(total, d)/1e9)
	}
	fmt.Printf("  progress rate: %.3f\n", res.ProgressRate())
	fmt.Printf("  cascading-failure fallback: read checkpoint 9 from Lustre in %v (%.2f GB/s)\n",
		pfsRecovery.Round(time.Millisecond), metrics.Bandwidth(total, pfsRecovery)/1e9)
	fmt.Println("  fast tier served 8/10 checkpoints; the PFS copy survived the domain failure")
}
