// Crash recovery: exercises NVMe-CR's metadata provenance end to end.
// A microfs instance checkpoints files onto a (payload-capturing) SSD,
// "crashes" — all DRAM metadata is discarded — and a fresh instance
// rebuilds everything from the on-SSD snapshot plus the operation log,
// verifying file contents byte for byte. The example also shows why log
// record coalescing makes recovery near-instant: with it, the sequential
// checkpoint writes collapse into a handful of log records to replay.
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/nvme-cr/nvmecr/internal/microfs"
	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/nvme"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/spdk"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

func main() {
	env := sim.NewEnv()
	params := model.Default()
	params.SSD.CapacityGB = 1
	dev := nvme.New(env, "ssd0", params.SSD, true /* capture payloads */)
	ns, err := dev.CreateNamespace(128 * model.MB)
	if err != nil {
		log.Fatal(err)
	}

	mkInstance := func(noCoalesce bool) *microfs.Instance {
		acct := &vfs.Account{}
		pl, err := spdk.NewPlane(ns, 0, ns.Size(), params.Host, acct)
		if err != nil {
			log.Fatal(err)
		}
		inst, err := microfs.New(env, microfs.Config{
			Plane:      pl,
			Account:    acct,
			Host:       params.Host,
			Features:   microfs.AllFeatures(),
			LogBytes:   1 * model.MB,
			SnapBytes:  4 * model.MB,
			NoCoalesce: noCoalesce,
		})
		if err != nil {
			log.Fatal(err)
		}
		return inst
	}

	inst := mkInstance(false)
	payloads := map[string][]byte{}

	env.Go("app", func(p *sim.Proc) {
		// Phase 1: write three checkpoints; snapshot between them the
		// way the background thread would.
		if err := inst.Mkdir(p, "/ckpt", 0o755); err != nil {
			log.Fatal(err)
		}
		for step := 0; step < 3; step++ {
			path := fmt.Sprintf("/ckpt/step%03d.dat", step)
			data := bytes.Repeat([]byte{byte('A' + step)}, (step+1)*256*1024)
			payloads[path] = data
			f, err := inst.Open(p, path, vfs.O_WRONLY|vfs.O_CREATE|vfs.O_EXCL, 0o644)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := vfs.WriteAll(p, f, data, 32*model.KB); err != nil {
				log.Fatal(err)
			}
			f.Fsync(p)
			f.Close(p)
			if step == 1 {
				if err := inst.SnapshotNow(p); err != nil {
					log.Fatal(err)
				}
				fmt.Println("internal metadata snapshot taken after step 1")
			}
		}
		appended, coalesced, _, _ := inst.Log().Stats()
		fmt.Printf("before crash: %d live log records (%d writes coalesced away)\n",
			inst.Log().Records(), coalesced)
		_ = appended

		// Phase 2: crash. All DRAM state is gone; only the SSD
		// remains. A fresh runtime instance recovers from it.
		fresh := mkInstance(false)
		if err := fresh.Recover(p); err != nil {
			log.Fatalf("recovery failed: %v", err)
		}
		for path, want := range payloads {
			f, err := fresh.Open(p, path, vfs.O_RDONLY, 0)
			if err != nil {
				log.Fatalf("post-crash open %s: %v", path, err)
			}
			buf := make([]byte, len(want))
			n, err := f.Read(p, buf)
			if err != nil || n != len(want) || !bytes.Equal(buf, want) {
				log.Fatalf("post-crash verify %s failed (n=%d err=%v)", path, n, err)
			}
			f.Close(p)
			fmt.Printf("recovered %-22s %4d KiB  verified\n", path, len(want)>>10)
		}
		fmt.Printf("recovery replayed the post-snapshot log suffix; runtime is live again\n")

		// Phase 3: the recovered instance keeps serving.
		f, err := fresh.Open(p, "/ckpt/step100.dat", vfs.O_WRONLY|vfs.O_CREATE|vfs.O_EXCL, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		f.Write(p, []byte("life after crash"))
		f.Close(p)
		fmt.Println("post-recovery create succeeded: /ckpt/step100.dat")
	})

	if _, err := env.Run(); err != nil {
		log.Fatal(err)
	}
}
