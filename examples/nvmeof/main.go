// NVMe-oF over TCP: the functional (non-simulated) remote data plane.
// An in-process target daemon exports two namespaces; multiple host
// queue pairs connect over real TCP sockets, write checkpoint data with
// pipelined commands, and read it back. This is the same target that
// cmd/nvmecrd serves standalone.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"

	nvmecr "github.com/nvme-cr/nvmecr"
	"github.com/nvme-cr/nvmecr/internal/model"
)

func main() {
	tgt := nvmecr.NewTarget()
	// Two tenants, isolated by NVMe namespace (the paper's security
	// model: the scheduler assigns storage at namespace granularity).
	for nsid, size := range map[uint32]int64{1: 64 * model.MB, 2: 64 * model.MB} {
		if err := tgt.AddNamespace(nsid, nvmecr.NewMemNamespace(size)); err != nil {
			log.Fatal(err)
		}
	}
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer tgt.Close()
	fmt.Printf("target listening on %s, namespaces 1 and 2\n", addr)

	const ranks = 8
	const perRank = 2 * model.MB
	var wg sync.WaitGroup
	errs := make([]error, ranks)
	for i := 0; i < ranks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nsid := uint32(1 + i%2)
			h, err := nvmecr.DialTarget(addr, nsid)
			if err != nil {
				errs[i] = err
				return
			}
			defer h.Close()
			// Each "rank" owns a contiguous partition of its
			// namespace, like the storage balancer assigns.
			base := int64(i/2) * 8 * model.MB
			payload := bytes.Repeat([]byte{byte('a' + i)}, int(perRank))
			for off := int64(0); off < perRank; off += 256 * model.KB {
				if err := h.WriteAt(base+off, payload[off:off+256*model.KB]); err != nil {
					errs[i] = err
					return
				}
			}
			if err := h.Flush(); err != nil {
				errs[i] = err
				return
			}
			got, err := h.ReadAt(base, perRank)
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(got, payload) {
				errs[i] = fmt.Errorf("rank %d: read-back mismatch", i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			log.Fatalf("rank %d: %v", i, err)
		}
	}
	cmds, in, out := tgt.Stats()
	fmt.Printf("%d queue pairs wrote and verified %d MiB each over TCP NVMe-oF\n",
		ranks, perRank>>20)
	fmt.Printf("target served %d commands, %d MiB in, %d MiB out\n",
		cmds, in>>20, out>>20)
}
