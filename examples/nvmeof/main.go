// NVMe-oF over TCP: the functional (non-simulated) remote data plane.
// An in-process target daemon exports two namespaces; each tenant opens
// a HostPool of queue pairs over real TCP sockets, writes checkpoint
// data sharded across the pool, and reads it back. This is the same
// target that cmd/nvmecrd serves standalone.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"

	nvmecr "github.com/nvme-cr/nvmecr"
	"github.com/nvme-cr/nvmecr/internal/model"
)

func main() {
	tgt := nvmecr.NewTarget()
	// Two tenants, isolated by NVMe namespace (the paper's security
	// model: the scheduler assigns storage at namespace granularity).
	for nsid, size := range map[uint32]int64{1: 64 * model.MB, 2: 64 * model.MB} {
		if err := tgt.AddNamespace(nsid, nvmecr.NewMemNamespace(size)); err != nil {
			log.Fatal(err)
		}
	}
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer tgt.Close()
	fmt.Printf("target listening on %s, namespaces 1 and 2\n", addr)

	// One queue-pair pool per tenant, shared by that tenant's ranks —
	// the paper's scaling model: throughput comes from many independent
	// queue pairs, not one multiplexed connection. Tenants hold the
	// Queue interface; the pool behind it is an implementation detail.
	pools := make(map[uint32]nvmecr.Queue)
	for _, nsid := range []uint32{1, 2} {
		pool, err := nvmecr.DialTargetPool(addr, nsid, nvmecr.PoolConfig{QueuePairs: 4})
		if err != nil {
			log.Fatal(err)
		}
		defer pool.Close()
		pools[nsid] = pool
	}

	const ranks = 8
	const perRank = 2 * model.MB
	var wg sync.WaitGroup
	errs := make([]error, ranks)
	for i := 0; i < ranks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pool := pools[uint32(1+i%2)]
			// Each "rank" owns a contiguous partition of its
			// namespace, like the storage balancer assigns.
			base := int64(i/2) * 8 * model.MB
			payload := bytes.Repeat([]byte{byte('a' + i)}, int(perRank))
			for off := int64(0); off < perRank; off += 256 * model.KB {
				if err := pool.WriteAt(base+off, payload[off:off+256*model.KB]); err != nil {
					errs[i] = err
					return
				}
			}
			if err := pool.Flush(); err != nil {
				errs[i] = err
				return
			}
			got, err := pool.ReadAt(base, perRank)
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(got, payload) {
				errs[i] = fmt.Errorf("rank %d: read-back mismatch", i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			log.Fatalf("rank %d: %v", i, err)
		}
	}
	tsnap := tgt.Snapshot()
	fmt.Printf("%d ranks wrote and verified %d MiB each over %d-queue-pair pools\n",
		ranks, perRank>>20, len(pools[1].Snapshot()))
	fmt.Printf("target served %d commands, %d MiB in, %d MiB out, p99 latency %v\n",
		tsnap.Commands, tsnap.BytesIn>>20, tsnap.BytesOut>>20, tsnap.Latency.P99)
	for _, nsid := range []uint32{1, 2} {
		for _, st := range pools[nsid].Snapshot() {
			fmt.Printf("  ns %d qp %d: %d commands, %d errors, %d reconnects\n",
				nsid, st.ID, st.Commands, st.Errors, st.Reconnects)
		}
	}
}
