// CoMD over NVMe-CR: runs the paper's molecular-dynamics proxy workload
// (weak scaling, N-N checkpointing) over the full runtime — balancer,
// MPI_COMM_CR, NVMe-oF data plane — and reports the metrics the paper's
// application evaluation uses: per-checkpoint time, efficiency against
// hardware peak, recovery time, and progress rate.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/nvme-cr/nvmecr/internal/balancer"
	"github.com/nvme-cr/nvmecr/internal/comd"
	"github.com/nvme-cr/nvmecr/internal/core"
	"github.com/nvme-cr/nvmecr/internal/fabric"
	"github.com/nvme-cr/nvmecr/internal/metrics"
	"github.com/nvme-cr/nvmecr/internal/microfs"
	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/mpi"
	"github.com/nvme-cr/nvmecr/internal/nvme"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/topology"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

func main() {
	ranks := flag.Int("ranks", 112, "MPI processes (paper: up to 448)")
	ckpts := flag.Int("checkpoints", 3, "checkpoint phases")
	mb := flag.Int64("mb", 64, "checkpoint MiB per rank per phase")
	flag.Parse()

	cluster, err := topology.New(topology.PaperTestbed())
	if err != nil {
		log.Fatal(err)
	}
	env := sim.NewEnv()
	params := model.Default()
	fab := fabric.New(env, cluster, params.Net)
	world, err := mpi.NewWorld(env, cluster, *ranks)
	if err != nil {
		log.Fatal(err)
	}
	var devices []balancer.StorageDevice
	for _, sn := range cluster.StorageNodes() {
		devices = append(devices, balancer.StorageDevice{
			Node:   sn,
			Device: nvme.New(env, sn.Name, params.SSD, false),
		})
	}
	rt, err := core.NewRuntime(env, world, fab, devices, core.Options{
		Mode:       core.RemoteSPDK,
		Features:   microfs.AllFeatures(),
		Background: true,
		SSDs:       len(devices),
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := comd.WeakScaling()
	cfg.Checkpoints = *ckpts
	cfg.CheckpointBytesPerRank = *mb * model.MB
	clients := make([]vfs.Client, *ranks)
	app, err := comd.New(world, clients, nil, cfg)
	if err != nil {
		log.Fatal(err)
	}

	var recovery time.Duration
	errs := make([]error, *ranks)
	world.Launch(func(r *mpi.Rank, p *sim.Proc) {
		me := r.ID()
		c, err := rt.InitRank(p, r)
		if err != nil {
			errs[me] = err
			return
		}
		clients[me] = c
		if err := app.RankBody(r, p); err != nil {
			errs[me] = err
			return
		}
		if err := app.Recover(r, p, &recovery); err != nil {
			errs[me] = err
			return
		}
		errs[me] = rt.Finalize(p, r)
	})
	if _, err := env.Run(); err != nil {
		log.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			log.Fatalf("rank %d: %v", i, e)
		}
	}

	res := app.Result()
	fmt.Printf("CoMD weak scaling: %d ranks, %d checkpoints of %d MiB/rank\n",
		*ranks, *ckpts, *mb)
	peak := rt.HardwarePeakWrite()
	for i, d := range res.CheckpointTimes {
		bw := metrics.Bandwidth(res.BytesPerCheckpoint, d)
		fmt.Printf("  checkpoint %d: %8v  %7.2f GB/s  efficiency %.3f\n",
			i, d.Round(time.Microsecond), bw/1e9, metrics.Efficiency(bw, peak))
	}
	recBW := metrics.Bandwidth(res.BytesPerCheckpoint, recovery)
	fmt.Printf("  recovery:     %8v  %7.2f GB/s  efficiency %.3f\n",
		recovery.Round(time.Microsecond), recBW/1e9,
		metrics.Efficiency(recBW, rt.HardwarePeakRead()))
	fmt.Printf("  compute %v, checkpoint total %v -> progress rate %.3f\n",
		res.ComputeTime.Round(time.Millisecond),
		res.TotalCheckpointTime().Round(time.Millisecond),
		res.ProgressRate())
}
