// Quickstart: build a simulated disaggregated cluster, run a 32-rank
// job over the NVMe-CR runtime, checkpoint each rank's state into its
// private namespace, and read it back.
package main

import (
	"fmt"
	"log"

	nvmecr "github.com/nvme-cr/nvmecr"
	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

func main() {
	// Capture=true stores real payload bytes on the simulated SSDs so
	// reads return exactly what was written.
	job, err := nvmecr.NewJob(nvmecr.JobConfig{Ranks: 32, Capture: true})
	if err != nil {
		log.Fatal(err)
	}

	const perRank = 4 * model.MB
	elapsed, err := job.Run(func(ctx *nvmecr.RankCtx) error {
		p := ctx.Proc
		// Each rank sees a private namespace: no coordination with
		// other ranks for any of these operations.
		if err := ctx.FS.Mkdir(p, "/ckpt", 0o755); err != nil {
			return err
		}
		f, err := ctx.FS.Open(p, "/ckpt/state.dat", vfs.O_WRONLY|vfs.O_CREATE|vfs.O_EXCL, 0o644)
		if err != nil {
			return err
		}
		payload := make([]byte, perRank)
		for i := range payload {
			payload[i] = byte(ctx.Rank.ID() + i)
		}
		if _, err := vfs.WriteAll(p, f, payload, 1*model.MB); err != nil {
			return err
		}
		if err := f.Fsync(p); err != nil {
			return err
		}
		if err := f.Close(p); err != nil {
			return err
		}

		// Restart path: read the checkpoint back and verify.
		g, err := ctx.FS.Open(p, "/ckpt/state.dat", vfs.O_RDONLY, 0)
		if err != nil {
			return err
		}
		buf := make([]byte, perRank)
		if _, err := g.Read(p, buf); err != nil {
			return err
		}
		for i := range buf {
			if buf[i] != byte(ctx.Rank.ID()+i) {
				return fmt.Errorf("rank %d: corruption at byte %d", ctx.Rank.ID(), i)
			}
		}
		return g.Close(p)
	})
	if err != nil {
		log.Fatal(err)
	}

	stats := job.Runtime.Stats()
	total := int64(job.World.Size()) * perRank
	fmt.Printf("32 ranks checkpointed and verified %d MiB in %v of virtual time\n",
		total>>20, elapsed)
	fmt.Printf("aggregate: %.2f GB/s write against %.2f GB/s of allocated SSD bandwidth\n",
		float64(stats.BytesWritten)/elapsed.Seconds()/1e9, job.Runtime.HardwarePeakWrite()/1e9)
	fmt.Printf("per-runtime metadata on SSD: %d KiB, creates: %d\n",
		stats.MetaStorageBytes/int64(job.World.Size())>>10, stats.Creates)
}
