package nvmeof

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// DefaultFlightDepth is how many completed commands each queue pair's
// flight ring retains when no explicit depth is configured.
const DefaultFlightDepth = 64

// FlightRecord is one completed command as seen by a flight recorder —
// the black-box row that survives after the command itself is gone.
// Hosts record their side (round-trip latency plus the target-reported
// phases of traced commands); targets record theirs (measured phases).
type FlightRecord struct {
	// TraceID correlates the two ends of the fabric; zero when the
	// command was not traced.
	TraceID uint64 `json:"trace_id,omitempty"`
	// QP is the queue pair the command ran on (initiator slot index on
	// hosts, accepted queue-pair ID on targets).
	QP     int    `json:"qp"`
	Op     string `json:"op"`
	Opcode Opcode `json:"opcode"`
	CID    uint16 `json:"cid"`
	Status uint16 `json:"status"`
	// Err is the transport-level error, if the command never completed
	// (timeout, connection failure, malformed response).
	Err string `json:"err,omitempty"`
	// Bytes is the payload moved in both directions.
	Bytes int `json:"bytes,omitempty"`
	// WallNS is when the command started (submission on hosts, first
	// capsule byte on targets), UnixNano.
	WallNS int64 `json:"wall_ns"`
	// ElapsedNS is the host-observed round trip on hosts, and the
	// total target residency (wire-read + queue + service + wire-write)
	// on targets.
	ElapsedNS int64 `json:"elapsed_ns"`
	// Batch is how many capsules shared this command's vectored flush
	// (0 on the direct, unbatched path).
	Batch int `json:"batch,omitempty"`
	// Phases is the per-phase breakdown when HasPhases is set: always
	// on targets, and on hosts for traced commands (echoed by the
	// target). Held by value so recording never allocates — the ring
	// slot owns its own copy and the recorder's source struct can be
	// reused for the next command. The JSON shape is unchanged: a
	// "phases" object when present, omitted when not (see MarshalJSON).
	Phases    PhaseTimings `json:"-"`
	HasPhases bool         `json:"-"`
}

// flightRecordJSON keeps the wire shape FlightRecord always had: the
// embedded alias carries every plain field, and Phases reappears as an
// optional pointer exactly where the old pointer field marshaled.
type flightRecordJSON struct {
	flightRecordAlias
	Phases *PhaseTimings `json:"phases,omitempty"`
}

// flightRecordAlias drops FlightRecord's methods so marshaling the
// embedded value cannot recurse into MarshalJSON.
type flightRecordAlias FlightRecord

// MarshalJSON renders the record with its optional "phases" object.
func (r FlightRecord) MarshalJSON() ([]byte, error) {
	aux := flightRecordJSON{flightRecordAlias: flightRecordAlias(r)}
	if r.HasPhases {
		aux.Phases = &r.Phases
	}
	return json.Marshal(aux)
}

// UnmarshalJSON accepts the same shape back (trace tooling re-reads
// flight dumps from trace streams).
func (r *FlightRecord) UnmarshalJSON(data []byte) error {
	var aux flightRecordJSON
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	*r = FlightRecord(aux.flightRecordAlias)
	if aux.Phases != nil {
		r.Phases = *aux.Phases
		r.HasPhases = true
	}
	return nil
}

// String renders one record for logs and dumps.
func (r FlightRecord) String() string {
	s := fmt.Sprintf("%s cid=%d qp=%d status=%d elapsed=%v",
		r.Op, r.CID, r.QP, r.Status, time.Duration(r.ElapsedNS))
	if r.TraceID != 0 {
		s = fmt.Sprintf("%016x %s", r.TraceID, s)
	}
	if r.Err != "" {
		s += " err=" + r.Err
	}
	return s
}

// FlightRecorder keeps the last N completed commands per queue pair in
// lock-striped ring buffers: each queue pair has its own ring and its
// own mutex, so concurrent queue pairs never contend recording, and
// dumping one queue pair's ring never stalls the others. A nil
// *FlightRecorder is a valid no-op, matching the telemetry idiom.
type FlightRecorder struct {
	depth int
	mu    sync.RWMutex
	rings map[int]*flightRing
}

// flightRing is one queue pair's ring.
type flightRing struct {
	mu   sync.Mutex
	buf  []FlightRecord
	next uint64 // total records ever written; buf[next%depth] is overwritten next
}

// NewFlightRecorder creates a recorder retaining depth records per
// queue pair (DefaultFlightDepth when depth <= 0).
func NewFlightRecorder(depth int) *FlightRecorder {
	if depth <= 0 {
		depth = DefaultFlightDepth
	}
	return &FlightRecorder{depth: depth, rings: make(map[int]*flightRing)}
}

// Depth returns the per-queue-pair ring capacity.
func (f *FlightRecorder) Depth() int {
	if f == nil {
		return 0
	}
	return f.depth
}

// ring returns the queue pair's ring, creating it on first use.
func (f *FlightRecorder) ring(qp int) *flightRing {
	f.mu.RLock()
	r := f.rings[qp]
	f.mu.RUnlock()
	if r != nil {
		return r
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if r = f.rings[qp]; r == nil {
		r = &flightRing{buf: make([]FlightRecord, f.depth)}
		f.rings[qp] = r
	}
	return r
}

// Record appends one completed command to its queue pair's ring,
// overwriting the oldest record once the ring is full.
func (f *FlightRecorder) Record(qp int, rec FlightRecord) {
	if f == nil {
		return
	}
	r := f.ring(qp)
	r.mu.Lock()
	r.buf[r.next%uint64(len(r.buf))] = rec
	r.next++
	r.mu.Unlock()
}

// QueuePair returns the queue pair's retained records, oldest first.
func (f *FlightRecorder) QueuePair(qp int) []FlightRecord {
	if f == nil {
		return nil
	}
	f.mu.RLock()
	r := f.rings[qp]
	f.mu.RUnlock()
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	depth := uint64(len(r.buf))
	count := n
	if count > depth {
		count = depth
	}
	out := make([]FlightRecord, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, r.buf[i%depth])
	}
	return out
}

// QueuePairs lists the queue pairs that have recorded, ascending.
func (f *FlightRecorder) QueuePairs() []int {
	if f == nil {
		return nil
	}
	f.mu.RLock()
	out := make([]int, 0, len(f.rings))
	for qp := range f.rings {
		out = append(out, qp)
	}
	f.mu.RUnlock()
	sort.Ints(out)
	return out
}

// Snapshot returns every queue pair's retained records, oldest first
// within each queue pair.
func (f *FlightRecorder) Snapshot() map[int][]FlightRecord {
	if f == nil {
		return nil
	}
	out := make(map[int][]FlightRecord)
	for _, qp := range f.QueuePairs() {
		out[qp] = f.QueuePair(qp)
	}
	return out
}
