package nvmeof

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/faults"
	"github.com/nvme-cr/nvmecr/internal/model"
)

// TestFaultConnMidReadKillRetriesIdempotently kills the connection the
// moment the first READ capsule has been written: the command reaches
// the target but its completion never returns. The pool must retry the
// READ on a sibling queue pair without ever duplicating a completed
// command — verified by CID accounting over the flight recorder dump.
func TestFaultConnMidReadKillRetriesIdempotently(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: 4 * model.MB})
	plan := faults.NewPlan(21, faults.Rule{
		Name: "kill-mid-read", Layer: faults.LayerTCP, Op: "READ", Nth: 1,
		Kind: faults.KindConnReset,
	})
	pool, err := DialPool(addr, 1, PoolConfig{
		QueuePairs:     2,
		CommandTimeout: 2 * time.Second,
		Dial:           FaultDialer(plan),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	payload := bytes.Repeat([]byte("ckpt"), 1024)
	if err := pool.WriteAt(0, payload); err != nil {
		t.Fatal(err)
	}
	got, err := pool.ReadAt(0, int64(len(payload)))
	if err != nil {
		t.Fatalf("read across injected reset: %v\n%s", err, plan.FormatTrace())
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read returned wrong data after retry")
	}
	if plan.Injections() != 1 {
		t.Fatalf("plan delivered %d injections, want 1\n%s", plan.Injections(), plan.FormatTrace())
	}

	// CID accounting over the flight dump: exactly one READ attempt
	// failed at the transport (the killed capsule), exactly one READ
	// completed with StatusOK — the retry did not duplicate a
	// completed command — and the two attempts used different queue
	// pairs under distinct CIDs.
	type attempt struct {
		qp  int
		cid uint16
	}
	var failed, completed []attempt
	for qp, recs := range pool.Flight().Snapshot() {
		for _, r := range recs {
			if r.Opcode != OpReadCmd {
				continue
			}
			if r.Err != "" {
				failed = append(failed, attempt{qp, r.CID})
			} else if r.Status == StatusOK {
				completed = append(completed, attempt{qp, r.CID})
			}
		}
	}
	if len(failed) != 1 {
		t.Fatalf("flight dump shows %d failed READ attempts, want 1: %+v", len(failed), failed)
	}
	if len(completed) != 1 {
		t.Fatalf("flight dump shows %d completed READs, want exactly 1 (no duplication): %+v",
			len(completed), completed)
	}
	if failed[0].qp == completed[0].qp {
		t.Fatalf("retry reused the killed queue pair %d", failed[0].qp)
	}

	// The pool recorded the retry, and the killed queue pair is
	// eventually re-dialed (through the fault dialer again).
	var retries uint64
	for _, s := range pool.Snapshot() {
		retries += s.Retries
	}
	if retries == 0 {
		t.Fatal("pool telemetry shows no retries")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		healthy := 0
		for _, s := range pool.Snapshot() {
			if s.Healthy {
				healthy++
			}
		}
		if healthy == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("killed queue pair never reconnected (%d/2 healthy)", healthy)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFaultConnDuplicateFrameIsDiscarded duplicates the first WRITE
// capsule on the wire: the target executes the same CID twice and sends
// two completions. The host must deliver exactly one and drop the
// stale duplicate without poisoning the queue pair.
func TestFaultConnDuplicateFrameIsDiscarded(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: 4 * model.MB})
	plan := faults.NewPlan(22, faults.Rule{
		Layer: faults.LayerTCP, Op: "WRITE", Nth: 1, Kind: faults.KindDuplicate,
	})
	h, err := DialConfig(addr, 1, HostConfig{
		CommandTimeout: 2 * time.Second,
		Dial:           FaultDialer(plan),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	payload := []byte("duplicated capsule payload")
	if err := h.WriteAt(0, payload); err != nil {
		t.Fatalf("duplicated write failed: %v", err)
	}
	// The queue pair survives the stale duplicate completion and keeps
	// carrying commands.
	got, err := h.ReadAt(0, int64(len(payload)))
	if err != nil {
		t.Fatalf("read after duplicate completion: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("data corrupted by duplicated WRITE capsule")
	}
	if !h.Healthy() {
		t.Fatal("queue pair poisoned by a duplicate completion")
	}
}

// TestFaultConnBlackholeHitsDeadline swallows one FLUSH capsule: the
// command never reaches the target, so it must end in ErrTimeout —
// and the queue pair stays usable (a timeout abandons the command, not
// the connection).
func TestFaultConnBlackholeHitsDeadline(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: 4 * model.MB})
	plan := faults.NewPlan(23, faults.Rule{
		Layer: faults.LayerTCP, Op: "FLUSH", Nth: 1, Kind: faults.KindBlackhole,
	})
	h, err := DialConfig(addr, 1, HostConfig{
		CommandTimeout: 200 * time.Millisecond,
		Dial:           FaultDialer(plan),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	if err := h.Flush(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("blackholed FLUSH returned %v, want ErrTimeout", err)
	}
	if !h.Healthy() {
		t.Fatal("queue pair poisoned by a deadline")
	}
	if err := h.WriteAt(0, []byte("after the blackhole")); err != nil {
		t.Fatalf("write after blackholed command: %v", err)
	}
}
