package nvmeof

import (
	"math"
	"sync"
	"testing"
)

// TestIndexRingFIFO pins the single-threaded contract: a ring holds
// exactly its capacity, rejects pushes when full and pops when empty,
// and yields indices in insertion order.
func TestIndexRingFIFO(t *testing.T) {
	const cap = 8
	r := newIndexRing(cap, 0)
	if v, ok := r.pop(); ok {
		t.Fatalf("pop on empty ring returned %d", v)
	}
	for i := 0; i < cap; i++ {
		if !r.push(uint16(i)) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if r.push(99) {
		t.Fatal("push accepted on a full ring")
	}
	if got := r.occupancy(); got != cap {
		t.Fatalf("occupancy = %d, want %d", got, cap)
	}
	for i := 0; i < cap; i++ {
		v, ok := r.pop()
		if !ok {
			t.Fatalf("pop %d failed on a non-empty ring", i)
		}
		if v != uint16(i) {
			t.Fatalf("pop %d = %d, want FIFO order", i, v)
		}
	}
	if _, ok := r.pop(); ok {
		t.Fatal("pop succeeded on a drained ring")
	}
	if got := r.occupancy(); got != 0 {
		t.Fatalf("occupancy = %d after drain", got)
	}
}

// TestIndexRingTicketWraparound starts the ticket sequence just below
// the uint32 boundary so every push/pop pair crosses it within a few
// operations: the signed-difference comparisons must treat the wrapped
// tickets as a continuation, not a reset.
func TestIndexRingTicketWraparound(t *testing.T) {
	for _, start := range []uint32{math.MaxUint32 - 3, math.MaxUint32, math.MaxUint32 - 16} {
		r := newIndexRing(8, start)
		for round := 0; round < 16; round++ {
			for i := 0; i < 8; i++ {
				if !r.push(uint16(round*8 + i)) {
					t.Fatalf("start=%d round=%d: push %d rejected", start, round, i)
				}
			}
			for i := 0; i < 8; i++ {
				v, ok := r.pop()
				if !ok || v != uint16(round*8+i) {
					t.Fatalf("start=%d round=%d: pop = %d,%v, want %d", start, round, v, ok, round*8+i)
				}
			}
		}
	}
}

// TestIndexRingConcurrent hammers the ring from concurrent producers
// and consumers (run under -race by scripts/verify.sh): every pushed
// index must come back exactly once, and the ring must end empty.
func TestIndexRingConcurrent(t *testing.T) {
	const cap = 64
	const perWorker = 2000
	const workers = 8
	r := newIndexRing(cap, math.MaxUint32-100) // cross the ticket boundary mid-run
	// Seed half the capacity so producers and consumers overlap from
	// the start.
	for i := 0; i < cap/2; i++ {
		r.push(uint16(i))
	}
	var got [cap]int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := map[uint16]int64{}
			for i := 0; i < perWorker; i++ {
				if v, ok := r.pop(); ok {
					local[v]++
					for !r.push(v) {
					}
				}
			}
			mu.Lock()
			for v, n := range local {
				got[v] += n
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	// Drain: exactly the seeded indices remain, each once.
	seen := map[uint16]bool{}
	for {
		v, ok := r.pop()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("index %d drained twice", v)
		}
		seen[v] = true
	}
	if len(seen) != cap/2 {
		t.Fatalf("drained %d indices, want the %d seeded", len(seen), cap/2)
	}
	for v := range seen {
		if v >= cap/2 {
			t.Fatalf("drained index %d was never pushed", v)
		}
	}
}

// FuzzIndexRing drives a ring from a fuzzer-chosen ticket start —
// including starts that wrap uint32 within the run — through an
// arbitrary push/pop sequence, checking every step against a plain
// slice model.
func FuzzIndexRing(f *testing.F) {
	f.Add(uint32(0), []byte{0, 1, 0, 0, 1, 1})
	f.Add(uint32(math.MaxUint32-2), []byte{0, 0, 0, 0, 0, 1, 1, 1, 1, 1})
	f.Add(uint32(math.MaxUint32), []byte{0, 1, 0, 1, 0, 1, 0, 1})
	f.Fuzz(func(t *testing.T, start uint32, ops []byte) {
		const cap = 8
		r := newIndexRing(cap, start)
		var model []uint16
		next := uint16(0)
		for _, op := range ops {
			if op%2 == 0 {
				ok := r.push(next)
				wantOK := len(model) < cap
				if ok != wantOK {
					t.Fatalf("push(%d) = %v with %d/%d held", next, ok, len(model), cap)
				}
				if ok {
					model = append(model, next)
				}
				next++
			} else {
				v, ok := r.pop()
				wantOK := len(model) > 0
				if ok != wantOK {
					t.Fatalf("pop = %v with %d held", ok, len(model))
				}
				if ok {
					if v != model[0] {
						t.Fatalf("pop = %d, want %d (FIFO)", v, model[0])
					}
					model = model[1:]
				}
			}
			if occ := r.occupancy(); occ != len(model) {
				t.Fatalf("occupancy = %d, model holds %d", occ, len(model))
			}
		}
	})
}

// BenchmarkIndexRing measures the free list's single-threaded cycle
// cost: one pop plus one push, the per-command ring overhead of the
// polled submission path.
func BenchmarkIndexRing(b *testing.B) {
	r := newIndexRing(hostQueueDepth, 0)
	for i := 0; i < hostQueueDepth; i++ {
		r.push(uint16(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, ok := r.pop()
		if !ok {
			b.Fatal("ring empty")
		}
		r.push(v)
	}
}
