package nvmeof

import (
	"strings"
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/telemetry"
)

// startTelemetryTarget exports one namespace and returns its address.
func startTelemetryTarget(t *testing.T, size int64) (*Target, string) {
	t.Helper()
	tgt := NewTarget()
	if err := tgt.AddNamespace(1, NewMemNamespace(size)); err != nil {
		t.Fatal(err)
	}
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tgt.Close() })
	return tgt, addr
}

// TestPoolRoundTripTelemetry drives commands through a HostPool against
// a live target and asserts both sides' counters move: the acceptance
// check that telemetry observes real traffic, not just unit updates.
func TestPoolRoundTripTelemetry(t *testing.T) {
	tgt, addr := startTelemetryTarget(t, 1<<20)
	reg := telemetry.New()
	p, err := DialPool(addr, 1, PoolConfig{QueuePairs: 2, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	payload := make([]byte, 4096)
	const writes = 16
	for i := 0; i < writes; i++ {
		if err := p.WriteAt(int64(i)*4096, payload); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.ReadAt(0, 4096); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}

	snaps := p.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("Snapshot returned %d queue pairs, want 2", len(snaps))
	}
	var commands, bytesOut, latCount uint64
	for _, s := range snaps {
		if !s.Healthy {
			t.Errorf("qp %d unhealthy", s.ID)
		}
		commands += s.Commands
		bytesOut += s.BytesOut
		latCount += s.Latency.Count
		if s.Commands > 0 && s.Latency.P50 <= 0 {
			t.Errorf("qp %d: %d commands but P50 = %v", s.ID, s.Commands, s.Latency.P50)
		}
	}
	// Per qp: CONNECT at dial + FLUSH at the barrier; plus the writes
	// and the read spread across the pool.
	wantMin := uint64(writes + 1 + 2 + 2)
	if commands < wantMin {
		t.Errorf("pool commands = %d, want >= %d", commands, wantMin)
	}
	if bytesOut < writes*4096 {
		t.Errorf("pool bytes out = %d, want >= %d", bytesOut, writes*4096)
	}
	if latCount != commands {
		t.Errorf("latency observations = %d, commands = %d", latCount, commands)
	}

	// Target-side view of the same traffic.
	ts := tgt.Snapshot()
	if ts.Commands != commands {
		t.Errorf("target commands = %d, initiator commands = %d", ts.Commands, commands)
	}
	if ts.BytesIn != bytesOut {
		t.Errorf("target bytes in = %d, initiator bytes out = %d", ts.BytesIn, bytesOut)
	}
	if ts.Latency.Count != commands {
		t.Errorf("target latency observations = %d, want %d", ts.Latency.Count, commands)
	}
	if len(ts.QueuePairs) != 2 {
		t.Errorf("target sees %d queue pairs, want 2", len(ts.QueuePairs))
	}

	// Both registries must expose the traffic in Prometheus form.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`nvmecr_qp_commands_total{qp="0"}`,
		`nvmecr_qp_commands_total{qp="1"}`,
		"nvmecr_pool_queue_pairs 2",
		"# TYPE nvmecr_qp_command_latency_seconds histogram",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("pool exposition missing %q", want)
		}
	}
	sb.Reset()
	if err := tgt.Telemetry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "nvmecr_target_commands_total") {
		t.Errorf("target exposition missing nvmecr_target_commands_total")
	}
}

// TestHostTelemetryDefaultRegistry: a standalone Host with no registry
// configured still snapshots real counts from a private registry.
func TestHostTelemetryDefaultRegistry(t *testing.T) {
	_, addr := startTelemetryTarget(t, 1<<20)
	h, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.WriteAt(0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	snaps := h.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("Snapshot returned %d queue pairs, want 1", len(snaps))
	}
	// CONNECT + WRITE.
	if snaps[0].Commands != 2 {
		t.Errorf("commands = %d, want 2", snaps[0].Commands)
	}
	if snaps[0].BytesOut != 5 {
		t.Errorf("bytes out = %d, want 5", snaps[0].BytesOut)
	}
	if h.Telemetry() == nil {
		t.Error("Telemetry() = nil, want private registry")
	}
}

// TestPoolErrorTelemetry: a command the target rejects counts as an
// initiator-side error, not a latency observation.
func TestPoolErrorTelemetry(t *testing.T) {
	_, addr := startTelemetryTarget(t, 1<<20)
	reg := telemetry.New()
	p, err := DialPool(addr, 1, PoolConfig{QueuePairs: 1, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Out-of-range write: the target answers StatusOutOfRange, a
	// definitive completion — no transport error, no retry.
	if err := p.WriteAt(1<<30, []byte("x")); err == nil {
		t.Fatal("out-of-range write succeeded")
	}
	s := p.Snapshot()[0]
	// A rejected completion is still a completed round trip, so it is
	// not counted in Errors (those are transport failures); the write
	// payload must not count as delivered either way.
	if s.Commands < 2 {
		t.Errorf("commands = %d, want >= 2 (connect + rejected write)", s.Commands)
	}
	if s.Retries != 0 {
		t.Errorf("retries = %d, want 0 (status errors are not retried)", s.Retries)
	}
}

// TestQueueInterface locks the promoted interface: both initiator types
// satisfy it, and a function taking a Queue drives either transparently.
func TestQueueInterface(t *testing.T) {
	_, addr := startTelemetryTarget(t, 1<<20)
	drive := func(q Queue) {
		t.Helper()
		if err := q.WriteAt(0, []byte("abc")); err != nil {
			t.Fatal(err)
		}
		got, err := q.ReadAt(0, 3)
		if err != nil || string(got) != "abc" {
			t.Fatalf("read = %q, %v", got, err)
		}
		if size, err := q.Identify(); err != nil || size != 1<<20 {
			t.Fatalf("identify = %d, %v", size, err)
		}
		if len(q.Snapshot()) == 0 || q.Telemetry() == nil {
			t.Fatal("queue lacks telemetry")
		}
		if err := q.Close(); err != nil {
			t.Fatal(err)
		}
	}
	h, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	drive(h)
	p, err := DialPool(addr, 1, PoolConfig{QueuePairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	drive(p)
}

// TestReconnectTelemetry: a repaired queue pair continues the same
// series (registry get-or-create) and bumps the reconnect counter.
func TestReconnectTelemetry(t *testing.T) {
	tgt, addr := startTelemetryTarget(t, 1<<20)
	reg := telemetry.New()
	p, err := DialPool(addr, 1, PoolConfig{
		QueuePairs:       1,
		MaxRetries:       4,
		RetryBackoff:     5 * time.Millisecond,
		ReconnectBackoff: 5 * time.Millisecond,
		Telemetry:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	before := p.Snapshot()[0]

	// Kill the connection out from under the pool; the reconnector
	// re-dials the same target.
	tgt.mu.Lock()
	for _, qp := range tgt.conns {
		qp.conn.Close()
	}
	tgt.mu.Unlock()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := p.ReadAt(0, 0); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool never recovered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	after := p.Snapshot()[0]
	if after.Reconnects <= before.Reconnects {
		t.Errorf("reconnects = %d, want > %d", after.Reconnects, before.Reconnects)
	}
	if after.Commands <= before.Commands {
		t.Errorf("commands after reconnect = %d, want > %d (same series)", after.Commands, before.Commands)
	}
}
