package nvmeof

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/faults"
	"github.com/nvme-cr/nvmecr/internal/plane"
)

// The equivalence property: a seeded randomized workload run against a
// single-target plane and against a StripedPlane over 2/3/4 targets
// must produce byte-identical read-back and identical durability
// semantics, including when targets are killed and restarted mid-batch.
// Kills are scheduled by the shared internal/faults plan format — one
// plan per world, same seed, evaluated at the same op-space points, so
// both worlds take their hits at the same moments. Every write retries
// until acknowledged, so an acked write surviving restart is exactly
// the durability both worlds must share. Failures print the seed.

const (
	eqStripeUnit = 4 * 1024
	eqChildSize  = 64 * 1024 // per-target namespace
	eqBursts     = 5
	eqBurstWidth = 4 // concurrent writes per burst — what batches form from
	eqMaxWrite   = 8 * 1024
)

// eqWorld is one side of the comparison: a plane plus the target
// processes behind it, restartable in place.
type eqWorld struct {
	t      *testing.T
	plane  plane.Plane
	sp     *StripedPlane
	plan   *faults.Plan
	expect []byte

	mu      sync.Mutex
	targets []*Target
	nss     []*MemNamespace
	addrs   []string
}

// newEqWorld builds a world of n targets (n=1 is the single-target
// reference) striped at eqStripeUnit, each of total/n bytes so every
// world exposes exactly `total` bytes and offsets mean the same thing.
func newEqWorld(t *testing.T, n int, total, seed int64) *eqWorld {
	return newMirroredEqWorld(t, n, 1, total, seed)
}

// newMirroredEqWorld builds a world of groups*replicas targets mirrored
// R-way: the striped address space is `total` bytes over `groups`
// mirror groups, each member namespace total/groups bytes, so every
// world (single, striped, mirrored) exposes identical capacity and
// offsets mean the same thing.
func newMirroredEqWorld(t *testing.T, groups, replicas int, total, seed int64) *eqWorld {
	t.Helper()
	n := groups * replicas
	w := &eqWorld{
		t: t,
		plan: faults.NewPlan(seed, faults.Rule{
			Name: "burst-kill", Layer: faults.LayerProcess, Op: "burst",
			Probability: 0.3, Count: 2, Kind: faults.KindCrash,
		}),
	}
	children := make([]plane.Plane, n)
	childSize := total / int64(groups)
	for i := 0; i < n; i++ {
		ns := NewMemNamespace(childSize)
		tgt := NewTarget()
		if err := tgt.AddNamespace(1, ns); err != nil {
			t.Fatal(err)
		}
		addr, err := tgt.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		pool, err := DialPool(addr, 1, PoolConfig{
			QueuePairs:       2,
			CommandTimeout:   time.Second,
			MaxRetries:       2,
			RetryBackoff:     time.Millisecond,
			ReconnectBackoff: time.Millisecond,
			Batch:            BatchConfig{Enabled: true, MergeWrites: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pool.Close() })
		tp, err := NewTCPPlane(pool, 0, childSize)
		if err != nil {
			t.Fatal(err)
		}
		children[i] = tp
		w.targets = append(w.targets, tgt)
		w.nss = append(w.nss, ns)
		w.addrs = append(w.addrs, addr)
	}
	sp, err := NewMirroredPlane(children, eqStripeUnit, replicas)
	if err != nil {
		t.Fatal(err)
	}
	w.plane = sp
	w.sp = sp
	w.expect = make([]byte, sp.Size())
	t.Cleanup(func() {
		w.mu.Lock()
		defer w.mu.Unlock()
		for _, tgt := range w.targets {
			tgt.Close()
		}
	})
	return w
}

// kill closes target i and restarts a fresh Target process on the same
// address exporting the SAME namespace — the device outlives the
// process, exactly the crash model CrashPlane applies to simulated
// planes. Acked (durable) data must survive; in-flight batches die with
// the connections.
func (w *eqWorld) kill(i int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.targets[i].Close()
	tgt := NewTarget()
	if err := tgt.AddNamespace(1, w.nss[i]); err != nil {
		return err
	}
	var err error
	for try := 0; try < 400; try++ {
		if _, err = tgt.Listen(w.addrs[i]); err == nil {
			w.targets[i] = tgt
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("restart target %d: %w", i, err)
}

// wipeKill is the disk-death variant of kill: target i's process dies
// AND its namespace is replaced with a fresh empty one — the data is
// gone. Only a mirror sibling (and migration) can bring the member's
// bytes back. Call it only on a member already marked down.
func (w *eqWorld) wipeKill(i int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.targets[i].Close()
	w.nss[i] = NewMemNamespace(w.nss[i].Size())
	tgt := NewTarget()
	if err := tgt.AddNamespace(1, w.nss[i]); err != nil {
		return err
	}
	var err error
	for try := 0; try < 400; try++ {
		if _, err = tgt.Listen(w.addrs[i]); err == nil {
			w.targets[i] = tgt
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("restart wiped target %d: %w", i, err)
}

// mustSync retries one rebuild chunk until it copies — target kills
// mid-migration make individual chunk syncs fail transiently.
func (w *eqWorld) mustSync(child int, off, length int64) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, err := w.sp.SyncChunk(child, off, length)
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("sync chunk [%d,+%d) of child %d never completed: %w", off, length, child, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// mustWrite retries a plane write until it is acknowledged: the workload
// converges regardless of kills, so both worlds end in the same state.
func (w *eqWorld) mustWrite(off int64, data []byte) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		err := w.plane.Write(nil, off, int64(len(data)), data, 0)
		if err == nil {
			w.mu.Lock()
			copy(w.expect[off:], data)
			w.mu.Unlock()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("write [%d,+%d) never acked: %w", off, len(data), err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// mustRead retries a plane read until it succeeds.
func (w *eqWorld) mustRead(off, length int64) ([]byte, error) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		data, err := w.plane.Read(nil, off, length, 0)
		if err == nil {
			return data, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("read [%d,+%d) never served: %w", off, length, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// mustFlush retries the durability barrier until every target accepts.
func (w *eqWorld) mustFlush() error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		err := w.plane.Flush(nil)
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("flush never completed: %w", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// runBurst issues eqBurstWidth disjoint-offset writes concurrently.
// When the world's fault plan fires on this burst, one target is killed
// concurrently with the writes — mid-batch — and restarted.
func (w *eqWorld) runBurst(burst int, offs []int64, payloads [][]byte) error {
	errs := make([]error, len(offs)+1)
	var wg sync.WaitGroup
	if _, fire := w.plan.Eval(faults.Point{
		Layer: faults.LayerProcess, Op: "burst", Rank: -1, Now: time.Duration(burst),
	}); fire {
		victim := burst % len(w.targets)
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[len(offs)] = w.kill(victim)
		}()
	}
	for i := range offs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.mustWrite(offs[i], payloads[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// eqIteration runs one seeded workload against the single-target world
// and a striped world of the given width, comparing as it goes.
func eqIteration(t *testing.T, seed int64, width int) {
	t.Helper()
	// A total that tiles exactly into whole stripe units for width 1
	// and for this width, so both worlds expose identical capacity.
	total := (4 * int64(eqChildSize)) / (eqStripeUnit * int64(width)) * (eqStripeUnit * int64(width))
	single := newEqWorld(t, 1, total, seed)
	striped := newEqWorld(t, width, total, seed)
	if single.plane.Size() != total || striped.plane.Size() != total {
		t.Fatalf("seed %d: world sizes diverge: %d vs %d (want %d)",
			seed, single.plane.Size(), striped.plane.Size(), total)
	}
	size := total
	rng := rand.New(rand.NewSource(seed))

	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("seed=%d width=%d: %s\nsingle: %s\nstriped: %s",
			seed, width, fmt.Sprintf(format, args...),
			single.plan.FormatTrace(), striped.plan.FormatTrace())
	}

	for burst := 0; burst < eqBursts; burst++ {
		// Disjoint offsets keep concurrent content deterministic: carve
		// the space into burst-width slots and write inside each.
		slot := size / eqBurstWidth
		offs := make([]int64, eqBurstWidth)
		payloads := make([][]byte, eqBurstWidth)
		for i := range offs {
			length := 1 + rng.Int63n(eqMaxWrite)
			if length > slot {
				length = slot
			}
			offs[i] = int64(i)*slot + rng.Int63n(slot-length+1)
			payloads[i] = make([]byte, length)
			rng.Read(payloads[i])
		}
		if err := single.runBurst(burst, offs, payloads); err != nil {
			fail("single world burst %d: %v", burst, err)
		}
		if err := striped.runBurst(burst, offs, payloads); err != nil {
			fail("striped world burst %d: %v", burst, err)
		}

		// Durability barrier, then a randomized cross-check read.
		if err := single.mustFlush(); err != nil {
			fail("single flush after burst %d: %v", burst, err)
		}
		if err := striped.mustFlush(); err != nil {
			fail("striped flush after burst %d: %v", burst, err)
		}
		length := 1 + rng.Int63n(4*eqStripeUnit)
		off := rng.Int63n(size - length)
		a, err := single.mustRead(off, length)
		if err != nil {
			fail("single read after burst %d: %v", burst, err)
		}
		b, err := striped.mustRead(off, length)
		if err != nil {
			fail("striped read after burst %d: %v", burst, err)
		}
		if !bytes.Equal(a, b) {
			fail("burst %d: read [%d,+%d) diverges between worlds", burst, off, length)
		}
	}

	// Full read-back: both worlds byte-identical to the expected image —
	// every acked write survived every kill.
	a, err := single.mustRead(0, size)
	if err != nil {
		fail("single full read: %v", err)
	}
	b, err := striped.mustRead(0, size)
	if err != nil {
		fail("striped full read: %v", err)
	}
	if !bytes.Equal(a, b) {
		fail("full read-back diverges between worlds")
	}
	if !bytes.Equal(a, single.expect) {
		fail("single world lost acked data")
	}
	if !bytes.Equal(b, striped.expect) {
		fail("striped world lost acked data")
	}
}

// TestStripedSingleEquivalence is the acceptance property: 100 seeded
// iterations (>= 20 in -short mode) across stripe widths 2, 3, and 4,
// each with probabilistic mid-batch target kills. Reproduce any failure
// by its printed seed.
func TestStripedSingleEquivalence(t *testing.T) {
	iters := 100
	if testing.Short() {
		iters = 20
	}
	const baseSeed = 0xC0FFEE
	for i := 0; i < iters; i++ {
		seed := int64(baseSeed + i)
		width := 2 + i%3
		t.Run(fmt.Sprintf("seed=%d/width=%d", seed, width), func(t *testing.T) {
			eqIteration(t, seed, width)
		})
	}
}
