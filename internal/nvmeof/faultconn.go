package nvmeof

import (
	"encoding/binary"
	"net"
	"time"

	"github.com/nvme-cr/nvmecr/internal/faults"
)

// FaultConn wraps a net.Conn with fault injection driven by a
// faults.Plan, for exercising the real TCP plane's failure handling —
// HostPool deadlines, idempotent retry, reconnect — against connection
// resets, truncated or duplicated frames, and blackholed capsules.
//
// Write-side points carry the capsule's opcode name as the op
// ("CONNECT", "READ", "WRITE", …) when the frame starts with a command
// header — the initiator flushes one capsule per Write, so this is
// exact for host-side injection — and "write" otherwise. Read-side
// points use op "read"; the byte stream arrives in arbitrary chunks, so
// read rules count syscalls, not capsules. Points carry rank -1 and the
// plan's wall-clock Elapsed time.
//
// Injected kinds:
//
//   - KindConnReset: the frame is sent, then the connection closes —
//     the command reaches the target but its completion never returns.
//   - KindTruncate: only the first Arg bytes are sent, then the
//     connection closes (a capsule cut mid-flight).
//   - KindDuplicate: the frame is sent twice (the peer sees the same
//     capsule, same CID, twice).
//   - KindBlackhole: the frame is silently discarded; the command can
//     only end in its deadline.
//   - KindDelay: a real Arg-nanosecond sleep before the operation.
//
// A FaultConn is as concurrency-safe as the underlying net.Conn: one
// writer and one reader goroutine, the initiator's usage.
type FaultConn struct {
	net.Conn
	plan *faults.Plan
}

// NewFaultConn wraps conn with injections from plan.
func NewFaultConn(conn net.Conn, plan *faults.Plan) *FaultConn {
	return &FaultConn{Conn: conn, plan: plan}
}

// FaultDialer returns a dial function (for HostConfig.Dial or
// PoolConfig.Dial) that wraps every new connection in a FaultConn.
// Reconnected queue pairs are wrapped too, so a plan can schedule
// faults across an outage and its repair.
func FaultDialer(plan *faults.Plan) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return NewFaultConn(conn, plan), nil
	}
}

// frameOp names a write-side frame for rule scoping: the capsule's
// opcode when the frame starts with a command header, "write" otherwise.
func frameOp(b []byte) string {
	if len(b) >= cmdHdrLen && binary.LittleEndian.Uint32(b) == cmdMagic {
		return Opcode(b[4]).String()
	}
	return "write"
}

func (c *FaultConn) Write(b []byte) (int, error) {
	inj, ok := c.plan.Eval(faults.Point{
		Layer: faults.LayerTCP, Op: frameOp(b), Rank: -1, Now: c.plan.Elapsed(),
	})
	if ok {
		switch inj.Kind {
		case faults.KindDelay:
			time.Sleep(time.Duration(inj.Arg))
		case faults.KindConnReset:
			n, err := c.Conn.Write(b)
			c.Conn.Close()
			if err != nil {
				return n, err
			}
			return n, &faults.Error{Inj: inj}
		case faults.KindTruncate:
			keep := inj.Arg
			if keep < 0 || keep > int64(len(b)) {
				keep = int64(len(b)) / 2
			}
			n, err := c.Conn.Write(b[:keep])
			c.Conn.Close()
			if err != nil {
				return n, err
			}
			return n, &faults.Error{Inj: inj}
		case faults.KindDuplicate:
			if _, err := c.Conn.Write(b); err != nil {
				return 0, err
			}
			return c.Conn.Write(b)
		case faults.KindBlackhole:
			// Swallowed: the caller believes the frame is on the wire.
			return len(b), nil
		}
	}
	return c.Conn.Write(b)
}

func (c *FaultConn) Read(b []byte) (int, error) {
	inj, ok := c.plan.Eval(faults.Point{
		Layer: faults.LayerTCP, Op: "read", Rank: -1, Now: c.plan.Elapsed(),
	})
	if ok {
		switch inj.Kind {
		case faults.KindDelay:
			time.Sleep(time.Duration(inj.Arg))
		case faults.KindConnReset:
			c.Conn.Close()
			return 0, &faults.Error{Inj: inj}
		}
	}
	return c.Conn.Read(b)
}
