package nvmeof

import (
	"fmt"

	"github.com/nvme-cr/nvmecr/internal/sim"
)

// TCPPlane adapts a TCP NVMe-oF initiator (one queue pair or a pool of
// them) to the plane.Plane interface, so the full microfs control plane
// (provenance log, snapshots, crash recovery) runs against a real
// remote target over real sockets. It is the functional counterpart of
// RemotePlane: commands cost wall-clock network time rather than
// modeled virtual time, so it is used for integration and durability
// testing, not for the timed experiments.
type TCPPlane struct {
	host Queue
	base int64
	size int64
}

// NewTCPPlane opens a partition [base, base+size) of the connected
// namespace.
func NewTCPPlane(host Queue, base, size int64) (*TCPPlane, error) {
	if base < 0 || size <= 0 || base+size > host.NamespaceSize() {
		return nil, fmt.Errorf("nvmeof: partition [%d,+%d) outside namespace of %d bytes",
			base, size, host.NamespaceSize())
	}
	return &TCPPlane{host: host, base: base, size: size}, nil
}

// Size implements plane.Plane.
func (t *TCPPlane) Size() int64 { return t.size }

func (t *TCPPlane) check(off, length int64) error {
	if off < 0 || length < 0 || off+length > t.size {
		return fmt.Errorf("nvmeof: access [%d,+%d) outside partition of %d bytes", off, length, t.size)
	}
	return nil
}

// Write implements plane.Plane. Synthetic (nil-data) writes transfer
// zeros so that the remote range genuinely exists.
func (t *TCPPlane) Write(p *sim.Proc, off, length int64, data []byte, cmdUnit int64) error {
	if err := t.check(off, length); err != nil {
		return err
	}
	if length == 0 {
		return nil
	}
	if data == nil {
		data = make([]byte, length)
	}
	// Split into capsule-sized commands.
	const maxChunk = MaxDataLen / 2
	for sent := int64(0); sent < length; sent += maxChunk {
		end := sent + maxChunk
		if end > length {
			end = length
		}
		if err := t.host.WriteAt(t.base+off+sent, data[sent:end]); err != nil {
			return err
		}
	}
	return nil
}

// WriteV implements plane.VectorWriter: the concatenation of bufs is
// stored at off, forwarded as gather lists when the initiator can
// submit them zero-copy (VectorQueue) and concatenated into one staging
// buffer otherwise. Striped planes use this to issue one vectored
// command per backing target instead of one command per stripe unit.
func (t *TCPPlane) WriteV(p *sim.Proc, off int64, bufs [][]byte) error {
	var length int64
	for _, b := range bufs {
		length += int64(len(b))
	}
	if err := t.check(off, length); err != nil {
		return err
	}
	if length == 0 {
		return nil
	}
	vq, ok := t.host.(VectorQueue)
	if !ok {
		// The initiator cannot gather; stage once and take the copy.
		flat := make([]byte, 0, length)
		for _, b := range bufs {
			flat = append(flat, b...)
		}
		return t.Write(p, off, length, flat, 0)
	}
	// Split into capsule-sized vectored commands, re-slicing the gather
	// list per chunk (a boundary buffer contributes a sub-slice to two
	// consecutive chunks; the caller's bufs are never mutated).
	const maxChunk = MaxDataLen / 2
	if length <= maxChunk {
		// Single capsule: the caller's gather list goes down as-is, with
		// no per-chunk vector to build.
		return vq.WriteAtV(t.base+off, bufs)
	}
	vec := make([][]byte, 0, len(bufs))
	var sent int64
	i, cur := 0, []byte(nil)
	for sent < length {
		vec = vec[:0]
		var n int64
		for n < maxChunk {
			if len(cur) == 0 {
				if i >= len(bufs) {
					break
				}
				cur = bufs[i]
				i++
				continue
			}
			if take := maxChunk - n; int64(len(cur)) > take {
				vec = append(vec, cur[:take])
				cur = cur[take:]
				n += take
			} else {
				vec = append(vec, cur)
				n += int64(len(cur))
				cur = nil
			}
		}
		if n == 0 {
			break
		}
		if err := vq.WriteAtV(t.base+off+sent, vec); err != nil {
			return err
		}
		sent += n
	}
	return nil
}

// Read implements plane.Plane.
func (t *TCPPlane) Read(p *sim.Proc, off, length int64, cmdUnit int64) ([]byte, error) {
	if err := t.check(off, length); err != nil {
		return nil, err
	}
	if length == 0 {
		return nil, nil
	}
	out := make([]byte, 0, length)
	const maxChunk = MaxDataLen / 2
	for got := int64(0); got < length; got += maxChunk {
		end := got + maxChunk
		if end > length {
			end = length
		}
		chunk, err := t.host.ReadAt(t.base+off+got, end-got)
		if err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// Flush implements plane.Plane.
func (t *TCPPlane) Flush(p *sim.Proc) error { return t.host.Flush() }
