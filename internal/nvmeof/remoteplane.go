// Package nvmeof implements NVMe-over-Fabrics, in two forms:
//
//   - A simulated RDMA transport (this file): the userspace SPDK
//     initiator-to-target path of paper Figure 4, with calibrated
//     latency on the deterministic simulation substrate. All experiment
//     timing uses this path.
//   - A real TCP transport (protocol.go, target.go, host.go): a target
//     daemon and host client speaking a capsule protocol over net.Conn,
//     exercising a genuine remote data plane end-to-end. RDMA hardware
//     is unavailable in this reproduction, so TCP substitutes for the
//     functional (non-timing) half per the repository's substitution
//     rule; see DESIGN.md.
package nvmeof

import (
	"time"

	"github.com/nvme-cr/nvmecr/internal/fabric"
	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/plane"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/topology"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

// TargetPerOp is the SPDK NVMe-oF target's userspace per-command service
// cost (multi-tenant polling target; Guz et al. measured ~10% end-to-end
// overhead for small IO, which this constant plus wire latency
// reproduces).
const TargetPerOp = 3 * time.Microsecond

// TargetCPU models the SPDK NVMe-oF target daemon's polling cores on
// one storage node: a shared, capacity-limited resource through which
// every command to that node passes (TargetPerOp each). At the paper's
// scales it is far from saturation — SPDK's target is the reason NVMf
// overhead stays under 3.5% — but modeling it keeps queueing honest
// when many SSDs share a node.
type TargetCPU struct {
	res    *sim.Resource
	perCmd time.Duration
}

// NewTargetCPU builds a target daemon model with the given core count.
func NewTargetCPU(env *sim.Env, cores int) *TargetCPU {
	if cores < 1 {
		cores = 1
	}
	return &TargetCPU{res: env.NewResource(cores), perCmd: TargetPerOp}
}

// process charges the target-side work for a batch of commands.
func (t *TargetCPU) process(p *sim.Proc, cmds int64) {
	if cmds <= 0 {
		return
	}
	t.res.Acquire(p)
	p.Sleep(time.Duration(cmds) * t.perCmd)
	t.res.Release()
}

// RemotePlane is a userspace NVMe-oF data plane: an SPDK initiator on
// the compute node driving a partition served by an SPDK target on a
// storage node. It implements plane.Plane.
//
// Data transfer is pipelined with device service (the target DMAs
// directly between the wire and the device), so the modeled cost per
// operation is the wire latency plus device service, plus a correction
// when the NIC — not the SSD — would be the bottleneck.
type RemotePlane struct {
	inner plane.Plane // the target-side SPDK plane onto the SSD
	fab   *fabric.Fabric
	src   *topology.Node // compute node (initiator)
	dst   *topology.Node // storage node (target)
	acct  *vfs.Account
	// kernelPath switches to the in-kernel nvme_rdma initiator
	// (paper Figure 2): every operation additionally traps and pays
	// the kernel NVMf module cost. Used by baselines.
	kernelPath bool
	kernel     model.Kernel

	tcpu *TargetCPU
}

// WithTargetCPU routes this plane's commands through a shared
// storage-node target daemon model.
func (r *RemotePlane) WithTargetCPU(t *TargetCPU) *RemotePlane {
	r.tcpu = t
	return r
}

// NewRemotePlane builds the userspace (SPDK) NVMe-oF path.
func NewRemotePlane(inner plane.Plane, fab *fabric.Fabric, src, dst *topology.Node, acct *vfs.Account) *RemotePlane {
	return &RemotePlane{inner: inner, fab: fab, src: src, dst: dst, acct: acct}
}

// NewKernelRemotePlane builds the kernel nvme_rdma path of Figure 2.
func NewKernelRemotePlane(inner plane.Plane, fab *fabric.Fabric, src, dst *topology.Node, acct *vfs.Account, k model.Kernel) *RemotePlane {
	return &RemotePlane{inner: inner, fab: fab, src: src, dst: dst, acct: acct, kernelPath: true, kernel: k}
}

// Size returns the partition size.
func (r *RemotePlane) Size() int64 { return r.inner.Size() }

// wireCost charges the per-operation fabric latency and, when the NIC
// would throttle below device speed, the residual wire time.
func (r *RemotePlane) wireCost(p *sim.Proc, length int64, deviceTime time.Duration) {
	net := r.fab.Params()
	lat := net.RDMABase + time.Duration(r.fab.Cluster().Hops(r.src, r.dst))*net.PerHop + TargetPerOp
	if r.kernelPath {
		k := r.kernel
		r.acct.Charge(p, vfs.Kernel, k.SyscallTrap+k.NVMfPerOp+k.Interrupt)
	}
	wire := model.DurFor(length, net.NICBW)
	if wire > deviceTime {
		lat += wire - deviceTime
	}
	r.acct.Charge(p, vfs.IOWait, lat)
}

// Write implements plane.Plane.
func (r *RemotePlane) Write(p *sim.Proc, off, length int64, data []byte, cmdUnit int64) error {
	if r.tcpu != nil {
		r.tcpu.process(p, model.CmdsFor(length, cmdUnit))
	}
	t0 := p.Now()
	if err := r.inner.Write(p, off, length, data, cmdUnit); err != nil {
		return err
	}
	r.wireCost(p, length, p.Now()-t0)
	return nil
}

// Read implements plane.Plane.
func (r *RemotePlane) Read(p *sim.Proc, off, length int64, cmdUnit int64) ([]byte, error) {
	if r.tcpu != nil {
		r.tcpu.process(p, model.CmdsFor(length, cmdUnit))
	}
	t0 := p.Now()
	out, err := r.inner.Read(p, off, length, cmdUnit)
	if err != nil {
		return nil, err
	}
	r.wireCost(p, length, p.Now()-t0)
	return out, nil
}

// Flush implements plane.Plane.
func (r *RemotePlane) Flush(p *sim.Proc) error {
	t0 := p.Now()
	if err := r.inner.Flush(p); err != nil {
		return err
	}
	r.wireCost(p, 0, p.Now()-t0)
	return nil
}
