package nvmeof

import (
	"encoding/binary"
	"fmt"
	"io"
)

// The TCP transport speaks a capsule protocol shaped after NVMe-oF:
// fixed-size command/response capsules with optional in-capsule data.
// RDMA hardware is unavailable in this reproduction, so TCP carries the
// capsules; the capsule layout, command set, and queue-pair semantics
// (one connection per queue, command IDs matching completions) follow
// the fabrics model.
//
// The capsule header is versioned. Version 0 is the original wire
// format; version 1 (VersionTrace) adds two optional extensions for
// distributed per-command tracing:
//
//   - command capsules may carry an 8-byte trace ID after the fixed
//     header, announced by a flags bit in the previously spare header
//     byte 5;
//   - response capsules may carry a 32-byte phase-timing block between
//     the fixed header and the data, announced by the high bit of the
//     status field (real statuses are small; legacy peers never see the
//     bit because extensions are only sent after negotiation).
//
// The version is negotiated per queue pair at CONNECT: the initiator
// offers its version in spare command-header bytes that legacy targets
// ignore, and a version-aware target answers with the negotiated
// version as connect-response payload that legacy initiators ignore.
// Either side missing means version 0, so old peers interoperate with
// new ones bit-for-bit.

// Opcode identifies a capsule command.
type Opcode uint8

// Fabric command set.
const (
	// OpConnect establishes a queue pair and selects a namespace.
	OpConnect Opcode = 0x01
	// OpWriteCmd writes in-capsule data at an offset.
	OpWriteCmd Opcode = 0x02
	// OpReadCmd reads a range; data returns in the response capsule.
	OpReadCmd Opcode = 0x03
	// OpFlushCmd is a durability barrier.
	OpFlushCmd Opcode = 0x04
	// OpIdentify returns namespace properties.
	OpIdentify Opcode = 0x05

	// Admin command set (the scheduler's interface: namespaces are the
	// grant granularity, created from unused space and reclaimed when
	// jobs end).

	// OpCreateNS creates a namespace of Length... (Offset carries the
	// size in bytes); the response Value is the new NSID.
	OpCreateNS Opcode = 0x41
	// OpDeleteNS deletes the namespace named by NSID.
	OpDeleteNS Opcode = 0x42
	// OpListNS returns the exported NSIDs and sizes as response data
	// (pairs of little-endian u32 nsid + u64 size).
	OpListNS Opcode = 0x43
)

// String names an opcode for traces and flight-recorder dumps.
func (o Opcode) String() string {
	switch o {
	case OpConnect:
		return "CONNECT"
	case OpWriteCmd:
		return "WRITE"
	case OpReadCmd:
		return "READ"
	case OpFlushCmd:
		return "FLUSH"
	case OpIdentify:
		return "IDENTIFY"
	case OpCreateNS:
		return "CREATE-NS"
	case OpDeleteNS:
		return "DELETE-NS"
	case OpListNS:
		return "LIST-NS"
	default:
		return fmt.Sprintf("OP-%#02x", uint8(o))
	}
}

// Status codes in response capsules.
const (
	StatusOK uint16 = iota
	StatusInvalidOpcode
	StatusInvalidNamespace
	StatusOutOfRange
	StatusNotConnected
	StatusInternal
	StatusNoCapacity
	StatusWrongQueue
)

// statusText maps status codes to messages.
func statusText(s uint16) string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusInvalidOpcode:
		return "invalid opcode"
	case StatusInvalidNamespace:
		return "invalid namespace"
	case StatusOutOfRange:
		return "offset out of range"
	case StatusNotConnected:
		return "queue not connected"
	case StatusInternal:
		return "internal error"
	case StatusNoCapacity:
		return "no capacity for namespace"
	case StatusWrongQueue:
		return "wrong queue type for command"
	default:
		return fmt.Sprintf("status %d", s)
	}
}

// Capsule protocol versions, negotiated per queue pair at CONNECT.
const (
	// VersionLegacy is the original wire format with no extensions.
	VersionLegacy uint16 = 0
	// VersionTrace adds the trace-ID command extension and the
	// phase-timings response extension.
	VersionTrace uint16 = 1
	// MaxVersion is the highest version this build speaks.
	MaxVersion = VersionTrace
)

// NegotiateVersion folds an initiator's offer into the version a queue
// pair will speak: the lower of the offer and what this build supports.
func NegotiateVersion(proposed uint16) uint16 {
	if proposed > MaxVersion {
		return MaxVersion
	}
	return proposed
}

const (
	cmdMagic  = 0x4E564D46 // "NVMF"
	respMagic = 0x4E564D52 // "NVMR"
	cmdHdrLen = 32
	rspHdrLen = 16
	// MaxDataLen bounds in-capsule data (both directions).
	MaxDataLen = 8 << 20

	// cmdFlagTraced (command header byte 5) announces the 8-byte
	// trace-ID extension between the fixed header and the data.
	cmdFlagTraced = 1 << 0
	// respFlagPhases (response status high bit) announces the 32-byte
	// phase-timings extension between the fixed header and the data.
	respFlagPhases = uint16(1) << 15
	// traceExtLen / phaseExtLen are the extension sizes on the wire.
	traceExtLen = 8
	phaseExtLen = 32
)

// Command is one command capsule.
type Command struct {
	Opcode Opcode
	CID    uint16
	NSID   uint32
	Offset uint64
	Length uint32
	Data   []byte

	// ProposeVersion is the capsule version the initiator offers on
	// OpConnect. It rides in spare header bytes that legacy targets
	// ignore (and that legacy initiators leave zero), so negotiation
	// is invisible to version-0 peers. Meaningless on other opcodes.
	ProposeVersion uint16
	// Traced marks the command as carrying the trace-ID extension.
	// Only valid on VersionTrace queue pairs.
	Traced  bool
	TraceID uint64
}

// PhaseTimings is the target's per-command service breakdown, returned
// in the response extension of a traced command and recorded in flight
// recorders on both ends of the fabric. All values are nanoseconds.
type PhaseTimings struct {
	// WireReadNS is the time spent reading the command capsule off the
	// socket, measured from its first byte being available (idle time
	// waiting for a command to arrive is not wire time).
	WireReadNS uint64 `json:"wire_read_ns"`
	// QueueNS is the submission-queue wait: capsule fully parsed until
	// the service loop dequeued it.
	QueueNS uint64 `json:"queue_ns"`
	// ServiceNS is the namespace/device service time (including any
	// modeled device latency).
	ServiceNS uint64 `json:"service_ns"`
	// WireWriteNS is the response serialization time. A capsule cannot
	// carry its own transmit duration, so the in-capsule copy reports
	// the previous response's write on the same queue pair (zero for
	// the first); the target's flight recorder records the command's
	// own response write time.
	WireWriteNS uint64 `json:"wire_write_ns"`
}

// Response is one response capsule.
type Response struct {
	CID    uint16
	Status uint16
	Value  uint64 // identify results (namespace size)
	Data   []byte

	// Phases, when non-nil, is the phase-timings extension of a traced
	// command's completion. Only valid on VersionTrace queue pairs.
	Phases *PhaseTimings
}

// WriteCommand encodes and writes a command capsule in the legacy
// (version 0) format. Traced commands need WriteCommandV.
func WriteCommand(w io.Writer, c *Command) error {
	return WriteCommandV(w, c, VersionLegacy)
}

// WriteCommandV encodes and writes a command capsule at the negotiated
// capsule version. Writing a traced command on a queue pair that did
// not negotiate VersionTrace is an error, never a silent downgrade: the
// peer would misparse the extension bytes as data.
func WriteCommandV(w io.Writer, c *Command, version uint16) error {
	if len(c.Data) > MaxDataLen {
		return fmt.Errorf("nvmeof: in-capsule data %d exceeds limit", len(c.Data))
	}
	if c.Traced && version < VersionTrace {
		return fmt.Errorf("nvmeof: traced command on version-%d queue pair", version)
	}
	var hdr [cmdHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], cmdMagic)
	hdr[4] = byte(c.Opcode)
	if c.Traced {
		hdr[5] = cmdFlagTraced
	}
	binary.LittleEndian.PutUint16(hdr[6:], c.CID)
	binary.LittleEndian.PutUint32(hdr[8:], c.NSID)
	binary.LittleEndian.PutUint64(hdr[12:], c.Offset)
	binary.LittleEndian.PutUint32(hdr[20:], c.Length)
	binary.LittleEndian.PutUint32(hdr[24:], uint32(len(c.Data)))
	binary.LittleEndian.PutUint16(hdr[28:], c.ProposeVersion)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if c.Traced {
		var ext [traceExtLen]byte
		binary.LittleEndian.PutUint64(ext[:], c.TraceID)
		if _, err := w.Write(ext[:]); err != nil {
			return err
		}
	}
	if len(c.Data) > 0 {
		if _, err := w.Write(c.Data); err != nil {
			return err
		}
	}
	return nil
}

// ReadCommand reads one command capsule at the legacy (version 0)
// format: any extension flag is a protocol error.
func ReadCommand(r io.Reader) (*Command, error) {
	return ReadCommandV(r, VersionLegacy)
}

// ReadCommandV reads one command capsule at the negotiated version.
func ReadCommandV(r io.Reader, version uint16) (*Command, error) {
	return readCommandFn(r, func() uint16 { return version })
}

// readCommandFn is ReadCommandV with the version supplied lazily: it is
// consulted only after the fixed header has been read. The target's
// reader goroutine needs this, because the negotiated version is stored
// by the service loop when it processes CONNECT — strictly before the
// first byte of any post-negotiation capsule arrives, but possibly
// after the reader has already blocked waiting for that byte.
func readCommandFn(r io.Reader, version func() uint16) (*Command, error) {
	c := &Command{}
	var buf []byte
	var scratch [protoScratchLen]byte
	if err := readCommandInto(r, version, c, &buf, &scratch); err != nil {
		return nil, err
	}
	return c, nil
}

// maxReuseBuf caps the payload buffer a reusing reader retains between
// capsules: the common checkpoint stripe unit fits, while a rare
// MaxDataLen capsule does not pin 8 MiB per slot forever.
const maxReuseBuf = 1 << 20

// protoScratchLen sizes the caller-owned scratch the *Into/*Scratch
// capsule codecs stage fixed headers and extensions in. A header sliced
// from a local array escapes to the heap when handed to an io.Reader or
// io.Writer interface, so the hot loops (target reader, target serve,
// host readLoop) own one scratch array for their connection's lifetime
// instead of paying that allocation per capsule. 32 covers the largest
// staged block: cmdHdrLen and phaseExtLen (both 32).
const protoScratchLen = cmdHdrLen

// readCommandInto is readCommandFn into caller-owned storage: the
// Command is overwritten in place and the payload lands in *bufp's
// backing when it fits (larger payloads get a fresh allocation that is
// not retained). The target's serve loop runs this per slot, so the
// steady state reads capsules with zero allocations.
func readCommandInto(r io.Reader, version func() uint16, c *Command, bufp *[]byte, scratch *[protoScratchLen]byte) error {
	hdr := scratch[:cmdHdrLen]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != cmdMagic {
		return fmt.Errorf("nvmeof: bad command magic %#x", binary.LittleEndian.Uint32(hdr[0:]))
	}
	flags := hdr[5]
	if flags&^byte(cmdFlagTraced) != 0 {
		return fmt.Errorf("nvmeof: unknown command flags %#x", flags)
	}
	*c = Command{
		Opcode:         Opcode(hdr[4]),
		CID:            binary.LittleEndian.Uint16(hdr[6:]),
		NSID:           binary.LittleEndian.Uint32(hdr[8:]),
		Offset:         binary.LittleEndian.Uint64(hdr[12:]),
		Length:         binary.LittleEndian.Uint32(hdr[20:]),
		ProposeVersion: binary.LittleEndian.Uint16(hdr[28:]),
	}
	// Extracted before the trace extension reuses the scratch bytes.
	dataLen := binary.LittleEndian.Uint32(hdr[24:])
	if flags&cmdFlagTraced != 0 {
		if version() < VersionTrace {
			return fmt.Errorf("nvmeof: traced command on version-%d queue pair", version())
		}
		ext := scratch[:traceExtLen]
		if _, err := io.ReadFull(r, ext); err != nil {
			return err
		}
		c.Traced = true
		c.TraceID = binary.LittleEndian.Uint64(ext)
	}
	if dataLen > MaxDataLen {
		return fmt.Errorf("nvmeof: in-capsule data %d exceeds limit", dataLen)
	}
	if dataLen > 0 {
		buf := *bufp
		if cap(buf) >= int(dataLen) {
			buf = buf[:dataLen]
		} else {
			buf = make([]byte, dataLen)
			if dataLen <= maxReuseBuf {
				*bufp = buf
			}
		}
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		c.Data = buf
	}
	return nil
}

// WriteResponse encodes and writes a response capsule in the legacy
// (version 0) format. Responses with phase timings need WriteResponseV.
func WriteResponse(w io.Writer, r *Response) error {
	return WriteResponseV(w, r, VersionLegacy)
}

// WriteResponseV encodes and writes a response capsule at the
// negotiated capsule version.
func WriteResponseV(w io.Writer, r *Response, version uint16) error {
	var scratch [protoScratchLen]byte
	return writeResponseScratch(w, r, version, &scratch)
}

// writeResponseScratch is WriteResponseV staging the header and phase
// extension in caller-owned scratch, so a serve loop that owns one
// scratch array per connection emits responses with zero allocations.
func writeResponseScratch(w io.Writer, r *Response, version uint16, scratch *[protoScratchLen]byte) error {
	if len(r.Data) > MaxDataLen {
		return fmt.Errorf("nvmeof: response data %d exceeds limit", len(r.Data))
	}
	if r.Status&respFlagPhases != 0 {
		return fmt.Errorf("nvmeof: status %#x collides with the phase-extension flag", r.Status)
	}
	if r.Phases != nil && version < VersionTrace {
		return fmt.Errorf("nvmeof: phase timings on version-%d queue pair", version)
	}
	status := r.Status
	if r.Phases != nil {
		status |= respFlagPhases
	}
	hdr := scratch[:rspHdrLen+4]
	binary.LittleEndian.PutUint32(hdr[0:], respMagic)
	binary.LittleEndian.PutUint16(hdr[4:], r.CID)
	binary.LittleEndian.PutUint16(hdr[6:], status)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(r.Data)))
	binary.LittleEndian.PutUint64(hdr[12:], r.Value)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if r.Phases != nil {
		// The header is on the wire; the extension reuses the scratch.
		ext := scratch[:phaseExtLen]
		binary.LittleEndian.PutUint64(ext[0:], r.Phases.WireReadNS)
		binary.LittleEndian.PutUint64(ext[8:], r.Phases.QueueNS)
		binary.LittleEndian.PutUint64(ext[16:], r.Phases.ServiceNS)
		binary.LittleEndian.PutUint64(ext[24:], r.Phases.WireWriteNS)
		if _, err := w.Write(ext); err != nil {
			return err
		}
	}
	if len(r.Data) > 0 {
		if _, err := w.Write(r.Data); err != nil {
			return err
		}
	}
	return nil
}

// ReadResponse reads one response capsule at the legacy (version 0)
// format: a phase-extension flag is a protocol error.
func ReadResponse(r io.Reader) (*Response, error) {
	return ReadResponseV(r, VersionLegacy)
}

// ReadResponseV reads one response capsule at the negotiated version.
func ReadResponseV(r io.Reader, version uint16) (*Response, error) {
	return readResponseFn(r, func() uint16 { return version })
}

// readResponseFn is ReadResponseV with the version supplied lazily,
// consulted only after the fixed header has been read (see
// readCommandFn; the host's read loop has the mirror-image race with
// DialConfig storing the negotiated version).
func readResponseFn(r io.Reader, version func() uint16) (*Response, error) {
	out := &Response{}
	var scratch [protoScratchLen]byte
	if err := readResponseInto(r, version, out, &scratch); err != nil {
		return nil, err
	}
	return out, nil
}

// readResponseInto is readResponseFn into a caller-owned Response,
// overwritten in place. The host's read loop runs this with one reused
// Response, so data-less completions (every WRITE/FLUSH) are parsed
// with zero allocations. Data and Phases, when present, are freshly
// allocated: both escape into the waiter's copy of the response and
// must not be overwritten by the next capsule.
func readResponseInto(r io.Reader, version func() uint16, out *Response, scratch *[protoScratchLen]byte) error {
	hdr := scratch[:rspHdrLen+4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != respMagic {
		return fmt.Errorf("nvmeof: bad response magic %#x", binary.LittleEndian.Uint32(hdr[0:]))
	}
	status := binary.LittleEndian.Uint16(hdr[4+2:])
	*out = Response{
		CID:    binary.LittleEndian.Uint16(hdr[4:]),
		Status: status &^ respFlagPhases,
		Value:  binary.LittleEndian.Uint64(hdr[12:]),
	}
	// Extracted before the phase extension reuses the scratch bytes.
	dataLen := binary.LittleEndian.Uint32(hdr[8:])
	if status&respFlagPhases != 0 {
		if version() < VersionTrace {
			return fmt.Errorf("nvmeof: phase timings on version-%d queue pair", version())
		}
		ext := scratch[:phaseExtLen]
		if _, err := io.ReadFull(r, ext); err != nil {
			return err
		}
		out.Phases = &PhaseTimings{
			WireReadNS:  binary.LittleEndian.Uint64(ext[0:]),
			QueueNS:     binary.LittleEndian.Uint64(ext[8:]),
			ServiceNS:   binary.LittleEndian.Uint64(ext[16:]),
			WireWriteNS: binary.LittleEndian.Uint64(ext[24:]),
		}
	}
	if dataLen > MaxDataLen {
		return fmt.Errorf("nvmeof: response data %d exceeds limit", dataLen)
	}
	if dataLen > 0 {
		out.Data = make([]byte, dataLen)
		if _, err := io.ReadFull(r, out.Data); err != nil {
			return err
		}
	}
	return nil
}

// encodeNegotiatedVersion renders the CONNECT-response negotiation
// payload: two little-endian bytes carrying the version the target
// will speak on this queue pair.
func encodeNegotiatedVersion(v uint16) []byte {
	out := make([]byte, 2)
	binary.LittleEndian.PutUint16(out, v)
	return out
}

// DecodeNegotiatedVersion extracts the negotiated capsule version from
// a CONNECT response payload. Legacy targets attach no payload, which
// decodes as VersionLegacy.
func DecodeNegotiatedVersion(data []byte) uint16 {
	if len(data) < 2 {
		return VersionLegacy
	}
	return binary.LittleEndian.Uint16(data)
}
