package nvmeof

import (
	"encoding/binary"
	"fmt"
	"io"
)

// The TCP transport speaks a capsule protocol shaped after NVMe-oF:
// fixed-size command/response capsules with optional in-capsule data.
// RDMA hardware is unavailable in this reproduction, so TCP carries the
// capsules; the capsule layout, command set, and queue-pair semantics
// (one connection per queue, command IDs matching completions) follow
// the fabrics model.

// Opcode identifies a capsule command.
type Opcode uint8

// Fabric command set.
const (
	// OpConnect establishes a queue pair and selects a namespace.
	OpConnect Opcode = 0x01
	// OpWriteCmd writes in-capsule data at an offset.
	OpWriteCmd Opcode = 0x02
	// OpReadCmd reads a range; data returns in the response capsule.
	OpReadCmd Opcode = 0x03
	// OpFlushCmd is a durability barrier.
	OpFlushCmd Opcode = 0x04
	// OpIdentify returns namespace properties.
	OpIdentify Opcode = 0x05

	// Admin command set (the scheduler's interface: namespaces are the
	// grant granularity, created from unused space and reclaimed when
	// jobs end).

	// OpCreateNS creates a namespace of Length... (Offset carries the
	// size in bytes); the response Value is the new NSID.
	OpCreateNS Opcode = 0x41
	// OpDeleteNS deletes the namespace named by NSID.
	OpDeleteNS Opcode = 0x42
	// OpListNS returns the exported NSIDs and sizes as response data
	// (pairs of little-endian u32 nsid + u64 size).
	OpListNS Opcode = 0x43
)

// Status codes in response capsules.
const (
	StatusOK uint16 = iota
	StatusInvalidOpcode
	StatusInvalidNamespace
	StatusOutOfRange
	StatusNotConnected
	StatusInternal
	StatusNoCapacity
	StatusWrongQueue
)

// statusText maps status codes to messages.
func statusText(s uint16) string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusInvalidOpcode:
		return "invalid opcode"
	case StatusInvalidNamespace:
		return "invalid namespace"
	case StatusOutOfRange:
		return "offset out of range"
	case StatusNotConnected:
		return "queue not connected"
	case StatusInternal:
		return "internal error"
	case StatusNoCapacity:
		return "no capacity for namespace"
	case StatusWrongQueue:
		return "wrong queue type for command"
	default:
		return fmt.Sprintf("status %d", s)
	}
}

const (
	cmdMagic  = 0x4E564D46 // "NVMF"
	respMagic = 0x4E564D52 // "NVMR"
	cmdHdrLen = 32
	rspHdrLen = 16
	// MaxDataLen bounds in-capsule data (both directions).
	MaxDataLen = 8 << 20
)

// Command is one command capsule.
type Command struct {
	Opcode Opcode
	CID    uint16
	NSID   uint32
	Offset uint64
	Length uint32
	Data   []byte
}

// Response is one response capsule.
type Response struct {
	CID    uint16
	Status uint16
	Value  uint64 // identify results (namespace size)
	Data   []byte
}

// WriteCommand encodes and writes a command capsule.
func WriteCommand(w io.Writer, c *Command) error {
	if len(c.Data) > MaxDataLen {
		return fmt.Errorf("nvmeof: in-capsule data %d exceeds limit", len(c.Data))
	}
	var hdr [cmdHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], cmdMagic)
	hdr[4] = byte(c.Opcode)
	binary.LittleEndian.PutUint16(hdr[6:], c.CID)
	binary.LittleEndian.PutUint32(hdr[8:], c.NSID)
	binary.LittleEndian.PutUint64(hdr[12:], c.Offset)
	binary.LittleEndian.PutUint32(hdr[20:], c.Length)
	binary.LittleEndian.PutUint32(hdr[24:], uint32(len(c.Data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(c.Data) > 0 {
		if _, err := w.Write(c.Data); err != nil {
			return err
		}
	}
	return nil
}

// ReadCommand reads one command capsule.
func ReadCommand(r io.Reader) (*Command, error) {
	var hdr [cmdHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != cmdMagic {
		return nil, fmt.Errorf("nvmeof: bad command magic %#x", binary.LittleEndian.Uint32(hdr[0:]))
	}
	c := &Command{
		Opcode: Opcode(hdr[4]),
		CID:    binary.LittleEndian.Uint16(hdr[6:]),
		NSID:   binary.LittleEndian.Uint32(hdr[8:]),
		Offset: binary.LittleEndian.Uint64(hdr[12:]),
		Length: binary.LittleEndian.Uint32(hdr[20:]),
	}
	dataLen := binary.LittleEndian.Uint32(hdr[24:])
	if dataLen > MaxDataLen {
		return nil, fmt.Errorf("nvmeof: in-capsule data %d exceeds limit", dataLen)
	}
	if dataLen > 0 {
		c.Data = make([]byte, dataLen)
		if _, err := io.ReadFull(r, c.Data); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// WriteResponse encodes and writes a response capsule.
func WriteResponse(w io.Writer, r *Response) error {
	if len(r.Data) > MaxDataLen {
		return fmt.Errorf("nvmeof: response data %d exceeds limit", len(r.Data))
	}
	var hdr [rspHdrLen + 8]byte
	binary.LittleEndian.PutUint32(hdr[0:], respMagic)
	binary.LittleEndian.PutUint16(hdr[4:], r.CID)
	binary.LittleEndian.PutUint16(hdr[6:], r.Status)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(r.Data)))
	binary.LittleEndian.PutUint64(hdr[12:], r.Value)
	if _, err := w.Write(hdr[:rspHdrLen+4]); err != nil {
		return err
	}
	if len(r.Data) > 0 {
		if _, err := w.Write(r.Data); err != nil {
			return err
		}
	}
	return nil
}

// ReadResponse reads one response capsule.
func ReadResponse(r io.Reader) (*Response, error) {
	var hdr [rspHdrLen + 4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != respMagic {
		return nil, fmt.Errorf("nvmeof: bad response magic %#x", binary.LittleEndian.Uint32(hdr[0:]))
	}
	out := &Response{
		CID:    binary.LittleEndian.Uint16(hdr[4:]),
		Status: binary.LittleEndian.Uint16(hdr[6:]),
		Value:  binary.LittleEndian.Uint64(hdr[12:]),
	}
	dataLen := binary.LittleEndian.Uint32(hdr[8:])
	if dataLen > MaxDataLen {
		return nil, fmt.Errorf("nvmeof: response data %d exceeds limit", dataLen)
	}
	if dataLen > 0 {
		out.Data = make([]byte, dataLen)
		if _, err := io.ReadFull(r, out.Data); err != nil {
			return nil, err
		}
	}
	return out, nil
}
