package nvmeof

import (
	"bytes"
	"sort"
	"testing"

	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/telemetry"
)

// TestTracedCommandPhases is the tentpole acceptance test: over real
// TCP, every traced command's span must carry a wire, queue, and
// service phase that are each positive and together never exceed the
// host-observed round trip.
func TestTracedCommandPhases(t *testing.T) {
	tgt, addr := startTarget(t, map[uint32]int64{1: 8 * model.MB})
	var traceBuf bytes.Buffer
	tr := telemetry.NewTracer(&traceBuf)
	h, err := DialConfig(addr, 1, HostConfig{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	if got := h.CapsuleVersion(); got != VersionTrace {
		t.Fatalf("negotiated version %d, want %d", got, VersionTrace)
	}
	const writes = 16
	for i := 0; i < writes; i++ {
		if err := h.WriteAt(int64(i)*4096, bytes.Repeat([]byte{byte(i)}, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.ReadAt(0, 4096); err != nil {
		t.Fatal(err)
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}

	var cmds []telemetry.Event
	seen := map[string]bool{}
	for _, ev := range decodeTrace(t, &traceBuf) {
		if ev.Name != "nvmeof.cmd" {
			continue
		}
		cmds = append(cmds, ev)
		seen[ev.Attrs["op"].(string)] = true
	}
	// CONNECT predates negotiation (it performs it), so it is never
	// traced; everything after must be.
	if want := writes + 2; len(cmds) != want {
		t.Fatalf("traced %d commands, want %d", len(cmds), want)
	}
	for _, op := range []string{"WRITE", "READ", "FLUSH"} {
		if !seen[op] {
			t.Errorf("no traced %s command", op)
		}
	}
	for _, ev := range cmds {
		id, _ := ev.Attrs["trace_id"].(string)
		if len(id) != 16 || id == "0000000000000000" {
			t.Errorf("bad trace_id %q", id)
		}
		wire, _ := ev.Attrs["wire_ns"].(float64)
		queue, _ := ev.Attrs["queue_ns"].(float64)
		service, _ := ev.Attrs["service_ns"].(float64)
		if wire <= 0 || queue <= 0 || service <= 0 {
			t.Errorf("%s: non-positive phase: wire=%v queue=%v service=%v",
				ev.Attrs["op"], wire, queue, service)
		}
		if sum := int64(wire + queue + service); sum > ev.WallDurNS {
			t.Errorf("%s: phase sum %d exceeds round trip %d",
				ev.Attrs["op"], sum, ev.WallDurNS)
		}
	}

	// The target's flight recorder saw the same commands, with its own
	// measured phases (including each response's actual write time).
	tsnap := tgt.Flight().Snapshot()
	if len(tsnap) != 1 {
		t.Fatalf("target recorded %d queue pairs, want 1", len(tsnap))
	}
	for _, recs := range tsnap {
		for _, rec := range recs {
			// CONNECT predates negotiation, so it is never traced and
			// carries no phase decomposition; every traced command must.
			if rec.Opcode == OpConnect {
				continue
			}
			if !rec.HasPhases {
				t.Fatalf("target record without phases: %+v", rec)
			}
			if rec.TraceID == 0 {
				t.Errorf("%s record lost its trace ID", rec.Op)
			}
		}
	}
}

// latencyBucket returns which DefLatencyBuckets bucket v (seconds)
// falls in, len(buckets) for the +Inf overflow.
func latencyBucket(v float64) int {
	for i, b := range telemetry.DefLatencyBuckets {
		if v <= b {
			return i
		}
	}
	return len(telemetry.DefLatencyBuckets)
}

// TestPhaseQuantilesMatchPrometheus pins the acceptance criterion that
// the exact per-phase quantiles a trace consumer (nvmecr-trace)
// computes from span attributes agree with the host registry's
// Prometheus phase histograms to within one latency bucket — same
// commands, two export paths.
func TestPhaseQuantilesMatchPrometheus(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: 8 * model.MB})
	var traceBuf bytes.Buffer
	reg := telemetry.New()
	h, err := DialConfig(addr, 1, HostConfig{
		Tracer:    telemetry.NewTracer(&traceBuf),
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for i := 0; i < 200; i++ {
		if err := h.WriteAt(int64(i%16)*4096, bytes.Repeat([]byte{byte(i)}, 1024)); err != nil {
			t.Fatal(err)
		}
	}

	exact := map[string][]float64{}
	for _, ev := range decodeTrace(t, &traceBuf) {
		if ev.Name != "nvmeof.cmd" {
			continue
		}
		for _, key := range []string{"wire_ns", "queue_ns", "service_ns"} {
			ns, _ := ev.Attrs[key].(float64)
			exact[key] = append(exact[key], ns/1e9)
		}
	}
	if len(exact["wire_ns"]) == 0 {
		t.Fatal("no traced commands")
	}
	hists := map[string]*telemetry.Histogram{
		"wire_ns":    reg.Histogram(MetricQPPhaseWire, nil, telemetry.Labels{"qp": "0"}),
		"queue_ns":   reg.Histogram(MetricQPPhaseQueue, nil, telemetry.Labels{"qp": "0"}),
		"service_ns": reg.Histogram(MetricQPPhaseService, nil, telemetry.Labels{"qp": "0"}),
	}
	for key, vals := range exact {
		sort.Float64s(vals)
		exactP99 := vals[int(0.99*float64(len(vals)-1))]
		histP99 := hists[key].Quantile(0.99)
		if hists[key].Count() != uint64(len(vals)) {
			t.Errorf("%s: histogram has %d observations, trace has %d",
				key, hists[key].Count(), len(vals))
		}
		eb, hb := latencyBucket(exactP99), latencyBucket(histP99)
		if eb-hb > 1 || hb-eb > 1 {
			t.Errorf("%s: exact p99 %.3gs (bucket %d) vs histogram p99 %.3gs (bucket %d): more than one bucket apart",
				key, exactP99, eb, histP99, hb)
		}
	}
}

// TestLegacyClientInterop pins backward compatibility: an initiator
// that never proposes a capsule version (tracing off — the wire format
// is byte-identical to the pre-versioning protocol) must complete every
// operation against a version-aware target.
func TestLegacyClientInterop(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: model.MB})
	h, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if got := h.CapsuleVersion(); got != VersionLegacy {
		t.Fatalf("legacy dial negotiated version %d, want %d", got, VersionLegacy)
	}
	if err := h.WriteAt(0, []byte("legacy")); err != nil {
		t.Fatal(err)
	}
	got, err := h.ReadAt(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "legacy" {
		t.Fatalf("read back %q", got)
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Identify(); err != nil {
		t.Fatal(err)
	}

	// Admin plane stays legacy-compatible too.
	adm, err := DialAdmin(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	nsid, err := adm.CreateNamespace(64 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	nss, err := adm.ListNamespaces()
	if err != nil {
		t.Fatal(err)
	}
	if len(nss) != 2 {
		t.Fatalf("ListNamespaces = %v, want 2 entries", nss)
	}
	if err := adm.DeleteNamespace(nsid); err != nil {
		t.Fatal(err)
	}
}

// TestVersionNegotiationCapsAtTarget: a host proposing more than the
// target supports gets the target's maximum, never a version it did
// not offer.
func TestVersionNegotiation(t *testing.T) {
	if got := NegotiateVersion(0); got != VersionLegacy {
		t.Errorf("NegotiateVersion(0) = %d", got)
	}
	if got := NegotiateVersion(VersionTrace); got != VersionTrace {
		t.Errorf("NegotiateVersion(%d) = %d", VersionTrace, got)
	}
	if got := NegotiateVersion(MaxVersion + 5); got != MaxVersion {
		t.Errorf("NegotiateVersion(%d) = %d, want cap at %d", MaxVersion+5, got, MaxVersion)
	}
	if got := DecodeNegotiatedVersion(nil); got != VersionLegacy {
		t.Errorf("DecodeNegotiatedVersion(nil) = %d", got)
	}
	if got := DecodeNegotiatedVersion([]byte{1}); got != VersionLegacy {
		t.Errorf("DecodeNegotiatedVersion(short) = %d", got)
	}
}
