package nvmeof

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/nvme-cr/nvmecr/internal/plane"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/telemetry"
)

// flakyPlane wraps a memPlane with injectable read/write failures and
// close tracking, for degraded-mode and failover tests.
type flakyPlane struct {
	*memPlane
	mu        sync.Mutex
	readErr   error
	writeErr  error
	reads     int
	writes    int
	closed    int
	closeErr  error
	readNil   bool
	failReads int // fail this many reads, then serve
}

func (f *flakyPlane) Read(p *sim.Proc, off, length int64, cmdUnit int64) ([]byte, error) {
	f.mu.Lock()
	f.reads++
	if f.failReads > 0 {
		f.failReads--
		f.mu.Unlock()
		return nil, errors.New("flaky: injected read failure")
	}
	err := f.readErr
	rnil := f.readNil
	f.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if rnil {
		return nil, nil
	}
	return f.memPlane.Read(p, off, length, cmdUnit)
}

func (f *flakyPlane) Write(p *sim.Proc, off, length int64, data []byte, cmdUnit int64) error {
	f.mu.Lock()
	f.writes++
	err := f.writeErr
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.memPlane.Write(p, off, length, data, cmdUnit)
}

func (f *flakyPlane) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed++
	return f.closeErr
}

func mirroredOverMem(t *testing.T, groups, replicas int, childSize, unit int64) (*StripedPlane, []*flakyPlane) {
	t.Helper()
	n := groups * replicas
	children := make([]plane.Plane, n)
	mems := make([]*flakyPlane, n)
	for i := range children {
		mems[i] = &flakyPlane{memPlane: newMemPlane(childSize, true)}
		children[i] = mems[i]
	}
	sp, err := NewMirroredPlane(children, unit, replicas)
	if err != nil {
		t.Fatal(err)
	}
	return sp, mems
}

// TestMirroredPlaneMatchesSingle: the in-memory equivalence core for
// mirrored widths — random IO through an R-way mirrored plane behaves
// exactly like one flat buffer, and both replicas of every group hold
// identical bytes afterwards.
func TestMirroredPlaneMatchesSingle(t *testing.T) {
	for _, cfg := range []struct{ groups, replicas int }{{1, 2}, {2, 2}, {1, 3}, {2, 3}} {
		cfg := cfg
		t.Run(fmt.Sprintf("groups=%d/r=%d", cfg.groups, cfg.replicas), func(t *testing.T) {
			const unit = 512
			const childSize = 16 * 1024
			sp, mems := mirroredOverMem(t, cfg.groups, cfg.replicas, childSize, unit)
			if want := int64(cfg.groups) * childSize; sp.Size() != want {
				t.Fatalf("Size = %d, want %d (mirrors contribute capacity once)", sp.Size(), want)
			}
			ref := make([]byte, sp.Size())
			rng := rand.New(rand.NewSource(int64(2000 + cfg.groups*10 + cfg.replicas)))
			for op := 0; op < 300; op++ {
				off := rng.Int63n(sp.Size())
				length := 1 + rng.Int63n(4*unit)
				if off+length > sp.Size() {
					length = sp.Size() - off
				}
				if rng.Intn(3) < 2 {
					payload := make([]byte, length)
					rng.Read(payload)
					if err := sp.Write(nil, off, length, payload, 0); err != nil {
						t.Fatalf("op %d: write: %v", op, err)
					}
					copy(ref[off:off+length], payload)
				} else {
					got, err := sp.Read(nil, off, length, 0)
					if err != nil {
						t.Fatalf("op %d: read: %v", op, err)
					}
					if !bytes.Equal(got, ref[off:off+length]) {
						t.Fatalf("op %d: read [%d,+%d) diverged from flat buffer", op, off, length)
					}
				}
			}
			full, err := sp.Read(nil, 0, sp.Size(), 0)
			if err != nil || !bytes.Equal(full, ref) {
				t.Fatalf("full mirrored read-back diverged (err=%v)", err)
			}
			// Replicas are byte-identical: every acked write fanned out.
			for g := 0; g < cfg.groups; g++ {
				first := mems[sp.Geometry().Member(g, 0)]
				for r := 1; r < cfg.replicas; r++ {
					m := mems[sp.Geometry().Member(g, r)]
					if !bytes.Equal(first.data, m.data) {
						t.Fatalf("group %d replica %d diverges from replica 0", g, r)
					}
				}
			}
		})
	}
}

// TestMirroredPlaneDegradedMatrix is the satellite matrix: every op
// (Read / Write / Flush / Close) against an R-way mirror with 0, 1,
// and R-1 members of one group down — pinning which succeed degraded —
// and with ALL members down, pinning the typed ErrNoReplica error
// instead of a hang.
func TestMirroredPlaneDegradedMatrix(t *testing.T) {
	const unit = 512
	const childSize = 8 * 1024
	for _, replicas := range []int{2, 3} {
		replicas := replicas
		for down := 0; down < replicas; down++ {
			down := down
			t.Run(fmt.Sprintf("r=%d/down=%d", replicas, down), func(t *testing.T) {
				sp, mems := mirroredOverMem(t, 2, replicas, childSize, unit)
				payload := bytes.Repeat([]byte{0xAB}, 4*unit)
				if err := sp.Write(nil, 0, int64(len(payload)), payload, 0); err != nil {
					t.Fatal(err)
				}
				// Take `down` members of group 0 down.
				for d := 0; d < down; d++ {
					if err := sp.SetChildDown(sp.Geometry().Member(0, d)); err != nil {
						t.Fatal(err)
					}
				}
				// Write succeeds degraded, acked on the survivors.
				payload2 := bytes.Repeat([]byte{0xCD}, 4*unit)
				if err := sp.Write(nil, 0, int64(len(payload2)), payload2, 0); err != nil {
					t.Fatalf("degraded write (%d/%d down): %v", down, replicas, err)
				}
				// Read succeeds, from any live member.
				got, err := sp.Read(nil, 0, int64(len(payload2)), 0)
				if err != nil || !bytes.Equal(got, payload2) {
					t.Fatalf("degraded read (%d/%d down): err=%v", down, replicas, err)
				}
				// Flush barrier succeeds across the attached survivors,
				// and down members are skipped, not flushed.
				if err := sp.Flush(nil); err != nil {
					t.Fatalf("degraded flush (%d/%d down): %v", down, replicas, err)
				}
				for d := 0; d < down; d++ {
					if m := mems[sp.Geometry().Member(0, d)]; m.flushes != 0 {
						t.Errorf("down member %d was flushed", d)
					}
				}
				// Close visits everyone, down members included.
				if err := sp.Close(); err != nil {
					t.Fatalf("degraded close: %v", err)
				}
				for i, m := range mems {
					if m.closed != 1 {
						t.Errorf("member %d closed %d times, want 1", i, m.closed)
					}
				}
			})
		}
	}
}

// TestMirroredPlaneAllReplicasDown pins the typed-error contract: with
// every member of a group down, each op touching that group fails fast
// with ErrNoReplica — no hang, no zero-filled success — while a range
// confined to a healthy group still works.
func TestMirroredPlaneAllReplicasDown(t *testing.T) {
	const unit = 512
	sp, _ := mirroredOverMem(t, 2, 2, 8*1024, unit)
	seed := bytes.Repeat([]byte{0x11}, int(sp.Size()))
	if err := sp.Write(nil, 0, sp.Size(), seed, 0); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		if err := sp.SetChildDown(sp.Geometry().Member(0, r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Write(nil, 0, unit, bytes.Repeat([]byte{0x22}, unit), 0); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("write to all-down group = %v, want ErrNoReplica", err)
	}
	if _, err := sp.Read(nil, 0, unit, 0); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("read from all-down group = %v, want ErrNoReplica", err)
	}
	if err := sp.Flush(nil); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("flush with all-down group = %v, want ErrNoReplica", err)
	}
	// Group 1 (striped address space: the second unit of every pair)
	// still serves both ops.
	if err := sp.Write(nil, unit, unit, bytes.Repeat([]byte{0x33}, unit), 0); err != nil {
		t.Fatalf("write to healthy group: %v", err)
	}
	if got, err := sp.Read(nil, unit, unit, 0); err != nil || !bytes.Equal(got, bytes.Repeat([]byte{0x33}, unit)) {
		t.Fatalf("read from healthy group: err=%v", err)
	}
}

// TestMirroredPlaneReadFailover: a live member failing a read does not
// fail the plane read — a sibling serves it, and the failover counter
// ticks.
func TestMirroredPlaneReadFailover(t *testing.T) {
	const unit = 512
	sp, mems := mirroredOverMem(t, 1, 2, 8*1024, unit)
	reg := telemetry.New()
	sp.Instrument(reg)
	payload := bytes.Repeat([]byte{0x5A}, 2*unit)
	if err := sp.Write(nil, 0, int64(len(payload)), payload, 0); err != nil {
		t.Fatal(err)
	}
	// Member 1 fails every read: the rotation will pick it first on
	// some of these reads, and each such read must fail over to member
	// 0 and still serve the right bytes.
	mems[1].mu.Lock()
	mems[1].readErr = errors.New("member 1 unreachable")
	mems[1].mu.Unlock()
	for i := 0; i < 4; i++ {
		got, err := sp.Read(nil, 0, int64(len(payload)), 0)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("failover read %d: err=%v", i, err)
		}
	}
	mems[1].mu.Lock()
	mems[1].readErr = nil
	mems[1].mu.Unlock()
	if v := reg.Counter(MetricStripeReadFailovers, nil).Value(); v == 0 {
		t.Error("read failover not counted")
	}
	// Both members persistently failing fails the read with the last
	// member error, not a hang.
	mems[0].mu.Lock()
	mems[0].readErr = errors.New("member 0 gone")
	mems[0].mu.Unlock()
	mems[1].mu.Lock()
	mems[1].readErr = errors.New("member 1 gone")
	mems[1].mu.Unlock()
	if _, err := sp.Read(nil, 0, unit, 0); err == nil {
		t.Fatal("read with every live member failing succeeded")
	}
}

// TestMirroredPlaneReadRepair: verify-reads mode detects a replica
// diverged behind the plane's back and rewrites it from the
// lowest-index live member before returning.
func TestMirroredPlaneReadRepair(t *testing.T) {
	const unit = 512
	sp, mems := mirroredOverMem(t, 1, 2, 8*1024, unit)
	reg := telemetry.New()
	sp.Instrument(reg)
	payload := bytes.Repeat([]byte{0x77}, 2*unit)
	if err := sp.Write(nil, 0, int64(len(payload)), payload, 0); err != nil {
		t.Fatal(err)
	}
	// Corrupt replica 1 behind the plane's back (bit rot).
	mems[1].memPlane.mu.Lock()
	for i := 0; i < int(unit); i++ {
		mems[1].memPlane.data[i] ^= 0xFF
	}
	mems[1].memPlane.mu.Unlock()

	// Default mode: the read is served by SOME replica — possibly the
	// corrupt one; no verification promise. Just must not error.
	if _, err := sp.Read(nil, 0, int64(len(payload)), 0); err != nil {
		t.Fatal(err)
	}

	sp.SetVerifyReads(true)
	got, err := sp.Read(nil, 0, int64(len(payload)), 0)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("verify read: err=%v (authority is replica 0)", err)
	}
	if v := reg.Counter(MetricStripeReadRepairs, nil).Value(); v == 0 {
		t.Error("read repair not counted")
	}
	// The divergent replica was rewritten: replicas identical again.
	if !bytes.Equal(mems[0].memPlane.data, mems[1].memPlane.data) {
		t.Error("replica 1 still diverges after read-repair")
	}
	sp.SetVerifyReads(false)
}

// TestMirroredPlaneRebuildNoLostByte drives the full member-loss dance
// inline — down, attach a FRESH (empty) replacement, chunk-sweep while
// concurrent writes flow, cut over — then kills the original member
// and proves every acknowledged byte is served by the rebuilt one.
func TestMirroredPlaneRebuildNoLostByte(t *testing.T) {
	const unit = 512
	const childSize = 32 * 1024
	sp, _ := mirroredOverMem(t, 2, 2, childSize, unit)
	expect := make([]byte, sp.Size())
	var expectMu sync.Mutex
	rng := rand.New(rand.NewSource(4242))
	write := func(rng *rand.Rand) error {
		length := 1 + rng.Int63n(3*unit)
		off := rng.Int63n(sp.Size() - length)
		payload := make([]byte, length)
		rng.Read(payload)
		if err := sp.Write(nil, off, length, payload, 0); err != nil {
			return err
		}
		expectMu.Lock()
		copy(expect[off:off+length], payload)
		expectMu.Unlock()
		return nil
	}
	for i := 0; i < 50; i++ {
		if err := write(rng); err != nil {
			t.Fatal(err)
		}
	}

	// Member 1 of group 0 dies; replace with an empty spare.
	victim := sp.Geometry().Member(0, 1)
	if err := sp.SetChildDown(victim); err != nil {
		t.Fatal(err)
	}
	spare := &flakyPlane{memPlane: newMemPlane(childSize, true)}
	if err := sp.BeginRebuild(victim, spare); err != nil {
		t.Fatal(err)
	}

	// Sweep chunks while a writer hammers concurrently.
	done := make(chan error, 1)
	go func() {
		wrng := rand.New(rand.NewSource(777))
		for i := 0; i < 80; i++ {
			if err := write(wrng); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	const chunk = 4 * 1024
	for off := int64(0); off < sp.ChildSize(); off += chunk {
		if _, err := sp.SyncChunk(victim, off, chunk); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Post-sweep writes before cutover still fan out to the spare.
	if err := write(rng); err != nil {
		t.Fatal(err)
	}
	if err := sp.SetChildLive(victim); err != nil {
		t.Fatal(err)
	}

	// Now kill the ORIGINAL member: the rebuilt spare is the only
	// source for group 0. Every acked byte must still be served.
	if err := sp.SetChildDown(sp.Geometry().Member(0, 0)); err != nil {
		t.Fatal(err)
	}
	got, err := sp.Read(nil, 0, sp.Size(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, expect) {
		for i := range got {
			if got[i] != expect[i] {
				t.Fatalf("acked byte lost at offset %d after rebuild+cutover (first divergence)", i)
			}
		}
	}
}

// TestMirroredPlaneRebuildGuards pins the rebuild preconditions: a
// live member cannot begin rebuilding, a group with no live sibling
// cannot rebuild (ErrNoReplica), an undersized replacement is
// rejected, and SyncChunk demands the rebuilding state.
func TestMirroredPlaneRebuildGuards(t *testing.T) {
	const unit = 512
	sp, _ := mirroredOverMem(t, 1, 2, 8*1024, unit)
	if err := sp.BeginRebuild(1, nil); err == nil {
		t.Error("rebuild of a live member accepted")
	}
	if _, err := sp.SyncChunk(1, 0, 1024); err == nil {
		t.Error("sync of a live member accepted")
	}
	if err := sp.SetChildDown(0); err != nil {
		t.Fatal(err)
	}
	if err := sp.SetChildDown(1); err != nil {
		t.Fatal(err)
	}
	if err := sp.BeginRebuild(1, nil); !errors.Is(err, ErrNoReplica) {
		t.Errorf("rebuild with no live sibling = %v, want ErrNoReplica", err)
	}
	if err := sp.SetChildLive(0); err != nil {
		t.Fatal(err)
	}
	small := &flakyPlane{memPlane: newMemPlane(1024, true)}
	if err := sp.BeginRebuild(1, small); err == nil {
		t.Error("undersized replacement accepted")
	}
	if err := sp.BeginRebuild(1, nil); err != nil {
		t.Fatalf("in-place rebuild: %v", err)
	}
	if _, err := sp.SyncChunk(1, -1, 10); err == nil {
		t.Error("negative sync offset accepted")
	}
	if n, err := sp.SyncChunk(1, sp.ChildSize()+10, 1024); err != nil || n != 0 {
		t.Errorf("sync past member end = (%d, %v), want (0, nil)", n, err)
	}
}

// TestMirroredPlaneIndexStability is the satellite regression for the
// latent assumption that the child set never changes after dial:
// member swaps (down → rebuild onto a replacement → live) run
// concurrently with striped IO, and the plane must keep Children()
// constant, keep every group addressing its own slots, and never
// corrupt data. Run under -race, this also proves the membership
// snapshot discipline (ops never index the mutable slice directly).
func TestMirroredPlaneIndexStability(t *testing.T) {
	const unit = 512
	const childSize = 16 * 1024
	sp, _ := mirroredOverMem(t, 2, 2, childSize, unit)
	wantChildren := sp.Children()
	expect := make([]byte, sp.Size())
	var expectMu sync.Mutex
	seed := make([]byte, sp.Size())
	rand.New(rand.NewSource(9)).Read(seed)
	if err := sp.Write(nil, 0, sp.Size(), seed, 0); err != nil {
		t.Fatal(err)
	}
	copy(expect, seed)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	ioErrs := make([]error, 2)
	for wkr := 0; wkr < 2; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + wkr)))
			region := sp.Size() / 2
			base := int64(wkr) * region
			for {
				select {
				case <-stop:
					return
				default:
				}
				length := 1 + rng.Int63n(2*unit)
				off := base + rng.Int63n(region-length)
				payload := make([]byte, length)
				rng.Read(payload)
				if err := sp.Write(nil, off, length, payload, 0); err != nil {
					ioErrs[wkr] = err
					return
				}
				expectMu.Lock()
				copy(expect[off:off+length], payload)
				expectMu.Unlock()
				if _, err := sp.Read(nil, off, length, 0); err != nil {
					ioErrs[wkr] = err
					return
				}
			}
		}(wkr)
	}

	// Swap every member once, round-robin, while IO flows.
	for round := 0; round < 4; round++ {
		victim := round % sp.Children()
		if err := sp.SetChildDown(victim); err != nil {
			t.Fatal(err)
		}
		if got := sp.Children(); got != wantChildren {
			t.Fatalf("Children() changed to %d after SetChildDown", got)
		}
		spare := &flakyPlane{memPlane: newMemPlane(childSize, true)}
		if err := sp.BeginRebuild(victim, spare); err != nil {
			t.Fatal(err)
		}
		for off := int64(0); off < sp.ChildSize(); off += 4096 {
			if _, err := sp.SyncChunk(victim, off, 4096); err != nil {
				t.Fatal(err)
			}
		}
		if err := sp.SetChildLive(victim); err != nil {
			t.Fatal(err)
		}
		if got := sp.Children(); got != wantChildren {
			t.Fatalf("Children() changed to %d after swap", got)
		}
		if sp.Child(victim) != spare {
			t.Fatalf("slot %d does not hold its replacement after swap", victim)
		}
	}
	close(stop)
	wg.Wait()
	for wkr, err := range ioErrs {
		if err != nil {
			t.Fatalf("worker %d under live swaps: %v", wkr, err)
		}
	}
	got, err := sp.Read(nil, 0, sp.Size(), 0)
	if err != nil {
		t.Fatal(err)
	}
	expectMu.Lock()
	defer expectMu.Unlock()
	if !bytes.Equal(got, expect) {
		t.Fatal("data corrupted across live member swaps")
	}
}

// TestMirroredPlaneFlushVisitsRebuilding pins that the barrier covers
// rebuilding members too — their copied stripes deserve durability —
// while down members are skipped.
func TestMirroredPlaneFlushVisitsRebuilding(t *testing.T) {
	const unit = 512
	sp, mems := mirroredOverMem(t, 1, 3, 8*1024, unit)
	if err := sp.SetChildDown(1); err != nil {
		t.Fatal(err)
	}
	if err := sp.SetChildDown(2); err != nil {
		t.Fatal(err)
	}
	if err := sp.BeginRebuild(2, nil); err != nil {
		t.Fatal(err)
	}
	if err := sp.Flush(nil); err != nil {
		t.Fatal(err)
	}
	if mems[0].flushes != 1 || mems[2].flushes != 1 {
		t.Errorf("live/rebuilding flushes = %d/%d, want 1/1", mems[0].flushes, mems[2].flushes)
	}
	if mems[1].flushes != 0 {
		t.Errorf("down member flushed %d times, want 0", mems[1].flushes)
	}
}
