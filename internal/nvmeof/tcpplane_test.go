package nvmeof

import (
	"bytes"
	"testing"

	"github.com/nvme-cr/nvmecr/internal/microfs"
	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

func TestTCPPlaneBounds(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: 16 * model.MB})
	h, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := NewTCPPlane(h, 0, 32*model.MB); err == nil {
		t.Error("oversized partition accepted")
	}
	pl, err := NewTCPPlane(h, 4*model.MB, 8*model.MB)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Size() != 8*model.MB {
		t.Errorf("Size = %d", pl.Size())
	}
	if err := pl.Write(nil, pl.Size()-10, 20, nil, 0); err == nil {
		t.Error("out-of-partition write accepted")
	}
}

// TestTCPPlaneOverPool runs the plane over a HostPool instead of a
// single queue pair: the same partition semantics, sharded transport.
func TestTCPPlaneOverPool(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: 16 * model.MB})
	pool, err := DialPool(addr, 1, PoolConfig{QueuePairs: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	pl, err := NewTCPPlane(pool, 2*model.MB, 8*model.MB)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("pooled-plane:"), 1024)
	if err := pl.Write(nil, 4096, int64(len(payload)), payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := pl.Flush(nil); err != nil {
		t.Fatal(err)
	}
	got, err := pl.Read(nil, 4096, int64(len(payload)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch through pooled plane")
	}
	if err := pl.Write(nil, pl.Size()-10, 20, nil, 0); err == nil {
		t.Error("out-of-partition write accepted")
	}
}

// TestMicrofsOverRealTCP runs the full microfs stack — provenance log,
// metadata snapshot, crash recovery — against a real TCP NVMe-oF target:
// a genuine end-to-end durability test over actual sockets.
func TestMicrofsOverRealTCP(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: 64 * model.MB})

	newInstance := func(env *sim.Env) (*microfs.Instance, *Host) {
		h, err := Dial(addr, 1)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := NewTCPPlane(h, 0, h.NamespaceSize())
		if err != nil {
			t.Fatal(err)
		}
		inst, err := microfs.New(env, microfs.Config{
			Plane:     pl,
			Host:      model.Default().Host,
			Features:  microfs.AllFeatures(),
			LogBytes:  256 * model.KB,
			SnapBytes: 2 * model.MB,
		})
		if err != nil {
			t.Fatal(err)
		}
		return inst, h
	}

	payloadA := bytes.Repeat([]byte("over-the-wire-A:"), 8192) // 128 KB
	payloadB := bytes.Repeat([]byte("over-the-wire-B:"), 4096) // 64 KB

	env := sim.NewEnv()
	inst, h1 := newInstance(env)
	env.Go("writer", func(p *sim.Proc) {
		f, err := inst.Open(p, "/a.dat", vfs.O_WRONLY|vfs.O_CREATE|vfs.O_EXCL, 0o644)
		if err != nil {
			t.Error(err)
			return
		}
		vfs.WriteAll(p, f, payloadA, 32*model.KB)
		f.Close(p)
		if err := inst.SnapshotNow(p); err != nil {
			t.Error(err)
			return
		}
		g, err := inst.Open(p, "/b.dat", vfs.O_WRONLY|vfs.O_CREATE|vfs.O_EXCL, 0o644)
		if err != nil {
			t.Error(err)
			return
		}
		vfs.WriteAll(p, g, payloadB, 32*model.KB)
		g.Close(p)
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	h1.Close() // the writing process dies; only the remote target survives

	// A fresh process (new env, new queue pair) recovers everything
	// from the remote SSD.
	env2 := sim.NewEnv()
	inst2, h2 := newInstance(env2)
	defer h2.Close()
	env2.Go("recoverer", func(p *sim.Proc) {
		if err := inst2.Recover(p); err != nil {
			t.Errorf("recovery over TCP: %v", err)
			return
		}
		for path, want := range map[string][]byte{"/a.dat": payloadA, "/b.dat": payloadB} {
			f, err := inst2.Open(p, path, vfs.O_RDONLY, 0)
			if err != nil {
				t.Errorf("open %s: %v", path, err)
				return
			}
			buf := make([]byte, len(want))
			n, err := f.Read(p, buf)
			if err != nil || n != len(want) || !bytes.Equal(buf, want) {
				t.Errorf("%s mismatch over TCP recovery (n=%d err=%v)", path, n, err)
			}
			f.Close(p)
		}
	})
	if _, err := env2.Run(); err != nil {
		t.Fatal(err)
	}
}
