package nvmeof

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/plane"
)

// BenchmarkMirroredPlane measures large-transfer bandwidth through the
// same four loopback targets arranged as RAID-0 (replicas=1, four
// groups) and as a RAID-10 mirror (replicas=2, two groups). Writes pay
// mirroring's fundamental tax — every byte hits R members — so R=2
// lands near 0.5x RAID-0; reads split extents across live replicas and
// must stay near RAID-0 parity. bench.sh gates both ratios.
func BenchmarkMirroredPlane(b *testing.B) {
	const unit = 64 * 1024
	const opSize = 1 * model.MB
	const members = 4
	const memberSize = 16 * model.MB
	// Same device-bound regime as BenchmarkStripedPlane: a modeled
	// per-byte device program time keeps the device, not the loopback
	// fabric, the bottleneck, so replica fan-out costs what it costs on
	// real hardware.
	const deviceLatency = 20 * time.Microsecond
	const deviceBW = 400 * model.MB

	dial := func(b *testing.B) ([]plane.Plane, func()) {
		children := make([]plane.Plane, members)
		var cleanups []func()
		for i := range children {
			tgt := NewTarget()
			if err := tgt.AddNamespace(1, NewMemNamespaceWithModel(memberSize, deviceLatency, deviceBW)); err != nil {
				b.Fatal(err)
			}
			addr, err := tgt.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			pool, err := DialPool(addr, 1, PoolConfig{
				QueuePairs: 2,
				Batch:      BatchConfig{Enabled: true, MergeWrites: true},
			})
			if err != nil {
				b.Fatal(err)
			}
			tp, err := NewTCPPlane(pool, 0, memberSize)
			if err != nil {
				b.Fatal(err)
			}
			children[i] = tp
			cleanups = append(cleanups, func() { pool.Close(); tgt.Close() })
		}
		return children, func() {
			for _, c := range cleanups {
				c()
			}
		}
	}

	for _, mode := range []struct {
		name     string
		replicas int
	}{
		{"raid0", 1},
		{"mirror2", 2},
	} {
		for _, op := range []string{"write", "read"} {
			b.Run(fmt.Sprintf("mode=%s/op=%s", mode.name, op), func(b *testing.B) {
				children, cleanup := dial(b)
				defer cleanup()
				sp, err := NewMirroredPlane(children, unit, mode.replicas)
				if err != nil {
					b.Fatal(err)
				}
				payload := bytes.Repeat([]byte{0xBD}, int(opSize))
				ops := sp.Size() / opSize
				if op == "read" {
					for off := int64(0); off < sp.Size(); off += opSize {
						if err := sp.Write(nil, off, opSize, payload, 0); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.SetBytes(opSize)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					off := (int64(i) % ops) * opSize
					if op == "write" {
						if err := sp.Write(nil, off, opSize, payload, 0); err != nil {
							b.Fatal(err)
						}
					} else if _, err := sp.Read(nil, off, opSize, 0); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
			})
		}
	}
}
