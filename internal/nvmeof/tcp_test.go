package nvmeof

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/nvme-cr/nvmecr/internal/model"
)

func startTarget(t *testing.T, namespaces map[uint32]int64) (*Target, string) {
	t.Helper()
	tgt := NewTarget()
	for nsid, size := range namespaces {
		if err := tgt.AddNamespace(nsid, NewMemNamespace(size)); err != nil {
			t.Fatal(err)
		}
	}
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tgt.Close() })
	return tgt, addr
}

func TestConnectAndIdentify(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: 4 * model.MB})
	h, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.NamespaceSize() != 4*model.MB {
		t.Errorf("NamespaceSize = %d", h.NamespaceSize())
	}
	size, err := h.Identify()
	if err != nil || size != 4*model.MB {
		t.Errorf("Identify = %d, %v", size, err)
	}
}

func TestConnectUnknownNamespace(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: model.MB})
	if _, err := Dial(addr, 99); err == nil {
		t.Fatal("connect to unknown namespace succeeded")
	}
}

func TestWriteReadRoundTripOverTCP(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{7: 16 * model.MB})
	h, err := Dial(addr, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	payload := bytes.Repeat([]byte("checkpoint-over-fabrics-"), 4096)
	if err := h.WriteAt(32768, payload); err != nil {
		t.Fatal(err)
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := h.ReadAt(32768, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch over TCP transport")
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: 4096})
	h, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.WriteAt(4000, make([]byte, 200)); err == nil {
		t.Error("out-of-range write accepted")
	}
	if _, err := h.ReadAt(-1, 10); err == nil {
		t.Error("negative-offset read accepted")
	}
	// The queue pair stays usable after an error completion.
	if err := h.WriteAt(0, []byte("ok")); err != nil {
		t.Errorf("write after error: %v", err)
	}
}

func TestMultiTenantIsolation(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: model.MB, 2: model.MB})
	h1, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Close()
	h2, err := Dial(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if err := h1.WriteAt(0, []byte("tenant-one-data")); err != nil {
		t.Fatal(err)
	}
	got, err := h2.ReadAt(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, []byte("tenant-one-data")) {
		t.Error("namespace 2 sees namespace 1's data")
	}
}

func TestConcurrentQueuePairs(t *testing.T) {
	tgt, addr := startTarget(t, map[uint32]int64{1: 64 * model.MB})
	const hosts = 8
	const writes = 50
	var wg sync.WaitGroup
	errs := make([]error, hosts)
	for i := 0; i < hosts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := Dial(addr, 1)
			if err != nil {
				errs[i] = err
				return
			}
			defer h.Close()
			base := int64(i) * 4 * model.MB
			for j := 0; j < writes; j++ {
				payload := []byte(fmt.Sprintf("host%02d-write%03d", i, j))
				off := base + int64(j)*64
				if err := h.WriteAt(off, payload); err != nil {
					errs[i] = err
					return
				}
				got, err := h.ReadAt(off, int64(len(payload)))
				if err != nil {
					errs[i] = err
					return
				}
				if !bytes.Equal(got, payload) {
					errs[i] = fmt.Errorf("host %d write %d mismatch", i, j)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("host %d: %v", i, err)
		}
	}
	snap := tgt.Snapshot()
	wantCmds := uint64(hosts * (1 + 2*writes)) // connect + write/read pairs
	if snap.Commands != wantCmds {
		t.Errorf("target served %d commands, want %d", snap.Commands, wantCmds)
	}
	if snap.BytesIn == 0 {
		t.Error("target recorded no ingress bytes")
	}
}

func TestPipelinedSubmissionSingleQueue(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: 64 * model.MB})
	h, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	const depth = 16
	var wg sync.WaitGroup
	errs := make([]error, depth)
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			off := int64(i) * model.MB
			payload := bytes.Repeat([]byte{byte(i)}, 1024)
			if err := h.WriteAt(off, payload); err != nil {
				errs[i] = err
				return
			}
			got, err := h.ReadAt(off, 1024)
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(got, payload) {
				errs[i] = fmt.Errorf("slot %d mismatch", i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
}

func TestDuplicateNamespaceRejected(t *testing.T) {
	tgt := NewTarget()
	if err := tgt.AddNamespace(1, NewMemNamespace(model.MB)); err != nil {
		t.Fatal(err)
	}
	if err := tgt.AddNamespace(1, NewMemNamespace(model.MB)); err == nil {
		t.Error("duplicate nsid accepted")
	}
}

func TestHostFailsAfterTargetClose(t *testing.T) {
	tgt, addr := startTarget(t, map[uint32]int64{1: model.MB})
	h, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.WriteAt(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	tgt.Close()
	h.conn.Close() // sever the queue pair
	if err := h.WriteAt(0, []byte("y")); err == nil {
		t.Error("write succeeded after teardown")
	}
}

// Property: command capsules round-trip through the wire encoding.
func TestPropertyCommandCodec(t *testing.T) {
	f := func(op uint8, cid uint16, nsid uint32, off uint64, length uint32, data []byte) bool {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		in := &Command{Opcode: Opcode(op), CID: cid, NSID: nsid, Offset: off, Length: length, Data: data}
		var buf bytes.Buffer
		if err := WriteCommand(&buf, in); err != nil {
			return false
		}
		out, err := ReadCommand(&buf)
		if err != nil {
			return false
		}
		if out.Opcode != in.Opcode || out.CID != in.CID || out.NSID != in.NSID ||
			out.Offset != in.Offset || out.Length != in.Length {
			return false
		}
		if len(data) == 0 {
			return len(out.Data) == 0
		}
		return bytes.Equal(out.Data, in.Data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: response capsules round-trip through the wire encoding.
// The status high bit is reserved on the wire (it flags the phase
// extension), so it is masked out of the generated status and a status
// carrying it must be rejected by the encoder.
func TestPropertyResponseCodec(t *testing.T) {
	bad := &Response{Status: StatusOK | respFlagPhases}
	if err := WriteResponse(io.Discard, bad); err == nil {
		t.Fatal("encoder accepted a status colliding with the phase flag")
	}
	f := func(cid, status uint16, value uint64, data []byte) bool {
		status &^= respFlagPhases
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		in := &Response{CID: cid, Status: status, Value: value, Data: data}
		var buf bytes.Buffer
		if err := WriteResponse(&buf, in); err != nil {
			return false
		}
		out, err := ReadResponse(&buf)
		if err != nil {
			return false
		}
		if out.CID != in.CID || out.Status != in.Status || out.Value != in.Value {
			return false
		}
		if len(data) == 0 {
			return len(out.Data) == 0
		}
		return bytes.Equal(out.Data, in.Data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAbandonedSlotNotReissued pins the timed-out-command contract the
// old CID-wraparound test pinned for the map-based host: a slot whose
// owner abandoned it (timeout) keeps its CID out of circulation until
// the late completion actually arrives, so a stale answer can never be
// mis-routed to a future command. The read loop reclaims the slot on
// delivery and only then does the CID return to the free ring.
func TestAbandonedSlotNotReissued(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: model.MB})
	h, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	// Abandon four slots the way a timeout does: acquire, register, then
	// detach the owner (CAS inflight -> abandoned under respMu).
	var abandoned []*hostSlot
	for i := 0; i < 4; i++ {
		s, err := h.acquireSlot()
		if err != nil {
			t.Fatal(err)
		}
		if err := h.registerSlot(s); err != nil {
			t.Fatal(err)
		}
		h.respMu.Lock()
		if !s.state.CompareAndSwap(slotInflight, slotAbandoned) {
			t.Fatal("slot not in flight after registration")
		}
		h.respMu.Unlock()
		abandoned = append(abandoned, s)
	}
	// Commands keep completing normally and never land on an abandoned
	// slot's CID.
	for i := 0; i < 5; i++ {
		if _, err := h.Identify(); err != nil {
			t.Fatalf("identify %d with abandoned slots held: %v", i, err)
		}
	}
	for _, s := range abandoned {
		if got := s.state.Load(); got != slotAbandoned {
			t.Fatalf("abandoned slot %d reached state %d without a completion", s.idx, got)
		}
	}
	// The late completions arrive; the read loop reclaims each slot.
	for _, s := range abandoned {
		h.deliver(&Response{CID: s.idx + 1, Status: StatusOK})
		if got := s.state.Load(); got != slotFree {
			t.Fatalf("late completion left slot %d in state %d, want free", s.idx, got)
		}
	}
	if _, err := h.Identify(); err != nil {
		t.Fatalf("identify after reclaim: %v", err)
	}
}

func TestQueueFullRejected(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: model.MB})
	h, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	// Drain the free ring: every slot is now (as far as acquisition is
	// concerned) in flight.
	var held []uint16
	for {
		idx, ok := h.freeRing.pop()
		if !ok {
			break
		}
		held = append(held, idx)
	}
	if len(held) != hostQueueDepth {
		t.Fatalf("drained %d slots, want %d", len(held), hostQueueDepth)
	}
	if _, err := h.Identify(); err == nil {
		t.Fatal("command accepted with a full slot ring")
	}
	for _, idx := range held {
		h.freeRing.push(idx)
	}
	if _, err := h.Identify(); err != nil {
		t.Fatalf("identify after queue drained: %v", err)
	}
}

// misbehavingReadTarget acks CONNECT and answers every READ with a
// payload whose length is transformed by fn (nil return = no payload).
func misbehavingReadTarget(t *testing.T, fn func(length uint32) []byte) string {
	return fakeTarget(t, func(c net.Conn) {
		defer c.Close()
		br := bufio.NewReader(c)
		for {
			cmd, err := ReadCommand(br)
			if err != nil {
				return
			}
			resp := &Response{CID: cmd.CID, Status: StatusOK}
			switch cmd.Opcode {
			case OpConnect:
				resp.Value = uint64(model.MB)
			case OpReadCmd:
				resp.Data = fn(cmd.Length)
			}
			if err := WriteResponse(c, resp); err != nil {
				return
			}
		}
	})
}

func TestReadResponseLengthValidated(t *testing.T) {
	cases := []struct {
		name string
		fn   func(length uint32) []byte
	}{
		{"short", func(l uint32) []byte { return make([]byte, l-1) }},
		{"oversized", func(l uint32) []byte { return make([]byte, l+1) }},
		{"missing", func(l uint32) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr := misbehavingReadTarget(t, tc.fn)
			h, err := Dial(addr, 1)
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()
			if _, err := h.ReadAt(0, 64); !errors.Is(err, ErrBadResponse) {
				t.Errorf("read of %s response: %v, want ErrBadResponse", tc.name, err)
			}
		})
	}
}

func TestReadLengthValidatedClientSide(t *testing.T) {
	// These must be rejected before any capsule is built: a negative
	// length would truncate into the uint32 wire field, and an
	// over-limit length could never be answered.
	_, addr := startTarget(t, map[uint32]int64{1: model.MB})
	h, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.ReadAt(0, -5); err == nil {
		t.Error("negative read length accepted")
	}
	if _, err := h.ReadAt(0, MaxDataLen+1); err == nil {
		t.Error("read length above MaxDataLen accepted")
	}
	// The queue pair stays usable.
	if _, err := h.ReadAt(0, 16); err != nil {
		t.Errorf("read after rejected lengths: %v", err)
	}
}

func TestHostCommandTimeout(t *testing.T) {
	addr := stalledTarget(t, model.MB)
	h, err := DialConfig(addr, 1, HostConfig{CommandTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.ReadAt(0, 16); !errors.Is(err, ErrTimeout) {
		t.Fatalf("read against stalled target: %v, want ErrTimeout", err)
	}
	// The timed-out command's CID slot is abandoned, not freed, so a
	// late completion can never answer a future command.
	if n := h.InFlight(); n != 1 {
		t.Errorf("InFlight = %d after timeout, want 1 abandoned slot", n)
	}
	if !h.Healthy() {
		t.Error("timeout poisoned the queue pair")
	}
}

// TestCloseDrainsInflightWrite pins the Target.Close contract: a WRITE
// already received by the target completes — and its completion reaches
// the host — before Close returns.
func TestCloseDrainsInflightWrite(t *testing.T) {
	tgt := NewTarget()
	ns := NewMemNamespace(model.MB)
	if err := tgt.AddNamespace(1, ns); err != nil {
		t.Fatal(err)
	}
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Stall the namespace (via its first stripe lock) so the WRITE
	// wedges mid-processing inside the target's serve loop.
	ns.stripes[0].mu.Lock()
	writeDone := make(chan error, 1)
	go func() { writeDone <- h.WriteAt(0, []byte("in-flight-at-close")) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if tgt.Snapshot().Commands >= 2 { // CONNECT + WRITE received
			break
		}
		if time.Now().After(deadline) {
			ns.stripes[0].mu.Unlock()
			t.Fatal("WRITE never reached the target")
		}
		time.Sleep(time.Millisecond)
	}

	closeDone := make(chan struct{})
	go func() { tgt.Close(); close(closeDone) }()
	select {
	case <-closeDone:
		t.Fatal("Close returned while a WRITE was still in flight")
	case <-time.After(50 * time.Millisecond):
	}

	ns.stripes[0].mu.Unlock()
	if err := <-writeDone; err != nil {
		t.Fatalf("in-flight write failed during drain: %v", err)
	}
	select {
	case <-closeDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned after the WRITE drained")
	}
	if got, _ := ns.readAt(0, 18); string(got) != "in-flight-at-close" {
		t.Errorf("drained write not durable: %q", got)
	}
}

// TestConcurrentSubmittersDuringFail hammers one queue pair from many
// goroutines while its connection is severed; every submitter must get
// an error promptly (no strand, no deadlock). Run under -race.
func TestConcurrentSubmittersDuringFail(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: 16 * model.MB})
	h, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	const submitters = 16
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			off := int64(i) * model.MB
			for {
				if err := h.WriteAt(off, []byte("storm")); err != nil {
					return
				}
				if _, err := h.ReadAt(off, 5); err != nil {
					return
				}
			}
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	h.conn.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("submitters stranded after connection failure")
	}
	if err := h.WriteAt(0, []byte("after")); err == nil {
		t.Error("write succeeded on a failed queue pair")
	}
}

func TestBadMagicRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(make([]byte, 64))
	if _, err := ReadCommand(&buf); err == nil {
		t.Error("zero-magic command accepted")
	}
	buf.Reset()
	buf.Write(make([]byte, 64))
	if _, err := ReadResponse(&buf); err == nil {
		t.Error("zero-magic response accepted")
	}
}
