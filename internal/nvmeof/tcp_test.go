package nvmeof

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"github.com/nvme-cr/nvmecr/internal/model"
)

func startTarget(t *testing.T, namespaces map[uint32]int64) (*Target, string) {
	t.Helper()
	tgt := NewTarget()
	for nsid, size := range namespaces {
		if err := tgt.AddNamespace(nsid, NewMemNamespace(size)); err != nil {
			t.Fatal(err)
		}
	}
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tgt.Close() })
	return tgt, addr
}

func TestConnectAndIdentify(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: 4 * model.MB})
	h, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.NamespaceSize() != 4*model.MB {
		t.Errorf("NamespaceSize = %d", h.NamespaceSize())
	}
	size, err := h.Identify()
	if err != nil || size != 4*model.MB {
		t.Errorf("Identify = %d, %v", size, err)
	}
}

func TestConnectUnknownNamespace(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: model.MB})
	if _, err := Dial(addr, 99); err == nil {
		t.Fatal("connect to unknown namespace succeeded")
	}
}

func TestWriteReadRoundTripOverTCP(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{7: 16 * model.MB})
	h, err := Dial(addr, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	payload := bytes.Repeat([]byte("checkpoint-over-fabrics-"), 4096)
	if err := h.WriteAt(32768, payload); err != nil {
		t.Fatal(err)
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := h.ReadAt(32768, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch over TCP transport")
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: 4096})
	h, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.WriteAt(4000, make([]byte, 200)); err == nil {
		t.Error("out-of-range write accepted")
	}
	if _, err := h.ReadAt(-1, 10); err == nil {
		t.Error("negative-offset read accepted")
	}
	// The queue pair stays usable after an error completion.
	if err := h.WriteAt(0, []byte("ok")); err != nil {
		t.Errorf("write after error: %v", err)
	}
}

func TestMultiTenantIsolation(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: model.MB, 2: model.MB})
	h1, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Close()
	h2, err := Dial(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if err := h1.WriteAt(0, []byte("tenant-one-data")); err != nil {
		t.Fatal(err)
	}
	got, err := h2.ReadAt(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, []byte("tenant-one-data")) {
		t.Error("namespace 2 sees namespace 1's data")
	}
}

func TestConcurrentQueuePairs(t *testing.T) {
	tgt, addr := startTarget(t, map[uint32]int64{1: 64 * model.MB})
	const hosts = 8
	const writes = 50
	var wg sync.WaitGroup
	errs := make([]error, hosts)
	for i := 0; i < hosts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := Dial(addr, 1)
			if err != nil {
				errs[i] = err
				return
			}
			defer h.Close()
			base := int64(i) * 4 * model.MB
			for j := 0; j < writes; j++ {
				payload := []byte(fmt.Sprintf("host%02d-write%03d", i, j))
				off := base + int64(j)*64
				if err := h.WriteAt(off, payload); err != nil {
					errs[i] = err
					return
				}
				got, err := h.ReadAt(off, int64(len(payload)))
				if err != nil {
					errs[i] = err
					return
				}
				if !bytes.Equal(got, payload) {
					errs[i] = fmt.Errorf("host %d write %d mismatch", i, j)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("host %d: %v", i, err)
		}
	}
	cmds, in, _ := tgt.Stats()
	wantCmds := int64(hosts * (1 + 2*writes)) // connect + write/read pairs
	if cmds != wantCmds {
		t.Errorf("target served %d commands, want %d", cmds, wantCmds)
	}
	if in == 0 {
		t.Error("target recorded no ingress bytes")
	}
}

func TestPipelinedSubmissionSingleQueue(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: 64 * model.MB})
	h, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	const depth = 16
	var wg sync.WaitGroup
	errs := make([]error, depth)
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			off := int64(i) * model.MB
			payload := bytes.Repeat([]byte{byte(i)}, 1024)
			if err := h.WriteAt(off, payload); err != nil {
				errs[i] = err
				return
			}
			got, err := h.ReadAt(off, 1024)
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(got, payload) {
				errs[i] = fmt.Errorf("slot %d mismatch", i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
}

func TestDuplicateNamespaceRejected(t *testing.T) {
	tgt := NewTarget()
	if err := tgt.AddNamespace(1, NewMemNamespace(model.MB)); err != nil {
		t.Fatal(err)
	}
	if err := tgt.AddNamespace(1, NewMemNamespace(model.MB)); err == nil {
		t.Error("duplicate nsid accepted")
	}
}

func TestHostFailsAfterTargetClose(t *testing.T) {
	tgt, addr := startTarget(t, map[uint32]int64{1: model.MB})
	h, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.WriteAt(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	tgt.Close()
	h.conn.Close() // sever the queue pair
	if err := h.WriteAt(0, []byte("y")); err == nil {
		t.Error("write succeeded after teardown")
	}
}

// Property: command capsules round-trip through the wire encoding.
func TestPropertyCommandCodec(t *testing.T) {
	f := func(op uint8, cid uint16, nsid uint32, off uint64, length uint32, data []byte) bool {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		in := &Command{Opcode: Opcode(op), CID: cid, NSID: nsid, Offset: off, Length: length, Data: data}
		var buf bytes.Buffer
		if err := WriteCommand(&buf, in); err != nil {
			return false
		}
		out, err := ReadCommand(&buf)
		if err != nil {
			return false
		}
		if out.Opcode != in.Opcode || out.CID != in.CID || out.NSID != in.NSID ||
			out.Offset != in.Offset || out.Length != in.Length {
			return false
		}
		if len(data) == 0 {
			return len(out.Data) == 0
		}
		return bytes.Equal(out.Data, in.Data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: response capsules round-trip through the wire encoding.
func TestPropertyResponseCodec(t *testing.T) {
	f := func(cid, status uint16, value uint64, data []byte) bool {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		in := &Response{CID: cid, Status: status, Value: value, Data: data}
		var buf bytes.Buffer
		if err := WriteResponse(&buf, in); err != nil {
			return false
		}
		out, err := ReadResponse(&buf)
		if err != nil {
			return false
		}
		if out.CID != in.CID || out.Status != in.Status || out.Value != in.Value {
			return false
		}
		if len(data) == 0 {
			return len(out.Data) == 0
		}
		return bytes.Equal(out.Data, in.Data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(make([]byte, 64))
	if _, err := ReadCommand(&buf); err == nil {
		t.Error("zero-magic command accepted")
	}
	buf.Reset()
	buf.Write(make([]byte, 64))
	if _, err := ReadResponse(&buf); err == nil {
		t.Error("zero-magic response accepted")
	}
}
