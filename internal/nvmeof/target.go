package nvmeof

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"

	"github.com/nvme-cr/nvmecr/internal/extent"
)

// MemNamespace is one exported namespace backed by an in-memory extent
// store (the target-side analogue of an SSD namespace; on the paper's
// testbed this is an SPDK bdev).
type MemNamespace struct {
	mu      sync.Mutex
	store   *extent.Store
	size    int64
	deleted bool
}

func (ns *MemNamespace) markDeleted() {
	ns.mu.Lock()
	ns.deleted = true
	ns.store.Reset()
	ns.mu.Unlock()
}

// NewMemNamespace creates a namespace of the given size.
func NewMemNamespace(size int64) *MemNamespace {
	return &MemNamespace{store: extent.New(), size: size}
}

// Size returns the namespace capacity.
func (ns *MemNamespace) Size() int64 { return ns.size }

// StoredBytes returns the payload bytes held.
func (ns *MemNamespace) StoredBytes() int64 {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.store.Bytes()
}

func (ns *MemNamespace) writeAt(off int64, data []byte) uint16 {
	if off < 0 || off+int64(len(data)) > ns.size {
		return StatusOutOfRange
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.deleted {
		return StatusInvalidNamespace
	}
	if err := ns.store.Write(off, data); err != nil {
		return StatusInternal
	}
	return StatusOK
}

func (ns *MemNamespace) readAt(off, length int64) ([]byte, uint16) {
	if off < 0 || length < 0 || off+length > ns.size {
		return nil, StatusOutOfRange
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.deleted {
		return nil, StatusInvalidNamespace
	}
	data, _ := ns.store.Read(off, length)
	return data, StatusOK
}

// Target is a multi-tenant NVMe-oF target daemon serving namespaces
// over TCP. Each accepted connection is one queue pair.
type Target struct {
	mu         sync.Mutex
	namespaces map[uint32]*MemNamespace
	nextNSID   uint32
	capacity   int64 // 0 = unlimited
	ln         net.Listener
	wg         sync.WaitGroup
	closed     bool

	// Stats.
	commands int64
	bytesIn  int64
	bytesOut int64
}

// NewTarget creates an empty target with unlimited capacity.
func NewTarget() *Target {
	return &Target{namespaces: make(map[uint32]*MemNamespace), nextNSID: 1}
}

// NewTargetWithCapacity bounds the total bytes exportable as namespaces
// (the device capacity the scheduler allocates against).
func NewTargetWithCapacity(capacity int64) *Target {
	t := NewTarget()
	t.capacity = capacity
	return t
}

// usedLocked sums live namespace sizes; t.mu must be held.
func (t *Target) usedLocked() int64 {
	var used int64
	for _, ns := range t.namespaces {
		used += ns.size
	}
	return used
}

// createNamespace implements the admin create: pick the next free NSID.
func (t *Target) createNamespace(size int64) (uint32, uint16) {
	if size <= 0 {
		return 0, StatusOutOfRange
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.capacity > 0 && t.usedLocked()+size > t.capacity {
		return 0, StatusNoCapacity
	}
	for {
		if _, taken := t.namespaces[t.nextNSID]; !taken {
			break
		}
		t.nextNSID++
	}
	nsid := t.nextNSID
	t.nextNSID++
	t.namespaces[nsid] = NewMemNamespace(size)
	return nsid, StatusOK
}

// deleteNamespace implements the admin delete.
func (t *Target) deleteNamespace(nsid uint32) uint16 {
	t.mu.Lock()
	ns, ok := t.namespaces[nsid]
	if ok {
		delete(t.namespaces, nsid)
	}
	t.mu.Unlock()
	if !ok {
		return StatusInvalidNamespace
	}
	ns.markDeleted()
	return StatusOK
}

// listNamespaces encodes the exported (nsid, size) pairs.
func (t *Target) listNamespaces() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]uint32, 0, len(t.namespaces))
	for id := range t.namespaces {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]byte, 0, len(ids)*12)
	for _, id := range ids {
		var entry [12]byte
		binary.LittleEndian.PutUint32(entry[0:], id)
		binary.LittleEndian.PutUint64(entry[4:], uint64(t.namespaces[id].size))
		out = append(out, entry[:]...)
	}
	return out
}

// AddNamespace exports a namespace under the given NSID.
func (t *Target) AddNamespace(nsid uint32, ns *MemNamespace) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.namespaces[nsid]; ok {
		return fmt.Errorf("nvmeof: nsid %d already exported", nsid)
	}
	t.namespaces[nsid] = ns
	return nil
}

// Listen starts accepting queue pairs on addr (e.g. "127.0.0.1:0").
// It returns the bound address.
func (t *Target) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	t.mu.Lock()
	t.ln = ln
	t.mu.Unlock()
	t.wg.Add(1)
	go t.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (t *Target) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serve(conn)
		}()
	}
}

// serve handles one queue pair.
func (t *Target) serve(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<20)
	bw := bufio.NewWriterSize(conn, 1<<20)
	var connected *MemNamespace
	for {
		cmd, err := ReadCommand(br)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				// Protocol violation: drop the queue pair.
				return
			}
			return
		}
		t.mu.Lock()
		t.commands++
		t.bytesIn += int64(len(cmd.Data))
		t.mu.Unlock()
		resp := &Response{CID: cmd.CID, Status: StatusOK}
		switch cmd.Opcode {
		case OpConnect:
			if cmd.NSID == 0 {
				// Admin queue pair: no namespace bound.
				connected = nil
				break
			}
			t.mu.Lock()
			ns, ok := t.namespaces[cmd.NSID]
			t.mu.Unlock()
			if !ok {
				resp.Status = StatusInvalidNamespace
			} else {
				connected = ns
				resp.Value = uint64(ns.Size())
			}
		case OpIdentify:
			if connected == nil {
				resp.Status = StatusNotConnected
			} else {
				resp.Value = uint64(connected.Size())
			}
		case OpWriteCmd:
			if connected == nil {
				resp.Status = StatusNotConnected
			} else {
				resp.Status = connected.writeAt(int64(cmd.Offset), cmd.Data)
			}
		case OpReadCmd:
			if connected == nil {
				resp.Status = StatusNotConnected
			} else {
				data, status := connected.readAt(int64(cmd.Offset), int64(cmd.Length))
				resp.Status = status
				resp.Data = data
			}
		case OpFlushCmd:
			if connected == nil {
				resp.Status = StatusNotConnected
			}
			// Data is durable on arrival (capacitor-backed model).
		case OpCreateNS:
			nsid, status := t.createNamespace(int64(cmd.Offset))
			resp.Status = status
			resp.Value = uint64(nsid)
		case OpDeleteNS:
			resp.Status = t.deleteNamespace(cmd.NSID)
		case OpListNS:
			resp.Data = t.listNamespaces()
		default:
			resp.Status = StatusInvalidOpcode
		}
		t.mu.Lock()
		t.bytesOut += int64(len(resp.Data))
		t.mu.Unlock()
		if err := WriteResponse(bw, resp); err != nil {
			return
		}
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// Stats reports served commands and payload byte counts.
func (t *Target) Stats() (commands, bytesIn, bytesOut int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.commands, t.bytesIn, t.bytesOut
}

// Close stops the listener and waits for active queue pairs to drain
// their current command. Connected hosts observe EOF.
func (t *Target) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	ln := t.ln
	t.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	return nil
}
