package nvmeof

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nvme-cr/nvmecr/internal/extent"
	"github.com/nvme-cr/nvmecr/internal/telemetry"
)

// stripeBytes is the lock-striping granularity of a MemNamespace: each
// stripe has its own extent store and mutex, so queue pairs writing
// disjoint regions never contend on one namespace-wide lock.
const stripeBytes = 1 << 20

// nsStripe is one independently locked region of a namespace.
type nsStripe struct {
	mu    sync.Mutex
	store *extent.Store
}

// MemNamespace is one exported namespace backed by lock-striped
// in-memory extent stores (the target-side analogue of an SSD
// namespace; on the paper's testbed this is an SPDK bdev). An optional
// modeled device service latency is charged per command outside any
// lock, so commands on different queue pairs overlap their service
// time the way they would on real hardware — commands on the same
// queue pair serialize, which is exactly the head-of-line cost a
// HostPool exists to remove.
type MemNamespace struct {
	size        int64
	delay       time.Duration
	bytesPerSec int64 // 0 = infinite device bandwidth
	deleted     atomic.Bool
	stripes     []nsStripe
}

func (ns *MemNamespace) markDeleted() {
	ns.deleted.Store(true)
	for i := range ns.stripes {
		s := &ns.stripes[i]
		s.mu.Lock()
		s.store.Reset()
		s.mu.Unlock()
	}
}

// NewMemNamespace creates a namespace of the given size with no modeled
// device latency.
func NewMemNamespace(size int64) *MemNamespace {
	return NewMemNamespaceWithLatency(size, 0)
}

// NewMemNamespaceWithLatency creates a namespace whose READ and WRITE
// commands each cost the given modeled device service time (the SSD the
// in-memory store stands in for is not free; the paper's drives program
// a page in tens of microseconds).
func NewMemNamespaceWithLatency(size int64, delay time.Duration) *MemNamespace {
	return NewMemNamespaceWithModel(size, delay, 0)
}

// NewMemNamespaceWithModel creates a namespace with a two-parameter
// device model: perCmd is the fixed per-command service latency
// (command overhead, flash program/read time) and bytesPerSec the
// device's sequential bandwidth, charged per payload byte on top of
// the fixed cost (0 = infinite). With only a flat per-command cost,
// splitting a transfer across commands or targets is modeled as free —
// which makes single-target large commands look unbeatable and hides
// exactly the aggregate-bandwidth win striping exists to measure.
func NewMemNamespaceWithModel(size int64, perCmd time.Duration, bytesPerSec int64) *MemNamespace {
	n := int((size + stripeBytes - 1) / stripeBytes)
	if n < 1 {
		n = 1
	}
	ns := &MemNamespace{size: size, delay: perCmd, bytesPerSec: bytesPerSec, stripes: make([]nsStripe, n)}
	for i := range ns.stripes {
		ns.stripes[i].store = extent.New()
	}
	return ns
}

// serviceDelay is the modeled device time for one command moving n
// payload bytes.
func (ns *MemNamespace) serviceDelay(n int64) time.Duration {
	d := ns.delay
	if ns.bytesPerSec > 0 && n > 0 {
		d += time.Duration(n * int64(time.Second) / ns.bytesPerSec)
	}
	return d
}

// Size returns the namespace capacity.
func (ns *MemNamespace) Size() int64 { return ns.size }

// StoredBytes returns the payload bytes held.
func (ns *MemNamespace) StoredBytes() int64 {
	var total int64
	for i := range ns.stripes {
		s := &ns.stripes[i]
		s.mu.Lock()
		total += s.store.Bytes()
		s.mu.Unlock()
	}
	return total
}

func (ns *MemNamespace) writeAt(off int64, data []byte) uint16 {
	if off < 0 || off+int64(len(data)) > ns.size {
		return StatusOutOfRange
	}
	if ns.deleted.Load() {
		return StatusInvalidNamespace
	}
	if d := ns.serviceDelay(int64(len(data))); d > 0 {
		time.Sleep(d)
	}
	for len(data) > 0 {
		si := off / stripeBytes
		n := (si+1)*stripeBytes - off
		if n > int64(len(data)) {
			n = int64(len(data))
		}
		s := &ns.stripes[si]
		s.mu.Lock()
		err := s.store.Write(off, data[:n])
		s.mu.Unlock()
		if err != nil {
			return StatusInternal
		}
		off += n
		data = data[n:]
	}
	return StatusOK
}

func (ns *MemNamespace) readAt(off, length int64) ([]byte, uint16) {
	if off < 0 || length < 0 || off+length > ns.size {
		return nil, StatusOutOfRange
	}
	if ns.deleted.Load() {
		return nil, StatusInvalidNamespace
	}
	if d := ns.serviceDelay(length); d > 0 {
		time.Sleep(d)
	}
	buf := make([]byte, length)
	for covered := int64(0); covered < length; {
		cur := off + covered
		si := cur / stripeBytes
		n := (si+1)*stripeBytes - cur
		if n > length-covered {
			n = length - covered
		}
		s := &ns.stripes[si]
		s.mu.Lock()
		data, _ := s.store.Read(cur, n)
		s.mu.Unlock()
		copy(buf[covered:], data)
		covered += n
	}
	return buf, StatusOK
}

// qpConn is the target's bookkeeping for one accepted queue pair. The
// counters live in the target's registry (one series per accepted
// queue pair, labeled by ID) so the per-command path never takes
// Target.mu and /metrics sees every queue pair that ever connected.
type qpConn struct {
	id   int
	conn net.Conn

	nsid    atomic.Uint32 // namespace bound by CONNECT (0 = admin / none)
	version atomic.Uint32 // capsule version negotiated at CONNECT

	commands *telemetry.Counter
	errors   *telemetry.Counter
	bytesIn  *telemetry.Counter
	bytesOut *telemetry.Counter
}

// drainWriteGrace bounds how long a draining queue pair may spend
// writing its final responses to a peer that has stopped reading.
const drainWriteGrace = 5 * time.Second

// Target is a multi-tenant NVMe-oF target daemon serving namespaces
// over TCP. Each accepted connection is one queue pair.
type Target struct {
	mu         sync.Mutex
	namespaces map[uint32]*MemNamespace
	nextNSID   uint32
	capacity   int64 // 0 = unlimited
	ln         net.Listener
	wg         sync.WaitGroup
	closed     bool
	conns      map[int]*qpConn
	nextQPID   int

	// Registry-backed stats (bumped on every command, off the t.mu
	// path; counters are atomic internally).
	reg      *telemetry.Registry
	commands *telemetry.Counter
	errors   *telemetry.Counter
	bytesIn  *telemetry.Counter
	bytesOut *telemetry.Counter
	latency  *telemetry.Histogram

	// flight keeps the last completed commands per accepted queue
	// pair, with measured phase breakdowns; served at /debug/flight
	// on the nvmecrd admin listener.
	flight *FlightRecorder
}

// NewTarget creates an empty target with unlimited capacity.
func NewTarget() *Target {
	reg := telemetry.New()
	return &Target{
		namespaces: make(map[uint32]*MemNamespace),
		nextNSID:   1,
		conns:      make(map[int]*qpConn),
		reg:        reg,
		commands:   reg.Counter(MetricTargetCommands, nil),
		errors:     reg.Counter(MetricTargetErrors, nil),
		bytesIn:    reg.Counter(MetricTargetBytesIn, nil),
		bytesOut:   reg.Counter(MetricTargetBytesOut, nil),
		latency:    reg.Histogram(MetricTargetLatency, nil, nil),
		flight:     NewFlightRecorder(0),
	}
}

// NewTargetWithCapacity bounds the total bytes exportable as namespaces
// (the device capacity the scheduler allocates against).
func NewTargetWithCapacity(capacity int64) *Target {
	t := NewTarget()
	t.capacity = capacity
	return t
}

// usedLocked sums live namespace sizes; t.mu must be held.
func (t *Target) usedLocked() int64 {
	var used int64
	for _, ns := range t.namespaces {
		used += ns.size
	}
	return used
}

// createNamespace implements the admin create: pick the next free NSID.
func (t *Target) createNamespace(size int64) (uint32, uint16) {
	if size <= 0 {
		return 0, StatusOutOfRange
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.capacity > 0 && t.usedLocked()+size > t.capacity {
		return 0, StatusNoCapacity
	}
	for {
		if _, taken := t.namespaces[t.nextNSID]; !taken {
			break
		}
		t.nextNSID++
	}
	nsid := t.nextNSID
	t.nextNSID++
	t.namespaces[nsid] = NewMemNamespace(size)
	return nsid, StatusOK
}

// deleteNamespace implements the admin delete.
func (t *Target) deleteNamespace(nsid uint32) uint16 {
	t.mu.Lock()
	ns, ok := t.namespaces[nsid]
	if ok {
		delete(t.namespaces, nsid)
	}
	t.mu.Unlock()
	if !ok {
		return StatusInvalidNamespace
	}
	ns.markDeleted()
	return StatusOK
}

// listNamespaces encodes the exported (nsid, size) pairs.
func (t *Target) listNamespaces() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]uint32, 0, len(t.namespaces))
	for id := range t.namespaces {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]byte, 0, len(ids)*12)
	for _, id := range ids {
		var entry [12]byte
		binary.LittleEndian.PutUint32(entry[0:], id)
		binary.LittleEndian.PutUint64(entry[4:], uint64(t.namespaces[id].size))
		out = append(out, entry[:]...)
	}
	return out
}

// AddNamespace exports a namespace under the given NSID.
func (t *Target) AddNamespace(nsid uint32, ns *MemNamespace) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.namespaces[nsid]; ok {
		return fmt.Errorf("nvmeof: nsid %d already exported", nsid)
	}
	t.namespaces[nsid] = ns
	return nil
}

// Listen starts accepting queue pairs on addr (e.g. "127.0.0.1:0").
// It returns the bound address.
func (t *Target) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	t.mu.Lock()
	t.ln = ln
	t.mu.Unlock()
	t.wg.Add(1)
	go t.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (t *Target) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serve(conn)
		}()
	}
}

// register tracks a new queue pair; it refuses connections that race
// with Close so that drain never waits on a late arrival.
func (t *Target) register(conn net.Conn) (*qpConn, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, false
	}
	t.nextQPID++
	l := telemetry.Labels{"qp": fmt.Sprint(t.nextQPID)}
	qp := &qpConn{
		id:       t.nextQPID,
		conn:     conn,
		commands: t.reg.Counter(MetricTargetQPCommands, l),
		errors:   t.reg.Counter(MetricTargetQPErrors, l),
		bytesIn:  t.reg.Counter(MetricTargetQPBytesIn, l),
		bytesOut: t.reg.Counter(MetricTargetQPBytesOut, l),
	}
	t.conns[qp.id] = qp
	return qp, true
}

func (t *Target) deregister(qp *qpConn) {
	t.mu.Lock()
	delete(t.conns, qp.id)
	t.mu.Unlock()
}

// targetSQDepth bounds each queue pair's submission queue: how many
// parsed commands may wait for service before the reader stops pulling
// from the socket (backpressure then falls back to TCP flow control).
const targetSQDepth = 64

// tgtSlot is one queue-pair submission slot: the parsed command, the
// response under construction, the retained payload backing, and the
// timestamps the phase breakdown is computed from. The serve loop
// preallocates targetSQDepth of these and cycles them through a free
// list, so the steady-state service path parses, executes, and answers
// commands without allocating (the run-to-completion discipline of the
// paper's target, in Go clothes).
type tgtSlot struct {
	cmd Command
	// dataBuf is the payload backing readCommandInto reuses between
	// capsules (retained up to maxReuseBuf; larger payloads get a
	// one-off allocation).
	dataBuf []byte
	resp    Response
	phases  PhaseTimings

	readStart time.Time     // first capsule byte available
	wireRead  time.Duration // first byte available -> capsule parsed
	queuedAt  time.Time     // capsule parsed; submission-queue wait starts
}

// clamp1 converts a measured phase to nanoseconds, clamped to >= 1 so
// a sub-clock-resolution measurement still reads as "happened".
func clamp1(d time.Duration) uint64 {
	if d < 1 {
		return 1
	}
	return uint64(d)
}

// serve handles one queue pair: a reader goroutine parses capsules off
// the socket into a submission queue, and the service loop below
// executes them in order. The split keeps the phase breakdown honest —
// submission-queue wait is real time a pipelined command spends behind
// its predecessors, not a synthetic zero — and mirrors the SQ/CQ shape
// of a hardware queue pair.
func (t *Target) serve(conn net.Conn) {
	defer conn.Close()
	qp, ok := t.register(conn)
	if !ok {
		return
	}
	defer t.deregister(qp)
	br := bufio.NewReaderSize(conn, 1<<20)
	bw := bufio.NewWriterSize(conn, 1<<20)

	// Slot pool: the reader acquires a slot, parses into it, and hands
	// its index to the service loop, which returns it after answering.
	// Indices, not pointers, travel through the channels, so one slot
	// array serves the queue pair's whole life with no per-command
	// allocation.
	slots := make([]tgtSlot, targetSQDepth)
	free := make(chan uint16, targetSQDepth)
	for i := range slots {
		free <- uint16(i)
	}
	sq := make(chan uint16, targetSQDepth)
	go func() {
		// Reader: owns br. Exits (closing the submission queue) on
		// EOF, a read deadline from a draining Close, or a protocol
		// violation. The negotiated version is consulted lazily, after
		// each fixed header: the service loop stores it when it
		// processes CONNECT, strictly before any post-negotiation
		// capsule's first byte arrives.
		defer close(sq)
		version := func() uint16 { return uint16(qp.version.Load()) }
		var scratch [protoScratchLen]byte
		for {
			// Acquire the slot before blocking for the first byte: the
			// wire-read clock must start at first-byte-available, and
			// idle time waiting for the host to submit is not wire
			// time (it must not inflate the phase sum past the
			// host-observed round trip).
			idx := <-free
			s := &slots[idx]
			if _, err := br.Peek(1); err != nil {
				return
			}
			s.readStart = time.Now()
			if err := readCommandInto(br, version, &s.cmd, &s.dataBuf, &scratch); err != nil {
				return
			}
			if s.cmd.Traced {
				now := time.Now()
				s.wireRead = now.Sub(s.readStart)
				s.queuedAt = now
			} else {
				// Untraced commands carry no phase decomposition, so the
				// post-parse clock read buys nothing: fold the (bufio-fed,
				// sub-microsecond) parse into the queue wait and save the
				// read — clock reads are a measurable slice of the
				// small-command loop.
				s.wireRead = 0
				s.queuedAt = s.readStart
			}
			sq <- idx
		}
	}()

	var connected *MemNamespace
	admin := false // CONNECT with NSID 0 makes this an admin queue pair
	var prevWireWrite time.Duration
	var respScratch [protoScratchLen]byte
	for idx := range sq {
		s := &slots[idx]
		cmd := &s.cmd
		// One clock read covers both the queue-wait end and the service
		// start (they are the same instant); the write path fuses its
		// reads the same way. Untraced commands skip the interior reads
		// entirely — nothing reports their per-phase split, and clock
		// reads are a measurable slice of the small-command service
		// loop.
		var serviceStart time.Time
		var queueWait time.Duration
		if cmd.Traced {
			serviceStart = time.Now()
			queueWait = serviceStart.Sub(s.queuedAt)
		}
		t.commands.Inc()
		t.bytesIn.Add(uint64(len(cmd.Data)))
		qp.commands.Inc()
		qp.bytesIn.Add(uint64(len(cmd.Data)))
		resp := &s.resp
		*resp = Response{CID: cmd.CID, Status: StatusOK}
		switch cmd.Opcode {
		case OpConnect:
			if cmd.NSID == 0 {
				// Admin queue pair: no namespace bound.
				connected = nil
				admin = true
			} else {
				t.mu.Lock()
				ns, nsOK := t.namespaces[cmd.NSID]
				t.mu.Unlock()
				if !nsOK {
					resp.Status = StatusInvalidNamespace
				} else {
					connected = ns
					admin = false
					resp.Value = uint64(ns.Size())
					qp.nsid.Store(cmd.NSID)
				}
			}
			if resp.Status == StatusOK && cmd.ProposeVersion > 0 {
				// Version-aware initiator: answer with the version
				// this queue pair will speak. Legacy initiators never
				// propose and get no payload; legacy targets never
				// attach one, which decodes as version 0.
				negotiated := NegotiateVersion(cmd.ProposeVersion)
				resp.Data = encodeNegotiatedVersion(negotiated)
				qp.version.Store(uint32(negotiated))
			}
		case OpIdentify:
			if connected == nil {
				resp.Status = StatusNotConnected
			} else {
				resp.Value = uint64(connected.Size())
			}
		case OpWriteCmd:
			if connected == nil {
				resp.Status = StatusNotConnected
			} else {
				resp.Status = connected.writeAt(int64(cmd.Offset), cmd.Data)
			}
		case OpReadCmd:
			if connected == nil {
				resp.Status = StatusNotConnected
			} else {
				data, status := connected.readAt(int64(cmd.Offset), int64(cmd.Length))
				resp.Status = status
				resp.Data = data
			}
		case OpFlushCmd:
			if connected == nil {
				resp.Status = StatusNotConnected
			}
			// Data is durable on arrival (capacitor-backed model).
		case OpCreateNS:
			if status := adminOnly(connected, admin); status != StatusOK {
				resp.Status = status
				break
			}
			nsid, status := t.createNamespace(int64(cmd.Offset))
			resp.Status = status
			resp.Value = uint64(nsid)
		case OpDeleteNS:
			if status := adminOnly(connected, admin); status != StatusOK {
				resp.Status = status
				break
			}
			resp.Status = t.deleteNamespace(cmd.NSID)
		case OpListNS:
			if status := adminOnly(connected, admin); status != StatusOK {
				resp.Status = status
				break
			}
			resp.Data = t.listNamespaces()
		default:
			resp.Status = StatusInvalidOpcode
		}
		var writeStart time.Time
		if cmd.Traced {
			writeStart = time.Now()
			// The extension block lives in the slot; WriteResponseV
			// serializes it synchronously, before the slot is reused.
			s.phases = PhaseTimings{
				WireReadNS:  clamp1(s.wireRead),
				QueueNS:     clamp1(queueWait),
				ServiceNS:   clamp1(writeStart.Sub(serviceStart)),
				WireWriteNS: uint64(prevWireWrite), // see PhaseTimings
			}
			resp.Phases = &s.phases
		}
		if resp.Status != StatusOK {
			t.errors.Inc()
			qp.errors.Inc()
		}
		t.bytesOut.Add(uint64(len(resp.Data)))
		qp.bytesOut.Add(uint64(len(resp.Data)))
		err := writeResponseScratch(bw, resp, uint16(qp.version.Load()), &respScratch)
		if err == nil && len(sq) == 0 {
			// No command waiting for service: flush the pipelined
			// responses.
			err = bw.Flush()
		}
		done := time.Now()
		t.latency.ObserveDuration(done.Sub(s.queuedAt))
		rec := FlightRecord{
			TraceID:   cmd.TraceID,
			QP:        qp.id,
			Op:        cmd.Opcode.String(),
			Opcode:    cmd.Opcode,
			CID:       cmd.CID,
			Status:    resp.Status,
			Bytes:     len(cmd.Data) + len(resp.Data),
			WallNS:    s.readStart.UnixNano(),
			ElapsedNS: int64(done.Sub(s.readStart)),
		}
		if cmd.Traced {
			wireWrite := done.Sub(writeStart)
			prevWireWrite = wireWrite
			rec.Phases = s.phases
			rec.Phases.WireWriteNS = clamp1(wireWrite)
			rec.HasPhases = true
		}
		t.flight.Record(qp.id, rec)
		if err != nil {
			// Response undeliverable: force the reader off the socket,
			// then drain the queue — recycling each drained slot so a
			// reader blocked on the free list wakes, hits the closed
			// socket, and closes sq to end this loop.
			conn.Close()
			for di := range sq {
				free <- di
			}
			return
		}
		free <- idx
	}
	// Reader closed the queue; every accepted command was answered
	// above, so flush the tail and drop the queue pair.
	bw.Flush()
}

// adminOnly gates the namespace-management command set to admin queue
// pairs: I/O queue pairs (namespace bound) get StatusWrongQueue, and a
// connection that never issued CONNECT gets StatusNotConnected.
func adminOnly(connected *MemNamespace, admin bool) uint16 {
	if connected != nil {
		return StatusWrongQueue
	}
	if !admin {
		return StatusNotConnected
	}
	return StatusOK
}

// Telemetry returns the target's registry, for exposition (the
// nvmecrd admin listener serves it at /metrics).
func (t *Target) Telemetry() *telemetry.Registry { return t.reg }

// Snapshot reports the target's totals, command latency quantiles, and
// the live queue pairs (ordered by ID) in the unified snapshot form.
func (t *Target) Snapshot() telemetry.TargetSnapshot {
	t.mu.Lock()
	qps := make([]*qpConn, 0, len(t.conns))
	for _, qp := range t.conns {
		qps = append(qps, qp)
	}
	t.mu.Unlock()
	snap := telemetry.TargetSnapshot{
		Commands: t.commands.Value(),
		Errors:   t.errors.Value(),
		BytesIn:  t.bytesIn.Value(),
		BytesOut: t.bytesOut.Value(),
		Latency:  t.latency.Latency(),
	}
	for _, qp := range qps {
		snap.QueuePairs = append(snap.QueuePairs, telemetry.TargetQPSnapshot{
			ID:       qp.id,
			Remote:   qp.conn.RemoteAddr().String(),
			NSID:     qp.nsid.Load(),
			Commands: qp.commands.Value(),
			Errors:   qp.errors.Value(),
			BytesIn:  qp.bytesIn.Value(),
			BytesOut: qp.bytesOut.Value(),
		})
	}
	sort.Slice(snap.QueuePairs, func(i, j int) bool {
		return snap.QueuePairs[i].ID < snap.QueuePairs[j].ID
	})
	return snap
}

// Flight returns the target's flight recorder: the last N completed
// commands per queue pair, with measured phase breakdowns. The nvmecrd
// admin listener serves it at /debug/flight.
func (t *Target) Flight() *FlightRecorder { return t.flight }

// Close stops the listener and waits for active queue pairs to drain:
// every command already received completes and its response is flushed
// before Close returns. Connected hosts then observe EOF.
func (t *Target) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	ln := t.ln
	conns := make([]net.Conn, 0, len(t.conns))
	for _, qp := range t.conns {
		conns = append(conns, qp.conn)
	}
	t.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	now := time.Now()
	for _, c := range conns {
		// Wake queue pairs blocked waiting for their next command;
		// commands already buffered keep draining. The write deadline
		// is a backstop against peers that stopped reading responses.
		c.SetReadDeadline(now)
		c.SetWriteDeadline(now.Add(drainWriteGrace))
	}
	t.wg.Wait()
	return nil
}
