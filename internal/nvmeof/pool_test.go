package nvmeof

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/plane"
)

// fakeTarget starts a raw listener whose connections are handled by fn,
// for tests that need a misbehaving or stalled target.
func fakeTarget(t *testing.T, fn func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go fn(c)
		}
	}()
	return ln.Addr().String()
}

func TestPoolWriteReadAcrossQueuePairs(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: 64 * model.MB})
	pool, err := DialPool(addr, 1, PoolConfig{QueuePairs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.NamespaceSize() != 64*model.MB {
		t.Errorf("NamespaceSize = %d", pool.NamespaceSize())
	}
	if pool.QueuePairs() != 4 {
		t.Errorf("QueuePairs = %d", pool.QueuePairs())
	}

	const workers = 8
	const writes = 32
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			base := int64(i) * 4 * model.MB
			for j := 0; j < writes; j++ {
				payload := []byte(fmt.Sprintf("worker%02d-write%03d", i, j))
				off := base + int64(j)*64
				if err := pool.WriteAt(off, payload); err != nil {
					errs[i] = err
					return
				}
				got, err := pool.ReadAt(off, int64(len(payload)))
				if err != nil {
					errs[i] = err
					return
				}
				if !bytes.Equal(got, payload) {
					errs[i] = fmt.Errorf("worker %d write %d mismatch", i, j)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	if size, err := pool.Identify(); err != nil || size != 64*model.MB {
		t.Errorf("Identify = %d, %v", size, err)
	}

	// The load must actually shard: more than one queue pair carried
	// commands.
	used := 0
	var total uint64
	for _, st := range pool.Snapshot() {
		if st.Commands > 0 {
			used++
		}
		total += st.Commands
		if !st.Healthy {
			t.Errorf("queue pair %d unhealthy after clean run", st.ID)
		}
	}
	if used < 2 {
		t.Errorf("only %d of 4 queue pairs carried commands", used)
	}
	// Every round trip counts, including each queue pair's CONNECT at
	// dial and its FLUSH at the barrier.
	if want := uint64(workers*writes*2 + 4 + 4 + 1); total != want {
		t.Errorf("pool issued %d commands, want %d", total, want)
	}
}

func TestPoolRetryAfterQueuePairFailure(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: model.MB})
	pool, err := DialPool(addr, 1, PoolConfig{
		QueuePairs:       2,
		MaxRetries:       3,
		RetryBackoff:     time.Millisecond,
		ReconnectBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if err := pool.WriteAt(0, []byte("survives")); err != nil {
		t.Fatal(err)
	}

	// Sever one queue pair's connection out from under the pool. Reads
	// are idempotent and must succeed via retry on the sibling.
	pool.slots[0].mu.Lock()
	dead := pool.slots[0].host
	pool.slots[0].mu.Unlock()
	dead.conn.Close()
	for i := 0; i < 20; i++ {
		got, err := pool.ReadAt(0, 8)
		if err != nil {
			t.Fatalf("read %d failed despite healthy sibling: %v", i, err)
		}
		if string(got) != "survives" {
			t.Fatalf("read %d = %q", i, got)
		}
	}

	// The dead queue pair is re-dialed and re-registered, not poisoned.
	deadline := time.Now().Add(5 * time.Second)
	for {
		healthy, reconnects := 0, uint64(0)
		for _, st := range pool.Snapshot() {
			if st.Healthy {
				healthy++
			}
			reconnects += st.Reconnects
		}
		if healthy == 2 && reconnects >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue pair never reconnected: %+v", pool.Snapshot())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestPoolReconnectAfterTargetRestart(t *testing.T) {
	tgt := NewTarget()
	if err := tgt.AddNamespace(1, NewMemNamespace(model.MB)); err != nil {
		t.Fatal(err)
	}
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool, err := DialPool(addr, 1, PoolConfig{
		QueuePairs:       2,
		CommandTimeout:   500 * time.Millisecond,
		RetryBackoff:     time.Millisecond,
		ReconnectBackoff: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if err := pool.WriteAt(0, []byte("before-restart")); err != nil {
		t.Fatal(err)
	}

	// Kill the target; the pool must report errors, not hang.
	tgt.Close()
	if err := pool.WriteAt(0, []byte("during-outage")); err == nil {
		t.Fatal("write succeeded against a dead target")
	}

	// Restart a fresh target on the same address and namespace.
	tgt2 := NewTarget()
	if err := tgt2.AddNamespace(1, NewMemNamespace(model.MB)); err != nil {
		t.Fatal(err)
	}
	var listenErr error
	for i := 0; i < 100; i++ {
		if _, listenErr = tgt2.Listen(addr); listenErr == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if listenErr != nil {
		t.Fatalf("restart listen: %v", listenErr)
	}
	defer tgt2.Close()

	// The pool re-CONNECTs in the background and service resumes.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := pool.WriteAt(0, []byte("after-restart")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never recovered after target restart: %+v", pool.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, err := pool.ReadAt(0, 13)
	if err != nil || string(got) != "after-restart" {
		t.Fatalf("read after recovery = %q, %v", got, err)
	}
	var reconnects uint64
	for _, st := range pool.Snapshot() {
		reconnects += st.Reconnects
	}
	if reconnects == 0 {
		t.Error("recovery happened without any recorded reconnect")
	}
}

// stalledTarget acks CONNECT and then swallows every further command
// without completing it.
func stalledTarget(t *testing.T, size int64) string {
	return fakeTarget(t, func(c net.Conn) {
		defer c.Close()
		br := bufio.NewReader(c)
		cmd, err := ReadCommand(br)
		if err != nil || cmd.Opcode != OpConnect {
			return
		}
		WriteResponse(c, &Response{CID: cmd.CID, Status: StatusOK, Value: uint64(size)})
		for {
			if _, err := ReadCommand(br); err != nil {
				return
			}
		}
	})
}

func TestPoolCommandTimeout(t *testing.T) {
	addr := stalledTarget(t, model.MB)
	pool, err := DialPool(addr, 1, PoolConfig{
		QueuePairs:     2,
		CommandTimeout: 30 * time.Millisecond,
		MaxRetries:     1,
		RetryBackoff:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	start := time.Now()
	_, err = pool.ReadAt(0, 16)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("read against stalled target: %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
	// Timeouts abandon the command but keep the queue pairs: both must
	// still be connected (the target is stalled, not dead).
	for _, st := range pool.Snapshot() {
		if !st.Healthy {
			t.Errorf("queue pair %d marked dead by a timeout", st.ID)
		}
	}
}

func TestPoolClosedErrors(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: model.MB})
	pool, err := DialPool(addr, 1, PoolConfig{QueuePairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pool.WriteAt(0, []byte("x")); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("write after close: %v, want ErrPoolClosed", err)
	}
	if err := pool.Flush(); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("flush after close: %v, want ErrPoolClosed", err)
	}
	if err := pool.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// TestBatchingPoolFillFirst pins the placement policy split: a
// batching pool concentrates submissions on the lowest-indexed queue
// pair with room (so overlapping submissions meet in one batcher) and
// spills only at the batch command budget, while an unbatched pool
// keeps rotating its cursor across idle queue pairs.
func TestBatchingPoolFillFirst(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: model.MB})
	pool, err := DialPool(addr, 1, PoolConfig{
		QueuePairs: 4,
		Batch:      BatchConfig{Enabled: true, MaxCommands: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for i := 0; i < 8; i++ {
		s, _, err := pool.acquire()
		if err != nil {
			t.Fatal(err)
		}
		if s.id != 0 {
			t.Fatalf("idle batching pool acquired qp %d, want 0 (fill-first)", s.id)
		}
	}
	// Push queue pair 0 to the batch command budget: acquisition must
	// spill to queue pair 1.
	h0 := pool.slots[0].host
	h0.inflightN.Add(4)
	s, _, err := pool.acquire()
	h0.inflightN.Add(-4)
	if err != nil {
		t.Fatal(err)
	}
	if s.id != 1 {
		t.Fatalf("full qp 0 spilled to qp %d, want 1", s.id)
	}

	plain, err := DialPool(addr, 1, PoolConfig{QueuePairs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	a, _, err := plain.acquire()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := plain.acquire()
	if err != nil {
		t.Fatal(err)
	}
	if a.id == b.id {
		t.Fatalf("unbatched pool acquired qp %d twice in a row; cursor should rotate", a.id)
	}
}

func TestPoolAdminLifecycle(t *testing.T) {
	tgt := NewTargetWithCapacity(16 * model.MB)
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	// NSID 0: an admin pool, every queue pair unbound.
	pool, err := DialPool(addr, 0, PoolConfig{QueuePairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	nsid, err := pool.CreateNamespace(4 * model.MB)
	if err != nil {
		t.Fatal(err)
	}
	list, err := pool.ListNamespaces()
	if err != nil || len(list) != 1 || list[0].NSID != nsid {
		t.Fatalf("ListNamespaces = %+v, %v", list, err)
	}
	if err := pool.DeleteNamespace(nsid); err != nil {
		t.Fatal(err)
	}
}

// benchPool spins up a loopback target plus pool and drives concurrent
// small writes through it, reporting MB/s. Shared by the batched and
// unbatched dimensions of BenchmarkHostPool.
func benchPool(b *testing.B, payloadSize int64, deviceLatency time.Duration, cfg PoolConfig) {
	b.Helper()
	tgt := NewTarget()
	if err := tgt.AddNamespace(1, NewMemNamespaceWithLatency(256*model.MB, deviceLatency)); err != nil {
		b.Fatal(err)
	}
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	pool, err := DialPool(addr, 1, cfg)
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xCF}, int(payloadSize))
	var slot uint64
	b.SetBytes(payloadSize)
	b.SetParallelism(64)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		off := int64(atomic.AddUint64(&slot, 1)%1024) * payloadSize
		for pb.Next() {
			if err := pool.WriteAt(off, payload); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	pool.Close()
	tgt.Close()
}

// BenchmarkHostPool measures aggregate small-command (1KB) write
// throughput across two dimensions: queue pair count and capsule
// batching. Small commands with no modeled device latency put the
// per-capsule wire cost — one write syscall per command — in the
// denominator, which is precisely what batching amortizes: concurrent
// submitters coalesce into one vectored writev per flush. The qp
// dimension is the original pool claim (independent queue pairs lift
// the single-connection head-of-line bottleneck, §III Fig. 4); the
// batch dimension is the new one (the regression gate compares
// batch=on against batch=off at equal qp, expecting >=1.5x at qp>=4
// for <=4KB commands; scripts/bench.sh checks it).
func BenchmarkHostPool(b *testing.B) {
	const payloadSize = 512
	for _, qps := range []int{1, 2, 4, 8} {
		for _, batched := range []bool{false, true} {
			b.Run(fmt.Sprintf("qp=%d/batch=%v", qps, batched), func(b *testing.B) {
				cfg := PoolConfig{QueuePairs: qps}
				if batched {
					cfg.Batch = BatchConfig{Enabled: true, MergeWrites: true}
				}
				benchPool(b, payloadSize, 0, cfg)
			})
		}
	}
}

// BenchmarkHostPoolDeviceBound preserves the original device-bound
// configuration (16KB commands, ~20µs modeled SSD program time): here
// throughput scales with queue pairs because service time overlaps
// across connections, and batching is expected to be roughly neutral —
// the device, not the wire, is the bottleneck.
func BenchmarkHostPoolDeviceBound(b *testing.B) {
	const payloadSize = 16 * 1024
	const deviceLatency = 20 * time.Microsecond
	for _, qps := range []int{1, 4} {
		for _, batched := range []bool{false, true} {
			b.Run(fmt.Sprintf("qp=%d/batch=%v", qps, batched), func(b *testing.B) {
				cfg := PoolConfig{QueuePairs: qps}
				if batched {
					cfg.Batch = BatchConfig{Enabled: true, MergeWrites: true}
				}
				benchPool(b, payloadSize, deviceLatency, cfg)
			})
		}
	}
}

// BenchmarkStripedPlane measures one rank's large-transfer bandwidth
// through a StripedPlane of 1, 2, and 4 loopback targets (width 1 is
// the single-target baseline: spans coalesce to one command). Striping
// wins by driving N sockets — and N target-side service queues — at
// once for a single logical write, the paper's aggregate-bandwidth
// claim (§IV, Fig. 7).
func BenchmarkStripedPlane(b *testing.B) {
	const unit = 64 * 1024
	const opSize = 1 * model.MB
	const childTotal = 64 * model.MB
	const deviceLatency = 20 * time.Microsecond
	// The paper's striping win needs the paper's regime: the device,
	// not the fabric, is the bottleneck (NVMe ~2.2 GB/s behind a
	// ~12.5 GB/s NIC). A single-core TCP loopback moves roughly half a
	// GB/s, so the modeled device bandwidth is scaled down with it to
	// keep the same device:fabric ratio — each target then charges a
	// per-byte program time, a one-target plane pays it serially, and a
	// striped plane overlaps the per-target shares. A flat per-command
	// latency alone models the split as free and hides exactly that
	// effect.
	const deviceBW = 400 * model.MB
	for _, targets := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("targets=%d", targets), func(b *testing.B) {
			children := make([]plane.Plane, targets)
			var cleanups []func()
			for i := range children {
				tgt := NewTarget()
				if err := tgt.AddNamespace(1, NewMemNamespaceWithModel(childTotal/int64(targets), deviceLatency, deviceBW)); err != nil {
					b.Fatal(err)
				}
				addr, err := tgt.Listen("127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				pool, err := DialPool(addr, 1, PoolConfig{
					QueuePairs: 2,
					Batch:      BatchConfig{Enabled: true, MergeWrites: true},
				})
				if err != nil {
					b.Fatal(err)
				}
				tp, err := NewTCPPlane(pool, 0, childTotal/int64(targets))
				if err != nil {
					b.Fatal(err)
				}
				children[i] = tp
				cleanups = append(cleanups, func() { pool.Close(); tgt.Close() })
			}
			sp, err := NewStripedPlane(children, unit)
			if err != nil {
				b.Fatal(err)
			}
			payload := bytes.Repeat([]byte{0xBD}, int(opSize))
			ops := sp.Size() / opSize
			b.SetBytes(opSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (int64(i) % ops) * opSize
				if err := sp.Write(nil, off, opSize, payload, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			for _, c := range cleanups {
				c()
			}
		})
	}
}

// BenchmarkHostPolled measures the busy-poll reap knob on a single
// synchronous submitter — the latency-bound shape polling exists for:
// with spins enabled the waiter reaps its completion without parking,
// trading CPU for the scheduler round trip. On a single-core box the
// spin competes with the read loop for the same CPU, so the win is
// modest-to-negative there; the benchmark records whatever is true for
// the machine (see MetricQPPollHits / MetricQPPollParks).
func BenchmarkHostPolled(b *testing.B) {
	const payloadSize = 512
	for _, poll := range []bool{false, true} {
		b.Run(fmt.Sprintf("poll=%v", poll), func(b *testing.B) {
			tgt := NewTarget()
			if err := tgt.AddNamespace(1, NewMemNamespace(64*model.MB)); err != nil {
				b.Fatal(err)
			}
			addr, err := tgt.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			h, err := DialConfig(addr, 1, HostConfig{BusyPoll: poll})
			if err != nil {
				b.Fatal(err)
			}
			payload := bytes.Repeat([]byte{0xE1}, payloadSize)
			b.SetBytes(payloadSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := h.WriteAt(int64(i%1024)*payloadSize, payload); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			h.Close()
			tgt.Close()
		})
	}
}

// TestQPBiasShiftsTraffic pins the health-engine integration contract:
// an avoided queue pair stops receiving new commands while its siblings
// absorb the load, and clearing the bias restores sharing.
func TestQPBiasShiftsTraffic(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: 16 * model.MB})
	p, err := DialPool(addr, 1, PoolConfig{QueuePairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	perQP := func() []uint64 {
		snaps := p.Snapshot()
		out := make([]uint64, len(snaps))
		for i, s := range snaps {
			out[i] = s.Commands
		}
		return out
	}
	run := func(n int) {
		buf := []byte("bias probe payload")
		for i := 0; i < n; i++ {
			if err := p.WriteAt(int64(i%64)*512, buf); err != nil {
				t.Fatal(err)
			}
		}
	}

	p.SetQPBias(1, BiasAvoid)
	if got := p.QPBias(1); got != BiasAvoid {
		t.Fatalf("QPBias(1) = %v, want avoid", got)
	}
	before := perQP()
	run(200)
	after := perQP()
	if d := after[1] - before[1]; d != 0 {
		t.Fatalf("avoided qp 1 received %d commands, want 0", d)
	}
	if d := after[0] - before[0]; d < 200 {
		t.Fatalf("qp 0 received %d commands, want >= 200", d)
	}

	// Clearing the bias lets qp 1 compete again.
	p.SetQPBias(1, BiasNone)
	before = perQP()
	run(200)
	after = perQP()
	if d := after[1] - before[1]; d == 0 {
		t.Fatal("qp 1 received no traffic after bias cleared")
	}

	// Soft bias only dampens: with a single serialized submitter every
	// sibling is idle at selection time, so the handicapped pair never
	// wins, but it must still be eligible (picked when others are deep).
	p.SetQPBias(1, BiasSoft)
	before = perQP()
	run(100)
	after = perQP()
	if d := after[0] - before[0]; d < 100 {
		t.Fatalf("soft bias: qp 0 received %d of 100 serialized commands", d)
	}
}
