package nvmeof

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/model"
)

// fakeTarget starts a raw listener whose connections are handled by fn,
// for tests that need a misbehaving or stalled target.
func fakeTarget(t *testing.T, fn func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go fn(c)
		}
	}()
	return ln.Addr().String()
}

func TestPoolWriteReadAcrossQueuePairs(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: 64 * model.MB})
	pool, err := DialPool(addr, 1, PoolConfig{QueuePairs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.NamespaceSize() != 64*model.MB {
		t.Errorf("NamespaceSize = %d", pool.NamespaceSize())
	}
	if pool.QueuePairs() != 4 {
		t.Errorf("QueuePairs = %d", pool.QueuePairs())
	}

	const workers = 8
	const writes = 32
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			base := int64(i) * 4 * model.MB
			for j := 0; j < writes; j++ {
				payload := []byte(fmt.Sprintf("worker%02d-write%03d", i, j))
				off := base + int64(j)*64
				if err := pool.WriteAt(off, payload); err != nil {
					errs[i] = err
					return
				}
				got, err := pool.ReadAt(off, int64(len(payload)))
				if err != nil {
					errs[i] = err
					return
				}
				if !bytes.Equal(got, payload) {
					errs[i] = fmt.Errorf("worker %d write %d mismatch", i, j)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	if size, err := pool.Identify(); err != nil || size != 64*model.MB {
		t.Errorf("Identify = %d, %v", size, err)
	}

	// The load must actually shard: more than one queue pair carried
	// commands.
	used := 0
	var total uint64
	for _, st := range pool.Snapshot() {
		if st.Commands > 0 {
			used++
		}
		total += st.Commands
		if !st.Healthy {
			t.Errorf("queue pair %d unhealthy after clean run", st.ID)
		}
	}
	if used < 2 {
		t.Errorf("only %d of 4 queue pairs carried commands", used)
	}
	// Every round trip counts, including each queue pair's CONNECT at
	// dial and its FLUSH at the barrier.
	if want := uint64(workers*writes*2 + 4 + 4 + 1); total != want {
		t.Errorf("pool issued %d commands, want %d", total, want)
	}
}

func TestPoolRetryAfterQueuePairFailure(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: model.MB})
	pool, err := DialPool(addr, 1, PoolConfig{
		QueuePairs:       2,
		MaxRetries:       3,
		RetryBackoff:     time.Millisecond,
		ReconnectBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if err := pool.WriteAt(0, []byte("survives")); err != nil {
		t.Fatal(err)
	}

	// Sever one queue pair's connection out from under the pool. Reads
	// are idempotent and must succeed via retry on the sibling.
	pool.slots[0].mu.Lock()
	dead := pool.slots[0].host
	pool.slots[0].mu.Unlock()
	dead.conn.Close()
	for i := 0; i < 20; i++ {
		got, err := pool.ReadAt(0, 8)
		if err != nil {
			t.Fatalf("read %d failed despite healthy sibling: %v", i, err)
		}
		if string(got) != "survives" {
			t.Fatalf("read %d = %q", i, got)
		}
	}

	// The dead queue pair is re-dialed and re-registered, not poisoned.
	deadline := time.Now().Add(5 * time.Second)
	for {
		healthy, reconnects := 0, uint64(0)
		for _, st := range pool.Snapshot() {
			if st.Healthy {
				healthy++
			}
			reconnects += st.Reconnects
		}
		if healthy == 2 && reconnects >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue pair never reconnected: %+v", pool.Snapshot())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestPoolReconnectAfterTargetRestart(t *testing.T) {
	tgt := NewTarget()
	if err := tgt.AddNamespace(1, NewMemNamespace(model.MB)); err != nil {
		t.Fatal(err)
	}
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool, err := DialPool(addr, 1, PoolConfig{
		QueuePairs:       2,
		CommandTimeout:   500 * time.Millisecond,
		RetryBackoff:     time.Millisecond,
		ReconnectBackoff: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if err := pool.WriteAt(0, []byte("before-restart")); err != nil {
		t.Fatal(err)
	}

	// Kill the target; the pool must report errors, not hang.
	tgt.Close()
	if err := pool.WriteAt(0, []byte("during-outage")); err == nil {
		t.Fatal("write succeeded against a dead target")
	}

	// Restart a fresh target on the same address and namespace.
	tgt2 := NewTarget()
	if err := tgt2.AddNamespace(1, NewMemNamespace(model.MB)); err != nil {
		t.Fatal(err)
	}
	var listenErr error
	for i := 0; i < 100; i++ {
		if _, listenErr = tgt2.Listen(addr); listenErr == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if listenErr != nil {
		t.Fatalf("restart listen: %v", listenErr)
	}
	defer tgt2.Close()

	// The pool re-CONNECTs in the background and service resumes.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := pool.WriteAt(0, []byte("after-restart")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never recovered after target restart: %+v", pool.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, err := pool.ReadAt(0, 13)
	if err != nil || string(got) != "after-restart" {
		t.Fatalf("read after recovery = %q, %v", got, err)
	}
	var reconnects uint64
	for _, st := range pool.Snapshot() {
		reconnects += st.Reconnects
	}
	if reconnects == 0 {
		t.Error("recovery happened without any recorded reconnect")
	}
}

// stalledTarget acks CONNECT and then swallows every further command
// without completing it.
func stalledTarget(t *testing.T, size int64) string {
	return fakeTarget(t, func(c net.Conn) {
		defer c.Close()
		br := bufio.NewReader(c)
		cmd, err := ReadCommand(br)
		if err != nil || cmd.Opcode != OpConnect {
			return
		}
		WriteResponse(c, &Response{CID: cmd.CID, Status: StatusOK, Value: uint64(size)})
		for {
			if _, err := ReadCommand(br); err != nil {
				return
			}
		}
	})
}

func TestPoolCommandTimeout(t *testing.T) {
	addr := stalledTarget(t, model.MB)
	pool, err := DialPool(addr, 1, PoolConfig{
		QueuePairs:     2,
		CommandTimeout: 30 * time.Millisecond,
		MaxRetries:     1,
		RetryBackoff:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	start := time.Now()
	_, err = pool.ReadAt(0, 16)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("read against stalled target: %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
	// Timeouts abandon the command but keep the queue pairs: both must
	// still be connected (the target is stalled, not dead).
	for _, st := range pool.Snapshot() {
		if !st.Healthy {
			t.Errorf("queue pair %d marked dead by a timeout", st.ID)
		}
	}
}

func TestPoolClosedErrors(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: model.MB})
	pool, err := DialPool(addr, 1, PoolConfig{QueuePairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pool.WriteAt(0, []byte("x")); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("write after close: %v, want ErrPoolClosed", err)
	}
	if err := pool.Flush(); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("flush after close: %v, want ErrPoolClosed", err)
	}
	if err := pool.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestPoolAdminLifecycle(t *testing.T) {
	tgt := NewTargetWithCapacity(16 * model.MB)
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	// NSID 0: an admin pool, every queue pair unbound.
	pool, err := DialPool(addr, 0, PoolConfig{QueuePairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	nsid, err := pool.CreateNamespace(4 * model.MB)
	if err != nil {
		t.Fatal(err)
	}
	list, err := pool.ListNamespaces()
	if err != nil || len(list) != 1 || list[0].NSID != nsid {
		t.Fatalf("ListNamespaces = %+v, %v", list, err)
	}
	if err := pool.DeleteNamespace(nsid); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkHostPool measures aggregate write throughput versus queue
// pair count on a loopback target: the pool's point is that independent
// queue pairs lift the single-connection head-of-line bottleneck. The
// namespace models the paper's SSD service time (~20µs per command) —
// a single queue pair serializes it command after command, while a
// pool overlaps it, which is exactly why the paper scales initiators
// by queue pairs (§III, Fig. 4).
func BenchmarkHostPool(b *testing.B) {
	const payloadSize = 16 * 1024
	const deviceLatency = 20 * time.Microsecond
	for _, qps := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("qp=%d", qps), func(b *testing.B) {
			tgt := NewTarget()
			if err := tgt.AddNamespace(1, NewMemNamespaceWithLatency(256*model.MB, deviceLatency)); err != nil {
				b.Fatal(err)
			}
			addr, err := tgt.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			pool, err := DialPool(addr, 1, PoolConfig{QueuePairs: qps})
			if err != nil {
				b.Fatal(err)
			}
			payload := bytes.Repeat([]byte{0xCF}, payloadSize)
			var slot uint64
			b.SetBytes(payloadSize)
			b.SetParallelism(4)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				off := int64(atomic.AddUint64(&slot, 1)%1024) * payloadSize
				for pb.Next() {
					if err := pool.WriteAt(off, payload); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			pool.Close()
			tgt.Close()
		})
	}
}
