package nvmeof

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/sched"
)

func newGateTestPool(t *testing.T, cfg PoolConfig) *HostPool {
	t.Helper()
	tgt := NewTarget()
	if err := tgt.AddNamespace(1, NewMemNamespace(model.MB)); err != nil {
		t.Fatal(err)
	}
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tgt.Close() })
	pool, err := DialPool(addr, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pool.Close() })
	return pool
}

// A gated pool works end to end: commands pass through the EDF gate,
// grants are counted, and data round-trips intact.
func TestPoolGateComposes(t *testing.T) {
	gate := sched.NewEDF(sched.EDFConfig{Capacity: 2})
	pool := newGateTestPool(t, PoolConfig{
		QueuePairs:     2,
		CommandTimeout: time.Second,
		Gate:           gate,
		GateTenant:     "tenant-a",
	})

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			data := []byte(fmt.Sprintf("chunk-%02d", i))
			off := int64(i) * 64
			if err := pool.WriteAt(off, data); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			got, err := pool.ReadAt(off, int64(len(data)))
			if err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
			if string(got) != string(data) {
				t.Errorf("read %d: got %q want %q", i, got, data)
			}
		}()
	}
	wg.Wait()

	st := gate.Stats()
	if st.Granted < 16 {
		t.Fatalf("gate saw %d grants, want >= 16 (every command gated)", st.Granted)
	}
	if st.InFlight != 0 || st.Waiting != 0 {
		t.Fatalf("gate not drained after pool work: %+v", st)
	}
}

// Typed gate errors surface to the pool caller unwrapped: a shed
// command reports sched.ErrShed via errors.Is, immediately, without
// touching the wire.
func TestPoolGateShedSurfacesTyped(t *testing.T) {
	gate := sched.NewEDF(sched.EDFConfig{Capacity: 1, MaxWaiters: 1})
	pool := newGateTestPool(t, PoolConfig{
		QueuePairs:     1,
		CommandTimeout: 2 * time.Second,
		Gate:           gate,
	})

	// Occupy the only slot and the only queue position directly.
	release, err := gate.Acquire("other", time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	parked := make(chan struct{})
	go func() {
		rel, err := gate.Acquire("other", time.Time{})
		if err == nil {
			rel()
		}
		close(parked)
	}()
	for gate.Waiting() < 1 {
		time.Sleep(100 * time.Microsecond)
	}

	start := time.Now()
	err = pool.WriteAt(0, []byte("shed me"))
	if !errors.Is(err, sched.ErrShed) {
		t.Fatalf("got %v, want sched.ErrShed", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("shed took %v; backpressure must be immediate", d)
	}
	// Reads and vectored writes hit the same gate.
	if _, err := pool.ReadAt(0, 8); !errors.Is(err, sched.ErrShed) {
		t.Fatalf("read: got %v, want sched.ErrShed", err)
	}
	if err := pool.WriteAtV(0, [][]byte{[]byte("a"), []byte("b")}); !errors.Is(err, sched.ErrShed) {
		t.Fatalf("writev: got %v, want sched.ErrShed", err)
	}

	release()
	<-parked
	if err := pool.WriteAt(0, []byte("now admitted")); err != nil {
		t.Fatalf("write after gate drained: %v", err)
	}
}

// A queued command whose deadline passes before a slot frees reports
// sched.ErrLate — the pool never hangs past its own CommandTimeout
// waiting on the gate.
func TestPoolGateLateSurfacesTyped(t *testing.T) {
	gate := sched.NewEDF(sched.EDFConfig{Capacity: 1, MaxWaiters: 8})
	pool := newGateTestPool(t, PoolConfig{
		QueuePairs:     1,
		CommandTimeout: 50 * time.Millisecond,
		Gate:           gate,
	})

	release, err := gate.Acquire("hog", time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	if err := pool.WriteAt(0, []byte("too late")); !errors.Is(err, sched.ErrLate) {
		t.Fatalf("got %v, want sched.ErrLate", err)
	}
}
