//go:build !race

package nvmeof

// raceEnabled reports whether the race detector is compiled in. See
// race_on.go.
const raceEnabled = false
