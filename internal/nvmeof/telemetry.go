package nvmeof

import (
	"strconv"
	"time"

	"github.com/nvme-cr/nvmecr/internal/telemetry"
)

// Metric names exported by this package. Initiator-side series are
// labeled by queue-pair slot ("qp"); target-side totals are unlabeled
// and per-connection series are labeled by the accepted queue pair id.
const (
	MetricQPCommands   = "nvmecr_qp_commands_total"
	MetricQPErrors     = "nvmecr_qp_errors_total"
	MetricQPRetries    = "nvmecr_qp_retries_total"
	MetricQPReconnects = "nvmecr_qp_reconnects_total"
	MetricQPBytesOut   = "nvmecr_qp_bytes_out_total"
	MetricQPBytesIn    = "nvmecr_qp_bytes_in_total"
	MetricQPLatency    = "nvmecr_qp_command_latency_seconds"

	// Per-phase latency histograms, recorded only for traced commands
	// (the phases come back in the response capsule's extension).
	MetricQPPhaseWire    = "nvmecr_qp_phase_wire_seconds"
	MetricQPPhaseQueue   = "nvmecr_qp_phase_queue_seconds"
	MetricQPPhaseService = "nvmecr_qp_phase_service_seconds"

	// Batcher series (only populated on queue pairs with batching
	// enabled): flushes are vectored wire writes, merged counts WRITEs
	// absorbed into a predecessor's capsule, and the commands/bytes
	// histograms record each flush's shape (count buckets, not seconds).
	MetricQPBatchFlushes  = "nvmecr_qp_batch_flushes_total"
	MetricQPBatchMerged   = "nvmecr_qp_batch_merged_total"
	MetricQPBatchCommands = "nvmecr_qp_batch_commands"
	MetricQPBatchBytes    = "nvmecr_qp_batch_bytes"
	MetricQPBatchLatency  = "nvmecr_qp_batch_flush_seconds"

	// Polled-path series: ring occupancy is the queue pair's in-flight
	// slot count (a gauge updated at register/complete), and the
	// poll-vs-park counters split completion waits between busy-poll
	// reaps and scheduler parks (only populated with BusyPoll on).
	MetricQPRingOccupancy = "nvmecr_qp_ring_occupancy"
	MetricQPPollHits      = "nvmecr_qp_poll_hits_total"
	MetricQPPollParks     = "nvmecr_qp_poll_parks_total"

	MetricPoolQueuePairs = "nvmecr_pool_queue_pairs"

	MetricTargetCommands = "nvmecr_target_commands_total"
	MetricTargetErrors   = "nvmecr_target_errors_total"
	MetricTargetBytesIn  = "nvmecr_target_bytes_in_total"
	MetricTargetBytesOut = "nvmecr_target_bytes_out_total"
	MetricTargetLatency  = "nvmecr_target_command_latency_seconds"

	MetricTargetQPCommands = "nvmecr_target_qp_commands_total"
	MetricTargetQPErrors   = "nvmecr_target_qp_errors_total"
	MetricTargetQPBytesIn  = "nvmecr_target_qp_bytes_in_total"
	MetricTargetQPBytesOut = "nvmecr_target_qp_bytes_out_total"
)

// qpTelemetry caches one queue pair's registry instruments so the
// per-command path never takes the registry lock. The zero value is a
// valid no-op set (every instrument nil).
type qpTelemetry struct {
	commands   *telemetry.Counter
	errors     *telemetry.Counter
	retries    *telemetry.Counter
	reconnects *telemetry.Counter
	bytesOut   *telemetry.Counter
	bytesIn    *telemetry.Counter
	latency    *telemetry.Histogram

	phaseWire    *telemetry.Histogram
	phaseQueue   *telemetry.Histogram
	phaseService *telemetry.Histogram

	batchFlushes  *telemetry.Counter
	batchMerged   *telemetry.Counter
	batchCmds     *telemetry.Histogram
	batchBytes    *telemetry.Histogram
	batchFlushLat *telemetry.Histogram

	ringOcc   *telemetry.Gauge
	pollHits  *telemetry.Counter
	pollParks *telemetry.Counter
}

// Batch-shape histogram buckets: capsules per flush tops out at the
// MaxCommands default (64), bytes per flush at the MaxBytes default
// (256 KiB). Explicit because the registry default buckets are
// latency-oriented.
var (
	batchCmdBuckets  = []float64{1, 2, 4, 8, 16, 32, 64, 128}
	batchByteBuckets = []float64{512, 4096, 16384, 65536, 262144, 1048576, 8388608}
)

// newQPTelemetry binds (or re-binds, after a reconnect) the instruments
// for initiator queue-pair slot qp. Get-or-create semantics mean a
// replacement Host dialed into the same slot continues the same series.
func newQPTelemetry(reg *telemetry.Registry, qp int) qpTelemetry {
	l := telemetry.Labels{"qp": strconv.Itoa(qp)}
	return qpTelemetry{
		commands:   reg.Counter(MetricQPCommands, l),
		errors:     reg.Counter(MetricQPErrors, l),
		retries:    reg.Counter(MetricQPRetries, l),
		reconnects: reg.Counter(MetricQPReconnects, l),
		bytesOut:   reg.Counter(MetricQPBytesOut, l),
		bytesIn:    reg.Counter(MetricQPBytesIn, l),
		latency:    reg.Histogram(MetricQPLatency, nil, l),

		phaseWire:    reg.Histogram(MetricQPPhaseWire, nil, l),
		phaseQueue:   reg.Histogram(MetricQPPhaseQueue, nil, l),
		phaseService: reg.Histogram(MetricQPPhaseService, nil, l),

		batchFlushes:  reg.Counter(MetricQPBatchFlushes, l),
		batchMerged:   reg.Counter(MetricQPBatchMerged, l),
		batchCmds:     reg.Histogram(MetricQPBatchCommands, batchCmdBuckets, l),
		batchBytes:    reg.Histogram(MetricQPBatchBytes, batchByteBuckets, l),
		batchFlushLat: reg.Histogram(MetricQPBatchLatency, nil, l),

		ringOcc:   reg.Gauge(MetricQPRingOccupancy, l),
		pollHits:  reg.Counter(MetricQPPollHits, l),
		pollParks: reg.Counter(MetricQPPollParks, l),
	}
}

// observeBatch records one vectored flush: n capsules, wire bytes on
// the wire, dur spent in the write syscall(s).
func (q *qpTelemetry) observeBatch(n, wire int, dur time.Duration) {
	q.batchFlushes.Inc()
	q.batchCmds.Observe(float64(n))
	q.batchBytes.Observe(float64(wire))
	q.batchFlushLat.ObserveDuration(dur)
}

// hostWirePhase is the fabric wire time of one traced round trip: what
// the target cannot see — the host-observed round trip minus the
// target's queueing and service. It folds in both wire directions plus
// the capsule (de)serialization on both ends, clamped to >= 1ns so the
// three phases are each positive and sum to at most the round trip.
func hostWirePhase(rtt time.Duration, p *PhaseTimings) time.Duration {
	wire := rtt - time.Duration(p.QueueNS) - time.Duration(p.ServiceNS)
	if wire < 1 {
		wire = 1
	}
	return wire
}

// observe records one completed round trip. It takes the payload size
// and the response by value so the hot path's stack-allocated state
// never escapes into the heap just to be counted.
func (q *qpTelemetry) observe(payload int, resp Response, err error, elapsed time.Duration) {
	q.commands.Inc()
	if err != nil {
		q.errors.Inc()
		return
	}
	q.latency.ObserveDuration(elapsed)
	if payload > 0 {
		q.bytesOut.Add(uint64(payload))
	}
	if resp.Data != nil {
		q.bytesIn.Add(uint64(len(resp.Data)))
	}
	if resp.Phases != nil {
		// Same decomposition the nvmeof.cmd span carries: the target's
		// queue and service phases, and wire as the remainder of the
		// host-observed round trip.
		q.phaseQueue.ObserveDuration(time.Duration(resp.Phases.QueueNS))
		q.phaseService.ObserveDuration(time.Duration(resp.Phases.ServiceNS))
		q.phaseWire.ObserveDuration(hostWirePhase(elapsed, resp.Phases))
	}
}

// snapshot renders the instruments as the unified snapshot type.
func (q *qpTelemetry) snapshot(id int, healthy bool, inflight int) telemetry.HostQPSnapshot {
	return telemetry.HostQPSnapshot{
		ID:         id,
		Healthy:    healthy,
		InFlight:   inflight,
		Commands:   q.commands.Value(),
		Errors:     q.errors.Value(),
		Retries:    q.retries.Value(),
		Reconnects: q.reconnects.Value(),
		BytesOut:   q.bytesOut.Value(),
		BytesIn:    q.bytesIn.Value(),
		Latency:    q.latency.Latency(),
	}
}
