package nvmeof

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/model"
)

// TestBufferPoolRecycle pins the pool contract: Release returns the
// buffer for reuse, and steady-state Get hands recycled buffers back
// instead of allocating.
func TestBufferPoolRecycle(t *testing.T) {
	p := NewBufferPool(4096)
	if p.BufferSize() != 4096 {
		t.Fatalf("BufferSize = %d", p.BufferSize())
	}
	a := p.Get()
	if len(a.Bytes()) != 4096 {
		t.Fatalf("buffer length %d", len(a.Bytes()))
	}
	if a.Registered() {
		t.Fatal("fresh buffer reports registered")
	}
	a.Release()
	b := p.Get()
	if a != b {
		t.Fatal("Release did not recycle the buffer")
	}
	b.Release()
}

// TestBufferReleaseWhileRegisteredPanics pins the use-after-register
// detector: releasing a buffer some in-flight submission still pins
// must panic rather than let the caller mutate bytes the transport
// still owns.
func TestBufferReleaseWhileRegisteredPanics(t *testing.T) {
	p := NewBufferPool(512)
	b := p.Get()
	b.register() // as a submission would
	if !b.Registered() {
		t.Fatal("registered buffer reports unregistered")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Release while registered did not panic")
			}
		}()
		b.Release()
	}()
	b.unregister()
	b.Release() // now legal

	func() {
		defer func() {
			if recover() == nil {
				t.Error("over-unregister did not panic")
			}
		}()
		c := p.Get()
		c.unregister()
	}()
}

// TestBufferTimeoutKeepsRegistration is the end-to-end detector test: a
// WriteAtBuffer that times out has NOT returned the buffer's bytes to
// the caller — the abandoned capsule may still be draining into the
// socket — so the buffer must still report registered and Release must
// panic. Once the stalled target finally answers, the read loop
// reclaims the abandoned slot, drops the pin, and Release succeeds.
func TestBufferTimeoutKeepsRegistration(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Answer CONNECT, then stall the WRITE until released.
		cmd, err := ReadCommand(conn)
		if err != nil || cmd.Opcode != OpConnect {
			return
		}
		WriteResponse(conn, &Response{CID: cmd.CID, Status: StatusOK})
		cmd, err = ReadCommand(conn)
		if err != nil || cmd.Opcode != OpWriteCmd {
			return
		}
		<-release
		WriteResponse(conn, &Response{CID: cmd.CID, Status: StatusOK})
	}()

	h, err := DialConfig(ln.Addr().String(), 1, HostConfig{CommandTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	pool := NewBufferPool(1024)
	buf := pool.Get()
	copy(buf.Bytes(), bytes.Repeat([]byte{0xAB}, 1024))
	if err := h.WriteAtBuffer(0, buf); err == nil {
		t.Fatal("stalled write did not time out")
	}
	if !buf.Registered() {
		t.Fatal("timed-out buffer dropped its registration while the capsule may still be in flight")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Release after timeout did not panic while still registered")
			}
		}()
		buf.Release()
	}()

	close(release) // late completion: the read loop reclaims the slot
	deadline := time.After(5 * time.Second)
	for buf.Registered() {
		select {
		case <-deadline:
			t.Fatal("registration never dropped after the late completion")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	buf.Release()
	<-done
}

// TestBufferLifetimeUnderLoad is the -race lifetime test: once
// WriteAtBuffer returns successfully, the transport is provably done
// with the bytes — mutating and reusing the buffer immediately must be
// race-free even with batching, merging, and concurrent submitters in
// play. scripts/verify.sh runs this with -race; a transport goroutine
// still touching a completed buffer's bytes shows up as a data race.
func TestBufferLifetimeUnderLoad(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: 64 * model.MB})
	p, err := DialPool(addr, 1, PoolConfig{
		QueuePairs: 2,
		Batch:      BatchConfig{Enabled: true, MergeWrites: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const workers = 8
	const writes = 300
	pool := NewBufferPool(2048)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := pool.Get()
			defer buf.Release()
			for i := 0; i < writes; i++ {
				// Mutate the payload each iteration: safe exactly
				// because the previous WriteAtBuffer completed.
				for j := range buf.Bytes() {
					buf.Bytes()[j] = byte(w ^ i ^ j)
				}
				off := int64(w)*2048 + int64(i%4)*int64(workers)*2048
				if err := p.WriteAtBuffer(off, buf); err != nil {
					t.Error(err)
					return
				}
				if buf.Registered() {
					t.Error("buffer still registered after a completed write")
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
