package nvmeof

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadCommand hardens the target's capsule parser: arbitrary bytes
// from the network must never panic or over-allocate.
func FuzzReadCommand(f *testing.F) {
	var buf bytes.Buffer
	WriteCommand(&buf, &Command{Opcode: OpWriteCmd, CID: 7, NSID: 1, Offset: 4096, Data: []byte("payload")})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, wire []byte) {
		cmd, err := ReadCommand(bytes.NewReader(wire))
		if err != nil {
			return
		}
		if int64(len(cmd.Data)) > MaxDataLen {
			t.Fatalf("parser accepted %d bytes of in-capsule data", len(cmd.Data))
		}
		// A parsed command must re-encode and re-parse identically.
		var out bytes.Buffer
		if err := WriteCommand(&out, cmd); err != nil {
			t.Fatalf("re-encode of parsed command failed: %v", err)
		}
		again, err := ReadCommand(&out)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again.Opcode != cmd.Opcode || again.CID != cmd.CID || again.NSID != cmd.NSID ||
			again.Offset != cmd.Offset || again.Length != cmd.Length ||
			again.ProposeVersion != cmd.ProposeVersion || !bytes.Equal(again.Data, cmd.Data) {
			t.Fatal("command round trip diverged")
		}
	})
}

// FuzzReadCommandVersioned hardens the versioned parser: arbitrary
// bytes on a VersionTrace queue pair must never panic, the trace-ID
// extension must round-trip, and a traced capsule must be rejected —
// not misparsed — by a legacy (version-0) parser.
func FuzzReadCommandVersioned(f *testing.F) {
	// Traced WRITE with the 8-byte trace-ID extension.
	var traced bytes.Buffer
	WriteCommandV(&traced, &Command{
		Opcode: OpWriteCmd, CID: 7, NSID: 1, Offset: 4096,
		Traced: true, TraceID: 0xDEADBEEFCAFE, Data: []byte("payload"),
	}, VersionTrace)
	f.Add(traced.Bytes())
	// Untraced capsule on a v1 queue pair (extension absent).
	var plain bytes.Buffer
	WriteCommandV(&plain, &Command{Opcode: OpReadCmd, CID: 9, Length: 64}, VersionTrace)
	f.Add(plain.Bytes())
	// Truncated extension: header promises a trace ID, stream ends.
	f.Add(traced.Bytes()[:cmdHdrLen+3])
	// CONNECT carrying a proposed version.
	var connect bytes.Buffer
	WriteCommandV(&connect, &Command{Opcode: OpConnect, NSID: 1, ProposeVersion: MaxVersion}, VersionLegacy)
	f.Add(connect.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, wire []byte) {
		cmd, err := ReadCommandV(bytes.NewReader(wire), VersionTrace)
		if err != nil {
			return
		}
		if int64(len(cmd.Data)) > MaxDataLen {
			t.Fatalf("parser accepted %d bytes of in-capsule data", len(cmd.Data))
		}
		// Round trip at the negotiated version preserves everything,
		// trace ID included.
		var out bytes.Buffer
		if err := WriteCommandV(&out, cmd, VersionTrace); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		encoded := out.Bytes()
		again, err := ReadCommandV(bytes.NewReader(encoded), VersionTrace)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again.Traced != cmd.Traced || again.TraceID != cmd.TraceID ||
			again.ProposeVersion != cmd.ProposeVersion ||
			again.Opcode != cmd.Opcode || again.CID != cmd.CID || !bytes.Equal(again.Data, cmd.Data) {
			t.Fatal("versioned command round trip diverged")
		}
		// A legacy parser must reject the traced form outright: the
		// flags byte is unknown to version 0, and silently dropping the
		// extension would desynchronise the stream.
		if cmd.Traced {
			if _, err := ReadCommand(bytes.NewReader(encoded)); err == nil {
				t.Fatal("version-0 parser accepted a traced capsule")
			}
		} else {
			// Without the extension the wire format is identical.
			legacy, err := ReadCommand(bytes.NewReader(encoded))
			if err != nil {
				t.Fatalf("version-0 parse of untraced capsule failed: %v", err)
			}
			if legacy.Opcode != cmd.Opcode || legacy.CID != cmd.CID {
				t.Fatal("untraced capsule diverged across versions")
			}
		}
	})
}

// FuzzReadResponseVersioned does the same for completion capsules with
// the phase-timing extension.
func FuzzReadResponseVersioned(f *testing.F) {
	var phased bytes.Buffer
	WriteResponseV(&phased, &Response{
		CID: 3, Status: StatusOK, Value: 42,
		Phases: &PhaseTimings{WireReadNS: 100, QueueNS: 200, ServiceNS: 300, WireWriteNS: 400},
		Data:   []byte("x"),
	}, VersionTrace)
	f.Add(phased.Bytes())
	// Truncated phase extension.
	f.Add(phased.Bytes()[:rspHdrLen+7])
	var plain bytes.Buffer
	WriteResponseV(&plain, &Response{CID: 5, Status: StatusInvalidOpcode}, VersionTrace)
	f.Add(plain.Bytes())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, wire []byte) {
		resp, err := ReadResponseV(bytes.NewReader(wire), VersionTrace)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteResponseV(&out, resp, VersionTrace); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		encoded := out.Bytes()
		again, err := ReadResponseV(bytes.NewReader(encoded), VersionTrace)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again.CID != resp.CID || again.Status != resp.Status || again.Value != resp.Value ||
			!bytes.Equal(again.Data, resp.Data) {
			t.Fatal("versioned response round trip diverged")
		}
		if (again.Phases == nil) != (resp.Phases == nil) {
			t.Fatal("phase extension lost in round trip")
		}
		if resp.Phases != nil {
			if *again.Phases != *resp.Phases {
				t.Fatal("phase timings diverged")
			}
			// Legacy parsers must reject, not misparse, a phased capsule.
			if _, err := ReadResponse(bytes.NewReader(encoded)); err == nil {
				t.Fatal("version-0 parser accepted a phased capsule")
			}
		}
	})
}

// FuzzReadResponse does the same for the host's completion parser.
func FuzzReadResponse(f *testing.F) {
	var buf bytes.Buffer
	WriteResponse(&buf, &Response{CID: 3, Status: StatusOK, Value: 1 << 30, Data: []byte("x")})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xAB}, 40))
	// Regression seed: a READ completion whose declared data length (4
	// bytes) disagrees with the 64-byte READ that elicited it. The
	// parser must hand it through intact so the host's length check
	// (Host.ReadAt → ErrBadResponse) is what rejects it.
	var mismatched bytes.Buffer
	WriteResponse(&mismatched, &Response{CID: 9, Status: StatusOK, Data: []byte{1, 2, 3, 4}})
	f.Add(mismatched.Bytes())

	f.Fuzz(func(t *testing.T, wire []byte) {
		resp, err := ReadResponse(bytes.NewReader(wire))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteResponse(&out, resp); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadResponse(&out)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again.CID != resp.CID || again.Status != resp.Status || again.Value != resp.Value ||
			!bytes.Equal(again.Data, resp.Data) {
			t.Fatal("response round trip diverged")
		}
	})
}

// countingReader wraps a reader and counts bytes actually consumed, so
// the fuzzer can prove the parser never reads past a capsule's frame.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// FuzzReadBatchedCapsules hardens the target against a corrupted
// batched flush. A batch is a byte-exact concatenation of versioned
// capsules, so the target parses it with the same ReadCommandV loop as
// unbatched traffic — this fuzzer feeds it arbitrary concatenated
// streams and checks the three invariants batching leans on:
//
//  1. no panic on any input;
//  2. no over-read: each parsed capsule consumes exactly as many bytes
//     as its canonical re-encoding occupies, so a corrupt capsule can
//     never swallow the start of its successor;
//  3. no CID mis-association: re-encoding the parsed prefix and parsing
//     it again yields the same (CID, opcode, payload) sequence, i.e.
//     completions built from this parse would pair with the right
//     commands.
func FuzzReadBatchedCapsules(f *testing.F) {
	// Seed with a genuine three-capsule batch (what the host's vectored
	// flush emits), one of them traced.
	var batch bytes.Buffer
	WriteCommandV(&batch, &Command{Opcode: OpWriteCmd, CID: 11, NSID: 1, Offset: 0, Data: bytes.Repeat([]byte{0xA1}, 512)}, VersionTrace)
	WriteCommandV(&batch, &Command{Opcode: OpWriteCmd, CID: 12, NSID: 1, Offset: 512, Traced: true, TraceID: 0xBEEF, Data: bytes.Repeat([]byte{0xA2}, 512)}, VersionTrace)
	WriteCommandV(&batch, &Command{Opcode: OpFlushCmd, CID: 13, NSID: 1}, VersionTrace)
	f.Add(batch.Bytes())
	// A batch truncated mid-payload (torn vectored write).
	f.Add(batch.Bytes()[:batch.Len()-100])
	// A batch whose second header is corrupted.
	torn := append([]byte(nil), batch.Bytes()...)
	torn[cmdHdrLen+512+4] ^= 0xFF
	f.Add(torn)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x4E}, 96))

	f.Fuzz(func(t *testing.T, wire []byte) {
		cr := &countingReader{r: bytes.NewReader(wire)}
		var parsed []*Command
		for {
			before := cr.n
			cmd, err := ReadCommandV(cr, VersionTrace)
			if err != nil {
				break // corruption rejected cleanly; prefix stays valid
			}
			if int64(len(cmd.Data)) > MaxDataLen {
				t.Fatalf("capsule %d accepted %d bytes of in-capsule data", len(parsed), len(cmd.Data))
			}
			// Invariant 2: consumed bytes == canonical encoding length.
			var canon bytes.Buffer
			if err := WriteCommandV(&canon, cmd, VersionTrace); err != nil {
				t.Fatalf("re-encode of parsed capsule failed: %v", err)
			}
			if consumed := cr.n - before; consumed != int64(canon.Len()) {
				t.Fatalf("capsule %d consumed %d bytes but re-encodes to %d: parser over- or under-read",
					len(parsed), consumed, canon.Len())
			}
			parsed = append(parsed, cmd)
			if len(parsed) > 1024 {
				break // plenty; bound fuzz time on giant inputs
			}
		}
		if len(parsed) == 0 {
			return
		}
		// Invariant 3: the parsed prefix re-batches (concatenates) and
		// re-parses to the same command sequence — CIDs stay with their
		// opcodes and payloads.
		var rebatch bytes.Buffer
		for _, cmd := range parsed {
			if err := WriteCommandV(&rebatch, cmd, VersionTrace); err != nil {
				t.Fatalf("re-batching failed: %v", err)
			}
		}
		rr := bytes.NewReader(rebatch.Bytes())
		for i, want := range parsed {
			got, err := ReadCommandV(rr, VersionTrace)
			if err != nil {
				t.Fatalf("re-parse of re-batched capsule %d failed: %v", i, err)
			}
			if got.CID != want.CID || got.Opcode != want.Opcode ||
				got.Offset != want.Offset || got.Length != want.Length ||
				got.Traced != want.Traced || got.TraceID != want.TraceID ||
				!bytes.Equal(got.Data, want.Data) {
				t.Fatalf("capsule %d mis-associated after re-batching: CID %d/%d opcode %d/%d",
					i, got.CID, want.CID, got.Opcode, want.Opcode)
			}
		}
		if rr.Len() != 0 {
			t.Fatalf("%d stray bytes after re-parsing the re-batched stream", rr.Len())
		}
	})
}

// FuzzCommandStream feeds a stream of frames to the parser the way a
// queue pair would, ensuring truncation always surfaces as an error, not
// a hang or partial parse.
func FuzzCommandStream(f *testing.F) {
	var buf bytes.Buffer
	WriteCommand(&buf, &Command{Opcode: OpConnect, NSID: 1})
	WriteCommand(&buf, &Command{Opcode: OpReadCmd, Offset: 0, Length: 64})
	f.Add(buf.Bytes(), 2)
	f.Add(buf.Bytes()[:buf.Len()-3], 2)

	f.Fuzz(func(t *testing.T, wire []byte, n int) {
		r := bytes.NewReader(wire)
		for i := 0; i < n%8; i++ {
			if _, err := ReadCommand(r); err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					return
				}
				return // malformed: rejected cleanly
			}
		}
	})
}
