package nvmeof

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadCommand hardens the target's capsule parser: arbitrary bytes
// from the network must never panic or over-allocate.
func FuzzReadCommand(f *testing.F) {
	var buf bytes.Buffer
	WriteCommand(&buf, &Command{Opcode: OpWriteCmd, CID: 7, NSID: 1, Offset: 4096, Data: []byte("payload")})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, wire []byte) {
		cmd, err := ReadCommand(bytes.NewReader(wire))
		if err != nil {
			return
		}
		if int64(len(cmd.Data)) > MaxDataLen {
			t.Fatalf("parser accepted %d bytes of in-capsule data", len(cmd.Data))
		}
		// A parsed command must re-encode and re-parse identically.
		var out bytes.Buffer
		if err := WriteCommand(&out, cmd); err != nil {
			t.Fatalf("re-encode of parsed command failed: %v", err)
		}
		again, err := ReadCommand(&out)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again.Opcode != cmd.Opcode || again.CID != cmd.CID || again.NSID != cmd.NSID ||
			again.Offset != cmd.Offset || again.Length != cmd.Length || !bytes.Equal(again.Data, cmd.Data) {
			t.Fatal("command round trip diverged")
		}
	})
}

// FuzzReadResponse does the same for the host's completion parser.
func FuzzReadResponse(f *testing.F) {
	var buf bytes.Buffer
	WriteResponse(&buf, &Response{CID: 3, Status: StatusOK, Value: 1 << 30, Data: []byte("x")})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xAB}, 40))
	// Regression seed: a READ completion whose declared data length (4
	// bytes) disagrees with the 64-byte READ that elicited it. The
	// parser must hand it through intact so the host's length check
	// (Host.ReadAt → ErrBadResponse) is what rejects it.
	var mismatched bytes.Buffer
	WriteResponse(&mismatched, &Response{CID: 9, Status: StatusOK, Data: []byte{1, 2, 3, 4}})
	f.Add(mismatched.Bytes())

	f.Fuzz(func(t *testing.T, wire []byte) {
		resp, err := ReadResponse(bytes.NewReader(wire))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteResponse(&out, resp); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadResponse(&out)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again.CID != resp.CID || again.Status != resp.Status || again.Value != resp.Value ||
			!bytes.Equal(again.Data, resp.Data) {
			t.Fatal("response round trip diverged")
		}
	})
}

// FuzzCommandStream feeds a stream of frames to the parser the way a
// queue pair would, ensuring truncation always surfaces as an error, not
// a hang or partial parse.
func FuzzCommandStream(f *testing.F) {
	var buf bytes.Buffer
	WriteCommand(&buf, &Command{Opcode: OpConnect, NSID: 1})
	WriteCommand(&buf, &Command{Opcode: OpReadCmd, Offset: 0, Length: 64})
	f.Add(buf.Bytes(), 2)
	f.Add(buf.Bytes()[:buf.Len()-3], 2)

	f.Fuzz(func(t *testing.T, wire []byte, n int) {
		r := bytes.NewReader(wire)
		for i := 0; i < n%8; i++ {
			if _, err := ReadCommand(r); err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					return
				}
				return // malformed: rejected cleanly
			}
		}
	})
}
