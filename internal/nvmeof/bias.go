package nvmeof

import (
	"errors"
	"fmt"
)

// QPBias steers HostPool placement away from a queue pair without
// removing it from service. External judgment (the health engine's
// verdicts) sets it; the pool itself never changes a bias.
type QPBias int32

const (
	// BiasNone is the default: the queue pair competes normally.
	BiasNone QPBias = iota
	// BiasSoft handicaps the queue pair in depth comparisons so new
	// commands prefer its siblings, but it still takes traffic when the
	// others are loaded — the right setting for a degraded-but-working
	// pair that should drain gently.
	BiasSoft
	// BiasAvoid makes the queue pair a last resort: it is selected only
	// when no unavoided pair is usable, so a suspect or dying pair sees
	// almost no traffic while staying dialed for probes and recovery.
	BiasAvoid
)

// String names the bias for logs and JSON.
func (b QPBias) String() string {
	switch b {
	case BiasNone:
		return "none"
	case BiasSoft:
		return "soft"
	case BiasAvoid:
		return "avoid"
	default:
		return fmt.Sprintf("bias(%d)", int32(b))
	}
}

// softBiasHandicap is the depth penalty a BiasSoft queue pair carries
// in placement comparisons: it wins only against siblings that are this
// many commands deeper.
const softBiasHandicap = 16

// ErrBadQueuePair reports a queue-pair index outside the pool.
var ErrBadQueuePair = errors.New("nvmeof: no such queue pair")

// SetQPBias sets the placement bias for one queue pair. Out-of-range
// indexes are ignored (the health engine may outlive a resize).
func (p *HostPool) SetQPBias(qp int, b QPBias) {
	if qp < 0 || qp >= len(p.slots) {
		return
	}
	p.slots[qp].bias.Store(int32(b))
}

// QPBias returns the current placement bias of one queue pair.
func (p *HostPool) QPBias(qp int) QPBias {
	if qp < 0 || qp >= len(p.slots) {
		return BiasNone
	}
	return QPBias(p.slots[qp].bias.Load())
}

// QPHealthy reports whether the queue pair currently holds a live,
// non-failed transport connection.
func (p *HostPool) QPHealthy(qp int) bool {
	if qp < 0 || qp >= len(p.slots) {
		return false
	}
	s := p.slots[qp]
	s.mu.Lock()
	h := s.host
	s.mu.Unlock()
	return h != nil && h.Healthy()
}

// ProbeQP issues an IDENTIFY on exactly this queue pair — the health
// engine's active probe, confirming or refuting a suspect verdict
// without touching the pool's placement. A down slot fails immediately.
func (p *HostPool) ProbeQP(qp int) error {
	if qp < 0 || qp >= len(p.slots) {
		return ErrBadQueuePair
	}
	s := p.slots[qp]
	s.mu.Lock()
	h := s.host
	s.mu.Unlock()
	if h == nil || !h.Healthy() {
		return fmt.Errorf("nvmeof: probe qp %d: %w", qp, ErrNoQueuePairs)
	}
	_, err := h.Identify()
	return err
}
