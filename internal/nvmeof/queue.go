package nvmeof

import "github.com/nvme-cr/nvmecr/internal/telemetry"

// Queue is the canonical initiator type: the command surface shared by
// a single queue pair (Host) and a multi-queue-pair initiator
// (HostPool). Callers that only move bytes to and from a connected
// namespace — TCPPlane, the CLIs, applications — program against
// Queue; the concrete types stay exported for callers that need
// pool-specific tuning or admin commands.
type Queue interface {
	// NamespaceSize returns the connected namespace's capacity.
	NamespaceSize() int64
	// WriteAt writes data at the namespace offset.
	WriteAt(off int64, data []byte) error
	// ReadAt reads length bytes from the namespace offset.
	ReadAt(off, length int64) ([]byte, error)
	// Flush issues a durability barrier.
	Flush() error
	// Identify re-reads the namespace properties from the target.
	Identify() (int64, error)
	// Snapshot reports live per-queue-pair counters and latency
	// quantiles (one element per queue pair, ordered by slot).
	Snapshot() []telemetry.HostQPSnapshot
	// Telemetry returns the registry the initiator records into.
	Telemetry() *telemetry.Registry
	// Close tears down every queue pair.
	Close() error
}

// VectorQueue is the optional zero-copy extension of Queue: initiators
// that can submit a gather list as one WRITE capsule without staging
// the pieces into a contiguous buffer implement it. Callers type-assert
// (see TCPPlane.WriteV) and fall back to a copy when it is absent.
type VectorQueue interface {
	// WriteAtV writes the concatenation of bufs at the namespace
	// offset; each buf travels to the socket as its own iovec.
	WriteAtV(off int64, bufs [][]byte) error
}

var (
	_ Queue = (*Host)(nil)
	_ Queue = (*HostPool)(nil)

	_ VectorQueue = (*Host)(nil)
	_ VectorQueue = (*HostPool)(nil)
)
