//go:build race

package nvmeof

// raceEnabled reports whether the race detector is compiled in. Alloc
// regression tests skip under -race: the detector's shadow allocations
// make every allocs-per-op assertion meaningless.
const raceEnabled = true
