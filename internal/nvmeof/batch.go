package nvmeof

import (
	"encoding/binary"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// BatchConfig tunes a queue pair's submission batcher. The batcher
// coalesces capsules queued by concurrent submitters into a single
// vectored wire write (net.Buffers, one writev on a TCP connection), so
// the per-command syscall cost — the dominant software cost of small
// commands, the cost the paper keeps off the critical path (§IV) —
// is amortized across the batch. The wire format is unchanged: a batch
// is byte-for-byte the capsules that would have been sent singly, so
// batched initiators interoperate with every target and no version
// negotiation is involved (capsules are self-delimiting; see
// docs/batching.md).
//
// The zero value disables batching.
type BatchConfig struct {
	// Enabled turns the batcher on.
	Enabled bool
	// MaxBytes is the batch budget: a flush is cut when the pending
	// wire bytes reach it (default 256 KiB). It also bounds merged
	// WRITE payloads (never beyond MaxDataLen).
	MaxBytes int
	// MaxCommands caps the capsules per flush (default 64).
	MaxCommands int
	// MergeWrites additionally coalesces an enqueued WRITE whose range
	// begins exactly where the previous still-pending WRITE ends into
	// that command's capsule: one capsule, one target service visit,
	// both submitters completed by the shared completion. Only
	// untraced WRITEs merge (a merged capsule cannot carry two trace
	// IDs).
	MergeWrites bool
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.MaxBytes <= 0 {
		c.MaxBytes = 256 << 10
	}
	if c.MaxCommands <= 0 {
		c.MaxCommands = 64
	}
	return c
}

// batchStat is the flush-time shape of one batch, shared by every
// command it carried. The fields are atomic because a waiter reads
// them after its completion arrives, and the completion travels
// through the socket — an ordering the race detector cannot see.
type batchStat struct {
	commands atomic.Int32
	bytes    atomic.Int64
}

// pendingCmd is one encoded capsule awaiting the next vectored flush.
// It lives inside its command's hostSlot, so enqueueing allocates
// nothing: the header is rendered into the inline buffer, and payload
// slices alias the caller's buffers, which stay valid because the
// caller blocks until its completion arrives (zero-copy into writev).
// The data backing persists across slot reuse (entries are cleared at
// acquire so completed payloads are not pinned).
type pendingCmd struct {
	cid     uint16
	op      Opcode
	hdrBuf  [cmdHdrLen + traceExtLen]byte
	hdr     []byte   // hdrBuf[:n]
	data    [][]byte // payload iovecs (own + merged followers)
	payload int      // total payload bytes across data
	endOff  uint64   // WRITE: Offset + payload (merge adjacency)
	merge   bool     // untraced WRITE: candidate for payload merging
	stat    batchStat
}

func (pc *pendingCmd) wire() int { return len(pc.hdr) + pc.payload }

// batcher coalesces one queue pair's submissions into vectored writes,
// leader/follower style: the first submitter to find no flush in
// progress becomes the flusher and drains the pending queue — cutting
// batches at the configured budget — while later submitters only
// enqueue and wait for their completions. No background goroutine and
// no linger timer: a lone submitter flushes immediately (same syscall
// count as the unbatched path), and batches form exactly when
// submissions actually overlap.
//
// Lock order: batcher.mu before Host.respMu, never the reverse.
type batcher struct {
	cfg BatchConfig

	mu       sync.Mutex
	pending  []*hostSlot // slots awaiting the next flush (pc embedded)
	bytes    int
	flushing bool

	// Flusher-owned scratch, serialized by the flushing flag: the cut
	// batch is copied here so pending can compact under b.mu while the
	// vectored write runs outside it, and iov is the reusable writev
	// backing (WriteTo nils consumed entries, so neither pins
	// payloads past the flush).
	scratch []*hostSlot
	iov     net.Buffers
	stage   []byte // coalesce backing for non-TCP conns (see writeBuffers)
	coal    []byte // small-piece coalesce backing (see flushBatches)
}

// coalesceMin is the payload size below which a batched piece is copied
// into the flusher's contiguous coalesce buffer instead of riding as
// its own writev iovec. The kernel pays a per-segment cost importing
// and walking the iovec array, so a flush of many sub-4K capsules is
// substantially cheaper as a few large segments (one 512B memcpy per
// piece buys back several times its cost in writev overhead). Payloads
// of coalesceMin and above keep a dedicated iovec: for them the copy
// would cost more than the segment, and they are the zero-copy path's
// reason to exist.
const coalesceMin = 4096

// validateCommand applies WriteCommandV's rejection rules before a
// command is committed to a batch: once enqueued its header bytes are
// final, so anything WriteCommandV would refuse must be refused here.
// extra is payload carried outside c.Data (a vectored WRITE's total).
func validateCommand(c *Command, version uint16, extra int) error {
	if len(c.Data)+extra > MaxDataLen {
		return fmt.Errorf("nvmeof: in-capsule data %d exceeds limit", len(c.Data)+extra)
	}
	if c.Traced && version < VersionTrace {
		return fmt.Errorf("nvmeof: traced command on version-%d queue pair", version)
	}
	return nil
}

// encodeCommandHeader renders cmd's fixed header (plus the trace-ID
// extension when present) into a fresh slice, leaving the payload to
// ride as its own iovec. The bytes are identical to what WriteCommandV
// puts on the wire before the payload — pinned by
// TestBatchWireBytesPinned so the formats can never diverge.
func encodeCommandHeader(c *Command) []byte {
	hdr := make([]byte, cmdHdrLen+traceExtLen)
	return hdr[:encodeCommandHeaderInto(hdr, c)]
}

// encodeCommandHeaderInto renders the header into buf (which must hold
// cmdHdrLen+traceExtLen bytes) and returns the encoded length, so the
// hot path can use a pendingCmd's inline buffer with no allocation.
func encodeCommandHeaderInto(buf []byte, c *Command) int {
	return encodeCommandHeaderIntoN(buf, c, len(c.Data))
}

// encodeCommandHeaderIntoN is encodeCommandHeaderInto with an explicit
// payload length, for capsules whose data arrives as a vector of
// slices (WriteAtV) rather than c.Data.
func encodeCommandHeaderIntoN(buf []byte, c *Command, payload int) int {
	n := cmdHdrLen
	if c.Traced {
		n += traceExtLen
	}
	binary.LittleEndian.PutUint32(buf[0:], cmdMagic)
	buf[4] = byte(c.Opcode)
	buf[5] = 0
	if c.Traced {
		buf[5] = cmdFlagTraced
	}
	binary.LittleEndian.PutUint16(buf[6:], c.CID)
	binary.LittleEndian.PutUint32(buf[8:], c.NSID)
	binary.LittleEndian.PutUint64(buf[12:], c.Offset)
	binary.LittleEndian.PutUint32(buf[20:], c.Length)
	binary.LittleEndian.PutUint32(buf[24:], uint32(payload))
	binary.LittleEndian.PutUint16(buf[28:], c.ProposeVersion)
	if c.Traced {
		binary.LittleEndian.PutUint64(buf[cmdHdrLen:], c.TraceID)
	}
	return n
}

// submitBatched enqueues one slot for the next vectored flush and
// waits for its completion. It is the batched counterpart of
// submitDirect; errors during the flush poison the queue pair exactly
// like a failed direct write. On success the slot is consumed and
// freed before returning.
func (h *Host) submitBatched(s *hostSlot) (Response, int, error) {
	cmd := &s.cmd
	selfPayload := len(cmd.Data) + s.vecLen
	if err := validateCommand(cmd, uint16(h.version.Load()), s.vecLen); err != nil {
		h.freeSlot(s)
		return Response{}, 0, err
	}
	b := h.batch

	b.mu.Lock()
	// Merge an adjacent WRITE into its still-pending predecessor: one
	// capsule carries both payloads, and this submitter completes on
	// the shared CID's completion. The follower keeps its own slot
	// (parked in slotMergeWait) but no wire CID: the leader's
	// completion fan-out delivers to it.
	if leader := b.mergeTarget(cmd, s.vecLen); leader != nil {
		merged := false
		h.respMu.Lock()
		if !h.failed.Load() && leader.state.Load() == slotInflight {
			leader.followers = append(leader.followers, s.idx)
			s.state.Store(slotMergeWait)
			merged = true
		}
		h.respMu.Unlock()
		if merged {
			pc := &leader.pc
			if s.vec != nil {
				pc.data = append(pc.data, s.vec...)
			} else {
				pc.data = append(pc.data, cmd.Data)
			}
			pc.payload += selfPayload
			pc.endOff += uint64(selfPayload)
			binary.LittleEndian.PutUint32(pc.hdr[24:], uint32(pc.payload))
			b.bytes += selfPayload
			s.leaderStat = &pc.stat
			b.mu.Unlock()
			h.tel.batchMerged.Inc()
			cmd.CID = leader.idx + 1
			resp, err := h.awaitResponse(s)
			if err != nil {
				// Timed out (slot abandoned; the leader's fan-out
				// reclaims it) or failed. The stat pointer may be
				// going stale if the leader's slot is reused, but its
				// fields are atomic — a racy read is a defined,
				// merely approximate batch size.
				return Response{}, int(s.leaderStat.commands.Load()), err
			}
			batchN := int(s.leaderStat.commands.Load())
			h.freeSlot(s)
			return resp, batchN, nil
		}
	}

	if err := h.registerSlot(s); err != nil {
		b.mu.Unlock()
		return Response{}, 0, err
	}
	pc := &s.pc
	pc.cid = cmd.CID
	pc.op = cmd.Opcode
	pc.payload = selfPayload
	pc.endOff = cmd.Offset + uint64(selfPayload)
	pc.merge = b.cfg.MergeWrites && cmd.Opcode == OpWriteCmd && !cmd.Traced && selfPayload > 0
	pc.hdr = pc.hdrBuf[:encodeCommandHeaderIntoN(pc.hdrBuf[:], cmd, selfPayload)]
	if s.vec != nil {
		pc.data = append(pc.data, s.vec...)
	} else if len(cmd.Data) > 0 {
		pc.data = append(pc.data, cmd.Data)
	}
	b.pending = append(b.pending, s)
	b.bytes += pc.wire()
	if !b.flushing {
		b.flushing = true
		// Yield once before cutting the first batch: submitters that are
		// already runnable (a burst woken by the previous batch's
		// completions, or peers on other Ps) get to enqueue behind us, so
		// overlapping submissions actually coalesce instead of each
		// becoming a depth-1 leader. A lone submitter pays one empty
		// scheduler pass and proceeds immediately — still no linger
		// timer, no background goroutine.
		b.mu.Unlock()
		runtime.Gosched()
		b.mu.Lock()
		h.flushBatches(b) // unlocks b.mu
	} else {
		b.mu.Unlock()
	}
	resp, err := h.awaitResponse(s)
	if err != nil {
		return Response{}, int(pc.stat.commands.Load()), err
	}
	batchN := int(pc.stat.commands.Load())
	h.freeSlot(s)
	return resp, batchN, nil
}

// mergeTarget returns the still-pending WRITE leader that cmd's payload
// can be appended to, or nil. extra is payload outside cmd.Data (a
// vectored WRITE). b.mu must be held.
func (b *batcher) mergeTarget(cmd *Command, extra int) *hostSlot {
	payload := len(cmd.Data) + extra
	if !b.cfg.MergeWrites || cmd.Opcode != OpWriteCmd || cmd.Traced ||
		payload == 0 || len(b.pending) == 0 {
		return nil
	}
	s := b.pending[len(b.pending)-1]
	pc := &s.pc
	limit := b.cfg.MaxBytes
	if limit > MaxDataLen {
		limit = MaxDataLen
	}
	if !pc.merge || pc.endOff != cmd.Offset || pc.payload+payload > limit {
		return nil
	}
	return s
}

// flushBatches drains the pending queue as the current flush leader,
// cutting one vectored write per batch budget. Called with b.mu held;
// returns with it released. A wire error poisons the host (every
// waiter, flushed or still pending, is failed) — a partial vectored
// write leaves the capsule stream unframed, so the connection is dead
// either way.
func (h *Host) flushBatches(b *batcher) {
	for len(b.pending) > 0 {
		cut := len(b.pending)
		if cut > b.cfg.MaxCommands {
			cut = b.cfg.MaxCommands
		}
		wire := 0
		for i := 0; i < cut; i++ {
			wire += b.pending[i].pc.wire()
			if wire >= b.cfg.MaxBytes && i+1 < cut {
				cut = i + 1
				break
			}
		}
		// Copy the cut into flusher-owned scratch and compact pending
		// in place: the retained backing must not keep flushed slots
		// reachable past this flush.
		batch := append(b.scratch[:0], b.pending[:cut]...)
		n := copy(b.pending, b.pending[cut:])
		for i := n; i < len(b.pending); i++ {
			b.pending[i] = nil
		}
		b.pending = b.pending[:n]
		b.bytes -= wire
		nbufs := 0
		for _, s := range batch {
			pc := &s.pc
			pc.stat.commands.Store(int32(len(batch)))
			pc.stat.bytes.Store(int64(wire))
			pc.merge = false // flushed: no longer a merge target
			nbufs += 1 + len(pc.data)
		}
		b.mu.Unlock()

		// Size the coalesce buffer before building iovecs: appends must
		// never reallocate it, or the runs already referenced from bufs
		// would point into the abandoned backing.
		small := 0
		for _, s := range batch {
			pc := &s.pc
			small += len(pc.hdr)
			for _, d := range pc.data {
				if len(d) < coalesceMin {
					small += len(d)
				}
			}
		}
		coal := b.coal[:0]
		if cap(coal) < small {
			coal = make([]byte, 0, small)
		}
		bufs := b.iov[:0]
		run := -1 // start of the open coalesced run within coal
		for _, s := range batch {
			pc := &s.pc
			if run < 0 {
				run = len(coal)
			}
			coal = append(coal, pc.hdr...)
			for _, d := range pc.data {
				if len(d) < coalesceMin {
					if run < 0 {
						run = len(coal)
					}
					coal = append(coal, d...)
					continue
				}
				if run >= 0 && run < len(coal) {
					bufs = append(bufs, coal[run:len(coal):len(coal)])
				}
				run = -1
				bufs = append(bufs, d)
			}
		}
		if run >= 0 && run < len(coal) {
			bufs = append(bufs, coal[run:len(coal):len(coal)])
		}
		b.coal = coal[:0] // retain the (possibly grown) backing
		b.iov = bufs[:0]  // retain the (possibly grown) backing
		start := time.Now()
		err := writeBuffers(h.conn, bufs, &b.stage)
		h.tel.observeBatch(len(batch), wire, time.Since(start))
		for i := range batch {
			batch[i] = nil
		}
		b.scratch = batch[:0]
		if err != nil {
			h.fail(err)
			b.mu.Lock()
			for i := range b.pending {
				b.pending[i] = nil
			}
			b.pending = b.pending[:0]
			b.bytes = 0
			break
		}
		b.mu.Lock()
	}
	b.flushing = false
	b.mu.Unlock()
}
