package nvmeof

import (
	"encoding/binary"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// BatchConfig tunes a queue pair's submission batcher. The batcher
// coalesces capsules queued by concurrent submitters into a single
// vectored wire write (net.Buffers, one writev on a TCP connection), so
// the per-command syscall cost — the dominant software cost of small
// commands, the cost the paper keeps off the critical path (§IV) —
// is amortized across the batch. The wire format is unchanged: a batch
// is byte-for-byte the capsules that would have been sent singly, so
// batched initiators interoperate with every target and no version
// negotiation is involved (capsules are self-delimiting; see
// docs/batching.md).
//
// The zero value disables batching.
type BatchConfig struct {
	// Enabled turns the batcher on.
	Enabled bool
	// MaxBytes is the batch budget: a flush is cut when the pending
	// wire bytes reach it (default 256 KiB). It also bounds merged
	// WRITE payloads (never beyond MaxDataLen).
	MaxBytes int
	// MaxCommands caps the capsules per flush (default 64).
	MaxCommands int
	// MergeWrites additionally coalesces an enqueued WRITE whose range
	// begins exactly where the previous still-pending WRITE ends into
	// that command's capsule: one capsule, one target service visit,
	// both submitters completed by the shared completion. Only
	// untraced WRITEs merge (a merged capsule cannot carry two trace
	// IDs).
	MergeWrites bool
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.MaxBytes <= 0 {
		c.MaxBytes = 256 << 10
	}
	if c.MaxCommands <= 0 {
		c.MaxCommands = 64
	}
	return c
}

// batchStat is the flush-time shape of one batch, shared by every
// command it carried. The fields are atomic because a waiter reads
// them after its completion arrives, and the completion travels
// through the socket — an ordering the race detector cannot see.
type batchStat struct {
	commands atomic.Int32
	bytes    atomic.Int64
}

// pendingCmd is one encoded capsule awaiting the next vectored flush.
// The header is owned by the batcher; payload slices alias the caller's
// buffer, which stays valid because the caller blocks until its
// completion arrives (zero-copy into writev).
type pendingCmd struct {
	cid     uint16
	op      Opcode
	hdrBuf  [cmdHdrLen + traceExtLen]byte
	hdr     []byte // hdrBuf[:n]
	data    [][]byte
	dataBuf [2][]byte // inline backing for data (original + first merge)
	payload int       // total payload bytes across data
	endOff  uint64    // WRITE: Offset + payload (merge adjacency)
	merge   bool      // untraced WRITE: candidate for payload merging
	stat    batchStat
}

func (pc *pendingCmd) wire() int { return len(pc.hdr) + pc.payload }

// batcher coalesces one queue pair's submissions into vectored writes,
// leader/follower style: the first submitter to find no flush in
// progress becomes the flusher and drains the pending queue — cutting
// batches at the configured budget — while later submitters only
// enqueue and wait for their completions. No background goroutine and
// no linger timer: a lone submitter flushes immediately (same syscall
// count as the unbatched path), and batches form exactly when
// submissions actually overlap.
//
// Lock order: batcher.mu before Host.respMu, never the reverse.
type batcher struct {
	cfg BatchConfig

	mu       sync.Mutex
	pending  []*pendingCmd
	bytes    int
	flushing bool
}

// validateCommand applies WriteCommandV's rejection rules before a
// command is committed to a batch: once enqueued its header bytes are
// final, so anything WriteCommandV would refuse must be refused here.
func validateCommand(c *Command, version uint16) error {
	if len(c.Data) > MaxDataLen {
		return fmt.Errorf("nvmeof: in-capsule data %d exceeds limit", len(c.Data))
	}
	if c.Traced && version < VersionTrace {
		return fmt.Errorf("nvmeof: traced command on version-%d queue pair", version)
	}
	return nil
}

// encodeCommandHeader renders cmd's fixed header (plus the trace-ID
// extension when present) into a fresh slice, leaving the payload to
// ride as its own iovec. The bytes are identical to what WriteCommandV
// puts on the wire before the payload — pinned by
// TestBatchWireBytesPinned so the formats can never diverge.
func encodeCommandHeader(c *Command) []byte {
	hdr := make([]byte, cmdHdrLen+traceExtLen)
	return hdr[:encodeCommandHeaderInto(hdr, c)]
}

// encodeCommandHeaderInto renders the header into buf (which must hold
// cmdHdrLen+traceExtLen bytes) and returns the encoded length, so the
// hot path can use a pendingCmd's inline buffer with no allocation.
func encodeCommandHeaderInto(buf []byte, c *Command) int {
	n := cmdHdrLen
	if c.Traced {
		n += traceExtLen
	}
	binary.LittleEndian.PutUint32(buf[0:], cmdMagic)
	buf[4] = byte(c.Opcode)
	buf[5] = 0
	if c.Traced {
		buf[5] = cmdFlagTraced
	}
	binary.LittleEndian.PutUint16(buf[6:], c.CID)
	binary.LittleEndian.PutUint32(buf[8:], c.NSID)
	binary.LittleEndian.PutUint64(buf[12:], c.Offset)
	binary.LittleEndian.PutUint32(buf[20:], c.Length)
	binary.LittleEndian.PutUint32(buf[24:], uint32(len(c.Data)))
	binary.LittleEndian.PutUint16(buf[28:], c.ProposeVersion)
	if c.Traced {
		binary.LittleEndian.PutUint64(buf[cmdHdrLen:], c.TraceID)
	}
	return n
}

// submitBatched enqueues one command for the next vectored flush and
// waits for its completion. It is the batched counterpart of
// submitDirect; errors during the flush poison the queue pair exactly
// like a failed direct write.
func (h *Host) submitBatched(cmd *Command) (*Response, int, error) {
	if err := validateCommand(cmd, uint16(h.version.Load())); err != nil {
		return nil, 0, err
	}
	b := h.batch
	ch := make(chan *Response, 1)

	b.mu.Lock()
	// Merge an adjacent WRITE into its still-pending predecessor: one
	// capsule carries both payloads, and this submitter completes on
	// the shared CID's completion.
	if pc := b.mergeTarget(cmd); pc != nil {
		merged := false
		h.respMu.Lock()
		if slot, live := h.inflight[pc.cid]; live && slot != nil {
			slot.chans = append(slot.chans, ch)
			merged = true
		}
		h.respMu.Unlock()
		if merged {
			pc.data = append(pc.data, cmd.Data)
			pc.payload += len(cmd.Data)
			pc.endOff += uint64(len(cmd.Data))
			binary.LittleEndian.PutUint32(pc.hdr[24:], uint32(pc.payload))
			b.bytes += len(cmd.Data)
			stat := &pc.stat
			b.mu.Unlock()
			h.tel.batchMerged.Inc()
			cmd.CID = pc.cid
			resp, err := h.awaitResponse(cmd, ch)
			return resp, int(stat.commands.Load()), err
		}
	}

	cid, err := h.registerWaiter(ch)
	if err != nil {
		b.mu.Unlock()
		return nil, 0, err
	}
	cmd.CID = cid
	pc := &pendingCmd{
		cid:     cid,
		op:      cmd.Opcode,
		payload: len(cmd.Data),
		endOff:  cmd.Offset + uint64(len(cmd.Data)),
		merge:   b.cfg.MergeWrites && cmd.Opcode == OpWriteCmd && !cmd.Traced && len(cmd.Data) > 0,
	}
	pc.hdr = pc.hdrBuf[:encodeCommandHeaderInto(pc.hdrBuf[:], cmd)]
	if len(cmd.Data) > 0 {
		pc.data = pc.dataBuf[:1]
		pc.data[0] = cmd.Data
	}
	b.pending = append(b.pending, pc)
	b.bytes += pc.wire()
	stat := &pc.stat
	if !b.flushing {
		b.flushing = true
		// Yield once before cutting the first batch: submitters that are
		// already runnable (a burst woken by the previous batch's
		// completions, or peers on other Ps) get to enqueue behind us, so
		// overlapping submissions actually coalesce instead of each
		// becoming a depth-1 leader. A lone submitter pays one empty
		// scheduler pass and proceeds immediately — still no linger
		// timer, no background goroutine.
		b.mu.Unlock()
		runtime.Gosched()
		b.mu.Lock()
		h.flushBatches(b) // unlocks b.mu
	} else {
		b.mu.Unlock()
	}
	resp, err := h.awaitResponse(cmd, ch)
	return resp, int(stat.commands.Load()), err
}

// mergeTarget returns the still-pending WRITE that cmd's payload can be
// appended to, or nil. b.mu must be held.
func (b *batcher) mergeTarget(cmd *Command) *pendingCmd {
	if !b.cfg.MergeWrites || cmd.Opcode != OpWriteCmd || cmd.Traced ||
		len(cmd.Data) == 0 || len(b.pending) == 0 {
		return nil
	}
	pc := b.pending[len(b.pending)-1]
	limit := b.cfg.MaxBytes
	if limit > MaxDataLen {
		limit = MaxDataLen
	}
	if !pc.merge || pc.endOff != cmd.Offset || pc.payload+len(cmd.Data) > limit {
		return nil
	}
	return pc
}

// flushBatches drains the pending queue as the current flush leader,
// cutting one vectored write per batch budget. Called with b.mu held;
// returns with it released. A wire error poisons the host (every
// waiter, flushed or still pending, is failed) — a partial vectored
// write leaves the capsule stream unframed, so the connection is dead
// either way.
func (h *Host) flushBatches(b *batcher) {
	for len(b.pending) > 0 {
		cut := len(b.pending)
		if cut > b.cfg.MaxCommands {
			cut = b.cfg.MaxCommands
		}
		wire := 0
		for i := 0; i < cut; i++ {
			wire += b.pending[i].wire()
			if wire >= b.cfg.MaxBytes && i+1 < cut {
				cut = i + 1
				break
			}
		}
		batch := b.pending[:cut]
		rest := b.pending[cut:]
		b.pending = rest
		b.bytes -= wire
		nbufs := 0
		for _, pc := range batch {
			pc.stat.commands.Store(int32(len(batch)))
			pc.stat.bytes.Store(int64(wire))
			pc.merge = false // flushed: no longer a merge target
			nbufs += 1 + len(pc.data)
		}
		b.mu.Unlock()

		bufs := make(net.Buffers, 0, nbufs)
		for _, pc := range batch {
			bufs = append(bufs, pc.hdr)
			bufs = append(bufs, pc.data...)
		}
		start := time.Now()
		_, err := bufs.WriteTo(h.conn)
		h.tel.observeBatch(len(batch), wire, time.Since(start))
		if err != nil {
			h.fail(err)
			b.mu.Lock()
			b.pending = nil
			b.bytes = 0
			break
		}
		b.mu.Lock()
	}
	b.flushing = false
	b.mu.Unlock()
}
