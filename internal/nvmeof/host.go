package nvmeof

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
)

// Host is an NVMe-oF initiator over the TCP transport: one queue pair
// (connection) with pipelined command submission. Commands may be issued
// from multiple goroutines; completions are matched by command ID.
type Host struct {
	conn net.Conn
	bw   *bufio.Writer

	sendMu   sync.Mutex // serializes capsule writes
	respMu   sync.Mutex // guards inflight and cid
	inflight map[uint16]chan *Response
	cid      uint16

	nsSize int64
	err    error
	errMu  sync.Mutex
	done   chan struct{}
}

// DialAdmin connects an admin queue pair (no namespace bound): only the
// admin command set (create/delete/list namespace) is usable on it.
func DialAdmin(addr string) (*Host, error) { return Dial(addr, 0) }

// Dial connects a queue pair to the target at addr and issues CONNECT
// for the namespace. NSID 0 yields an admin queue pair.
func Dial(addr string, nsid uint32) (*Host, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	h := &Host{
		conn:     conn,
		bw:       bufio.NewWriterSize(conn, 1<<20),
		inflight: make(map[uint16]chan *Response),
		done:     make(chan struct{}),
	}
	go h.readLoop()
	resp, err := h.roundTrip(&Command{Opcode: OpConnect, NSID: nsid})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("nvmeof: connect: %w", err)
	}
	if resp.Status != StatusOK {
		conn.Close()
		return nil, fmt.Errorf("nvmeof: connect: %s", statusText(resp.Status))
	}
	h.nsSize = int64(resp.Value)
	return h, nil
}

// NamespaceSize returns the connected namespace's capacity.
func (h *Host) NamespaceSize() int64 { return h.nsSize }

// readLoop dispatches completions to waiting submitters.
func (h *Host) readLoop() {
	br := bufio.NewReaderSize(h.conn, 1<<20)
	for {
		resp, err := ReadResponse(br)
		if err != nil {
			h.fail(err)
			return
		}
		h.respMu.Lock()
		ch, ok := h.inflight[resp.CID]
		delete(h.inflight, resp.CID)
		h.respMu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// fail poisons the host: all in-flight and future commands error out.
func (h *Host) fail(err error) {
	h.errMu.Lock()
	if h.err == nil {
		h.err = err
		close(h.done)
	}
	h.errMu.Unlock()
	h.respMu.Lock()
	for cid, ch := range h.inflight {
		delete(h.inflight, cid)
		close(ch)
	}
	h.respMu.Unlock()
}

func (h *Host) lastErr() error {
	h.errMu.Lock()
	defer h.errMu.Unlock()
	if h.err != nil {
		return h.err
	}
	return fmt.Errorf("nvmeof: connection closed")
}

// roundTrip submits one command and waits for its completion.
func (h *Host) roundTrip(cmd *Command) (*Response, error) {
	ch := make(chan *Response, 1)
	h.respMu.Lock()
	h.cid++
	cmd.CID = h.cid
	h.inflight[cmd.CID] = ch
	h.respMu.Unlock()

	h.sendMu.Lock()
	err := WriteCommand(h.bw, cmd)
	if err == nil {
		err = h.bw.Flush()
	}
	h.sendMu.Unlock()
	if err != nil {
		h.respMu.Lock()
		delete(h.inflight, cmd.CID)
		h.respMu.Unlock()
		return nil, err
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, h.lastErr()
		}
		return resp, nil
	case <-h.done:
		// Drain a response that may have raced with the failure.
		select {
		case resp, ok := <-ch:
			if ok {
				return resp, nil
			}
		default:
		}
		return nil, h.lastErr()
	}
}

func (h *Host) check(resp *Response, err error, op string) error {
	if err != nil {
		return fmt.Errorf("nvmeof: %s: %w", op, err)
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("nvmeof: %s: %s", op, statusText(resp.Status))
	}
	return nil
}

// WriteAt writes data at the namespace offset.
func (h *Host) WriteAt(off int64, data []byte) error {
	resp, err := h.roundTrip(&Command{Opcode: OpWriteCmd, Offset: uint64(off), Data: data})
	return h.check(resp, err, "write")
}

// ReadAt reads length bytes from the namespace offset.
func (h *Host) ReadAt(off, length int64) ([]byte, error) {
	resp, err := h.roundTrip(&Command{Opcode: OpReadCmd, Offset: uint64(off), Length: uint32(length)})
	if err := h.check(resp, err, "read"); err != nil {
		return nil, err
	}
	if resp.Data == nil {
		return make([]byte, length), nil
	}
	return resp.Data, nil
}

// Flush issues a durability barrier.
func (h *Host) Flush() error {
	resp, err := h.roundTrip(&Command{Opcode: OpFlushCmd})
	return h.check(resp, err, "flush")
}

// Identify re-reads the namespace properties.
func (h *Host) Identify() (int64, error) {
	resp, err := h.roundTrip(&Command{Opcode: OpIdentify})
	if err := h.check(resp, err, "identify"); err != nil {
		return 0, err
	}
	return int64(resp.Value), nil
}

// CreateNamespace asks the target to create a namespace of the given
// size (an admin command; the scheduler's storage-grant path). It
// returns the new NSID.
func (h *Host) CreateNamespace(size int64) (uint32, error) {
	resp, err := h.roundTrip(&Command{Opcode: OpCreateNS, Offset: uint64(size)})
	if err := h.check(resp, err, "create-ns"); err != nil {
		return 0, err
	}
	return uint32(resp.Value), nil
}

// DeleteNamespace reclaims a namespace on the target.
func (h *Host) DeleteNamespace(nsid uint32) error {
	resp, err := h.roundTrip(&Command{Opcode: OpDeleteNS, NSID: nsid})
	return h.check(resp, err, "delete-ns")
}

// NamespaceInfo describes one exported namespace.
type NamespaceInfo struct {
	NSID uint32
	Size int64
}

// ListNamespaces enumerates the target's exports.
func (h *Host) ListNamespaces() ([]NamespaceInfo, error) {
	resp, err := h.roundTrip(&Command{Opcode: OpListNS})
	if err := h.check(resp, err, "list-ns"); err != nil {
		return nil, err
	}
	if len(resp.Data)%12 != 0 {
		return nil, fmt.Errorf("nvmeof: list-ns returned %d bytes, not a multiple of 12", len(resp.Data))
	}
	out := make([]NamespaceInfo, 0, len(resp.Data)/12)
	for off := 0; off < len(resp.Data); off += 12 {
		out = append(out, NamespaceInfo{
			NSID: binary.LittleEndian.Uint32(resp.Data[off:]),
			Size: int64(binary.LittleEndian.Uint64(resp.Data[off+4:])),
		})
	}
	return out, nil
}

// Close tears down the queue pair.
func (h *Host) Close() error {
	return h.conn.Close()
}
