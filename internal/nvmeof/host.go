package nvmeof

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nvme-cr/nvmecr/internal/telemetry"
)

// ErrTimeout reports that a command's deadline expired before its
// completion arrived. The queue pair itself stays healthy: a late
// completion is discarded when it eventually arrives.
var ErrTimeout = errors.New("nvmeof: command deadline exceeded")

// ErrBadResponse reports a protocol violation by the target: a
// completion whose payload disagrees with what the command requested.
var ErrBadResponse = errors.New("nvmeof: malformed response from target")

// HostConfig tunes one queue pair.
type HostConfig struct {
	// CommandTimeout bounds every command round trip on this queue
	// pair. Zero means commands wait indefinitely.
	CommandTimeout time.Duration
	// Dial opens the transport connection (default net.Dial over TCP).
	// Fault-injection tests pass FaultDialer here to interpose on the
	// byte stream without touching the capsule protocol.
	Dial func(addr string) (net.Conn, error)
	// Telemetry is the registry the queue pair records into. Nil gets
	// a private registry, so Snapshot always reports live counts.
	Telemetry *telemetry.Registry
	// TelemetryQP is the queue-pair label for this host's series
	// (a HostPool passes the slot index; standalone hosts use 0).
	TelemetryQP int
	// Tracer, when non-nil, makes the queue pair offer the trace
	// capsule extension at CONNECT and, once negotiated, stamp every
	// command with a trace ID and emit one correlated "nvmeof.cmd"
	// span per completion carrying the target-reported wire/queue/
	// service phase breakdown. Nil keeps the legacy wire format and
	// adds zero bytes to any capsule.
	Tracer *telemetry.Tracer
	// Flight is the flight recorder completed commands are logged to
	// (a HostPool passes its shared, lock-striped recorder so every
	// slot lands in its own ring). Nil gets a private recorder of
	// DefaultFlightDepth.
	Flight *FlightRecorder
	// Batch configures the submission batcher: concurrent submissions
	// coalesce into one vectored wire write per batch (see BatchConfig).
	// The zero value keeps the direct, one-flush-per-command path.
	Batch BatchConfig
}

// Host is an NVMe-oF initiator over the TCP transport: one queue pair
// (connection) with pipelined command submission. Commands may be issued
// from multiple goroutines; completions are matched by command ID.
type Host struct {
	conn net.Conn
	bw   *bufio.Writer

	addr    string
	nsid    uint32
	timeout time.Duration

	sendMu   sync.Mutex // serializes capsule writes (direct path)
	respMu   sync.Mutex // guards inflight and cid
	inflight map[uint16]*cmdSlot
	cid      uint16
	// inflightN mirrors len(inflight) so the pool's queue-pair
	// selection can probe depth without taking respMu on every
	// submission. Updated under respMu at every map mutation.
	inflightN atomic.Int32
	// failed mirrors err != nil for the same reason: Healthy is on the
	// pool's per-command path.
	failed atomic.Bool

	// batch, when non-nil, routes every submission through the
	// vectored-write batcher instead of the direct bufio path.
	batch *batcher

	nsSize int64
	err    error
	errMu  sync.Mutex
	done   chan struct{}

	reg  *telemetry.Registry
	tel  qpTelemetry
	qpID int

	// version is the negotiated capsule version. Written by DialConfig
	// after the CONNECT round trip, read by the read loop and by every
	// submit; atomic because the read loop is already parsing when
	// negotiation completes.
	version atomic.Uint32
	tracer  *telemetry.Tracer
	flight  *FlightRecorder
}

// traceSeq and traceBase generate process-unique trace IDs: the base
// distinguishes processes (so host and target logs from different runs
// do not collide), the sequence distinguishes commands.
var (
	traceSeq  atomic.Uint64
	traceBase = uint64(time.Now().UnixNano()) << 20
)

// nextTraceID returns a non-zero trace ID (zero means "untraced").
func nextTraceID() uint64 {
	for {
		if id := traceBase ^ traceSeq.Add(1); id != 0 {
			return id
		}
	}
}

// traceIDString renders a trace ID for span attributes: hex, because
// JSON numbers above 2^53 lose precision in most consumers.
func traceIDString(id uint64) string { return fmt.Sprintf("%016x", id) }

// DialAdmin connects an admin queue pair (no namespace bound): only the
// admin command set (create/delete/list namespace) is usable on it.
func DialAdmin(addr string) (*Host, error) { return Dial(addr, 0) }

// Dial connects a queue pair to the target at addr and issues CONNECT
// for the namespace. NSID 0 yields an admin queue pair.
func Dial(addr string, nsid uint32) (*Host, error) {
	return DialConfig(addr, nsid, HostConfig{})
}

// DialConfig is Dial with explicit queue-pair configuration.
func DialConfig(addr string, nsid uint32, cfg HostConfig) (*Host, error) {
	dial := cfg.Dial
	if dial == nil {
		dial = func(a string) (net.Conn, error) { return net.Dial("tcp", a) }
	}
	conn, err := dial(addr)
	if err != nil {
		return nil, err
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.New()
	}
	flight := cfg.Flight
	if flight == nil {
		flight = NewFlightRecorder(0)
	}
	h := &Host{
		conn:     conn,
		bw:       bufio.NewWriterSize(conn, 1<<20),
		addr:     addr,
		nsid:     nsid,
		timeout:  cfg.CommandTimeout,
		inflight: make(map[uint16]*cmdSlot),
		done:     make(chan struct{}),
		reg:      reg,
		tel:      newQPTelemetry(reg, cfg.TelemetryQP),
		qpID:     cfg.TelemetryQP,
		tracer:   cfg.Tracer,
		flight:   flight,
	}
	if cfg.Batch.Enabled {
		h.batch = &batcher{cfg: cfg.Batch.withDefaults()}
	}
	go h.readLoop()
	// Offer the trace extension only when a tracer will consume it, so
	// untraced queue pairs keep the legacy wire format bit-for-bit.
	var propose uint16
	if cfg.Tracer != nil {
		propose = MaxVersion
	}
	resp, err := h.roundTrip(&Command{Opcode: OpConnect, NSID: nsid, ProposeVersion: propose})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("nvmeof: connect: %w", err)
	}
	if resp.Status != StatusOK {
		conn.Close()
		return nil, fmt.Errorf("nvmeof: connect: %s", statusText(resp.Status))
	}
	negotiated := DecodeNegotiatedVersion(resp.Data)
	if negotiated > MaxVersion {
		conn.Close()
		return nil, fmt.Errorf("nvmeof: connect: target negotiated unsupported capsule version %d", negotiated)
	}
	h.version.Store(uint32(negotiated))
	h.nsSize = int64(resp.Value)
	return h, nil
}

// NamespaceSize returns the connected namespace's capacity.
func (h *Host) NamespaceSize() int64 { return h.nsSize }

// Addr returns the target address this queue pair dialed.
func (h *Host) Addr() string { return h.addr }

// NSID returns the namespace the queue pair connected to (0 = admin).
func (h *Host) NSID() uint32 { return h.nsid }

// Healthy reports whether the queue pair can still carry commands.
func (h *Host) Healthy() bool {
	return !h.failed.Load()
}

// InFlight returns the number of commands awaiting completion
// (including abandoned slots of timed-out commands).
func (h *Host) InFlight() int {
	return int(h.inflightN.Load())
}

// Telemetry returns the registry this queue pair records into, for
// exposition (e.g. the nvmecrd admin listener's /metrics).
func (h *Host) Telemetry() *telemetry.Registry { return h.reg }

// CapsuleVersion reports the capsule version negotiated at CONNECT.
func (h *Host) CapsuleVersion() uint16 { return uint16(h.version.Load()) }

// Flight returns the flight recorder holding this queue pair's last
// completed commands.
func (h *Host) Flight() *FlightRecorder { return h.flight }

// Snapshot reports the queue pair's live counters and latency
// quantiles in the unified snapshot form.
func (h *Host) Snapshot() []telemetry.HostQPSnapshot {
	return []telemetry.HostQPSnapshot{h.tel.snapshot(h.qpID, h.Healthy(), h.InFlight())}
}

// readLoop dispatches completions to waiting submitters.
func (h *Host) readLoop() {
	br := bufio.NewReaderSize(h.conn, 1<<20)
	// The version is consulted lazily, after each response's fixed
	// header is read: the CONNECT completion is parsed while the
	// negotiated version is still being decided, but any response that
	// could carry an extension arrives strictly after DialConfig
	// stored it.
	version := func() uint16 { return uint16(h.version.Load()) }
	for {
		resp, err := readResponseFn(br, version)
		if err != nil {
			h.fail(err)
			return
		}
		h.respMu.Lock()
		slot, ok := h.inflight[resp.CID]
		if ok {
			delete(h.inflight, resp.CID)
			h.inflightN.Add(-1)
		}
		h.respMu.Unlock()
		// A waiterless slot marks an abandoned (timed-out) command: its
		// CID is reclaimed here and the late completion dropped. A
		// merged WRITE's slot fans the one completion out to every
		// submitter whose payload rode in the capsule.
		if ok && slot != nil {
			for _, ch := range slot.chans {
				ch <- resp
			}
		}
	}
}

// fail poisons the host: all in-flight and future commands error out.
func (h *Host) fail(err error) {
	h.errMu.Lock()
	if h.err == nil {
		h.err = err
		h.failed.Store(true)
		close(h.done)
	}
	h.errMu.Unlock()
	h.respMu.Lock()
	for cid, slot := range h.inflight {
		delete(h.inflight, cid)
		if slot == nil {
			continue
		}
		for _, ch := range slot.chans {
			close(ch)
		}
	}
	h.inflightN.Store(0)
	h.respMu.Unlock()
}

func (h *Host) lastErr() error {
	h.errMu.Lock()
	defer h.errMu.Unlock()
	if h.err != nil {
		return h.err
	}
	return fmt.Errorf("nvmeof: connection closed")
}

// maxInflight caps outstanding commands at the CID space minus the
// reserved CID 0.
const maxInflight = 1<<16 - 1

// roundTrip submits one command and records its outcome in the queue
// pair's telemetry series, its flight ring, and (when tracing) the
// trace stream.
func (h *Host) roundTrip(cmd *Command) (*Response, error) {
	if h.tracer != nil && uint16(h.version.Load()) >= VersionTrace {
		cmd.Traced = true
		cmd.TraceID = nextTraceID()
	}
	start := time.Now()
	var (
		resp   *Response
		batchN int
		err    error
	)
	if h.batch != nil {
		resp, batchN, err = h.submitBatched(cmd)
	} else {
		resp, err = h.submitDirect(cmd)
	}
	rtt := time.Since(start)
	h.tel.observe(cmd, resp, err, rtt)
	h.observeFlight(cmd, resp, err, start, rtt, batchN)
	return resp, err
}

// observeFlight logs one completed round trip into the queue pair's
// flight ring, emits the correlated span for traced completions, and
// dumps the ring on the failure modes worth a postmortem.
func (h *Host) observeFlight(cmd *Command, resp *Response, err error, start time.Time, rtt time.Duration, batchN int) {
	rec := FlightRecord{
		TraceID:   cmd.TraceID,
		QP:        h.qpID,
		Op:        cmd.Opcode.String(),
		Opcode:    cmd.Opcode,
		CID:       cmd.CID,
		Bytes:     len(cmd.Data),
		WallNS:    start.UnixNano(),
		ElapsedNS: int64(rtt),
		Batch:     batchN,
	}
	if resp != nil {
		rec.Status = resp.Status
		rec.Phases = resp.Phases
		rec.Bytes += len(resp.Data)
	}
	if err != nil {
		rec.Err = err.Error()
	}
	h.flight.Record(h.qpID, rec)
	if err == nil && resp != nil && resp.Phases != nil && h.tracer != nil {
		p := resp.Phases
		wire := int64(hostWirePhase(rtt, p))
		attrs := map[string]any{
			"trace_id":      traceIDString(cmd.TraceID),
			"op":            cmd.Opcode.String(),
			"qp":            h.qpID,
			"status":        resp.Status,
			"bytes":         rec.Bytes,
			"wire_ns":       wire,
			"queue_ns":      p.QueueNS,
			"service_ns":    p.ServiceNS,
			"wire_read_ns":  p.WireReadNS,
			"wire_write_ns": p.WireWriteNS,
		}
		if batchN > 0 {
			// The command went out in a vectored flush of batchN
			// capsules; its wire phase amortizes across them.
			attrs["batch_cmds"] = batchN
		}
		h.tracer.SpanWall("nvmeof.cmd", -1, start, rtt, attrs)
	}
	if errors.Is(err, ErrTimeout) {
		h.dumpFlight("timeout")
	}
}

// dumpFlight emits this queue pair's flight ring into the trace stream
// (the automatic postmortem on timeout, retry exhaustion, and protocol
// violations). Only this queue pair's ring is dumped: the failure is
// queue-pair-local and the siblings' rings keep rolling.
func (h *Host) dumpFlight(reason string) {
	if h.tracer == nil {
		return
	}
	recs := h.flight.QueuePair(h.qpID)
	if len(recs) == 0 {
		return
	}
	h.tracer.Emit(telemetry.Event{
		Name: "nvmeof.flight", Rank: -1,
		Attrs: map[string]any{"qp": h.qpID, "reason": reason, "records": recs},
	})
}

// noteBadResponse dumps the flight ring when the target violated the
// protocol, then hands the error back unchanged.
func (h *Host) noteBadResponse(err error) error {
	if errors.Is(err, ErrBadResponse) {
		h.dumpFlight("bad-response")
	}
	return err
}

// cmdSlot tracks the waiters for one in-flight CID. The common case is
// one; a merged WRITE (see batch.go) carries one per payload it
// absorbed. A slot whose waiters have all timed out stays registered
// with no channels, so the CID is not reused until its completion
// arrives and is dropped.
type cmdSlot struct {
	chans  []chan *Response
	inline [1]chan *Response // backing for the common single-waiter case
}

// remove detaches one waiter (its submit timed out).
func (s *cmdSlot) remove(ch chan *Response) {
	for i, c := range s.chans {
		if c == ch {
			s.chans = append(s.chans[:i], s.chans[i+1:]...)
			return
		}
	}
}

// registerWaiter allocates a CID and registers ch as its waiter.
func (h *Host) registerWaiter(ch chan *Response) (uint16, error) {
	h.respMu.Lock()
	defer h.respMu.Unlock()
	if len(h.inflight) >= maxInflight {
		return 0, fmt.Errorf("nvmeof: queue full: %d commands in flight", maxInflight)
	}
	// Skip CID 0 and any CID still awaiting a completion: a uint16
	// wraparound must never overwrite a live slot (that would strand
	// the earlier waiter and mis-route its completion).
	for {
		h.cid++
		if h.cid == 0 {
			continue
		}
		if _, busy := h.inflight[h.cid]; !busy {
			break
		}
	}
	slot := &cmdSlot{}
	slot.inline[0] = ch
	slot.chans = slot.inline[:1]
	h.inflight[h.cid] = slot
	h.inflightN.Add(1)
	return h.cid, nil
}

// awaitResponse waits for cmd's completion on ch, bounded by the queue
// pair's CommandTimeout if one is configured.
// respTimerPool recycles the per-command timeout timers: every round
// trip arms one, and allocating a runtime timer per command is
// measurable on the small-command hot path.
var respTimerPool sync.Pool

func (h *Host) awaitResponse(cmd *Command, ch chan *Response) (*Response, error) {
	var timeoutC <-chan time.Time
	if h.timeout > 0 {
		timer, _ := respTimerPool.Get().(*time.Timer)
		if timer == nil {
			timer = time.NewTimer(h.timeout)
		} else {
			timer.Reset(h.timeout)
		}
		timeoutC = timer.C
		defer func() {
			if !timer.Stop() {
				// Fired (or we consumed the tick in the timeout
				// branch): drain so the recycled timer starts clean.
				select {
				case <-timer.C:
				default:
				}
			}
			respTimerPool.Put(timer)
		}()
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, h.lastErr()
		}
		return resp, nil
	case <-h.done:
		// Drain a response that may have raced with the failure.
		select {
		case resp, ok := <-ch:
			if ok {
				return resp, nil
			}
		default:
		}
		return nil, h.lastErr()
	case <-timeoutC:
		// Abandon the slot rather than freeing it: the target may
		// still be processing, and reissuing this CID would let the
		// stale completion answer a future command. Only this waiter
		// detaches — a merged sibling may still be inside its own
		// deadline.
		h.respMu.Lock()
		if slot, live := h.inflight[cmd.CID]; live {
			slot.remove(ch)
		}
		h.respMu.Unlock()
		select {
		case resp, ok := <-ch:
			if ok {
				return resp, nil
			}
		default:
		}
		return nil, fmt.Errorf("%w (%v)", ErrTimeout, h.timeout)
	}
}

// submitDirect sends one command through the bufio path — one capsule
// write and one flush per command — and waits for its completion.
func (h *Host) submitDirect(cmd *Command) (*Response, error) {
	ch := make(chan *Response, 1)
	cid, err := h.registerWaiter(ch)
	if err != nil {
		return nil, err
	}
	cmd.CID = cid

	h.sendMu.Lock()
	err = WriteCommandV(h.bw, cmd, uint16(h.version.Load()))
	if err == nil {
		err = h.bw.Flush()
	}
	h.sendMu.Unlock()
	if err != nil {
		h.respMu.Lock()
		if _, live := h.inflight[cmd.CID]; live {
			delete(h.inflight, cmd.CID)
			h.inflightN.Add(-1)
		}
		h.respMu.Unlock()
		return nil, err
	}
	return h.awaitResponse(cmd, ch)
}

// checkResp folds a round-trip error and a completion status into one
// error (shared by Host and HostPool).
func checkResp(resp *Response, err error, op string) error {
	if err != nil {
		return fmt.Errorf("nvmeof: %s: %w", op, err)
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("nvmeof: %s: %s", op, statusText(resp.Status))
	}
	return nil
}

// validateReadLength rejects read lengths the protocol cannot carry,
// before the int64 is truncated into the capsule's uint32 field.
func validateReadLength(length int64) error {
	if length < 0 {
		return fmt.Errorf("nvmeof: read: negative length %d", length)
	}
	if length > MaxDataLen {
		return fmt.Errorf("nvmeof: read: length %d exceeds capsule limit %d", length, MaxDataLen)
	}
	return nil
}

// validateReadData checks a READ completion's payload against the
// requested length: short, oversized, or missing data is a protocol
// violation, never silently padded or passed through.
func validateReadData(resp *Response, length int64) ([]byte, error) {
	if int64(len(resp.Data)) != length {
		return nil, fmt.Errorf("nvmeof: read: target returned %d bytes, want %d: %w",
			len(resp.Data), length, ErrBadResponse)
	}
	if resp.Data == nil {
		return []byte{}, nil
	}
	return resp.Data, nil
}

// WriteAt writes data at the namespace offset.
func (h *Host) WriteAt(off int64, data []byte) error {
	resp, err := h.roundTrip(&Command{Opcode: OpWriteCmd, Offset: uint64(off), Data: data})
	return checkResp(resp, err, "write")
}

// ReadAt reads length bytes from the namespace offset.
func (h *Host) ReadAt(off, length int64) ([]byte, error) {
	if err := validateReadLength(length); err != nil {
		return nil, err
	}
	resp, err := h.roundTrip(&Command{Opcode: OpReadCmd, Offset: uint64(off), Length: uint32(length)})
	if err := checkResp(resp, err, "read"); err != nil {
		return nil, err
	}
	data, err := validateReadData(resp, length)
	if err != nil {
		return nil, h.noteBadResponse(err)
	}
	return data, nil
}

// Flush issues a durability barrier.
func (h *Host) Flush() error {
	resp, err := h.roundTrip(&Command{Opcode: OpFlushCmd})
	return checkResp(resp, err, "flush")
}

// Identify re-reads the namespace properties.
func (h *Host) Identify() (int64, error) {
	resp, err := h.roundTrip(&Command{Opcode: OpIdentify})
	if err := checkResp(resp, err, "identify"); err != nil {
		return 0, err
	}
	return int64(resp.Value), nil
}

// CreateNamespace asks the target to create a namespace of the given
// size (an admin command; the scheduler's storage-grant path). It
// returns the new NSID.
func (h *Host) CreateNamespace(size int64) (uint32, error) {
	resp, err := h.roundTrip(&Command{Opcode: OpCreateNS, Offset: uint64(size)})
	if err := checkResp(resp, err, "create-ns"); err != nil {
		return 0, err
	}
	return uint32(resp.Value), nil
}

// DeleteNamespace reclaims a namespace on the target.
func (h *Host) DeleteNamespace(nsid uint32) error {
	resp, err := h.roundTrip(&Command{Opcode: OpDeleteNS, NSID: nsid})
	return checkResp(resp, err, "delete-ns")
}

// NamespaceInfo describes one exported namespace.
type NamespaceInfo struct {
	NSID uint32
	Size int64
}

// decodeNamespaceList parses a LIST-NS payload (shared by Host and
// HostPool).
func decodeNamespaceList(data []byte) ([]NamespaceInfo, error) {
	if len(data)%12 != 0 {
		return nil, fmt.Errorf("nvmeof: list-ns returned %d bytes, not a multiple of 12: %w",
			len(data), ErrBadResponse)
	}
	out := make([]NamespaceInfo, 0, len(data)/12)
	for off := 0; off < len(data); off += 12 {
		out = append(out, NamespaceInfo{
			NSID: binary.LittleEndian.Uint32(data[off:]),
			Size: int64(binary.LittleEndian.Uint64(data[off+4:])),
		})
	}
	return out, nil
}

// ListNamespaces enumerates the target's exports.
func (h *Host) ListNamespaces() ([]NamespaceInfo, error) {
	resp, err := h.roundTrip(&Command{Opcode: OpListNS})
	if err := checkResp(resp, err, "list-ns"); err != nil {
		return nil, err
	}
	out, err := decodeNamespaceList(resp.Data)
	if err != nil {
		return nil, h.noteBadResponse(err)
	}
	return out, nil
}

// Close tears down the queue pair.
func (h *Host) Close() error {
	return h.conn.Close()
}
