package nvmeof

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nvme-cr/nvmecr/internal/telemetry"
)

// ErrTimeout reports that a command's deadline expired before its
// completion arrived. The queue pair itself stays healthy: a late
// completion is discarded when it eventually arrives.
var ErrTimeout = errors.New("nvmeof: command deadline exceeded")

// ErrBadResponse reports a protocol violation by the target: a
// completion whose payload disagrees with what the command requested.
var ErrBadResponse = errors.New("nvmeof: malformed response from target")

// defaultBusyPollSpins is how many reap-then-yield iterations a waiter
// spins before parking when busy-poll is enabled without an explicit
// budget.
const defaultBusyPollSpins = 128

// HostConfig tunes one queue pair.
type HostConfig struct {
	// CommandTimeout bounds every command round trip on this queue
	// pair. Zero means commands wait indefinitely.
	CommandTimeout time.Duration
	// Dial opens the transport connection (default net.Dial over TCP).
	// Fault-injection tests pass FaultDialer here to interpose on the
	// byte stream without touching the capsule protocol.
	Dial func(addr string) (net.Conn, error)
	// Telemetry is the registry the queue pair records into. Nil gets
	// a private registry, so Snapshot always reports live counts.
	Telemetry *telemetry.Registry
	// TelemetryQP is the queue-pair label for this host's series
	// (a HostPool passes the slot index; standalone hosts use 0).
	TelemetryQP int
	// Tracer, when non-nil, makes the queue pair offer the trace
	// capsule extension at CONNECT and, once negotiated, stamp every
	// command with a trace ID and emit one correlated "nvmeof.cmd"
	// span per completion carrying the target-reported wire/queue/
	// service phase breakdown. Nil keeps the legacy wire format and
	// adds zero bytes to any capsule.
	Tracer *telemetry.Tracer
	// Flight is the flight recorder completed commands are logged to
	// (a HostPool passes its shared, lock-striped recorder so every
	// slot lands in its own ring). Nil gets a private recorder of
	// DefaultFlightDepth.
	Flight *FlightRecorder
	// Batch configures the submission batcher: concurrent submissions
	// coalesce into one vectored wire write per batch (see BatchConfig).
	// The zero value keeps the direct, one-flush-per-command path.
	Batch BatchConfig
	// BusyPoll makes waiters spin reaping their completion (yielding
	// between probes) before parking on the channel — the SPDK polled-
	// mode tradeoff: lower wake-up latency for burned cycles. Only
	// worth enabling when cores outnumber active queue pairs; see
	// docs/batching.md.
	BusyPoll bool
	// BusyPollSpins overrides the spin budget (default
	// defaultBusyPollSpins). Ignored unless BusyPoll is set.
	BusyPollSpins int
}

// Host is an NVMe-oF initiator over the TCP transport: one queue pair
// (connection) with pipelined command submission. Commands may be issued
// from multiple goroutines; completions are matched by command ID.
//
// All per-command state lives in a preallocated slot ring (see ring.go):
// a submission acquires a slot, its index+1 is the wire CID, and the
// read loop completes it by array index. The steady state allocates
// nothing on either the submission or the completion path.
type Host struct {
	conn net.Conn

	addr    string
	nsid    uint32
	timeout time.Duration

	sendMu sync.Mutex  // serializes capsule writes (direct path)
	iov    net.Buffers // direct-path iovec backing, under sendMu
	stage  []byte      // direct-path coalesce backing (non-TCP conns), under sendMu

	// respMu orders slot state transitions against the failure sweep
	// and guards follower lists. The state machine itself is CAS-based
	// (see ring.go), so the owner's free transition skips the lock.
	respMu sync.Mutex

	slots    []hostSlot
	freeRing *indexRing

	// inflightN counts registered commands (leaders; merged followers
	// ride in their leader's capsule) so the pool's queue-pair
	// selection can probe depth without touching slot state.
	inflightN atomic.Int32
	// failed mirrors err != nil for the same reason: Healthy is on the
	// pool's per-command path.
	failed atomic.Bool

	// batch, when non-nil, routes every submission through the
	// vectored-write batcher instead of the direct path.
	batch *batcher

	pollSpins int

	nsSize int64
	err    error
	errMu  sync.Mutex
	done   chan struct{}

	reg  *telemetry.Registry
	tel  qpTelemetry
	qpID int

	// version is the negotiated capsule version. Written by DialConfig
	// after the CONNECT round trip, read by the read loop and by every
	// submit; atomic because the read loop is already parsing when
	// negotiation completes.
	version atomic.Uint32
	tracer  *telemetry.Tracer
	flight  *FlightRecorder
}

// traceSeq and traceBase generate process-unique trace IDs: the base
// distinguishes processes (so host and target logs from different runs
// do not collide), the sequence distinguishes commands.
var (
	traceSeq  atomic.Uint64
	traceBase = uint64(time.Now().UnixNano()) << 20
)

// nextTraceID returns a non-zero trace ID (zero means "untraced").
func nextTraceID() uint64 {
	for {
		if id := traceBase ^ traceSeq.Add(1); id != 0 {
			return id
		}
	}
}

// traceIDString renders a trace ID for span attributes: hex, because
// JSON numbers above 2^53 lose precision in most consumers.
func traceIDString(id uint64) string { return fmt.Sprintf("%016x", id) }

// DialAdmin connects an admin queue pair (no namespace bound): only the
// admin command set (create/delete/list namespace) is usable on it.
func DialAdmin(addr string) (*Host, error) { return Dial(addr, 0) }

// Dial connects a queue pair to the target at addr and issues CONNECT
// for the namespace. NSID 0 yields an admin queue pair.
func Dial(addr string, nsid uint32) (*Host, error) {
	return DialConfig(addr, nsid, HostConfig{})
}

// DialConfig is Dial with explicit queue-pair configuration.
func DialConfig(addr string, nsid uint32, cfg HostConfig) (*Host, error) {
	dial := cfg.Dial
	if dial == nil {
		dial = func(a string) (net.Conn, error) { return net.Dial("tcp", a) }
	}
	conn, err := dial(addr)
	if err != nil {
		return nil, err
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.New()
	}
	flight := cfg.Flight
	if flight == nil {
		flight = NewFlightRecorder(0)
	}
	h := &Host{
		conn:     conn,
		addr:     addr,
		nsid:     nsid,
		timeout:  cfg.CommandTimeout,
		slots:    make([]hostSlot, hostQueueDepth),
		freeRing: newIndexRing(hostQueueDepth, 0),
		done:     make(chan struct{}),
		reg:      reg,
		tel:      newQPTelemetry(reg, cfg.TelemetryQP),
		qpID:     cfg.TelemetryQP,
		tracer:   cfg.Tracer,
		flight:   flight,
	}
	for i := range h.slots {
		s := &h.slots[i]
		s.idx = uint16(i)
		s.followers = s.followersInline[:0]
		h.freeRing.push(s.idx)
	}
	if cfg.Batch.Enabled {
		h.batch = &batcher{cfg: cfg.Batch.withDefaults()}
	}
	if cfg.BusyPoll {
		h.pollSpins = cfg.BusyPollSpins
		if h.pollSpins <= 0 {
			h.pollSpins = defaultBusyPollSpins
		}
	}
	go h.readLoop()
	// Offer the trace extension only when a tracer will consume it, so
	// untraced queue pairs keep the legacy wire format bit-for-bit.
	var propose uint16
	if cfg.Tracer != nil {
		propose = MaxVersion
	}
	resp, err := h.submit(&Command{Opcode: OpConnect, NSID: nsid, ProposeVersion: propose})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("nvmeof: connect: %w", err)
	}
	if resp.Status != StatusOK {
		conn.Close()
		return nil, fmt.Errorf("nvmeof: connect: %s", statusText(resp.Status))
	}
	negotiated := DecodeNegotiatedVersion(resp.Data)
	if negotiated > MaxVersion {
		conn.Close()
		return nil, fmt.Errorf("nvmeof: connect: target negotiated unsupported capsule version %d", negotiated)
	}
	h.version.Store(uint32(negotiated))
	h.nsSize = int64(resp.Value)
	return h, nil
}

// NamespaceSize returns the connected namespace's capacity.
func (h *Host) NamespaceSize() int64 { return h.nsSize }

// Addr returns the target address this queue pair dialed.
func (h *Host) Addr() string { return h.addr }

// NSID returns the namespace the queue pair connected to (0 = admin).
func (h *Host) NSID() uint32 { return h.nsid }

// Healthy reports whether the queue pair can still carry commands.
func (h *Host) Healthy() bool {
	return !h.failed.Load()
}

// InFlight returns the number of commands awaiting completion
// (including abandoned slots of timed-out commands).
func (h *Host) InFlight() int {
	return int(h.inflightN.Load())
}

// QueueDepth returns the slot-ring capacity: the most commands this
// queue pair can hold in flight at once.
func (h *Host) QueueDepth() int { return len(h.slots) }

// Telemetry returns the registry this queue pair records into, for
// exposition (e.g. the nvmecrd admin listener's /metrics).
func (h *Host) Telemetry() *telemetry.Registry { return h.reg }

// CapsuleVersion reports the capsule version negotiated at CONNECT.
func (h *Host) CapsuleVersion() uint16 { return uint16(h.version.Load()) }

// Flight returns the flight recorder holding this queue pair's last
// completed commands.
func (h *Host) Flight() *FlightRecorder { return h.flight }

// Snapshot reports the queue pair's live counters and latency
// quantiles in the unified snapshot form.
func (h *Host) Snapshot() []telemetry.HostQPSnapshot {
	return []telemetry.HostQPSnapshot{h.tel.snapshot(h.qpID, h.Healthy(), h.InFlight())}
}

// acquireSlot pops a free slot and resets the per-command state the
// previous occupant left behind (payload references are cleared here,
// at reuse, so completed commands do not pin caller buffers beyond one
// ring lap).
func (h *Host) acquireSlot() (*hostSlot, error) {
	if h.failed.Load() {
		return nil, h.lastErr()
	}
	idx, ok := h.freeRing.pop()
	if !ok {
		return nil, fmt.Errorf("nvmeof: queue full: %d commands in flight", len(h.slots))
	}
	s := &h.slots[idx]
	if s.ch == nil {
		s.ch = make(chan Response, 1)
	}
	s.cmd = Command{}
	s.vec = nil
	s.vecLen = 0
	s.reg = nil
	s.leaderStat = nil
	s.followers = s.followers[:0]
	pc := &s.pc
	for i := range pc.data {
		pc.data[i] = nil
	}
	pc.data = pc.data[:0]
	return s, nil
}

// registerSlot publishes the slot as in flight under its wire CID. Held
// against the failure sweep via respMu: a registration either errors
// out (host already failed) or is guaranteed to be swept.
func (h *Host) registerSlot(s *hostSlot) error {
	h.respMu.Lock()
	if h.failed.Load() {
		h.respMu.Unlock()
		h.freeSlot(s)
		return h.lastErr()
	}
	s.state.Store(slotInflight)
	h.respMu.Unlock()
	h.tel.ringOcc.Set(int64(h.inflightN.Add(1)))
	return nil
}

// freeSlot returns an owned slot (freshly acquired, or delivered and
// consumed) to the free ring.
func (h *Host) freeSlot(s *hostSlot) {
	if s.reg != nil {
		s.reg.unregister()
		s.reg = nil
	}
	s.state.Store(slotFree)
	h.freeRing.push(s.idx)
}

// unregisterSlot retracts a registration whose wire write failed. If a
// completion raced in anyway, it is consumed and the slot freed.
func (h *Host) unregisterSlot(s *hostSlot) {
	h.respMu.Lock()
	if s.state.CompareAndSwap(slotInflight, slotFree) {
		h.respMu.Unlock()
		h.tel.ringOcc.Set(int64(h.inflightN.Add(-1)))
		if s.reg != nil {
			s.reg.unregister()
			s.reg = nil
		}
		h.freeRing.push(s.idx)
		return
	}
	h.respMu.Unlock()
	select {
	case _, ok := <-s.ch:
		if ok {
			h.freeSlot(s)
		}
	default:
	}
}

// readLoop dispatches completions to waiting submitters. One Response
// is reused across iterations: delivery is by value into each waiter's
// buffered channel, so nothing here escapes per command.
func (h *Host) readLoop() {
	br := bufio.NewReaderSize(h.conn, 1<<20)
	// The version is consulted lazily, after each response's fixed
	// header is read: the CONNECT completion is parsed while the
	// negotiated version is still being decided, but any response that
	// could carry an extension arrives strictly after DialConfig
	// stored it.
	version := func() uint16 { return uint16(h.version.Load()) }
	var resp Response
	var scratch [protoScratchLen]byte
	for {
		if err := readResponseInto(br, version, &resp, &scratch); err != nil {
			h.fail(err)
			return
		}
		h.deliver(&resp)
	}
}

// deliver routes one completion to its slot: dispatch is an array index
// (CID = slot index + 1). An abandoned (timed-out) slot is reclaimed
// here — its CID was never reissued while the target could still answer
// it. Unknown or duplicate CIDs are dropped.
func (h *Host) deliver(resp *Response) {
	cid := int(resp.CID)
	if cid < 1 || cid > len(h.slots) {
		return
	}
	s := &h.slots[cid-1]
	h.respMu.Lock()
	switch {
	case s.state.CompareAndSwap(slotInflight, slotDelivered):
		h.inflightN.Add(-1)
		s.ch <- *resp
		h.fanOut(s, resp)
	case s.state.CompareAndSwap(slotAbandoned, slotFree):
		h.inflightN.Add(-1)
		if s.reg != nil {
			s.reg.unregister()
			s.reg = nil
		}
		h.fanOut(s, resp)
		h.freeRing.push(s.idx)
	default:
		// Duplicate or unsolicited completion: drop.
	}
	h.respMu.Unlock()
	h.tel.ringOcc.Set(int64(h.inflightN.Load()))
}

// fanOut completes the merged-WRITE followers riding in s's capsule.
// respMu must be held.
func (h *Host) fanOut(s *hostSlot, resp *Response) {
	for _, fi := range s.followers {
		f := &h.slots[fi]
		switch {
		case f.state.CompareAndSwap(slotMergeWait, slotDelivered):
			f.ch <- *resp
		case f.state.CompareAndSwap(slotAbandoned, slotFree):
			if f.reg != nil {
				f.reg.unregister()
				f.reg = nil
			}
			h.freeRing.push(fi)
		}
	}
	s.followers = s.followers[:0]
}

// fail poisons the host: all in-flight and future commands error out.
// Waiting slots are marked failed and their channels closed; they are
// never reused (the host is dead), which also keeps a late arrival on
// a half-written connection from ever completing a future command.
func (h *Host) fail(err error) {
	h.errMu.Lock()
	if h.err == nil {
		h.err = err
		h.failed.Store(true)
		close(h.done)
	}
	h.errMu.Unlock()
	h.respMu.Lock()
	for i := range h.slots {
		s := &h.slots[i]
		if s.state.CompareAndSwap(slotInflight, slotFailed) ||
			s.state.CompareAndSwap(slotMergeWait, slotFailed) {
			if s.reg != nil {
				s.reg.unregister()
				s.reg = nil
			}
			close(s.ch)
		} else if s.state.CompareAndSwap(slotAbandoned, slotFailed) {
			if s.reg != nil {
				s.reg.unregister()
				s.reg = nil
			}
		}
	}
	h.inflightN.Store(0)
	h.respMu.Unlock()
	h.tel.ringOcc.Set(0)
}

func (h *Host) lastErr() error {
	h.errMu.Lock()
	defer h.errMu.Unlock()
	if h.err != nil {
		return h.err
	}
	return fmt.Errorf("nvmeof: connection closed")
}

// submit clones cmd into a fresh slot and runs the round trip. Shared
// by the Host command set and the pool's retry loop (which reuses one
// Command value across attempts and queue pairs).
func (h *Host) submit(cmd *Command) (Response, error) {
	s, err := h.acquireSlot()
	if err != nil {
		return Response{}, err
	}
	s.cmd = *cmd
	return h.roundTrip(s)
}

// roundTrip submits one slot and records its outcome in the queue
// pair's telemetry series, its flight ring, and (when tracing) the
// trace stream. On return the slot has been freed (delivered and
// consumed), abandoned (timeout), or failed — the caller must not
// touch it again.
func (h *Host) roundTrip(s *hostSlot) (Response, error) {
	cmd := &s.cmd
	if h.tracer != nil && uint16(h.version.Load()) >= VersionTrace {
		cmd.Traced = true
		cmd.TraceID = nextTraceID()
	}
	cmd.CID = s.idx + 1
	// Capture what the observers need before awaiting: after a timeout
	// the slot can be reclaimed and reused concurrently.
	op := cmd.Opcode
	traceID := cmd.TraceID
	cid := cmd.CID
	payload := len(cmd.Data) + s.vecLen
	start := time.Now()
	var (
		resp   Response
		batchN int
		err    error
	)
	if h.batch != nil {
		resp, batchN, err = h.submitBatched(s)
	} else {
		resp, err = h.submitDirect(s)
	}
	rtt := time.Since(start)
	h.tel.observe(payload, resp, err, rtt)
	h.observeFlight(op, traceID, cid, payload, resp, err, start, rtt, batchN)
	return resp, err
}

// observeFlight logs one completed round trip into the queue pair's
// flight ring, emits the correlated span for traced completions, and
// dumps the ring on the failure modes worth a postmortem.
func (h *Host) observeFlight(op Opcode, traceID uint64, cid uint16, payload int, resp Response, err error, start time.Time, rtt time.Duration, batchN int) {
	rec := FlightRecord{
		TraceID:   traceID,
		QP:        h.qpID,
		Op:        op.String(),
		Opcode:    op,
		CID:       cid,
		Status:    resp.Status,
		Bytes:     payload + len(resp.Data),
		WallNS:    start.UnixNano(),
		ElapsedNS: int64(rtt),
		Batch:     batchN,
	}
	if resp.Phases != nil {
		rec.Phases = *resp.Phases
		rec.HasPhases = true
	}
	if err != nil {
		rec.Err = err.Error()
	}
	h.flight.Record(h.qpID, rec)
	if err == nil && resp.Phases != nil && h.tracer != nil {
		p := resp.Phases
		wire := int64(hostWirePhase(rtt, p))
		attrs := map[string]any{
			"trace_id":      traceIDString(traceID),
			"op":            op.String(),
			"qp":            h.qpID,
			"status":        resp.Status,
			"bytes":         rec.Bytes,
			"wire_ns":       wire,
			"queue_ns":      p.QueueNS,
			"service_ns":    p.ServiceNS,
			"wire_read_ns":  p.WireReadNS,
			"wire_write_ns": p.WireWriteNS,
		}
		if batchN > 0 {
			// The command went out in a vectored flush of batchN
			// capsules; its wire phase amortizes across them.
			attrs["batch_cmds"] = batchN
		}
		h.tracer.SpanWall("nvmeof.cmd", -1, start, rtt, attrs)
	}
	if errors.Is(err, ErrTimeout) {
		h.dumpFlight("timeout")
	}
}

// dumpFlight emits this queue pair's flight ring into the trace stream
// (the automatic postmortem on timeout, retry exhaustion, and protocol
// violations). Only this queue pair's ring is dumped: the failure is
// queue-pair-local and the siblings' rings keep rolling.
func (h *Host) dumpFlight(reason string) {
	if h.tracer == nil {
		return
	}
	recs := h.flight.QueuePair(h.qpID)
	if len(recs) == 0 {
		return
	}
	h.tracer.Emit(telemetry.Event{
		Name: "nvmeof.flight", Rank: -1,
		Attrs: map[string]any{"qp": h.qpID, "reason": reason, "records": recs},
	})
}

// noteBadResponse dumps the flight ring when the target violated the
// protocol, then hands the error back unchanged.
func (h *Host) noteBadResponse(err error) error {
	if errors.Is(err, ErrBadResponse) {
		h.dumpFlight("bad-response")
	}
	return err
}

// awaitResponse waits for the slot's completion, bounded by the queue
// pair's CommandTimeout if one is configured. With busy-poll enabled it
// first spins reaping the channel (yielding between probes) before
// parking. The slot is NOT freed here: on success the caller consumes
// the response and frees; on timeout ownership transfers to the read
// loop's reclaim.
//
// respTimerPool recycles the per-command timeout timers: every bounded
// round trip arms one, and allocating a runtime timer per command is
// measurable on the small-command hot path.
var respTimerPool sync.Pool

func (h *Host) awaitResponse(s *hostSlot) (Response, error) {
	if h.pollSpins > 0 {
		for i := 0; i < h.pollSpins; i++ {
			select {
			case resp, ok := <-s.ch:
				if !ok {
					return Response{}, h.lastErr()
				}
				h.tel.pollHits.Inc()
				return resp, nil
			default:
			}
			runtime.Gosched()
		}
		h.tel.pollParks.Inc()
	}
	// A plain receive covers delivery AND failure: the failure sweep
	// closes every in-flight slot's channel (under the same respMu that
	// ordered this slot's registration), so an unbounded wait needs no
	// select — the hot path is one channel op.
	if h.timeout <= 0 {
		resp, ok := <-s.ch
		if !ok {
			return Response{}, h.lastErr()
		}
		return resp, nil
	}
	timer, _ := respTimerPool.Get().(*time.Timer)
	if timer == nil {
		timer = time.NewTimer(h.timeout)
	} else {
		timer.Reset(h.timeout)
	}
	defer func() {
		if !timer.Stop() {
			// Fired (or we consumed the tick in the timeout
			// branch): drain so the recycled timer starts clean.
			select {
			case <-timer.C:
			default:
			}
		}
		respTimerPool.Put(timer)
	}()
	select {
	case resp, ok := <-s.ch:
		if !ok {
			return Response{}, h.lastErr()
		}
		return resp, nil
	case <-timer.C:
		// Abandon the slot rather than freeing it: the target may
		// still be processing, and the CID must not be reissued while
		// a stale completion could answer a future command. The read
		// loop reclaims the slot when the late completion arrives.
		// Only this waiter detaches — a merged sibling may still be
		// inside its own deadline.
		h.respMu.Lock()
		if s.state.CompareAndSwap(slotInflight, slotAbandoned) ||
			s.state.CompareAndSwap(slotMergeWait, slotAbandoned) {
			h.respMu.Unlock()
			return Response{}, fmt.Errorf("%w (%v)", ErrTimeout, h.timeout)
		}
		h.respMu.Unlock()
		// Delivered in the race (the value is already buffered — the
		// send happens under respMu) or failed (channel closed).
		resp, ok := <-s.ch
		if !ok {
			return Response{}, h.lastErr()
		}
		return resp, nil
	}
}

// submitDirect sends one slot's command as a single vectored write —
// header and payload as separate iovecs, no intermediate copy — and
// waits for its completion.
func (h *Host) submitDirect(s *hostSlot) (Response, error) {
	if err := validateCommand(&s.cmd, uint16(h.version.Load()), s.vecLen); err != nil {
		h.freeSlot(s)
		return Response{}, err
	}
	if err := h.registerSlot(s); err != nil {
		return Response{}, err
	}
	h.sendMu.Lock()
	n := encodeCommandHeaderIntoN(s.pc.hdrBuf[:], &s.cmd, len(s.cmd.Data)+s.vecLen)
	iov := append(h.iov[:0], s.pc.hdrBuf[:n])
	if s.vec != nil {
		iov = append(iov, s.vec...)
	} else if len(s.cmd.Data) > 0 {
		iov = append(iov, s.cmd.Data)
	}
	h.iov = iov[:0] // retain the (possibly grown) backing for reuse
	err := writeBuffers(h.conn, iov, &h.stage)
	h.sendMu.Unlock()
	if err != nil {
		h.unregisterSlot(s)
		return Response{}, err
	}
	resp, err := h.awaitResponse(s)
	if err != nil {
		return resp, err
	}
	h.freeSlot(s)
	return resp, nil
}

// writeBuffers puts one or more whole capsules on the wire. On a real
// TCP connection the buffers go out as a single writev, no copy. On a
// wrapped connection (fault injection, test doubles) they are coalesced
// into one reusable staging buffer first: wrappers classify each Write
// call as one frame, so a capsule must never be split across calls.
// The caller owns stage's serialization (sendMu on the direct path, the
// flushing flag on the batched path). Consumed entries of bufs are
// nil'ed either way, so the retained iovec backing pins no payloads.
func writeBuffers(conn net.Conn, bufs net.Buffers, stage *[]byte) error {
	if _, ok := conn.(*net.TCPConn); ok {
		_, err := bufs.WriteTo(conn)
		return err
	}
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	flat := (*stage)[:0]
	if cap(flat) < total {
		flat = make([]byte, 0, total)
	}
	for i, b := range bufs {
		flat = append(flat, b...)
		bufs[i] = nil
	}
	*stage = flat[:0]
	_, err := conn.Write(flat)
	return err
}

// checkResp folds a round-trip error and a completion status into one
// error (shared by Host and HostPool).
func checkResp(resp Response, err error, op string) error {
	if err != nil {
		return fmt.Errorf("nvmeof: %s: %w", op, err)
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("nvmeof: %s: %s", op, statusText(resp.Status))
	}
	return nil
}

// validateReadLength rejects read lengths the protocol cannot carry,
// before the int64 is truncated into the capsule's uint32 field.
func validateReadLength(length int64) error {
	if length < 0 {
		return fmt.Errorf("nvmeof: read: negative length %d", length)
	}
	if length > MaxDataLen {
		return fmt.Errorf("nvmeof: read: length %d exceeds capsule limit %d", length, MaxDataLen)
	}
	return nil
}

// validateReadData checks a READ completion's payload against the
// requested length: short, oversized, or missing data is a protocol
// violation, never silently padded or passed through.
func validateReadData(resp Response, length int64) ([]byte, error) {
	if int64(len(resp.Data)) != length {
		return nil, fmt.Errorf("nvmeof: read: target returned %d bytes, want %d: %w",
			len(resp.Data), length, ErrBadResponse)
	}
	if resp.Data == nil {
		return []byte{}, nil
	}
	return resp.Data, nil
}

// WriteAt writes data at the namespace offset. The payload is aliased,
// not copied: it rides to the socket as its own iovec, and the caller
// must not mutate it until WriteAt returns (see docs/batching.md for
// the registration contract on the timeout path).
func (h *Host) WriteAt(off int64, data []byte) error {
	s, err := h.acquireSlot()
	if err != nil {
		return fmt.Errorf("nvmeof: write: %w", err)
	}
	s.cmd = Command{Opcode: OpWriteCmd, Offset: uint64(off), Data: data}
	resp, err := h.roundTrip(s)
	return checkResp(resp, err, "write")
}

// WriteAtV writes the concatenation of bufs at the namespace offset as
// ONE command: each slice rides as its own iovec into the vectored wire
// write, so a striped or scattered payload needs no gather copy. The
// same aliasing contract as WriteAt applies to every slice.
func (h *Host) WriteAtV(off int64, bufs [][]byte) error {
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	if total == 0 {
		return nil
	}
	s, err := h.acquireSlot()
	if err != nil {
		return fmt.Errorf("nvmeof: write: %w", err)
	}
	s.cmd = Command{Opcode: OpWriteCmd, Offset: uint64(off)}
	s.vec = bufs
	s.vecLen = total
	resp, err := h.roundTrip(s)
	return checkResp(resp, err, "write")
}

// WriteAtBuffer writes a registered buffer's contents at the namespace
// offset. The buffer stays registered (pinned) until the transport is
// provably done with its bytes — including the timeout path, where the
// capsule may still be awaiting a batched flush after WriteAtBuffer
// returned. Buffer.Release panics while the pin is held, which is the
// use-after-register detection the zero-copy contract needs.
func (h *Host) WriteAtBuffer(off int64, buf *Buffer) error {
	s, err := h.acquireSlot()
	if err != nil {
		return fmt.Errorf("nvmeof: write: %w", err)
	}
	s.cmd = Command{Opcode: OpWriteCmd, Offset: uint64(off), Data: buf.Bytes()}
	buf.register()
	s.reg = buf
	resp, err := h.roundTrip(s)
	return checkResp(resp, err, "write")
}

// ReadAt reads length bytes from the namespace offset.
func (h *Host) ReadAt(off, length int64) ([]byte, error) {
	if err := validateReadLength(length); err != nil {
		return nil, err
	}
	s, err := h.acquireSlot()
	if err != nil {
		return nil, fmt.Errorf("nvmeof: read: %w", err)
	}
	s.cmd = Command{Opcode: OpReadCmd, Offset: uint64(off), Length: uint32(length)}
	resp, err := h.roundTrip(s)
	if err := checkResp(resp, err, "read"); err != nil {
		return nil, err
	}
	data, err := validateReadData(resp, length)
	if err != nil {
		return nil, h.noteBadResponse(err)
	}
	return data, nil
}

// Flush issues a durability barrier.
func (h *Host) Flush() error {
	resp, err := h.submit(&Command{Opcode: OpFlushCmd})
	return checkResp(resp, err, "flush")
}

// Identify re-reads the namespace properties.
func (h *Host) Identify() (int64, error) {
	resp, err := h.submit(&Command{Opcode: OpIdentify})
	if err := checkResp(resp, err, "identify"); err != nil {
		return 0, err
	}
	return int64(resp.Value), nil
}

// CreateNamespace asks the target to create a namespace of the given
// size (an admin command; the scheduler's storage-grant path). It
// returns the new NSID.
func (h *Host) CreateNamespace(size int64) (uint32, error) {
	resp, err := h.submit(&Command{Opcode: OpCreateNS, Offset: uint64(size)})
	if err := checkResp(resp, err, "create-ns"); err != nil {
		return 0, err
	}
	return uint32(resp.Value), nil
}

// DeleteNamespace reclaims a namespace on the target.
func (h *Host) DeleteNamespace(nsid uint32) error {
	resp, err := h.submit(&Command{Opcode: OpDeleteNS, NSID: nsid})
	return checkResp(resp, err, "delete-ns")
}

// NamespaceInfo describes one exported namespace.
type NamespaceInfo struct {
	NSID uint32
	Size int64
}

// decodeNamespaceList parses a LIST-NS payload (shared by Host and
// HostPool).
func decodeNamespaceList(data []byte) ([]NamespaceInfo, error) {
	if len(data)%12 != 0 {
		return nil, fmt.Errorf("nvmeof: list-ns returned %d bytes, not a multiple of 12: %w",
			len(data), ErrBadResponse)
	}
	out := make([]NamespaceInfo, 0, len(data)/12)
	for off := 0; off < len(data); off += 12 {
		out = append(out, NamespaceInfo{
			NSID: binary.LittleEndian.Uint32(data[off:]),
			Size: int64(binary.LittleEndian.Uint64(data[off+4:])),
		})
	}
	return out, nil
}

// ListNamespaces enumerates the target's exports.
func (h *Host) ListNamespaces() ([]NamespaceInfo, error) {
	resp, err := h.submit(&Command{Opcode: OpListNS})
	if err := checkResp(resp, err, "list-ns"); err != nil {
		return nil, err
	}
	out, err := decodeNamespaceList(resp.Data)
	if err != nil {
		return nil, h.noteBadResponse(err)
	}
	return out, nil
}

// Close tears down the queue pair.
func (h *Host) Close() error {
	return h.conn.Close()
}
