package nvmeof

import (
	"fmt"
	"sync"

	"github.com/nvme-cr/nvmecr/internal/balancer"
	"github.com/nvme-cr/nvmecr/internal/plane"
	"github.com/nvme-cr/nvmecr/internal/sim"
)

// StripedPlane is a plane.Plane that shards a rank's partition across
// several NVMe-oF targets RAID-0 style, using the balancer's stripe
// geometry: unit-sized blocks rotate round-robin over the child planes,
// and a request touching several targets issues its per-target spans
// concurrently through each target's own queue. This is the wide data
// path the paper's aggregate-bandwidth claim rests on (§IV, Fig. 7):
// one rank drives N devices at once instead of queueing behind one.
//
// Semantics relative to a single-target plane:
//
//   - Write/Read are byte-identical to the same operations against one
//     target of N times the capacity (the equivalence property test
//     pins this).
//   - Flush is a barrier across ALL children: it succeeds only when
//     every child's flush succeeds, because a striped write's units
//     land on every target and durability of some stripes is not
//     durability of the data.
//   - Read propagates the plane.Plane nil contract consistently: if
//     ANY child does not capture payloads (returns nil), the striped
//     read is nil — never a partially-populated buffer masquerading
//     as data.
type StripedPlane struct {
	children []plane.Plane
	geo      balancer.StripeGeometry
	size     int64
}

// NewStripedPlane stripes across children in order with the given unit
// size. Children are typically *TCPPlane partitions on distinct
// targets, but any plane.Plane works (the simulator's planes included).
// The striped capacity is geometry-limited by the smallest child: every
// child contributes the same whole number of units.
func NewStripedPlane(children []plane.Plane, unit int64) (*StripedPlane, error) {
	geo := balancer.StripeGeometry{Targets: len(children), Unit: unit}
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	minSize := children[0].Size()
	for _, c := range children[1:] {
		if s := c.Size(); s < minSize {
			minSize = s
		}
	}
	size := geo.UsableSize(minSize)
	if size <= 0 {
		return nil, fmt.Errorf("nvmeof: stripe unit %d exceeds smallest child of %d bytes", unit, minSize)
	}
	return &StripedPlane{children: children, geo: geo, size: size}, nil
}

// Geometry returns the stripe layout.
func (s *StripedPlane) Geometry() balancer.StripeGeometry { return s.geo }

// Size implements plane.Plane.
func (s *StripedPlane) Size() int64 { return s.size }

func (s *StripedPlane) check(off, length int64) error {
	if off < 0 || length < 0 || off+length > s.size {
		return fmt.Errorf("nvmeof: access [%d,+%d) outside striped partition of %d bytes", off, length, s.size)
	}
	return nil
}

// forEachSpan runs fn over the request's per-target spans: concurrently
// when no simulated process is attached (the real TCP path, where
// concurrency is the point), sequentially under the simulator (where
// determinism is the point and the children charge virtual time).
// The first error wins; all spans are always attempted, so a striped
// write failing on one target still lands its other units — the same
// partial-write exposure a failed chunked TCPPlane write has, and why
// callers treat any write error as "durability unknown until re-proven".
func (s *StripedPlane) forEachSpan(p *sim.Proc, spans []balancer.StripeSpan, fn func(sp balancer.StripeSpan) error) error {
	if p != nil || len(spans) == 1 {
		var firstErr error
		for _, sp := range spans {
			if err := fn(sp); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	errs := make([]error, len(spans))
	var wg sync.WaitGroup
	for i, sp := range spans {
		wg.Add(1)
		go func(i int, sp balancer.StripeSpan) {
			defer wg.Done()
			errs[i] = fn(sp)
		}(i, sp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Write implements plane.Plane. Synthetic (nil-data) writes stay
// synthetic per span: each child sees nil data for its unit, exactly
// as a single-target plane would for the whole transfer.
func (s *StripedPlane) Write(p *sim.Proc, off, length int64, data []byte, cmdUnit int64) error {
	if err := s.check(off, length); err != nil {
		return err
	}
	if data != nil && int64(len(data)) != length {
		return fmt.Errorf("nvmeof: striped write of %d bytes with %d-byte buffer", length, len(data))
	}
	if length == 0 {
		return nil
	}
	spans := s.geo.Spans(off, length)
	return s.forEachSpan(p, spans, func(sp balancer.StripeSpan) error {
		var chunk []byte
		if data != nil {
			rel := sp.Off - off
			chunk = data[rel : rel+sp.Length]
		}
		return s.children[sp.Target].Write(p, sp.TargetOff, sp.Length, chunk, cmdUnit)
	})
}

// Read implements plane.Plane. The nil contract is all-or-nothing: a
// single non-capturing child makes the whole read nil (see the type
// comment), so callers never see a buffer with silent zero holes.
func (s *StripedPlane) Read(p *sim.Proc, off, length int64, cmdUnit int64) ([]byte, error) {
	if err := s.check(off, length); err != nil {
		return nil, err
	}
	if length == 0 {
		return nil, nil
	}
	spans := s.geo.Spans(off, length)
	out := make([]byte, length)
	var mu sync.Mutex
	sawNil := false
	err := s.forEachSpan(p, spans, func(sp balancer.StripeSpan) error {
		chunk, err := s.children[sp.Target].Read(p, sp.TargetOff, sp.Length, cmdUnit)
		if err != nil {
			return err
		}
		if chunk == nil {
			mu.Lock()
			sawNil = true
			mu.Unlock()
			return nil
		}
		if int64(len(chunk)) != sp.Length {
			return fmt.Errorf("nvmeof: stripe target %d returned %d bytes, want %d", sp.Target, len(chunk), sp.Length)
		}
		copy(out[sp.Off-off:], chunk)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if sawNil {
		return nil, nil
	}
	return out, nil
}

// Flush implements plane.Plane: a durability barrier across every
// child. All children are flushed even after a failure (their stripes
// deserve durability regardless); the first error is returned.
func (s *StripedPlane) Flush(p *sim.Proc) error {
	idx := make([]balancer.StripeSpan, len(s.children))
	for i := range idx {
		idx[i] = balancer.StripeSpan{Target: i}
	}
	return s.forEachSpan(p, idx, func(sp balancer.StripeSpan) error {
		return s.children[sp.Target].Flush(p)
	})
}

var _ plane.Plane = (*StripedPlane)(nil)
