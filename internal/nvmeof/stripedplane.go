package nvmeof

import (
	"fmt"
	"sync"

	"github.com/nvme-cr/nvmecr/internal/balancer"
	"github.com/nvme-cr/nvmecr/internal/plane"
	"github.com/nvme-cr/nvmecr/internal/sim"
)

// StripedPlane is a plane.Plane that shards a rank's partition across
// several NVMe-oF targets RAID-0 style, using the balancer's stripe
// geometry: unit-sized blocks rotate round-robin over the child planes,
// and a request touching several targets issues its per-target spans
// concurrently through each target's own queue. This is the wide data
// path the paper's aggregate-bandwidth claim rests on (§IV, Fig. 7):
// one rank drives N devices at once instead of queueing behind one.
//
// Semantics relative to a single-target plane:
//
//   - Write/Read are byte-identical to the same operations against one
//     target of N times the capacity (the equivalence property test
//     pins this).
//   - Flush is a barrier across ALL children: it succeeds only when
//     every child's flush succeeds, because a striped write's units
//     land on every target and durability of some stripes is not
//     durability of the data.
//   - Read propagates the plane.Plane nil contract consistently: if
//     ANY child does not capture payloads (returns nil), the striped
//     read is nil — never a partially-populated buffer masquerading
//     as data.
type StripedPlane struct {
	children []plane.Plane
	geo      balancer.StripeGeometry
	size     int64
}

// NewStripedPlane stripes across children in order with the given unit
// size. Children are typically *TCPPlane partitions on distinct
// targets, but any plane.Plane works (the simulator's planes included).
// The striped capacity is geometry-limited by the smallest child: every
// child contributes the same whole number of units.
func NewStripedPlane(children []plane.Plane, unit int64) (*StripedPlane, error) {
	geo := balancer.StripeGeometry{Targets: len(children), Unit: unit}
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	minSize := children[0].Size()
	for _, c := range children[1:] {
		if s := c.Size(); s < minSize {
			minSize = s
		}
	}
	size := geo.UsableSize(minSize)
	if size <= 0 {
		return nil, fmt.Errorf("nvmeof: stripe unit %d exceeds smallest child of %d bytes", unit, minSize)
	}
	return &StripedPlane{children: children, geo: geo, size: size}, nil
}

// Geometry returns the stripe layout.
func (s *StripedPlane) Geometry() balancer.StripeGeometry { return s.geo }

// Size implements plane.Plane.
func (s *StripedPlane) Size() int64 { return s.size }

func (s *StripedPlane) check(off, length int64) error {
	if off < 0 || length < 0 || off+length > s.size {
		return fmt.Errorf("nvmeof: access [%d,+%d) outside striped partition of %d bytes", off, length, s.size)
	}
	return nil
}

// forEachSpan runs fn over the request's per-target spans: concurrently
// when no simulated process is attached (the real TCP path, where
// concurrency is the point), sequentially under the simulator (where
// determinism is the point and the children charge virtual time).
// The first error wins; all spans are always attempted, so a striped
// write failing on one target still lands its other units — the same
// partial-write exposure a failed chunked TCPPlane write has, and why
// callers treat any write error as "durability unknown until re-proven".
func (s *StripedPlane) forEachSpan(p *sim.Proc, spans []balancer.StripeSpan, fn func(sp balancer.StripeSpan) error) error {
	if p != nil || len(spans) == 1 {
		var firstErr error
		for _, sp := range spans {
			if err := fn(sp); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	errs := make([]error, len(spans))
	var wg sync.WaitGroup
	for i, sp := range spans {
		wg.Add(1)
		go func(i int, sp balancer.StripeSpan) {
			defer wg.Done()
			errs[i] = fn(sp)
		}(i, sp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// stripeGroup is one target's share of a striped request. A contiguous
// striped range touches each target in a contiguous run of that
// target's own address space (partial units can only occur at the two
// request ends), so the member spans coalesce into a single
// [targetOff, targetOff+length) extent per target and the whole request
// becomes one command per TARGET instead of one command per stripe
// unit. That per-unit fan-out was the striped-plane scaling regression:
// a 1 MiB write over two targets at a 64 KiB unit issued 16 goroutines
// and 16 capsules, each paying full per-command device latency, so two
// targets ran slower than one.
type stripeGroup struct {
	target    int
	targetOff int64
	length    int64
	count     int // member spans, in striped-address order
	vecOff    int // first slot of this group's gather vector in the shared backing
}

// inlineStripeGroups sizes the stack backing for per-target groups;
// wider stripes spill to the heap, they don't fail.
const inlineStripeGroups = 8

// groupSpans coalesces spans per target into buf. It returns ok=false
// if any target's spans are not contiguous on that target — geometry
// guarantees they are for the balancer's round-robin striping, but the
// caller falls back to the span-at-a-time path rather than trusting
// that invariant with data placement.
func groupSpans(spans []balancer.StripeSpan, buf []stripeGroup) ([]stripeGroup, bool) {
	groups := buf[:0]
	for _, sp := range spans {
		found := false
		for gi := range groups {
			if groups[gi].target != sp.Target {
				continue
			}
			if groups[gi].targetOff+groups[gi].length != sp.TargetOff {
				return nil, false
			}
			groups[gi].length += sp.Length
			groups[gi].count++
			found = true
			break
		}
		if !found {
			groups = append(groups, stripeGroup{
				target:    sp.Target,
				targetOff: sp.TargetOff,
				length:    sp.Length,
				count:     1,
			})
		}
	}
	return groups, true
}

// Write implements plane.Plane. Synthetic (nil-data) writes stay
// synthetic per span: each child sees nil data for its unit, exactly
// as a single-target plane would for the whole transfer.
func (s *StripedPlane) Write(p *sim.Proc, off, length int64, data []byte, cmdUnit int64) error {
	if err := s.check(off, length); err != nil {
		return err
	}
	if data != nil && int64(len(data)) != length {
		return fmt.Errorf("nvmeof: striped write of %d bytes with %d-byte buffer", length, len(data))
	}
	if length == 0 {
		return nil
	}
	spans := s.geo.Spans(off, length)
	if p == nil && len(spans) > 1 {
		var buf [inlineStripeGroups]stripeGroup
		if groups, ok := groupSpans(spans, buf[:]); ok {
			return s.writeGrouped(spans, groups, off, data, cmdUnit)
		}
	}
	return s.forEachSpan(p, spans, func(sp balancer.StripeSpan) error {
		var chunk []byte
		if data != nil {
			rel := sp.Off - off
			chunk = data[rel : rel+sp.Length]
		}
		return s.children[sp.Target].Write(p, sp.TargetOff, sp.Length, chunk, cmdUnit)
	})
}

// writeGrouped issues the striped write as one request per target: a
// gather-list WriteV when the child can take one (TCPPlane over a
// VectorQueue initiator — fully zero-copy), per-piece Writes otherwise.
// Like forEachSpan, every target is attempted and the first error wins;
// a partial failure leaves the other targets' stripes landed, the same
// exposure a failed chunked single-target write has.
func (s *StripedPlane) writeGrouped(spans []balancer.StripeSpan, groups []stripeGroup, off int64, data []byte, cmdUnit int64) error {
	var vecs [][]byte
	if data != nil {
		// One shared backing for every group's gather vector: group g
		// owns vecs[g.vecOff : g.vecOff+g.count], filled in
		// striped-address order (which is target-offset order within a
		// group, since the group is contiguous on its target).
		vecs = make([][]byte, len(spans))
		pos := 0
		for gi := range groups {
			groups[gi].vecOff = pos
			pos += groups[gi].count
			vec := vecs[groups[gi].vecOff:groups[gi].vecOff]
			for _, sp := range spans {
				if sp.Target != groups[gi].target {
					continue
				}
				rel := sp.Off - off
				vec = append(vec, data[rel:rel+sp.Length])
			}
		}
	}
	var errsBuf [inlineStripeGroups]error
	errs := errsBuf[:]
	if len(groups) > len(errs) {
		errs = make([]error, len(groups))
	}
	var wg sync.WaitGroup
	for gi := range groups {
		g := &groups[gi]
		wg.Add(1)
		go func(gi int, g *stripeGroup) {
			defer wg.Done()
			child := s.children[g.target]
			if data == nil {
				errs[gi] = child.Write(nil, g.targetOff, g.length, nil, cmdUnit)
				return
			}
			vec := vecs[g.vecOff : g.vecOff+g.count]
			if len(vec) == 1 {
				errs[gi] = child.Write(nil, g.targetOff, g.length, vec[0], cmdUnit)
				return
			}
			if vw, ok := child.(plane.VectorWriter); ok {
				errs[gi] = vw.WriteV(nil, g.targetOff, vec)
				return
			}
			toff := g.targetOff
			for _, b := range vec {
				if err := child.Write(nil, toff, int64(len(b)), b, cmdUnit); err != nil {
					errs[gi] = err
					return
				}
				toff += int64(len(b))
			}
		}(gi, g)
	}
	wg.Wait()
	for _, err := range errs[:len(groups)] {
		if err != nil {
			return err
		}
	}
	return nil
}

// Read implements plane.Plane. The nil contract is all-or-nothing: a
// single non-capturing child makes the whole read nil (see the type
// comment), so callers never see a buffer with silent zero holes.
func (s *StripedPlane) Read(p *sim.Proc, off, length int64, cmdUnit int64) ([]byte, error) {
	if err := s.check(off, length); err != nil {
		return nil, err
	}
	if length == 0 {
		return nil, nil
	}
	spans := s.geo.Spans(off, length)
	if p == nil && len(spans) > 1 {
		var buf [inlineStripeGroups]stripeGroup
		if groups, ok := groupSpans(spans, buf[:]); ok {
			return s.readGrouped(spans, groups, off, length, cmdUnit)
		}
	}
	out := make([]byte, length)
	var mu sync.Mutex
	sawNil := false
	err := s.forEachSpan(p, spans, func(sp balancer.StripeSpan) error {
		chunk, err := s.children[sp.Target].Read(p, sp.TargetOff, sp.Length, cmdUnit)
		if err != nil {
			return err
		}
		if chunk == nil {
			mu.Lock()
			sawNil = true
			mu.Unlock()
			return nil
		}
		if int64(len(chunk)) != sp.Length {
			return fmt.Errorf("nvmeof: stripe target %d returned %d bytes, want %d", sp.Target, len(chunk), sp.Length)
		}
		copy(out[sp.Off-off:], chunk)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if sawNil {
		return nil, nil
	}
	return out, nil
}

// readGrouped issues one contiguous read per target and scatters each
// target's chunk back into stripe order. The nil contract holds: any
// child returning nil makes the whole read nil.
func (s *StripedPlane) readGrouped(spans []balancer.StripeSpan, groups []stripeGroup, off, length int64, cmdUnit int64) ([]byte, error) {
	var chunksBuf [inlineStripeGroups][]byte
	var errsBuf [inlineStripeGroups]error
	chunks, errs := chunksBuf[:], errsBuf[:]
	if len(groups) > inlineStripeGroups {
		chunks, errs = make([][]byte, len(groups)), make([]error, len(groups))
	}
	var wg sync.WaitGroup
	for gi := range groups {
		g := &groups[gi]
		wg.Add(1)
		go func(gi int, g *stripeGroup) {
			defer wg.Done()
			chunks[gi], errs[gi] = s.children[g.target].Read(nil, g.targetOff, g.length, cmdUnit)
		}(gi, g)
	}
	wg.Wait()
	for _, err := range errs[:len(groups)] {
		if err != nil {
			return nil, err
		}
	}
	for gi := range groups {
		g := &groups[gi]
		if chunks[gi] == nil {
			return nil, nil
		}
		if int64(len(chunks[gi])) != g.length {
			return nil, fmt.Errorf("nvmeof: stripe target %d returned %d bytes, want %d", g.target, len(chunks[gi]), g.length)
		}
	}
	out := make([]byte, length)
	for gi := range groups {
		g := &groups[gi]
		pos := int64(0)
		for _, sp := range spans {
			if sp.Target != g.target {
				continue
			}
			copy(out[sp.Off-off:sp.Off-off+sp.Length], chunks[gi][pos:pos+sp.Length])
			pos += sp.Length
		}
	}
	return out, nil
}

// Flush implements plane.Plane: a durability barrier across every
// child. All children are flushed even after a failure (their stripes
// deserve durability regardless); the first error is returned.
func (s *StripedPlane) Flush(p *sim.Proc) error {
	idx := make([]balancer.StripeSpan, len(s.children))
	for i := range idx {
		idx[i] = balancer.StripeSpan{Target: i}
	}
	return s.forEachSpan(p, idx, func(sp balancer.StripeSpan) error {
		return s.children[sp.Target].Flush(p)
	})
}

var _ plane.Plane = (*StripedPlane)(nil)
