package nvmeof

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"github.com/nvme-cr/nvmecr/internal/balancer"
	"github.com/nvme-cr/nvmecr/internal/plane"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/telemetry"
)

// StripedPlane is a plane.Plane that shards a rank's partition across
// several NVMe-oF targets, using the balancer's stripe geometry:
// unit-sized blocks rotate round-robin over mirror GROUPS of child
// planes, and a request touching several groups issues its per-group
// spans concurrently through each target's own queue. This is the wide
// data path the paper's aggregate-bandwidth claim rests on (§IV,
// Fig. 7): one rank drives N devices at once instead of queueing behind
// one. With Replicas R > 1 (NewMirroredPlane) every group keeps R
// identical copies, so any R-1 members of a group can die without
// losing an acknowledged byte — the availability layer RAID-0 lacked.
//
// Semantics relative to a single-target plane:
//
//   - Write/Read are byte-identical to the same operations against one
//     target of Groups() times the capacity (the equivalence property
//     tests pin this, mirrored widths included).
//   - A write is acknowledged only when EVERY attached (live or
//     rebuilding) member of every touched group has it. Members marked
//     Down are skipped — that is the degraded mode a dead replica
//     leaves behind — and a group with every member down fails with
//     ErrNoReplica instead of hanging.
//   - A read is served by any one LIVE member of each touched group
//     (rebuilding members hold incomplete copies and never serve
//     reads). Large spans split across live members for aggregate
//     bandwidth; a failing member fails over to its siblings, and only
//     when every live member has failed does the read error.
//   - Flush is a barrier across ALL attached children: it succeeds only
//     when every live and rebuilding child's flush succeeds, because a
//     striped write's units land on every member and durability of
//     some copies is not durability of the data.
//   - Read propagates the plane.Plane nil contract consistently: if
//     ANY child consulted by the request does not capture payloads
//     (returns nil), the striped read is nil — never a partially
//     populated buffer masquerading as data.
//
// Children can be replaced and re-admitted while traffic flows
// (SetChildDown / BeginRebuild / SyncChunk / SetChildLive) — the
// migration control plane in internal/rebalance drives that dance off
// health.Engine verdicts. Child indices are stable for the plane's
// lifetime: replacement swaps the plane at an index, never reshuffles
// the slice, so span grouping computed against one snapshot can never
// address the wrong member.
type StripedPlane struct {
	geo       balancer.StripeGeometry
	logical   balancer.StripeGeometry // group-level RAID-0 layout for span math
	size      int64
	childSize int64 // usable bytes on every member

	// mu guards children and states. Ops snapshot both under RLock and
	// run against the snapshot; control-plane transitions take Lock.
	mu       sync.RWMutex
	children []plane.Plane
	states   []ChildState

	// sweepMu orders writes against rebuild chunk syncs: every write
	// holds it shared for the write's whole lifetime (membership
	// snapshot included), SyncChunk holds it exclusive per chunk. A
	// write therefore either sees the rebuilding member and copies to
	// it directly, or completes on the live members before the chunk
	// covering its range is swept from one of them.
	sweepMu sync.RWMutex

	readRR atomic.Uint64 // round-robin cursor for mirror read balance

	verifyReads atomic.Bool

	repairs   atomic.Pointer[telemetry.Counter]
	failovers atomic.Pointer[telemetry.Counter]
	degraded  atomic.Pointer[telemetry.Counter]
}

// ChildState is one member's availability within its mirror group.
type ChildState int32

const (
	// ChildLive serves reads and receives writes.
	ChildLive ChildState = iota
	// ChildDown is excluded from reads and writes: dead or draining.
	// Its data is stale the moment a sibling accepts a write; it must
	// be rebuilt (or replaced) before going live again.
	ChildDown
	// ChildRebuilding receives writes but never serves reads: a
	// replacement being populated by SyncChunk sweeps while traffic
	// flows.
	ChildRebuilding
)

func (c ChildState) String() string {
	switch c {
	case ChildLive:
		return "live"
	case ChildDown:
		return "down"
	case ChildRebuilding:
		return "rebuilding"
	default:
		return fmt.Sprintf("ChildState(%d)", int32(c))
	}
}

// ErrNoReplica is returned when every member of a touched mirror group
// is down: the request cannot be served, degraded or otherwise. Typed
// so callers can tell total group loss from a transient member error.
var ErrNoReplica = errors.New("nvmeof: no replica available")

// Mirror-plane metric names (registered by Instrument).
const (
	// MetricStripeReadFailovers counts reads re-served by a sibling
	// after a live member failed.
	MetricStripeReadFailovers = "nvmecr_stripe_read_failovers_total"
	// MetricStripeReadRepairs counts divergent replicas rewritten by
	// verify-reads read-repair.
	MetricStripeReadRepairs = "nvmecr_stripe_read_repairs_total"
	// MetricStripeDegradedWrites counts writes acknowledged with at
	// least one group member down (skipped).
	MetricStripeDegradedWrites = "nvmecr_stripe_degraded_writes_total"
)

// NewStripedPlane stripes RAID-0 across children in order with the
// given unit size, no redundancy. Children are typically *TCPPlane
// partitions on distinct targets, but any plane.Plane works (the
// simulator's planes included). The striped capacity is
// geometry-limited by the smallest child: every child contributes the
// same whole number of units.
func NewStripedPlane(children []plane.Plane, unit int64) (*StripedPlane, error) {
	return NewMirroredPlane(children, unit, 1)
}

// NewMirroredPlane stripes across len(children)/replicas mirror groups
// of `replicas` members each: members of group g are
// children[g*replicas : (g+1)*replicas], every one carrying an
// identical copy of the group's units. replicas <= 1 degenerates to
// plain RAID-0.
func NewMirroredPlane(children []plane.Plane, unit int64, replicas int) (*StripedPlane, error) {
	geo := balancer.StripeGeometry{Targets: len(children), Unit: unit, Replicas: replicas}
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	minSize := children[0].Size()
	for _, c := range children[1:] {
		if s := c.Size(); s < minSize {
			minSize = s
		}
	}
	size := geo.UsableSize(minSize)
	if size <= 0 {
		return nil, fmt.Errorf("nvmeof: stripe unit %d exceeds smallest child of %d bytes", unit, minSize)
	}
	s := &StripedPlane{
		geo:       geo,
		logical:   geo.Logical(),
		size:      size,
		childSize: size / int64(geo.Groups()),
		children:  append([]plane.Plane(nil), children...),
		states:    make([]ChildState, len(children)),
	}
	return s, nil
}

// Geometry returns the stripe layout, replica width included.
func (s *StripedPlane) Geometry() balancer.StripeGeometry { return s.geo }

// Size implements plane.Plane.
func (s *StripedPlane) Size() int64 { return s.size }

// ChildSize returns the usable bytes every member carries (the range
// SyncChunk sweeps when rebuilding one).
func (s *StripedPlane) ChildSize() int64 { return s.childSize }

// Children returns the member count. It never changes after creation:
// replacement swaps a member in place.
func (s *StripedPlane) Children() int { return len(s.states) }

// Replicas returns the mirror width R.
func (s *StripedPlane) Replicas() int {
	if s.geo.Replicas < 1 {
		return 1
	}
	return s.geo.Replicas
}

// GroupOf returns the mirror group a child index belongs to.
func (s *StripedPlane) GroupOf(child int) int { return s.geo.GroupOf(child) }

// ChildState returns a member's current availability.
func (s *StripedPlane) State(child int) ChildState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.states[child]
}

// Child returns the plane currently occupying a member slot.
func (s *StripedPlane) Child(child int) plane.Plane {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.children[child]
}

// SetVerifyReads toggles read-repair mode: every mirrored read fetches
// ALL live members, compares, and rewrites divergent copies from the
// lowest-index live member before returning. Costly (R wire reads per
// span) — a scrub/forensics mode, not the default.
func (s *StripedPlane) SetVerifyReads(on bool) { s.verifyReads.Store(on) }

// Instrument publishes the mirror plane's failover/repair/degraded
// counters into reg.
func (s *StripedPlane) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.failovers.Store(reg.Counter(MetricStripeReadFailovers, nil))
	s.repairs.Store(reg.Counter(MetricStripeReadRepairs, nil))
	s.degraded.Store(reg.Counter(MetricStripeDegradedWrites, nil))
}

func inc(c *atomic.Pointer[telemetry.Counter]) {
	if ctr := c.Load(); ctr != nil {
		ctr.Inc()
	}
}

func (s *StripedPlane) checkChild(child int) error {
	if child < 0 || child >= len(s.states) {
		return fmt.Errorf("nvmeof: child %d of %d", child, len(s.states))
	}
	return nil
}

// SetChildDown marks a member down: reads and writes skip it from the
// next membership snapshot on. In-flight requests that already
// snapshotted it may still touch it and surface its errors — callers
// retry, exactly as they do for any transient member failure.
func (s *StripedPlane) SetChildDown(child int) error {
	if err := s.checkChild(child); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.states[child] = ChildDown
	return nil
}

// BeginRebuild swaps a replacement plane into a down member's slot and
// marks it rebuilding: it starts receiving writes immediately but
// serves no reads until SetChildLive. replacement may be nil to
// rebuild the existing plane in place (a restarted target whose data
// may be stale). The member must be down first (drain before rebuild),
// its group must still have a live sibling to copy from, and the
// replacement must carry at least the member's usable size.
func (s *StripedPlane) BeginRebuild(child int, replacement plane.Plane) error {
	if err := s.checkChild(child); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.states[child]; st != ChildDown {
		return fmt.Errorf("nvmeof: rebuild child %d in state %s, want down", child, st)
	}
	group := s.geo.GroupOf(child)
	hasLive := false
	for r := 0; r < s.Replicas(); r++ {
		if m := s.geo.Member(group, r); m != child && s.states[m] == ChildLive {
			hasLive = true
			break
		}
	}
	if !hasLive {
		return fmt.Errorf("nvmeof: rebuild child %d: group %d has no live member to copy from: %w", child, group, ErrNoReplica)
	}
	if replacement != nil {
		if replacement.Size() < s.childSize {
			return fmt.Errorf("nvmeof: replacement for child %d is %d bytes, need %d", child, replacement.Size(), s.childSize)
		}
		s.children[child] = replacement
	}
	s.states[child] = ChildRebuilding
	return nil
}

// SetChildLive promotes a member to live — the rebuild cutover. The
// caller (the migration plane) is responsible for having synced the
// member's full range first; promoting an unsynced member serves stale
// reads.
func (s *StripedPlane) SetChildLive(child int) error {
	if err := s.checkChild(child); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.states[child] = ChildLive
	return nil
}

// SyncChunk copies [off, off+length) of a rebuilding member's address
// space from a live sibling, serialized against concurrent writes (see
// sweepMu): any write racing this chunk either lands on the sibling
// before the copy reads it or lands on the rebuilding member directly.
// It returns the bytes copied (length clamped to the member's usable
// size). The sibling must capture payloads — a timing-only plane
// cannot seed a rebuild.
func (s *StripedPlane) SyncChunk(child int, off, length int64) (int64, error) {
	if err := s.checkChild(child); err != nil {
		return 0, err
	}
	if off < 0 || length <= 0 {
		return 0, fmt.Errorf("nvmeof: sync chunk [%d,+%d)", off, length)
	}
	if off >= s.childSize {
		return 0, nil
	}
	if off+length > s.childSize {
		length = s.childSize - off
	}
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	s.mu.RLock()
	if st := s.states[child]; st != ChildRebuilding {
		s.mu.RUnlock()
		return 0, fmt.Errorf("nvmeof: sync child %d in state %s, want rebuilding", child, st)
	}
	dst := s.children[child]
	group := s.geo.GroupOf(child)
	var src plane.Plane
	for r := 0; r < s.Replicas(); r++ {
		if m := s.geo.Member(group, r); m != child && s.states[m] == ChildLive {
			src = s.children[m]
			break
		}
	}
	s.mu.RUnlock()
	if src == nil {
		return 0, fmt.Errorf("nvmeof: sync child %d: group %d has no live member: %w", child, group, ErrNoReplica)
	}
	data, err := src.Read(nil, off, length, 0)
	if err != nil {
		return 0, fmt.Errorf("nvmeof: sync child %d: read sibling: %w", child, err)
	}
	if data == nil {
		return 0, fmt.Errorf("nvmeof: sync child %d: sibling does not capture payloads", child)
	}
	if err := dst.Write(nil, off, length, data, 0); err != nil {
		return 0, fmt.Errorf("nvmeof: sync child %d: write: %w", child, err)
	}
	return length, nil
}

// memberView is one op's immutable view of a group member.
type memberView struct {
	child plane.Plane
	idx   int
	state ChildState
}

// inlineChildren sizes stack backing for membership snapshots; wider
// planes spill to the heap, they don't fail.
const inlineChildren = 16

// snapshot copies the membership under RLock into buf (or the heap).
func (s *StripedPlane) snapshot(buf []memberView) []memberView {
	s.mu.RLock()
	if cap(buf) < len(s.children) {
		buf = make([]memberView, 0, len(s.children))
	}
	buf = buf[:0]
	for i, c := range s.children {
		buf = append(buf, memberView{child: c, idx: i, state: s.states[i]})
	}
	s.mu.RUnlock()
	return buf
}

// groupMembers returns the snapshot slice covering one group.
func (s *StripedPlane) groupMembers(snap []memberView, group int) []memberView {
	r := s.Replicas()
	return snap[group*r : (group+1)*r]
}

func (s *StripedPlane) check(off, length int64) error {
	if off < 0 || length < 0 || off+length > s.size {
		return fmt.Errorf("nvmeof: access [%d,+%d) outside striped partition of %d bytes", off, length, s.size)
	}
	return nil
}

// forEachSpan runs fn over the request's per-group spans: concurrently
// when no simulated process is attached (the real TCP path, where
// concurrency is the point), sequentially under the simulator (where
// determinism is the point and the children charge virtual time).
// The first error wins; all spans are always attempted, so a striped
// write failing on one group still lands its other units — the same
// partial-write exposure a failed chunked TCPPlane write has, and why
// callers treat any write error as "durability unknown until re-proven".
func (s *StripedPlane) forEachSpan(p *sim.Proc, spans []balancer.StripeSpan, fn func(sp balancer.StripeSpan) error) error {
	if p != nil || len(spans) == 1 {
		var firstErr error
		for _, sp := range spans {
			if err := fn(sp); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	errs := make([]error, len(spans))
	var wg sync.WaitGroup
	for i, sp := range spans {
		wg.Add(1)
		go func(i int, sp balancer.StripeSpan) {
			defer wg.Done()
			errs[i] = fn(sp)
		}(i, sp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// stripeGroup is one mirror group's share of a striped request. A
// contiguous striped range touches each group in a contiguous run of
// that group's own address space (partial units can only occur at the
// two request ends), so the member spans coalesce into a single
// [targetOff, targetOff+length) extent per group and the whole request
// becomes one command per MEMBER instead of one command per stripe
// unit. That per-unit fan-out was the striped-plane scaling regression:
// a 1 MiB write over two targets at a 64 KiB unit issued 16 goroutines
// and 16 capsules, each paying full per-command device latency, so two
// targets ran slower than one.
type stripeGroup struct {
	target    int // GROUP index (field name kept for span symmetry)
	targetOff int64
	length    int64
	count     int // member spans, in striped-address order
	vecOff    int // first slot of this group's gather vector in the shared backing
}

// inlineStripeGroups sizes the stack backing for per-group groups;
// wider stripes spill to the heap, they don't fail.
const inlineStripeGroups = 8

// groupSpans coalesces spans per group into buf. It returns ok=false
// if any group's spans are not contiguous on that group — geometry
// guarantees they are for the balancer's round-robin striping, but the
// caller falls back to the span-at-a-time path rather than trusting
// that invariant with data placement.
func groupSpans(spans []balancer.StripeSpan, buf []stripeGroup) ([]stripeGroup, bool) {
	groups := buf[:0]
	for _, sp := range spans {
		found := false
		for gi := range groups {
			if groups[gi].target != sp.Target {
				continue
			}
			if groups[gi].targetOff+groups[gi].length != sp.TargetOff {
				return nil, false
			}
			groups[gi].length += sp.Length
			groups[gi].count++
			found = true
			break
		}
		if !found {
			groups = append(groups, stripeGroup{
				target:    sp.Target,
				targetOff: sp.TargetOff,
				length:    sp.Length,
				count:     1,
			})
		}
	}
	return groups, true
}

// writeTargets picks the members of a group a write must land on: every
// attached (live or rebuilding) member. An empty result means the
// whole group is down. skipped reports whether any member was down.
func writeTargets(members []memberView, buf []memberView) (attempt []memberView, skipped bool) {
	attempt = buf[:0]
	for _, m := range members {
		if m.state == ChildDown {
			skipped = true
			continue
		}
		attempt = append(attempt, m)
	}
	return attempt, skipped
}

// liveMembers filters a group's snapshot to read-eligible members.
func liveMembers(members []memberView, buf []memberView) []memberView {
	out := buf[:0]
	for _, m := range members {
		if m.state == ChildLive {
			out = append(out, m)
		}
	}
	return out
}

// Write implements plane.Plane. Synthetic (nil-data) writes stay
// synthetic per span: each member sees nil data for its unit, exactly
// as a single-target plane would for the whole transfer. The write is
// acknowledged only when every attached member of every touched group
// accepted it; down members are skipped (counted as degraded), and a
// fully-down group fails with ErrNoReplica.
func (s *StripedPlane) Write(p *sim.Proc, off, length int64, data []byte, cmdUnit int64) error {
	if err := s.check(off, length); err != nil {
		return err
	}
	if data != nil && int64(len(data)) != length {
		return fmt.Errorf("nvmeof: striped write of %d bytes with %d-byte buffer", length, len(data))
	}
	if length == 0 {
		return nil
	}
	s.sweepMu.RLock()
	defer s.sweepMu.RUnlock()
	var snapBuf [inlineChildren]memberView
	snap := s.snapshot(snapBuf[:0])
	spans := s.logical.Spans(off, length)
	if p == nil && len(spans) > 1 {
		var buf [inlineStripeGroups]stripeGroup
		if groups, ok := groupSpans(spans, buf[:]); ok {
			return s.writeGrouped(snap, spans, groups, off, data, cmdUnit)
		}
	}
	return s.forEachSpan(p, spans, func(sp balancer.StripeSpan) error {
		var chunk []byte
		if data != nil {
			rel := sp.Off - off
			chunk = data[rel : rel+sp.Length]
		}
		// Per-call buffer: forEachSpan runs this callback concurrently
		// on the real TCP path, so the attempt snapshot must not share
		// backing across spans.
		var memberBuf [inlineChildren]memberView
		attempt, skipped := writeTargets(s.groupMembers(snap, sp.Target), memberBuf[:0])
		if len(attempt) == 0 {
			return fmt.Errorf("nvmeof: write group %d: %w", sp.Target, ErrNoReplica)
		}
		if skipped {
			inc(&s.degraded)
		}
		if p != nil || len(attempt) == 1 {
			var firstErr error
			for _, m := range attempt {
				if err := m.child.Write(p, sp.TargetOff, sp.Length, chunk, cmdUnit); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			return firstErr
		}
		errs := make([]error, len(attempt))
		var wg sync.WaitGroup
		for i, m := range attempt {
			wg.Add(1)
			go func(i int, m memberView) {
				defer wg.Done()
				errs[i] = m.child.Write(nil, sp.TargetOff, sp.Length, chunk, cmdUnit)
			}(i, m)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	})
}

// writeGrouped issues the striped write as one request per group
// MEMBER: a gather-list WriteV when the member can take one (TCPPlane
// over a VectorQueue initiator — fully zero-copy), per-piece Writes
// otherwise. Like forEachSpan, every member is attempted and the first
// error wins; a partial failure leaves the other members' stripes
// landed, the same exposure a failed chunked single-target write has.
func (s *StripedPlane) writeGrouped(snap []memberView, spans []balancer.StripeSpan, groups []stripeGroup, off int64, data []byte, cmdUnit int64) error {
	var vecs [][]byte
	if data != nil {
		// One shared backing for every group's gather vector: group g
		// owns vecs[g.vecOff : g.vecOff+g.count], filled in
		// striped-address order (which is member-offset order within a
		// group, since the group is contiguous on its members).
		vecs = make([][]byte, len(spans))
		pos := 0
		for gi := range groups {
			groups[gi].vecOff = pos
			pos += groups[gi].count
			vec := vecs[groups[gi].vecOff:groups[gi].vecOff]
			for _, sp := range spans {
				if sp.Target != groups[gi].target {
					continue
				}
				rel := sp.Off - off
				vec = append(vec, data[rel:rel+sp.Length])
			}
		}
	}
	// One error slot and one goroutine per (group, attached member).
	type unit struct {
		g *stripeGroup
		m memberView
	}
	var unitsBuf [inlineChildren]unit
	units := unitsBuf[:0]
	var memberBuf [inlineChildren]memberView
	for gi := range groups {
		g := &groups[gi]
		attempt, skipped := writeTargets(s.groupMembers(snap, g.target), memberBuf[:0])
		if len(attempt) == 0 {
			return fmt.Errorf("nvmeof: write group %d: %w", g.target, ErrNoReplica)
		}
		if skipped {
			inc(&s.degraded)
		}
		for _, m := range attempt {
			units = append(units, unit{g: g, m: m})
		}
	}
	errs := make([]error, len(units))
	var wg sync.WaitGroup
	for i := range units {
		u := units[i]
		wg.Add(1)
		go func(i int, u unit) {
			defer wg.Done()
			child := u.m.child
			if data == nil {
				errs[i] = child.Write(nil, u.g.targetOff, u.g.length, nil, cmdUnit)
				return
			}
			vec := vecs[u.g.vecOff : u.g.vecOff+u.g.count]
			if len(vec) == 1 {
				errs[i] = child.Write(nil, u.g.targetOff, u.g.length, vec[0], cmdUnit)
				return
			}
			if vw, ok := child.(plane.VectorWriter); ok {
				errs[i] = vw.WriteV(nil, u.g.targetOff, vec)
				return
			}
			toff := u.g.targetOff
			for _, b := range vec {
				if err := child.Write(nil, toff, int64(len(b)), b, cmdUnit); err != nil {
					errs[i] = err
					return
				}
				toff += int64(len(b))
			}
		}(i, u)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// errNilRead is an internal sentinel carrying the nil contract through
// the member-read helpers: the member answered, but captures nothing.
var errNilRead = errors.New("nvmeof: member read returned nil")

// readSpan serves one group-span from the snapshot's live members:
// verify-reads mode reads every live member and repairs divergence;
// otherwise one member is picked round-robin (first-live under the
// simulator, for determinism) and siblings are tried on failure. The
// result lands in out. errNilRead reports a non-capturing member.
func (s *StripedPlane) readSpan(p *sim.Proc, snap []memberView, group int, targetOff, length int64, out []byte, cmdUnit int64) error {
	var liveBuf [inlineChildren]memberView
	live := liveMembers(s.groupMembers(snap, group), liveBuf[:0])
	if len(live) == 0 {
		return fmt.Errorf("nvmeof: read group %d: %w", group, ErrNoReplica)
	}
	if s.verifyReads.Load() && len(live) > 1 {
		return s.readVerify(p, live, group, targetOff, length, out, cmdUnit)
	}
	start := 0
	if p == nil && len(live) > 1 {
		start = int(s.readRR.Add(1) % uint64(len(live)))
	}
	var lastErr error
	for i := 0; i < len(live); i++ {
		m := live[(start+i)%len(live)]
		chunk, err := m.child.Read(p, targetOff, length, cmdUnit)
		if err != nil {
			lastErr = err
			if i+1 < len(live) {
				inc(&s.failovers)
			}
			continue
		}
		if chunk == nil {
			return errNilRead
		}
		if int64(len(chunk)) != length {
			return fmt.Errorf("nvmeof: stripe member %d returned %d bytes, want %d", m.idx, len(chunk), length)
		}
		copy(out, chunk)
		return nil
	}
	return lastErr
}

// readVerify reads every live member of a group, compares, and repairs
// divergent copies from the lowest-index live member (the authority).
// Divergence can only exist on bytes whose write was never
// acknowledged — an acked write landed on every attached member — so
// any of the copies is a legal result; picking the lowest index makes
// repair deterministic.
func (s *StripedPlane) readVerify(p *sim.Proc, live []memberView, group int, targetOff, length int64, out []byte, cmdUnit int64) error {
	copies := make([][]byte, len(live))
	for i, m := range live {
		chunk, err := m.child.Read(p, targetOff, length, cmdUnit)
		if err != nil {
			return fmt.Errorf("nvmeof: verify read group %d member %d: %w", group, m.idx, err)
		}
		if chunk == nil {
			return errNilRead
		}
		if int64(len(chunk)) != length {
			return fmt.Errorf("nvmeof: stripe member %d returned %d bytes, want %d", m.idx, len(chunk), length)
		}
		copies[i] = chunk
	}
	authority := copies[0]
	for i := 1; i < len(live); i++ {
		if !bytesEqual(copies[i], authority) {
			inc(&s.repairs)
			if err := live[i].child.Write(p, targetOff, length, authority, cmdUnit); err != nil {
				return fmt.Errorf("nvmeof: read-repair group %d member %d: %w", group, live[i].idx, err)
			}
		}
	}
	copy(out, authority)
	return nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Read implements plane.Plane. The nil contract is all-or-nothing: a
// single non-capturing member consulted by the request makes the whole
// read nil (see the type comment), so callers never see a buffer with
// silent zero holes.
func (s *StripedPlane) Read(p *sim.Proc, off, length int64, cmdUnit int64) ([]byte, error) {
	if err := s.check(off, length); err != nil {
		return nil, err
	}
	if length == 0 {
		return nil, nil
	}
	var snapBuf [inlineChildren]memberView
	snap := s.snapshot(snapBuf[:0])
	spans := s.logical.Spans(off, length)
	if p == nil && len(spans) > 1 {
		var buf [inlineStripeGroups]stripeGroup
		if groups, ok := groupSpans(spans, buf[:]); ok {
			return s.readGrouped(snap, groups, off, length)
		}
	}
	out := make([]byte, length)
	sawNil := false
	var mu sync.Mutex
	err := s.forEachSpan(p, spans, func(sp balancer.StripeSpan) error {
		err := s.readSpan(p, snap, sp.Target, sp.TargetOff, sp.Length, out[sp.Off-off:sp.Off-off+sp.Length], cmdUnit)
		if errors.Is(err, errNilRead) {
			mu.Lock()
			sawNil = true
			mu.Unlock()
			return nil
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	if sawNil {
		return nil, nil
	}
	return out, nil
}

// readGrouped issues the read as contiguous per-group extents, each
// served by the group's live members, and scatters each group's bytes
// back into stripe order. A mirrored group with several live members
// splits its extent across them — the mirror reads at RAID-0 aggregate
// bandwidth. The nil contract holds: any consulted member returning
// nil makes the whole read nil.
func (s *StripedPlane) readGrouped(snap []memberView, groups []stripeGroup, off, length int64) ([]byte, error) {
	staging := make([]byte, length)
	// Each group's extent lands contiguously in staging in group order,
	// then scatters to the striped layout.
	var offsBuf [inlineStripeGroups]int64
	offs := offsBuf[:0]
	pos := int64(0)
	for gi := range groups {
		offs = append(offs, pos)
		pos += groups[gi].length
	}
	var errsBuf [inlineStripeGroups]error
	var nilsBuf [inlineStripeGroups]bool
	errs, nils := errsBuf[:len(groups)], nilsBuf[:len(groups)]
	if len(groups) > inlineStripeGroups {
		errs, nils = make([]error, len(groups)), make([]bool, len(groups))
	}
	var wg sync.WaitGroup
	for gi := range groups {
		g := &groups[gi]
		wg.Add(1)
		go func(gi int, g *stripeGroup) {
			defer wg.Done()
			err := s.readGroupExtent(snap, g.target, g.targetOff, g.length, staging[offs[gi]:offs[gi]+g.length])
			if errors.Is(err, errNilRead) {
				nils[gi] = true
				return
			}
			errs[gi] = err
		}(gi, g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, n := range nils {
		if n {
			return nil, nil
		}
	}
	out := make([]byte, length)
	for gi := range groups {
		g := &groups[gi]
		chunk := staging[offs[gi] : offs[gi]+g.length]
		// Walk the striped address space restricted to this group: the
		// group's extent is contiguous member-local, so stripe units
		// peel off the front in striped-address order.
		pos := int64(0)
		for cur := off; cur < off+length && pos < g.length; {
			stripeNo := cur / s.logical.Unit
			in := cur % s.logical.Unit
			n := s.logical.Unit - in
			if rest := off + length - cur; n > rest {
				n = rest
			}
			if int(stripeNo%int64(s.logical.Targets)) == g.target {
				copy(out[cur-off:cur-off+n], chunk[pos:pos+n])
				pos += n
			}
			cur += n
		}
	}
	return out, nil
}

// readGroupExtent serves one group's contiguous extent: split across
// the live members when there are several and the extent is large
// enough to amortize the extra commands, one member otherwise. Any
// split-part failure falls back to whole-extent failover.
func (s *StripedPlane) readGroupExtent(snap []memberView, group int, targetOff, length int64, out []byte) error {
	var liveBuf [inlineChildren]memberView
	live := liveMembers(s.groupMembers(snap, group), liveBuf[:0])
	if len(live) == 0 {
		return fmt.Errorf("nvmeof: read group %d: %w", group, ErrNoReplica)
	}
	if s.verifyReads.Load() || len(live) == 1 || length < 2*s.logical.Unit {
		return s.readSpan(nil, snap, group, targetOff, length, out, 0)
	}
	// Split the extent into one contiguous part per live member.
	part := length / int64(len(live))
	var wg sync.WaitGroup
	errs := make([]error, len(live))
	nils := make([]bool, len(live))
	for i, m := range live {
		start := int64(i) * part
		end := start + part
		if i == len(live)-1 {
			end = length
		}
		wg.Add(1)
		go func(i int, m memberView, start, end int64) {
			defer wg.Done()
			chunk, err := m.child.Read(nil, targetOff+start, end-start, 0)
			if err != nil {
				errs[i] = err
				return
			}
			if chunk == nil {
				nils[i] = true
				return
			}
			if int64(len(chunk)) != end-start {
				errs[i] = fmt.Errorf("nvmeof: stripe member %d returned %d bytes, want %d", m.idx, len(chunk), end-start)
				return
			}
			copy(out[start:end], chunk)
		}(i, m, start, end)
	}
	wg.Wait()
	for _, n := range nils {
		if n {
			return errNilRead
		}
	}
	for _, err := range errs {
		if err != nil {
			// A member failed its part: retry the whole extent with
			// member failover rather than reasoning about which parts
			// survived.
			inc(&s.failovers)
			return s.readSpan(nil, snap, group, targetOff, length, out, 0)
		}
	}
	return nil
}

// Flush implements plane.Plane: a durability barrier across every
// attached (live or rebuilding) child. All of them are flushed even
// after a failure (their stripes deserve durability regardless); the
// first error is returned. Down members are skipped — they hold no
// acknowledged bytes their group's live members don't — and a group
// with nothing attached fails the barrier with ErrNoReplica.
func (s *StripedPlane) Flush(p *sim.Proc) error {
	var snapBuf [inlineChildren]memberView
	snap := s.snapshot(snapBuf[:0])
	var memberBuf [inlineChildren]memberView
	for g := 0; g < s.logical.Targets; g++ {
		if attempt, _ := writeTargets(s.groupMembers(snap, g), memberBuf[:0]); len(attempt) == 0 {
			return fmt.Errorf("nvmeof: flush group %d: %w", g, ErrNoReplica)
		}
	}
	if p != nil {
		var firstErr error
		for _, m := range snap {
			if m.state == ChildDown {
				continue
			}
			if err := m.child.Flush(p); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	errs := make([]error, len(snap))
	var wg sync.WaitGroup
	for i, m := range snap {
		if m.state == ChildDown {
			continue
		}
		wg.Add(1)
		go func(i int, m memberView) {
			defer wg.Done()
			errs[i] = m.child.Flush(nil)
		}(i, m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close closes every attached child that implements io.Closer (down
// members included — their transports deserve cleanup too). The first
// error wins; every child is visited.
func (s *StripedPlane) Close() error {
	var snapBuf [inlineChildren]memberView
	snap := s.snapshot(snapBuf[:0])
	var firstErr error
	for _, m := range snap {
		if c, ok := m.child.(io.Closer); ok {
			if err := c.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

var _ plane.Plane = (*StripedPlane)(nil)
