package nvmeof

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/telemetry"
)

func TestFlightRingWraparound(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		fr.Record(0, FlightRecord{CID: uint16(i)})
	}
	recs := fr.QueuePair(0)
	if len(recs) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(recs))
	}
	// Oldest first: 6, 7, 8, 9 survive out of 0..9.
	for i, rec := range recs {
		if want := uint16(6 + i); rec.CID != want {
			t.Errorf("recs[%d].CID = %d, want %d", i, rec.CID, want)
		}
	}
	// A ring that never filled returns only what it holds.
	fr.Record(7, FlightRecord{CID: 42})
	if recs := fr.QueuePair(7); len(recs) != 1 || recs[0].CID != 42 {
		t.Fatalf("partial ring = %+v", recs)
	}
	if got := fr.QueuePairs(); len(got) != 2 || got[0] != 0 || got[1] != 7 {
		t.Fatalf("QueuePairs = %v", got)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(8)
	const qps, writers, per = 4, 4, 200
	var wg sync.WaitGroup
	for qp := 0; qp < qps; qp++ {
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(qp, w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					fr.Record(qp, FlightRecord{QP: qp, CID: uint16(w*per + i)})
				}
			}(qp, w)
		}
	}
	// Snapshots race with the writers; they must stay internally
	// consistent (full rings, right queue pair) even mid-write.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			for _, recs := range fr.Snapshot() {
				if len(recs) > fr.Depth() {
					panic(fmt.Sprintf("snapshot over depth: %d", len(recs)))
				}
			}
		}
	}()
	wg.Wait()
	<-done
	snap := fr.Snapshot()
	if len(snap) != qps {
		t.Fatalf("snapshot has %d queue pairs, want %d", len(snap), qps)
	}
	for qp, recs := range snap {
		if len(recs) != 8 {
			t.Errorf("qp %d retained %d records, want 8", qp, len(recs))
		}
		for _, rec := range recs {
			if rec.QP != qp {
				t.Errorf("qp %d ring holds record for qp %d", qp, rec.QP)
			}
		}
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var fr *FlightRecorder
	fr.Record(0, FlightRecord{})
	if fr.QueuePair(0) != nil || fr.QueuePairs() != nil || fr.Snapshot() != nil || fr.Depth() != 0 {
		t.Fatal("nil recorder must read empty")
	}
}

// decodeTrace parses a tracer's JSONL output.
func decodeTrace(t *testing.T, buf *bytes.Buffer) []telemetry.Event {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var events []telemetry.Event
	for sc.Scan() {
		var ev telemetry.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	return events
}

// TestTimeoutDumpsOnlyThatQueuePair pins the flight recorder's lock
// striping at the dump path: when one queue pair times out, the dump
// carries that queue pair's ring only — sibling traffic stays out.
func TestTimeoutDumpsOnlyThatQueuePair(t *testing.T) {
	tgt := NewTarget()
	ns := NewMemNamespace(model.MB)
	if err := tgt.AddNamespace(1, ns); err != nil {
		t.Fatal(err)
	}
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()

	var traceBuf bytes.Buffer
	tr := telemetry.NewTracer(&traceBuf)
	shared := NewFlightRecorder(16)

	h0, err := DialConfig(addr, 1, HostConfig{Tracer: tr, Flight: shared, TelemetryQP: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer h0.Close()
	h1, err := DialConfig(addr, 1, HostConfig{
		Tracer: tr, Flight: shared, TelemetryQP: 1,
		CommandTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Close()

	// Healthy traffic on queue pair 0 populates its ring.
	for i := 0; i < 3; i++ {
		if err := h0.WriteAt(0, []byte("qp0")); err != nil {
			t.Fatal(err)
		}
	}

	// Wedge the namespace so queue pair 1's WRITE times out.
	ns.stripes[0].mu.Lock()
	err = h1.WriteAt(0, []byte("qp1-stuck"))
	ns.stripes[0].mu.Unlock()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("WriteAt = %v, want timeout", err)
	}

	var dumps []telemetry.Event
	for _, ev := range decodeTrace(t, &traceBuf) {
		if ev.Name == "nvmeof.flight" {
			dumps = append(dumps, ev)
		}
	}
	if len(dumps) != 1 {
		t.Fatalf("got %d flight dumps, want 1", len(dumps))
	}
	if qp, _ := dumps[0].Attrs["qp"].(float64); int(qp) != 1 {
		t.Fatalf("dump is for qp %v, want 1", dumps[0].Attrs["qp"])
	}
	if reason, _ := dumps[0].Attrs["reason"].(string); reason != "timeout" {
		t.Fatalf("dump reason = %q, want timeout", dumps[0].Attrs["reason"])
	}
	recs, _ := dumps[0].Attrs["records"].([]any)
	if len(recs) == 0 {
		t.Fatal("dump carries no records")
	}
	for _, r := range recs {
		rec := r.(map[string]any)
		if qp, _ := rec["qp"].(float64); int(qp) != 1 {
			t.Errorf("dump leaked a record from qp %v", rec["qp"])
		}
	}
	// The shared recorder still holds both rings, untouched.
	if got := len(shared.QueuePair(0)); got != 4 { // CONNECT + 3 WRITEs
		t.Errorf("qp 0 ring holds %d records, want 4", got)
	}
}
