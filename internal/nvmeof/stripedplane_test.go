package nvmeof

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/plane"
	"github.com/nvme-cr/nvmecr/internal/sim"
)

// memPlane is an in-memory plane.Plane test double. capture=false
// models a backing device that does not hold payloads (Read → nil),
// the contract StripedPlane must propagate.
type memPlane struct {
	mu        sync.Mutex
	data      []byte
	capture   bool
	flushes   int
	flushErr  error
	writeErrs map[int64]error // by offset, consumed once
}

func newMemPlane(size int64, capture bool) *memPlane {
	return &memPlane{data: make([]byte, size), capture: capture}
}

func (m *memPlane) Write(p *sim.Proc, off, length int64, data []byte, cmdUnit int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 || length < 0 || off+length > int64(len(m.data)) {
		return fmt.Errorf("memplane: write [%d,+%d) out of range", off, length)
	}
	if err, ok := m.writeErrs[off]; ok {
		delete(m.writeErrs, off)
		return err
	}
	if data != nil {
		copy(m.data[off:off+length], data)
	}
	return nil
}

func (m *memPlane) Read(p *sim.Proc, off, length int64, cmdUnit int64) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 || length < 0 || off+length > int64(len(m.data)) {
		return nil, fmt.Errorf("memplane: read [%d,+%d) out of range", off, length)
	}
	if !m.capture {
		return nil, nil
	}
	return append([]byte(nil), m.data[off:off+length]...), nil
}

func (m *memPlane) Flush(p *sim.Proc) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flushes++
	return m.flushErr
}

func (m *memPlane) Size() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.data))
}

func stripedOverMem(t *testing.T, n int, childSize, unit int64, capture bool) (*StripedPlane, []*memPlane) {
	t.Helper()
	children := make([]plane.Plane, n)
	mems := make([]*memPlane, n)
	for i := range children {
		mems[i] = newMemPlane(childSize, capture)
		children[i] = mems[i]
	}
	sp, err := NewStripedPlane(children, unit)
	if err != nil {
		t.Fatal(err)
	}
	return sp, mems
}

// TestStripedPlaneMatchesSingle is the in-memory equivalence core:
// random writes and reads through a StripedPlane behave exactly like
// the same operations against one flat buffer.
func TestStripedPlaneMatchesSingle(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		n := n
		t.Run(fmt.Sprintf("targets=%d", n), func(t *testing.T) {
			const unit = 512
			const childSize = 16 * 1024
			sp, _ := stripedOverMem(t, n, childSize, unit, true)
			ref := make([]byte, sp.Size())
			rng := rand.New(rand.NewSource(int64(1000 + n)))
			for op := 0; op < 300; op++ {
				off := rng.Int63n(sp.Size())
				length := 1 + rng.Int63n(4*unit)
				if off+length > sp.Size() {
					length = sp.Size() - off
				}
				if rng.Intn(3) < 2 {
					payload := make([]byte, length)
					rng.Read(payload)
					if err := sp.Write(nil, off, length, payload, 0); err != nil {
						t.Fatalf("op %d: write: %v", op, err)
					}
					copy(ref[off:off+length], payload)
				} else {
					got, err := sp.Read(nil, off, length, 0)
					if err != nil {
						t.Fatalf("op %d: read: %v", op, err)
					}
					if !bytes.Equal(got, ref[off:off+length]) {
						t.Fatalf("op %d: read [%d,+%d) diverged from flat buffer", op, off, length)
					}
				}
			}
			full, err := sp.Read(nil, 0, sp.Size(), 0)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(full, ref) {
				t.Fatal("full striped read-back diverged from flat buffer")
			}
		})
	}
}

// TestStripedPlaneNilReadPropagation pins the satellite fix: when ANY
// child does not capture payloads, the striped read is nil as a whole —
// never a partially-filled buffer.
func TestStripedPlaneNilReadPropagation(t *testing.T) {
	const unit = 512
	capturing := newMemPlane(8192, true)
	blind := newMemPlane(8192, false)
	sp, err := NewStripedPlane([]plane.Plane{capturing, blind}, unit)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Write(nil, 0, 4*unit, bytes.Repeat([]byte{0xEE}, 4*unit), 0); err != nil {
		t.Fatal(err)
	}
	// A range touching both children: nil, not half-data.
	got, err := sp.Read(nil, 0, 4*unit, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("read spanning a non-capturing child = %d bytes, want nil", len(got))
	}
	// A range entirely on the capturing child still returns data: the
	// contract is per-backing-device, and this request never consulted
	// the blind one.
	got, err = sp.Read(nil, 0, unit, 0)
	if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{0xEE}, unit)) {
		t.Fatalf("read on capturing child = %v, %v", len(got), err)
	}
	// Zero-length reads stay nil with no error, like every plane.
	if got, err := sp.Read(nil, 0, 0, 0); err != nil || got != nil {
		t.Fatalf("zero-length read = %v, %v", got, err)
	}
}

// TestStripedPlaneFlushBarrier pins the flush rule: every child is
// flushed (the barrier), and one child's failure fails the barrier
// without skipping the siblings.
func TestStripedPlaneFlushBarrier(t *testing.T) {
	sp, mems := stripedOverMem(t, 3, 8192, 512, true)
	if err := sp.Flush(nil); err != nil {
		t.Fatal(err)
	}
	for i, m := range mems {
		if m.flushes != 1 {
			t.Errorf("child %d flushed %d times, want 1", i, m.flushes)
		}
	}
	bang := errors.New("child 1 flush failed")
	mems[1].flushErr = bang
	if err := sp.Flush(nil); !errors.Is(err, bang) {
		t.Fatalf("Flush = %v, want child failure", err)
	}
	for i, m := range mems {
		if m.flushes != 2 {
			t.Errorf("child %d flushed %d times after failed barrier, want 2 (barrier visits all)", i, m.flushes)
		}
	}
}

// TestStripedPlaneWriteErrorSurfaces pins partial-write semantics: a
// failing stripe unit fails the whole write, while sibling units still
// land (the same exposure a chunked single-target write has).
func TestStripedPlaneWriteErrorSurfaces(t *testing.T) {
	sp, mems := stripedOverMem(t, 2, 8192, 512, true)
	bang := errors.New("unit write failed")
	mems[1].writeErrs = map[int64]error{0: bang}
	err := sp.Write(nil, 0, 1024, bytes.Repeat([]byte{0x77}, 1024), 0)
	if !errors.Is(err, bang) {
		t.Fatalf("Write = %v, want child failure", err)
	}
	// Child 0's unit landed; re-issuing the write (the caller's retry)
	// completes it.
	if err := sp.Write(nil, 0, 1024, bytes.Repeat([]byte{0x77}, 1024), 0); err != nil {
		t.Fatal(err)
	}
	got, err := sp.Read(nil, 0, 1024, 0)
	if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{0x77}, 1024)) {
		t.Fatalf("read after retry = %v, %v", len(got), err)
	}
}

func TestStripedPlaneBounds(t *testing.T) {
	sp, _ := stripedOverMem(t, 2, 8192, 512, true)
	if sp.Size() != 2*8192 {
		t.Fatalf("Size = %d, want %d", sp.Size(), 2*8192)
	}
	if err := sp.Write(nil, sp.Size()-100, 200, nil, 0); err == nil {
		t.Error("write past striped end accepted")
	}
	if _, err := sp.Read(nil, -1, 10, 0); err == nil {
		t.Error("negative read offset accepted")
	}
	if err := sp.Write(nil, 0, 100, []byte("short"), 0); err == nil {
		t.Error("length/buffer mismatch accepted")
	}
	if _, err := NewStripedPlane(nil, 512); err == nil {
		t.Error("zero-width stripe accepted")
	}
	if _, err := NewStripedPlane([]plane.Plane{newMemPlane(256, true)}, 512); err == nil {
		t.Error("unit larger than child accepted")
	}
}

// TestStripedPlaneConcurrentOverTCP drives a StripedPlane whose
// children are real TCP targets from many goroutines at once (run
// under -race): the concurrent stripe fan-out and the batched
// submission path must cooperate without corruption.
func TestStripedPlaneConcurrentOverTCP(t *testing.T) {
	const targets = 3
	const childSize = 4 * model.MB
	const unit = 64 * 1024
	children := make([]plane.Plane, targets)
	for i := range children {
		_, addr := startTarget(t, map[uint32]int64{1: childSize})
		pool, err := DialPool(addr, 1, PoolConfig{
			QueuePairs: 2,
			Batch:      BatchConfig{Enabled: true, MergeWrites: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pool.Close() })
		tp, err := NewTCPPlane(pool, 0, childSize)
		if err != nil {
			t.Fatal(err)
		}
		children[i] = tp
	}
	sp, err := NewStripedPlane(children, unit)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 6
	var wg sync.WaitGroup
	errs := make([]error, workers)
	region := sp.Size() / workers
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7700 + i)))
			base := int64(i) * region
			for op := 0; op < 12; op++ {
				length := unit/2 + rng.Int63n(3*unit)
				off := base + rng.Int63n(region-length)
				payload := make([]byte, length)
				rng.Read(payload)
				if err := sp.Write(nil, off, length, payload, 0); err != nil {
					errs[i] = err
					return
				}
				got, err := sp.Read(nil, off, length, 0)
				if err != nil {
					errs[i] = err
					return
				}
				if !bytes.Equal(got, payload) {
					errs[i] = fmt.Errorf("worker %d op %d: striped read-back mismatch", i, op)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if err := sp.Flush(nil); err != nil {
		t.Fatal(err)
	}
}
