package nvmeof

import (
	"strings"
	"testing"

	"github.com/nvme-cr/nvmecr/internal/model"
)

func TestAdminNamespaceLifecycle(t *testing.T) {
	tgt := NewTargetWithCapacity(16 * model.MB)
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()

	admin, err := DialAdmin(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	// Create two namespaces.
	ns1, err := admin.CreateNamespace(4 * model.MB)
	if err != nil {
		t.Fatal(err)
	}
	ns2, err := admin.CreateNamespace(8 * model.MB)
	if err != nil {
		t.Fatal(err)
	}
	if ns1 == ns2 {
		t.Fatal("duplicate NSIDs issued")
	}
	// List shows both.
	list, err := admin.ListNamespaces()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("list = %+v", list)
	}
	sizes := map[uint32]int64{}
	for _, e := range list {
		sizes[e.NSID] = e.Size
	}
	if sizes[ns1] != 4*model.MB || sizes[ns2] != 8*model.MB {
		t.Errorf("sizes = %v", sizes)
	}

	// Capacity enforcement: only 4 MB left.
	if _, err := admin.CreateNamespace(8 * model.MB); err == nil {
		t.Error("over-capacity namespace accepted")
	}

	// IO on a freshly created namespace works.
	h, err := Dial(addr, ns1)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WriteAt(0, []byte("granted")); err != nil {
		t.Fatal(err)
	}

	// Delete ns1: its queue pairs see errors, its space is reclaimed.
	if err := admin.DeleteNamespace(ns1); err != nil {
		t.Fatal(err)
	}
	if err := h.WriteAt(0, []byte("zombie")); err == nil {
		t.Error("write to deleted namespace accepted")
	}
	h.Close()
	if _, err := admin.CreateNamespace(8 * model.MB); err != nil {
		t.Errorf("reclaimed space not reusable: %v", err)
	}
	if err := admin.DeleteNamespace(9999); err == nil {
		t.Error("delete of unknown namespace accepted")
	}
	// Bad size.
	if _, err := admin.CreateNamespace(0); err == nil {
		t.Error("zero-size namespace accepted")
	}
}

// TestIOQueueCannotDoAdmin is the other direction of the admin/IO
// separation: a namespace-bound queue pair must not carry the
// namespace-management command set (DialAdmin documents that model).
func TestIOQueueCannotDoAdmin(t *testing.T) {
	tgt := NewTarget()
	if err := tgt.AddNamespace(1, NewMemNamespace(model.MB)); err != nil {
		t.Fatal(err)
	}
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	h, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.CreateNamespace(model.MB); err == nil {
		t.Error("CREATE-NS on I/O queue pair accepted")
	} else if want := statusText(StatusWrongQueue); !strings.Contains(err.Error(), want) {
		t.Errorf("CREATE-NS rejection = %v, want %q", err, want)
	}
	if err := h.DeleteNamespace(1); err == nil {
		t.Error("DELETE-NS on I/O queue pair accepted")
	}
	if _, err := h.ListNamespaces(); err == nil {
		t.Error("LIST-NS on I/O queue pair accepted")
	}
	// The namespace must be untouched and the queue pair still usable.
	if err := h.WriteAt(0, []byte("still-works")); err != nil {
		t.Errorf("I/O after rejected admin commands: %v", err)
	}
	if _, ok := tgt.namespaces[1]; !ok {
		t.Error("namespace deleted through an I/O queue pair")
	}
}

func TestAdminQueueCannotDoIO(t *testing.T) {
	tgt := NewTarget()
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	admin, err := DialAdmin(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	if err := admin.WriteAt(0, []byte("x")); err == nil {
		t.Error("IO on admin queue pair accepted")
	}
	if _, err := admin.ReadAt(0, 4); err == nil {
		t.Error("read on admin queue pair accepted")
	}
}

func TestSchedulerStyleRemoteGrant(t *testing.T) {
	// The sched package's flow, but against a real remote target: grant
	// a namespace, run a microfs-style workload region through a data
	// queue pair, release it.
	tgt := NewTargetWithCapacity(64 * model.MB)
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	admin, err := DialAdmin(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	for job := 0; job < 3; job++ {
		nsid, err := admin.CreateNamespace(48 * model.MB)
		if err != nil {
			t.Fatalf("job %d grant: %v", job, err)
		}
		h, err := Dial(addr, nsid)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.WriteAt(1024, []byte("job data")); err != nil {
			t.Fatal(err)
		}
		h.Close()
		if err := admin.DeleteNamespace(nsid); err != nil {
			t.Fatalf("job %d release: %v", job, err)
		}
	}
}
