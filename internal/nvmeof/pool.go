package nvmeof

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nvme-cr/nvmecr/internal/telemetry"
)

// ErrPoolClosed reports a command issued after HostPool.Close.
var ErrPoolClosed = errors.New("nvmeof: pool closed")

// ErrNoQueuePairs reports that every queue pair in the pool is down and
// awaiting reconnection.
var ErrNoQueuePairs = errors.New("nvmeof: all queue pairs down")

// maxReconnectBackoff caps the exponential reconnect backoff.
const maxReconnectBackoff = time.Second

// PoolConfig tunes a HostPool. The zero value gets sensible defaults.
type PoolConfig struct {
	// QueuePairs is the number of connections opened to the target
	// (default 4). More queue pairs remove head-of-line blocking: one
	// slow READ no longer stalls every other command.
	QueuePairs int
	// CommandTimeout bounds each command round trip on every queue
	// pair (default 0 = no deadline).
	CommandTimeout time.Duration
	// Dial opens each queue pair's transport connection (default
	// net.Dial over TCP); reconnects use it too. See HostConfig.Dial.
	Dial func(addr string) (net.Conn, error)
	// MaxRetries is how many extra attempts idempotent commands
	// (READ, IDENTIFY, LIST-NS) get after a transport failure or
	// timeout (default 2). Non-idempotent commands never retry.
	MaxRetries int
	// RetryBackoff is the initial delay between retries; it doubles
	// per attempt (default 2ms).
	RetryBackoff time.Duration
	// ReconnectBackoff is the initial delay between reconnect
	// attempts for a failed queue pair; it doubles per attempt up to
	// one second (default 10ms).
	ReconnectBackoff time.Duration
	// Telemetry is the registry every queue pair records into. Nil
	// gets a private registry, so Snapshot always reports live counts.
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, makes every queue pair negotiate the trace
	// capsule extension and emit correlated "nvmeof.cmd" spans with the
	// target-reported phase breakdown (see HostConfig.Tracer). Nil
	// keeps the legacy wire format.
	Tracer *telemetry.Tracer
	// FlightDepth is the per-queue-pair flight-recorder ring size
	// (default DefaultFlightDepth). Every slot records into its own
	// lock-striped ring of one shared recorder, exposed via Flight.
	FlightDepth int
	// Batch configures each queue pair's submission batcher (see
	// BatchConfig). The zero value keeps the direct path.
	Batch BatchConfig
	// BusyPoll makes every queue pair spin briefly for its completion
	// before parking on the scheduler (see HostConfig.BusyPoll).
	BusyPoll bool
	// BusyPollSpins bounds the busy-poll spin count (default 128;
	// ignored unless BusyPoll is set).
	BusyPollSpins int
	// Gate, when non-nil, is consulted before every command leaves the
	// pool: Acquire must grant a slot (deadline-ordered admission, see
	// sched.EDF) or fail with a typed error that surfaces to the
	// caller unwrapped. The deadline passed is now+CommandTimeout, or
	// zero when the pool has no timeout. Composes with QPBias: the gate
	// decides *when* a command may submit, bias decides *where*.
	Gate CommandGate
	// GateTenant is the tenant label this pool presents to Gate
	// (default "default"). One gate shared across per-tenant pools is
	// how multi-tenant deadline scheduling is wired up.
	GateTenant string
}

// CommandGate is the pool's admission hook for deadline-aware command
// scheduling. sched.EDF satisfies it. Acquire blocks until a slot is
// granted — at most until deadline — and returns a release function,
// or fails with the gate's typed error (e.g. sched.ErrShed,
// sched.ErrLate); errors.Is must work on the result. A zero deadline
// means the command has no bound.
type CommandGate interface {
	Acquire(tenant string, deadline time.Time) (func(), error)
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.QueuePairs <= 0 {
		c.QueuePairs = 4
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.ReconnectBackoff <= 0 {
		c.ReconnectBackoff = 10 * time.Millisecond
	}
	if c.GateTenant == "" {
		c.GateTenant = "default"
	}
	return c
}

// qpSlot is one pool position. The Host occupying it is replaced on
// reconnect; a nil host means the slot is down. Commands, errors, and
// latency are recorded by the Host itself inside roundTrip; the slot's
// instruments share those series (same registry, same qp label) and
// additionally count pool-level events: retries and reconnects.
type qpSlot struct {
	id   int
	tel  qpTelemetry
	bias atomic.Int32 // QPBias, set by external health judgment

	mu           sync.Mutex
	host         *Host
	reconnecting bool
}

// HostPool is an NVMe-oF initiator that shards commands across several
// queue pairs to one target namespace — the paper's many-independent-
// queue-pairs scaling model (§III, Fig. 4). Selection is round-robin
// biased toward the shallowest queue; failed queue pairs are re-dialed
// in the background with exponential backoff instead of poisoning the
// pool, and idempotent commands transparently retry on a sibling queue
// pair. Safe for concurrent use.
type HostPool struct {
	addr string
	nsid uint32
	cfg  PoolConfig

	slots  []*qpSlot
	rr     uint32 // atomic round-robin cursor
	fill   int    // batching pools: fill a queue pair to this depth before spilling
	nsSize int64
	reg    *telemetry.Registry
	flight *FlightRecorder

	closed    chan struct{}
	closeOnce sync.Once
	closeMu   sync.Mutex // orders reconnector spawns against Close
	isClosed  bool
	wg        sync.WaitGroup // background reconnectors
}

// DialPool opens cfg.QueuePairs connections to the target namespace.
// Every queue pair must connect for DialPool to succeed; after that,
// individual failures are repaired in the background.
func DialPool(addr string, nsid uint32, cfg PoolConfig) (*HostPool, error) {
	cfg = cfg.withDefaults()
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.New()
	}
	p := &HostPool{
		addr:   addr,
		nsid:   nsid,
		cfg:    cfg,
		closed: make(chan struct{}),
		reg:    reg,
		flight: NewFlightRecorder(cfg.FlightDepth),
	}
	if cfg.Batch.Enabled {
		p.fill = cfg.Batch.withDefaults().MaxCommands
	}
	for i := 0; i < cfg.QueuePairs; i++ {
		h, err := p.dialSlot(i)
		if err != nil {
			for _, s := range p.slots {
				s.host.Close()
			}
			return nil, fmt.Errorf("nvmeof: pool: queue pair %d: %w", i, err)
		}
		p.slots = append(p.slots, &qpSlot{id: i, tel: newQPTelemetry(reg, i), host: h})
	}
	p.nsSize = p.slots[0].host.NamespaceSize()
	reg.Gauge(MetricPoolQueuePairs, nil).Set(int64(cfg.QueuePairs))
	return p, nil
}

// dialSlot opens the queue pair for slot i against the shared registry,
// so a replacement Host dialed after an outage lands on the same series.
func (p *HostPool) dialSlot(i int) (*Host, error) {
	return DialConfig(p.addr, p.nsid, HostConfig{
		CommandTimeout: p.cfg.CommandTimeout,
		Dial:           p.cfg.Dial,
		Telemetry:      p.reg,
		TelemetryQP:    i,
		Tracer:         p.cfg.Tracer,
		Flight:         p.flight,
		Batch:          p.cfg.Batch,
		BusyPoll:       p.cfg.BusyPoll,
		BusyPollSpins:  p.cfg.BusyPollSpins,
	})
}

// NamespaceSize returns the connected namespace's capacity.
func (p *HostPool) NamespaceSize() int64 { return p.nsSize }

// QueuePairs returns the pool width.
func (p *HostPool) QueuePairs() int { return len(p.slots) }

// Telemetry returns the registry the pool's queue pairs record into,
// for exposition (e.g. the nvmecrd admin listener's /metrics).
func (p *HostPool) Telemetry() *telemetry.Registry { return p.reg }

// Snapshot reports every queue pair's live counters and latency
// quantiles in the unified snapshot form, ordered by slot ID.
func (p *HostPool) Snapshot() []telemetry.HostQPSnapshot {
	out := make([]telemetry.HostQPSnapshot, 0, len(p.slots))
	for _, s := range p.slots {
		s.mu.Lock()
		h := s.host
		s.mu.Unlock()
		healthy, inflight := false, 0
		if h != nil && h.Healthy() {
			healthy = true
			inflight = h.InFlight()
		}
		out = append(out, s.tel.snapshot(s.id, healthy, inflight))
	}
	return out
}

// Flight returns the pool's shared flight recorder: every slot's last
// completed commands, one lock-striped ring per queue pair.
func (p *HostPool) Flight() *FlightRecorder { return p.flight }

// dumpFlight emits one queue pair's flight ring into the trace stream
// (the automatic postmortem when a command exhausts its retries).
func (p *HostPool) dumpFlight(qp int, reason string) {
	if p.cfg.Tracer == nil {
		return
	}
	recs := p.flight.QueuePair(qp)
	if len(recs) == 0 {
		return
	}
	p.cfg.Tracer.Emit(telemetry.Event{
		Name: "nvmeof.flight", Rank: -1,
		Attrs: map[string]any{"qp": qp, "reason": reason, "records": recs},
	})
}

// acquire picks a queue pair: scan round-robin from a moving cursor,
// take the first idle queue pair, otherwise the shallowest. Dead queue
// pairs encountered on the way are handed to the reconnector.
func (p *HostPool) acquire() (*qpSlot, *Host, error) {
	select {
	case <-p.closed:
		return nil, nil, ErrPoolClosed
	default:
	}
	n := len(p.slots)
	// Batching pools fill queue pairs before spilling to the next:
	// overlapping submissions that land in the same batcher coalesce
	// into one vectored write, whereas balancing by depth would cut N
	// shallow batches across N batchers. Scanning from slot 0 keeps the
	// concentration point stable; a queue pair spills once its depth
	// reaches the batch command budget, and if every pair is at budget
	// the shallowest wins (same as the unbatched policy).
	// Biased queue pairs never win outright: BiasSoft carries a depth
	// handicap so siblings are preferred until they are genuinely
	// deeper, and BiasAvoid pairs are a separate last-resort class used
	// only when nothing else is up.
	var avoid *qpSlot
	var avoidHost *Host
	avoidDepth := 0
	if p.fill > 0 {
		var best *qpSlot
		var bestHost *Host
		bestDepth := 0
		for _, s := range p.slots {
			s.mu.Lock()
			h := s.host
			s.mu.Unlock()
			if h == nil || !h.Healthy() {
				p.noteFailure(s, h)
				continue
			}
			d := h.InFlight()
			switch QPBias(s.bias.Load()) {
			case BiasAvoid:
				if avoid == nil || d < avoidDepth {
					avoid, avoidHost, avoidDepth = s, h, d
				}
				continue
			case BiasSoft:
				d += softBiasHandicap
			default:
				if d < p.fill {
					return s, h, nil
				}
			}
			if best == nil || d < bestDepth {
				best, bestHost, bestDepth = s, h, d
			}
		}
		if best != nil {
			return best, bestHost, nil
		}
		if avoid != nil {
			return avoid, avoidHost, nil
		}
		return nil, nil, ErrNoQueuePairs
	}
	start := int(atomic.AddUint32(&p.rr, 1))
	var best *qpSlot
	var bestHost *Host
	bestDepth := 0
	for i := 0; i < n; i++ {
		s := p.slots[(start+i)%n]
		s.mu.Lock()
		h := s.host
		s.mu.Unlock()
		if h == nil || !h.Healthy() {
			p.noteFailure(s, h)
			continue
		}
		d := h.InFlight()
		b := QPBias(s.bias.Load())
		if b == BiasAvoid {
			if avoid == nil || d < avoidDepth {
				avoid, avoidHost, avoidDepth = s, h, d
			}
			continue
		}
		if b == BiasSoft {
			d += softBiasHandicap
		}
		if best == nil || d < bestDepth {
			best, bestHost, bestDepth = s, h, d
		}
		if b == BiasNone && d == 0 {
			break // idle unbiased queue pair: no need to keep probing
		}
	}
	if best != nil {
		return best, bestHost, nil
	}
	if avoid != nil {
		return avoid, avoidHost, nil
	}
	return nil, nil, ErrNoQueuePairs
}

// noteFailure marks a slot's host dead (if it still occupies the slot)
// and starts the background reconnector once per outage.
func (p *HostPool) noteFailure(s *qpSlot, h *Host) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h != nil && s.host == h {
		s.host = nil
		h.Close()
	}
	if s.host == nil && !s.reconnecting && p.startReconnector(s) {
		s.reconnecting = true
	}
}

// startReconnector spawns the background re-dial goroutine unless the
// pool is closing (spawning after Close's wg.Wait would race).
func (p *HostPool) startReconnector(s *qpSlot) bool {
	p.closeMu.Lock()
	defer p.closeMu.Unlock()
	if p.isClosed {
		return false
	}
	p.wg.Add(1)
	go p.reconnect(s)
	return true
}

// reconnect re-CONNECTs a failed queue pair and re-registers it in its
// slot, backing off exponentially until it succeeds or the pool closes.
func (p *HostPool) reconnect(s *qpSlot) {
	defer p.wg.Done()
	backoff := p.cfg.ReconnectBackoff
	for {
		select {
		case <-p.closed:
			s.mu.Lock()
			s.reconnecting = false
			s.mu.Unlock()
			return
		default:
		}
		h, err := p.dialSlot(s.id)
		if err == nil {
			s.mu.Lock()
			select {
			case <-p.closed:
				s.reconnecting = false
				s.mu.Unlock()
				h.Close()
				return
			default:
			}
			s.host = h
			s.reconnecting = false
			s.tel.reconnects.Inc()
			s.mu.Unlock()
			return
		}
		timer := time.NewTimer(backoff)
		select {
		case <-p.closed:
			timer.Stop()
			s.mu.Lock()
			s.reconnecting = false
			s.mu.Unlock()
			return
		case <-timer.C:
		}
		if backoff *= 2; backoff > maxReconnectBackoff {
			backoff = maxReconnectBackoff
		}
	}
}

// gateAcquire enters the pool's command gate (when one is configured)
// with a deadline of now+CommandTimeout, covering the whole command
// including retries. The returned release is safe to call when the
// gate is nil.
func (p *HostPool) gateAcquire() (func(), error) {
	if p.cfg.Gate == nil {
		return func() {}, nil
	}
	var deadline time.Time
	if p.cfg.CommandTimeout > 0 {
		deadline = time.Now().Add(p.cfg.CommandTimeout)
	}
	return p.cfg.Gate.Acquire(p.cfg.GateTenant, deadline)
}

// do runs one command on a selected queue pair; idempotent commands are
// retried with backoff on transport failures and timeouts. A completion
// with a non-OK status is a definitive answer, not a transport failure,
// and is returned without retrying.
func (p *HostPool) do(cmd *Command, idempotent bool) (Response, error) {
	release, err := p.gateAcquire()
	if err != nil {
		return Response{}, err
	}
	defer release()
	attempts := 1
	if idempotent {
		attempts += p.cfg.MaxRetries
	}
	backoff := p.cfg.RetryBackoff
	var lastErr error
	lastQP := -1
	for a := 0; a < attempts; a++ {
		if a > 0 {
			timer := time.NewTimer(backoff)
			select {
			case <-p.closed:
				timer.Stop()
				return Response{}, ErrPoolClosed
			case <-timer.C:
			}
			backoff *= 2
		}
		s, h, err := p.acquire()
		if err != nil {
			if errors.Is(err, ErrPoolClosed) {
				return Response{}, err
			}
			lastErr = err
			continue
		}
		if a > 0 {
			s.tel.retries.Inc()
		}
		// submit records commands, errors, bytes, latency, and the
		// slot's flight ring (via the pool-shared recorder).
		resp, err := h.submit(cmd)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		lastQP = s.id
		if !errors.Is(err, ErrTimeout) {
			// The queue pair is dead; a timed-out queue pair stays up
			// (its command was abandoned, not its connection).
			p.noteFailure(s, h)
		}
	}
	if attempts > 1 && lastQP >= 0 {
		p.dumpFlight(lastQP, "retry-exhausted")
	}
	return Response{}, lastErr
}

// WriteAt writes data at the namespace offset. WRITE is not retried:
// the pool cannot know whether a failed round trip mutated the
// namespace, so the error surfaces to the caller.
func (p *HostPool) WriteAt(off int64, data []byte) error {
	resp, err := p.do(&Command{Opcode: OpWriteCmd, Offset: uint64(off), Data: data}, false)
	return checkResp(resp, err, "write")
}

// WriteAtV writes the concatenation of bufs at the namespace offset
// without copying them into a staging buffer: each buf rides to the
// socket as its own iovec (see Host.WriteAtV). Like WriteAt, it is not
// retried.
func (p *HostPool) WriteAtV(off int64, bufs [][]byte) error {
	release, err := p.gateAcquire()
	if err != nil {
		return err
	}
	defer release()
	s, h, err := p.acquire()
	if err != nil {
		return fmt.Errorf("nvmeof: writev: %w", err)
	}
	if err := h.WriteAtV(off, bufs); err != nil {
		if !errors.Is(err, ErrTimeout) {
			p.noteFailure(s, h)
		}
		return err
	}
	return nil
}

// WriteAtBuffer writes a registered buffer's bytes at the namespace
// offset. The buffer stays pinned while the capsule is in flight (see
// Host.WriteAtBuffer and BufferPool). Not retried.
func (p *HostPool) WriteAtBuffer(off int64, buf *Buffer) error {
	release, err := p.gateAcquire()
	if err != nil {
		return err
	}
	defer release()
	s, h, err := p.acquire()
	if err != nil {
		return fmt.Errorf("nvmeof: write-buffer: %w", err)
	}
	if err := h.WriteAtBuffer(off, buf); err != nil {
		if !errors.Is(err, ErrTimeout) {
			p.noteFailure(s, h)
		}
		return err
	}
	return nil
}

// ReadAt reads length bytes from the namespace offset, retrying on
// transient transport failures.
func (p *HostPool) ReadAt(off, length int64) ([]byte, error) {
	if err := validateReadLength(length); err != nil {
		return nil, err
	}
	resp, err := p.do(&Command{Opcode: OpReadCmd, Offset: uint64(off), Length: uint32(length)}, true)
	if err := checkResp(resp, err, "read"); err != nil {
		return nil, err
	}
	return validateReadData(resp, length)
}

// Flush issues a durability barrier on every healthy queue pair, so
// writes sharded across the pool are all covered.
func (p *HostPool) Flush() error {
	select {
	case <-p.closed:
		return ErrPoolClosed
	default:
	}
	var firstErr error
	flushed := 0
	for _, s := range p.slots {
		s.mu.Lock()
		h := s.host
		s.mu.Unlock()
		if h == nil || !h.Healthy() {
			p.noteFailure(s, h)
			continue
		}
		resp, err := h.submit(&Command{Opcode: OpFlushCmd})
		if err != nil {
			if !errors.Is(err, ErrTimeout) {
				p.noteFailure(s, h)
			}
		}
		if cerr := checkResp(resp, err, "flush"); cerr != nil {
			if firstErr == nil {
				firstErr = cerr
			}
			continue
		}
		flushed++
	}
	if firstErr != nil {
		return firstErr
	}
	if flushed == 0 {
		return fmt.Errorf("nvmeof: flush: %w", ErrNoQueuePairs)
	}
	return nil
}

// Identify re-reads the namespace properties (idempotent; retried).
func (p *HostPool) Identify() (int64, error) {
	resp, err := p.do(&Command{Opcode: OpIdentify}, true)
	if err := checkResp(resp, err, "identify"); err != nil {
		return 0, err
	}
	return int64(resp.Value), nil
}

// CreateNamespace creates a namespace on the target (admin pool only;
// not retried — a duplicate grant would leak capacity).
func (p *HostPool) CreateNamespace(size int64) (uint32, error) {
	resp, err := p.do(&Command{Opcode: OpCreateNS, Offset: uint64(size)}, false)
	if err := checkResp(resp, err, "create-ns"); err != nil {
		return 0, err
	}
	return uint32(resp.Value), nil
}

// DeleteNamespace reclaims a namespace on the target (not retried).
func (p *HostPool) DeleteNamespace(nsid uint32) error {
	resp, err := p.do(&Command{Opcode: OpDeleteNS, NSID: nsid}, false)
	return checkResp(resp, err, "delete-ns")
}

// ListNamespaces enumerates the target's exports (idempotent; retried).
func (p *HostPool) ListNamespaces() ([]NamespaceInfo, error) {
	resp, err := p.do(&Command{Opcode: OpListNS}, true)
	if err := checkResp(resp, err, "list-ns"); err != nil {
		return nil, err
	}
	return decodeNamespaceList(resp.Data)
}

// Close tears down every queue pair and stops all reconnectors.
func (p *HostPool) Close() error {
	p.closeMu.Lock()
	p.isClosed = true
	p.closeOnce.Do(func() { close(p.closed) })
	p.closeMu.Unlock()
	p.wg.Wait()
	var firstErr error
	for _, s := range p.slots {
		s.mu.Lock()
		if s.host != nil {
			if err := s.host.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			s.host = nil
		}
		s.mu.Unlock()
	}
	return firstErr
}
