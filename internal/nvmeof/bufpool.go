package nvmeof

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// BufferPool hands out fixed-size registered buffers for zero-copy
// WRITE submission (Host.WriteAtBuffer, HostPool.WriteAtBuffer). A
// registered buffer's bytes ride to the socket as their own iovec —
// no staging copy — which makes buffer lifetime a transport concern:
// the payload must stay immutable from submission until the transport
// is provably done with it, and on the timeout path that moment is
// NOT when the call returns (the capsule may still sit in a pending
// batch, or the abandoned command's bytes may still be draining into
// the socket).
//
// The pool enforces that contract with a registration count. Acquiring
// a buffer gives the caller one reference; each in-flight submission
// pins one more; Release while any pin is held PANICS — that panic is
// the use-after-register detection, turning a silent in-flight capsule
// corruption into a loud programming error at the exact call site.
type BufferPool struct {
	size int

	mu   sync.Mutex
	free []*Buffer
}

// NewBufferPool creates a pool of size-byte buffers. Buffers are
// allocated on demand and recycled on Release, so steady-state
// acquisition allocates nothing.
func NewBufferPool(size int) *BufferPool {
	if size <= 0 || size > MaxDataLen {
		panic(fmt.Sprintf("nvmeof: buffer pool size %d out of range (0, %d]", size, MaxDataLen))
	}
	return &BufferPool{size: size}
}

// BufferSize returns the fixed size of this pool's buffers.
func (p *BufferPool) BufferSize() int { return p.size }

// Get acquires a buffer. The caller owns it (one reference) until
// Release; its contents are uninitialized (previous occupant's bytes).
func (p *BufferPool) Get() *Buffer {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		b.refs.Store(1)
		return b
	}
	p.mu.Unlock()
	b := &Buffer{pool: p, buf: make([]byte, p.size)}
	b.refs.Store(1)
	return b
}

// Buffer is one registered payload buffer. The reference count is 1
// while only the caller holds it; every in-flight submission that
// aliases its bytes adds one (register) and drops it when the
// transport is done — completion consumed, slot swept on failure, or
// abandoned slot reclaimed after a late completion (unregister).
type Buffer struct {
	pool *BufferPool
	buf  []byte
	refs atomic.Int32
}

// Bytes returns the buffer's backing slice. Callers fill it before
// submission; mutating it while registered corrupts the in-flight
// capsule (which is exactly what the registration count exists to
// catch on the Release path).
func (b *Buffer) Bytes() []byte { return b.buf }

// Registered reports whether any in-flight submission currently pins
// this buffer.
func (b *Buffer) Registered() bool { return b.refs.Load() > 1 }

// register pins the buffer for one in-flight submission.
func (b *Buffer) register() { b.refs.Add(1) }

// unregister drops one in-flight pin.
func (b *Buffer) unregister() {
	if b.refs.Add(-1) < 1 {
		panic("nvmeof: buffer unregistered more times than registered")
	}
}

// Release returns the buffer to its pool. It panics while the buffer
// is still registered to an in-flight submission: releasing (and then
// reusing or mutating) a buffer whose bytes the transport still owns
// is the zero-copy use-after-free, and a timed-out WriteAtBuffer is
// the canonical way to hit it — the command was abandoned, not
// completed, so its capsule may still be in flight. Poll Registered
// (or retry Release later) after a timeout.
func (b *Buffer) Release() {
	if !b.refs.CompareAndSwap(1, 0) {
		panic(fmt.Sprintf("nvmeof: buffer released while registered to %d in-flight submission(s)", b.refs.Load()-1))
	}
	p := b.pool
	p.mu.Lock()
	p.free = append(p.free, b)
	p.mu.Unlock()
}
