package nvmeof

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// The mirrored no-lost-byte property: a seeded randomized workload run
// against a single-target plane and against an R-way mirrored striped
// plane must produce byte-identical read-back, including when member
// targets are killed mid-batch, when a member's DISK dies (namespace
// wiped — the data is gone, only its mirror siblings have it), and
// when the wiped member is migrated back in — rebuilt chunk-by-chunk
// from a live sibling — while the workload keeps writing. Failures
// print the seed and both worlds' fault traces for replay.

const (
	// eqMigrationBurst is the burst during which the mirrored world
	// loses a disk and migrates it back, concurrently with the burst's
	// writes (and with any plan-scheduled process kill — a target can
	// die mid-migration too, including the rebuild's copy source).
	eqMigrationBurst = eqBursts / 2
	// eqSyncChunk is the rebuild sweep granularity.
	eqSyncChunk = 8 * 1024
)

// migrateMember runs the full inline migration of one member whose
// disk just died: drain, wipe (data loss), in-place rebuild from a
// live sibling, cutover. It returns only when the member is live again
// with a complete copy.
func (w *eqWorld) migrateMember(victim int) error {
	if err := w.sp.SetChildDown(victim); err != nil {
		return err
	}
	if err := w.wipeKill(victim); err != nil {
		return err
	}
	if err := w.sp.BeginRebuild(victim, nil); err != nil {
		return err
	}
	for off := int64(0); off < w.sp.ChildSize(); off += eqSyncChunk {
		if err := w.mustSync(victim, off, eqSyncChunk); err != nil {
			return err
		}
	}
	return w.sp.SetChildLive(victim)
}

// eqMirrorIteration runs one seeded workload against the single-target
// reference and a groups x replicas mirrored world, comparing as it
// goes. At eqMigrationBurst the mirrored world takes a disk death plus
// live migration concurrent with the burst's writes.
func eqMirrorIteration(t *testing.T, seed int64, groups, replicas int) {
	t.Helper()
	unitSpan := eqStripeUnit * int64(groups)
	total := (2 * int64(eqChildSize) * int64(groups)) / unitSpan * unitSpan
	single := newEqWorld(t, 1, total, seed)
	mirrored := newMirroredEqWorld(t, groups, replicas, total, seed)
	if single.plane.Size() != total || mirrored.plane.Size() != total {
		t.Fatalf("seed %d: world sizes diverge: %d vs %d (want %d)",
			seed, single.plane.Size(), mirrored.plane.Size(), total)
	}
	size := total
	rng := rand.New(rand.NewSource(seed))
	// The dying member: any index; its group keeps replicas-1 live
	// copies through the loss.
	victim := int(seed) % (groups * replicas)
	if victim < 0 {
		victim = -victim
	}

	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("seed=%d groups=%d r=%d: %s\nsingle: %s\nmirrored: %s",
			seed, groups, replicas, fmt.Sprintf(format, args...),
			single.plan.FormatTrace(), mirrored.plan.FormatTrace())
	}

	for burst := 0; burst < eqBursts; burst++ {
		slot := size / eqBurstWidth
		offs := make([]int64, eqBurstWidth)
		payloads := make([][]byte, eqBurstWidth)
		for i := range offs {
			length := 1 + rng.Int63n(eqMaxWrite)
			if length > slot {
				length = slot
			}
			offs[i] = int64(i)*slot + rng.Int63n(slot-length+1)
			payloads[i] = make([]byte, length)
			rng.Read(payloads[i])
		}
		if err := single.runBurst(burst, offs, payloads); err != nil {
			fail("single world burst %d: %v", burst, err)
		}
		if burst == eqMigrationBurst {
			// Disk death + live migration, concurrent with the burst's
			// writes (and with any plan-fired mid-migration kill).
			var wg sync.WaitGroup
			var migErr, burstErr error
			wg.Add(2)
			go func() {
				defer wg.Done()
				migErr = mirrored.migrateMember(victim)
			}()
			go func() {
				defer wg.Done()
				burstErr = mirrored.runBurst(burst, offs, payloads)
			}()
			wg.Wait()
			if migErr != nil {
				fail("migration of member %d: %v", victim, migErr)
			}
			if burstErr != nil {
				fail("mirrored world burst %d (mid-migration): %v", burst, burstErr)
			}
		} else if err := mirrored.runBurst(burst, offs, payloads); err != nil {
			fail("mirrored world burst %d: %v", burst, err)
		}

		if err := single.mustFlush(); err != nil {
			fail("single flush after burst %d: %v", burst, err)
		}
		if err := mirrored.mustFlush(); err != nil {
			fail("mirrored flush after burst %d: %v", burst, err)
		}
		length := 1 + rng.Int63n(4*eqStripeUnit)
		off := rng.Int63n(size - length)
		a, err := single.mustRead(off, length)
		if err != nil {
			fail("single read after burst %d: %v", burst, err)
		}
		b, err := mirrored.mustRead(off, length)
		if err != nil {
			fail("mirrored read after burst %d: %v", burst, err)
		}
		if !bytes.Equal(a, b) {
			fail("burst %d: read [%d,+%d) diverges between worlds", burst, off, length)
		}
	}

	// Full read-back: both worlds byte-identical to the expected image.
	a, err := single.mustRead(0, size)
	if err != nil {
		fail("single full read: %v", err)
	}
	b, err := mirrored.mustRead(0, size)
	if err != nil {
		fail("mirrored full read: %v", err)
	}
	if !bytes.Equal(a, b) {
		fail("full read-back diverges between worlds")
	}
	if !bytes.Equal(b, mirrored.expect) {
		fail("mirrored world lost acked data")
	}

	// The rebuilt member alone must hold its group's every acked byte:
	// kill its siblings and read everything again. This is the
	// no-lost-byte guarantee surviving the full loss-and-migration
	// cycle — the wiped disk's replacement copy is complete.
	geo := mirrored.sp.Geometry()
	group := geo.GroupOf(victim)
	for r := 0; r < replicas; r++ {
		if m := geo.Member(group, r); m != victim {
			if err := mirrored.sp.SetChildDown(m); err != nil {
				fail("downing sibling %d: %v", m, err)
			}
		}
	}
	c, err := mirrored.mustRead(0, size)
	if err != nil {
		fail("read with only the rebuilt member live: %v", err)
	}
	if !bytes.Equal(c, mirrored.expect) {
		fail("rebuilt member serves stale/incomplete data")
	}
}

// TestMirroredSingleEquivalence is the mirrored acceptance property:
// 100 seeded iterations (>= 20 in -short mode) across (groups,
// replicas) shapes (2,2), (1,3), (3,2), each with probabilistic
// mid-batch process kills AND a disk-death-plus-live-migration cycle
// mid-campaign. Reproduce any failure by its printed seed.
func TestMirroredSingleEquivalence(t *testing.T) {
	iters := 100
	if testing.Short() {
		iters = 20
	}
	shapes := []struct{ groups, replicas int }{{2, 2}, {1, 3}, {3, 2}}
	const baseSeed = 0xD15C
	for i := 0; i < iters; i++ {
		seed := int64(baseSeed + i)
		shape := shapes[i%len(shapes)]
		t.Run(fmt.Sprintf("seed=%d/groups=%d/r=%d", seed, shape.groups, shape.replicas), func(t *testing.T) {
			eqMirrorIteration(t, seed, shape.groups, shape.replicas)
		})
	}
}
