package nvmeof

import (
	"sync/atomic"
)

// This file is the polled submission path's spine: a bounded MPMC ring
// of slot indices (the free list every submitter acquires from) and the
// per-queue-pair slot array it indexes. The design follows the SPDK
// run-to-completion model the paper's data path is built on (§IV): all
// per-command state is preallocated at queue-pair creation, a command's
// lifetime is a slot cycling free → in-flight → delivered → free, and
// the steady state allocates nothing. The command ID on the wire is the
// slot index plus one, so completion dispatch is an array index instead
// of a map lookup.

// hostQueueDepth is each queue pair's slot-ring depth: the maximum
// commands (leaders; merged followers ride in their leader's capsule
// but also hold a slot while parked) outstanding at once. Must be a
// power of two and leave every CID representable in uint16.
const hostQueueDepth = 1024

// Slot lifecycle states. Transitions are CAS-based so the read loop,
// the owner's timeout path, and the failure sweep can race safely:
// exactly one of them wins each transition.
const (
	// slotFree: in the free ring (or being carried between acquire and
	// registration by its owner).
	slotFree uint32 = iota
	// slotInflight: registered under a wire CID, owner parked on ch.
	slotInflight
	// slotMergeWait: parked as a merged-WRITE follower; no wire CID of
	// its own, completed by its leader's completion fan-out.
	slotMergeWait
	// slotDelivered: completion value sent on ch; owner consumes and
	// frees.
	slotDelivered
	// slotAbandoned: owner timed out and detached. The slot is reclaimed
	// (freed) by the read loop when the late completion arrives, so the
	// CID is never reissued while the target may still answer it.
	slotAbandoned
	// slotFailed: the queue pair died with this command outstanding; ch
	// is closed and the slot is never reused (the host is dead).
	slotFailed
)

// hostSlot is one preallocated command slot. The embedded Command and
// pendingCmd carry the submission; ch carries the completion back by
// value (buffered, capacity 1, so the read loop's send under respMu
// never blocks). A slot's CID is idx+1 for its whole life.
type hostSlot struct {
	idx   uint16
	state atomic.Uint32
	ch    chan Response

	cmd Command
	// vec, when non-nil, is a vectored WRITE payload (WriteAtV): the
	// capsule's data is the concatenation of these slices, written to
	// the wire as separate iovecs with no intermediate copy.
	vec    [][]byte
	vecLen int
	// reg, when non-nil, is the registered buffer pinned by this
	// submission; unpinned when the slot leaves the in-flight world.
	reg *Buffer

	pc pendingCmd

	// followers are merged-WRITE follower slot indices riding in this
	// leader's capsule. Guarded by Host.respMu.
	followers       []uint16
	followersInline [4]uint16
	// leaderStat points at the leader's batch stat for a follower slot
	// (the flight record's batch-size field). Owner-local.
	leaderStat *batchStat
}

// indexRing is a bounded MPMC ring of slot indices — Vyukov's bounded
// queue: each cell carries a sequence number that encodes whether it is
// ready to produce into or consume from, so push and pop are single-CAS
// operations with no mutex. Sequence arithmetic is modular in uint32
// (compared via signed difference), so ticket wraparound is harmless —
// FuzzIndexRing drives the ring across the 2^32 boundary.
type indexRing struct {
	mask  uint32
	cells []ringCell
	_     [64]byte // keep head and tail on separate cache lines
	head  atomic.Uint32
	_     [64]byte
	tail  atomic.Uint32
}

type ringCell struct {
	seq atomic.Uint32
	val uint16
}

// newIndexRing creates a ring of the given power-of-two capacity with
// tickets starting at start (non-zero starts exercise wraparound).
func newIndexRing(capacity int, start uint32) *indexRing {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic("nvmeof: indexRing capacity must be a power of two")
	}
	r := &indexRing{mask: uint32(capacity - 1), cells: make([]ringCell, capacity)}
	// Each cell must be seeded with the ticket that maps to it
	// (ticket&mask picks the cell), not with cell index order — for a
	// start that is not mask-aligned the two differ, and a mis-seeded
	// cell never matches its producer's ticket.
	for i := 0; i < capacity; i++ {
		seq := start + uint32(i)
		r.cells[seq&r.mask].seq.Store(seq)
	}
	r.head.Store(start)
	r.tail.Store(start)
	return r
}

// push enqueues v; it returns false when the ring is full.
func (r *indexRing) push(v uint16) bool {
	for {
		tail := r.tail.Load()
		cell := &r.cells[tail&r.mask]
		seq := cell.seq.Load()
		switch d := int32(seq - tail); {
		case d == 0:
			if r.tail.CompareAndSwap(tail, tail+1) {
				cell.val = v
				cell.seq.Store(tail + 1)
				return true
			}
		case d < 0:
			return false // full: consumer has not cleared this cell yet
		}
		// d > 0: another producer claimed this ticket; retry.
	}
}

// pop dequeues the oldest index; it returns false when the ring is
// empty.
func (r *indexRing) pop() (uint16, bool) {
	for {
		head := r.head.Load()
		cell := &r.cells[head&r.mask]
		seq := cell.seq.Load()
		switch d := int32(seq - (head + 1)); {
		case d == 0:
			if r.head.CompareAndSwap(head, head+1) {
				v := cell.val
				cell.seq.Store(head + r.mask + 1)
				return v, true
			}
		case d < 0:
			return 0, false // empty
		}
	}
}

// occupancy reports how many indices the ring currently holds
// (approximate under concurrency; exact when quiescent).
func (r *indexRing) occupancy() int {
	d := int32(r.tail.Load() - r.head.Load())
	if d < 0 {
		return 0
	}
	return int(d)
}
