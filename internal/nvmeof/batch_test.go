package nvmeof

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/telemetry"
)

// TestBatchWireBytesPinned pins encodeCommandHeader to WriteCommandV:
// the batcher renders headers itself (so payloads can ride as separate
// iovecs), and the two encodings must never diverge — a batch is
// byte-for-byte the capsules a direct sender would emit.
func TestBatchWireBytesPinned(t *testing.T) {
	cmds := []*Command{
		{Opcode: OpConnect, NSID: 7, ProposeVersion: MaxVersion},
		{Opcode: OpWriteCmd, CID: 42, NSID: 1, Offset: 1 << 30, Data: []byte("payload")},
		{Opcode: OpReadCmd, CID: 0xFFFF, NSID: 3, Offset: 4096, Length: 8192},
		{Opcode: OpFlushCmd, CID: 9},
		{Opcode: OpWriteCmd, CID: 11, Offset: 512, Traced: true, TraceID: 0xDEADBEEFCAFE, Data: []byte("traced")},
	}
	for _, cmd := range cmds {
		version := VersionLegacy
		if cmd.Traced {
			version = VersionTrace
		}
		var direct bytes.Buffer
		if err := WriteCommandV(&direct, cmd, version); err != nil {
			t.Fatalf("%s: %v", cmd.Opcode, err)
		}
		batched := append(encodeCommandHeader(cmd), cmd.Data...)
		if !bytes.Equal(direct.Bytes(), batched) {
			t.Errorf("%s: batched encoding diverges from WriteCommandV\n direct:  %x\n batched: %x",
				cmd.Opcode, direct.Bytes(), batched)
		}
	}
}

// recordingConn captures every byte written to the wire.
type recordingConn struct {
	net.Conn
	mu  *sync.Mutex
	buf *bytes.Buffer
}

func (c recordingConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.buf.Write(p)
	c.mu.Unlock()
	return c.Conn.Write(p)
}

// TestBatchedWireStreamMatchesUnbatched is the legacy-interop pin: a
// batched initiator issuing commands one at a time puts the exact same
// bytes on the wire as an unbatched one, so any legacy target that
// speaks the capsule protocol is automatically a valid batch peer.
func TestBatchedWireStreamMatchesUnbatched(t *testing.T) {
	run := func(batch BatchConfig) []byte {
		_, addr := startTarget(t, map[uint32]int64{1: model.MB})
		var mu sync.Mutex
		var wire bytes.Buffer
		h, err := DialConfig(addr, 1, HostConfig{
			Batch: batch,
			Dial: func(a string) (net.Conn, error) {
				c, err := net.Dial("tcp", a)
				if err != nil {
					return nil, err
				}
				return recordingConn{Conn: c, mu: &mu, buf: &wire}, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		if err := h.WriteAt(0, []byte("interop-payload")); err != nil {
			t.Fatal(err)
		}
		if _, err := h.ReadAt(0, 15); err != nil {
			t.Fatal(err)
		}
		if err := h.Flush(); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		defer mu.Unlock()
		return append([]byte(nil), wire.Bytes()...)
	}
	unbatched := run(BatchConfig{})
	batched := run(BatchConfig{Enabled: true, MergeWrites: true})
	if !bytes.Equal(unbatched, batched) {
		t.Fatalf("batched wire stream diverged from unbatched\n unbatched: %x\n batched:   %x", unbatched, batched)
	}
}

// gatedConn blocks writes while the gate is held, so a test can wedge
// the flush leader mid-writev and pile followers into the pending queue.
type gatedConn struct {
	net.Conn
	gate *sync.Mutex
}

func (c gatedConn) Write(p []byte) (int, error) {
	c.gate.Lock()
	c.gate.Unlock()
	return c.Conn.Write(p)
}

// TestBatchMergeAdjacentWrites wedges the flush leader and submits two
// offset-adjacent WRITEs behind it: they must coalesce into one capsule
// (one target command), complete both submitters, and read back intact.
func TestBatchMergeAdjacentWrites(t *testing.T) {
	tgt, addr := startTarget(t, map[uint32]int64{1: model.MB})
	var gate sync.Mutex
	h, err := DialConfig(addr, 1, HostConfig{
		Batch: BatchConfig{Enabled: true, MergeWrites: true},
		Dial: func(a string) (net.Conn, error) {
			c, err := net.Dial("tcp", a)
			if err != nil {
				return nil, err
			}
			return gatedConn{Conn: c, gate: &gate}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Leader: a WRITE at offset 0 whose flush wedges on the gate.
	gate.Lock()
	errA := make(chan error, 1)
	go func() { errA <- h.WriteAt(0, bytes.Repeat([]byte{0xA1}, 64)) }()
	waitInflight := func(n int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for h.InFlight() < n {
			if time.Now().After(deadline) {
				t.Fatalf("in-flight never reached %d", n)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitInflight(1)

	// Followers: two adjacent WRITEs at [100,150) and [150,200). The
	// first becomes a pending capsule; the second merges into it.
	errB := make(chan error, 1)
	go func() { errB <- h.WriteAt(100, bytes.Repeat([]byte{0xB2}, 50)) }()
	waitInflight(2)
	errC := make(chan error, 1)
	go func() { errC <- h.WriteAt(150, bytes.Repeat([]byte{0xC3}, 50)) }()
	// The merged WRITE shares B's CID, so in-flight stays at 2; wait for
	// the merge via the telemetry counter instead.
	deadline := time.Now().Add(5 * time.Second)
	for h.tel.batchMerged.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("merge never recorded")
		}
		time.Sleep(time.Millisecond)
	}

	gate.Unlock()
	for name, ch := range map[string]chan error{"A": errA, "B": errB, "C": errC} {
		if err := <-ch; err != nil {
			t.Fatalf("write %s: %v", name, err)
		}
	}

	// One capsule carried B and C: the target served CONNECT + A + BC.
	if got := tgt.Snapshot().Commands; got != 3 {
		t.Errorf("target served %d commands, want 3 (CONNECT + 2 WRITE capsules)", got)
	}
	got, err := h.ReadAt(100, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := append(bytes.Repeat([]byte{0xB2}, 50), bytes.Repeat([]byte{0xC3}, 50)...)
	if !bytes.Equal(got, want) {
		t.Fatalf("merged write read-back mismatch: got %x... want %x...", got[:8], want[:8])
	}
}

// TestBatchRespectsBudgets pins the cut points: a run of submissions
// larger than MaxCommands splits into several flushes, and every
// command still completes.
func TestBatchRespectsBudgets(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: model.MB})
	var gate sync.Mutex
	h, err := DialConfig(addr, 1, HostConfig{
		Batch: BatchConfig{Enabled: true, MaxCommands: 4},
		Dial: func(a string) (net.Conn, error) {
			c, err := net.Dial("tcp", a)
			if err != nil {
				return nil, err
			}
			return gatedConn{Conn: c, gate: &gate}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	gate.Lock()
	const writers = 10
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		go func(i int) {
			errs <- h.WriteAt(int64(i)*128, []byte(fmt.Sprintf("cmd-%02d", i)))
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.InFlight() < writers {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight = %d, want %d", h.InFlight(), writers)
		}
		time.Sleep(time.Millisecond)
	}
	gate.Unlock()
	for i := 0; i < writers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	// 9 pending commands drained after the leader's solo flush, cut at
	// 4 per batch: at least 3 flushes total, and the batch-shape
	// histogram records one observation per flush.
	flushes := h.tel.batchFlushes.Value()
	if flushes < 3 {
		t.Errorf("%d flushes for %d commands with MaxCommands=4, want >= 3", flushes, writers)
	}
	if cmds := h.tel.batchCmds.Count(); cmds != flushes {
		t.Errorf("batch-commands histogram saw %d flushes, counter says %d", cmds, flushes)
	}
}

// TestBatchFlusherVsReconnect races the vectored flush path against
// queue-pair death and pool reconnection (run under -race): writers
// keep submitting through a batched pool while the target restarts.
func TestBatchFlusherVsReconnect(t *testing.T) {
	tgt := NewTarget()
	ns := NewMemNamespace(model.MB)
	if err := tgt.AddNamespace(1, ns); err != nil {
		t.Fatal(err)
	}
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool, err := DialPool(addr, 1, PoolConfig{
		QueuePairs:       2,
		CommandTimeout:   time.Second,
		RetryBackoff:     time.Millisecond,
		ReconnectBackoff: time.Millisecond,
		Batch:            BatchConfig{Enabled: true, MergeWrites: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	const writers = 4
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(i + 1)}, 256)
			off := int64(i) * 1024
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Errors are expected while the target is down; the
				// assertion is recovery, not lossless service.
				pool.WriteAt(off, payload)
			}
		}(i)
	}

	time.Sleep(20 * time.Millisecond)
	tgt.Close()
	tgt2 := NewTarget()
	if err := tgt2.AddNamespace(1, ns); err != nil {
		t.Fatal(err)
	}
	var listenErr error
	for i := 0; i < 200; i++ {
		if _, listenErr = tgt2.Listen(addr); listenErr == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if listenErr != nil {
		t.Fatalf("restart listen: %v", listenErr)
	}
	defer tgt2.Close()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The pool must converge back to batched service.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := pool.WriteAt(0, []byte("recovered")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never recovered: %+v", pool.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, err := pool.ReadAt(0, 9)
	if err != nil || string(got) != "recovered" {
		t.Fatalf("read after recovery = %q, %v", got, err)
	}
}

// TestFlightDumpDuringBatchedTimeout pins the flight-recorder path on
// the batched submission route: a batched command that times out dumps
// the queue pair's ring exactly as a direct one does, and its record
// carries the batch size.
func TestFlightDumpDuringBatchedTimeout(t *testing.T) {
	addr := stalledTarget(t, model.MB)
	var traceBuf bytes.Buffer
	tr := telemetry.NewTracer(&traceBuf)
	h, err := DialConfig(addr, 1, HostConfig{
		CommandTimeout: 50 * time.Millisecond,
		Tracer:         tr,
		Batch:          BatchConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.WriteAt(0, []byte("doomed")); !errors.Is(err, ErrTimeout) {
		t.Fatalf("WriteAt = %v, want timeout", err)
	}
	var dump *telemetry.Event
	for _, ev := range decodeTrace(t, &traceBuf) {
		if ev.Name == "nvmeof.flight" {
			ev := ev
			dump = &ev
		}
	}
	if dump == nil {
		t.Fatal("no flight dump after batched timeout")
	}
	if reason, _ := dump.Attrs["reason"].(string); reason != "timeout" {
		t.Fatalf("dump reason = %q, want timeout", dump.Attrs["reason"])
	}
	recs := h.Flight().QueuePair(0)
	if len(recs) == 0 {
		t.Fatal("flight ring empty after batched timeout")
	}
	last := recs[len(recs)-1]
	if last.Err == "" || last.Batch < 1 {
		t.Errorf("timeout record = %+v, want Err set and Batch >= 1", last)
	}
}

// TestBatchedConcurrentWriteRead hammers one batched queue pair from
// many goroutines (run under -race): every write lands intact and the
// batch telemetry accounts for every command.
func TestBatchedConcurrentWriteRead(t *testing.T) {
	_, addr := startTarget(t, map[uint32]int64{1: 64 * model.MB})
	h, err := DialConfig(addr, 1, HostConfig{
		Batch: BatchConfig{Enabled: true, MergeWrites: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	const workers = 8
	const writes = 50
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			base := int64(i) * model.MB
			for j := 0; j < writes; j++ {
				payload := []byte(fmt.Sprintf("worker%02d-write%03d", i, j))
				off := base + int64(j)*64
				if err := h.WriteAt(off, payload); err != nil {
					errs[i] = err
					return
				}
				got, err := h.ReadAt(off, int64(len(payload)))
				if err != nil {
					errs[i] = err
					return
				}
				if !bytes.Equal(got, payload) {
					errs[i] = fmt.Errorf("worker %d write %d mismatch", i, j)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if h.tel.batchFlushes.Value() == 0 {
		t.Error("no batch flushes recorded on a batching queue pair")
	}
	if want := h.tel.batchFlushes.Value(); h.tel.batchBytes.Count() != want {
		t.Errorf("batch-bytes histogram saw %d flushes, counter says %d", h.tel.batchBytes.Count(), want)
	}
}
