package nvmeof

import (
	"testing"
	"time"
)

// TestBatchedSteadyStateAllocs is the polled-path allocation gate: the
// batched small-command steady state — slot ring, merge path, vectored
// flush, completion fan-out — must run at zero heap allocations per
// operation. The count is process-wide (testing.Benchmark measures
// mallocs across every goroutine, the in-process target included), so
// a regression on either end of the fabric trips it.
func TestBatchedSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	if testing.Short() {
		t.Skip("runs a full testing.Benchmark")
	}
	res := testing.Benchmark(func(b *testing.B) {
		benchPool(b, 512, 0, PoolConfig{
			QueuePairs: 2,
			Batch:      BatchConfig{Enabled: true, MergeWrites: true},
		})
	})
	if a := res.AllocsPerOp(); a > 0 {
		t.Errorf("batched steady state allocates %d objects/op, want 0", a)
	}
}

// TestDeviceBoundBytesPerOp pins the fix for the device-bound write
// amplification: steady-state 16KB overwrites must not splice a fresh
// extent per command (the covered-range path copies in place), must
// reuse the target's per-slot payload buffer, and must ride the host's
// zero-copy iovec path. Before the fix the same workload allocated
// ~25KB per 16KB op — more heap traffic than payload.
func TestDeviceBoundBytesPerOp(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	if testing.Short() {
		t.Skip("runs a full testing.Benchmark")
	}
	res := testing.Benchmark(func(b *testing.B) {
		benchPool(b, 16*1024, 20*time.Microsecond, PoolConfig{
			QueuePairs: 1,
			Batch:      BatchConfig{Enabled: true, MergeWrites: true},
		})
	})
	// Observed ~1-2.5KB/op healthy (short benchmark runs amortize the
	// fixed dials and lazy per-slot state less); the splice regression
	// sat at ~25KB/op. Gate at half the payload size.
	if bpo := res.AllocedBytesPerOp(); bpo > 8192 {
		t.Errorf("device-bound steady state allocates %d B/op for 16KB commands, want <=8192", bpo)
	}
}
