// Package plane defines the data-plane interface: a block-device-like
// view of one process's SSD partition. The microfs control plane sits on
// top of a Plane; implementations differ in how requests reach the
// device — userspace SPDK to a local SSD, userspace SPDK over NVMe-oF to
// a remote SSD (the NVMe-CR production path, paper Figure 4), or the
// kernel module path (paper Figure 2, the baseline).
package plane

import "github.com/nvme-cr/nvmecr/internal/sim"

// Plane is a byte-addressed window onto an SSD partition. Offsets are
// partition-relative. Implementations block the calling process for the
// modeled duration and charge the client's account.
type Plane interface {
	// Write stores length bytes at off. data may be nil for synthetic
	// (timing-only) transfers; when non-nil len(data) must equal
	// length. cmdUnit is the NVMe command granularity (the hugeblock
	// size); 0 means one command.
	Write(p *sim.Proc, off, length int64, data []byte, cmdUnit int64) error
	// Read returns length bytes from off. The nil contract: when the
	// backing device does not capture payloads (timing-only mode), Read
	// returns (nil, nil) — never a zero-filled buffer posing as data.
	// Composite planes (striping, mirroring) must propagate this
	// all-or-nothing: if any backing device consulted by the request
	// returns nil, the whole read is nil.
	Read(p *sim.Proc, off, length int64, cmdUnit int64) ([]byte, error)
	// Flush is a durability barrier.
	Flush(p *sim.Proc) error
	// Size returns the partition size in bytes.
	Size() int64
}

// VectorWriter is the optional gather-write extension of Plane: a plane
// that can store a discontiguous payload at one offset without staging
// it into a contiguous buffer implements it. Composite planes (striping)
// type-assert their children and fall back to per-piece Writes when the
// child cannot gather.
type VectorWriter interface {
	// WriteV stores the concatenation of bufs at off. Every buf must be
	// non-nil (synthetic transfers use Plane.Write with nil data).
	WriteV(p *sim.Proc, off int64, bufs [][]byte) error
}
