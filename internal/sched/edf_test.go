package sched

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// edfSeeds returns the seeded iteration count: the full 100-seed sweep
// by default, 25 in -short (the verify.sh tier-1 budget).
func edfSeeds(t *testing.T) int {
	if testing.Short() {
		return 25
	}
	return 100
}

// The ordering property: with the gate saturated, concurrently queued
// waiters are granted in strict deadline order regardless of arrival
// interleaving. Capacity 1 serializes the holders, so the order in
// which workers observe their grant is the order the gate chose.
func TestEDFDeadlineOrderProperty(t *testing.T) {
	for iter := 0; iter < edfSeeds(t); iter++ {
		seed := int64(0xedf0 + iter)
		rng := rand.New(rand.NewSource(seed))
		gate := NewEDF(EDFConfig{Capacity: 1})

		// Occupy the only slot so every submitter below must queue.
		release, err := gate.Acquire("holder", time.Time{})
		if err != nil {
			t.Fatalf("seed %d: holder rejected: %v", seed, err)
		}

		const waiters = 16
		// Distinct far-future deadlines: none may expire mid-test, and
		// distinctness makes the expected grant order unambiguous.
		offsets := rng.Perm(waiters)
		base := time.Now().Add(10 * time.Second)
		var mu sync.Mutex
		var got []int
		var wg sync.WaitGroup
		for i := 0; i < waiters; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				rel, err := gate.Acquire("t", base.Add(time.Duration(offsets[i])*time.Millisecond))
				if err != nil {
					t.Errorf("seed %d: waiter %d: %v", seed, i, err)
					return
				}
				mu.Lock()
				got = append(got, offsets[i])
				mu.Unlock()
				rel()
			}()
		}
		// Wait until every submitter is queued, then start the drain:
		// each release hands the slot to the earliest remaining deadline.
		for gate.Waiting() < waiters {
			time.Sleep(100 * time.Microsecond)
		}
		release()
		wg.Wait()

		if !sort.IntsAreSorted(got) {
			t.Fatalf("seed %d: grants not in deadline order: %v", seed, got)
		}
		if st := gate.Stats(); st.InFlight != 0 || st.Waiting != 0 {
			t.Fatalf("seed %d: gate not drained: %+v", seed, st)
		}
	}
}

// The starvation property: a low-rate tenant's occasional commands
// complete even while an aggressor keeps the gate saturated, because
// the aggressor's backlog is bounded by its per-tenant queue share and
// every already-queued command eventually drains in deadline order.
// None of the victim's acquires may be shed or expire.
func TestEDFNoStarvationProperty(t *testing.T) {
	for iter := 0; iter < edfSeeds(t); iter++ {
		seed := int64(0x5eed + iter)
		rng := rand.New(rand.NewSource(seed))
		gate := NewEDF(EDFConfig{
			Capacity:      2,
			MaxWaiters:    64,
			TenantWaiters: 8,
		})

		stop := make(chan struct{})
		var wg sync.WaitGroup
		// The aggressor: several submitters looping flat out with tight
		// deadlines. Shed and late outcomes are expected and fine — the
		// point is that they never translate into victim starvation.
		for a := 0; a < 4; a++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					rel, err := gate.Acquire("aggressor", time.Now().Add(20*time.Millisecond))
					if err != nil {
						continue
					}
					time.Sleep(50 * time.Microsecond) // hold: modeled service time
					rel()
				}
			}()
		}

		victimOps := 3 + rng.Intn(3) // 3..5 sequential ops
		for v := 0; v < victimOps; v++ {
			rel, err := gate.Acquire("victim", time.Now().Add(5*time.Second))
			if err != nil {
				close(stop)
				wg.Wait()
				t.Fatalf("seed %d: victim op %d starved: %v (stats %+v)", seed, v, err, gate.Stats())
			}
			rel()
		}
		close(stop)
		wg.Wait()
	}
}

// Shed is immediate and typed: when the queue (or a tenant's share of
// it) is full, Acquire returns ErrShed without blocking.
func TestEDFShedTypedAndImmediate(t *testing.T) {
	gate := NewEDF(EDFConfig{Capacity: 1, MaxWaiters: 4, TenantWaiters: 2})
	release, err := gate.Acquire("x", time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	// Fill tenant a's queue share.
	done := make(chan error, 8)
	for i := 0; i < 2; i++ {
		go func() {
			rel, err := gate.Acquire("a", time.Time{})
			if err == nil {
				rel()
			}
			done <- err
		}()
	}
	for gate.Waiting() < 2 {
		time.Sleep(100 * time.Microsecond)
	}
	start := time.Now()
	if _, err := gate.Acquire("a", time.Time{}); !errors.Is(err, ErrShed) {
		t.Fatalf("tenant-share overflow: got %v, want ErrShed", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("shed took %v; must be immediate", d)
	}
	// Another tenant still has queue room.
	go func() {
		rel, err := gate.Acquire("b", time.Time{})
		if err == nil {
			rel()
		}
		done <- err
	}()
	for gate.Waiting() < 3 {
		time.Sleep(100 * time.Microsecond)
	}
	// Global bound: one more waiter fits (4), the next is shed.
	go func() {
		rel, err := gate.Acquire("c", time.Time{})
		if err == nil {
			rel()
		}
		done <- err
	}()
	for gate.Waiting() < 4 {
		time.Sleep(100 * time.Microsecond)
	}
	if _, err := gate.Acquire("d", time.Time{}); !errors.Is(err, ErrShed) {
		t.Fatalf("global overflow: got %v, want ErrShed", err)
	}
	release()
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatalf("queued waiter failed after release: %v", err)
		}
	}
}

// A queued waiter whose deadline passes gets ErrLate, and its queue
// slot is reclaimed.
func TestEDFLateTyped(t *testing.T) {
	gate := NewEDF(EDFConfig{Capacity: 1})
	release, err := gate.Acquire("x", time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if _, err := gate.Acquire("a", time.Now().Add(5*time.Millisecond)); !errors.Is(err, ErrLate) {
		t.Fatalf("got %v, want ErrLate", err)
	}
	if st := gate.Stats(); st.Waiting != 0 || st.Late != 1 {
		t.Fatalf("late waiter not reclaimed: %+v", st)
	}
}

// A nil gate admits everything.
func TestEDFNilGate(t *testing.T) {
	var gate *EDF
	rel, err := gate.Acquire("t", time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	rel()
}
