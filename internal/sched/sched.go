// Package sched models the cluster job scheduler's storage integration
// (paper §III-F's security model, deployed via Slurm's generic-resources
// plugin on the testbed): storage is granted to jobs at NVMe *namespace*
// granularity, isolation between concurrent jobs comes from the
// namespace mechanism itself, and namespaces are created from unused SSD
// space on demand and reclaimed when the job ends.
package sched

import (
	"fmt"

	"github.com/nvme-cr/nvmecr/internal/balancer"
	"github.com/nvme-cr/nvmecr/internal/nvme"
	"github.com/nvme-cr/nvmecr/internal/topology"
)

// Request describes a job's storage ask.
type Request struct {
	// JobName identifies the job (diagnostics).
	JobName string
	// RankNodes maps each rank to its compute node.
	RankNodes []*topology.Node
	// BytesPerRank sizes each rank's partition.
	BytesPerRank int64
	// SSDs is the device count (0 = the 56-112 process:SSD policy).
	SSDs int
}

// Grant is an active storage allocation: the namespaces a job may touch.
// Nothing outside the grant is reachable — the namespace is the security
// boundary.
type Grant struct {
	Job        string
	Allocation *balancer.Allocation
	Namespaces []*nvme.Namespace // one per allocated SSD

	released bool
}

// Scheduler owns the cluster's storage inventory.
type Scheduler struct {
	balancer *balancer.Balancer
	devices  []balancer.StorageDevice
	grants   map[*Grant]bool
}

// New builds a scheduler over the inventory.
func New(cluster *topology.Cluster, devices []balancer.StorageDevice) (*Scheduler, error) {
	b, err := balancer.New(cluster, devices)
	if err != nil {
		return nil, err
	}
	return &Scheduler{balancer: b, devices: devices, grants: map[*Grant]bool{}}, nil
}

// ActiveGrants returns the number of live grants.
func (s *Scheduler) ActiveGrants() int { return len(s.grants) }

// FreeBytes sums unallocated space across the inventory.
func (s *Scheduler) FreeBytes() int64 {
	var total int64
	seen := map[*nvme.Device]bool{}
	for _, d := range s.devices {
		if seen[d.Device] {
			continue
		}
		seen[d.Device] = true
		total += d.Device.FreeBytes()
	}
	return total
}

// Submit allocates storage for a job: the balancer chooses SSDs from
// partner failure domains, and one namespace per SSD is created, sized
// for that SSD's share of ranks. Concurrent jobs share SSDs through
// separate namespaces; a job whose ask cannot be satisfied is rejected
// (the paper notes an SSD's job count is bounded by bandwidth, not
// namespace count).
func (s *Scheduler) Submit(req Request) (*Grant, error) {
	if len(req.RankNodes) == 0 {
		return nil, fmt.Errorf("sched: job %q has no ranks", req.JobName)
	}
	if req.BytesPerRank <= 0 {
		return nil, fmt.Errorf("sched: job %q requests %d bytes per rank", req.JobName, req.BytesPerRank)
	}
	alloc, err := s.balancer.AllocateSSDs(req.RankNodes, req.SSDs)
	if err != nil {
		return nil, fmt.Errorf("sched: job %q: %w", req.JobName, err)
	}
	g := &Grant{Job: req.JobName, Allocation: alloc}
	perSSD := alloc.RanksPerSSD()
	for i, sd := range alloc.SSDs {
		size := int64(perSSD[i]) * req.BytesPerRank
		ns, err := sd.Device.CreateNamespace(size)
		if err != nil {
			// Roll back namespaces already created for this grant.
			s.rollback(g)
			return nil, fmt.Errorf("sched: job %q on %s: %w", req.JobName, sd.Node.Name, err)
		}
		g.Namespaces = append(g.Namespaces, ns)
	}
	s.grants[g] = true
	return g, nil
}

func (s *Scheduler) rollback(g *Grant) {
	for i, ns := range g.Namespaces {
		_ = g.Allocation.SSDs[i].Device.DeleteNamespace(ns)
	}
	g.Namespaces = nil
}

// Release reclaims a grant's namespaces. Checkpoint data is ephemeral —
// it dies with the job, which is the runtime's design point.
func (s *Scheduler) Release(g *Grant) error {
	if g == nil || g.released {
		return fmt.Errorf("sched: grant already released")
	}
	if !s.grants[g] {
		return fmt.Errorf("sched: unknown grant for job %q", g.Job)
	}
	for i, ns := range g.Namespaces {
		if err := g.Allocation.SSDs[i].Device.DeleteNamespace(ns); err != nil {
			return err
		}
	}
	g.released = true
	delete(s.grants, g)
	return nil
}
