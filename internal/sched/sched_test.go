package sched

import (
	"testing"

	"github.com/nvme-cr/nvmecr/internal/balancer"
	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/nvme"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/topology"
)

func inventory(t *testing.T) (*topology.Cluster, []balancer.StorageDevice) {
	t.Helper()
	cl, err := topology.New(topology.PaperTestbed())
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv()
	params := model.Default().SSD
	params.CapacityGB = 16
	var devs []balancer.StorageDevice
	for _, sn := range cl.StorageNodes() {
		devs = append(devs, balancer.StorageDevice{Node: sn, Device: nvme.New(env, sn.Name, params, false)})
	}
	return cl, devs
}

func ranks(cl *topology.Cluster, n int) []*topology.Node {
	var out []*topology.Node
	for _, node := range cl.ComputeNodes() {
		for c := 0; c < node.Cores && len(out) < n; c++ {
			out = append(out, node)
		}
	}
	return out
}

func TestGrantLifecycle(t *testing.T) {
	cl, devs := inventory(t)
	s, err := New(cl, devs)
	if err != nil {
		t.Fatal(err)
	}
	free0 := s.FreeBytes()
	g, err := s.Submit(Request{
		JobName: "comd", RankNodes: ranks(cl, 112), BytesPerRank: 128 * model.MB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Namespaces) != 2 { // 112 procs -> 2 SSDs by the ratio policy
		t.Errorf("namespaces = %d, want 2", len(g.Namespaces))
	}
	if s.ActiveGrants() != 1 {
		t.Errorf("ActiveGrants = %d", s.ActiveGrants())
	}
	if got := s.FreeBytes(); got != free0-112*128*model.MB {
		t.Errorf("FreeBytes = %d, want %d", got, free0-112*128*model.MB)
	}
	if err := s.Release(g); err != nil {
		t.Fatal(err)
	}
	if s.FreeBytes() != free0 {
		t.Errorf("space not reclaimed: %d != %d", s.FreeBytes(), free0)
	}
	if err := s.Release(g); err == nil {
		t.Error("double release accepted")
	}
}

func TestConcurrentJobsShareSSDs(t *testing.T) {
	cl, devs := inventory(t)
	s, _ := New(cl, devs)
	a, err := s.Submit(Request{JobName: "a", RankNodes: ranks(cl, 448), BytesPerRank: 128 * model.MB})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(Request{JobName: "b", RankNodes: ranks(cl, 448), BytesPerRank: 128 * model.MB})
	if err != nil {
		t.Fatalf("second job rejected despite free space: %v", err)
	}
	// Both jobs hold distinct namespaces, possibly on the same SSDs.
	seen := map[*nvme.Namespace]bool{}
	for _, ns := range append(append([]*nvme.Namespace{}, a.Namespaces...), b.Namespaces...) {
		if seen[ns] {
			t.Fatal("namespace shared between jobs")
		}
		seen[ns] = true
	}
	s.Release(a)
	s.Release(b)
}

func TestRejectionAndRollback(t *testing.T) {
	cl, devs := inventory(t)
	s, _ := New(cl, devs)
	free0 := s.FreeBytes()
	// Ask for more than a 16 GB SSD can hold per device.
	_, err := s.Submit(Request{JobName: "huge", RankNodes: ranks(cl, 448), BytesPerRank: 10 * model.GB})
	if err == nil {
		t.Fatal("oversized job accepted")
	}
	if s.FreeBytes() != free0 {
		t.Errorf("failed submit leaked namespaces: %d != %d", s.FreeBytes(), free0)
	}
	if s.ActiveGrants() != 0 {
		t.Errorf("ActiveGrants = %d after rejection", s.ActiveGrants())
	}
	if _, err := s.Submit(Request{JobName: "zero"}); err == nil {
		t.Error("empty job accepted")
	}
}

func TestNamespaceReuseAfterRelease(t *testing.T) {
	cl, devs := inventory(t)
	s, _ := New(cl, devs)
	// Fill, release, fill again: the first-fit allocator must reuse
	// the reclaimed space.
	for i := 0; i < 5; i++ {
		g, err := s.Submit(Request{JobName: "cycle", RankNodes: ranks(cl, 448), BytesPerRank: 256 * model.MB})
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if err := s.Release(g); err != nil {
			t.Fatalf("cycle %d release: %v", i, err)
		}
	}
}
