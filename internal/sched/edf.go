package sched

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrShed reports that an acquire was refused immediately because the
// gate's bounded wait queue (or the tenant's share of it) is full —
// backpressure sheds the load instead of letting a backlog inflate
// every other tenant's latency. Callers see it synchronously; nothing
// queues, nothing hangs.
var ErrShed = errors.New("sched: backpressure: wait queue full")

// ErrLate reports that a queued acquire's deadline expired before a
// slot was granted: the command would have missed its deadline anyway,
// so the gate returns instead of wasting a slot on it.
var ErrLate = errors.New("sched: deadline expired while queued")

// EDFConfig tunes an EDF gate. The zero value gets defaults.
type EDFConfig struct {
	// Capacity is how many holders may be inside the gate at once —
	// the shared resource's concurrency budget (default 8).
	Capacity int
	// MaxWaiters bounds the total wait queue; an acquire that would
	// exceed it is shed with ErrShed (default 1024).
	MaxWaiters int
	// TenantWaiters bounds one tenant's share of the wait queue, so a
	// single aggressor cannot occupy the whole backlog (default
	// MaxWaiters).
	TenantWaiters int
}

func (c EDFConfig) withDefaults() EDFConfig {
	if c.Capacity <= 0 {
		c.Capacity = 8
	}
	if c.MaxWaiters <= 0 {
		c.MaxWaiters = 1024
	}
	if c.TenantWaiters <= 0 || c.TenantWaiters > c.MaxWaiters {
		c.TenantWaiters = c.MaxWaiters
	}
	return c
}

// edfWaiter is one queued acquire.
type edfWaiter struct {
	deadline time.Time
	seq      uint64 // FIFO tiebreak for equal deadlines
	tenant   string
	grant    chan struct{}
	index    int  // heap position
	granted  bool // set under the gate's mutex before grant closes
}

// edfHeap is a min-heap of waiters by (deadline, seq). A zero deadline
// means "no deadline" and sorts after every real deadline — an
// unhurried waiter never jumps ahead of one with a clock running.
type edfHeap []*edfWaiter

func (h edfHeap) Len() int { return len(h) }
func (h edfHeap) Less(i, j int) bool {
	di, dj := h[i].deadline, h[j].deadline
	if di.IsZero() != dj.IsZero() {
		return dj.IsZero()
	}
	if !di.Equal(dj) {
		return di.Before(dj)
	}
	return h[i].seq < h[j].seq
}
func (h edfHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *edfHeap) Push(x any) {
	w := x.(*edfWaiter)
	w.index = len(*h)
	*h = append(*h, w)
}
func (h *edfHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// EDFStats is a point-in-time summary of gate activity.
type EDFStats struct {
	Granted  uint64 // acquires that entered the gate
	Shed     uint64 // acquires refused by the bounded queue
	Late     uint64 // queued acquires whose deadline expired
	InFlight int    // current holders
	Waiting  int    // current queue depth
}

// EDF is a deadline-ordered admission gate for a shared resource: at
// most Capacity holders are inside at once, and when the gate is full,
// waiters queue and are granted in earliest-deadline-first order (FIFO
// among equal deadlines). The queue is bounded globally and per tenant;
// an acquire that cannot queue is shed immediately with ErrShed, and a
// queued acquire whose deadline passes returns ErrLate — the gate never
// hangs a caller past its own deadline.
//
// A zero deadline means "no deadline": the waiter sorts after every
// deadlined waiter and waits indefinitely. A nil *EDF is a no-op gate
// that admits everything, so callers hold a plain field and call
// Acquire unconditionally.
type EDF struct {
	cfg EDFConfig

	mu        sync.Mutex
	inflight  int
	waiters   edfHeap
	perTenant map[string]int
	seq       uint64
	granted   uint64
	shed      uint64
	late      uint64
}

// NewEDF builds a gate from cfg.
func NewEDF(cfg EDFConfig) *EDF {
	return &EDF{cfg: cfg.withDefaults(), perTenant: map[string]int{}}
}

// Acquire enters the gate on behalf of tenant, blocking in EDF order
// while the gate is at capacity. It returns a release function that
// must be called exactly once when the protected work is done, or a
// typed error: ErrShed when the queue (or the tenant's share) is full,
// ErrLate when deadline expires while queued. A zero deadline waits
// indefinitely at the lowest priority.
func (e *EDF) Acquire(tenant string, deadline time.Time) (func(), error) {
	if e == nil {
		return func() {}, nil
	}
	e.mu.Lock()
	// A free slot with a non-empty queue cannot persist: release hands
	// its slot straight to the earliest waiter under the same lock. So
	// inflight < Capacity here means nobody is queued ahead of us.
	if e.inflight < e.cfg.Capacity {
		e.inflight++
		e.granted++
		e.mu.Unlock()
		return e.releaseOnce(), nil
	}
	if len(e.waiters) >= e.cfg.MaxWaiters || e.perTenant[tenant] >= e.cfg.TenantWaiters {
		e.shed++
		e.mu.Unlock()
		return nil, fmt.Errorf("sched: tenant %q: %w", tenant, ErrShed)
	}
	w := &edfWaiter{deadline: deadline, seq: e.seq, tenant: tenant, grant: make(chan struct{})}
	e.seq++
	heap.Push(&e.waiters, w)
	e.perTenant[tenant]++
	e.mu.Unlock()

	if deadline.IsZero() {
		<-w.grant
		return e.releaseOnce(), nil
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case <-w.grant:
		return e.releaseOnce(), nil
	case <-timer.C:
		e.mu.Lock()
		if w.granted {
			// The grant raced the timer: we own a slot, use it — the
			// caller's own command deadline still bounds the work.
			e.mu.Unlock()
			return e.releaseOnce(), nil
		}
		heap.Remove(&e.waiters, w.index)
		e.dropTenant(tenant)
		e.late++
		e.mu.Unlock()
		return nil, fmt.Errorf("sched: tenant %q: %w", tenant, ErrLate)
	}
}

// dropTenant decrements a tenant's waiter count, deleting the map entry
// at zero so the map does not grow with tenant churn.
func (e *EDF) dropTenant(tenant string) {
	if n := e.perTenant[tenant] - 1; n > 0 {
		e.perTenant[tenant] = n
	} else {
		delete(e.perTenant, tenant)
	}
}

// releaseOnce returns the release function for one granted slot,
// idempotent so a confused caller cannot double-free capacity.
func (e *EDF) releaseOnce() func() {
	var once sync.Once
	return func() { once.Do(e.release) }
}

// release frees one slot: the earliest-deadline waiter inherits it
// directly (EDF order is decided here, under the lock), otherwise the
// gate's occupancy drops.
func (e *EDF) release() {
	e.mu.Lock()
	if len(e.waiters) > 0 {
		w := heap.Pop(&e.waiters).(*edfWaiter)
		e.dropTenant(w.tenant)
		w.granted = true
		e.granted++
		close(w.grant)
		e.mu.Unlock()
		return
	}
	e.inflight--
	e.mu.Unlock()
}

// Waiting returns the current wait-queue depth.
func (e *EDF) Waiting() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.waiters)
}

// Stats returns the gate's counters.
func (e *EDF) Stats() EDFStats {
	if e == nil {
		return EDFStats{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return EDFStats{
		Granted:  e.granted,
		Shed:     e.shed,
		Late:     e.late,
		InFlight: e.inflight,
		Waiting:  len(e.waiters),
	}
}
