package posix

import (
	"bytes"
	"testing"

	"github.com/nvme-cr/nvmecr/internal/microfs"
	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/nvme"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/spdk"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

func rig(t *testing.T) (*sim.Env, *Interceptor) {
	t.Helper()
	env := sim.NewEnv()
	params := model.Default()
	params.SSD.CapacityGB = 1
	dev := nvme.New(env, "ssd", params.SSD, true)
	ns, err := dev.CreateNamespace(64 * model.MB)
	if err != nil {
		t.Fatal(err)
	}
	acct := &vfs.Account{}
	pl, err := spdk.NewPlane(ns, 0, ns.Size(), params.Host, acct)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := microfs.New(env, microfs.Config{
		Plane: pl, Account: acct, Host: params.Host,
		Features: microfs.AllFeatures(), LogBytes: 256 * model.KB, SnapBytes: model.MB,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env, New(inst)
}

func run(t *testing.T, env *sim.Env, fn func(p *sim.Proc)) {
	t.Helper()
	env.Go("app", fn)
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenWriteReadCloseSyscalls(t *testing.T) {
	env, ic := rig(t)
	run(t, env, func(p *sim.Proc) {
		fd, errno := ic.Open(p, "/ckpt.dat", OCreat|OWronly, 0o644)
		if errno != EOK {
			t.Fatalf("open: %v", errno)
		}
		payload := []byte("posix interception payload")
		n, errno := ic.Write(p, fd, payload)
		if errno != EOK || n != len(payload) {
			t.Fatalf("write = %d, %v", n, errno)
		}
		if errno := ic.Fsync(p, fd); errno != EOK {
			t.Fatalf("fsync: %v", errno)
		}
		if errno := ic.Close(p, fd); errno != EOK {
			t.Fatalf("close: %v", errno)
		}
		// Reopen read-only.
		fd, errno = ic.Open(p, "/ckpt.dat", ORdonly, 0)
		if errno != EOK {
			t.Fatalf("reopen: %v", errno)
		}
		buf := make([]byte, len(payload))
		n, errno = ic.Read(p, fd, buf)
		if errno != EOK || n != len(payload) || !bytes.Equal(buf, payload) {
			t.Fatalf("read = %d, %v, %q", n, errno, buf[:n])
		}
		ic.Close(p, fd)
	})
}

func TestErrnoMapping(t *testing.T) {
	env, ic := rig(t)
	run(t, env, func(p *sim.Proc) {
		if _, errno := ic.Open(p, "/missing", ORdonly, 0); errno != ENOENT {
			t.Errorf("open missing: %v", errno)
		}
		if errno := ic.Mkdir(p, "/d", 0o755); errno != EOK {
			t.Fatalf("mkdir: %v", errno)
		}
		if errno := ic.Mkdir(p, "/d", 0o755); errno != EEXIST {
			t.Errorf("mkdir dup: %v", errno)
		}
		if _, errno := ic.Open(p, "/d", ORdonly, 0); errno != EISDIR {
			t.Errorf("open dir: %v", errno)
		}
		if errno := ic.Unlink(p, "/missing"); errno != ENOENT {
			t.Errorf("unlink missing: %v", errno)
		}
		if _, errno := ic.Write(p, 99, []byte("x")); errno != EBADF {
			t.Errorf("write bad fd: %v", errno)
		}
		if errno := ic.Close(p, 99); errno != EBADF {
			t.Errorf("close bad fd: %v", errno)
		}
		// Writing through a read-only descriptor.
		fd, _ := ic.Creat(p, "/ro", 0o644)
		ic.Close(p, fd)
		fd, errno := ic.Open(p, "/ro", ORdonly, 0)
		if errno != EOK {
			t.Fatalf("open ro: %v", errno)
		}
		if _, errno := ic.Write(p, fd, []byte("x")); errno != EACCES {
			t.Errorf("write on RO fd: %v", errno)
		}
		ic.Close(p, fd)
	})
}

func TestOpenCreatOnExisting(t *testing.T) {
	env, ic := rig(t)
	run(t, env, func(p *sim.Proc) {
		fd, _ := ic.Creat(p, "/f", 0o644)
		ic.Write(p, fd, []byte("v1"))
		ic.Close(p, fd)
		// open(O_CREAT|O_WRONLY) on existing file: succeeds, keeps data.
		fd, errno := ic.Open(p, "/f", OCreat|OWronly, 0o644)
		if errno != EOK {
			t.Fatalf("O_CREAT on existing: %v", errno)
		}
		ic.Close(p, fd)
		fi, errno := ic.Stat(p, "/f")
		if errno != EOK || fi.Size != 2 {
			t.Errorf("stat = %+v, %v", fi, errno)
		}
	})
}

func TestLseek(t *testing.T) {
	env, ic := rig(t)
	run(t, env, func(p *sim.Proc) {
		fd, _ := ic.Creat(p, "/f", 0o644)
		ic.Write(p, fd, []byte("0123456789"))
		if pos, errno := ic.Lseek(p, fd, 4, SeekSet); errno != EOK || pos != 4 {
			t.Fatalf("lseek set = %d, %v", pos, errno)
		}
		ic.Write(p, fd, []byte("XY"))
		if pos, errno := ic.Lseek(p, fd, 2, SeekCur); errno != EOK || pos != 8 {
			t.Fatalf("lseek cur = %d, %v", pos, errno)
		}
		if _, errno := ic.Lseek(p, fd, -100, SeekSet); errno != EINVAL {
			t.Errorf("negative lseek: %v", errno)
		}
		if _, errno := ic.Lseek(p, fd, 0, 42); errno != EINVAL {
			t.Errorf("bad whence: %v", errno)
		}
		ic.Close(p, fd)
		fd, _ = ic.Open(p, "/f", ORdonly, 0)
		buf := make([]byte, 10)
		ic.Read(p, fd, buf)
		if string(buf) != "0123XY6789" {
			t.Errorf("content = %q", buf)
		}
		ic.Close(p, fd)
	})
}

func TestOpenFDCount(t *testing.T) {
	env, ic := rig(t)
	run(t, env, func(p *sim.Proc) {
		if ic.OpenFDs() != 0 {
			t.Fatal("fresh interceptor has FDs")
		}
		a, _ := ic.Creat(p, "/a", 0o644)
		b, _ := ic.Creat(p, "/b", 0o644)
		if ic.OpenFDs() != 2 {
			t.Errorf("OpenFDs = %d", ic.OpenFDs())
		}
		if a == b {
			t.Error("duplicate descriptor numbers")
		}
		ic.Close(p, a)
		ic.Close(p, b)
		if ic.OpenFDs() != 0 {
			t.Errorf("OpenFDs = %d after closes", ic.OpenFDs())
		}
	})
}

func TestErrnoStrings(t *testing.T) {
	for _, e := range []Errno{ENOENT, EEXIST, EBADF, EISDIR, ENOTDIR, EACCES, ENOSPC, EINVAL, EIO, Errno(99)} {
		if e.Error() == "" {
			t.Errorf("empty message for %d", int(e))
		}
	}
}

func TestRenameAndReadDirSyscalls(t *testing.T) {
	env, ic := rig(t)
	run(t, env, func(p *sim.Proc) {
		ic.Mkdir(p, "/out", 0o755)
		fd, _ := ic.Open(p, "/out/part.tmp", OCreat|OWronly, 0o644)
		ic.Write(p, fd, []byte("payload"))
		ic.Fsync(p, fd)
		ic.Close(p, fd)
		if errno := ic.Rename(p, "/out/part.tmp", "/out/final.dat"); errno != EOK {
			t.Fatalf("rename: %v", errno)
		}
		if errno := ic.Rename(p, "/out/part.tmp", "/x"); errno != ENOENT {
			t.Errorf("rename of gone file: %v", errno)
		}
		entries, errno := ic.ReadDir(p, "/out")
		if errno != EOK || len(entries) != 1 || entries[0].Path != "/out/final.dat" {
			t.Errorf("readdir = %+v, %v", entries, errno)
		}
		if _, errno := ic.ReadDir(p, "/nope"); errno != ENOENT {
			t.Errorf("readdir missing: %v", errno)
		}
	})
}

func TestWriteN(t *testing.T) {
	env, ic := rig(t)
	run(t, env, func(p *sim.Proc) {
		fd, _ := ic.Creat(p, "/big", 0o644)
		n, errno := ic.WriteN(p, fd, 4*model.MB)
		if errno != EOK || n != 4*model.MB {
			t.Fatalf("WriteN = %d, %v", n, errno)
		}
		ic.Close(p, fd)
		fi, _ := ic.Stat(p, "/big")
		if fi.Size != 4*model.MB {
			t.Errorf("size = %d", fi.Size)
		}
		if _, errno := ic.WriteN(p, 77, 10); errno != EBADF {
			t.Errorf("WriteN bad fd: %v", errno)
		}
	})
}
