// Package posix provides the syscall-shaped interface NVMe-CR exposes
// to unmodified applications. The paper intercepts POSIX IO library
// calls with the GNU ld linker's symbol interception and redirects them
// into the runtime; this package is that interception layer's
// equivalent: integer file descriptors, flag words, and errno-style
// errors over any vfs.Client.
package posix

import (
	"errors"
	"fmt"

	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

// Open flags, matching the POSIX subset checkpoint workloads use.
const (
	ORdonly = 0x0
	OWronly = 0x1
	OCreat  = 0x40
	OTrunc  = 0x200
)

// Errno is a POSIX-style error number.
type Errno int

// The errno values the interception layer can return.
const (
	// EOK means success; functions never return it as an error.
	EOK Errno = iota
	// ENOENT: no such file or directory.
	ENOENT
	// EEXIST: file exists.
	EEXIST
	// EBADF: bad file descriptor.
	EBADF
	// EISDIR: is a directory.
	EISDIR
	// ENOTDIR: not a directory.
	ENOTDIR
	// EACCES: permission denied.
	EACCES
	// ENOSPC: no space left on device.
	ENOSPC
	// EINVAL: invalid argument.
	EINVAL
	// EIO: input/output error.
	EIO
)

func (e Errno) Error() string {
	switch e {
	case ENOENT:
		return "no such file or directory"
	case EEXIST:
		return "file exists"
	case EBADF:
		return "bad file descriptor"
	case EISDIR:
		return "is a directory"
	case ENOTDIR:
		return "not a directory"
	case EACCES:
		return "permission denied"
	case ENOSPC:
		return "no space left on device"
	case EINVAL:
		return "invalid argument"
	case EIO:
		return "input/output error"
	default:
		return fmt.Sprintf("errno %d", int(e))
	}
}

// mapErr converts vfs errors to errnos.
func mapErr(err error) Errno {
	switch {
	case err == nil:
		return EOK
	case errors.Is(err, vfs.ErrNotExist):
		return ENOENT
	case errors.Is(err, vfs.ErrExist):
		return EEXIST
	case errors.Is(err, vfs.ErrIsDir):
		return EISDIR
	case errors.Is(err, vfs.ErrNotDir):
		return ENOTDIR
	case errors.Is(err, vfs.ErrPerm), errors.Is(err, vfs.ErrReadOnly):
		return EACCES
	case errors.Is(err, vfs.ErrNoSpace):
		return ENOSPC
	case errors.Is(err, vfs.ErrClosed):
		return EBADF
	default:
		return EIO
	}
}

// Interceptor is one process's intercepted IO table: a descriptor table
// over the process's storage client.
type Interceptor struct {
	client vfs.Client
	fds    map[int]*fdEntry
	nextFD int
}

type fdEntry struct {
	file vfs.File
	path string
	pos  int64
}

// New builds an interception layer over a client. Descriptor numbering
// starts at 3, as stdin/stdout/stderr are never intercepted.
func New(client vfs.Client) *Interceptor {
	return &Interceptor{client: client, fds: make(map[int]*fdEntry), nextFD: 3}
}

// Open implements open(2) for the supported flag subset. The constants
// above share the Linux ABI encoding with vfs.OpenFlags, so the bitmask
// passes straight through — O_CREAT-on-existing, O_TRUNC, and access
// modes are all resolved by the backend.
func (ic *Interceptor) Open(p *sim.Proc, path string, flags int, mode uint32) (int, Errno) {
	f, err := ic.client.Open(p, path, vfs.OpenFlags(flags), mode)
	if err != nil {
		return -1, mapErr(err)
	}
	fd := ic.nextFD
	ic.nextFD++
	ic.fds[fd] = &fdEntry{file: f, path: path}
	return fd, EOK
}

// Creat implements creat(2).
func (ic *Interceptor) Creat(p *sim.Proc, path string, mode uint32) (int, Errno) {
	return ic.Open(p, path, OCreat|OWronly|OTrunc, mode)
}

// entry resolves a descriptor.
func (ic *Interceptor) entry(fd int) (*fdEntry, Errno) {
	e, ok := ic.fds[fd]
	if !ok {
		return nil, EBADF
	}
	return e, EOK
}

// Write implements write(2).
func (ic *Interceptor) Write(p *sim.Proc, fd int, data []byte) (int, Errno) {
	e, errno := ic.entry(fd)
	if errno != EOK {
		return -1, errno
	}
	n, err := e.file.Write(p, data)
	if err != nil {
		return -1, mapErr(err)
	}
	e.pos += int64(n)
	return n, EOK
}

// WriteN writes n synthetic bytes (the timing-only analogue).
func (ic *Interceptor) WriteN(p *sim.Proc, fd int, n int64) (int64, Errno) {
	e, errno := ic.entry(fd)
	if errno != EOK {
		return -1, errno
	}
	w, err := e.file.WriteN(p, n)
	if err != nil {
		return -1, mapErr(err)
	}
	e.pos += w
	return w, EOK
}

// Read implements read(2).
func (ic *Interceptor) Read(p *sim.Proc, fd int, buf []byte) (int, Errno) {
	e, errno := ic.entry(fd)
	if errno != EOK {
		return -1, errno
	}
	n, err := e.file.Read(p, buf)
	if err != nil {
		return -1, mapErr(err)
	}
	e.pos += int64(n)
	return n, EOK
}

// Whence values for Lseek.
const (
	SeekSet = 0
	SeekCur = 1
)

// Lseek implements lseek(2) for SEEK_SET and SEEK_CUR.
func (ic *Interceptor) Lseek(p *sim.Proc, fd int, offset int64, whence int) (int64, Errno) {
	e, errno := ic.entry(fd)
	if errno != EOK {
		return -1, errno
	}
	var target int64
	switch whence {
	case SeekSet:
		target = offset
	case SeekCur:
		target = e.pos + offset
	default:
		return -1, EINVAL
	}
	if target < 0 {
		return -1, EINVAL
	}
	if err := e.file.SeekTo(target); err != nil {
		return -1, mapErr(err)
	}
	e.pos = target
	return target, EOK
}

// Fsync implements fsync(2).
func (ic *Interceptor) Fsync(p *sim.Proc, fd int) Errno {
	e, errno := ic.entry(fd)
	if errno != EOK {
		return errno
	}
	return mapErr(e.file.Fsync(p))
}

// Close implements close(2).
func (ic *Interceptor) Close(p *sim.Proc, fd int) Errno {
	e, errno := ic.entry(fd)
	if errno != EOK {
		return errno
	}
	delete(ic.fds, fd)
	return mapErr(e.file.Close(p))
}

// Mkdir implements mkdir(2).
func (ic *Interceptor) Mkdir(p *sim.Proc, path string, mode uint32) Errno {
	return mapErr(ic.client.Mkdir(p, path, mode))
}

// Unlink implements unlink(2).
func (ic *Interceptor) Unlink(p *sim.Proc, path string) Errno {
	return mapErr(ic.client.Unlink(p, path))
}

// Rename implements rename(2).
func (ic *Interceptor) Rename(p *sim.Proc, oldPath, newPath string) Errno {
	return mapErr(ic.client.Rename(p, oldPath, newPath))
}

// ReadDir implements the readdir(3) family, returning all entries at
// once.
func (ic *Interceptor) ReadDir(p *sim.Proc, path string) ([]vfs.FileInfo, Errno) {
	entries, err := ic.client.ReadDir(p, path)
	return entries, mapErr(err)
}

// Stat implements stat(2).
func (ic *Interceptor) Stat(p *sim.Proc, path string) (vfs.FileInfo, Errno) {
	fi, err := ic.client.Stat(p, path)
	return fi, mapErr(err)
}

// OpenFDs returns the number of open descriptors (diagnostics; the
// runtime's background thread watches the microfs-level count).
func (ic *Interceptor) OpenFDs() int { return len(ic.fds) }
