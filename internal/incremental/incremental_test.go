package incremental

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/nvme-cr/nvmecr/internal/microfs"
	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/nvme"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/spdk"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

func rig(t *testing.T) (*sim.Env, *Writer) {
	t.Helper()
	env := sim.NewEnv()
	params := model.Default()
	params.SSD.CapacityGB = 1
	dev := nvme.New(env, "ssd", params.SSD, true)
	ns, err := dev.CreateNamespace(64 * model.MB)
	if err != nil {
		t.Fatal(err)
	}
	acct := &vfs.Account{}
	pl, err := spdk.NewPlane(ns, 0, ns.Size(), params.Host, acct)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := microfs.New(env, microfs.Config{
		Plane: pl, Account: acct, Host: params.Host,
		Features: microfs.AllFeatures(), LogBytes: 256 * model.KB, SnapBytes: model.MB,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env, New(inst, 4096)
}

func TestFirstCheckpointWritesEverything(t *testing.T) {
	env, w := rig(t)
	env.Go("t", func(p *sim.Proc) {
		state := bytes.Repeat([]byte{7}, 1<<20)
		written, err := w.Checkpoint(p, "/s.ckpt", state)
		if err != nil {
			t.Fatal(err)
		}
		if written != 1<<20 {
			t.Errorf("first dump wrote %d, want full %d", written, 1<<20)
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnchangedStateWritesNothing(t *testing.T) {
	env, w := rig(t)
	env.Go("t", func(p *sim.Proc) {
		state := bytes.Repeat([]byte{7}, 1<<20)
		w.Checkpoint(p, "/s.ckpt", state)
		written, err := w.Checkpoint(p, "/s.ckpt", state)
		if err != nil {
			t.Fatal(err)
		}
		if written != 0 {
			t.Errorf("unchanged dump wrote %d bytes", written)
		}
		if w.SavingsRatio() != 0.5 {
			t.Errorf("savings = %v, want 0.5 after one full + one empty dump", w.SavingsRatio())
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyPagesOnlyAreWritten(t *testing.T) {
	env, w := rig(t)
	env.Go("t", func(p *sim.Proc) {
		state := make([]byte, 64*4096)
		w.Checkpoint(p, "/s.ckpt", state)
		// Dirty pages 3, 4, and 40.
		state[3*4096+10] = 0xFF
		state[4*4096+20] = 0xEE
		state[40*4096] = 0xDD
		written, err := w.Checkpoint(p, "/s.ckpt", state)
		if err != nil {
			t.Fatal(err)
		}
		if written != 3*4096 {
			t.Errorf("dirty dump wrote %d, want 3 pages (%d)", written, 3*4096)
		}
		// Content on device matches the latest state exactly.
		got, err := w.Read(p, "/s.ckpt")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, state) {
			t.Fatal("incremental content diverged from state")
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGrowingAndShrinkingState(t *testing.T) {
	env, w := rig(t)
	env.Go("t", func(p *sim.Proc) {
		small := bytes.Repeat([]byte{1}, 10*4096)
		big := bytes.Repeat([]byte{1}, 20*4096)
		w.Checkpoint(p, "/s.ckpt", small)
		// Growth: the 10 new pages must be written.
		written, err := w.Checkpoint(p, "/s.ckpt", big)
		if err != nil {
			t.Fatal(err)
		}
		if written != 10*4096 {
			t.Errorf("growth wrote %d, want 10 pages", written)
		}
		// Shrink: a full rewrite (sizes disagree with stale tail).
		written, err = w.Checkpoint(p, "/s.ckpt", small)
		if err != nil {
			t.Fatal(err)
		}
		if written != 10*4096 {
			t.Errorf("shrink wrote %d, want full small size", written)
		}
		got, _ := w.Read(p, "/s.ckpt")
		if len(got) != len(small) {
			t.Errorf("read %d bytes after shrink, want %d", len(got), len(small))
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReadMissing(t *testing.T) {
	env, w := rig(t)
	env.Go("t", func(p *sim.Proc) {
		if _, err := w.Read(p, "/nope"); err != vfs.ErrNotExist {
			t.Errorf("Read missing = %v", err)
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomEvolutionMatchesState(t *testing.T) {
	env, w := rig(t)
	rng := rand.New(rand.NewSource(5))
	env.Go("t", func(p *sim.Proc) {
		state := make([]byte, 128*4096)
		rng.Read(state)
		for round := 0; round < 10; round++ {
			// Mutate ~5% of pages.
			for i := 0; i < 6; i++ {
				pg := rng.Intn(128)
				rng.Read(state[pg*4096 : pg*4096+4096])
			}
			if _, err := w.Checkpoint(p, "/evolve.ckpt", state); err != nil {
				t.Fatal(err)
			}
			got, err := w.Read(p, "/evolve.ckpt")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, state) {
				t.Fatalf("round %d: device content diverged", round)
			}
		}
		if w.SavingsRatio() < 0.5 {
			t.Errorf("savings = %v, expected most pages skipped", w.SavingsRatio())
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
