// Package incremental implements hash-based incremental checkpointing
// (libhashckpt-style, one of the complementary techniques the paper's
// related work surveys): between checkpoints, only pages whose content
// hash changed are rewritten. The paper notes such techniques "rely on
// existing inefficient IO subsystems" — layered over NVMe-CR they
// compose cleanly, shrinking dump volume on top of the runtime's fast
// path.
package incremental

import (
	"fmt"
	"hash/fnv"

	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

// Writer checkpoints evolving in-memory state into one file per target
// path, rewriting only changed pages after the first dump.
type Writer struct {
	client   vfs.Client
	pageSize int64
	// hashes[path] holds the per-page content hashes of the last dump.
	hashes map[string][]uint64
	sizes  map[string]int64

	// Stats.
	totalPages   int64
	writtenPages int64
}

// New builds a Writer with the given page granularity (default 4 KB).
func New(client vfs.Client, pageSize int64) *Writer {
	if pageSize <= 0 {
		pageSize = 4096
	}
	return &Writer{
		client:   client,
		pageSize: pageSize,
		hashes:   make(map[string][]uint64),
		sizes:    make(map[string]int64),
	}
}

// Stats reports total pages seen and pages actually written.
func (w *Writer) Stats() (total, written int64) { return w.totalPages, w.writtenPages }

// SavingsRatio is 1 - written/total.
func (w *Writer) SavingsRatio() float64 {
	if w.totalPages == 0 {
		return 0
	}
	return 1 - float64(w.writtenPages)/float64(w.totalPages)
}

func hashPage(page []byte) uint64 {
	h := fnv.New64a()
	h.Write(page)
	return h.Sum64()
}

// Checkpoint dumps state into path: the first call writes everything,
// later calls seek-and-write only the dirty pages. It returns the bytes
// actually written.
func (w *Writer) Checkpoint(p *sim.Proc, path string, state []byte) (int64, error) {
	nPages := (int64(len(state)) + w.pageSize - 1) / w.pageSize
	prev := w.hashes[path]
	first := prev == nil
	shrunk := w.sizes[path] > int64(len(state))

	// Create on first use, then rewrite dirty pages in place — never
	// O_TRUNC, as clean pages from the previous epoch must survive.
	f, err := w.client.Open(p, path, vfs.O_WRONLY|vfs.O_CREATE, 0o644)
	if err != nil {
		return 0, fmt.Errorf("incremental: %s: %w", path, err)
	}
	defer f.Close(p)

	cur := make([]uint64, nPages)
	var written int64
	// Accumulate dirty pages into maximal runs so the runtime sees
	// large sequential writes (which its log coalescing then folds).
	var runStart int64 = -1
	flush := func(endPage int64) error {
		if runStart < 0 {
			return nil
		}
		off := runStart * w.pageSize
		end := endPage * w.pageSize
		if end > int64(len(state)) {
			end = int64(len(state))
		}
		if err := f.SeekTo(off); err != nil {
			return err
		}
		n, err := f.Write(p, state[off:end])
		written += int64(n)
		runStart = -1
		return err
	}
	for pg := int64(0); pg < nPages; pg++ {
		start := pg * w.pageSize
		end := start + w.pageSize
		if end > int64(len(state)) {
			end = int64(len(state))
		}
		h := hashPage(state[start:end])
		cur[pg] = h
		w.totalPages++
		dirty := first || shrunk || pg >= int64(len(prev)) || prev[pg] != h
		if dirty {
			if runStart < 0 {
				runStart = pg
			}
			w.writtenPages++
			continue
		}
		if err := flush(pg); err != nil {
			return written, err
		}
	}
	if err := flush(nPages); err != nil {
		return written, err
	}
	if err := f.Fsync(p); err != nil {
		return written, err
	}
	w.hashes[path] = cur
	w.sizes[path] = int64(len(state))
	return written, nil
}

// Read returns the latest checkpointed content of path (capture-mode
// devices only).
func (w *Writer) Read(p *sim.Proc, path string) ([]byte, error) {
	size, ok := w.sizes[path]
	if !ok {
		return nil, vfs.ErrNotExist
	}
	f, err := w.client.Open(p, path, vfs.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close(p)
	buf := make([]byte, size)
	n, err := f.Read(p, buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}
