package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); !almost(got, 2.5) {
		t.Errorf("Mean = %v", got)
	}
}

func TestStdDevAndCoV(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("single-element stddev != 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); !almost(got, 2) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := CoV(xs); !almost(got, 0.4) {
		t.Errorf("CoV = %v, want 0.4", got)
	}
	if CoV([]float64{0, 0}) != 0 {
		t.Error("CoV with zero mean should be 0")
	}
	// Perfect balance: CoV of equal loads is 0.
	if CoV([]float64{7, 7, 7, 7}) != 0 {
		t.Error("CoV of equal loads != 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Min/Max != 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 50); !almost(got, 3) {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(xs, 0); !almost(got, 1) {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); !almost(got, 5) {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 25); !almost(got, 2) {
		t.Errorf("p25 = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile != 0")
	}
}

func TestBandwidth(t *testing.T) {
	if got := Bandwidth(2e9, time.Second); !almost(got, 2e9) {
		t.Errorf("Bandwidth = %v", got)
	}
	if Bandwidth(100, 0) != 0 {
		t.Error("zero-duration bandwidth != 0")
	}
}

func TestEfficiencyClamped(t *testing.T) {
	if got := Efficiency(1.76e10*0.96, 1.76e10); !almost(got, 0.96) {
		t.Errorf("Efficiency = %v", got)
	}
	if Efficiency(20, 10) != 1 {
		t.Error("efficiency not clamped to 1")
	}
	if Efficiency(-1, 10) != 0 {
		t.Error("negative efficiency not clamped")
	}
	if Efficiency(5, 0) != 0 {
		t.Error("zero hardware bandwidth not handled")
	}
}

func TestProgressRate(t *testing.T) {
	// Table II check: 29s compute, 85.9s checkpoint -> 0.252.
	got := ProgressRate(29*time.Second, 29*time.Second+859*time.Second/10)
	if math.Abs(got-0.252) > 0.002 {
		t.Errorf("progress rate = %v, want ~0.252", got)
	}
	if ProgressRate(time.Second, 0) != 0 {
		t.Error("zero total not handled")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Mean() != 0 {
		t.Error("empty counter mean != 0")
	}
	for _, v := range []float64{4, 2, 8} {
		c.Add(v)
	}
	if c.N() != 3 || !almost(c.Sum(), 14) || !almost(c.Mean(), 14.0/3) {
		t.Errorf("counter N/Sum/Mean = %d/%v/%v", c.N(), c.Sum(), c.Mean())
	}
	min, max := c.Range()
	if min != 2 || max != 8 {
		t.Errorf("Range = %v..%v", min, max)
	}
}

func TestGBpsFormat(t *testing.T) {
	if got := GBps(2.2e9); got != "2.20 GB/s" {
		t.Errorf("GBps = %q", got)
	}
}

func TestMiB(t *testing.T) {
	if got := MiB(1 << 20); !almost(got, 1) {
		t.Errorf("MiB = %v", got)
	}
}

// Property: CoV is scale-invariant for positive scalars.
func TestPropertyCoVScaleInvariant(t *testing.T) {
	f := func(raw []uint16, scaleRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		scale := float64(scaleRaw%9) + 1
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) + 1
			ys[i] = xs[i] * scale
		}
		return math.Abs(CoV(xs)-CoV(ys)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in p.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []uint16, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
