// Package metrics provides the statistics used throughout the
// evaluation: mean, standard deviation, coefficient of variation (the
// paper's load-imbalance metric), storage-system efficiency, and
// application progress rate.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// CoV returns the coefficient of variation (stddev/mean) of xs, the
// paper's measure of load imbalance across storage servers (Figure 7b).
// It returns 0 when the mean is zero.
func CoV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Bandwidth returns bytes/elapsed in bytes per second. Zero elapsed
// yields 0 to keep callers simple.
func Bandwidth(bytes int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / elapsed.Seconds()
}

// Efficiency is the paper's headline metric: the ratio of the IO
// bandwidth perceived by the application to the peak hardware bandwidth.
// The result is clamped to [0, 1].
func Efficiency(perceivedBW, hardwareBW float64) float64 {
	if hardwareBW <= 0 {
		return 0
	}
	e := perceivedBW / hardwareBW
	if e < 0 {
		return 0
	}
	if e > 1 {
		return 1
	}
	return e
}

// ProgressRate is the ratio of time spent in application compute to
// total application time (compute + IO + other overhead).
func ProgressRate(compute, total time.Duration) float64 {
	if total <= 0 {
		return 0
	}
	r := compute.Seconds() / total.Seconds()
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// GBps formats a bytes-per-second value as GB/s with two decimals.
func GBps(bytesPerSec float64) string {
	return fmt.Sprintf("%.2f GB/s", bytesPerSec/1e9)
}

// MiB converts a byte count to mebibytes.
func MiB(bytes int64) float64 { return float64(bytes) / (1 << 20) }

// Counter accumulates a series of observations.
type Counter struct {
	n   int
	sum float64
	min float64
	max float64
}

// Add records one observation.
func (c *Counter) Add(x float64) {
	if c.n == 0 || x < c.min {
		c.min = x
	}
	if c.n == 0 || x > c.max {
		c.max = x
	}
	c.n++
	c.sum += x
}

// N returns the number of observations.
func (c *Counter) N() int { return c.n }

// Sum returns the total of all observations.
func (c *Counter) Sum() float64 { return c.sum }

// Mean returns the mean observation, or 0 if empty.
func (c *Counter) Mean() float64 {
	if c.n == 0 {
		return 0
	}
	return c.sum / float64(c.n)
}

// Range returns the smallest and largest observations.
func (c *Counter) Range() (min, max float64) { return c.min, c.max }
