package workload

import (
	"fmt"
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/microfs"
	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/nvme"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/spdk"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

func client(t *testing.T, env *sim.Env, dev *nvme.Device) vfs.Client {
	t.Helper()
	ns, err := dev.CreateNamespace(64 * model.MB)
	if err != nil {
		t.Fatal(err)
	}
	acct := &vfs.Account{}
	pl, err := spdk.NewPlane(ns, 0, ns.Size(), model.Default().Host, acct)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := microfs.New(env, microfs.Config{
		Plane: pl, Account: acct, Host: model.Default().Host,
		Features: microfs.AllFeatures(), LogBytes: 256 * model.KB, SnapBytes: model.MB,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestDumpAndReadBack(t *testing.T) {
	env := sim.NewEnv()
	dev := nvme.New(env, "ssd", model.Default().SSD, false)
	c := client(t, env, dev)
	env.Go("t", func(p *sim.Proc) {
		if err := Dump(p, c, "/ckpt", 8*model.MB, model.MB); err != nil {
			t.Error(err)
			return
		}
		if err := ReadBack(p, c, "/ckpt", 8*model.MB, model.MB); err != nil {
			t.Error(err)
		}
		// Short file: ReadBack of more bytes than exist must fail.
		if err := ReadBack(p, c, "/ckpt", 9*model.MB, model.MB); err == nil {
			t.Error("ReadBack beyond EOF succeeded")
		}
		// Missing file.
		if err := ReadBack(p, c, "/nope", 10, 10); err == nil {
			t.Error("ReadBack of missing file succeeded")
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDumpChargesUserTime(t *testing.T) {
	env := sim.NewEnv()
	dev := nvme.New(env, "ssd", model.Default().SSD, false)
	c := client(t, env, dev)
	env.Go("t", func(p *sim.Proc) {
		Dump(p, c, "/f", 4*model.MB, model.MB)
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	user, _, _ := c.Account().Totals()
	if user <= 0 {
		t.Error("Dump charged no application user time")
	}
}

func TestStormCreatesFiles(t *testing.T) {
	env := sim.NewEnv()
	dev := nvme.New(env, "ssd", model.Default().SSD, false)
	c := client(t, env, dev)
	env.Go("t", func(p *sim.Proc) {
		if err := Storm(p, c, "/s", 25); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 25; i++ {
			if _, err := c.Stat(p, fmt.Sprintf("/s%06d", i)); err != nil {
				t.Errorf("file %d missing: %v", i, err)
			}
		}
		// Re-running the same storm must fail on the first duplicate.
		if err := Storm(p, c, "/s", 5); err == nil {
			t.Error("duplicate storm succeeded")
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFleetMakespanAndErrors(t *testing.T) {
	env := sim.NewEnv()
	elapsed, err := Fleet(env, 4, func(i int, p *sim.Proc) error {
		p.Sleep(sleepFor(i))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != sleepFor(3) {
		t.Errorf("makespan = %v, want %v", elapsed, sleepFor(3))
	}
	env2 := sim.NewEnv()
	_, err = Fleet(env2, 3, func(i int, p *sim.Proc) error {
		if i == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil {
		t.Error("Fleet swallowed a client error")
	}
}

func sleepFor(i int) time.Duration { return time.Duration(i+1) * time.Millisecond }
