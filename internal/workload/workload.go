// Package workload provides the reusable IO drivers behind the
// benchmark harness: checkpoint dumps, read-back, create storms, and a
// fleet runner that measures the makespan of N concurrent client
// processes — the building blocks of the paper's microbenchmarks
// (Figures 7a, 7c, 8a, 8b).
package workload

import (
	"fmt"
	"time"

	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

// Dump writes a fresh checkpoint file of `bytes` in `chunk`-sized write
// calls, makes it durable, and closes it — the paper's checkpoint dump
// unit (write syscalls followed by fsync). Before each write call the
// application packs its state into the buffer, charged as user CPU at
// model.Host.AppSerializeBW.
func Dump(p *sim.Proc, client vfs.Client, path string, bytes, chunk int64) error {
	f, err := client.Open(p, path, vfs.O_WRONLY|vfs.O_CREATE|vfs.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("workload: create %s: %w", path, err)
	}
	host := model.Default().Host
	if chunk <= 0 {
		chunk = bytes
	}
	var written int64
	for written < bytes {
		c := chunk
		if written+c > bytes {
			c = bytes - written
		}
		client.Account().Charge(p, vfs.User, model.DurFor(c, host.AppSerializeBW))
		n, err := f.WriteN(p, c)
		written += n
		if err != nil {
			return fmt.Errorf("workload: write %s: %w", path, err)
		}
	}
	if err := f.Fsync(p); err != nil {
		return err
	}
	return f.Close(p)
}

// ReadBack opens a checkpoint file and reads `bytes` fully — the
// restart path.
func ReadBack(p *sim.Proc, client vfs.Client, path string, bytes, chunk int64) error {
	f, err := client.Open(p, path, vfs.O_RDONLY, 0)
	if err != nil {
		return fmt.Errorf("workload: open %s: %w", path, err)
	}
	n, err := vfs.ReadAllN(p, f, bytes, chunk)
	if err != nil {
		return err
	}
	if n != bytes {
		return fmt.Errorf("workload: %s: read %d of %d bytes", path, n, bytes)
	}
	return f.Close(p)
}

// Storm creates n empty files named prefix%06d — the metadata-intensive
// file-per-process pattern of Figure 8b.
func Storm(p *sim.Proc, client vfs.Client, prefix string, n int) error {
	for i := 0; i < n; i++ {
		f, err := client.Open(p, fmt.Sprintf("%s%06d", prefix, i), vfs.O_WRONLY|vfs.O_CREATE|vfs.O_EXCL, 0o644)
		if err != nil {
			return err
		}
		if err := f.Close(p); err != nil {
			return err
		}
	}
	return nil
}

// Fleet launches n concurrent client processes running body and drives
// the simulation to completion, returning the makespan (the time at
// which the last process finished). The environment must be fresh
// (Fleet calls Run).
func Fleet(env *sim.Env, n int, body func(i int, p *sim.Proc) error) (time.Duration, error) {
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		env.Go(fmt.Sprintf("client%04d", i), func(p *sim.Proc) {
			errs[i] = body(i, p)
		})
	}
	end, err := env.Run()
	if err != nil {
		return end, err
	}
	for i, e := range errs {
		if e != nil {
			return end, fmt.Errorf("workload: client %d: %w", i, e)
		}
	}
	return end, nil
}
