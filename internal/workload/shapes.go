package workload

import (
	"fmt"
	"math/rand"
)

// ShapeKind names one tenant traffic shape in a multi-tenant campaign.
// Shapes describe *intent* — how a tenant's ranks pace and size their
// IO — independently of the transport that carries it, so the QoS
// campaign runner (internal/qos/campaign) and the simulation harness
// can draw from the same vocabulary.
type ShapeKind int

const (
	// ShapeVictim is the well-behaved tenant whose tail latency the
	// campaign protects: steady, low-rate, small operations with think
	// time between them.
	ShapeVictim ShapeKind = iota
	// ShapeAggressor saturates the target: large writes issued flat
	// out with no think time, the noisy neighbor admission control
	// exists to contain.
	ShapeAggressor
	// ShapeBursty alternates idle spells with short full-rate bursts —
	// the checkpoint-dump cadence, bursty enough to test burst-bucket
	// sizing without sustained saturation.
	ShapeBursty
	// ShapeRestartStorm is many ranks reading back checkpoints at
	// once: read-heavy, synchronized start, the restart stampede of
	// the paper's recovery path.
	ShapeRestartStorm
)

// String names the shape for labels and failure messages.
func (k ShapeKind) String() string {
	switch k {
	case ShapeVictim:
		return "victim"
	case ShapeAggressor:
		return "aggressor"
	case ShapeBursty:
		return "bursty"
	case ShapeRestartStorm:
		return "restart-storm"
	default:
		return fmt.Sprintf("shape(%d)", int(k))
	}
}

// Shape is one tenant's traffic recipe: per-op sizing, read mix, and
// pacing. Ops counts are per rank; the runner multiplies by the
// tenant's rank count.
type Shape struct {
	Kind ShapeKind
	// OpBytes is the payload size of one IO.
	OpBytes int64
	// ReadFraction is the probability an op is a read (0 = all
	// writes, 1 = all reads).
	ReadFraction float64
	// OpsPerRank is how many operations each rank issues.
	OpsPerRank int
	// ThinkOps is the mean think time between a rank's ops, expressed
	// in units of "modeled op durations" (0 = issue flat out). The
	// runner translates it to wall time against its own service-time
	// model, keeping shapes transport-independent.
	ThinkOps float64
	// BurstLen is how many ops a bursty rank issues back to back
	// before idling; 0 means no burst structure (uniform pacing).
	BurstLen int
}

// ShapeFor returns the canonical recipe for a kind, sized so one rank's
// working set is opBytes*OpsPerRank. These are the campaign defaults;
// callers tweak fields after the fact when a scenario needs it.
func ShapeFor(kind ShapeKind, opBytes int64) Shape {
	switch kind {
	case ShapeAggressor:
		return Shape{Kind: kind, OpBytes: opBytes * 4, ReadFraction: 0, OpsPerRank: 64, ThinkOps: 0}
	case ShapeBursty:
		return Shape{Kind: kind, OpBytes: opBytes, ReadFraction: 0.25, OpsPerRank: 32, ThinkOps: 4, BurstLen: 8}
	case ShapeRestartStorm:
		return Shape{Kind: kind, OpBytes: opBytes * 2, ReadFraction: 1, OpsPerRank: 32, ThinkOps: 0}
	default: // ShapeVictim
		return Shape{Kind: ShapeVictim, OpBytes: opBytes, ReadFraction: 0.5, OpsPerRank: 24, ThinkOps: 8}
	}
}

// IsRead draws whether the rank's next op is a read, from the shape's
// read mix and the rank's own seeded source.
func (s Shape) IsRead(rng *rand.Rand) bool {
	if s.ReadFraction <= 0 {
		return false
	}
	if s.ReadFraction >= 1 {
		return true
	}
	return rng.Float64() < s.ReadFraction
}

// ThinkFactor draws the pacing multiplier before the rank's next op: 0
// for flat-out shapes; for paced shapes an exponential draw around
// ThinkOps, except inside a burst (op index within BurstLen) where
// bursty ranks issue back to back.
func (s Shape) ThinkFactor(rng *rand.Rand, opIndex int) float64 {
	if s.ThinkOps <= 0 {
		return 0
	}
	if s.BurstLen > 0 && opIndex%s.BurstLen != 0 {
		return 0
	}
	f := rng.ExpFloat64() * s.ThinkOps
	if s.BurstLen > 0 {
		// The whole burst's think budget lands on its first op.
		f *= float64(s.BurstLen)
	}
	return f
}
