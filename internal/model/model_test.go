package model

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultsPlausible(t *testing.T) {
	p := Default()
	if p.SSD.WriteBW <= 0 || p.SSD.ReadBW < p.SSD.WriteBW {
		t.Errorf("SSD bandwidths implausible: %+v", p.SSD)
	}
	if p.SSD.StripeWidth() != int64(p.SSD.Channels)*p.SSD.PageBytes {
		t.Errorf("StripeWidth = %d", p.SSD.StripeWidth())
	}
	if p.Net.NICBW < p.SSD.WriteBW {
		t.Error("NIC slower than one SSD: remote access could never keep up")
	}
	// The kernel path must cost more per op than the SPDK path.
	kernelPerOp := p.Kernel.SyscallTrap + p.Kernel.VFSPerOp + p.Kernel.Interrupt
	if kernelPerOp <= p.Host.PerCmdSubmit {
		t.Error("kernel per-op cost should exceed userspace submission cost")
	}
	// ext4's per-block collapse must dominate XFS's per-extent cost
	// per byte (the Figure 7c ordering).
	ext4PerByte := float64(p.Kernel.Ext4PerBlock) / float64(4*KB)
	xfsPerByte := float64(p.Kernel.XFSPerExtent) / float64(p.Kernel.XFSExtent)
	if ext4PerByte <= xfsPerByte {
		t.Error("ext4 per-byte journal cost should exceed XFS's")
	}
	// Baseline server overheads order GlusterFS ahead of OrangeFS
	// (Figure 1: 84% vs 41% of peak).
	if p.GlusterFS.PerBlockServer >= p.OrangeFS.PerBlockServer {
		t.Error("GlusterFS per-block cost should be below OrangeFS's")
	}
	if p.Lustre.Servers*int(p.Lustre.ServerBW) >= int(8*p.SSD.WriteBW) {
		t.Error("Lustre tier should be slower than the NVMe tier")
	}
}

func TestDurFor(t *testing.T) {
	if got := DurFor(2_200_000_000, 2.2e9); got != time.Second {
		t.Errorf("DurFor = %v, want 1s", got)
	}
	if DurFor(0, 1e9) != 0 || DurFor(-5, 1e9) != 0 || DurFor(100, 0) != 0 {
		t.Error("degenerate DurFor inputs should yield 0")
	}
}

func TestCmdsFor(t *testing.T) {
	cases := []struct {
		bytes, unit, want int64
	}{
		{0, 32768, 0},
		{1, 32768, 1},
		{32768, 32768, 1},
		{32769, 32768, 2},
		{1 << 20, 32768, 32},
		{100, 0, 1},
		{-1, 32768, 0},
	}
	for _, c := range cases {
		if got := CmdsFor(c.bytes, c.unit); got != c.want {
			t.Errorf("CmdsFor(%d, %d) = %d, want %d", c.bytes, c.unit, got, c.want)
		}
	}
}

// Property: CmdsFor is monotone in bytes and covers the payload.
func TestPropertyCmdsForCoverage(t *testing.T) {
	f := func(bytesRaw uint32, unitRaw uint16) bool {
		bytes := int64(bytesRaw)
		unit := int64(unitRaw) + 1
		cmds := CmdsFor(bytes, unit)
		if bytes <= 0 {
			return cmds == 0
		}
		return cmds*unit >= bytes && (cmds-1)*unit < bytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: DurFor is additive: moving a+b bytes takes as long as moving
// a then b (within rounding).
func TestPropertyDurForAdditive(t *testing.T) {
	f := func(aRaw, bRaw uint32) bool {
		a, b := int64(aRaw), int64(bRaw)
		whole := DurFor(a+b, 2.2e9)
		parts := DurFor(a, 2.2e9) + DurFor(b, 2.2e9)
		diff := whole - parts
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2 // nanosecond rounding
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
