// Package model centralizes every calibration constant used by the
// simulation substrates: SSD service parameters, fabric latencies,
// kernel software-path costs, and baseline metadata-service times.
//
// The defaults are derived from the paper's testbed (Intel P4800X Optane
// SSDs, 100 Gbps EDR InfiniBand, 28-core nodes) and from the published
// component studies the paper cites (SPDK overhead, NVMe-oF
// characterization, manycore filesystem scalability). We reproduce the
// paper's *shapes and ratios*; EXPERIMENTS.md records where each
// constant was calibrated against a paper number.
package model

import "time"

// Size constants.
const (
	KB = int64(1) << 10
	MB = int64(1) << 20
	GB = int64(1) << 30
)

// SSD describes the device model (P4800X-like).
type SSD struct {
	// WriteBW and ReadBW are the sustained media bandwidths.
	WriteBW float64 // bytes/sec (paper-class NVMe: ~2.2 GB/s write)
	ReadBW  float64 // bytes/sec (~2.5 GB/s read)
	// RAMBytes is the capacitor-backed device RAM absorbing write
	// bursts; RAMBW is its ingest bandwidth.
	RAMBytes int64
	RAMBW    float64
	// Channels is the number of flash channels; StripeBytes is the
	// span a single command can stripe across channels in one pass
	// (Channels * 4 KB pages). Commands larger than StripeBytes incur
	// an arbitration penalty (see CmdWaitCoeff).
	Channels   int
	PageBytes  int64
	HWQueues   int
	CapacityGB int64
	// PerCmdDevice is the serialized controller cost per NVMe command.
	PerCmdDevice time.Duration
	// CmdWaitCoeff scales the non-work-conserving arbitration penalty
	// for commands larger than the stripe width:
	//   penalty = CmdWaitCoeff * (cmdBytes - stripeBytes) / WriteBW.
	// This term is calibrated (not first-principles): it reproduces
	// the shallow upturn beyond 32 KB in the paper's Figure 7a, where
	// oversized commands increase hardware-queue waiting time.
	CmdWaitCoeff float64
}

// StripeWidth returns the number of bytes one command stripes across the
// channels in a single pass.
func (s SSD) StripeWidth() int64 { return int64(s.Channels) * s.PageBytes }

// Net describes the fabric model.
type Net struct {
	NICBW      float64       // bytes/sec per port (100 Gbps EDR = 12.5 GB/s)
	RDMABase   time.Duration // one-sided op base latency
	PerHop     time.Duration // per-switch-hop latency
	TCPBase    time.Duration // kernel TCP base latency (for comparison paths)
	ChunkBytes int64         // transfer interleaving granularity in the sim
}

// Kernel describes kernel software-path costs, used by the kernel
// filesystem baselines and the kernel NVMe-oF path (paper Figure 2).
type Kernel struct {
	SyscallTrap time.Duration // user->kernel->user transition
	VFSPerOp    time.Duration // VFS + generic block layer per operation
	Interrupt   time.Duration // completion interrupt + context switch
	NVMfPerOp   time.Duration // kernel nvme_rdma/nvmet_rdma added cost
	MemcpyBW    float64       // page-cache copy bandwidth per core
	// Ext4PerBlock is the serialized (journal-lock) cost ext4 pays per
	// 4 KB block under concurrent writers; XFSPerExtent is the
	// per-extent (delayed allocation) analogue. These reproduce the
	// manycore scalability collapse measured by Min et al. (ATC'16)
	// that the paper cites, and calibrate Figure 7c.
	Ext4PerBlock time.Duration
	XFSPerExtent time.Duration
	XFSExtent    int64         // bytes per XFS extent allocation
	JournalFsync time.Duration // journal commit forced by fsync
}

// Host describes userspace software costs.
type Host struct {
	// PerCmdSubmit is the non-overlapped host cost to build and submit
	// one NVMe command from userspace (SPDK-class).
	PerCmdSubmit time.Duration
	// LogAppend is the CPU cost to format and append one WAL record.
	LogAppend time.Duration
	// BTreeOp is the DRAM B+Tree lookup/insert cost.
	BTreeOp time.Duration
	// InodeAlloc is the cost to allocate and initialize an inode.
	InodeAlloc time.Duration
	// BlockAlloc is the per-block allocation/tracking CPU cost; with
	// hugeblocks there are 8x fewer blocks to pay it for, which is
	// where Figure 7d's low-concurrency gains come from.
	BlockAlloc time.Duration
	// ReplayPerRecord is the cost to replay one provenance record
	// during runtime recovery (decode, B+Tree rebuild, deterministic
	// block re-derivation, dir-file bookkeeping). Coalescing shrinks
	// the record count by orders of magnitude, which is what makes
	// NVMe-CR's recovery near-instant (Table II's 3.6 s vs 4 s).
	ReplayPerRecord time.Duration
	// MallocInit is kernel-attributed time spent in init/finalize and
	// allocator syscalls, as a fraction of total benchmark time
	// (paper: ~10% for NVMe-CR).
	MallocInitFrac float64
	// AppSerializeBW is the user-CPU rate at which the application
	// packs checkpoint state into write buffers. It provides the
	// user-time denominator for the paper's kernel-time fractions.
	AppSerializeBW float64
}

// MetaService describes a baseline's metadata-service behaviour.
type MetaService struct {
	// CreateService is the serialized time to insert a directory
	// entry under the (global-namespace) directory lock.
	CreateService time.Duration
	// LookupService is the serialized per-open/lookup time during
	// reads.
	LookupService time.Duration
	// PerBlockServer is the serialized server-side CPU cost per 4 KB
	// of data moved (overlay software layers over the kernel FS).
	PerBlockServer time.Duration
	// StripeBytes for striping systems (OrangeFS), 0 otherwise.
	StripeBytes int64
	// InodeBytes is the per-file metadata footprint stored by the
	// system (Table I accounting).
	InodeBytes int64
}

// Lustre describes the capacity-tier PFS used for multi-level
// checkpointing (4 OSS x 12 Gbps RAID controllers on the testbed).
type Lustre struct {
	Servers   int
	ServerBW  float64 // bytes/sec per server (12 Gbps RAID ~ 1.5 GB/s)
	CreateRPC time.Duration
	PerOpRPC  time.Duration
}

// Params aggregates every model constant.
type Params struct {
	SSD    SSD
	Net    Net
	Kernel Kernel
	Host   Host

	OrangeFS  MetaService
	GlusterFS MetaService
	Crail     MetaService

	Lustre Lustre

	// AppChunkBytes is the size of individual application write()
	// calls when dumping a checkpoint.
	AppChunkBytes int64
}

// Default returns the paper-calibrated parameter set.
func Default() Params {
	return Params{
		SSD: SSD{
			WriteBW:      2.2e9,
			ReadBW:       2.5e9,
			RAMBytes:     256 * MB,
			RAMBW:        2.4e9,
			Channels:     8,
			PageBytes:    4 * KB,
			HWQueues:     32,
			CapacityGB:   750,
			PerCmdDevice: 150 * time.Nanosecond,
			CmdWaitCoeff: 0.1,
		},
		Net: Net{
			NICBW:      12.5e9,
			RDMABase:   2 * time.Microsecond,
			PerHop:     300 * time.Nanosecond,
			TCPBase:    15 * time.Microsecond,
			ChunkBytes: 4 * MB,
		},
		Kernel: Kernel{
			SyscallTrap:  1500 * time.Nanosecond,
			VFSPerOp:     6 * time.Microsecond,
			Interrupt:    4 * time.Microsecond,
			NVMfPerOp:    12 * time.Microsecond,
			MemcpyBW:     6e9,
			Ext4PerBlock: 10500 * time.Nanosecond,
			XFSPerExtent: 280 * time.Microsecond,
			XFSExtent:    512 * KB,
			JournalFsync: 5 * time.Millisecond,
		},
		Host: Host{
			PerCmdSubmit:    1200 * time.Nanosecond,
			LogAppend:       400 * time.Nanosecond,
			BTreeOp:         300 * time.Nanosecond,
			InodeAlloc:      500 * time.Nanosecond,
			BlockAlloc:      1500 * time.Nanosecond,
			ReplayPerRecord: 1 * time.Millisecond,
			MallocInitFrac:  0.10,
			AppSerializeBW:  1.2e9,
		},
		OrangeFS: MetaService{
			CreateService:  14 * time.Microsecond,
			LookupService:  10 * time.Microsecond,
			PerBlockServer: 4500 * time.Nanosecond,
			StripeBytes:    64 * KB,
			InodeBytes:     2 * KB,
		},
		GlusterFS: MetaService{
			CreateService:  36 * time.Microsecond,
			LookupService:  150 * time.Microsecond,
			PerBlockServer: 1900 * time.Nanosecond,
			InodeBytes:     256,
		},
		Crail: MetaService{
			CreateService:  25 * time.Microsecond,
			LookupService:  15 * time.Microsecond,
			PerBlockServer: 0,
			InodeBytes:     512,
		},
		Lustre: Lustre{
			Servers:   4,
			ServerBW:  1.5e9,
			CreateRPC: 500 * time.Microsecond,
			PerOpRPC:  80 * time.Microsecond,
		},
		AppChunkBytes: 4 * MB,
	}
}

// DurFor returns the time to move `bytes` at `bw` bytes/sec.
func DurFor(bytes int64, bw float64) time.Duration {
	if bytes <= 0 || bw <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / bw * float64(time.Second))
}

// CmdsFor returns the number of commands needed to move `bytes` in
// `unit`-sized commands (at least one for a non-empty transfer).
func CmdsFor(bytes, unit int64) int64 {
	if bytes <= 0 {
		return 0
	}
	if unit <= 0 {
		return 1
	}
	return (bytes + unit - 1) / unit
}
