// Package cache implements the paper's future-work item (§V): a DRAM
// cache layer over NVMe-CR's data plane. It is a write-through,
// LRU-evicted block cache at hugeblock granularity: repeated restart
// reads (the common pattern when a failed job is retried with the same
// checkpoint) are served at memory speed instead of re-crossing the
// fabric.
//
// Write-through keeps NVMe-CR's durability story intact — a write is
// never acknowledged before the device has it — so the cache changes
// only read latency, never consistency.
package cache

import (
	"container/list"
	"fmt"
	"time"

	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/plane"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

// Stats counts cache behaviour.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	HitBytes  int64
	MissBytes int64
}

// HitRate returns hits / (hits + misses).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Plane is a caching wrapper around another data plane.
type Plane struct {
	inner     plane.Plane
	acct      *vfs.Account
	blockSize int64
	capacity  int64 // bytes
	dramBW    float64

	lru     *list.List              // front = most recent; holds *entry
	byBlock map[int64]*list.Element // block index -> element
	used    int64

	stats Stats
}

type entry struct {
	block int64
	data  []byte // nil when the backing device does not capture
}

// Config sizes the cache.
type Config struct {
	// CapacityBytes is the DRAM budget (required).
	CapacityBytes int64
	// BlockBytes is the caching granularity (default 32 KB, the
	// hugeblock size).
	BlockBytes int64
	// DRAMBandwidth is the hit service rate (default 10 GB/s).
	DRAMBandwidth float64
}

// New wraps inner with a cache. acct receives hit-time charges.
func New(inner plane.Plane, acct *vfs.Account, cfg Config) (*Plane, error) {
	if cfg.CapacityBytes <= 0 {
		return nil, fmt.Errorf("cache: capacity %d", cfg.CapacityBytes)
	}
	if cfg.BlockBytes <= 0 {
		cfg.BlockBytes = 32 * model.KB
	}
	if cfg.CapacityBytes < cfg.BlockBytes {
		return nil, fmt.Errorf("cache: capacity %d below one %d-byte block", cfg.CapacityBytes, cfg.BlockBytes)
	}
	if cfg.DRAMBandwidth <= 0 {
		cfg.DRAMBandwidth = 10e9
	}
	return &Plane{
		inner:     inner,
		acct:      acct,
		blockSize: cfg.BlockBytes,
		capacity:  cfg.CapacityBytes,
		dramBW:    cfg.DRAMBandwidth,
		lru:       list.New(),
		byBlock:   make(map[int64]*list.Element),
	}, nil
}

// Size implements plane.Plane.
func (c *Plane) Size() int64 { return c.inner.Size() }

// Stats returns cache counters.
func (c *Plane) Stats() Stats { return c.stats }

// touch moves a cached block to the MRU position.
func (c *Plane) touch(el *list.Element) { c.lru.MoveToFront(el) }

// insert adds a block, evicting LRU entries as needed.
func (c *Plane) insert(block int64, data []byte) {
	if el, ok := c.byBlock[block]; ok {
		el.Value.(*entry).data = data
		c.touch(el)
		return
	}
	for c.used+c.blockSize > c.capacity {
		back := c.lru.Back()
		if back == nil {
			return
		}
		ev := back.Value.(*entry)
		delete(c.byBlock, ev.block)
		c.lru.Remove(back)
		c.used -= c.blockSize
		c.stats.Evictions++
	}
	c.byBlock[block] = c.lru.PushFront(&entry{block: block, data: data})
	c.used += c.blockSize
}

// Write implements plane.Plane: write-through, updating cached blocks.
func (c *Plane) Write(p *sim.Proc, off, length int64, data []byte, cmdUnit int64) error {
	if err := c.inner.Write(p, off, length, data, cmdUnit); err != nil {
		return err
	}
	// Update (or populate) the covered blocks. Partial-block writes
	// invalidate rather than merge — correctness over cleverness.
	first := off / c.blockSize
	last := (off + length - 1) / c.blockSize
	for b := first; b <= last; b++ {
		bStart := b * c.blockSize
		bEnd := bStart + c.blockSize
		full := off <= bStart && off+length >= bEnd
		if !full {
			if el, ok := c.byBlock[b]; ok {
				delete(c.byBlock, b)
				c.lru.Remove(el)
				c.used -= c.blockSize
			}
			continue
		}
		var blockData []byte
		if data != nil {
			blockData = append([]byte(nil), data[bStart-off:bEnd-off]...)
		}
		c.insert(b, blockData)
	}
	return nil
}

// Read implements plane.Plane: hits at DRAM speed, misses fall through
// in maximal contiguous runs and populate the cache.
func (c *Plane) Read(p *sim.Proc, off, length int64, cmdUnit int64) ([]byte, error) {
	if length <= 0 {
		return nil, nil
	}
	out := make([]byte, length)
	haveData := true

	first := off / c.blockSize
	last := (off + length - 1) / c.blockSize
	var missStart int64 = -1
	flushMisses := func(until int64) error {
		if missStart < 0 {
			return nil
		}
		runOff := missStart * c.blockSize
		if runOff < off {
			runOff = off
		}
		runEnd := until * c.blockSize
		if runEnd > off+length {
			runEnd = off + length
		}
		data, err := c.inner.Read(p, runOff, runEnd-runOff, cmdUnit)
		if err != nil {
			return err
		}
		if data == nil {
			haveData = false
		} else {
			copy(out[runOff-off:], data)
		}
		// Populate fully covered blocks.
		for b := missStart; b < until; b++ {
			bStart := b * c.blockSize
			bEnd := bStart + c.blockSize
			var blockData []byte
			if data != nil && runOff <= bStart && runEnd >= bEnd {
				blockData = append([]byte(nil), data[bStart-runOff:bEnd-runOff]...)
			}
			if runOff <= bStart && runEnd >= bEnd {
				c.insert(b, blockData)
			}
			c.stats.Misses++
			c.stats.MissBytes += min64(bEnd, off+length) - max64(bStart, off)
		}
		missStart = -1
		return nil
	}

	for b := first; b <= last; b++ {
		bStart := b * c.blockSize
		bEnd := min64(bStart+c.blockSize, off+length)
		readStart := max64(bStart, off)
		if el, ok := c.byBlock[b]; ok {
			if err := flushMisses(b); err != nil {
				return nil, err
			}
			e := el.Value.(*entry)
			c.touch(el)
			n := bEnd - readStart
			c.acct.Charge(p, vfs.User, time.Duration(float64(n)/c.dramBW*float64(time.Second)))
			if e.data != nil {
				copy(out[readStart-off:], e.data[readStart-bStart:readStart-bStart+n])
			} else {
				haveData = false
			}
			c.stats.Hits++
			c.stats.HitBytes += n
			continue
		}
		if missStart < 0 {
			missStart = b
		}
	}
	if err := flushMisses(last + 1); err != nil {
		return nil, err
	}
	if !haveData {
		return nil, nil
	}
	return out, nil
}

// Flush implements plane.Plane (write-through: nothing dirty to flush).
func (c *Plane) Flush(p *sim.Proc) error { return c.inner.Flush(p) }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
