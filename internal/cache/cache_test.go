package cache

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/nvme"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/spdk"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

func rigFull(t *testing.T, capture bool, capacity int64) (*sim.Env, *Plane, *spdk.Plane, *vfs.Account) {
	t.Helper()
	env := sim.NewEnv()
	params := model.Default()
	params.SSD.CapacityGB = 1
	dev := nvme.New(env, "ssd", params.SSD, capture)
	ns, err := dev.CreateNamespace(64 * model.MB)
	if err != nil {
		t.Fatal(err)
	}
	acct := &vfs.Account{}
	inner, err := spdk.NewPlane(ns, 0, ns.Size(), params.Host, acct)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(inner, acct, Config{CapacityBytes: capacity})
	if err != nil {
		t.Fatal(err)
	}
	return env, c, inner, acct
}

func rig(t *testing.T, capture bool, capacity int64) (*sim.Env, *Plane, *vfs.Account) {
	t.Helper()
	env, c, _, acct := rigFull(t, capture, capacity)
	return env, c, acct
}

func TestConfigValidation(t *testing.T) {
	env := sim.NewEnv()
	params := model.Default()
	dev := nvme.New(env, "ssd", params.SSD, false)
	ns, _ := dev.CreateNamespace(model.MB)
	acct := &vfs.Account{}
	inner, _ := spdk.NewPlane(ns, 0, ns.Size(), params.Host, acct)
	if _, err := New(inner, acct, Config{}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(inner, acct, Config{CapacityBytes: 100, BlockBytes: 32768}); err == nil {
		t.Error("capacity below one block accepted")
	}
}

func TestReadBackThroughCache(t *testing.T) {
	env, c, _ := rig(t, true, 4*model.MB)
	env.Go("t", func(p *sim.Proc) {
		payload := bytes.Repeat([]byte("cached"), 32768) // 192 KB
		if err := c.Write(p, 0, int64(len(payload)), payload, 32*model.KB); err != nil {
			t.Fatal(err)
		}
		got, err := c.Read(p, 0, int64(len(payload)), 32*model.KB)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("mismatch via cache hit path")
		}
		// Unaligned sub-range.
		got, err = c.Read(p, 1000, 5000, 32*model.KB)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload[1000:6000]) {
			t.Fatal("sub-range mismatch")
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteThroughPopulates(t *testing.T) {
	env, c, _ := rig(t, false, 4*model.MB)
	env.Go("t", func(p *sim.Proc) {
		c.Write(p, 0, 1*model.MB, nil, 32*model.KB)
		// Full-block writes populate the cache: the read is all hits.
		c.Read(p, 0, 1*model.MB, 32*model.KB)
		s := c.Stats()
		if s.Misses != 0 {
			t.Errorf("misses = %d after write-through population", s.Misses)
		}
		if s.Hits != 32 {
			t.Errorf("hits = %d, want 32 blocks", s.Hits)
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestColdReadMissesThenHits(t *testing.T) {
	env, c, _ := rig(t, false, 4*model.MB)
	env.Go("t", func(p *sim.Proc) {
		// Populate the device without the cache seeing it: partial
		// (non-block-aligned) writes invalidate rather than populate.
		c.Write(p, 16, 1*model.MB, nil, 32*model.KB)
		before := c.Stats()
		if before.Hits != 0 {
			t.Fatalf("unexpected hits after unaligned write: %+v", before)
		}
		c.Read(p, 16, 1*model.MB, 32*model.KB)
		mid := c.Stats()
		if mid.Misses == 0 {
			t.Fatal("cold read produced no misses")
		}
		c.Read(p, 32768, 32768, 32*model.KB) // aligned block now cached
		after := c.Stats()
		if after.Hits == 0 {
			t.Error("warm read produced no hits")
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHitsAreFasterThanMisses(t *testing.T) {
	env, c, inner, _ := rigFull(t, false, 64*model.MB)
	var cold, warm time.Duration
	env.Go("t", func(p *sim.Proc) {
		// Populate the device below the cache, so the first read is
		// genuinely cold.
		inner.Write(p, 0, 8*model.MB, nil, 32*model.KB)
		t0 := p.Now()
		c.Read(p, 0, 8*model.MB, 32*model.KB)
		cold = p.Now() - t0
		t0 = p.Now()
		c.Read(p, 0, 8*model.MB, 32*model.KB)
		warm = p.Now() - t0
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if warm >= cold/2 {
		t.Errorf("warm read %v not much faster than cold %v", warm, cold)
	}
}

func TestLRUEviction(t *testing.T) {
	// Capacity of 4 blocks; touch 8 blocks; verify evictions and that
	// the most recent stay resident.
	env, c, _ := rig(t, false, 4*32*model.KB)
	env.Go("t", func(p *sim.Proc) {
		for b := int64(0); b < 8; b++ {
			c.Write(p, b*32*model.KB, 32*model.KB, nil, 32*model.KB)
		}
		s := c.Stats()
		if s.Evictions != 4 {
			t.Errorf("evictions = %d, want 4", s.Evictions)
		}
		// Blocks 4..7 resident (hits), 0..3 evicted (misses).
		c.Read(p, 4*32*model.KB, 4*32*model.KB, 32*model.KB)
		if got := c.Stats().Hits; got != 4 {
			t.Errorf("hits on resident tail = %d, want 4", got)
		}
		c.Read(p, 0, 4*32*model.KB, 32*model.KB)
		if got := c.Stats().Misses; got != 4 {
			t.Errorf("misses on evicted head = %d, want 4", got)
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPartialWriteInvalidates(t *testing.T) {
	env, c, _ := rig(t, true, 4*model.MB)
	env.Go("t", func(p *sim.Proc) {
		full := bytes.Repeat([]byte{0xAA}, 32768)
		c.Write(p, 0, 32768, full, 32*model.KB) // cached
		// Overwrite a few bytes mid-block (partial): must invalidate.
		c.Write(p, 100, 4, []byte{1, 2, 3, 4}, 32*model.KB)
		got, err := c.Read(p, 0, 32768, 32*model.KB)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]byte(nil), full...)
		copy(want[100:], []byte{1, 2, 3, 4})
		if !bytes.Equal(got, want) {
			t.Fatal("stale cache served after partial overwrite")
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedAgainstInner(t *testing.T) {
	// Fuzz reads/writes through the cache and compare every read with
	// an uncached twin plane over a second identical device.
	envA, cached, _ := rig(t, true, 8*32*model.KB) // tiny cache: lots of eviction
	payloadSpace := int64(1 * model.MB)
	rng := rand.New(rand.NewSource(99))
	ref := make([]byte, payloadSpace)
	envA.Go("t", func(p *sim.Proc) {
		for op := 0; op < 300; op++ {
			off := rng.Int63n(payloadSpace - 70000)
			n := rng.Int63n(65536) + 1
			if rng.Intn(2) == 0 {
				data := make([]byte, n)
				rng.Read(data)
				if err := cached.Write(p, off, n, data, 32*model.KB); err != nil {
					t.Fatal(err)
				}
				copy(ref[off:off+n], data)
			} else {
				got, err := cached.Read(p, off, n, 32*model.KB)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, ref[off:off+n]) {
					t.Fatalf("op %d: read [%d,+%d) diverged from reference", op, off, n)
				}
			}
		}
	})
	if _, err := envA.Run(); err != nil {
		t.Fatal(err)
	}
	s := cached.Stats()
	if s.Hits == 0 || s.Misses == 0 || s.Evictions == 0 {
		t.Errorf("fuzz did not exercise all paths: %+v", s)
	}
}
