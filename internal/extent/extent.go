// Package extent implements a sparse byte store addressed by absolute
// offsets. It backs the NVMe device model: writes record real bytes (when
// data capture is enabled) so that functional tests can read back and
// checksum exactly what was written, while overlapping writes split and
// replace intervals the way a block device would.
package extent

import (
	"fmt"
	"sort"
)

// Store is a sparse, offset-addressed byte store. The zero value is not
// usable; create one with New. Store is not safe for concurrent use; the
// simulation engine guarantees single-threaded access, and the TCP
// NVMe-oF target wraps it in its own lock.
type Store struct {
	// extents sorted by offset, non-overlapping, non-adjacent-merged.
	extents []extent
	bytes   int64 // total stored payload bytes
}

type extent struct {
	off  int64
	data []byte
}

func (e extent) end() int64 { return e.off + int64(len(e.data)) }

// New returns an empty store.
func New() *Store { return &Store{} }

// Bytes returns the number of payload bytes currently stored.
func (s *Store) Bytes() int64 { return s.bytes }

// Extents returns the number of stored extents (diagnostics).
func (s *Store) Extents() int { return len(s.extents) }

// Write stores data at the given offset, overwriting any overlapping
// ranges. The data slice is copied.
func (s *Store) Write(off int64, data []byte) error {
	if off < 0 {
		return fmt.Errorf("extent: negative offset %d", off)
	}
	if len(data) == 0 {
		return nil
	}
	end := off + int64(len(data))
	// Find the first extent whose end is after off.
	i := sort.Search(len(s.extents), func(i int) bool {
		return s.extents[i].end() > off
	})
	// Fast path: the write falls entirely inside one existing extent.
	// Overwrite in place — no splice, no allocation, no change to the
	// stored byte count. This is the steady state of a block device
	// under rewrite (every checkpoint round after the first), and it is
	// what keeps the store off the NVMe-oF target's hot path.
	if i < len(s.extents) {
		if e := s.extents[i]; e.off <= off && end <= e.end() {
			copy(e.data[off-e.off:], data)
			return nil
		}
	}
	// Covered path: the write range is fully covered by a contiguous
	// chain of existing extents (a large rewrite over a range first
	// populated by several smaller writes). Overwrite each extent's
	// slice in place instead of splicing — the splice would allocate a
	// fresh copy of the whole payload per write, which is where the
	// device-bound benchmark's bytes-per-op inflation came from.
	if i < len(s.extents) && s.extents[i].off <= off {
		cover := s.extents[i].end()
		j := i
		for cover < end && j+1 < len(s.extents) && s.extents[j+1].off == cover {
			j++
			cover = s.extents[j].end()
		}
		if cover >= end {
			pos := off
			for k := i; pos < end; k++ {
				e := s.extents[k]
				to := min64(e.end(), end)
				copy(e.data[pos-e.off:to-e.off], data[pos-off:to-off])
				pos = to
			}
			return nil
		}
	}
	// Splice path. The result is assembled already sorted: extents
	// wholly before the write, then the left remainder of the first
	// overlapped extent, then the new extent, then the right remainder
	// of the last overlapped extent, then the untouched tail.
	out := make([]extent, 0, len(s.extents)+2)
	out = append(out, s.extents[:i]...)
	var right *extent
	j := i
	for ; j < len(s.extents) && s.extents[j].off < end; j++ {
		e := s.extents[j]
		s.bytes -= int64(len(e.data))
		if e.off < off {
			left := e.data[:off-e.off]
			out = append(out, extent{off: e.off, data: left})
			s.bytes += int64(len(left))
		}
		if e.end() > end {
			// Only the last overlapped extent can reach past end
			// (extents are disjoint), so at most one right remainder.
			right = &extent{off: end, data: e.data[end-e.off:]}
			s.bytes += int64(len(right.data))
		}
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	out = append(out, extent{off: off, data: cp})
	s.bytes += int64(len(cp))
	if right != nil {
		out = append(out, *right)
	}
	out = append(out, s.extents[j:]...)
	s.extents = out
	return nil
}

// Read copies up to length bytes starting at off into a fresh slice.
// Gaps (never-written ranges) read as zero bytes. The second result
// reports whether the entire range had been written.
func (s *Store) Read(off, length int64) ([]byte, bool) {
	if length <= 0 {
		return nil, true
	}
	buf := make([]byte, length)
	covered := int64(0)
	end := off + length
	i := sort.Search(len(s.extents), func(i int) bool {
		return s.extents[i].end() > off
	})
	for ; i < len(s.extents) && s.extents[i].off < end; i++ {
		e := s.extents[i]
		from := max64(e.off, off)
		to := min64(e.end(), end)
		copy(buf[from-off:to-off], e.data[from-e.off:to-e.off])
		covered += to - from
	}
	return buf, covered == length
}

// Trim discards all data in [off, off+length).
func (s *Store) Trim(off, length int64) {
	if length <= 0 {
		return
	}
	end := off + length
	i := sort.Search(len(s.extents), func(i int) bool {
		return s.extents[i].end() > off
	})
	var out []extent
	out = append(out, s.extents[:i]...)
	j := i
	for ; j < len(s.extents) && s.extents[j].off < end; j++ {
		e := s.extents[j]
		s.bytes -= int64(len(e.data))
		if e.off < off {
			left := e.data[:off-e.off]
			out = append(out, extent{off: e.off, data: left})
			s.bytes += int64(len(left))
		}
		if e.end() > end {
			right := e.data[end-e.off:]
			out = append(out, extent{off: end, data: right})
			s.bytes += int64(len(right))
		}
	}
	out = append(out, s.extents[j:]...)
	s.extents = out
}

// Reset discards everything.
func (s *Store) Reset() {
	s.extents = nil
	s.bytes = 0
}

// Clone returns a deep copy of the store (used for crash snapshots).
func (s *Store) Clone() *Store {
	c := &Store{bytes: s.bytes, extents: make([]extent, len(s.extents))}
	for i, e := range s.extents {
		d := make([]byte, len(e.data))
		copy(d, e.data)
		c.extents[i] = extent{off: e.off, data: d}
	}
	return c
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
