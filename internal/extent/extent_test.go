package extent

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteRead(t *testing.T) {
	s := New()
	if err := s.Write(100, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, full := s.Read(100, 5)
	if !full || string(got) != "hello" {
		t.Fatalf("Read = %q, full=%v", got, full)
	}
}

func TestNegativeOffsetRejected(t *testing.T) {
	s := New()
	if err := s.Write(-1, []byte("x")); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestEmptyWriteNoop(t *testing.T) {
	s := New()
	if err := s.Write(0, nil); err != nil {
		t.Fatal(err)
	}
	if s.Bytes() != 0 || s.Extents() != 0 {
		t.Fatalf("empty write stored data: %d bytes, %d extents", s.Bytes(), s.Extents())
	}
}

func TestGapReadsZero(t *testing.T) {
	s := New()
	s.Write(0, []byte{1, 2})
	s.Write(10, []byte{3, 4})
	got, full := s.Read(0, 12)
	if full {
		t.Error("full=true over a gap")
	}
	want := []byte{1, 2, 0, 0, 0, 0, 0, 0, 0, 0, 3, 4}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestOverwriteMiddle(t *testing.T) {
	s := New()
	s.Write(0, []byte("abcdefgh"))
	s.Write(2, []byte("XY"))
	got, full := s.Read(0, 8)
	if !full || string(got) != "abXYefgh" {
		t.Fatalf("got %q full=%v", got, full)
	}
	if s.Bytes() != 8 {
		t.Fatalf("Bytes = %d, want 8", s.Bytes())
	}
}

func TestOverwriteSpanningMultiple(t *testing.T) {
	s := New()
	s.Write(0, []byte("aaaa"))
	s.Write(4, []byte("bbbb"))
	s.Write(8, []byte("cccc"))
	s.Write(2, []byte("ZZZZZZZZ")) // covers [2,10)
	got, full := s.Read(0, 12)
	if !full || string(got) != "aaZZZZZZZZcc" {
		t.Fatalf("got %q full=%v", got, full)
	}
}

func TestTrim(t *testing.T) {
	s := New()
	s.Write(0, []byte("abcdefgh"))
	s.Trim(2, 4)
	got, full := s.Read(0, 8)
	if full {
		t.Error("full=true after trim")
	}
	want := []byte{'a', 'b', 0, 0, 0, 0, 'g', 'h'}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if s.Bytes() != 4 {
		t.Fatalf("Bytes = %d, want 4", s.Bytes())
	}
}

func TestReset(t *testing.T) {
	s := New()
	s.Write(0, []byte("abc"))
	s.Reset()
	if s.Bytes() != 0 || s.Extents() != 0 {
		t.Fatal("Reset left data behind")
	}
}

func TestCloneIndependent(t *testing.T) {
	s := New()
	s.Write(0, []byte("abc"))
	c := s.Clone()
	s.Write(0, []byte("XYZ"))
	got, _ := c.Read(0, 3)
	if string(got) != "abc" {
		t.Fatalf("clone mutated: %q", got)
	}
	if c.Bytes() != 3 {
		t.Fatalf("clone Bytes = %d", c.Bytes())
	}
}

func TestZeroLengthRead(t *testing.T) {
	s := New()
	got, full := s.Read(0, 0)
	if got != nil || !full {
		t.Fatalf("zero read = %v, %v", got, full)
	}
}

// TestAgainstReferenceModel fuzzes random writes/trims against a flat
// byte-array reference model.
func TestAgainstReferenceModel(t *testing.T) {
	const space = 1 << 12
	rng := rand.New(rand.NewSource(42))
	s := New()
	ref := make([]byte, space)
	written := make([]bool, space)
	for op := 0; op < 2000; op++ {
		off := rng.Int63n(space - 64)
		n := rng.Int63n(64) + 1
		switch rng.Intn(3) {
		case 0, 1: // write
			data := make([]byte, n)
			rng.Read(data)
			if err := s.Write(off, data); err != nil {
				t.Fatal(err)
			}
			copy(ref[off:off+n], data)
			for i := off; i < off+n; i++ {
				written[i] = true
			}
		case 2: // trim
			s.Trim(off, n)
			for i := off; i < off+n; i++ {
				ref[i] = 0
				written[i] = false
			}
		}
	}
	// Verify a full sweep.
	got, _ := s.Read(0, space)
	for i := range ref {
		want := byte(0)
		if written[i] {
			want = ref[i]
		}
		if got[i] != want {
			t.Fatalf("mismatch at %d: got %d want %d", i, got[i], want)
		}
	}
	// Byte accounting must equal count of written positions.
	var count int64
	for _, w := range written {
		if w {
			count++
		}
	}
	if s.Bytes() != count {
		t.Fatalf("Bytes = %d, want %d", s.Bytes(), count)
	}
}

// Property: write-then-read returns exactly the written data at any
// offset/payload combination.
func TestPropertyWriteReadRoundTrip(t *testing.T) {
	f := func(off uint16, payload []byte) bool {
		s := New()
		if err := s.Write(int64(off), payload); err != nil {
			return false
		}
		got, full := s.Read(int64(off), int64(len(payload)))
		if len(payload) == 0 {
			return true
		}
		return full && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: sequential non-overlapping writes account bytes exactly.
func TestPropertyByteAccounting(t *testing.T) {
	f := func(sizes []uint8) bool {
		s := New()
		var off, total int64
		for _, sz := range sizes {
			n := int64(sz%32) + 1
			data := make([]byte, n)
			if err := s.Write(off, data); err != nil {
				return false
			}
			off += n + 3 // leave gaps
			total += n
		}
		return s.Bytes() == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCoveredOverwriteDoesNotAllocate pins the in-place overwrite fast
// path: a write whose range is fully covered by existing (contiguous)
// extents must copy into their backing rather than splice a fresh
// extent — splicing on every overwrite is where the device-bound
// steady state's per-op allocation storm came from.
func TestCoveredOverwriteDoesNotAllocate(t *testing.T) {
	s := New()
	// Two adjacent extents cover [0, 8192).
	if err := s.Write(0, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(4096, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5A}, 6144)
	allocs := testing.AllocsPerRun(100, func() {
		// Crosses the extent seam: still fully covered, still in place.
		if err := s.Write(1024, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("covered overwrite allocates %.1f objects/op, want 0", allocs)
	}
	got, full := s.Read(1024, 6144)
	if !full || !bytes.Equal(got, payload) {
		t.Fatal("covered overwrite corrupted data")
	}
}
