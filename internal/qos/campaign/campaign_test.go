package campaign

import (
	"strings"
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/qos"
	"github.com/nvme-cr/nvmecr/internal/telemetry"
	"github.com/nvme-cr/nvmecr/internal/workload"
)

// campaignSeeds is the seeded iteration count: 100 by default, trimmed
// in -short to fit the verify.sh tier-1 budget.
func campaignSeeds(t *testing.T) int {
	if testing.Short() {
		return 10
	}
	return 100
}

// The canonical property campaign: victim, sustained aggressor,
// bursty, and restart-storm tenants over real TCP targets, seeded
// faults mid-campaign, every invariant asserted per seed. A failure
// prints the seed and the fault trace it reproduces from.
func TestCampaignProperty(t *testing.T) {
	if testing.Short() {
		// The full mixed campaign is wall-clock heavy; -short runs a
		// trimmed aggressor fleet over fewer seeds.
		for iter := 0; iter < campaignSeeds(t); iter++ {
			seed := int64(0xca4d + iter)
			cfg := MixedConfig(seed)
			cfg.Tenants[1].Ranks = 32 // lighter sustained aggressor
			runAndCheck(t, cfg, MixedBounds())
		}
		return
	}
	for iter := 0; iter < campaignSeeds(t); iter++ {
		seed := int64(0xca4d + iter)
		runAndCheck(t, MixedConfig(seed), MixedBounds())
	}
}

func runAndCheck(t *testing.T, cfg Config, b Bounds) {
	t.Helper()
	// The victim-tail bound is a wall-clock assertion: on a loaded test
	// machine (go test runs packages in parallel) a scheduler stall can
	// inflate one seed's p99.9 past the bound with admission working
	// perfectly. Retry a seed whose ONLY violations are tail bounds —
	// a real admission regression blows the bound by multiples on every
	// attempt (the break-demo measures ~6x over), so retries cannot
	// mask it. Accounting, fairness, and telemetry violations are
	// deterministic and never retried.
	const tailRetries = 2
	for attempt := 0; ; attempt++ {
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: campaign failed to run: %v", cfg.Seed, err)
		}
		if v := res.Check(b); len(v) > 0 {
			if attempt < tailRetries && tailBoundOnly(v) {
				t.Logf("seed %d attempt %d: tail bound exceeded under load, retrying: %s",
					cfg.Seed, attempt, v[0])
				continue
			}
			t.Fatalf("seed %d: %d invariant violations:\n%s\nfault trace:\n%s",
				cfg.Seed, len(v), joinLines(v), res.FaultTrace)
		}
		// The campaign must have actually exercised the machinery.
		agg := res.Tenant("aggressor")
		if agg != nil && agg.Rejected == 0 {
			t.Fatalf("seed %d: aggressor never rejected — admission control untested", cfg.Seed)
		}
		for _, tr := range res.Tenants {
			if tr.Completed == 0 {
				t.Fatalf("seed %d: tenant %s completed nothing", cfg.Seed, tr.Name)
			}
		}
		return
	}
}

// tailBoundOnly reports whether every violation is a victim p99.9
// bound breach (the one wall-clock-sensitive check).
func tailBoundOnly(violations []string) bool {
	for _, v := range violations {
		if !strings.Contains(v, "p99.9") || !strings.Contains(v, "exceeds bound") {
			return false
		}
	}
	return len(violations) > 0
}

// Fairness: four identical tenants split the targets near-evenly.
func TestCampaignFairness(t *testing.T) {
	seeds := 3
	if testing.Short() {
		seeds = 1
	}
	for iter := 0; iter < seeds; iter++ {
		seed := int64(0xfa17 + iter)
		cfg := EqualConfig(seed, 4)
		runAndCheck(t, cfg, Bounds{MinJain: 0.8, EqualTenants: EqualTenantNames(4)})
	}
}

// The break-demo: with admission enforcement disabled, the sustained
// aggressor's ranks stack the deadline gate's queue and the victim's
// p99.9 blows through the bound the property campaign holds — proving
// the suite detects a broken admission path rather than vacuously
// passing.
func TestCampaignBreakDemo(t *testing.T) {
	seed := int64(0xb4ea)
	cfg := DuelConfig(seed)
	cfg.Tenants[1].Ranks = 128 // full aggressor fleet, nothing holding it back
	cfg.DisableAdmission = true
	reg := telemetry.New()
	cfg.Registry = reg
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("seed %d: break-demo campaign failed to run: %v", seed, err)
	}
	v := res.Check(MixedBounds())
	if len(v) == 0 {
		t.Fatalf("seed %d: admission disabled but no invariant violated — the campaign cannot detect a broken admission path (victim p999 %v, solo %v)",
			seed, res.Tenant("victim").P999, res.SoloVictimP999)
	}
	t.Logf("seed %d: break-demo detected %d violations as designed: %s", seed, len(v), v[0])
}

// Cluster scale: thousands of ranks across tenants, every invariant
// still holding. Heavy; full mode only.
func TestCampaignClusterScale(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster-scale campaign skipped in -short")
	}
	seed := int64(0xc105)
	cfg := Config{
		Seed:          seed,
		Targets:       4,
		TargetLatency: 500 * time.Microsecond,
		GateCapacity:  8,
	}
	shape := workload.ShapeFor(workload.ShapeVictim, 1024)
	shape.OpsPerRank = 4
	shape.ThinkOps = 0
	shape.ReadFraction = 0.5
	for i := 0; i < 4; i++ {
		cfg.Tenants = append(cfg.Tenants, TenantSpec{
			Name:   equalName(i),
			Shape:  shape,
			Ranks:  500,
			Limits: qos.TenantLimits{OpsPerSec: 2000, OpsBurst: 32},
		})
	}
	runAndCheck(t, cfg, Bounds{MinJain: 0.8, EqualTenants: EqualTenantNames(4)})
}

func joinLines(xs []string) string {
	out := ""
	for _, x := range xs {
		out += "  - " + x + "\n"
	}
	return out
}
