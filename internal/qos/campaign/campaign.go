// Package campaign is the multi-tenant QoS campaign runner: it stands
// up real NVMe-oF TCP targets, wires per-tenant admission control
// (qos.Controller), a shared deadline gate (sched.EDF via
// nvmeof.PoolConfig.Gate), and per-tenant host pools, then drives
// seeded tenant workloads — victim, aggressor, bursty, restart-storm
// shapes from internal/workload — with optional fault injection
// mid-campaign. Everything is derived from one seed, so a failure
// reproduces from its printed seed.
//
// Run returns a Result carrying per-tenant tallies, exact latency
// quantiles from wall-clock samples (p99.9 included — the histogram
// buckets are too coarse for tail assertions), Jain's fairness index
// over per-tenant goodput, and any invariant violations detected
// during the run: admission accounting conservation, telemetry
// agreement with the in-memory tallies, and read-back verification
// that no admission-accepted acked write was lost. Latency-bound and
// fairness assertions live in Result.Check so tests and bench gates
// share one rulebook.
package campaign

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/nvme-cr/nvmecr/internal/faults"
	"github.com/nvme-cr/nvmecr/internal/nvmeof"
	"github.com/nvme-cr/nvmecr/internal/qos"
	"github.com/nvme-cr/nvmecr/internal/sched"
	"github.com/nvme-cr/nvmecr/internal/telemetry"
	"github.com/nvme-cr/nvmecr/internal/workload"
)

// TenantSpec is one tenant's slice of the campaign: a traffic shape, a
// rank count, and the admission budget it is held to.
type TenantSpec struct {
	Name   string
	Shape  workload.Shape
	Ranks  int
	Limits qos.TenantLimits
}

// Config describes one campaign. The zero value of most fields gets a
// default; Tenants is required.
type Config struct {
	// Seed drives every random choice: workload interleaving, think
	// times, payload patterns, and the fault plan.
	Seed int64
	// Targets is how many independent TCP targets serve the campaign
	// (default 2). Ranks stripe across them.
	Targets int
	// TargetLatency is the modeled device latency per command at each
	// target (default 1ms) — it sets the service-time scale every
	// other knob is calibrated against.
	TargetLatency time.Duration
	// QueuePairs per (tenant, target) pool (default 2).
	QueuePairs int
	// GateCapacity is the shared EDF gate's concurrency budget
	// (default 4); GateQueue and TenantQueue bound its backlog
	// (defaults 1024 and 512).
	GateCapacity int
	GateQueue    int
	TenantQueue  int
	// CommandTimeout bounds each command (default 2s; it also sets
	// the EDF deadline each pool presents to the gate).
	CommandTimeout time.Duration
	// Tenants is the tenant roster. Required.
	Tenants []TenantSpec
	// Faults are injected into every tenant pool's connections,
	// evaluated against one seeded plan (LayerTCP rules; wall-clock
	// windows are measured from campaign start).
	Faults []faults.Rule
	// DisableAdmission turns tenant admission off (every op admitted)
	// — the break-demo knob: aggressors then flood the gate and the
	// victim tail explodes.
	DisableAdmission bool
	// DisableGate removes the EDF gate from the pools — the second
	// break-demo knob.
	DisableGate bool
	// SoloBaseline, when true (the default via RunWithBaseline),
	// first runs the victim tenant alone in a clean world and records
	// its p99.9 as the reference for Check's latency bound.
	SoloBaseline bool
	// Registry receives the nvmecr_qos_* series (default: a private
	// registry).
	Registry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Targets <= 0 {
		c.Targets = 2
	}
	if c.TargetLatency <= 0 {
		c.TargetLatency = time.Millisecond
	}
	if c.QueuePairs <= 0 {
		c.QueuePairs = 2
	}
	if c.GateCapacity <= 0 {
		c.GateCapacity = 4
	}
	if c.GateQueue <= 0 {
		c.GateQueue = 1024
	}
	if c.TenantQueue <= 0 {
		c.TenantQueue = 512
	}
	if c.CommandTimeout <= 0 {
		c.CommandTimeout = 2 * time.Second
	}
	return c
}

// TenantResult is one tenant's campaign outcome.
type TenantResult struct {
	Name  string
	Shape string
	Ranks int

	// Admission outcomes (local tallies, cross-checked against the
	// controller's counters).
	Admitted uint64
	Rejected uint64

	// Outcomes of admitted operations. Admitted == Completed + Shed +
	// Late + Failed always holds — every admitted op has exactly one
	// outcome (the zero-lost-commands conservation law).
	Completed uint64
	Shed      uint64
	Late      uint64
	Failed    uint64

	// GoodputBytes is payload moved by completed operations.
	GoodputBytes int64

	// Exact quantiles over completed-op wall latencies.
	P50, P99, P999 time.Duration
}

// Result is one campaign's full outcome.
type Result struct {
	Seed     int64
	Duration time.Duration
	Tenants  []TenantResult
	// SoloVictimP999 is the victim's p99.9 from the solo baseline
	// pass (zero when no baseline ran or no victim exists).
	SoloVictimP999 time.Duration
	// Jain is Jain's fairness index over per-tenant goodput.
	Jain float64
	// FaultTrace reproduces the fault plan's firings.
	FaultTrace string
	// Violations are invariants the run itself detected broken:
	// accounting conservation, telemetry disagreement, lost acked
	// writes. Empty on a healthy run.
	Violations []string
}

// Tenant returns the named tenant's result, or nil.
func (r *Result) Tenant(name string) *TenantResult {
	for i := range r.Tenants {
		if r.Tenants[i].Name == name {
			return &r.Tenants[i]
		}
	}
	return nil
}

// Bounds parameterizes Check's latency and fairness assertions.
type Bounds struct {
	// VictimP999Ratio bounds victim p99.9 at Ratio*solo; Slack is the
	// absolute floor added so microsecond-scale baselines don't turn
	// scheduler jitter into failures: the bound is
	// max(Ratio*solo, solo+Slack). Zero Ratio skips the check.
	VictimP999Ratio float64
	VictimP999Slack time.Duration
	// MinJain fails the check when the goodput fairness index over
	// EqualTenants (all tenants when empty) is below it. Zero skips.
	MinJain      float64
	EqualTenants []string
}

// Check evaluates the latency and fairness bounds against the result,
// returning violations (empty = pass). Run-detected violations are
// included too, so a single Check call covers every invariant.
func (r *Result) Check(b Bounds) []string {
	out := append([]string{}, r.Violations...)
	if b.VictimP999Ratio > 0 && r.SoloVictimP999 > 0 {
		for _, tr := range r.Tenants {
			if tr.Shape != workload.ShapeVictim.String() {
				continue
			}
			bound := time.Duration(b.VictimP999Ratio * float64(r.SoloVictimP999))
			if floor := r.SoloVictimP999 + b.VictimP999Slack; bound < floor {
				bound = floor
			}
			if tr.P999 > bound {
				out = append(out, fmt.Sprintf(
					"tenant %s: p99.9 %v exceeds bound %v (solo %v, ratio %.1f, slack %v)",
					tr.Name, tr.P999, bound, r.SoloVictimP999, b.VictimP999Ratio, b.VictimP999Slack))
			}
		}
	}
	if b.MinJain > 0 {
		var goodput []float64
		for _, tr := range r.Tenants {
			if len(b.EqualTenants) > 0 {
				found := false
				for _, n := range b.EqualTenants {
					if n == tr.Name {
						found = true
					}
				}
				if !found {
					continue
				}
			}
			goodput = append(goodput, float64(tr.GoodputBytes))
		}
		if j := qos.Jain(goodput); j < b.MinJain {
			out = append(out, fmt.Sprintf("jain index %.3f below %.3f (goodput %v)", j, b.MinJain, goodput))
		}
	}
	return out
}

// tenantRun is one tenant's live campaign state.
type tenantRun struct {
	spec   TenantSpec
	tenant *qos.Tenant
	pools  []*nvmeof.HostPool

	completedC *telemetry.Counter
	failedC    *telemetry.Counter
	shedC      *telemetry.Counter
	latencyH   *telemetry.Histogram

	mu        sync.Mutex
	admitted  uint64
	rejected  uint64
	completed uint64
	shed      uint64
	late      uint64
	failed    uint64
	goodput   int64
	samples   []time.Duration
}

// rankRegion is one rank's private byte range on one target, plus what
// the campaign knows about its content: the last acked write pattern,
// and whether a later wire-touching write left the region
// indeterminate (a timed-out WRITE may or may not have landed — the
// read-back verifier only asserts regions whose last wire write was
// acknowledged).
type rankRegion struct {
	target        int
	base          int64
	size          int64
	lastAcked     []byte
	indeterminate bool
}

// Run executes the campaign and returns its result. With
// cfg.SoloBaseline set and a victim-shaped tenant present, a clean
// solo pass runs first to establish the latency reference.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Tenants) == 0 {
		return nil, errors.New("campaign: no tenants")
	}

	res := &Result{Seed: cfg.Seed}
	if cfg.SoloBaseline {
		for _, spec := range cfg.Tenants {
			if spec.Shape.Kind != workload.ShapeVictim {
				continue
			}
			solo := cfg
			solo.Tenants = []TenantSpec{spec}
			solo.Faults = nil
			solo.SoloBaseline = false
			solo.Registry = nil
			soloRes, err := Run(solo)
			if err != nil {
				return nil, fmt.Errorf("campaign: solo baseline: %w", err)
			}
			res.SoloVictimP999 = soloRes.Tenants[0].P999
			break
		}
	}

	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.New()
	}

	// Region sizing: every rank owns a private range wide enough for
	// the largest op in the roster.
	var regionBytes int64 = 4096
	totalRanks := 0
	for _, spec := range cfg.Tenants {
		if spec.Shape.OpBytes > regionBytes {
			regionBytes = spec.Shape.OpBytes
		}
		totalRanks += spec.Ranks
	}
	slotsPerTarget := (totalRanks + cfg.Targets - 1) / cfg.Targets
	nsBytes := int64(slotsPerTarget+1) * regionBytes
	if nsBytes < 1<<20 {
		nsBytes = 1 << 20
	}

	// Real TCP targets.
	targets := make([]*nvmeof.Target, cfg.Targets)
	addrs := make([]string, cfg.Targets)
	for i := range targets {
		tgt := nvmeof.NewTarget()
		if err := tgt.AddNamespace(1, nvmeof.NewMemNamespaceWithLatency(nsBytes, cfg.TargetLatency)); err != nil {
			return nil, err
		}
		addr, err := tgt.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		targets[i], addrs[i] = tgt, addr
		defer tgt.Close()
	}

	// Shared deadline gate and admission controller.
	var gate *sched.EDF
	if !cfg.DisableGate {
		gate = sched.NewEDF(sched.EDFConfig{
			Capacity:      cfg.GateCapacity,
			MaxWaiters:    cfg.GateQueue,
			TenantWaiters: cfg.TenantQueue,
		})
	}
	ctrl := qos.NewController(reg)
	if cfg.DisableAdmission {
		ctrl.SetEnforcement(false)
	}

	var plan *faults.Plan
	if len(cfg.Faults) > 0 {
		plan = faults.NewPlan(cfg.Seed, cfg.Faults...)
		plan.Instrument(reg)
	}

	// Per-tenant pools (one per target) and instruments.
	runs := make([]*tenantRun, len(cfg.Tenants))
	for ti, spec := range cfg.Tenants {
		tr := &tenantRun{
			spec:       spec,
			tenant:     ctrl.Tenant(spec.Name, spec.Limits),
			completedC: reg.Counter(qos.MetricCompleted, telemetry.Labels{"tenant": spec.Name}),
			failedC:    reg.Counter(qos.MetricFailed, telemetry.Labels{"tenant": spec.Name}),
			shedC:      reg.Counter(qos.MetricShed, telemetry.Labels{"tenant": spec.Name}),
			latencyH:   reg.Histogram(qos.MetricLatency, nil, telemetry.Labels{"tenant": spec.Name}),
		}
		for i := 0; i < cfg.Targets; i++ {
			pc := nvmeof.PoolConfig{
				QueuePairs:     cfg.QueuePairs,
				CommandTimeout: cfg.CommandTimeout,
				Gate:           gate,
				GateTenant:     spec.Name,
				RetryBackoff:   time.Millisecond,
			}
			if gate == nil {
				pc.Gate = nil
			}
			if plan != nil {
				pc.Dial = nvmeof.FaultDialer(plan)
			}
			pool, err := nvmeof.DialPool(addrs[i], 1, pc)
			if err != nil {
				return nil, fmt.Errorf("campaign: tenant %s target %d: %w", spec.Name, i, err)
			}
			tr.pools = append(tr.pools, pool)
			defer pool.Close()
		}
		runs[ti] = tr
	}

	// Rank layout: global rank g lands on target g%Targets at slot
	// g/Targets — each rank's region is private to it.
	regions := make([][]*rankRegion, len(runs))
	global := 0
	for ti, tr := range runs {
		regions[ti] = make([]*rankRegion, tr.spec.Ranks)
		for r := 0; r < tr.spec.Ranks; r++ {
			regions[ti][r] = &rankRegion{
				target: global % cfg.Targets,
				base:   int64(global/cfg.Targets) * regionBytes,
				size:   tr.spec.Shape.OpBytes,
			}
			global++
		}
	}

	// Drive the ranks. Aggressor-shaped tenants loop until every
	// finite tenant finishes, so the pressure lasts the whole
	// campaign; everyone else runs its shape's op count.
	start := time.Now()
	stop := make(chan struct{})
	var finite sync.WaitGroup
	var all sync.WaitGroup
	for ti, tr := range runs {
		for r := 0; r < tr.spec.Ranks; r++ {
			ti, tr, r := ti, tr, r
			sustained := tr.spec.Shape.Kind == workload.ShapeAggressor
			if !sustained {
				finite.Add(1)
			}
			all.Add(1)
			go func() {
				defer all.Done()
				if !sustained {
					defer finite.Done()
				}
				runRank(cfg, tr, regions[ti][r], ti, r, sustained, stop)
			}()
		}
	}
	finite.Wait()
	close(stop)
	all.Wait()
	res.Duration = time.Since(start)

	// Quiesce the data plane before verification reads.
	for _, tr := range runs {
		for _, p := range tr.pools {
			p.Close()
		}
	}

	// Invariant: zero admission-accepted commands lost. Every region
	// whose last wire-touching write was acked must read back as the
	// acked pattern — via clean pools, no gate, no faults.
	verifyPools := make([]*nvmeof.HostPool, cfg.Targets)
	for i := range verifyPools {
		p, err := nvmeof.DialPool(addrs[i], 1, nvmeof.PoolConfig{QueuePairs: 1, CommandTimeout: cfg.CommandTimeout})
		if err != nil {
			return nil, fmt.Errorf("campaign: verify pool: %w", err)
		}
		verifyPools[i] = p
		defer p.Close()
	}
	for ti, tr := range runs {
		for r, rr := range regions[ti] {
			if rr.indeterminate || rr.lastAcked == nil {
				continue
			}
			got, err := verifyPools[rr.target].ReadAt(rr.base, int64(len(rr.lastAcked)))
			if err != nil {
				res.Violations = append(res.Violations, fmt.Sprintf(
					"tenant %s rank %d: verify read failed: %v", tr.spec.Name, r, err))
				continue
			}
			if !bytes.Equal(got, rr.lastAcked) {
				res.Violations = append(res.Violations, fmt.Sprintf(
					"tenant %s rank %d: acked write lost at target %d offset %d",
					tr.spec.Name, r, rr.target, rr.base))
			}
		}
	}

	// Tally, conservation, and telemetry agreement.
	var goodput []float64
	for _, tr := range runs {
		tr.mu.Lock()
		sort.Slice(tr.samples, func(i, j int) bool { return tr.samples[i] < tr.samples[j] })
		out := TenantResult{
			Name:         tr.spec.Name,
			Shape:        tr.spec.Shape.Kind.String(),
			Ranks:        tr.spec.Ranks,
			Admitted:     tr.admitted,
			Rejected:     tr.rejected,
			Completed:    tr.completed,
			Shed:         tr.shed,
			Late:         tr.late,
			Failed:       tr.failed,
			GoodputBytes: tr.goodput,
			P50:          quantileDur(tr.samples, 0.50),
			P99:          quantileDur(tr.samples, 0.99),
			P999:         quantileDur(tr.samples, 0.999),
		}
		tr.mu.Unlock()

		if out.Admitted != out.Completed+out.Shed+out.Late+out.Failed {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"tenant %s: admission accounting broken: admitted %d != completed %d + shed %d + late %d + failed %d",
				out.Name, out.Admitted, out.Completed, out.Shed, out.Late, out.Failed))
		}
		st := ctrl.Lookup(tr.spec.Name).Stats()
		if st.Admitted != out.Admitted || st.Rejected() != out.Rejected {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"tenant %s: controller counters disagree: admitted %d/%d rejected %d/%d",
				out.Name, st.Admitted, out.Admitted, st.Rejected(), out.Rejected))
		}
		if v := tr.completedC.Value(); v != out.Completed {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"tenant %s: %s=%d, campaign tallied %d", out.Name, qos.MetricCompleted, v, out.Completed))
		}
		if v := tr.shedC.Value(); v != out.Shed+out.Late {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"tenant %s: %s=%d, campaign tallied %d", out.Name, qos.MetricShed, v, out.Shed+out.Late))
		}
		if v := tr.failedC.Value(); v != out.Failed {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"tenant %s: %s=%d, campaign tallied %d", out.Name, qos.MetricFailed, v, out.Failed))
		}
		if n := tr.latencyH.Count(); n != out.Completed {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"tenant %s: %s count=%d, campaign completed %d", out.Name, qos.MetricLatency, n, out.Completed))
		}

		res.Tenants = append(res.Tenants, out)
		goodput = append(goodput, float64(out.GoodputBytes))
	}
	res.Jain = qos.Jain(goodput)
	if plan != nil {
		res.FaultTrace = plan.FormatTrace()
	}
	return res, nil
}

// runRank drives one rank's op stream until its shape's op count is
// done (or, for sustained aggressors, until stop closes).
func runRank(cfg Config, tr *tenantRun, reg *rankRegion, tenantIdx, rank int, sustained bool, stop chan struct{}) {
	shape := tr.spec.Shape
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(tenantIdx)<<40 ^ int64(rank)<<16))
	pool := tr.pools[reg.target]
	buf := make([]byte, shape.OpBytes)

	for op := 0; ; op++ {
		if sustained {
			select {
			case <-stop:
				return
			default:
			}
			if op >= 1<<20 {
				return // backstop: the campaign is wedged, don't spin forever
			}
		} else if op >= shape.OpsPerRank {
			return
		}

		if f := shape.ThinkFactor(rng, op); f > 0 {
			time.Sleep(time.Duration(f * float64(cfg.TargetLatency)))
		}

		isRead := shape.IsRead(rng)
		opName := "write"
		if isRead {
			opName = "read"
		}
		if err := tr.tenant.Admit(opName, shape.OpBytes); err != nil {
			tr.mu.Lock()
			tr.rejected++
			tr.mu.Unlock()
			// The op was never accepted; it is abandoned, not queued.
			// The pause keeps a flat-out rejected tenant from turning
			// the admission bucket into a spin lock.
			time.Sleep(cfg.TargetLatency)
			continue
		}
		tr.mu.Lock()
		tr.admitted++
		tr.mu.Unlock()

		var err error
		t0 := time.Now()
		if isRead {
			_, err = pool.ReadAt(reg.base, shape.OpBytes)
		} else {
			fillPattern(buf, cfg.Seed, tenantIdx, rank, op)
			err = pool.WriteAt(reg.base, buf)
		}
		lat := time.Since(t0)

		tr.mu.Lock()
		switch {
		case err == nil:
			tr.completed++
			tr.goodput += shape.OpBytes
			tr.samples = append(tr.samples, lat)
			tr.completedC.Inc()
			tr.latencyH.ObserveDuration(lat)
			if !isRead {
				reg.lastAcked = append(reg.lastAcked[:0], buf...)
				reg.indeterminate = false
			}
		case errors.Is(err, sched.ErrShed):
			// Refused before touching the wire: a definite outcome.
			tr.shed++
			tr.shedC.Inc()
		case errors.Is(err, sched.ErrLate):
			tr.late++
			tr.shedC.Inc()
		default:
			tr.failed++
			tr.failedC.Inc()
			if !isRead {
				// The write may or may not have landed.
				reg.indeterminate = true
			}
		}
		tr.mu.Unlock()
	}
}

// fillPattern fills buf with bytes deterministically derived from
// (seed, tenant, rank, op) — the read-back verifier recomputes nothing,
// it compares against the retained acked copy, but distinct patterns
// per op make any cross-region or stale-data bug visible.
func fillPattern(buf []byte, seed int64, tenant, rank, op int) {
	x := uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(tenant)<<48 ^ uint64(rank)<<24 ^ uint64(op)
	for i := range buf {
		x = x*6364136223846793005 + 1442695040888963407
		buf[i] = byte(x >> 56)
	}
}

// quantileDur returns the exact q-quantile of the sorted samples
// (nearest-rank); zero when empty.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
