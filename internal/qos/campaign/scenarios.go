package campaign

import (
	"time"

	"github.com/nvme-cr/nvmecr/internal/faults"
	"github.com/nvme-cr/nvmecr/internal/qos"
	"github.com/nvme-cr/nvmecr/internal/workload"
)

// Canonical scenarios shared by the test suite, verify.sh, and the
// bench Gate 6 — one calibration, asserted everywhere the same way.
//
// The numbers are calibrated against the default service model: gate
// capacity 4 over a 2ms modeled device latency is ~2000 commands/s of
// aggregate service. Admission caps every tenant's arrival rate well
// below that, so queues stay short and the victim's tail rides close
// to its solo baseline; turn admission off and the aggressor's ranks
// stack the gate queue ~wait-depth deep, multiplying the victim tail
// past any sane bound — that contrast is what the break-demo asserts.

// victimSpec is the protected tenant: few ranks, paced small ops.
func victimSpec() TenantSpec {
	shape := workload.ShapeFor(workload.ShapeVictim, 2048)
	shape.OpsPerRank = 12
	shape.ThinkOps = 4
	return TenantSpec{
		Name:   "victim",
		Shape:  shape,
		Ranks:  3,
		Limits: qos.TenantLimits{OpsPerSec: 2000, OpsBurst: 64},
	}
}

// aggressorSpec is the noisy neighbor: `ranks` flat-out writers held
// to a small admitted rate and burst.
func aggressorSpec(ranks int, burst float64) TenantSpec {
	return TenantSpec{
		Name:   "aggressor",
		Shape:  workload.ShapeFor(workload.ShapeAggressor, 2048),
		Ranks:  ranks,
		Limits: qos.TenantLimits{OpsPerSec: 400, OpsBurst: burst},
	}
}

// MixedConfig is the canonical 100-seed property campaign: victim,
// sustained aggressor, bursty, and restart-storm tenants over two
// targets, with seeded TCP faults (connection resets and delays)
// firing mid-campaign.
func MixedConfig(seed int64) Config {
	bursty := workload.ShapeFor(workload.ShapeBursty, 2048)
	bursty.OpsPerRank = 24
	storm := workload.ShapeFor(workload.ShapeRestartStorm, 2048)
	storm.OpsPerRank = 12
	return Config{
		Seed:          seed,
		Targets:       2,
		TargetLatency: 2 * time.Millisecond,
		SoloBaseline:  true,
		Tenants: []TenantSpec{
			victimSpec(),
			aggressorSpec(128, 8),
			{
				Name:   "bursty",
				Shape:  bursty,
				Ranks:  3,
				Limits: qos.TenantLimits{OpsPerSec: 800, OpsBurst: 16, BytesPerSec: 4 << 20, BytesBurst: 64 << 10},
			},
			{
				Name:   "restart-storm",
				Shape:  storm,
				Ranks:  4,
				Limits: qos.TenantLimits{OpsPerSec: 1000, OpsBurst: 32},
			},
		},
		Faults: []faults.Rule{
			// Scoped to WRITE so resets hit established connections (and
			// their retry/reconnect path), never the CONNECT handshake —
			// on a slow machine pool dialing can drift into the fault
			// window, and a reset handshake fails pool construction
			// instead of exercising recovery.
			{Name: "mid-reset", Layer: faults.LayerTCP, Op: "WRITE", After: 30 * time.Millisecond, Until: 90 * time.Millisecond,
				Probability: 0.02, Count: 2, Kind: faults.KindConnReset},
			{Name: "mid-delay", Layer: faults.LayerTCP, Op: "WRITE", After: 40 * time.Millisecond, Until: 100 * time.Millisecond,
				Probability: 0.05, Count: 4, Kind: faults.KindDelay, Arg: (2 * time.Millisecond).Nanoseconds()},
		},
	}
}

// MixedBounds are the invariant bounds the mixed campaign is held to.
// The ratio and slack are deliberately loose — mid-campaign faults add
// retry chains to the victim tail — the tight 3x bound belongs to the
// fault-free duel the bench gate runs.
func MixedBounds() Bounds {
	return Bounds{VictimP999Ratio: 8, VictimP999Slack: 25 * time.Millisecond}
}

// DuelConfig is the bench Gate 6 latency scenario: victim plus one
// admission-limited aggressor tenant, no faults, tight calibration so
// the victim's p99.9 stays within 3x of its solo baseline.
func DuelConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		Targets:       2,
		TargetLatency: 2 * time.Millisecond,
		SoloBaseline:  true,
		Tenants: []TenantSpec{
			victimSpec(),
			aggressorSpec(16, 4),
		},
	}
}

// EqualConfig is the fairness scenario: n identical tenants with
// identical limits splitting the same targets; Jain's index over their
// goodput should be near 1.
func EqualConfig(seed int64, n int) Config {
	cfg := Config{
		Seed:          seed,
		Targets:       2,
		TargetLatency: time.Millisecond,
	}
	for i := 0; i < n; i++ {
		shape := workload.ShapeFor(workload.ShapeVictim, 2048)
		shape.OpsPerRank = 16
		shape.ThinkOps = 2
		cfg.Tenants = append(cfg.Tenants, TenantSpec{
			Name:   equalName(i),
			Shape:  shape,
			Ranks:  4,
			Limits: qos.TenantLimits{OpsPerSec: 500, OpsBurst: 8},
		})
	}
	return cfg
}

func equalName(i int) string {
	return "equal-" + string(rune('a'+i))
}

// EqualTenantNames lists EqualConfig's tenant names for Bounds.
func EqualTenantNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = equalName(i)
	}
	return out
}
