package qos_test

import (
	"errors"
	"math"
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/qos"
	"github.com/nvme-cr/nvmecr/internal/telemetry"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

// fixedClock returns a controller clock pinned to one instant, so
// buckets never refill and token arithmetic is exact.
func fixedClock() (func() time.Time, *time.Time) {
	now := time.Unix(1000, 0)
	return func() time.Time { return now }, &now
}

func TestAdmitTypedAndImmediate(t *testing.T) {
	clk, _ := fixedClock()
	ctrl := qos.NewController(nil, qos.WithClock(clk))
	tn := ctrl.Tenant("a", qos.TenantLimits{OpsPerSec: 10, OpsBurst: 2})

	for i := 0; i < 2; i++ {
		if err := tn.Admit("write", 0); err != nil {
			t.Fatalf("op %d within burst rejected: %v", i, err)
		}
	}
	start := time.Now()
	err := tn.Admit("write", 0)
	if !errors.Is(err, qos.ErrAdmission) {
		t.Fatalf("got %v, want ErrAdmission", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("admission rejection took %v; must be synchronous", d)
	}
	var ae *qos.AdmissionError
	if !errors.As(err, &ae) || ae.Tenant != "a" || ae.Reason != "ops" {
		t.Fatalf("rejection not typed: %#v", err)
	}
}

// Tokens refill at the configured rate.
func TestAdmitRefill(t *testing.T) {
	clk, now := fixedClock()
	ctrl := qos.NewController(nil, qos.WithClock(clk))
	tn := ctrl.Tenant("a", qos.TenantLimits{OpsPerSec: 10, OpsBurst: 1})
	if err := tn.Admit("op", 0); err != nil {
		t.Fatal(err)
	}
	if err := tn.Admit("op", 0); !errors.Is(err, qos.ErrAdmission) {
		t.Fatalf("bucket empty but admitted: %v", err)
	}
	*now = now.Add(100 * time.Millisecond) // exactly one token at 10/s
	if err := tn.Admit("op", 0); err != nil {
		t.Fatalf("token refilled but rejected: %v", err)
	}
}

// When the bytes bucket rejects, the already-taken op token is
// refunded: repeated bytes-rejections never misreport as ops
// exhaustion.
func TestAdmitBytesRejectRefundsOpToken(t *testing.T) {
	clk, _ := fixedClock()
	ctrl := qos.NewController(nil, qos.WithClock(clk))
	tn := ctrl.Tenant("a", qos.TenantLimits{
		OpsPerSec: 10, OpsBurst: 2,
		BytesPerSec: 1, BytesBurst: 64,
	})
	for i := 0; i < 5; i++ {
		err := tn.Admit("write", 1024)
		var ae *qos.AdmissionError
		if !errors.As(err, &ae) || ae.Reason != "bytes" {
			t.Fatalf("attempt %d: got %v, want bytes rejection (op token must be refunded)", i, err)
		}
	}
	// The ops budget is intact: a zero-byte op still fits.
	if err := tn.Admit("stat", 0); err != nil {
		t.Fatalf("ops budget leaked by bytes rejections: %v", err)
	}
}

// Enforcement off admits everything and still counts.
func TestEnforcementToggle(t *testing.T) {
	clk, _ := fixedClock()
	ctrl := qos.NewController(nil, qos.WithClock(clk))
	tn := ctrl.Tenant("a", qos.TenantLimits{OpsPerSec: 1, OpsBurst: 1})
	ctrl.SetEnforcement(false)
	for i := 0; i < 50; i++ {
		if err := tn.Admit("op", 1<<30); err != nil {
			t.Fatalf("enforcement off but rejected: %v", err)
		}
	}
	if st := tn.Stats(); st.Admitted != 50 {
		t.Fatalf("admitted count %d, want 50", st.Admitted)
	}
	ctrl.SetEnforcement(true)
	// Back on: the 1-op bucket rejects immediately.
	if err := tn.Admit("op", 0); err != nil {
		t.Fatal(err) // burst token still present
	}
	if err := tn.Admit("op", 0); !errors.Is(err, qos.ErrAdmission) {
		t.Fatalf("enforcement restored but admitted: %v", err)
	}
}

// A nil tenant admits everything (unlimited tenants cost nothing).
func TestNilTenant(t *testing.T) {
	var tn *qos.Tenant
	if err := tn.Admit("anything", 1<<40); err != nil {
		t.Fatal(err)
	}
}

func TestJain(t *testing.T) {
	if j := qos.Jain([]float64{5, 5, 5, 5}); math.Abs(j-1) > 1e-9 {
		t.Fatalf("equal shares: %v, want 1", j)
	}
	if j := qos.Jain([]float64{1, 0, 0, 0}); math.Abs(j-0.25) > 1e-9 {
		t.Fatalf("one-taker: %v, want 0.25", j)
	}
	if j := qos.Jain(nil); j != 1 {
		t.Fatalf("empty: %v, want 1", j)
	}
}

// The qos counters land in the registry under the nvmecr_qos_* names.
func TestControllerTelemetry(t *testing.T) {
	clk, _ := fixedClock()
	reg := telemetry.New()
	ctrl := qos.NewController(reg, qos.WithClock(clk))
	tn := ctrl.Tenant("a", qos.TenantLimits{OpsPerSec: 10, OpsBurst: 1})
	_ = tn.Admit("op", 0)
	_ = tn.Admit("op", 0)
	if v := reg.Counter(qos.MetricAdmitted, telemetry.Labels{"tenant": "a"}).Value(); v != 1 {
		t.Fatalf("admitted counter %d, want 1", v)
	}
	if v := reg.Counter(qos.MetricRejected, telemetry.Labels{"tenant": "a", "reason": "ops"}).Value(); v != 1 {
		t.Fatalf("rejected counter %d, want 1", v)
	}
}

// Satellite: quota-vs-admission classification. A tenant that is at
// its mount byte quota AND out of admission tokens gets ErrNoSpace —
// quota is consulted first — never a hang, never a misclassified
// ErrAdmission. The bucket being genuinely empty is proven by a read
// (which charges admission but not quota) getting ErrAdmission.
func TestQuotaBeforeAdmissionClassification(t *testing.T) {
	clk, _ := fixedClock()
	ctrl := qos.NewController(nil, qos.WithClock(clk))
	tn := ctrl.Tenant("gamma", qos.TenantLimits{
		OpsPerSec: 1000, OpsBurst: 1000,
		BytesPerSec: 1, BytesBurst: 512, // 512 byte tokens, ~no refill
	})

	ns := vfs.NewNamespace(nil)
	mnt, err := ns.Mount(vfs.MountConfig{
		Path:       "/gamma",
		Backend:    vfs.NewMemBackend(),
		Name:       "gamma",
		QuotaBytes: 1024,
		Admission:  tn,
	})
	if err != nil {
		t.Fatal(err)
	}

	f, err := ns.Open(nil, "/gamma/ckpt", vfs.O_RDWR|vfs.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Drain the byte bucket exactly as the quota fills halfway.
	if _, err := f.Write(nil, make([]byte, 512)); err != nil {
		t.Fatalf("first write within both budgets: %v", err)
	}

	// Over quota AND over admission: the quota answer wins.
	done := make(chan error, 1)
	go func() {
		_, err := f.Write(nil, make([]byte, 600))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, vfs.ErrNoSpace) {
			t.Fatalf("at quota and admission limit: got %v, want ErrNoSpace", err)
		}
		if errors.Is(err, qos.ErrAdmission) {
			t.Fatalf("misclassified as admission: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write hung: classification must be synchronous")
	}

	// Within quota but out of byte tokens: now it IS admission, and
	// the failed attempt must not leak its quota reservation.
	if _, err := f.Write(nil, make([]byte, 100)); !errors.Is(err, qos.ErrAdmission) {
		t.Fatalf("within quota, bucket empty: got %v, want ErrAdmission", err)
	}
	if st := mnt.Stats(); st.BytesUsed != 512 {
		t.Fatalf("rejected write leaked quota: bytesUsed %d, want 512", st.BytesUsed)
	}
	if st := mnt.Stats(); st.AdmissionRejections == 0 {
		t.Fatal("mount admission-rejection counter never moved")
	}

	// The bucket is genuinely empty: a read (no quota involved) is
	// rejected by admission.
	if err := f.SeekTo(0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(nil, make([]byte, 64)); !errors.Is(err, qos.ErrAdmission) {
		t.Fatalf("read with empty byte bucket: got %v, want ErrAdmission", err)
	}

	// Unlink is exempt: a throttled tenant can always free space.
	if err := f.Close(nil); err != nil {
		t.Fatal(err)
	}
	if err := ns.Unlink(nil, "/gamma/ckpt"); err != nil {
		t.Fatalf("unlink must bypass admission: %v", err)
	}
	if st := mnt.Stats(); st.BytesUsed != 0 {
		t.Fatalf("unlink did not release quota: %d", st.BytesUsed)
	}
}
