// Package qos is the multi-tenant quality-of-service layer: per-tenant
// token-bucket admission control in front of the storage stack. A
// Controller holds one Tenant per named job; each Tenant carries an
// ops-per-second and a bytes-per-second bucket, and Admit either
// consumes tokens and admits the operation or rejects it immediately
// with the typed ErrAdmission — admission never blocks and never hangs
// a caller.
//
// Tenants plug into vfs.Namespace mounts through MountConfig.Admission
// (a *Tenant satisfies the vfs.Admission interface), and the mount
// dispatch consults quotas before admission, so a tenant that is both
// at its byte quota and out of admission tokens gets the quota error
// (vfs.ErrNoSpace), never a misclassified ErrAdmission. Deadline
// scheduling for admitted commands lives in sched.EDF, wired into
// nvmeof.HostPool via PoolConfig.Gate; the campaign runner in
// internal/qos/campaign drives all three against real TCP targets.
//
// Telemetry: nvmecr_qos_admitted_total{tenant},
// nvmecr_qos_rejected_total{tenant,reason}, and — written by the
// campaign runner and the pool gate path —
// nvmecr_qos_completed_total{tenant}, nvmecr_qos_failed_total{tenant},
// nvmecr_qos_shed_total{tenant}, nvmecr_qos_latency_seconds{tenant}.
package qos

import (
	"errors"
	"sync"
	"time"

	"github.com/nvme-cr/nvmecr/internal/telemetry"
)

// ErrAdmission is the typed rejection admission control returns when a
// tenant is over its rate limits. It is always synchronous — an
// over-limit tenant is told "no" immediately, never parked.
var ErrAdmission = errors.New("qos: admission limit exceeded")

// Metric names for the nvmecr_qos_* series.
const (
	MetricAdmitted  = "nvmecr_qos_admitted_total"
	MetricRejected  = "nvmecr_qos_rejected_total"
	MetricCompleted = "nvmecr_qos_completed_total"
	MetricFailed    = "nvmecr_qos_failed_total"
	MetricShed      = "nvmecr_qos_shed_total"
	MetricLatency   = "nvmecr_qos_latency_seconds"
)

// TenantLimits configures one tenant's admission budget. Zero rates
// mean "unlimited" for that dimension.
type TenantLimits struct {
	// OpsPerSec caps operation admissions per second; OpsBurst is the
	// bucket depth (defaults to OpsPerSec, minimum 1).
	OpsPerSec float64
	OpsBurst  float64
	// BytesPerSec caps admitted payload bytes per second; BytesBurst is
	// the bucket depth (defaults to one second of rate).
	BytesPerSec float64
	BytesBurst  float64
}

// bucket is a lazily refilled token bucket. Safe for concurrent use.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate, burst float64, now time.Time) *bucket {
	if burst <= 0 {
		burst = rate
	}
	if burst < 1 {
		burst = 1
	}
	return &bucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// refill advances the bucket to now. Caller holds mu.
func (b *bucket) refill(now time.Time) {
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// take consumes n tokens when available, reporting success.
func (b *bucket) take(now time.Time, n float64) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill(now)
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// put refunds n tokens (an admission reversed by a later check).
func (b *bucket) put(n float64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += n
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// available reports the token level at now.
func (b *bucket) available(now time.Time) float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill(now)
	return b.tokens
}

// Tenant is one job's admission state. A *Tenant satisfies the
// vfs.Admission interface, so it plugs straight into a mount.
type Tenant struct {
	name   string
	limits TenantLimits
	c      *Controller
	ops    *bucket // nil = unlimited
	bytes  *bucket // nil = unlimited

	admitted      *telemetry.Counter
	rejectedOps   *telemetry.Counter
	rejectedBytes *telemetry.Counter
}

// Name returns the tenant label.
func (t *Tenant) Name() string { return t.name }

// Limits returns the configured budget.
func (t *Tenant) Limits() TenantLimits { return t.limits }

// Admit charges one operation of `bytes` payload against the tenant's
// buckets: nil means the operation is admitted, ErrAdmission (wrapped)
// means it is rejected right now. Admission is instantaneous either
// way. A nil *Tenant admits everything uncounted, so unlimited tenants
// cost nothing.
func (t *Tenant) Admit(op string, bytes int64) error {
	if t == nil {
		return nil
	}
	if !t.c.enforcing() {
		t.admitted.Inc()
		return nil
	}
	now := t.c.now()
	if !t.ops.take(now, 1) {
		t.rejectedOps.Inc()
		return &AdmissionError{Tenant: t.name, Op: op, Reason: "ops"}
	}
	if bytes > 0 && !t.bytes.take(now, float64(bytes)) {
		t.ops.put(1) // the op token must not leak when bytes reject
		t.rejectedBytes.Inc()
		return &AdmissionError{Tenant: t.name, Op: op, Reason: "bytes"}
	}
	t.admitted.Inc()
	return nil
}

// Stats returns the tenant's live admission counters and token levels.
func (t *Tenant) Stats() TenantStats {
	now := t.c.now()
	return TenantStats{
		Name:          t.name,
		Limits:        t.limits,
		Admitted:      t.admitted.Value(),
		RejectedOps:   t.rejectedOps.Value(),
		RejectedBytes: t.rejectedBytes.Value(),
		OpsTokens:     t.ops.available(now),
		ByteTokens:    t.bytes.available(now),
	}
}

// TenantStats is one tenant's /qos row.
type TenantStats struct {
	Name          string       `json:"name"`
	Limits        TenantLimits `json:"limits"`
	Admitted      uint64       `json:"admitted"`
	RejectedOps   uint64       `json:"rejected_ops"`
	RejectedBytes uint64       `json:"rejected_bytes"`
	OpsTokens     float64      `json:"ops_tokens"`
	ByteTokens    float64      `json:"byte_tokens"`
}

// Rejected sums both rejection reasons.
func (s TenantStats) Rejected() uint64 { return s.RejectedOps + s.RejectedBytes }

// AdmissionError is the concrete rejection: errors.Is(err, ErrAdmission)
// holds, and the error says which tenant, op, and bucket rejected.
type AdmissionError struct {
	Tenant string
	Op     string
	Reason string // "ops" or "bytes"
}

func (e *AdmissionError) Error() string {
	return "qos: tenant " + e.Tenant + ": " + e.Op + ": " + e.Reason + " admission limit exceeded"
}

// Unwrap makes errors.Is(err, ErrAdmission) true.
func (e *AdmissionError) Unwrap() error { return ErrAdmission }

// Controller owns the tenant set. Safe for concurrent use; lookups on
// hot paths should cache the *Tenant.
type Controller struct {
	reg *telemetry.Registry
	now func() time.Time

	mu       sync.RWMutex
	tenants  map[string]*Tenant
	disabled bool
}

// Option tweaks a Controller at construction.
type Option func(*Controller)

// WithClock injects a time source (deterministic tests).
func WithClock(now func() time.Time) Option {
	return func(c *Controller) { c.now = now }
}

// NewController builds an empty controller. reg may be nil; admission
// counters then live on standalone instruments only.
func NewController(reg *telemetry.Registry, opts ...Option) *Controller {
	c := &Controller{reg: reg, now: time.Now, tenants: map[string]*Tenant{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// SetEnforcement flips admission on or off. Off, every Admit succeeds
// (still counted as admitted) — the campaign suite's break-demo knob,
// and an operational escape hatch.
func (c *Controller) SetEnforcement(on bool) {
	c.mu.Lock()
	c.disabled = !on
	c.mu.Unlock()
}

func (c *Controller) enforcing() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return !c.disabled
}

// Tenant registers (or replaces) a tenant with the given limits and
// returns its admission handle. Replacing resets the buckets but keeps
// accumulating into the same telemetry series.
func (c *Controller) Tenant(name string, lim TenantLimits) *Tenant {
	t := &Tenant{name: name, limits: lim, c: c}
	now := c.now()
	if lim.OpsPerSec > 0 {
		t.ops = newBucket(lim.OpsPerSec, lim.OpsBurst, now)
	}
	if lim.BytesPerSec > 0 {
		t.bytes = newBucket(lim.BytesPerSec, lim.BytesBurst, now)
	}
	if c.reg != nil {
		t.admitted = c.reg.Counter(MetricAdmitted, telemetry.Labels{"tenant": name})
		t.rejectedOps = c.reg.Counter(MetricRejected, telemetry.Labels{"tenant": name, "reason": "ops"})
		t.rejectedBytes = c.reg.Counter(MetricRejected, telemetry.Labels{"tenant": name, "reason": "bytes"})
	} else {
		t.admitted = &telemetry.Counter{}
		t.rejectedOps = &telemetry.Counter{}
		t.rejectedBytes = &telemetry.Counter{}
	}
	c.mu.Lock()
	c.tenants[name] = t
	c.mu.Unlock()
	return t
}

// Lookup returns the named tenant, or nil.
func (c *Controller) Lookup(name string) *Tenant {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tenants[name]
}

// Snapshot returns every tenant's stats, sorted by name.
func (c *Controller) Snapshot() []TenantStats {
	c.mu.RLock()
	ts := make([]*Tenant, 0, len(c.tenants))
	for _, t := range c.tenants {
		ts = append(ts, t)
	}
	c.mu.RUnlock()
	out := make([]TenantStats, 0, len(ts))
	for _, t := range ts {
		out = append(out, t.Stats())
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Name < out[j-1].Name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Jain computes Jain's fairness index over the samples: 1.0 is perfect
// equality, 1/n is maximal unfairness. Zero-length input reports 1.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
