// Package spdk models Intel SPDK's userspace NVMe driver: unprivileged
// direct device access through memory-mapped queues, polling instead of
// interrupts, and a run-to-completion request pipeline. Per-command cost
// is the (small) host-side submission work; there are no kernel traps
// and no interrupt completions on this path.
package spdk

import (
	"fmt"
	"time"

	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/nvme"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

// Plane is a userspace data plane onto a contiguous segment of a local
// NVMe namespace. It implements plane.Plane.
type Plane struct {
	ns    *nvme.Namespace
	queue *nvme.Queue
	base  int64
	size  int64
	host  model.Host
	acct  *vfs.Account
}

// NewPlane opens a partition [base, base+size) of ns through a dedicated
// hardware queue. acct receives the time classification (may be shared
// with the owning client).
func NewPlane(ns *nvme.Namespace, base, size int64, host model.Host, acct *vfs.Account) (*Plane, error) {
	if base < 0 || size <= 0 || base+size > ns.Size() {
		return nil, fmt.Errorf("spdk: partition [%d,+%d) outside namespace of %d bytes", base, size, ns.Size())
	}
	return &Plane{
		ns:    ns,
		queue: ns.Device().AllocQueue(),
		base:  base,
		size:  size,
		host:  host,
		acct:  acct,
	}, nil
}

// Size returns the partition size.
func (pl *Plane) Size() int64 { return pl.size }

// Queue returns the hardware queue backing this plane (diagnostics).
func (pl *Plane) Queue() *nvme.Queue { return pl.queue }

// Device returns the underlying device.
func (pl *Plane) Device() *nvme.Device { return pl.ns.Device() }

func (pl *Plane) check(off, length int64) error {
	if off < 0 || length < 0 || off+length > pl.size {
		return fmt.Errorf("spdk: access [%d,+%d) outside partition of %d bytes", off, length, pl.size)
	}
	return nil
}

// submitCost charges the host-side per-command submission work.
func (pl *Plane) submitCost(p *sim.Proc, length, cmdUnit int64) {
	cmds := model.CmdsFor(length, cmdUnit)
	if cmds == 0 {
		cmds = 1
	}
	pl.acct.Charge(p, vfs.User, time.Duration(cmds)*pl.host.PerCmdSubmit)
}

// Write implements plane.Plane.
func (pl *Plane) Write(p *sim.Proc, off, length int64, data []byte, cmdUnit int64) error {
	if err := pl.check(off, length); err != nil {
		return err
	}
	pl.submitCost(p, length, cmdUnit)
	t0 := p.Now()
	_, err := pl.ns.Submit(p, pl.queue, nvme.Request{
		Op: nvme.OpWrite, Offset: pl.base + off, Length: length, Data: data, CmdUnit: cmdUnit,
	})
	pl.acct.Attribute(vfs.IOWait, p.Now()-t0)
	return err
}

// Read implements plane.Plane.
func (pl *Plane) Read(p *sim.Proc, off, length int64, cmdUnit int64) ([]byte, error) {
	if err := pl.check(off, length); err != nil {
		return nil, err
	}
	pl.submitCost(p, length, cmdUnit)
	t0 := p.Now()
	out, err := pl.ns.Submit(p, pl.queue, nvme.Request{
		Op: nvme.OpRead, Offset: pl.base + off, Length: length, CmdUnit: cmdUnit,
	})
	pl.acct.Attribute(vfs.IOWait, p.Now()-t0)
	return out, err
}

// Flush implements plane.Plane.
func (pl *Plane) Flush(p *sim.Proc) error {
	pl.submitCost(p, 0, 0)
	t0 := p.Now()
	_, err := pl.ns.Submit(p, pl.queue, nvme.Request{Op: nvme.OpFlush})
	pl.acct.Attribute(vfs.IOWait, p.Now()-t0)
	return err
}
