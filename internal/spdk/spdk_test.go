package spdk

import (
	"bytes"
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/nvme"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

func setup(t *testing.T, capture bool) (*sim.Env, *Plane, *vfs.Account) {
	t.Helper()
	env := sim.NewEnv()
	params := model.Default()
	params.SSD.CapacityGB = 1
	dev := nvme.New(env, "ssd", params.SSD, capture)
	ns, err := dev.CreateNamespace(64 * model.MB)
	if err != nil {
		t.Fatal(err)
	}
	acct := &vfs.Account{}
	pl, err := NewPlane(ns, 8*model.MB, 32*model.MB, params.Host, acct)
	if err != nil {
		t.Fatal(err)
	}
	return env, pl, acct
}

func TestPartitionBounds(t *testing.T) {
	env, pl, _ := setup(t, false)
	env.Go("t", func(p *sim.Proc) {
		if err := pl.Write(p, pl.Size()-10, 20, nil, 0); err == nil {
			t.Error("write past partition end accepted")
		}
		if _, err := pl.Read(p, -1, 10, 0); err == nil {
			t.Error("negative read offset accepted")
		}
		if err := pl.Write(p, 0, 4096, nil, 0); err != nil {
			t.Errorf("in-bounds write rejected: %v", err)
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBadPartitionRejected(t *testing.T) {
	env := sim.NewEnv()
	params := model.Default()
	dev := nvme.New(env, "ssd", params.SSD, false)
	ns, _ := dev.CreateNamespace(16 * model.MB)
	acct := &vfs.Account{}
	if _, err := NewPlane(ns, 0, 32*model.MB, params.Host, acct); err == nil {
		t.Error("oversized partition accepted")
	}
	if _, err := NewPlane(ns, -1, model.MB, params.Host, acct); err == nil {
		t.Error("negative base accepted")
	}
	if _, err := NewPlane(ns, 0, 0, params.Host, acct); err == nil {
		t.Error("zero size accepted")
	}
}

func TestDataRoundTripWithinPartition(t *testing.T) {
	env, pl, _ := setup(t, true)
	env.Go("t", func(p *sim.Proc) {
		payload := bytes.Repeat([]byte("spdk"), 1024)
		if err := pl.Write(p, 4096, int64(len(payload)), payload, 32*model.KB); err != nil {
			t.Fatal(err)
		}
		got, err := pl.Read(p, 4096, int64(len(payload)), 32*model.KB)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Error("payload mismatch")
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestReadNilWithoutCapture pins the plane.Plane Read contract: over a
// device that does not capture payloads, Read is (nil, nil) — not a
// zero-filled buffer — while a capturing device returns real data.
// Composite planes (see nvmeof.StripedPlane) rely on this to propagate
// nil all-or-nothing.
func TestReadNilWithoutCapture(t *testing.T) {
	env, pl, _ := setup(t, false)
	env.Go("t", func(p *sim.Proc) {
		payload := bytes.Repeat([]byte{0x5A}, 4096)
		if err := pl.Write(p, 0, 4096, payload, 0); err != nil {
			t.Fatal(err)
		}
		got, err := pl.Read(p, 0, 4096, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != nil {
			t.Fatalf("non-capturing read = %d bytes, want nil", len(got))
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}

	env, pl, _ = setup(t, true)
	env.Go("t", func(p *sim.Proc) {
		payload := bytes.Repeat([]byte{0x5A}, 4096)
		if err := pl.Write(p, 0, 4096, payload, 0); err != nil {
			t.Fatal(err)
		}
		got, err := pl.Read(p, 0, 4096, 0)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("capturing read = %d bytes, %v; want payload back", len(got), err)
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNoKernelTime(t *testing.T) {
	env, pl, acct := setup(t, false)
	env.Go("t", func(p *sim.Proc) {
		pl.Write(p, 0, 8*model.MB, nil, 32*model.KB)
		pl.Flush(p)
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	user, kernel, iowait := acct.Totals()
	if kernel != 0 {
		t.Errorf("kernel time = %v on SPDK path", kernel)
	}
	if user <= 0 {
		t.Error("no user (submission) time recorded")
	}
	if iowait <= 0 {
		t.Error("no IO wait recorded")
	}
}

func TestSubmissionCostScalesWithCommands(t *testing.T) {
	timeFor := func(unit int64) time.Duration {
		env, pl, _ := setup(t, false)
		env.Go("t", func(p *sim.Proc) {
			pl.Write(p, 0, 16*model.MB, nil, unit)
		})
		end, err := env.Run()
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	if small, big := timeFor(4*model.KB), timeFor(1*model.MB); small <= big {
		t.Errorf("4K-unit write (%v) should cost more than 1M-unit (%v)", small, big)
	}
}
