package blockpool

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1024, 0); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := New(10, 32); err == nil {
		t.Error("partition smaller than one block accepted")
	}
}

func TestAllocFreeCycle(t *testing.T) {
	p, err := New(10*32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if p.Blocks() != 10 || p.Free() != 10 {
		t.Fatalf("Blocks/Free = %d/%d", p.Blocks(), p.Free())
	}
	var got []int64
	for i := 0; i < 10; i++ {
		b, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, b)
	}
	if _, err := p.Alloc(); err == nil {
		t.Error("alloc from exhausted pool succeeded")
	}
	// All distinct, all in range.
	seen := map[int64]bool{}
	for _, b := range got {
		if b < 0 || b >= 10 || seen[b] {
			t.Fatalf("bad allocation %v", got)
		}
		seen[b] = true
	}
	for _, b := range got {
		if err := p.FreeBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if p.Free() != 10 {
		t.Fatalf("Free = %d after releasing everything", p.Free())
	}
}

func TestAllocNAtomic(t *testing.T) {
	p, _ := New(8*32, 32)
	if _, err := p.AllocN(9); err == nil {
		t.Error("oversized AllocN succeeded")
	}
	if p.Used() != 0 {
		t.Errorf("failed AllocN leaked %d blocks", p.Used())
	}
	blocks, err := p.AllocN(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 8 {
		t.Fatalf("AllocN returned %d blocks", len(blocks))
	}
	if _, err := p.AllocN(-1); err == nil {
		t.Error("negative AllocN accepted")
	}
}

func TestFreeValidation(t *testing.T) {
	p, _ := New(4*32, 32)
	if err := p.FreeBlock(99); err == nil {
		t.Error("out-of-range free accepted")
	}
	if err := p.FreeBlock(0); err == nil {
		t.Error("free with nothing allocated accepted")
	}
}

func TestOffset(t *testing.T) {
	p, _ := New(1024, 32)
	if got := p.Offset(3); got != 96 {
		t.Errorf("Offset(3) = %d, want 96", got)
	}
}

func TestBlocksFor(t *testing.T) {
	p, _ := New(1<<20, 32768)
	cases := []struct{ bytes, want int64 }{
		{0, 0}, {1, 1}, {32768, 1}, {32769, 2}, {65536, 2}, {-5, 0},
	}
	for _, c := range cases {
		if got := p.BlocksFor(c.bytes); got != c.want {
			t.Errorf("BlocksFor(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestHugeblocksShrinkPool(t *testing.T) {
	// The paper's 8x claim: a 32 KB pool over the same partition has
	// 8x fewer blocks (and so 8x less bookkeeping) than a 4 KB pool.
	part := int64(1 << 30)
	small, _ := New(part, 4<<10)
	huge, _ := New(part, 32<<10)
	if small.Blocks() != 8*huge.Blocks() {
		t.Errorf("4K pool %d blocks vs 32K pool %d blocks, want 8x", small.Blocks(), huge.Blocks())
	}
	if small.FootprintBytes() <= huge.FootprintBytes() {
		t.Error("hugeblock pool should have smaller footprint")
	}
}

func TestReserve(t *testing.T) {
	p, _ := New(8*64, 64)
	if err := p.Reserve(5); err != nil {
		t.Fatal(err)
	}
	if p.Used() != 1 {
		t.Fatalf("Used = %d", p.Used())
	}
	// Block 5 is gone: the next 7 allocations return everything else.
	seen := map[int64]bool{}
	for i := 0; i < 7; i++ {
		b, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if b == 5 || seen[b] {
			t.Fatalf("allocation %d returned reserved/duplicate block %d", i, b)
		}
		seen[b] = true
	}
	if err := p.Reserve(0); err == nil {
		t.Error("reserving an allocated block succeeded")
	}
	if err := p.Reserve(99); err == nil {
		t.Error("reserving an out-of-range block succeeded")
	}
}

func TestSnapshotRestoreExactOrder(t *testing.T) {
	// Recovery depends on the restored pool handing out blocks in
	// exactly the captured order.
	p, _ := New(16*64, 64)
	for i := 0; i < 5; i++ {
		p.Alloc()
	}
	p.FreeBlock(2) // perturb the circular order
	snap := p.Snapshot()

	q, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if q.Used() != p.Used() || q.BlockSize() != p.BlockSize() || q.Blocks() != p.Blocks() {
		t.Fatalf("restored shape differs: %d/%d/%d vs %d/%d/%d",
			q.Used(), q.BlockSize(), q.Blocks(), p.Used(), p.BlockSize(), p.Blocks())
	}
	// Both pools must hand out the identical sequence.
	for i := int64(0); i < q.Free(); {
		a, errA := p.Alloc()
		b, errB := q.Alloc()
		if errA != nil || errB != nil {
			t.Fatalf("alloc errors: %v / %v", errA, errB)
		}
		if a != b {
			t.Fatalf("divergent allocation order at step %d: %d vs %d", i, a, b)
		}
		i++
	}
}

func TestRestoreValidation(t *testing.T) {
	if _, err := Restore(State{}); err == nil {
		t.Error("empty snapshot accepted")
	}
	if _, err := Restore(State{BlockSize: 64, NBlocks: 4, Used: 1, Free: []int64{0, 1}}); err == nil {
		t.Error("inconsistent free-list length accepted")
	}
}

// Property: any interleaving of allocs and frees never hands out a block
// twice and conserves the total count.
func TestPropertyNoDoubleAllocation(t *testing.T) {
	f := func(ops []bool) bool {
		p, err := New(16*64, 64)
		if err != nil {
			return false
		}
		held := map[int64]bool{}
		var order []int64
		for _, alloc := range ops {
			if alloc {
				b, err := p.Alloc()
				if err != nil {
					if p.Free() != 0 {
						return false
					}
					continue
				}
				if held[b] {
					return false // double allocation
				}
				held[b] = true
				order = append(order, b)
			} else if len(order) > 0 {
				b := order[0]
				order = order[1:]
				if err := p.FreeBlock(b); err != nil {
					return false
				}
				delete(held, b)
			}
		}
		return p.Used() == int64(len(held))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
