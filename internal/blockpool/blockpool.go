// Package blockpool implements the paper's circular block pool: an O(1)
// allocator for hugeblocks, the large fixed-size units (default 32 KB)
// in which NVMe-CR manages SSD space. Hugeblocks keep the pool small —
// the paper reports an 8x reduction in pool size and inode count moving
// from 4 KB to 32 KB blocks — and make allocation a pointer bump.
package blockpool

import "fmt"

// Pool allocates fixed-size blocks from a contiguous partition using a
// circular free list. The zero value is not usable; call New.
type Pool struct {
	blockSize int64
	nblocks   int64

	// free is a circular buffer of free block indices.
	free []int64
	head int64 // next block to hand out
	tail int64 // next slot to return a freed block into
	used int64
}

// New creates a pool over a partition of `size` bytes divided into
// `blockSize`-byte hugeblocks. Any remainder bytes are unusable.
func New(size, blockSize int64) (*Pool, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("blockpool: block size %d", blockSize)
	}
	n := size / blockSize
	if n <= 0 {
		return nil, fmt.Errorf("blockpool: partition of %d bytes holds no %d-byte blocks", size, blockSize)
	}
	p := &Pool{blockSize: blockSize, nblocks: n, free: make([]int64, n)}
	for i := int64(0); i < n; i++ {
		p.free[i] = i
	}
	return p, nil
}

// BlockSize returns the hugeblock size in bytes.
func (p *Pool) BlockSize() int64 { return p.blockSize }

// Blocks returns the total number of blocks in the pool.
func (p *Pool) Blocks() int64 { return p.nblocks }

// Free returns the number of currently free blocks.
func (p *Pool) Free() int64 { return p.nblocks - p.used }

// Used returns the number of allocated blocks.
func (p *Pool) Used() int64 { return p.used }

// Alloc hands out one block index in O(1).
func (p *Pool) Alloc() (int64, error) {
	if p.used == p.nblocks {
		return 0, fmt.Errorf("blockpool: out of space (%d blocks of %d bytes)", p.nblocks, p.blockSize)
	}
	b := p.free[p.head]
	p.head = (p.head + 1) % p.nblocks
	p.used++
	return b, nil
}

// AllocN hands out n blocks, failing atomically (nothing allocated) if
// fewer are free.
func (p *Pool) AllocN(n int64) ([]int64, error) {
	if n < 0 {
		return nil, fmt.Errorf("blockpool: negative count %d", n)
	}
	if p.Free() < n {
		return nil, fmt.Errorf("blockpool: need %d blocks, only %d free", n, p.Free())
	}
	out := make([]int64, n)
	for i := range out {
		b, err := p.Alloc()
		if err != nil {
			return nil, err // unreachable given the check above
		}
		out[i] = b
	}
	return out, nil
}

// FreeBlock returns a block to the pool in O(1). Double frees and
// out-of-range indices are rejected as corruption.
func (p *Pool) FreeBlock(b int64) error {
	if b < 0 || b >= p.nblocks {
		return fmt.Errorf("blockpool: block %d out of range [0,%d)", b, p.nblocks)
	}
	if p.used == 0 {
		return fmt.Errorf("blockpool: free of block %d with no blocks allocated", b)
	}
	p.free[p.tail] = b
	p.tail = (p.tail + 1) % p.nblocks
	p.used--
	return nil
}

// Reserve marks a specific block as allocated, removing it from the
// free list in O(free). It is used when reconstructing pool state from a
// metadata snapshot during recovery; the subsequent replayed operations
// then re-derive the exact allocation order deterministically.
func (p *Pool) Reserve(b int64) error {
	if b < 0 || b >= p.nblocks {
		return fmt.Errorf("blockpool: block %d out of range [0,%d)", b, p.nblocks)
	}
	freeCount := p.nblocks - p.used
	for i := int64(0); i < freeCount; i++ {
		idx := (p.head + i) % p.nblocks
		if p.free[idx] == b {
			// Swap the found block to the head slot and consume it.
			p.free[idx] = p.free[p.head]
			p.free[p.head] = b
			if _, err := p.Alloc(); err != nil {
				return err
			}
			return nil
		}
	}
	return fmt.Errorf("blockpool: block %d is not free", b)
}

// State is a serializable image of the pool, captured into metadata
// snapshots so that recovery restores the exact circular order (which
// later replayed allocations depend on).
type State struct {
	BlockSize int64
	NBlocks   int64
	Free      []int64 // free blocks in hand-out order
	Used      int64
}

// Snapshot captures the pool state.
func (p *Pool) Snapshot() State {
	freeCount := p.nblocks - p.used
	free := make([]int64, freeCount)
	for i := int64(0); i < freeCount; i++ {
		free[i] = p.free[(p.head+i)%p.nblocks]
	}
	return State{BlockSize: p.blockSize, NBlocks: p.nblocks, Free: free, Used: p.used}
}

// Restore rebuilds a pool from a snapshot.
func Restore(s State) (*Pool, error) {
	if s.BlockSize <= 0 || s.NBlocks <= 0 || int64(len(s.Free)) != s.NBlocks-s.Used {
		return nil, fmt.Errorf("blockpool: inconsistent snapshot (%d blocks, %d used, %d free listed)",
			s.NBlocks, s.Used, len(s.Free))
	}
	p := &Pool{blockSize: s.BlockSize, nblocks: s.NBlocks, free: make([]int64, s.NBlocks), used: s.Used}
	copy(p.free, s.Free)
	p.head = 0
	p.tail = int64(len(s.Free)) % s.NBlocks
	return p, nil
}

// Offset converts a block index to a byte offset in the partition.
func (p *Pool) Offset(b int64) int64 { return b * p.blockSize }

// BlocksFor returns how many blocks are needed to store `bytes` payload
// bytes.
func (p *Pool) BlocksFor(bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	return (bytes + p.blockSize - 1) / p.blockSize
}

// FootprintBytes estimates the DRAM footprint of the pool's bookkeeping
// (Table I accounting): one 8-byte index per block.
func (p *Pool) FootprintBytes() int64 { return p.nblocks*8 + 64 }
