// Package fabric models the cluster interconnect: per-node NIC ports
// with finite bandwidth and a switch hierarchy contributing per-hop
// latency. Transfers are interleaved at a configurable chunk size so
// concurrent flows share NIC bandwidth fairly, the way hardware
// virtual-lane arbitration does on the paper's EDR InfiniBand testbed.
package fabric

import (
	"fmt"
	"time"

	"github.com/nvme-cr/nvmecr/internal/faults"
	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/topology"
)

// Path selects the transport flavour for latency accounting.
type Path int

const (
	// RDMA is the userspace verbs path (SPDK NVMe-oF initiator).
	RDMA Path = iota
	// KernelRDMA is the in-kernel nvme_rdma path: RDMA wire latency
	// plus kernel per-operation costs charged by the caller.
	KernelRDMA
	// TCP is a kernel TCP path, used for comparison modeling.
	TCP
)

func (p Path) String() string {
	switch p {
	case RDMA:
		return "rdma"
	case KernelRDMA:
		return "kernel-rdma"
	case TCP:
		return "tcp"
	default:
		return fmt.Sprintf("Path(%d)", int(p))
	}
}

// Fabric is the interconnect model for one cluster.
type Fabric struct {
	env     *sim.Env
	cluster *topology.Cluster
	params  model.Net
	nics    map[int]*sim.Resource // node ID -> NIC port

	bytesMoved int64

	// faults, when non-nil, is consulted once per transfer and round
	// trip (layer "fabric", ops "transfer" and "roundtrip").
	faults *faults.Plan
}

// InjectFaults attaches a fault plan: transfers may draw delay spikes
// (KindDelay, Arg nanoseconds) or partitions (KindPartition, the
// transfer fails); round trips only honor delays. Nil detaches.
func (f *Fabric) InjectFaults(plan *faults.Plan) { f.faults = plan }

// New builds the fabric for a cluster.
func New(env *sim.Env, cluster *topology.Cluster, p model.Net) *Fabric {
	f := &Fabric{
		env:     env,
		cluster: cluster,
		params:  p,
		nics:    make(map[int]*sim.Resource),
	}
	for _, n := range cluster.Nodes() {
		f.nics[n.ID] = env.NewResource(1)
	}
	return f
}

// Cluster returns the topology this fabric spans.
func (f *Fabric) Cluster() *topology.Cluster { return f.cluster }

// Params returns the network model parameters.
func (f *Fabric) Params() model.Net { return f.params }

// baseLatency returns the one-way message latency for a path between two
// nodes.
func (f *Fabric) baseLatency(path Path, src, dst *topology.Node) time.Duration {
	hops := f.cluster.Hops(src, dst)
	lat := f.params.PerHop * time.Duration(hops)
	switch path {
	case RDMA, KernelRDMA:
		lat += f.params.RDMABase
	case TCP:
		lat += f.params.TCPBase
	}
	return lat
}

// Transfer moves `bytes` from src to dst, blocking the calling process
// for the modeled duration. Loopback (src == dst) transfers cost only a
// memory-speed copy. Zero-byte transfers cost one message latency
// (protocol round trips are modeled by callers issuing such transfers).
func (f *Fabric) Transfer(p *sim.Proc, path Path, src, dst *topology.Node, bytes int64) error {
	if src == nil || dst == nil {
		return fmt.Errorf("fabric: nil endpoint")
	}
	if bytes < 0 {
		return fmt.Errorf("fabric: negative transfer size %d", bytes)
	}
	f.bytesMoved += bytes
	if src.ID == dst.ID {
		// Local: no NIC involved; memory copy at kernel memcpy speed
		// would be charged by the caller where relevant.
		return nil
	}
	if inj, ok := f.faults.Eval(faults.Point{
		Layer: faults.LayerFabric, Op: "transfer", Rank: -1, Now: p.Now(),
	}); ok {
		switch inj.Kind {
		case faults.KindDelay:
			p.Sleep(time.Duration(inj.Arg))
		case faults.KindPartition:
			return fmt.Errorf("fabric: %s transfer %s -> %s: %w",
				path, src.Name, dst.Name, &faults.Error{Inj: inj})
		}
	}
	p.Sleep(f.baseLatency(path, src, dst))
	if bytes == 0 {
		return nil
	}
	chunk := f.params.ChunkBytes
	if chunk <= 0 {
		chunk = bytes
	}
	// Acquire NICs in node-ID order to avoid deadlock between
	// opposite-direction flows.
	first, second := f.nics[src.ID], f.nics[dst.ID]
	if dst.ID < src.ID {
		first, second = second, first
	}
	for off := int64(0); off < bytes; off += chunk {
		n := chunk
		if off+n > bytes {
			n = bytes - off
		}
		first.Acquire(p)
		second.Acquire(p)
		p.Sleep(model.DurFor(n, f.params.NICBW))
		second.Release()
		first.Release()
	}
	return nil
}

// RoundTrip models a small control message exchange (request/response)
// between two nodes.
func (f *Fabric) RoundTrip(p *sim.Proc, path Path, src, dst *topology.Node) {
	if inj, ok := f.faults.Eval(faults.Point{
		Layer: faults.LayerFabric, Op: "roundtrip", Rank: -1, Now: p.Now(),
	}); ok && inj.Kind == faults.KindDelay {
		p.Sleep(time.Duration(inj.Arg))
	}
	lat := f.baseLatency(path, src, dst)
	p.Sleep(2 * lat)
}

// BytesMoved reports the total payload moved since creation.
func (f *Fabric) BytesMoved() int64 { return f.bytesMoved }
