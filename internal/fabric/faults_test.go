package fabric

import (
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/faults"
	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/sim"
)

func TestInjectedDelaySpikeSlowsTransfer(t *testing.T) {
	const spike = 3 * time.Millisecond
	elapsed := func(plan *faults.Plan) time.Duration {
		env, f, cl := build(t)
		f.InjectFaults(plan)
		src := cl.ComputeNodes()[0]
		dst := cl.StorageNodes()[0]
		env.Go("xfer", func(p *sim.Proc) {
			if err := f.Transfer(p, RDMA, src, dst, 64*model.MB); err != nil {
				t.Error(err)
			}
		})
		end, err := env.Run()
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	base := elapsed(nil)
	slow := elapsed(faults.NewPlan(2, faults.Rule{
		Layer: faults.LayerFabric, Op: "transfer", Nth: 1, Kind: faults.KindDelay, Arg: int64(spike),
	}))
	if got := slow - base; got != spike {
		t.Fatalf("delay spike added %v, want exactly %v", got, spike)
	}
}

func TestInjectedPartitionFailsTransfersInWindow(t *testing.T) {
	env, f, cl := build(t)
	// The link is down for a virtual-time window; transfers before and
	// after it succeed.
	f.InjectFaults(faults.NewPlan(3, faults.Rule{
		Name: "tor-outage", Layer: faults.LayerFabric, Op: "transfer",
		After: 1 * time.Millisecond, Until: 2 * time.Millisecond,
		Kind: faults.KindPartition,
	}))
	src := cl.ComputeNodes()[0]
	dst := cl.StorageNodes()[0]
	var errs []error
	env.Go("xfer", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			errs = append(errs, f.Transfer(p, RDMA, src, dst, 4096))
			p.SleepUntil(time.Duration(i+1) * time.Millisecond)
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil {
		t.Fatalf("transfer before the window failed: %v", errs[0])
	}
	if errs[1] == nil || !faults.IsInjected(errs[1]) {
		t.Fatalf("transfer inside the window: err = %v, want injected partition", errs[1])
	}
	if errs[2] != nil {
		t.Fatalf("transfer after the window failed: %v", errs[2])
	}
}
