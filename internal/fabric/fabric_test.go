package fabric

import (
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/topology"
)

func build(t *testing.T) (*sim.Env, *Fabric, *topology.Cluster) {
	t.Helper()
	cl, err := topology.New(topology.PaperTestbed())
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv()
	return env, New(env, cl, model.Default().Net), cl
}

func TestTransferTime(t *testing.T) {
	env, f, cl := build(t)
	src := cl.ComputeNodes()[0]
	dst := cl.StorageNodes()[0]
	bytes := int64(1 * model.GB)
	env.Go("xfer", func(p *sim.Proc) {
		if err := f.Transfer(p, RDMA, src, dst, bytes); err != nil {
			t.Error(err)
		}
	})
	end, err := env.Run()
	if err != nil {
		t.Fatal(err)
	}
	ideal := model.DurFor(bytes, f.Params().NICBW)
	if end < ideal {
		t.Errorf("transfer finished in %v, faster than NIC allows (%v)", end, ideal)
	}
	if end > ideal+time.Millisecond {
		t.Errorf("transfer took %v, want ~%v", end, ideal)
	}
}

func TestConcurrentFlowsShareDestinationNIC(t *testing.T) {
	env, f, cl := build(t)
	dst := cl.StorageNodes()[0]
	bytes := int64(512 * model.MB)
	srcs := cl.ComputeNodes()[:4]
	for _, src := range srcs {
		src := src
		env.Go("xfer", func(p *sim.Proc) {
			if err := f.Transfer(p, RDMA, src, dst, bytes); err != nil {
				t.Error(err)
			}
		})
	}
	end, err := env.Run()
	if err != nil {
		t.Fatal(err)
	}
	ideal := model.DurFor(4*bytes, f.Params().NICBW)
	if end < ideal {
		t.Errorf("4 flows finished in %v, faster than shared NIC allows (%v)", end, ideal)
	}
	if float64(end) > float64(ideal)*1.1 {
		t.Errorf("4 flows took %v, want ~%v", end, ideal)
	}
}

func TestFlowsToDistinctNodesRunInParallel(t *testing.T) {
	env, f, cl := build(t)
	bytes := int64(512 * model.MB)
	for i := 0; i < 4; i++ {
		src := cl.ComputeNodes()[i]
		dst := cl.StorageNodes()[i]
		env.Go("xfer", func(p *sim.Proc) {
			if err := f.Transfer(p, RDMA, src, dst, bytes); err != nil {
				t.Error(err)
			}
		})
	}
	end, err := env.Run()
	if err != nil {
		t.Fatal(err)
	}
	ideal := model.DurFor(bytes, f.Params().NICBW)
	if float64(end) > float64(ideal)*1.1 {
		t.Errorf("parallel flows took %v, want ~%v (no shared bottleneck)", end, ideal)
	}
}

func TestLoopbackIsFree(t *testing.T) {
	env, f, cl := build(t)
	n := cl.ComputeNodes()[0]
	env.Go("xfer", func(p *sim.Proc) {
		if err := f.Transfer(p, RDMA, n, n, model.GB); err != nil {
			t.Error(err)
		}
	})
	end, err := env.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 0 {
		t.Errorf("loopback transfer took %v, want 0", end)
	}
}

func TestTCPSlowerThanRDMA(t *testing.T) {
	lat := func(path Path) time.Duration {
		env, f, cl := build(t)
		src, dst := cl.ComputeNodes()[0], cl.StorageNodes()[0]
		env.Go("x", func(p *sim.Proc) { f.Transfer(p, path, src, dst, 4096) })
		end, err := env.Run()
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	if lat(TCP) <= lat(RDMA) {
		t.Error("TCP path should have higher base latency than RDMA")
	}
}

func TestHopCountAffectsLatency(t *testing.T) {
	env, f, cl := build(t)
	intra := cl.ComputeNodes()[1] // same rack as cn0
	cross := cl.StorageNodes()[0] // other rack
	src := cl.ComputeNodes()[0]
	var tIntra, tCross time.Duration
	env.Go("x", func(p *sim.Proc) {
		start := p.Now()
		f.Transfer(p, RDMA, src, intra, 0)
		tIntra = p.Now() - start
		start = p.Now()
		f.Transfer(p, RDMA, src, cross, 0)
		tCross = p.Now() - start
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if tCross <= tIntra {
		t.Errorf("cross-rack latency %v should exceed intra-rack %v", tCross, tIntra)
	}
}

func TestInvalidTransfers(t *testing.T) {
	env, f, cl := build(t)
	n := cl.ComputeNodes()[0]
	env.Go("x", func(p *sim.Proc) {
		if err := f.Transfer(p, RDMA, nil, n, 10); err == nil {
			t.Error("nil src accepted")
		}
		if err := f.Transfer(p, RDMA, n, n, -1); err == nil {
			t.Error("negative size accepted")
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOppositeFlowsNoDeadlock(t *testing.T) {
	env, f, cl := build(t)
	a := cl.ComputeNodes()[0]
	b := cl.StorageNodes()[0]
	env.Go("ab", func(p *sim.Proc) { f.Transfer(p, RDMA, a, b, 64*model.MB) })
	env.Go("ba", func(p *sim.Proc) { f.Transfer(p, RDMA, b, a, 64*model.MB) })
	if _, err := env.Run(); err != nil {
		t.Fatalf("opposite flows deadlocked: %v", err)
	}
}

func TestBytesMovedAccounting(t *testing.T) {
	env, f, cl := build(t)
	src, dst := cl.ComputeNodes()[0], cl.StorageNodes()[0]
	env.Go("x", func(p *sim.Proc) { f.Transfer(p, RDMA, src, dst, 12345) })
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if f.BytesMoved() != 12345 {
		t.Errorf("BytesMoved = %d, want 12345", f.BytesMoved())
	}
}
