package balancer

import (
	"math/rand"
	"testing"
)

func TestStripeSpansGeometry(t *testing.T) {
	g := StripeGeometry{Targets: 3, Unit: 8}
	// 20 bytes starting mid-unit at 4: unit 0 tail (4 bytes on target
	// 0), unit 1 (8 on target 1), unit 2 (8 on target 2).
	spans := g.Spans(4, 20)
	want := []StripeSpan{
		{Target: 0, TargetOff: 4, Off: 4, Length: 4},
		{Target: 1, TargetOff: 0, Off: 8, Length: 8},
		{Target: 2, TargetOff: 0, Off: 16, Length: 8},
	}
	if len(spans) != len(want) {
		t.Fatalf("Spans = %+v, want %+v", spans, want)
	}
	for i := range want {
		if spans[i] != want[i] {
			t.Errorf("span %d = %+v, want %+v", i, spans[i], want[i])
		}
	}
}

func TestStripeSpansSingleTargetCoalesces(t *testing.T) {
	// Width 1 degenerates to the identity mapping, and the adjacent
	// spans coalesce into one.
	g := StripeGeometry{Targets: 1, Unit: 8}
	spans := g.Spans(3, 100)
	if len(spans) != 1 {
		t.Fatalf("width-1 Spans = %+v, want one span", spans)
	}
	if s := spans[0]; s.Target != 0 || s.TargetOff != 3 || s.Length != 100 {
		t.Errorf("width-1 span = %+v", s)
	}
}

// TestStripeSpansCoverExactly is the geometry's core invariant: for
// random geometries and ranges, the spans tile [off, off+length)
// exactly once, never overlap on a target, and respect the round-robin
// block mapping.
func TestStripeSpansCoverExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 2000; iter++ {
		g := StripeGeometry{Targets: 1 + rng.Intn(5), Unit: int64(1 + rng.Intn(64))}
		off := int64(rng.Intn(512))
		length := int64(1 + rng.Intn(512))
		spans := g.Spans(off, length)

		cur := off
		covered := int64(0)
		for _, s := range spans {
			if s.Off != cur {
				t.Fatalf("geo=%+v [%d,+%d): span %+v starts at %d, want %d", g, off, length, s, s.Off, cur)
			}
			if s.Length <= 0 || s.Target < 0 || s.Target >= g.Targets {
				t.Fatalf("geo=%+v: degenerate span %+v", g, s)
			}
			// Every byte of the span must obey the block mapping.
			for b := int64(0); b < s.Length; b += g.Unit {
				stripeNo := (s.Off + b) / g.Unit
				if want := int(stripeNo % int64(g.Targets)); want != s.Target {
					t.Fatalf("geo=%+v: span %+v holds stripe %d of target %d", g, s, stripeNo, want)
				}
				wantOff := (stripeNo/int64(g.Targets))*g.Unit + (s.Off+b)%g.Unit
				if got := s.TargetOff + b; got != wantOff {
					t.Fatalf("geo=%+v: span %+v maps byte %d to %d, want %d", g, s, s.Off+b, got, wantOff)
				}
			}
			cur += s.Length
			covered += s.Length
		}
		if covered != length {
			t.Fatalf("geo=%+v [%d,+%d): spans cover %d bytes", g, off, length, covered)
		}
	}
}

func TestStripeUsableSize(t *testing.T) {
	g := StripeGeometry{Targets: 4, Unit: 8}
	if got := g.UsableSize(20); got != 4*16 {
		t.Errorf("UsableSize(20) = %d, want %d (two whole units per target)", got, 4*16)
	}
	if got := g.UsableSize(7); got != 0 {
		t.Errorf("UsableSize(7) = %d, want 0", got)
	}
}

func TestStripeValidate(t *testing.T) {
	if err := (StripeGeometry{Targets: 0, Unit: 8}).Validate(); err == nil {
		t.Error("zero-width geometry accepted")
	}
	if err := (StripeGeometry{Targets: 2, Unit: 0}).Validate(); err == nil {
		t.Error("zero-unit geometry accepted")
	}
	if err := (StripeGeometry{Targets: 2, Unit: 4096}).Validate(); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
	if err := (StripeGeometry{Targets: 3, Unit: 8, Replicas: 2}).Validate(); err == nil {
		t.Error("3 targets in 2-way mirror groups accepted")
	}
	if err := (StripeGeometry{Targets: 2, Unit: 8, Replicas: -1}).Validate(); err == nil {
		t.Error("negative replica count accepted")
	}
	if err := (StripeGeometry{Targets: 6, Unit: 8, Replicas: 3}).Validate(); err != nil {
		t.Errorf("valid mirrored geometry rejected: %v", err)
	}
}

// TestStripeMirrorGroups pins the mirrored layout: members of a group
// are adjacent target indices, the address space stripes over groups,
// and mirrored copies contribute capacity once.
func TestStripeMirrorGroups(t *testing.T) {
	g := StripeGeometry{Targets: 6, Unit: 8, Replicas: 2}
	if got := g.Groups(); got != 3 {
		t.Fatalf("Groups = %d, want 3", got)
	}
	if got := g.Member(1, 0); got != 2 {
		t.Errorf("Member(1,0) = %d, want 2", got)
	}
	if got := g.Member(2, 1); got != 5 {
		t.Errorf("Member(2,1) = %d, want 5", got)
	}
	for target := 0; target < g.Targets; target++ {
		if got, want := g.GroupOf(target), target/2; got != want {
			t.Errorf("GroupOf(%d) = %d, want %d", target, got, want)
		}
	}
	// Capacity: 3 groups x 2 whole units of a 20-byte child.
	if got := g.UsableSize(20); got != 3*16 {
		t.Errorf("UsableSize(20) = %d, want %d", got, 3*16)
	}
	// Span math over the mirrored geometry equals span math over its
	// logical (group-level RAID-0) geometry, with Target meaning group.
	logical := g.Logical()
	if logical.Targets != 3 || logical.Unit != 8 || logical.Replicas != 0 {
		t.Fatalf("Logical = %+v", logical)
	}
	a := g.Spans(4, 100)
	b := logical.Spans(4, 100)
	if len(a) != len(b) {
		t.Fatalf("mirrored spans %+v diverge from logical %+v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("span %d: mirrored %+v, logical %+v", i, a[i], b[i])
		}
	}
	// Unreplicated fields keep their old meaning: one group per target.
	flat := StripeGeometry{Targets: 4, Unit: 8}
	if flat.Groups() != 4 || flat.Member(3, 0) != 3 || flat.GroupOf(2) != 2 {
		t.Errorf("unreplicated geometry group helpers broken: %+v", flat)
	}
}
