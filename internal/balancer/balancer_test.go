package balancer

import (
	"testing"
	"testing/quick"

	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/nvme"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/topology"
)

func inventory(t *testing.T) (*topology.Cluster, []StorageDevice, *sim.Env) {
	t.Helper()
	cl, err := topology.New(topology.PaperTestbed())
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv()
	params := model.Default().SSD
	var devs []StorageDevice
	for _, sn := range cl.StorageNodes() {
		for i := 0; i < sn.SSDs; i++ {
			devs = append(devs, StorageDevice{Node: sn, Device: nvme.New(env, sn.Name, params, false)})
		}
	}
	return cl, devs, env
}

func rankNodes(cl *topology.Cluster, procs int) []*topology.Node {
	var out []*topology.Node
	for _, n := range cl.ComputeNodes() {
		for c := 0; c < n.Cores && len(out) < procs; c++ {
			out = append(out, n)
		}
	}
	return out
}

func TestRecommendSSDs(t *testing.T) {
	cases := []struct{ procs, want int }{
		{0, 1}, {1, 1}, {56, 1}, {57, 2}, {448, 8}, {112, 2},
	}
	for _, c := range cases {
		if got := RecommendSSDs(c.procs); got != c.want {
			t.Errorf("RecommendSSDs(%d) = %d, want %d", c.procs, got, c.want)
		}
	}
}

func TestAllocationRoundRobin(t *testing.T) {
	cl, devs, _ := inventory(t)
	b, err := New(cl, devs)
	if err != nil {
		t.Fatal(err)
	}
	ranks := rankNodes(cl, 448)
	alloc, err := b.AllocateSSDs(ranks, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.SSDs) != 8 {
		t.Fatalf("allocated %d SSDs, want 8", len(alloc.SSDs))
	}
	// Perfect balance: 448/8 = 56 ranks per SSD.
	for i, n := range alloc.RanksPerSSD() {
		if n != 56 {
			t.Errorf("SSD %d serves %d ranks, want 56", i, n)
		}
	}
}

func TestFaultIsolation(t *testing.T) {
	cl, devs, _ := inventory(t)
	b, _ := New(cl, devs)
	ranks := rankNodes(cl, 448)
	alloc, err := b.AllocateSSDs(ranks, 8)
	if err != nil {
		t.Fatal(err)
	}
	for rank, node := range ranks {
		ssd := alloc.SSDFor(rank)
		if !cl.SeparateDomains(node, ssd.Node) {
			t.Fatalf("rank %d on %s assigned SSD in same failure domain (%s)",
				rank, node.Name, ssd.Node.Name)
		}
	}
}

func TestAllocationValidation(t *testing.T) {
	cl, devs, _ := inventory(t)
	b, _ := New(cl, devs)
	if _, err := b.AllocateSSDs(nil, 4); err == nil {
		t.Error("empty job accepted")
	}
	if _, err := b.AllocateSSDs(rankNodes(cl, 10), 99); err == nil {
		t.Error("over-inventory request accepted")
	}
	// want <= 0 falls back to the recommendation.
	alloc, err := b.AllocateSSDs(rankNodes(cl, 448), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.SSDs) != 8 {
		t.Errorf("default allocation = %d SSDs, want 8", len(alloc.SSDs))
	}
}

func TestNewValidation(t *testing.T) {
	cl, devs, _ := inventory(t)
	if _, err := New(cl, nil); err == nil {
		t.Error("empty inventory accepted")
	}
	bad := append([]StorageDevice(nil), devs...)
	bad[0].Node = cl.ComputeNodes()[0]
	if _, err := New(cl, bad); err == nil {
		t.Error("device on compute node accepted")
	}
}

func TestPartitionNamespace(t *testing.T) {
	_, devs, _ := inventory(t)
	ns, err := devs[0].Device.CreateNamespace(64 * model.MB)
	if err != nil {
		t.Fatal(err)
	}
	const ranks = 7
	align := int64(32 * model.KB)
	var prevEnd int64
	for idx := 0; idx < ranks; idx++ {
		part, err := PartitionNamespace(ns, ranks, idx, align)
		if err != nil {
			t.Fatal(err)
		}
		if part.Base%align != 0 || part.Size%align != 0 {
			t.Errorf("partition %d not aligned: base=%d size=%d", idx, part.Base, part.Size)
		}
		if idx > 0 && part.Base != prevEnd {
			t.Errorf("partition %d base %d does not abut previous end %d", idx, part.Base, prevEnd)
		}
		prevEnd = part.Base + part.Size
	}
	if prevEnd > ns.Size() {
		t.Errorf("partitions overflow namespace: %d > %d", prevEnd, ns.Size())
	}
	if _, err := PartitionNamespace(ns, 0, 0, align); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := PartitionNamespace(ns, 4, 4, align); err == nil {
		t.Error("out-of-range index accepted")
	}
}

// Property: any job size and SSD count that fits the inventory yields a
// mapping where per-SSD rank counts differ by at most one (round-robin
// balance) and every rank has an SSD.
func TestPropertyBalancedMapping(t *testing.T) {
	cl, devs, _ := inventory(t)
	b, _ := New(cl, devs)
	f := func(procsRaw, ssdRaw uint8) bool {
		procs := int(procsRaw%200) + 1
		want := int(ssdRaw%8) + 1
		alloc, err := b.AllocateSSDs(rankNodes(cl, procs), want)
		if err != nil {
			return false
		}
		counts := alloc.RanksPerSSD()
		min, max := counts[0], counts[0]
		total := 0
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
			total += c
		}
		return total == procs && max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
