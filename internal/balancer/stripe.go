package balancer

import "fmt"

// StripeGeometry is the layout of one rank's partition across N
// targets. With Replicas <= 1 it is plain RAID-0: unit-sized blocks
// rotate round-robin, so block k of the striped address space lives on
// target k%N at block k/N of that target's segment. With Replicas = R
// it is RAID-10-shaped: the N targets form N/R mirror groups of R
// members each, the address space stripes round-robin over the GROUPS,
// and every member of a group carries an identical copy of its group's
// units. It extends the balancer's placement model — ranks map to SSDs
// round-robin (AllocateSSDs), and with striping a single rank's
// partition itself spreads round-robin across several of them, the
// paper's aggregate-bandwidth shape (§IV): one rank drives N devices
// concurrently instead of queueing behind one. Mirroring buys the
// availability the ROADMAP's millions-of-users deployment needs: any
// R-1 members of a group can die without losing a byte.
type StripeGeometry struct {
	// Targets is the total member count N (>= 1), replicas included.
	Targets int
	// Unit is the stripe unit in bytes (> 0): the run of contiguous
	// bytes placed on one group before rotating to the next.
	Unit int64
	// Replicas is the mirror width R: every stripe unit is stored on R
	// distinct targets. 0 and 1 both mean unreplicated RAID-0. Targets
	// must be a whole number of R-member groups.
	Replicas int
}

// Validate rejects degenerate geometries.
func (g StripeGeometry) Validate() error {
	if g.Targets < 1 {
		return fmt.Errorf("balancer: stripe width %d", g.Targets)
	}
	if g.Unit <= 0 {
		return fmt.Errorf("balancer: stripe unit %d", g.Unit)
	}
	if g.Replicas < 0 {
		return fmt.Errorf("balancer: stripe replicas %d", g.Replicas)
	}
	if r := g.replicas(); g.Targets%r != 0 {
		return fmt.Errorf("balancer: %d targets do not form whole %d-way mirror groups", g.Targets, r)
	}
	return nil
}

// replicas normalizes the mirror width: 0 means unreplicated.
func (g StripeGeometry) replicas() int {
	if g.Replicas < 1 {
		return 1
	}
	return g.Replicas
}

// Groups returns the number of mirror groups (the RAID-0 width the
// address space actually stripes over). Unreplicated geometry has one
// group per target.
func (g StripeGeometry) Groups() int { return g.Targets / g.replicas() }

// Member returns the target index of one replica of a group: members
// of group i are the Replicas consecutive targets starting at
// i*Replicas. Keeping members adjacent keeps target indices stable
// when a replica is swapped out — the group map never reshuffles.
func (g StripeGeometry) Member(group, replica int) int {
	return group*g.replicas() + replica
}

// GroupOf returns the mirror group a target belongs to.
func (g StripeGeometry) GroupOf(target int) int { return target / g.replicas() }

// Logical returns the unreplicated geometry the address-space math runs
// over: one "target" per mirror group. Span decomposition of a
// mirrored geometry is span decomposition of its logical geometry with
// Span.Target meaning GROUP.
func (g StripeGeometry) Logical() StripeGeometry {
	return StripeGeometry{Targets: g.Groups(), Unit: g.Unit}
}

// UsableSize returns the striped address-space size carried by targets
// whose smallest segment is childSize bytes: each group contributes
// whole units only (the tail remainder of every segment is unused),
// and mirrored copies contribute capacity once.
func (g StripeGeometry) UsableSize(childSize int64) int64 {
	if childSize < 0 {
		return 0
	}
	return int64(g.Groups()) * (childSize / g.Unit) * g.Unit
}

// StripeSpan is one contiguous run of a striped request on one target
// (one GROUP for mirrored geometry — every member of the group stores
// the same bytes at the same member-local offset): bytes
// [Off, Off+Length) of the striped address space live at
// [TargetOff, TargetOff+Length) on target/group Target. A span never
// crosses a unit boundary before coalescing.
type StripeSpan struct {
	Target    int
	TargetOff int64
	Off       int64
	Length    int64
}

// Spans decomposes the striped byte range [off, off+length) into
// per-group spans, in striped-address order. Spans on the same group
// whose member offsets are adjacent are coalesced (a request larger
// than Groups*Unit revisits each group with contiguous runs). For
// mirrored geometry Span.Target is the GROUP index; resolve members
// with Member.
func (g StripeGeometry) Spans(off, length int64) []StripeSpan {
	if length <= 0 {
		return nil
	}
	groups := int64(g.Groups())
	out := make([]StripeSpan, 0, (length+g.Unit-1)/g.Unit+1)
	for cur := off; cur < off+length; {
		stripeNo := cur / g.Unit
		in := cur % g.Unit
		n := g.Unit - in
		if rest := off + length - cur; n > rest {
			n = rest
		}
		s := StripeSpan{
			Target:    int(stripeNo % groups),
			TargetOff: (stripeNo/groups)*g.Unit + in,
			Off:       cur,
			Length:    n,
		}
		if last := len(out) - 1; last >= 0 &&
			out[last].Target == s.Target &&
			out[last].TargetOff+out[last].Length == s.TargetOff {
			out[last].Length += s.Length
		} else {
			out = append(out, s)
		}
		cur += n
	}
	return out
}
