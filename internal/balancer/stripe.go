package balancer

import "fmt"

// StripeGeometry is a RAID-0 layout of one rank's partition across N
// targets: unit-sized blocks rotate round-robin, so block k of the
// striped address space lives on target k%N at block k/N of that
// target's segment. It extends the balancer's placement model — ranks
// map to SSDs round-robin (AllocateSSDs), and with striping a single
// rank's partition itself spreads round-robin across several of them,
// the paper's aggregate-bandwidth shape (§IV): one rank drives N
// devices concurrently instead of queueing behind one.
type StripeGeometry struct {
	// Targets is the stripe width N (>= 1).
	Targets int
	// Unit is the stripe unit in bytes (> 0): the run of contiguous
	// bytes placed on one target before rotating to the next.
	Unit int64
}

// Validate rejects degenerate geometries.
func (g StripeGeometry) Validate() error {
	if g.Targets < 1 {
		return fmt.Errorf("balancer: stripe width %d", g.Targets)
	}
	if g.Unit <= 0 {
		return fmt.Errorf("balancer: stripe unit %d", g.Unit)
	}
	return nil
}

// UsableSize returns the striped address-space size carried by targets
// whose smallest segment is childSize bytes: each target contributes
// whole units only, so the tail remainder of every segment is unused.
func (g StripeGeometry) UsableSize(childSize int64) int64 {
	if childSize < 0 {
		return 0
	}
	return int64(g.Targets) * (childSize / g.Unit) * g.Unit
}

// StripeSpan is one contiguous run of a striped request on one target:
// bytes [Off, Off+Length) of the striped address space live at
// [TargetOff, TargetOff+Length) on target Target. A span never crosses
// a unit boundary.
type StripeSpan struct {
	Target    int
	TargetOff int64
	Off       int64
	Length    int64
}

// Spans decomposes the striped byte range [off, off+length) into
// per-target spans, in striped-address order. Spans on the same target
// whose target offsets are adjacent are coalesced (a request larger
// than Targets*Unit revisits each target with contiguous runs).
func (g StripeGeometry) Spans(off, length int64) []StripeSpan {
	if length <= 0 {
		return nil
	}
	out := make([]StripeSpan, 0, (length+g.Unit-1)/g.Unit+1)
	for cur := off; cur < off+length; {
		stripeNo := cur / g.Unit
		in := cur % g.Unit
		n := g.Unit - in
		if rest := off + length - cur; n > rest {
			n = rest
		}
		s := StripeSpan{
			Target:    int(stripeNo % int64(g.Targets)),
			TargetOff: (stripeNo/int64(g.Targets))*g.Unit + in,
			Off:       cur,
			Length:    n,
		}
		if last := len(out) - 1; last >= 0 &&
			out[last].Target == s.Target &&
			out[last].TargetOff+out[last].Length == s.TargetOff {
			out[last].Length += s.Length
		} else {
			out = append(out, s)
		}
		cur += n
	}
	return out
}
