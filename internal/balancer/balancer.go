// Package balancer implements NVMe-CR's load-aware storage balancer
// (paper §III-F): it allocates SSDs for a job from partner failure
// domains (topology-aware, fault-isolated from the compute nodes),
// assigns processes to SSDs round-robin for perfect load balance, and
// carves each SSD namespace into contiguous per-process segments.
package balancer

import (
	"fmt"
	"sort"

	"github.com/nvme-cr/nvmecr/internal/nvme"
	"github.com/nvme-cr/nvmecr/internal/telemetry"
	"github.com/nvme-cr/nvmecr/internal/topology"
)

// StorageDevice pairs an SSD with its hosting storage node.
type StorageDevice struct {
	Node   *topology.Node
	Device *nvme.Device
}

// Balancer holds the cluster inventory.
type Balancer struct {
	cluster *topology.Cluster
	devices []StorageDevice
}

// New builds a balancer over the cluster's storage inventory.
func New(cluster *topology.Cluster, devices []StorageDevice) (*Balancer, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("balancer: no storage devices")
	}
	for _, d := range devices {
		if d.Node == nil || d.Device == nil {
			return nil, fmt.Errorf("balancer: device entry with nil node or device")
		}
		if d.Node.Kind != topology.Storage {
			return nil, fmt.Errorf("balancer: device on non-storage node %s", d.Node.Name)
		}
	}
	return &Balancer{cluster: cluster, devices: devices}, nil
}

// RecommendSSDs returns the SSD count for a job of the given size,
// keeping the process:SSD ratio within the paper's 56-112 sweet spot
// (measured to saturate NVMe SSD bandwidth).
func RecommendSSDs(procs int) int {
	if procs <= 0 {
		return 1
	}
	n := (procs + 55) / 56
	if n < 1 {
		n = 1
	}
	return n
}

// Allocation is the result of AllocateSSDs: the chosen devices plus the
// static process-to-SSD mapping.
type Allocation struct {
	SSDs []StorageDevice
	// RankSSD[rank] is the index into SSDs serving that rank.
	RankSSD []int
}

// SSDFor returns the device serving a rank.
func (a *Allocation) SSDFor(rank int) StorageDevice { return a.SSDs[a.RankSSD[rank]] }

// RanksPerSSD returns, for each SSD, the number of ranks mapped to it.
func (a *Allocation) RanksPerSSD() []int {
	out := make([]int, len(a.SSDs))
	for _, s := range a.RankSSD {
		out[s]++
	}
	return out
}

// Instrument publishes the allocation into reg: a ranks-per-SSD gauge
// per chosen device (the balance the round-robin mapping achieves), and
// each device's own queue-depth and throughput instruments.
func (a *Allocation) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	for i, n := range a.RanksPerSSD() {
		sd := a.SSDs[i]
		reg.Gauge("nvmecr_balancer_ranks_per_ssd", telemetry.Labels{"device": sd.Device.Name}).Set(int64(n))
		sd.Device.Instrument(reg)
	}
}

// AllocateSSDs chooses `want` SSDs for a job whose ranks run on
// rankNodes (rank -> compute node), then maps ranks to SSDs round-robin.
//
// Device selection is greedy by communication cost: candidate SSDs are
// considered in order of (partner-domain hop distance from the job's
// compute domains, storage node ID), and devices whose failure domain
// overlaps any compute domain are used only as a last resort.
func (b *Balancer) AllocateSSDs(rankNodes []*topology.Node, want int) (*Allocation, error) {
	if len(rankNodes) == 0 {
		return nil, fmt.Errorf("balancer: job has no ranks")
	}
	if want <= 0 {
		want = RecommendSSDs(len(rankNodes))
	}
	if want > len(b.devices) {
		return nil, fmt.Errorf("balancer: job wants %d SSDs, inventory has %d", want, len(b.devices))
	}
	// Compute the set of compute failure domains for the job.
	computeDomains := map[int]bool{}
	for _, n := range rankNodes {
		computeDomains[n.FailureDomain()] = true
	}
	// Partner-domain preference: union of each compute domain's
	// partner list, keeping the minimum position (closest first).
	pref := map[int]int{}
	for d := range computeDomains {
		for pos, partner := range b.cluster.PartnerDomains(d) {
			if cur, ok := pref[partner]; !ok || pos < cur {
				pref[partner] = pos
			}
		}
	}
	type candidate struct {
		dev      StorageDevice
		priority int // lower is better
		overlap  bool
	}
	cands := make([]candidate, 0, len(b.devices))
	for _, d := range b.devices {
		dom := d.Node.FailureDomain()
		c := candidate{dev: d}
		if computeDomains[dom] {
			// Same failure domain as the application: checkpoint data
			// would die with the process. Last resort only.
			c.overlap = true
			c.priority = 1 << 20
		} else if pos, ok := pref[dom]; ok {
			c.priority = pos
		} else {
			c.priority = 1 << 10
		}
		cands = append(cands, c)
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].priority != cands[j].priority {
			return cands[i].priority < cands[j].priority
		}
		return cands[i].dev.Node.ID < cands[j].dev.Node.ID
	})
	chosen := make([]StorageDevice, want)
	for i := 0; i < want; i++ {
		chosen[i] = cands[i].dev
	}
	alloc := &Allocation{SSDs: chosen, RankSSD: make([]int, len(rankNodes))}
	for rank := range rankNodes {
		alloc.RankSSD[rank] = rank % want
	}
	return alloc, nil
}

// Partition describes one rank's contiguous segment of an SSD namespace.
type Partition struct {
	Namespace *nvme.Namespace
	Base      int64
	Size      int64
}

// PartitionNamespace divides a namespace between `ranks` processes,
// giving the process with communicator rank `idx` its contiguous
// segment. Segments are hugeblock-aligned to keep block math exact.
func PartitionNamespace(ns *nvme.Namespace, ranks, idx int, align int64) (Partition, error) {
	if ranks <= 0 || idx < 0 || idx >= ranks {
		return Partition{}, fmt.Errorf("balancer: partition index %d of %d", idx, ranks)
	}
	if align <= 0 {
		align = 1
	}
	per := ns.Size() / int64(ranks)
	per = per / align * align
	if per <= 0 {
		return Partition{}, fmt.Errorf("balancer: namespace of %d bytes too small for %d ranks", ns.Size(), ranks)
	}
	return Partition{Namespace: ns, Base: int64(idx) * per, Size: per}, nil
}
