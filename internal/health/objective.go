package health

// Objective is one rolling-window SLO: a budget on the fraction of bad
// events, judged by multi-window burn rate. Burn rate is the observed
// bad fraction divided by the budget — burn 1 means the budget is
// being consumed exactly as provisioned, burn 2 means twice as fast.
// An objective presses on the subject's score only when BOTH the fast
// and the slow window burn (the standard multi-window guard: a single
// bad tick moves only the fast window, stale history only the slow
// one).
type Objective struct {
	// Name labels the objective in verdicts and metric series.
	Name string
	// Budget is the allowed bad-event fraction (e.g. 0.001 = 99.9%).
	Budget float64
	// FastTicks and SlowTicks are the two window lengths, in engine
	// ticks (defaults 5 and 30).
	FastTicks int
	SlowTicks int
	// BreachBurn is the burn rate at which the objective is breached
	// and black-box capture triggers (default 2).
	BreachBurn float64
	// ExhaustBurn is the burn rate mapping to score 0 (default 10);
	// between 0 and ExhaustBurn the score degrades linearly.
	ExhaustBurn float64
	// LatencyThreshold marks a latency objective for the stock
	// bindings: when > 0, "bad" means slower than this many seconds
	// (bucket granularity — pick thresholds on histogram bounds).
	// Pure error-ratio objectives leave it 0.
	LatencyThreshold float64
}

func (o Objective) withDefaults() Objective {
	if o.Budget <= 0 {
		o.Budget = 0.01
	}
	if o.FastTicks <= 0 {
		o.FastTicks = 5
	}
	if o.SlowTicks <= 0 {
		o.SlowTicks = 30
	}
	if o.SlowTicks < o.FastTicks {
		o.SlowTicks = o.FastTicks
	}
	if o.BreachBurn <= 0 {
		o.BreachBurn = 2
	}
	if o.ExhaustBurn <= 0 {
		o.ExhaustBurn = 10
	}
	return o
}

// ErrorRatioObjective builds an SLO over a cumulative (total, bad)
// counter pair: at most budget of events may fail.
func ErrorRatioObjective(name string, budget float64) Objective {
	return Objective{Name: name, Budget: budget}.withDefaults()
}

// LatencyObjective builds an SLO over a latency histogram: at most
// budget of events may be slower than threshold seconds.
func LatencyObjective(name string, threshold, budget float64) Objective {
	return Objective{Name: name, Budget: budget, LatencyThreshold: threshold}.withDefaults()
}

// objectiveState tracks one objective's per-tick deltas in a ring
// sized to the slow window.
type objectiveState struct {
	obj      Objective
	deltas   []SeriesPoint // per-tick (total, bad) deltas, ring
	next     int           // ring write position
	filled   int           // entries populated (≤ len)
	last     SeriesPoint   // previous cumulative sample
	seen     bool          // first sample only baselines
	breached bool          // edge detection for capture
}

func (s *objectiveState) init(o *Objective) {
	s.obj = *o
	s.deltas = make([]SeriesPoint, o.SlowTicks)
}

// update differences the cumulative sample into the ring. Counter
// resets (total moving backward, e.g. a reconnected registry) re-
// baseline instead of recording a giant negative delta.
func (s *objectiveState) update(pt SeriesPoint) {
	if !s.seen || pt.Total < s.last.Total || pt.Bad < s.last.Bad {
		s.last, s.seen = pt, true
		s.deltas[s.next] = SeriesPoint{}
		s.advance()
		return
	}
	s.deltas[s.next] = SeriesPoint{Total: pt.Total - s.last.Total, Bad: pt.Bad - s.last.Bad}
	s.last = pt
	s.advance()
}

func (s *objectiveState) advance() {
	s.next = (s.next + 1) % len(s.deltas)
	if s.filled < len(s.deltas) {
		s.filled++
	}
}

// window sums the most recent n deltas.
func (s *objectiveState) window(n int) (total, bad uint64) {
	if n > s.filled {
		n = s.filled
	}
	for i := 1; i <= n; i++ {
		d := s.deltas[(s.next-i+len(s.deltas))%len(s.deltas)]
		total += d.Total
		bad += d.Bad
	}
	return total, bad
}

// burns returns the fast- and slow-window burn rates. An empty window
// (no traffic) burns 0: silence is not failure — liveness is judged by
// Sample.Live, not by the objectives.
func (s *objectiveState) burns() (fast, slow float64) {
	return s.burn(s.obj.FastTicks), s.burn(s.obj.SlowTicks)
}

func (s *objectiveState) burn(n int) float64 {
	total, bad := s.window(n)
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / s.obj.Budget
}
