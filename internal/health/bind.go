package health

import (
	"fmt"
	"strconv"
	"time"

	"github.com/nvme-cr/nvmecr/internal/nvmeof"
	"github.com/nvme-cr/nvmecr/internal/telemetry"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

// DefaultQPObjectives are the stock SLOs for an initiator queue pair:
// at most 2% of commands may fail, and at most 5% may be slower than
// 5ms (both judged by multi-window burn rate).
func DefaultQPObjectives() []Objective {
	return []Objective{
		ErrorRatioObjective("qp-error-ratio", 0.02),
		LatencyObjective("qp-p99-latency", 5e-3, 0.05),
	}
}

// DefaultTargetObjectives are the stock SLOs for a target: command
// error ratio under 2%.
func DefaultTargetObjectives() []Objective {
	return []Objective{ErrorRatioObjective("target-error-ratio", 0.02)}
}

// DefaultMountObjectives are the stock per-tenant SLOs for a mount:
// at most 5% of namespace operations may fail (quota rejections
// included — a tenant pinned at quota is an unhealthy tenant).
func DefaultMountObjectives() []Objective {
	return []Objective{ErrorRatioObjective("mount-error-ratio", 0.05)}
}

// PoolBindConfig tunes BindHostPool.
type PoolBindConfig struct {
	// Target names the pool in subject names: "<target>/qp<i>"
	// (default "pool").
	Target string
	// Objectives are applied to every queue pair (nil =
	// DefaultQPObjectives).
	Objectives []Objective
	// ProbeBudget bounds the active IDENTIFY probe's latency; a probe
	// that answers slower than this counts as failed (default 50ms, so
	// a stalled-but-connected pair cannot talk its way out of a
	// suspect verdict).
	ProbeBudget time.Duration
	// OnTransition, when non-nil, runs after the built-in bias wiring
	// on every queue-pair transition.
	OnTransition func(qp int, old, new State)
}

// BindHostPool registers one subject per queue pair and wires verdicts
// back into placement: Healthy clears the bias, Degraded sets
// BiasSoft, Suspect and Dead set BiasAvoid, so traffic shifts off a
// sick pair while probes keep deciding its fate. The subjects collect
// from the pool's own nvmecr_qp_* series, so the engine must snapshot
// the same registry the pool records into (pass pool.Telemetry() as
// Config.Registry, or share one registry throughout).
func BindHostPool(e *Engine, p *nvmeof.HostPool, cfg PoolBindConfig) ([]*Subject, error) {
	if cfg.Target == "" {
		cfg.Target = "pool"
	}
	if cfg.Objectives == nil {
		cfg.Objectives = DefaultQPObjectives()
	}
	if cfg.ProbeBudget <= 0 {
		cfg.ProbeBudget = 50 * time.Millisecond
	}
	subs := make([]*Subject, 0, p.QueuePairs())
	for qp := 0; qp < p.QueuePairs(); qp++ {
		qp := qp
		labels := telemetry.Labels{"qp": strconv.Itoa(qp)}
		objectives := append([]Objective(nil), cfg.Objectives...)
		series := make([]SeriesPoint, len(objectives)) // reused per tick
		collect := func(snap *telemetry.RegistrySnapshot) Sample {
			cmds := snap.Counter(nvmeof.MetricQPCommands, labels)
			errs := snap.Counter(nvmeof.MetricQPErrors, labels)
			hist := snap.Find(nvmeof.MetricQPLatency, labels)
			for i, o := range objectives {
				if o.LatencyThreshold > 0 {
					var n, good uint64
					if hist != nil {
						n = hist.U
						good = hist.CountAtOrBelow(o.LatencyThreshold)
					}
					series[i] = SeriesPoint{Total: n, Bad: n - good}
				} else {
					series[i] = SeriesPoint{Total: cmds, Bad: errs}
				}
			}
			var p99 float64
			if hist != nil {
				p99 = hist.Quantile(0.99)
			}
			return Sample{
				Series:   series,
				Commands: cmds,
				Errors:   errs,
				Latency:  p99,
				Live:     p.QPHealthy(qp),
			}
		}
		s, err := e.Register(SubjectConfig{
			Kind:       "qp",
			Name:       fmt.Sprintf("%s/qp%d", cfg.Target, qp),
			Objectives: objectives,
			Collect:    collect,
			Probe: func() error {
				start := time.Now()
				if err := p.ProbeQP(qp); err != nil {
					return err
				}
				if d := time.Since(start); d > cfg.ProbeBudget {
					return fmt.Errorf("health: probe qp %d: %v exceeds budget %v", qp, d, cfg.ProbeBudget)
				}
				return nil
			},
			OnTransition: func(old, new State, v Verdict) {
				switch new {
				case Healthy:
					p.SetQPBias(qp, nvmeof.BiasNone)
				case Degraded:
					p.SetQPBias(qp, nvmeof.BiasSoft)
				default:
					p.SetQPBias(qp, nvmeof.BiasAvoid)
				}
				if cfg.OnTransition != nil {
					cfg.OnTransition(qp, old, new)
				}
			},
			Blackbox: func() any { return p.Flight().Snapshot() },
		})
		if err != nil {
			return nil, err
		}
		subs = append(subs, s)
	}
	return subs, nil
}

// BindTarget registers a target-side subject under kind "target". It
// collects from the target's own snapshot (not the engine's registry),
// so any registry arrangement works.
func BindTarget(e *Engine, tgt *nvmeof.Target, name string, objectives []Objective) (*Subject, error) {
	if objectives == nil {
		objectives = DefaultTargetObjectives()
	}
	series := make([]SeriesPoint, len(objectives))
	sub, err := e.Register(SubjectConfig{
		Kind:       "target",
		Name:       name,
		Objectives: objectives,
		Collect: func(*telemetry.RegistrySnapshot) Sample {
			snap := tgt.Snapshot()
			for i := range objectives {
				series[i] = SeriesPoint{Total: snap.Commands, Bad: snap.Errors}
			}
			return Sample{
				Series:   series,
				Commands: snap.Commands,
				Errors:   snap.Errors,
				Latency:  snap.Latency.P99.Seconds(),
				Live:     true,
			}
		},
		Blackbox: func() any { return tgt.Flight().Snapshot() },
	})
	if err != nil {
		return nil, err
	}
	return sub, nil
}

// BindNamespace registers one subject per mount under kind "mount",
// giving every tenant its own SLO. perMount overrides objectives for
// specific mounts by name; everything else gets def (nil =
// DefaultMountObjectives).
func BindNamespace(e *Engine, ns *vfs.Namespace, perMount map[string][]Objective, def []Objective) ([]*Subject, error) {
	if def == nil {
		def = DefaultMountObjectives()
	}
	var subs []*Subject
	for _, m := range ns.Mounts() {
		m := m
		objectives := def
		if o, ok := perMount[m.Name()]; ok {
			objectives = o
		}
		objectives = append([]Objective(nil), objectives...)
		series := make([]SeriesPoint, len(objectives))
		s, err := e.Register(SubjectConfig{
			Kind:       "mount",
			Name:       m.Name(),
			Objectives: objectives,
			Collect: func(*telemetry.RegistrySnapshot) Sample {
				st := m.Stats()
				bad := st.Errors + st.QuotaRejections
				for i := range objectives {
					series[i] = SeriesPoint{Total: st.Ops, Bad: bad}
				}
				return Sample{
					Series:   series,
					Commands: st.Ops,
					Errors:   bad,
					Live:     true,
				}
			},
		})
		if err != nil {
			return nil, err
		}
		subs = append(subs, s)
	}
	return subs, nil
}
