package health

import (
	"encoding/json"
	"errors"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/telemetry"
)

// counterSubject registers a subject whose sample is driven directly
// by the test through the returned function.
func counterSubject(t *testing.T, e *Engine, name string, objs []Objective) (sub *Subject, feed func(Sample)) {
	t.Helper()
	var mu sync.Mutex
	cur := Sample{Live: true}
	s, err := e.Register(SubjectConfig{
		Kind:       "test",
		Name:       name,
		Objectives: objs,
		Collect: func(*telemetry.RegistrySnapshot) Sample {
			mu.Lock()
			defer mu.Unlock()
			return cur
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, func(smp Sample) {
		mu.Lock()
		cur = smp
		mu.Unlock()
	}
}

// TestBurnRateMath pins the multi-window burn computation against
// hand-computed windows: budget 0.1, fast window 2 ticks, slow 4.
func TestBurnRateMath(t *testing.T) {
	e := New(Config{})
	obj := Objective{Name: "o", Budget: 0.1, FastTicks: 2, SlowTicks: 4}
	sub, feed := counterSubject(t, e, "burn", []Objective{obj})

	// Cumulative (total, bad): baseline, then deltas 100/0, 100/10,
	// 100/30. Fast window (last 2 ticks) = 200 total 40 bad;
	// slow (last 4, incl. baseline tick's zero delta) = 300 total 40.
	for _, pt := range []SeriesPoint{{0, 0}, {100, 0}, {200, 10}, {300, 40}} {
		feed(Sample{Series: []SeriesPoint{pt}, Live: true})
		e.Tick()
	}
	v := sub.Verdict()
	if len(v.Objectives) != 1 {
		t.Fatalf("objectives = %d, want 1", len(v.Objectives))
	}
	o := v.Objectives[0]
	wantFast := ((30.0 + 10.0) / 200.0) / 0.1 // 2.0
	wantSlow := ((30.0 + 10.0) / 300.0) / 0.1 // 1.333…
	if math.Abs(o.FastBurn-wantFast) > 1e-9 {
		t.Errorf("fast burn = %v, want %v", o.FastBurn, wantFast)
	}
	if math.Abs(o.SlowBurn-wantSlow) > 1e-9 {
		t.Errorf("slow burn = %v, want %v", o.SlowBurn, wantSlow)
	}
	// Both windows at/above BreachBurn=2? fast yes, slow no → no breach.
	if o.Breached {
		t.Error("breached with slow window under BreachBurn")
	}
	// Score: pressure = min(2, 1.333)/10 = 0.1333 → score 0.8667.
	if want := 1 - wantSlow/10; math.Abs(v.Score-want) > 1e-9 {
		t.Errorf("score = %v, want %v", v.Score, want)
	}

	// The burn-rate gauges must agree with the verdict.
	var snap telemetry.RegistrySnapshot
	e.Registry().Snapshot(&snap)
	fastG := snap.Find(MetricSLOBurnRate, telemetry.Labels{
		"kind": "test", "name": "burn", "objective": "o", "window": "fast",
	})
	if fastG == nil || math.Abs(fastG.Value-wantFast) > 1e-9 {
		t.Errorf("fast burn gauge = %+v, want %v", fastG, wantFast)
	}
}

// TestCounterResetRebaselines: a counter that moves backward (restart)
// must re-baseline, not record a huge negative delta.
func TestCounterResetRebaselines(t *testing.T) {
	e := New(Config{})
	obj := Objective{Name: "o", Budget: 0.1, FastTicks: 2, SlowTicks: 2}
	sub, feed := counterSubject(t, e, "reset", []Objective{obj})
	feed(Sample{Series: []SeriesPoint{{1000, 500}}, Live: true})
	e.Tick()
	feed(Sample{Series: []SeriesPoint{{10, 0}}, Live: true}) // reset
	e.Tick()
	feed(Sample{Series: []SeriesPoint{{110, 0}}, Live: true})
	e.Tick()
	if v := sub.Verdict(); v.Objectives[0].FastBurn != 0 {
		t.Errorf("burn after reset = %v, want 0", v.Objectives[0].FastBurn)
	}
}

// TestHysteresisNoFlapping: a score oscillating inside the
// enter/exit band must not move the state.
func TestHysteresisNoFlapping(t *testing.T) {
	e := New(Config{})
	// Budget 0.01, windows of 1 tick: burn = ratio/0.01, pressure =
	// burn/10. ratio 0.028 → score 0.72 (< DegradedEnter 0.75);
	// ratio 0.012 → score 0.88 (< DegradedExit 0.90): inside the band.
	obj := Objective{Name: "o", Budget: 0.01, FastTicks: 1, SlowTicks: 1}
	sub, feed := counterSubject(t, e, "flap", []Objective{obj})

	var total, bad uint64
	push := func(ratio float64) {
		total += 1000
		bad += uint64(ratio * 1000)
		feed(Sample{Series: []SeriesPoint{{total, bad}}, Live: true})
		e.Tick()
	}
	push(0) // baseline
	// Two bad ticks in a row: demote to degraded (EnterTicks=2).
	push(0.028)
	push(0.028)
	if got := sub.State(); got != Degraded {
		t.Fatalf("state = %v, want degraded", got)
	}
	transitionsAfterDemote := sub.Verdict().Transitions
	// Oscillate across the band for 20 ticks: no further transitions —
	// 0.72 is below the degraded band but EnterTicks never accumulates
	// 2 in a row, 0.88 is above entry but below exit.
	for i := 0; i < 10; i++ {
		push(0.012)
		push(0.028)
	}
	if got := sub.State(); got != Degraded {
		t.Fatalf("state flapped to %v", got)
	}
	if tr := sub.Verdict().Transitions; tr != transitionsAfterDemote {
		t.Fatalf("transitions went %d → %d during oscillation", transitionsAfterDemote, tr)
	}
	// Sustained recovery (score 1 > exit 0.90 for ExitTicks=3) promotes.
	for i := 0; i < 3; i++ {
		push(0)
	}
	if got := sub.State(); got != Healthy {
		t.Fatalf("state = %v after recovery, want healthy", got)
	}
}

// TestStepwiseDemotionAndProbeVeto: a dead transport walks down one
// state per qualifying run, a succeeding probe vetoes the suspect
// demotion, and dead is reachable only while not live.
func TestStepwiseDemotionAndProbeVeto(t *testing.T) {
	probeErr := errors.New("probe failed")
	var probeMu sync.Mutex
	probeResult := error(nil)
	setProbe := func(err error) { probeMu.Lock(); probeResult = err; probeMu.Unlock() }

	e := New(Config{})
	var mu sync.Mutex
	cur := Sample{Live: true}
	sub, err := e.Register(SubjectConfig{
		Kind: "test", Name: "probe",
		Objectives: []Objective{{Name: "o", Budget: 0.01, FastTicks: 1, SlowTicks: 1}},
		Collect: func(*telemetry.RegistrySnapshot) Sample {
			mu.Lock()
			defer mu.Unlock()
			return cur
		},
		Probe: func() error { probeMu.Lock(); defer probeMu.Unlock(); return probeResult },
	})
	if err != nil {
		t.Fatal(err)
	}
	feed := func(s Sample) { mu.Lock(); cur = s; mu.Unlock() }

	// Dead transport: score 0. Two ticks → degraded (no probe below
	// suspect), two more → probe consulted for suspect.
	feed(Sample{Live: false})
	setProbe(nil) // probe passes: suspect demotion vetoed
	for i := 0; i < 8; i++ {
		e.Tick()
	}
	if got := sub.State(); got != Degraded {
		t.Fatalf("state = %v with passing probe, want degraded", got)
	}
	// Probe fails: demotion proceeds, stepping suspect then dead
	// (transport is down, so dead is reachable).
	setProbe(probeErr)
	for i := 0; i < 6; i++ {
		e.Tick()
	}
	if got := sub.State(); got != Dead {
		t.Fatalf("state = %v with failing probe, want dead", got)
	}
	// Recovery: score 1 but the probe still fails → pinned at dead.
	feed(Sample{Live: true})
	for i := 0; i < 6; i++ {
		e.Tick()
	}
	if got := sub.State(); got != Dead {
		t.Fatalf("state = %v while probe fails, want dead", got)
	}
	// Probe passes: walks back up to healthy.
	setProbe(nil)
	for i := 0; i < 12; i++ {
		e.Tick()
	}
	if got := sub.State(); got != Healthy {
		t.Fatalf("state = %v after recovery, want healthy", got)
	}
}

// TestStalledButLiveBottomsOutAtSuspect: score 0 with a live transport
// must stop at suspect — dead is reserved for a down transport.
func TestStalledButLiveBottomsOutAtSuspect(t *testing.T) {
	e := New(Config{})
	obj := Objective{Name: "o", Budget: 0.001, FastTicks: 1, SlowTicks: 1}
	sub, feed := counterSubject(t, e, "stall", []Objective{obj})
	var total, bad uint64
	for i := 0; i < 12; i++ {
		total += 100
		bad += 100 // every command bad: burn 1000x budget
		feed(Sample{Series: []SeriesPoint{{total, bad}}, Live: true})
		e.Tick()
	}
	if got := sub.State(); got != Suspect {
		t.Fatalf("state = %v, want suspect (live transport cannot be dead)", got)
	}
}

// TestTransitionEventAndIncidentCapture: demotion to suspect emits a
// health.transition event and writes a bounded incident bundle.
func TestTransitionEventAndIncidentCapture(t *testing.T) {
	dir := t.TempDir()
	traceFile := filepath.Join(t.TempDir(), "trace.jsonl")
	tf, err := os.Create(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	tracer := telemetry.NewTracer(tf)

	e := New(Config{
		Tracer:  tracer,
		Capture: CaptureConfig{Dir: dir, MaxIncidents: 2, Cooldown: time.Nanosecond},
	})
	obj := Objective{Name: "o", Budget: 0.01, FastTicks: 1, SlowTicks: 1}
	sub, feed := counterSubject(t, e, "capture", []Objective{obj})
	_ = sub

	var total, bad uint64
	for i := 0; i < 6; i++ {
		total += 100
		bad += 100
		feed(Sample{Series: []SeriesPoint{{total, bad}}, Live: true})
		e.Tick()
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no incident bundle written")
	}
	if len(entries) > 2 {
		t.Fatalf("%d bundles kept, MaxIncidents=2", len(entries))
	}
	bundle := filepath.Join(dir, entries[len(entries)-1].Name())
	for _, f := range []string{"meta.json", "metrics.prom", "goroutine.pprof", "heap.pprof"} {
		if _, err := os.Stat(filepath.Join(bundle, f)); err != nil {
			t.Errorf("bundle missing %s: %v", f, err)
		}
	}
	var meta incidentMeta
	b, err := os.ReadFile(filepath.Join(bundle, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Verdict.Name != "capture" {
		t.Errorf("meta verdict name = %q", meta.Verdict.Name)
	}

	// The trace must carry health.transition events with from/to.
	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var sawSuspect bool
	for _, line := range splitLines(raw) {
		var ev struct {
			Name  string         `json:"name"`
			Attrs map[string]any `json:"attrs"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			continue
		}
		if ev.Name == "health.transition" && ev.Attrs["to"] == "suspect" {
			sawSuspect = true
		}
	}
	if !sawSuspect {
		t.Error("no health.transition event with to=suspect in trace")
	}
}

func splitLines(b []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, c := range b {
		if c == '\n' {
			if i > start {
				out = append(out, b[start:i])
			}
			start = i + 1
		}
	}
	if start < len(b) {
		out = append(out, b[start:])
	}
	return out
}

// TestConcurrentEngine drives Register/Deregister/Verdicts/HTTP reads
// against a running engine; -race is the assertion.
func TestConcurrentEngine(t *testing.T) {
	e := New(Config{Interval: time.Millisecond})
	srv := httptest.NewServer(Handler(e))
	defer srv.Close()
	for i := 0; i < 4; i++ {
		_, feed := counterSubject(t, e, "base"+string(rune('a'+i)), []Objective{
			{Name: "o", Budget: 0.01},
		})
		feed(Sample{Series: []SeriesPoint{{100, 1}}, Live: true})
	}
	e.Start()
	defer e.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(3)
	go func() { // churn registrations
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := "churn"
			_, err := e.Register(SubjectConfig{
				Kind: "test", Name: name,
				Collect: func(*telemetry.RegistrySnapshot) Sample { return Sample{Live: true} },
			})
			if err != nil {
				t.Error(err)
				return
			}
			e.Deregister("test", name)
		}
	}()
	go func() { // read verdicts and rollups
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = e.Verdicts()
			_ = e.Rollup()
			_ = e.Overall()
		}
	}()
	go func() { // HTTP reads
		defer wg.Done()
		client := srv.Client()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := client.Get(srv.URL)
			if err != nil {
				t.Error(err)
				return
			}
			var doc struct {
				Status   State     `json:"status"`
				Subjects []Verdict `json:"subjects"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
				t.Error(err)
			}
			resp.Body.Close()
		}
	}()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestRollup checks the per-kind aggregation /healthz serves.
func TestRollup(t *testing.T) {
	e := New(Config{})
	obj := Objective{Name: "o", Budget: 0.01, FastTicks: 1, SlowTicks: 1}
	_, feedA := counterSubject(t, e, "a", []Objective{obj})
	_, feedB := counterSubject(t, e, "b", []Objective{obj})
	feedA(Sample{Series: []SeriesPoint{{0, 0}}, Live: true})
	feedB(Sample{Live: false})
	for i := 0; i < 3; i++ {
		e.Tick()
	}
	r := e.Rollup()
	l := r.Layers["test"]
	if l.Subjects != 2 || l.Degraded != 1 {
		t.Fatalf("rollup = %+v, want 2 subjects 1 degraded", l)
	}
	if r.Status != Degraded {
		t.Fatalf("status = %v, want degraded", r.Status)
	}
}
