package health

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/faults"
	"github.com/nvme-cr/nvmecr/internal/nvmeof"
	"github.com/nvme-cr/nvmecr/internal/telemetry"
)

// TestFaultPlanDrivesSuspectAndRecovery is the end-to-end acceptance
// scenario: a seeded fault plan stalls one queue pair of a pool, the
// engine walks it healthy → degraded → suspect (capturing an incident
// bundle), HostPool bias shifts traffic off the sick pair, and after
// the plan window closes the pair probes clean and walks back to
// healthy — with /health JSON and nvmecr_health_state agreeing at both
// ends.
func TestFaultPlanDrivesSuspectAndRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock scenario")
	}
	const (
		stallWindow = 3 * time.Second
		stallDelay  = 4 * time.Millisecond // per read and write syscall
	)

	tgt := nvmeof.NewTarget()
	if err := tgt.AddNamespace(1, nvmeof.NewMemNamespace(16<<20)); err != nil {
		t.Fatal(err)
	}
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()

	// Stall only queue pair 1: DialPool dials slots in order, so the
	// second connection is slot 1.
	plan := faults.NewPlan(42, faults.Rule{
		Name:  "stall-qp1",
		Layer: faults.LayerTCP,
		Kind:  faults.KindDelay,
		Arg:   int64(stallDelay),
		Until: stallWindow,
	})
	var dials atomic.Int32
	dial := func(addr string) (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		if dials.Add(1) == 2 {
			return nvmeof.NewFaultConn(c, plan), nil
		}
		return c, nil
	}

	reg := telemetry.New()
	pool, err := nvmeof.DialPool(addr, 1, nvmeof.PoolConfig{
		QueuePairs:     2,
		CommandTimeout: 5 * time.Second,
		Dial:           dial,
		Telemetry:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	incidentDir := t.TempDir()
	e := New(Config{
		Interval: 15 * time.Millisecond,
		Registry: reg,
		Capture:  CaptureConfig{Dir: incidentDir, Cooldown: 200 * time.Millisecond},
	})

	type hop struct{ from, to State }
	var transMu sync.Mutex
	var qp1Hops []hop
	snapshotHops := func() []hop {
		transMu.Lock()
		defer transMu.Unlock()
		return append([]hop(nil), qp1Hops...)
	}
	_, err = BindHostPool(e, pool, PoolBindConfig{
		Target: "t0",
		Objectives: []Objective{{
			Name:             "p99-write",
			Budget:           0.05,
			FastTicks:        2,
			SlowTicks:        4,
			LatencyThreshold: 2.5e-3,
		}},
		ProbeBudget: 3 * time.Millisecond,
		OnTransition: func(qp int, old, new State) {
			if qp == 1 {
				transMu.Lock()
				qp1Hops = append(qp1Hops, hop{old, new})
				transMu.Unlock()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Close()

	srv := httptest.NewServer(Handler(e))
	defer srv.Close()

	// Steady workload: enough concurrency that a soft-biased pair
	// still sees a trickle, so the signal survives the first demotion.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	payload := make([]byte, 2048)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = pool.WriteAt(int64((g*97+i)%2048)*4096, payload)
			}
		}(g)
	}
	defer func() { close(stop); wg.Wait() }()

	sub := e.Subject("qp", "t0/qp1")
	if sub == nil {
		t.Fatal("qp subject not registered")
	}
	waitState := func(want State, deadline time.Duration) {
		t.Helper()
		limit := time.Now().Add(deadline)
		for time.Now().Before(limit) {
			if sub.State() == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("qp1 never reached %v (state %v, hops %v)", want, sub.State(), snapshotHops())
	}

	// 1. The stalled pair is demoted to suspect inside the plan window.
	waitState(Suspect, 1500*time.Millisecond)

	// 2. The demotion path walked healthy → degraded → suspect, one
	// step at a time, and never reached dead (the transport stayed up).
	transMu.Lock()
	sawDegraded, sawSuspect := false, false
	for _, h := range qp1Hops {
		if h.to == Dead {
			transMu.Unlock()
			t.Fatalf("qp1 demoted to dead with a live transport: %v", qp1Hops)
		}
		if h.from == Healthy && h.to == Degraded {
			sawDegraded = true
		}
		if h.from == Degraded && h.to == Suspect && sawDegraded {
			sawSuspect = true
		}
	}
	transMu.Unlock()
	if !sawDegraded || !sawSuspect {
		t.Fatalf("demotion path incomplete: %v", snapshotHops())
	}

	// 3. An incident bundle landed on disk.
	bundles, err := os.ReadDir(incidentDir)
	if err != nil || len(bundles) == 0 {
		t.Fatalf("no incident bundle (err %v)", err)
	}
	bundle := filepath.Join(incidentDir, bundles[len(bundles)-1].Name())
	for _, f := range []string{"meta.json", "blackbox.json", "metrics.prom", "goroutine.pprof"} {
		if _, err := os.Stat(filepath.Join(bundle, f)); err != nil {
			t.Errorf("bundle missing %s: %v", f, err)
		}
	}

	// 4. Placement bias measurably shifts traffic off the sick pair.
	if b := pool.QPBias(1); b != nvmeof.BiasAvoid {
		t.Fatalf("qp1 bias = %v at suspect, want avoid", b)
	}
	time.Sleep(100 * time.Millisecond) // drain pre-bias in-flights
	before := perQPCommands(pool)
	time.Sleep(400 * time.Millisecond)
	after := perQPCommands(pool)
	qp1Delta := after[1] - before[1]
	total := (after[0] - before[0]) + qp1Delta
	if total == 0 {
		t.Fatal("workload produced no traffic during the bias check")
	}
	// Probes may still touch qp1; the workload must not. Allow 10%.
	if qp1Delta*10 > total {
		t.Errorf("suspect qp1 still took %d of %d commands", qp1Delta, total)
	}

	// 5. /health JSON and the nvmecr_health_state series agree.
	if sub.State() == Suspect { // still inside the window
		checkAgreement(t, srv, reg, "t0/qp1", http.StatusServiceUnavailable)
	}

	// 6. After the plan window closes, probes pass and the pair walks
	// back to healthy; bias clears.
	waitState(Healthy, 10*time.Second)
	if b := pool.QPBias(1); b != nvmeof.BiasNone {
		t.Fatalf("qp1 bias = %v after recovery, want none", b)
	}
	checkAgreement(t, srv, reg, "t0/qp1", http.StatusOK)
}

func perQPCommands(p *nvmeof.HostPool) []uint64 {
	snaps := p.Snapshot()
	out := make([]uint64, len(snaps))
	for i, s := range snaps {
		out[i] = s.Commands
	}
	return out
}

// checkAgreement asserts the /health JSON document and the
// nvmecr_health_state gauge report the same state for one subject, and
// that the endpoint's HTTP status matches the overall verdict.
func checkAgreement(t *testing.T, srv *httptest.Server, reg *telemetry.Registry, name string, wantCode int) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Status   State     `json:"status"`
		Subjects []Verdict `json:"subjects"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Errorf("/health HTTP %d, want %d (overall %v)", resp.StatusCode, wantCode, doc.Status)
	}
	var jsonState State = -1
	for _, v := range doc.Subjects {
		if v.Kind == "qp" && v.Name == name {
			jsonState = v.State
		}
	}
	if jsonState == -1 {
		t.Fatalf("subject %s missing from /health", name)
	}
	var snap telemetry.RegistrySnapshot
	reg.Snapshot(&snap)
	g := snap.Find(MetricHealthState, telemetry.Labels{"kind": "qp", "name": name})
	if g == nil {
		t.Fatalf("no %s series for %s", MetricHealthState, name)
	}
	if State(g.Value) != jsonState {
		t.Errorf("nvmecr_health_state = %v, /health says %v", State(g.Value), jsonState)
	}
}
