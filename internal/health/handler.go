package health

import (
	"encoding/json"
	"net/http"
)

// healthResponse is the /health JSON document.
type healthResponse struct {
	Status   State     `json:"status"`
	Tick     uint64    `json:"tick"`
	Subjects []Verdict `json:"subjects"`
}

// Handler serves the engine's verdicts as JSON: overall status, tick
// count, and every subject ordered by kind then name. The HTTP status
// is 200 while the worst subject is healthy or degraded and 503 from
// suspect on, so dumb load-balancer checks get the right signal
// without parsing.
func Handler(e *Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp := healthResponse{
			Status:   Healthy,
			Tick:     e.Ticks(),
			Subjects: e.Verdicts(),
		}
		for _, v := range resp.Subjects {
			if v.State > resp.Status {
				resp.Status = v.State
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if resp.Status >= Suspect {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
}
