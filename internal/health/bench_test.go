package health

import (
	"strconv"
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/nvmeof"
	"github.com/nvme-cr/nvmecr/internal/telemetry"
)

// BenchmarkHostPoolHealth measures the hot-path cost of running the
// health engine alongside a loaded pool: engine=off is the baseline,
// engine=on adds a bound engine ticking at 5ms. scripts/bench.sh gates
// the ratio at <5%.
func BenchmarkHostPoolHealth(b *testing.B) {
	for _, engineOn := range []bool{false, true} {
		label := "off"
		if engineOn {
			label = "on"
		}
		b.Run("engine="+label, func(b *testing.B) {
			tgt := nvmeof.NewTarget()
			if err := tgt.AddNamespace(1, nvmeof.NewMemNamespace(64<<20)); err != nil {
				b.Fatal(err)
			}
			addr, err := tgt.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer tgt.Close()
			reg := telemetry.New()
			pool, err := nvmeof.DialPool(addr, 1, nvmeof.PoolConfig{
				QueuePairs: 4, Telemetry: reg,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer pool.Close()
			if engineOn {
				e := New(Config{Interval: 5 * time.Millisecond, Registry: reg})
				if _, err := BindHostPool(e, pool, PoolBindConfig{Target: "bench"}); err != nil {
					b.Fatal(err)
				}
				e.Start()
				defer e.Close()
			}
			payload := make([]byte, 4096)
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if err := pool.WriteAt(int64(i%1024)*4096, payload); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkEngineTick measures one evaluation pass over a realistic
// subject count; steady state must not allocate beyond verdict-free
// bookkeeping.
func BenchmarkEngineTick(b *testing.B) {
	reg := telemetry.New()
	e := New(Config{Registry: reg})
	for i := 0; i < 16; i++ {
		qp := telemetry.Labels{"qp": strconv.Itoa(i)}
		c := reg.Counter("nvmecr_qp_commands_total", qp)
		c.Add(uint64(1000 * i))
		reg.Histogram("nvmecr_qp_command_latency_seconds", telemetry.DefLatencyBuckets, qp).Observe(0.001)
		labels := qp
		series := make([]SeriesPoint, 1)
		if _, err := e.Register(SubjectConfig{
			Kind: "qp", Name: "bench/qp" + strconv.Itoa(i),
			Objectives: []Objective{ErrorRatioObjective("o", 0.01)},
			Collect: func(snap *telemetry.RegistrySnapshot) Sample {
				n := snap.Counter("nvmecr_qp_commands_total", labels)
				series[0] = SeriesPoint{Total: n}
				return Sample{Series: series, Commands: n, Live: true}
			},
		}); err != nil {
			b.Fatal(err)
		}
	}
	e.Tick() // warm the snapshot buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Tick()
	}
}
