// Package health is the judgment layer over the runtime's raw
// telemetry: a streaming evaluator that consumes telemetry.Registry
// snapshots on a fixed cadence and maintains, per subject (a queue
// pair, a target, a tenant mount), EWMA latency and error-rate
// trackers, multi-window SLO burn rates, and a hysteresis state
// machine healthy → degraded → suspect → dead with optional active
// probes. Verdicts — not scrapes — are what the placement layer
// (HostPool bias), the rebalancing control plane, and operators
// consume. On an SLO breach or a demotion to suspect the engine
// performs black-box capture: flight-recorder rings, the full metric
// set, and pprof snapshots land in a bounded on-disk incident
// directory so post-hoc forensics work even when nobody was scraping.
//
// See docs/health.md for objective semantics and the state machine.
package health

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/nvme-cr/nvmecr/internal/telemetry"
)

// State is a subject's health verdict. Order matters: higher is worse,
// and transitions move one step at a time.
type State int32

const (
	// Healthy: every objective inside budget.
	Healthy State = iota
	// Degraded: burn rates eating into the error budget; still serving.
	Degraded
	// Suspect: budget exhaustion imminent or transport flapping;
	// placement should avoid it and probes decide what happens next.
	Suspect
	// Dead: transport down and objectives pinned at exhaustion.
	Dead
)

// String names the state as it appears in JSON, metrics docs and logs.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// MarshalJSON writes the state name, not the integer.
func (s State) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON accepts a state name.
func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "healthy":
		*s = Healthy
	case "degraded":
		*s = Degraded
	case "suspect":
		*s = Suspect
	case "dead":
		*s = Dead
	default:
		return fmt.Errorf("health: unknown state %q", name)
	}
	return nil
}

// Prometheus series the engine maintains per subject.
const (
	// MetricHealthState is the numeric state (0 healthy … 3 dead),
	// labeled {kind,name}.
	MetricHealthState = "nvmecr_health_state"
	// MetricHealthScore is the 0..1 health score (1 = perfectly
	// healthy), labeled {kind,name}.
	MetricHealthScore = "nvmecr_health_score"
	// MetricSLOBurnRate is the per-objective burn rate, labeled
	// {kind,name,objective,window} with window "fast" or "slow".
	MetricSLOBurnRate = "nvmecr_slo_burn_rate"
)

// Thresholds are the hysteresis bands of the state machine. Scores are
// 0..1 (1 healthy). A state is entered when the score stays below its
// Enter threshold for EnterTicks consecutive ticks, and left (toward
// healthy) when the score stays above the current state's Exit
// threshold for ExitTicks. Exit > Enter for every state is what makes
// the band: a score oscillating between the two moves nothing.
type Thresholds struct {
	DegradedEnter float64
	DegradedExit  float64
	SuspectEnter  float64
	SuspectExit   float64
	DeadEnter     float64
	DeadExit      float64
	// EnterTicks is how many consecutive qualifying ticks a demotion
	// needs; ExitTicks likewise for promotions. Promotions are slower
	// by default: flapping back early is worse than lingering.
	EnterTicks int
	ExitTicks  int
}

// DefaultThresholds returns the standard hysteresis bands.
func DefaultThresholds() Thresholds {
	return Thresholds{
		DegradedEnter: 0.75, DegradedExit: 0.90,
		SuspectEnter: 0.45, SuspectExit: 0.65,
		DeadEnter: 0.10, DeadExit: 0.30,
		EnterTicks: 2, ExitTicks: 3,
	}
}

func (t Thresholds) withDefaults() Thresholds {
	d := DefaultThresholds()
	if t.DegradedEnter == 0 && t.DegradedExit == 0 {
		t.DegradedEnter, t.DegradedExit = d.DegradedEnter, d.DegradedExit
	}
	if t.SuspectEnter == 0 && t.SuspectExit == 0 {
		t.SuspectEnter, t.SuspectExit = d.SuspectEnter, d.SuspectExit
	}
	if t.DeadEnter == 0 && t.DeadExit == 0 {
		t.DeadEnter, t.DeadExit = d.DeadEnter, d.DeadExit
	}
	if t.EnterTicks <= 0 {
		t.EnterTicks = d.EnterTicks
	}
	if t.ExitTicks <= 0 {
		t.ExitTicks = d.ExitTicks
	}
	return t
}

// enter returns the score below which state s is entered.
func (t Thresholds) enter(s State) float64 {
	switch s {
	case Degraded:
		return t.DegradedEnter
	case Suspect:
		return t.SuspectEnter
	case Dead:
		return t.DeadEnter
	default:
		return 0
	}
}

// exit returns the score above which state s is left toward healthy.
func (t Thresholds) exit(s State) float64 {
	switch s {
	case Degraded:
		return t.DegradedExit
	case Suspect:
		return t.SuspectExit
	case Dead:
		return t.DeadExit
	default:
		return 1
	}
}

// Config tunes an Engine. The zero value gets sensible defaults.
type Config struct {
	// Interval is the evaluation cadence for Start (default 1s).
	// Tick can always be driven manually regardless.
	Interval time.Duration
	// Registry is snapshotted every tick and handed to each subject's
	// collector; the engine's own series (health state, score, burn
	// rates) register here too. Nil gets a private registry.
	Registry *telemetry.Registry
	// Tracer, when non-nil, receives a "health.transition" event for
	// every state change.
	Tracer *telemetry.Tracer
	// Capture configures black-box incident capture; the zero value
	// (empty Dir) disables it.
	Capture CaptureConfig
	// Thresholds are the hysteresis bands (zero value = defaults).
	Thresholds Thresholds
	// Alpha is the EWMA smoothing factor for the per-subject error
	// rate and latency trackers (default 0.3).
	Alpha float64
	// Now overrides the clock (tests); default time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Registry == nil {
		c.Registry = telemetry.New()
	}
	c.Capture = c.Capture.withDefaults()
	c.Thresholds = c.Thresholds.withDefaults()
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Sample is one tick's raw signal for a subject, produced by its
// collector from the registry snapshot (or any other source).
type Sample struct {
	// Series holds one cumulative (total, bad) pair per objective, in
	// the subject's objective order. The engine differences successive
	// samples itself.
	Series []SeriesPoint
	// Commands and Errors are cumulative counts feeding the EWMA
	// error-rate tracker (informational; objectives are what score).
	Commands uint64
	Errors   uint64
	// Latency is the current latency signal in seconds (e.g. the p99
	// over the lifetime histogram), feeding the EWMA latency tracker.
	Latency float64
	// Live reports whether the subject's transport is up at all. A
	// dead transport pins the score to 0, and a subject can only be
	// demoted all the way to Dead while not live.
	Live bool
}

// SeriesPoint is a cumulative event count pair for one objective.
type SeriesPoint struct {
	Total uint64
	Bad   uint64
}

// SubjectConfig registers one scored entity with the engine.
type SubjectConfig struct {
	// Kind groups subjects for rollups: "qp", "target", "mount".
	Kind string
	// Name identifies the subject within its kind.
	Name string
	// Objectives are the SLOs scored every tick (nil = transport
	// liveness only).
	Objectives []Objective
	// Collect produces the tick's sample. Required. Called outside the
	// engine's locks, with the fresh registry snapshot.
	Collect func(*telemetry.RegistrySnapshot) Sample
	// Probe, when non-nil, actively confirms verdicts: a demotion into
	// Suspect or Dead is vetoed if the probe succeeds, and a promotion
	// out of them requires it to succeed. Called outside locks.
	Probe func() error
	// OnTransition runs after every state change (placement bias
	// wiring, logs). Called outside locks.
	OnTransition func(old, new State, v Verdict)
	// Blackbox, when non-nil, supplies the subject-specific payload
	// (flight-recorder rings) written into incident bundles.
	Blackbox func() any
}

// Subject is one registered, scored entity.
type Subject struct {
	cfg SubjectConfig
	eng *Engine

	stateG *telemetry.Gauge
	scoreG *telemetry.FloatGauge
	burnG  [][2]*telemetry.FloatGauge // per objective: fast, slow

	mu          sync.Mutex
	listeners   []func(old, new State, v Verdict)
	state       State
	score       float64
	live        bool
	objs        []objectiveState
	errEWMA     ewma
	latEWMA     ewma
	enterRun    int
	exitRun     int
	since       time.Time
	transitions uint64
	lastCapture time.Time
	lastIncid   string
	statuses    []ObjectiveStatus // reused verdict buffer
}

// Verdict is a subject's externally visible judgment.
type Verdict struct {
	Kind        string            `json:"kind"`
	Name        string            `json:"name"`
	State       State             `json:"state"`
	Score       float64           `json:"score"`
	Live        bool              `json:"live"`
	SinceUnixNS int64             `json:"since_unix_ns"`
	Transitions uint64            `json:"transitions"`
	ErrorRate   float64           `json:"error_rate_ewma"`
	LatencyS    float64           `json:"latency_ewma_seconds"`
	Incident    string            `json:"last_incident,omitempty"`
	Objectives  []ObjectiveStatus `json:"objectives,omitempty"`
}

// ObjectiveStatus is one objective's burn state inside a Verdict.
type ObjectiveStatus struct {
	Name     string  `json:"name"`
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	Breached bool    `json:"breached"`
}

// Engine evaluates every registered subject on a cadence.
type Engine struct {
	cfg Config

	mu       sync.Mutex
	subjects map[string]*Subject
	order    []*Subject

	tickMu sync.Mutex
	snap   *telemetry.RegistrySnapshot
	ticks  uint64

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New creates an engine. Call Register for each subject, then Start
// (or drive Tick manually).
func New(cfg Config) *Engine {
	return &Engine{
		cfg:      cfg.withDefaults(),
		subjects: make(map[string]*Subject),
		stop:     make(chan struct{}),
	}
}

// Registry returns the registry the engine snapshots and records into.
func (e *Engine) Registry() *telemetry.Registry { return e.cfg.Registry }

func subjectKey(kind, name string) string { return kind + "\x00" + name }

// Register adds a subject in state Healthy. Kind+name must be unique.
func (e *Engine) Register(cfg SubjectConfig) (*Subject, error) {
	if cfg.Collect == nil {
		return nil, fmt.Errorf("health: subject %s/%s: Collect is required", cfg.Kind, cfg.Name)
	}
	if cfg.Kind == "" || cfg.Name == "" {
		return nil, fmt.Errorf("health: subject needs Kind and Name")
	}
	for i := range cfg.Objectives {
		cfg.Objectives[i] = cfg.Objectives[i].withDefaults()
	}
	labels := telemetry.Labels{"kind": cfg.Kind, "name": cfg.Name}
	s := &Subject{
		cfg:    cfg,
		eng:    e,
		stateG: e.cfg.Registry.Gauge(MetricHealthState, labels),
		scoreG: e.cfg.Registry.FloatGauge(MetricHealthScore, labels),
		state:  Healthy,
		score:  1,
		live:   true,
		since:  e.cfg.Now(),
		objs:   make([]objectiveState, len(cfg.Objectives)),
	}
	for i := range cfg.Objectives {
		o := &cfg.Objectives[i]
		s.objs[i].init(o)
		s.burnG = append(s.burnG, [2]*telemetry.FloatGauge{
			e.cfg.Registry.FloatGauge(MetricSLOBurnRate, telemetry.Labels{
				"kind": cfg.Kind, "name": cfg.Name, "objective": o.Name, "window": "fast",
			}),
			e.cfg.Registry.FloatGauge(MetricSLOBurnRate, telemetry.Labels{
				"kind": cfg.Kind, "name": cfg.Name, "objective": o.Name, "window": "slow",
			}),
		})
	}
	s.stateG.Set(int64(Healthy))
	s.scoreG.Set(1)
	e.mu.Lock()
	defer e.mu.Unlock()
	key := subjectKey(cfg.Kind, cfg.Name)
	if _, dup := e.subjects[key]; dup {
		return nil, fmt.Errorf("health: subject %s/%s already registered", cfg.Kind, cfg.Name)
	}
	e.subjects[key] = s
	e.order = append(e.order, s)
	return s, nil
}

// Deregister removes a subject; its series stop updating.
func (e *Engine) Deregister(kind, name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := subjectKey(kind, name)
	s := e.subjects[key]
	if s == nil {
		return
	}
	delete(e.subjects, key)
	for i, o := range e.order {
		if o == s {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
}

// Subject returns a registered subject, or nil.
func (e *Engine) Subject(kind, name string) *Subject {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.subjects[subjectKey(kind, name)]
}

// Start launches the evaluation loop at the configured interval.
func (e *Engine) Start() {
	e.startOnce.Do(func() {
		done := make(chan struct{})
		e.mu.Lock()
		e.done = done
		e.mu.Unlock()
		go func() {
			defer close(done)
			t := time.NewTicker(e.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-e.stop:
					return
				case <-t.C:
					e.Tick()
				}
			}
		}()
	})
}

// Close stops the evaluation loop. Subjects and series stay readable.
func (e *Engine) Close() {
	e.mu.Lock()
	select {
	case <-e.stop:
	default:
		close(e.stop)
	}
	done := e.done
	e.mu.Unlock()
	if done != nil {
		<-done
	}
}

// Ticks returns how many evaluations have run.
func (e *Engine) Ticks() uint64 {
	e.tickMu.Lock()
	defer e.tickMu.Unlock()
	return e.ticks
}

// Tick runs one evaluation pass over every subject: snapshot the
// registry once (into a reused buffer — steady state allocates
// nothing), collect, score, and advance each state machine. Safe to
// call concurrently with Register/Deregister and the Start loop.
func (e *Engine) Tick() {
	e.tickMu.Lock()
	defer e.tickMu.Unlock()
	e.ticks++
	tick := e.ticks
	e.snap = e.cfg.Registry.Snapshot(e.snap)

	e.mu.Lock()
	subs := make([]*Subject, len(e.order))
	copy(subs, e.order)
	e.mu.Unlock()

	for _, s := range subs {
		s.evaluate(e.snap, tick)
	}
}

// evaluate runs one subject's tick: sample, score, hysteresis,
// optional probe, and transition side effects.
func (s *Subject) evaluate(snap *telemetry.RegistrySnapshot, tick uint64) {
	sample := s.cfg.Collect(snap)

	s.mu.Lock()
	t := s.eng.cfg.Thresholds
	s.live = sample.Live
	if sample.Commands > 0 {
		// EWMA over the cumulative ratio is cheap and monotonic-safe;
		// the objectives carry the windowed judgment.
		s.errEWMA.observe(s.eng.cfg.Alpha, float64(sample.Errors)/float64(sample.Commands))
	}
	if sample.Latency > 0 {
		s.latEWMA.observe(s.eng.cfg.Alpha, sample.Latency)
	}

	// Score: the worst objective's budget pressure, 0 (calm) to 1
	// (exhaustion-rate burn or dead transport).
	pressure := 0.0
	newBreach := false
	s.statuses = s.statuses[:0]
	for i := range s.objs {
		o := &s.objs[i]
		var pt SeriesPoint
		if i < len(sample.Series) {
			pt = sample.Series[i]
		}
		o.update(pt)
		fast, slow := o.burns()
		s.burnG[i][0].Set(fast)
		s.burnG[i][1].Set(slow)
		// min(fast, slow): both windows must burn for the objective to
		// press — a single bad tick moves fast only, a stale backlog
		// moves slow only. This is the standard multi-window guard
		// against paging on blips.
		burn := fast
		if slow < burn {
			burn = slow
		}
		breached := fast >= o.obj.BreachBurn && slow >= o.obj.BreachBurn
		if breached && !o.breached {
			newBreach = true
		}
		o.breached = breached
		p := burn / o.obj.ExhaustBurn
		if p > pressure {
			pressure = p
		}
		s.statuses = append(s.statuses, ObjectiveStatus{
			Name: o.obj.Name, FastBurn: fast, SlowBurn: slow, Breached: breached,
		})
	}
	if !sample.Live {
		pressure = 1
	}
	if pressure > 1 {
		pressure = 1
	}
	s.score = 1 - pressure
	s.scoreG.Set(s.score)

	// Hysteresis: count consecutive ticks qualifying for the adjacent
	// state, one step at a time.
	old := s.state
	var tentative State = old
	switch {
	case old < Dead && s.score < t.enter(old+1) && (old+1 != Dead || !sample.Live):
		s.enterRun++
		s.exitRun = 0
		if s.enterRun >= t.EnterTicks {
			tentative = old + 1
		}
	case old > Healthy && s.score > t.exit(old):
		s.exitRun++
		s.enterRun = 0
		if s.exitRun >= t.ExitTicks {
			tentative = old - 1
		}
	default:
		s.enterRun, s.exitRun = 0, 0
	}
	needProbe := false
	if tentative != old && s.cfg.Probe != nil {
		demotingIntoSuspect := tentative > old && tentative >= Suspect
		promotingOutOfSuspect := tentative < old && old >= Suspect
		needProbe = demotingIntoSuspect || promotingOutOfSuspect
	}
	s.mu.Unlock()

	probeOK := false
	if needProbe {
		probeOK = s.cfg.Probe() == nil
	}

	s.mu.Lock()
	if tentative != old && needProbe {
		if tentative > old && probeOK {
			// Active probe succeeded: the subject answers, keep it.
			tentative = old
			s.enterRun = 0
		}
		if tentative < old && !probeOK {
			// Recovery needs a passing probe; stay put and re-count.
			tentative = old
			s.exitRun = 0
		}
	}
	var v Verdict
	transitioned := tentative != old
	if transitioned {
		s.state = tentative
		s.enterRun, s.exitRun = 0, 0
		s.since = s.eng.cfg.Now()
		s.transitions++
		s.stateG.Set(int64(tentative))
	}
	captureReason := ""
	if transitioned && tentative > old && tentative >= Suspect {
		captureReason = "demoted-" + tentative.String()
	} else if newBreach {
		captureReason = "slo-breach"
	}
	if transitioned || captureReason != "" {
		v = s.verdictLocked()
	}
	s.mu.Unlock()

	if captureReason != "" {
		if dir, err := s.eng.capture(s, captureReason, v); err == nil && dir != "" {
			s.mu.Lock()
			s.lastIncid = dir
			v.Incident = dir
			s.mu.Unlock()
		}
	}
	if transitioned {
		s.eng.emitTransition(old, tentative, v, tick)
		if s.cfg.OnTransition != nil {
			s.cfg.OnTransition(old, tentative, v)
		}
		s.mu.Lock()
		var listeners []func(old, new State, v Verdict)
		listeners = append(listeners, s.listeners...)
		s.mu.Unlock()
		for _, fn := range listeners {
			fn(old, tentative, v)
		}
	}
}

// Subscribe adds a transition listener that runs (outside the
// subject's locks, on the evaluation goroutine) after every state
// change, alongside the registration-time OnTransition hook. It lets
// consumers that did not register the subject — the rebalancing
// control plane chief among them — react to verdicts instead of
// re-deriving judgment from raw series. Listeners cannot be removed;
// subjects live as long as their engine.
func (s *Subject) Subscribe(fn func(old, new State, v Verdict)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.listeners = append(s.listeners, fn)
}

// emitTransition records a health.transition tracer event.
func (e *Engine) emitTransition(old, new State, v Verdict, tick uint64) {
	if e.cfg.Tracer == nil {
		return
	}
	e.cfg.Tracer.Emit(telemetry.Event{
		Name: "health.transition",
		Rank: -1,
		Attrs: map[string]any{
			"kind": v.Kind, "name": v.Name,
			"from": old.String(), "to": new.String(),
			"score": v.Score, "tick": tick, "incident": v.Incident,
		},
	})
}

// verdictLocked builds the subject's verdict; s.mu must be held.
func (s *Subject) verdictLocked() Verdict {
	objs := make([]ObjectiveStatus, len(s.statuses))
	copy(objs, s.statuses)
	return Verdict{
		Kind:        s.cfg.Kind,
		Name:        s.cfg.Name,
		State:       s.state,
		Score:       s.score,
		Live:        s.live,
		SinceUnixNS: s.since.UnixNano(),
		Transitions: s.transitions,
		ErrorRate:   s.errEWMA.value,
		LatencyS:    s.latEWMA.value,
		Incident:    s.lastIncid,
		Objectives:  objs,
	}
}

// Verdict returns the subject's current judgment.
func (s *Subject) Verdict() Verdict {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.verdictLocked()
}

// State returns the subject's current state.
func (s *Subject) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Verdicts returns every subject's judgment, ordered by kind then name.
func (e *Engine) Verdicts() []Verdict {
	e.mu.Lock()
	subs := make([]*Subject, len(e.order))
	copy(subs, e.order)
	e.mu.Unlock()
	out := make([]Verdict, 0, len(subs))
	for _, s := range subs {
		out = append(out, s.Verdict())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Overall returns the worst state across all subjects (Healthy when
// none are registered).
func (e *Engine) Overall() State {
	worst := Healthy
	for _, v := range e.Verdicts() {
		if v.State > worst {
			worst = v.State
		}
	}
	return worst
}

// LayerHealth is one kind's rollup inside a Rollup.
type LayerHealth struct {
	Status   State `json:"status"`
	Subjects int   `json:"subjects"`
	Degraded int   `json:"degraded"`
	Suspect  int   `json:"suspect"`
	Dead     int   `json:"dead"`
}

// Rollup is the per-layer summary served by /healthz.
type Rollup struct {
	Status State                  `json:"status"`
	Layers map[string]LayerHealth `json:"layers"`
}

// Rollup aggregates verdicts per kind.
func (e *Engine) Rollup() Rollup {
	r := Rollup{Status: Healthy, Layers: map[string]LayerHealth{}}
	for _, v := range e.Verdicts() {
		l := r.Layers[v.Kind]
		l.Subjects++
		switch v.State {
		case Degraded:
			l.Degraded++
		case Suspect:
			l.Suspect++
		case Dead:
			l.Dead++
		}
		if v.State > l.Status {
			l.Status = v.State
		}
		if v.State > r.Status {
			r.Status = v.State
		}
		r.Layers[v.Kind] = l
	}
	return r
}

// ewma is an exponentially weighted moving average.
type ewma struct {
	value float64
	seen  bool
}

func (e *ewma) observe(alpha, v float64) {
	if !e.seen {
		e.value, e.seen = v, true
		return
	}
	e.value = alpha*v + (1-alpha)*e.value
}
