package health

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"time"
)

// CaptureConfig bounds black-box incident capture.
type CaptureConfig struct {
	// Dir is the incident directory root. Empty disables capture.
	Dir string
	// MaxIncidents caps how many incident bundles are kept; the oldest
	// are pruned (default 8).
	MaxIncidents int
	// Cooldown is the minimum interval between captures for one
	// subject, so a flapping subject cannot churn the disk (default
	// 30s).
	Cooldown time.Duration
}

func (c CaptureConfig) withDefaults() CaptureConfig {
	if c.MaxIncidents <= 0 {
		c.MaxIncidents = 8
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	return c
}

// incidentMeta is the bundle's meta.json payload.
type incidentMeta struct {
	Reason     string  `json:"reason"`
	CapturedAt string  `json:"captured_at"`
	UnixNS     int64   `json:"unix_ns"`
	Verdict    Verdict `json:"verdict"`
}

// sanitizeName makes a subject name filesystem-safe.
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

// capture writes one incident bundle for the subject and returns its
// directory: meta.json (the verdict and reason), blackbox.json (the
// subject's flight-recorder payload), metrics.prom (the full registry
// at capture time), and goroutine/heap pprof snapshots. Bundles beyond
// MaxIncidents are pruned oldest-first; a per-subject cooldown bounds
// churn. Returns "" (no error) when capture is disabled or cooling
// down.
func (e *Engine) capture(s *Subject, reason string, v Verdict) (string, error) {
	cfg := e.cfg.Capture
	if cfg.Dir == "" {
		return "", nil
	}
	now := e.cfg.Now()
	s.mu.Lock()
	if !s.lastCapture.IsZero() && now.Sub(s.lastCapture) < cfg.Cooldown {
		s.mu.Unlock()
		return "", nil
	}
	s.lastCapture = now
	s.mu.Unlock()

	// %020d nanos: lexical order is chronological order, which is what
	// both pruning and a human running ls rely on.
	dir := filepath.Join(cfg.Dir, fmt.Sprintf("%020d-%s-%s",
		now.UnixNano(), sanitizeName(v.Kind), sanitizeName(v.Name)))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}

	writeJSON := func(name string, payload any) {
		b, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			b = []byte(fmt.Sprintf("{\"marshal_error\": %q}", err.Error()))
		}
		_ = os.WriteFile(filepath.Join(dir, name), b, 0o644)
	}
	writeJSON("meta.json", incidentMeta{
		Reason:     reason,
		CapturedAt: now.UTC().Format(time.RFC3339Nano),
		UnixNS:     now.UnixNano(),
		Verdict:    v,
	})
	if s.cfg.Blackbox != nil {
		writeJSON("blackbox.json", s.cfg.Blackbox())
	}
	if f, err := os.Create(filepath.Join(dir, "metrics.prom")); err == nil {
		_ = e.cfg.Registry.WritePrometheus(f)
		f.Close()
	}
	for _, prof := range []string{"goroutine", "heap"} {
		if p := pprof.Lookup(prof); p != nil {
			if f, err := os.Create(filepath.Join(dir, prof+".pprof")); err == nil {
				_ = p.WriteTo(f, 0)
				f.Close()
			}
		}
	}
	e.pruneIncidents(cfg)
	return dir, nil
}

// pruneIncidents deletes the oldest bundles beyond MaxIncidents.
func (e *Engine) pruneIncidents(cfg CaptureConfig) {
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return
	}
	var dirs []string
	for _, ent := range entries {
		if ent.IsDir() {
			dirs = append(dirs, ent.Name())
		}
	}
	if len(dirs) <= cfg.MaxIncidents {
		return
	}
	sort.Strings(dirs) // zero-padded nanos: lexical == chronological
	for _, name := range dirs[:len(dirs)-cfg.MaxIncidents] {
		_ = os.RemoveAll(filepath.Join(cfg.Dir, name))
	}
}
