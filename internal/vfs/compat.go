package vfs

import "github.com/nvme-cr/nvmecr/internal/sim"

// Compatibility shims for the pre-mount, pre-bitmask vfs API. Everything
// in this file is deprecated and will be removed one release after the
// mount-based API landed; scripts/verify.sh rejects new in-repo callers.

// Deprecated: use O_RDONLY. ReadOnly is the old two-value enum's read
// mode; its value coincides with O_RDONLY, so stored flag values keep
// their meaning.
const ReadOnly = O_RDONLY

// Deprecated: use O_WRONLY. WriteOnly is the old two-value enum's write
// mode; its value coincides with O_WRONLY.
const WriteOnly = O_WRONLY

// Deprecated: use b.Open with O_WRONLY|O_CREATE|O_EXCL. Create preserves
// the old separate-entry-point semantics: exclusive creation of a new
// writable file, ErrExist when the path already exists.
func Create(p *sim.Proc, b Backend, path string, mode uint32) (File, error) {
	return b.Open(p, path, O_WRONLY|O_CREATE|O_EXCL, mode)
}
