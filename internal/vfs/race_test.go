package vfs

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/nvme-cr/nvmecr/internal/telemetry"
)

// TestConcurrentMultiTenant hammers one namespace from real goroutines
// — one per tenant mount plus cross-tenant readers — under -race. The
// simulation never runs goroutines concurrently, but MemBackend-backed
// namespaces are also used from live daemons (nvmecrd -tenants), so the
// mount table, quota counters, and telemetry must be race-clean.
func TestConcurrentMultiTenant(t *testing.T) {
	reg := telemetry.New()
	ns := NewNamespace(reg)
	const tenants = 4
	for i := 0; i < tenants; i++ {
		if _, err := ns.Mount(MountConfig{
			Path:    fmt.Sprintf("/t%d", i),
			Backend: NewMemBackend(),
			Name:    fmt.Sprintf("t%d", i),
			// Tight quotas so rejection counting races too.
			QuotaBytes:  4096,
			QuotaInodes: 32,
		}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	fail := make(chan error, tenants*2)
	for i := 0; i < tenants; i++ {
		i := i
		wg.Add(2)
		// Writer: create/write/unlink churn inside its own mount.
		go func() {
			defer wg.Done()
			for op := 0; op < 200; op++ {
				path := fmt.Sprintf("/t%d/f%02d", i, op%8)
				f, err := ns.Open(nil, path, O_WRONLY|O_CREATE, 0o644)
				if err != nil {
					if errors.Is(err, ErrNoSpace) {
						continue
					}
					fail <- fmt.Errorf("writer %d: open %s: %w", i, path, err)
					return
				}
				if _, err := f.WriteN(nil, 256); err != nil && !errors.Is(err, ErrNoSpace) {
					fail <- fmt.Errorf("writer %d: write %s: %w", i, path, err)
					return
				}
				f.Close(nil)
				if op%8 == 7 {
					if err := ns.Unlink(nil, path); err != nil && !errors.Is(err, ErrNotExist) {
						fail <- fmt.Errorf("writer %d: unlink %s: %w", i, path, err)
						return
					}
				}
			}
		}()
		// Reader: list and stat every tenant, including others'.
		go func() {
			defer wg.Done()
			for op := 0; op < 200; op++ {
				target := fmt.Sprintf("/t%d", (i+op)%tenants)
				entries, err := ns.ReadDir(nil, target)
				if err != nil {
					fail <- fmt.Errorf("reader %d: readdir %s: %w", i, target, err)
					return
				}
				for _, e := range entries {
					// Churn means entries may vanish between list and
					// stat; only unexpected errors count.
					if _, err := ns.Stat(nil, e.Path); err != nil && !errors.Is(err, ErrNotExist) {
						fail <- fmt.Errorf("reader %d: stat %s: %w", i, e.Path, err)
						return
					}
				}
				if _, err := ns.ReadDir(nil, "/"); err != nil {
					fail <- fmt.Errorf("reader %d: readdir /: %w", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Error(err)
	}
	// Quota accounting must balance: usage never negative, never above
	// quota.
	for _, m := range ns.Mounts() {
		b, ino := m.Usage()
		qb, qi := m.Quota()
		if b < 0 || ino < 0 || b > qb || ino > qi {
			t.Errorf("mount %s usage out of range: %d/%d bytes, %d/%d inodes", m.Name(), b, qb, ino, qi)
		}
	}
}
