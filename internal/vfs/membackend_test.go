package vfs

import (
	"errors"
	"sort"
	"testing"
)

func TestOpenFlagsHelpers(t *testing.T) {
	cases := []struct {
		f                  OpenFlags
		readable, writable bool
		str                string
	}{
		{O_RDONLY, true, false, "O_RDONLY"},
		{O_WRONLY, false, true, "O_WRONLY"},
		{O_RDWR, true, true, "O_RDWR"},
		{O_WRONLY | O_CREATE | O_EXCL, false, true, "O_WRONLY|O_CREATE|O_EXCL"},
		{O_RDWR | O_TRUNC | O_APPEND, true, true, "O_RDWR|O_TRUNC|O_APPEND"},
	}
	for _, c := range cases {
		if c.f.Readable() != c.readable || c.f.Writable() != c.writable {
			t.Errorf("%s: Readable=%v Writable=%v, want %v %v",
				c.str, c.f.Readable(), c.f.Writable(), c.readable, c.writable)
		}
		if got := c.f.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
	if !(O_WRONLY | O_CREATE).Has(O_CREATE) || (O_WRONLY).Has(O_CREATE) {
		t.Error("Has(O_CREATE) broken")
	}
	// Deprecated aliases keep their meaning.
	if ReadOnly != O_RDONLY || WriteOnly != O_WRONLY {
		t.Error("compat aliases drifted")
	}
}

func TestMemBackendFlagSemantics(t *testing.T) {
	b := NewMemBackend()
	if _, err := b.Open(nil, "/f", O_RDONLY, 0); !errors.Is(err, ErrNotExist) {
		t.Fatalf("open missing = %v, want ErrNotExist", err)
	}
	f, err := b.Open(nil, "/f", O_WRONLY|O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(nil, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	// Write-only handles refuse reads.
	if _, err := f.Read(nil, make([]byte, 1)); !errors.Is(err, ErrWriteOnly) {
		t.Fatalf("read on O_WRONLY = %v, want ErrWriteOnly", err)
	}
	f.Close(nil)
	if _, err := b.Open(nil, "/f", O_WRONLY|O_CREATE|O_EXCL, 0o644); !errors.Is(err, ErrExist) {
		t.Fatalf("O_EXCL on existing = %v, want ErrExist", err)
	}
	// Read-only handles refuse writes.
	g, err := b.Open(nil, "/f", O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write(nil, []byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write on O_RDONLY = %v, want ErrReadOnly", err)
	}
	buf := make([]byte, 5)
	if n, _ := g.Read(nil, buf); string(buf[:n]) != "hello" {
		t.Fatalf("read %q, want hello", buf[:n])
	}
	g.Close(nil)
	// O_APPEND starts at EOF; O_TRUNC drops content.
	a, err := b.Open(nil, "/f", O_WRONLY|O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	a.Write(nil, []byte("!"))
	a.Close(nil)
	if fi, _ := b.Stat(nil, "/f"); fi.Size != 6 {
		t.Fatalf("size after append = %d, want 6", fi.Size)
	}
	tr, err := b.Open(nil, "/f", O_WRONLY|O_TRUNC, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr.Close(nil)
	if fi, _ := b.Stat(nil, "/f"); fi.Size != 0 {
		t.Fatalf("size after trunc = %d, want 0", fi.Size)
	}
}

func TestMemBackendNamespaceOps(t *testing.T) {
	b := NewMemBackend()
	if err := b.Mkdir(nil, "/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := b.Mkdir(nil, "/d", 0o755); !errors.Is(err, ErrExist) {
		t.Fatalf("mkdir existing = %v, want ErrExist", err)
	}
	if err := b.Mkdir(nil, "/nope/deep", 0o755); !errors.Is(err, ErrNotExist) {
		t.Fatalf("mkdir without parent = %v, want ErrNotExist", err)
	}
	for _, p := range []string{"/d/a", "/d/b"} {
		f, err := b.Open(nil, p, O_WRONLY|O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.Close(nil)
	}
	entries, err := b.ReadDir(nil, "/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Path != "/d/a" || entries[1].Path != "/d/b" {
		t.Fatalf("ReadDir(/d) = %v", entries)
	}
	if err := b.Rename(nil, "/d/a", "/d/c"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Stat(nil, "/d/a"); !errors.Is(err, ErrNotExist) {
		t.Fatal("rename left the old path behind")
	}
	if err := b.Unlink(nil, "/d/c"); err != nil {
		t.Fatal(err)
	}
	if err := b.Unlink(nil, "/d/c"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("unlink missing = %v, want ErrNotExist", err)
	}
	if _, err := b.Open(nil, "/d", O_RDONLY, 0); !errors.Is(err, ErrIsDir) {
		t.Fatalf("open dir = %v, want ErrIsDir", err)
	}
}

func TestModTimeRecencyOrdering(t *testing.T) {
	// Checkpoint discovery sorts by ModTime: later writes must carry
	// strictly later stamps even when virtual time does not advance
	// (nil proc == everything at t=0).
	b := NewMemBackend()
	names := []string{"/ck2", "/ck0", "/ck1"} // creation order
	for _, n := range names {
		f, err := b.Open(nil, n, O_WRONLY|O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.Write(nil, []byte("s"))
		f.Close(nil)
	}
	entries, err := b.ReadDir(nil, "/")
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ModTime > entries[j].ModTime })
	if entries[0].Path != "/ck1" || entries[2].Path != "/ck2" {
		t.Fatalf("recency order = %v, want newest-first /ck1../ck2", entries)
	}
	// Rewriting an old file makes it the newest.
	f, err := b.Open(nil, "/ck2", O_WRONLY|O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(nil, []byte("t"))
	f.Close(nil)
	fi0, _ := b.Stat(nil, "/ck2")
	fi1, _ := b.Stat(nil, "/ck1")
	if fi0.ModTime <= fi1.ModTime {
		t.Fatalf("rewrite did not refresh ModTime: %v <= %v", fi0.ModTime, fi1.ModTime)
	}
}
