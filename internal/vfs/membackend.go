package vfs

import (
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/nvme-cr/nvmecr/internal/sim"
)

// MemBackend is a complete in-memory Backend: a DRAM-tenant mount for
// mixed checkpoint + general-file namespaces, and the reference backend
// for Namespace tests. It is safe for concurrent use and tolerates a
// nil *sim.Proc (operations are instantaneous, so no virtual time needs
// charging), which lets -race suites drive it from plain goroutines.
type MemBackend struct {
	acct Account

	mu       sync.Mutex
	nodes    map[string]*memNode
	nextIno  uint64
	lastTick time.Duration
}

// memNode is one in-memory file or directory.
type memNode struct {
	ino   uint64
	mode  uint32
	isDir bool
	data  []byte
	mtime time.Duration
}

// NewMemBackend creates an empty in-memory filesystem with a root
// directory.
func NewMemBackend() *MemBackend {
	b := &MemBackend{nodes: map[string]*memNode{}, nextIno: 1}
	b.nodes["/"] = &memNode{ino: 1, mode: 0o755, isDir: true}
	b.nextIno = 2
	return b
}

// Account implements Client (a MemBackend used standalone is a Client).
func (b *MemBackend) Account() *Account { return &b.acct }

// tick returns a monotonically increasing modification stamp: the
// process's virtual time when available, bumped so that successive
// mutations always order by recency even at the same virtual instant.
func (b *MemBackend) tick(p *sim.Proc) time.Duration {
	t := time.Duration(0)
	if p != nil {
		t = p.Now()
	}
	if t <= b.lastTick {
		t = b.lastTick + 1
	}
	b.lastTick = t
	return t
}

func memParent(path string) string {
	i := strings.LastIndexByte(path, '/')
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

// Mkdir implements Backend.
func (b *MemBackend) Mkdir(p *sim.Proc, path string, mode uint32) error {
	path, err := normalizeNS(path)
	if err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.nodes[path]; ok {
		return ErrExist
	}
	parent, ok := b.nodes[memParent(path)]
	if !ok {
		return ErrNotExist
	}
	if !parent.isDir {
		return ErrNotDir
	}
	b.nodes[path] = &memNode{ino: b.nextIno, mode: mode, isDir: true, mtime: b.tick(p)}
	b.nextIno++
	return nil
}

// Open implements Backend.
func (b *MemBackend) Open(p *sim.Proc, path string, flags OpenFlags, mode uint32) (File, error) {
	path, err := normalizeNS(path)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	node, ok := b.nodes[path]
	switch {
	case ok:
		if node.isDir {
			return nil, ErrIsDir
		}
		if flags.Has(O_CREATE) && flags.Has(O_EXCL) {
			return nil, ErrExist
		}
		if flags.Writable() && node.mode&0o200 == 0 {
			return nil, ErrPerm
		}
		if flags.Readable() && node.mode&0o400 == 0 {
			return nil, ErrPerm
		}
		if flags.Has(O_TRUNC) && flags.Writable() && len(node.data) > 0 {
			node.data = nil
			node.mtime = b.tick(p)
		}
	case flags.Has(O_CREATE):
		parent, pok := b.nodes[memParent(path)]
		if !pok {
			return nil, ErrNotExist
		}
		if !parent.isDir {
			return nil, ErrNotDir
		}
		node = &memNode{ino: b.nextIno, mode: mode, mtime: b.tick(p)}
		b.nextIno++
		b.nodes[path] = node
	default:
		return nil, ErrNotExist
	}
	f := &memHandle{b: b, node: node, readable: flags.Readable(), writable: flags.Writable()}
	if flags.Has(O_APPEND) {
		f.pos = int64(len(node.data))
	}
	return f, nil
}

// Unlink implements Backend.
func (b *MemBackend) Unlink(p *sim.Proc, path string) error {
	path, err := normalizeNS(path)
	if err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	node, ok := b.nodes[path]
	if !ok {
		return ErrNotExist
	}
	if node.isDir {
		return ErrIsDir
	}
	delete(b.nodes, path)
	return nil
}

// Rename implements Backend.
func (b *MemBackend) Rename(p *sim.Proc, oldPath, newPath string) error {
	oldPath, err := normalizeNS(oldPath)
	if err != nil {
		return err
	}
	newPath, err = normalizeNS(newPath)
	if err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	node, ok := b.nodes[oldPath]
	if !ok {
		return ErrNotExist
	}
	if node.isDir {
		return ErrIsDir
	}
	if _, exists := b.nodes[newPath]; exists {
		return ErrExist
	}
	parent, pok := b.nodes[memParent(newPath)]
	if !pok {
		return ErrNotExist
	}
	if !parent.isDir {
		return ErrNotDir
	}
	delete(b.nodes, oldPath)
	b.nodes[newPath] = node
	return nil
}

// ReadDir implements Backend.
func (b *MemBackend) ReadDir(p *sim.Proc, dir string) ([]FileInfo, error) {
	dir, err := normalizeNS(dir)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	node, ok := b.nodes[dir]
	if !ok {
		return nil, ErrNotExist
	}
	if !node.isDir {
		return nil, ErrNotDir
	}
	prefix := dir
	if prefix != "/" {
		prefix += "/"
	}
	var out []FileInfo
	for path, n := range b.nodes {
		if path == dir || !strings.HasPrefix(path, prefix) {
			continue
		}
		rest := path[len(prefix):]
		if rest == "" || strings.ContainsRune(rest, '/') {
			continue
		}
		out = append(out, FileInfo{
			Path: path, Size: int64(len(n.data)), Inode: n.ino,
			Mode: n.mode, IsDir: n.isDir, ModTime: n.mtime,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Stat implements Backend.
func (b *MemBackend) Stat(p *sim.Proc, path string) (FileInfo, error) {
	path, err := normalizeNS(path)
	if err != nil {
		return FileInfo{}, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	node, ok := b.nodes[path]
	if !ok {
		return FileInfo{}, ErrNotExist
	}
	return FileInfo{
		Path: path, Size: int64(len(node.data)), Inode: node.ino,
		Mode: node.mode, IsDir: node.isDir, ModTime: node.mtime,
	}, nil
}

// memHandle is an open handle onto a MemBackend node.
type memHandle struct {
	b        *MemBackend
	node     *memNode
	pos      int64
	readable bool
	writable bool
	closed   bool
}

// Write implements File.
func (f *memHandle) Write(p *sim.Proc, data []byte) (int, error) {
	n, err := f.write(p, data, int64(len(data)))
	return int(n), err
}

// WriteN implements File (synthetic bytes materialize as zeros).
func (f *memHandle) WriteN(p *sim.Proc, n int64) (int64, error) {
	return f.write(p, nil, n)
}

func (f *memHandle) write(p *sim.Proc, data []byte, n int64) (int64, error) {
	f.b.mu.Lock()
	defer f.b.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	if !f.writable {
		return 0, ErrReadOnly
	}
	if n <= 0 {
		return 0, nil
	}
	end := f.pos + n
	if int64(len(f.node.data)) < end {
		f.node.data = append(f.node.data, make([]byte, end-int64(len(f.node.data)))...)
	}
	if data != nil {
		copy(f.node.data[f.pos:end], data)
	}
	f.pos = end
	f.node.mtime = f.b.tick(p)
	return n, nil
}

// Read implements File.
func (f *memHandle) Read(p *sim.Proc, buf []byte) (int, error) {
	f.b.mu.Lock()
	defer f.b.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	if !f.readable {
		return 0, ErrWriteOnly
	}
	if f.pos >= int64(len(f.node.data)) {
		return 0, nil
	}
	n := copy(buf, f.node.data[f.pos:])
	f.pos += int64(n)
	return n, nil
}

// ReadN implements File.
func (f *memHandle) ReadN(p *sim.Proc, n int64) (int64, error) {
	f.b.mu.Lock()
	defer f.b.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	if !f.readable {
		return 0, ErrWriteOnly
	}
	rem := int64(len(f.node.data)) - f.pos
	if rem <= 0 {
		return 0, nil
	}
	if n > rem {
		n = rem
	}
	f.pos += n
	return n, nil
}

// SeekTo implements File.
func (f *memHandle) SeekTo(offset int64) error {
	f.b.mu.Lock()
	defer f.b.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if offset < 0 {
		offset = 0
	}
	f.pos = offset
	return nil
}

// Fsync implements File (DRAM: nothing to flush).
func (f *memHandle) Fsync(p *sim.Proc) error {
	f.b.mu.Lock()
	defer f.b.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	return nil
}

// Close implements File.
func (f *memHandle) Close(p *sim.Proc) error {
	f.b.mu.Lock()
	defer f.b.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	f.closed = true
	return nil
}

var (
	_ Backend = (*MemBackend)(nil)
	_ Client  = (*MemBackend)(nil)
)
