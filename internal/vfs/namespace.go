package vfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/nvme-cr/nvmecr/internal/faults"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/telemetry"
)

// MountConfig describes one mount in a Namespace.
type MountConfig struct {
	// Path is the namespace-absolute mount point ("/", "/tenants/a").
	Path string
	// Backend serves every path at or below Path (unless a deeper
	// mount shadows it).
	Backend Backend
	// Name labels the mount's telemetry series (nvmecr_mount_*); it
	// defaults to Path.
	Name string
	// ReadOnly rejects every mutating operation with ErrPerm.
	ReadOnly bool
	// QuotaBytes caps the bytes this mount may hold (0 = unlimited).
	// Writes that would grow past the cap fail with ErrNoSpace.
	QuotaBytes int64
	// QuotaInodes caps files + directories created through this mount
	// (0 = unlimited). Breaches fail with ErrNoSpace.
	QuotaInodes int64
	// Faults, when non-nil, is consulted at every operation on this
	// mount (faults.LayerVFS points, op = "open", "write", …): per-
	// tenant fault plans without touching the shared backend layers.
	Faults *faults.Plan
	// Admission, when non-nil, is the tenant's admission-control hook
	// (token buckets in internal/qos): consulted after quota
	// reservation and before the backend, on every operation except
	// unlink. Rejections are immediate and typed — never a hang.
	Admission Admission
}

// Mount is one live mount: configuration plus quota usage and telemetry.
type Mount struct {
	cfg  MountConfig
	path string
	name string

	reg          *telemetry.Registry
	ops          *telemetry.Counter // aggregate across ops; standalone, never registered
	bytesWritten *telemetry.Counter
	bytesRead    *telemetry.Counter
	rejections   *telemetry.Counter
	admRejects   *telemetry.Counter
	errsTotal    *telemetry.Counter
	bytesUsedG   *telemetry.Gauge
	inodesUsedG  *telemetry.Gauge

	mu         sync.Mutex
	bytesUsed  int64
	inodesUsed int64
}

// Path returns the mount point.
func (m *Mount) Path() string { return m.path }

// Name returns the telemetry label.
func (m *Mount) Name() string { return m.name }

// Backend returns the backend serving the mount.
func (m *Mount) Backend() Backend { return m.cfg.Backend }

// Quota returns the configured byte and inode caps (0 = unlimited).
func (m *Mount) Quota() (bytes, inodes int64) {
	return m.cfg.QuotaBytes, m.cfg.QuotaInodes
}

// Usage returns the bytes and inodes currently charged against the
// mount's quotas.
func (m *Mount) Usage() (bytes, inodes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytesUsed, m.inodesUsed
}

// opInc counts one operation in nvmecr_mount_ops_total{mount,op} and
// the mount's aggregate (the latter is standalone — registering it
// would double-count against the labeled per-op series).
func (m *Mount) opInc(op string) {
	m.ops.Inc()
	if m.reg != nil {
		m.reg.Counter("nvmecr_mount_ops_total", telemetry.Labels{"mount": m.name, "op": op}).Inc()
	}
}

// errInc counts one failed operation.
func (m *Mount) errInc() { m.errsTotal.Inc() }

// admit consults the mount's admission hook. Callers invoke it after
// quota reservation (quota classification wins) and before the backend
// call; a rejection is counted in
// nvmecr_mount_admission_rejections_total{mount}.
func (m *Mount) admit(op string, bytes int64) error {
	if m.cfg.Admission == nil {
		return nil
	}
	if err := m.cfg.Admission.Admit(op, bytes); err != nil {
		m.admRejects.Inc()
		return err
	}
	return nil
}

// MountStats is a point-in-time summary of one mount's activity — the
// mount-level analogue of the pool's per-QP snapshot, and the signal
// set the health engine scores per-tenant SLOs over.
type MountStats struct {
	Ops                 uint64 // operations dispatched, all kinds
	Errors              uint64 // failed operations
	QuotaRejections     uint64 // operations refused by quota
	AdmissionRejections uint64 // operations refused by admission control
	BytesWritten        uint64
	BytesRead           uint64
	BytesUsed           int64 // currently charged against the byte quota
	InodesUsed          int64 // currently charged against the inode quota
}

// Stats returns the mount's live counters. It works with or without a
// telemetry registry and is safe for concurrent use.
func (m *Mount) Stats() MountStats {
	bytes, inodes := m.Usage()
	return MountStats{
		Ops:                 m.ops.Value(),
		Errors:              m.errsTotal.Value(),
		QuotaRejections:     m.rejections.Value(),
		AdmissionRejections: m.admRejects.Value(),
		BytesWritten:        m.bytesWritten.Value(),
		BytesRead:           m.bytesRead.Value(),
		BytesUsed:           bytes,
		InodesUsed:          inodes,
	}
}

// fault consults the mount's fault plan at an operation dispatch point.
// Stall/delay kinds sleep and let the operation proceed; every other
// kind fails the operation with a faults.Error.
func (m *Mount) fault(p *sim.Proc, op string) error {
	plan := m.cfg.Faults
	if plan == nil {
		return nil
	}
	var now time.Duration
	if p != nil {
		now = p.Now()
	} else {
		now = plan.Elapsed()
	}
	inj, ok := plan.Eval(faults.Point{Layer: faults.LayerVFS, Op: op, Rank: -1, Now: now})
	if !ok {
		return nil
	}
	switch inj.Kind {
	case faults.KindStall, faults.KindDelay:
		if p != nil && inj.Arg > 0 {
			p.Sleep(time.Duration(inj.Arg))
		}
		return nil
	default:
		return &faults.Error{Inj: inj}
	}
}

// reserveBytes charges growth against the byte quota.
func (m *Mount) reserveBytes(n int64) error {
	if n <= 0 {
		return nil
	}
	m.mu.Lock()
	if q := m.cfg.QuotaBytes; q > 0 && m.bytesUsed+n > q {
		m.mu.Unlock()
		m.rejections.Inc()
		return ErrNoSpace
	}
	m.bytesUsed += n
	used := m.bytesUsed
	m.mu.Unlock()
	m.bytesUsedG.Set(used)
	return nil
}

// releaseBytes returns reserved bytes (unlink, truncate, failed write).
func (m *Mount) releaseBytes(n int64) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	m.bytesUsed -= n
	if m.bytesUsed < 0 {
		m.bytesUsed = 0
	}
	used := m.bytesUsed
	m.mu.Unlock()
	m.bytesUsedG.Set(used)
}

// reserveInode charges one file/directory against the inode quota.
func (m *Mount) reserveInode() error {
	m.mu.Lock()
	if q := m.cfg.QuotaInodes; q > 0 && m.inodesUsed+1 > q {
		m.mu.Unlock()
		m.rejections.Inc()
		return ErrNoSpace
	}
	m.inodesUsed++
	used := m.inodesUsed
	m.mu.Unlock()
	m.inodesUsedG.Set(used)
	return nil
}

// releaseInode returns one inode quota unit.
func (m *Mount) releaseInode() {
	m.mu.Lock()
	m.inodesUsed--
	if m.inodesUsed < 0 {
		m.inodesUsed = 0
	}
	used := m.inodesUsed
	m.mu.Unlock()
	m.inodesUsedG.Set(used)
}

// Namespace composes backends into one tree: every path is served by
// the mount with the longest prefix covering it, so nested mounts
// shadow their parents (the everything-is-a-mount model). A Namespace
// is itself a Backend (and a Client), so namespaces nest.
//
// The mount table and per-mount quota counters are guarded by locks, so
// a Namespace over thread-safe backends (MemBackend) may be driven from
// concurrent goroutines; backends built on the deterministic simulator
// (microfs) inherit its one-process-at-a-time discipline.
type Namespace struct {
	reg  *telemetry.Registry
	acct Account

	mu     sync.RWMutex
	mounts []*Mount // sorted by decreasing path length (longest first)
}

// NewNamespace creates an empty namespace. reg, when non-nil, receives
// the per-mount telemetry series (nvmecr_mount_ops_total,
// nvmecr_mount_bytes_{written,read}_total, nvmecr_mount_quota_*,
// nvmecr_mount_errors_total).
func NewNamespace(reg *telemetry.Registry) *Namespace {
	return &Namespace{reg: reg}
}

// Mount adds a mount. Mount points must be unique; "/" mounts a root
// backend that deeper mounts shadow.
func (ns *Namespace) Mount(cfg MountConfig) (*Mount, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("vfs: MountConfig.Backend is required")
	}
	path, err := normalizeNS(cfg.Path)
	if err != nil {
		return nil, err
	}
	name := cfg.Name
	if name == "" {
		name = path
	}
	m := &Mount{cfg: cfg, path: path, name: name, reg: ns.reg, ops: &telemetry.Counter{}}
	if ns.reg != nil {
		labels := telemetry.Labels{"mount": name}
		m.bytesWritten = ns.reg.Counter("nvmecr_mount_bytes_written_total", labels)
		m.bytesRead = ns.reg.Counter("nvmecr_mount_bytes_read_total", labels)
		m.rejections = ns.reg.Counter("nvmecr_mount_quota_rejections_total", labels)
		m.admRejects = ns.reg.Counter("nvmecr_mount_admission_rejections_total", labels)
		m.errsTotal = ns.reg.Counter("nvmecr_mount_errors_total", labels)
		m.bytesUsedG = ns.reg.Gauge("nvmecr_mount_quota_bytes_used", labels)
		m.inodesUsedG = ns.reg.Gauge("nvmecr_mount_quota_inodes_used", labels)
	} else {
		// Standalone instruments: Stats stays meaningful (for the
		// health engine's per-tenant objectives) without a registry.
		m.bytesWritten = &telemetry.Counter{}
		m.bytesRead = &telemetry.Counter{}
		m.rejections = &telemetry.Counter{}
		m.admRejects = &telemetry.Counter{}
		m.errsTotal = &telemetry.Counter{}
		m.bytesUsedG = &telemetry.Gauge{}
		m.inodesUsedG = &telemetry.Gauge{}
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	for _, existing := range ns.mounts {
		if existing.path == path {
			return nil, fmt.Errorf("vfs: %q is already a mount point", path)
		}
	}
	ns.mounts = append(ns.mounts, m)
	sort.Slice(ns.mounts, func(i, j int) bool {
		a, b := ns.mounts[i].path, ns.mounts[j].path
		if len(a) != len(b) {
			return len(a) > len(b)
		}
		return a < b
	})
	return m, nil
}

// Unmount removes the mount at path. Quota state and telemetry series
// are dropped with it; files in the backend are untouched.
func (ns *Namespace) Unmount(path string) error {
	path, err := normalizeNS(path)
	if err != nil {
		return err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	for i, m := range ns.mounts {
		if m.path == path {
			ns.mounts = append(ns.mounts[:i], ns.mounts[i+1:]...)
			return nil
		}
	}
	return ErrNotExist
}

// Mounts returns the live mounts, longest mount point first.
func (ns *Namespace) Mounts() []*Mount {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	return append([]*Mount(nil), ns.mounts...)
}

// Account implements Client. Backends charge modeled time to their own
// accounts; the namespace's account exists so a Namespace satisfies the
// Client interface where one is expected.
func (ns *Namespace) Account() *Account { return &ns.acct }

// resolve finds the owning mount for path by longest-prefix match and
// returns the backend-relative path.
func (ns *Namespace) resolve(path string) (*Mount, string, error) {
	path, err := normalizeNS(path)
	if err != nil {
		return nil, "", err
	}
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	for _, m := range ns.mounts { // longest mount point first
		if covers(m.path, path) {
			return m, relPath(m.path, path), nil
		}
	}
	return nil, path, nil
}

// covers reports whether mount point mp owns path.
func covers(mp, path string) bool {
	if mp == "/" {
		return true
	}
	return path == mp || strings.HasPrefix(path, mp+"/")
}

// relPath translates a namespace-absolute path to a backend-absolute
// one.
func relPath(mp, path string) string {
	if mp == "/" {
		return path
	}
	if path == mp {
		return "/"
	}
	return path[len(mp):]
}

// joinNS translates a backend-absolute path back to namespace-absolute.
func joinNS(mp, rel string) string {
	if mp == "/" {
		return rel
	}
	if rel == "/" {
		return mp
	}
	return mp + rel
}

// normalizeNS validates and canonicalizes a namespace path.
func normalizeNS(path string) (string, error) {
	if path == "" || path[0] != '/' {
		return "", fmt.Errorf("vfs: path %q must be absolute", path)
	}
	if path != "/" && strings.HasSuffix(path, "/") {
		path = strings.TrimRight(path, "/")
	}
	if strings.Contains(path, "//") || strings.Contains(path, "/../") || strings.HasSuffix(path, "/..") {
		return "", fmt.Errorf("vfs: unsupported path %q", path)
	}
	return path, nil
}

// mountChildNames returns the names of mounts rooted directly below or
// anywhere under dir (first path segment below dir), for synthesizing
// directory entries.
func (ns *Namespace) mountChildNames(dir string) []string {
	prefix := dir
	if prefix != "/" {
		prefix += "/"
	}
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	seen := map[string]bool{}
	var names []string
	for _, m := range ns.mounts {
		if m.path == dir || !strings.HasPrefix(m.path, prefix) {
			continue
		}
		rest := m.path[len(prefix):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		if !seen[rest] {
			seen[rest] = true
			names = append(names, rest)
		}
	}
	return names
}

// isMountAncestor reports whether dir lies on the path to some mount
// point (so it must exist as a synthetic directory even when no backend
// serves it).
func (ns *Namespace) isMountAncestor(dir string) bool {
	if dir == "/" {
		return true
	}
	prefix := dir + "/"
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	for _, m := range ns.mounts {
		if m.path == dir || strings.HasPrefix(m.path, prefix) {
			return true
		}
	}
	return false
}

// Mkdir implements Backend.
func (ns *Namespace) Mkdir(p *sim.Proc, path string, mode uint32) error {
	m, rel, err := ns.resolve(path)
	if err != nil {
		return err
	}
	if m == nil {
		return ErrNotExist
	}
	m.opInc("mkdir")
	if err := m.fault(p, "mkdir"); err != nil {
		m.errInc()
		return err
	}
	if m.cfg.ReadOnly {
		m.errInc()
		return ErrPerm
	}
	if err := m.reserveInode(); err != nil {
		m.errInc()
		return err
	}
	if err := m.admit("mkdir", 0); err != nil {
		m.releaseInode()
		m.errInc()
		return err
	}
	if err := m.cfg.Backend.Mkdir(p, rel, mode); err != nil {
		m.releaseInode()
		m.errInc()
		return err
	}
	return nil
}

// Open implements Backend.
func (ns *Namespace) Open(p *sim.Proc, path string, flags OpenFlags, mode uint32) (File, error) {
	m, rel, err := ns.resolve(path)
	if err != nil {
		return nil, err
	}
	if m == nil {
		if ns.isMountAncestor(rel) {
			return nil, ErrIsDir
		}
		return nil, ErrNotExist
	}
	m.opInc("open")
	if err := m.fault(p, "open"); err != nil {
		m.errInc()
		return nil, err
	}
	mutates := flags.Writable() || flags.Has(O_CREATE) || flags.Has(O_TRUNC)
	if mutates && m.cfg.ReadOnly {
		m.errInc()
		return nil, ErrPerm
	}
	// Establish the pre-open size for quota accounting: growth is
	// charged relative to it, truncation and creation adjust it.
	trackQuota := m.cfg.QuotaBytes > 0 || m.cfg.QuotaInodes > 0
	var preSize int64
	preExists := false
	if trackQuota {
		if info, serr := m.cfg.Backend.Stat(p, rel); serr == nil {
			preExists = true
			preSize = info.Size
		}
	}
	creating := trackQuota && !preExists && flags.Has(O_CREATE)
	if creating {
		if err := m.reserveInode(); err != nil {
			m.errInc()
			return nil, err
		}
	}
	// Admission runs after the inode-quota reservation: a tenant at
	// both limits is classified as out of quota, not out of tokens.
	if err := m.admit("open", 0); err != nil {
		if creating {
			m.releaseInode()
		}
		m.errInc()
		return nil, err
	}
	f, err := m.cfg.Backend.Open(p, rel, flags, mode)
	if err != nil {
		if creating {
			m.releaseInode()
		}
		m.errInc()
		return nil, err
	}
	size := preSize
	if preExists && flags.Has(O_TRUNC) && flags.Writable() {
		m.releaseBytes(preSize)
		size = 0
	}
	mf := &mountFile{File: f, m: m, size: size}
	if flags.Has(O_APPEND) {
		mf.pos = size
	}
	return mf, nil
}

// Unlink implements Backend.
func (ns *Namespace) Unlink(p *sim.Proc, path string) error {
	m, rel, err := ns.resolve(path)
	if err != nil {
		return err
	}
	if m == nil {
		return ErrNotExist
	}
	m.opInc("unlink")
	if err := m.fault(p, "unlink"); err != nil {
		m.errInc()
		return err
	}
	if m.cfg.ReadOnly {
		m.errInc()
		return ErrPerm
	}
	var freed int64
	existed := false
	if m.cfg.QuotaBytes > 0 || m.cfg.QuotaInodes > 0 {
		if info, serr := m.cfg.Backend.Stat(p, rel); serr == nil {
			freed = info.Size
			existed = true
		}
	}
	if err := m.cfg.Backend.Unlink(p, rel); err != nil {
		m.errInc()
		return err
	}
	if existed {
		m.releaseBytes(freed)
		m.releaseInode()
	}
	return nil
}

// Rename implements Backend. Both paths must resolve to the same mount:
// rename is atomic only within one backend.
func (ns *Namespace) Rename(p *sim.Proc, oldPath, newPath string) error {
	mOld, relOld, err := ns.resolve(oldPath)
	if err != nil {
		return err
	}
	mNew, relNew, err := ns.resolve(newPath)
	if err != nil {
		return err
	}
	if mOld == nil || mNew == nil {
		return ErrNotExist
	}
	if mOld != mNew {
		mOld.errInc()
		return ErrCrossMount
	}
	m := mOld
	m.opInc("rename")
	if err := m.fault(p, "rename"); err != nil {
		m.errInc()
		return err
	}
	if m.cfg.ReadOnly {
		m.errInc()
		return ErrPerm
	}
	if err := m.admit("rename", 0); err != nil {
		m.errInc()
		return err
	}
	if err := m.cfg.Backend.Rename(p, relOld, relNew); err != nil {
		m.errInc()
		return err
	}
	return nil
}

// ReadDir implements Backend: the owning backend's listing merged with
// synthetic entries for mounts rooted below dir. A mount entry shadows
// a backend entry of the same name, the directory-level view of nested
// mounts shadowing their parents.
func (ns *Namespace) ReadDir(p *sim.Proc, dir string) ([]FileInfo, error) {
	m, rel, err := ns.resolve(dir)
	if err != nil {
		return nil, err
	}
	var entries []FileInfo
	if m != nil {
		m.opInc("readdir")
		if err := m.fault(p, "readdir"); err != nil {
			m.errInc()
			return nil, err
		}
		if err := m.admit("readdir", 0); err != nil {
			m.errInc()
			return nil, err
		}
		dir = joinNS(m.path, rel) // normalized
		backendEntries, rerr := m.cfg.Backend.ReadDir(p, rel)
		if rerr != nil {
			// A directory that exists only as the parent of deeper
			// mounts has no backend presence; synthesize it.
			if !ns.isMountAncestor(dir) {
				m.errInc()
				return nil, rerr
			}
		}
		for _, e := range backendEntries {
			e.Path = joinNS(m.path, e.Path)
			entries = append(entries, e)
		}
	} else {
		dir = rel // resolve already normalized it
		if !ns.isMountAncestor(dir) {
			return nil, ErrNotExist
		}
	}
	prefix := dir
	if prefix != "/" {
		prefix += "/"
	}
	for _, name := range ns.mountChildNames(dir) {
		syn := FileInfo{Path: prefix + name, IsDir: true, Mode: 0o755}
		replaced := false
		for i := range entries {
			if entries[i].Path == syn.Path {
				entries[i] = syn
				replaced = true
				break
			}
		}
		if !replaced {
			entries = append(entries, syn)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Path < entries[j].Path })
	return entries, nil
}

// Stat implements Backend.
func (ns *Namespace) Stat(p *sim.Proc, path string) (FileInfo, error) {
	m, rel, err := ns.resolve(path)
	if err != nil {
		return FileInfo{}, err
	}
	if m == nil {
		if ns.isMountAncestor(rel) {
			return FileInfo{Path: rel, IsDir: true, Mode: 0o755}, nil
		}
		return FileInfo{}, ErrNotExist
	}
	m.opInc("stat")
	if err := m.fault(p, "stat"); err != nil {
		m.errInc()
		return FileInfo{}, err
	}
	if err := m.admit("stat", 0); err != nil {
		m.errInc()
		return FileInfo{}, err
	}
	info, err := m.cfg.Backend.Stat(p, rel)
	if err != nil {
		full := joinNS(m.path, rel)
		if ns.isMountAncestor(full) {
			return FileInfo{Path: full, IsDir: true, Mode: 0o755}, nil
		}
		m.errInc()
		return FileInfo{}, err
	}
	info.Path = joinNS(m.path, info.Path)
	return info, nil
}

// mountFile wraps a backend file handle with quota enforcement and
// per-mount byte telemetry. Growth is tracked per handle against the
// size observed at open; concurrent writers to the same file through
// separate handles may over-count growth (quota accounting is
// conservative, never under-counting).
type mountFile struct {
	File
	m    *Mount
	pos  int64
	size int64
}

func (f *mountFile) Write(p *sim.Proc, data []byte) (int, error) {
	n, err := f.write(p, int64(len(data)), func() (int64, error) {
		n, err := f.File.Write(p, data)
		return int64(n), err
	})
	return int(n), err
}

func (f *mountFile) WriteN(p *sim.Proc, n int64) (int64, error) {
	return f.write(p, n, func() (int64, error) { return f.File.WriteN(p, n) })
}

func (f *mountFile) write(p *sim.Proc, n int64, do func() (int64, error)) (int64, error) {
	if err := f.m.fault(p, "write"); err != nil {
		f.m.errInc()
		return 0, err
	}
	if n < 0 {
		n = 0
	}
	growth := f.pos + n - f.size
	if growth < 0 {
		growth = 0
	}
	if err := f.m.reserveBytes(growth); err != nil {
		f.m.errInc()
		return 0, err
	}
	// Admission after the quota reservation: at quota AND over the
	// admission limit must classify as ErrNoSpace, not ErrAdmission.
	if err := f.m.admit("write", n); err != nil {
		f.m.releaseBytes(growth)
		f.m.errInc()
		return 0, err
	}
	wrote, err := do()
	if wrote < 0 {
		wrote = 0
	}
	end := f.pos + wrote
	actual := end - f.size
	if actual < 0 {
		actual = 0
	}
	if actual < growth {
		f.m.releaseBytes(growth - actual)
	}
	f.pos = end
	if end > f.size {
		f.size = end
	}
	if wrote > 0 {
		f.m.bytesWritten.Add(uint64(wrote))
	}
	if err != nil {
		f.m.errInc()
	}
	return wrote, err
}

func (f *mountFile) Read(p *sim.Proc, buf []byte) (int, error) {
	if err := f.m.fault(p, "read"); err != nil {
		f.m.errInc()
		return 0, err
	}
	if err := f.m.admit("read", int64(len(buf))); err != nil {
		f.m.errInc()
		return 0, err
	}
	n, err := f.File.Read(p, buf)
	f.noteRead(int64(n))
	return n, err
}

func (f *mountFile) ReadN(p *sim.Proc, n int64) (int64, error) {
	if err := f.m.fault(p, "read"); err != nil {
		f.m.errInc()
		return 0, err
	}
	if err := f.m.admit("read", n); err != nil {
		f.m.errInc()
		return 0, err
	}
	got, err := f.File.ReadN(p, n)
	f.noteRead(got)
	return got, err
}

func (f *mountFile) noteRead(n int64) {
	if n > 0 {
		f.pos += n
		f.m.bytesRead.Add(uint64(n))
	}
}

func (f *mountFile) SeekTo(offset int64) error {
	if err := f.File.SeekTo(offset); err != nil {
		return err
	}
	if offset < 0 {
		offset = 0
	}
	f.pos = offset
	return nil
}

var (
	_ Backend = (*Namespace)(nil)
	_ Client  = (*Namespace)(nil)
)
