package vfs

import (
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/sim"
)

func TestAccountCharging(t *testing.T) {
	env := sim.NewEnv()
	var a Account
	env.Go("t", func(p *sim.Proc) {
		a.Charge(p, User, 10*time.Microsecond)
		a.Charge(p, Kernel, 30*time.Microsecond)
		a.Charge(p, IOWait, 60*time.Microsecond)
		a.Charge(p, User, -5) // negative: ignored
	})
	end, err := env.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 100*time.Microsecond {
		t.Errorf("charges advanced clock by %v, want 100µs", end)
	}
	u, k, io := a.Totals()
	if u != 10*time.Microsecond || k != 30*time.Microsecond || io != 60*time.Microsecond {
		t.Errorf("totals = %v/%v/%v", u, k, io)
	}
	// CPU-based kernel fraction: 30/(10+30) = 0.75, IOWait excluded.
	if got := a.KernelFraction(); got != 0.75 {
		t.Errorf("KernelFraction = %v, want 0.75", got)
	}
	a.Reset()
	if a.KernelFraction() != 0 {
		t.Error("Reset did not clear account")
	}
}

func TestAttributeWithoutSleep(t *testing.T) {
	var a Account
	a.Attribute(Kernel, time.Second)
	a.Attribute(Kernel, -time.Second) // ignored
	_, k, _ := a.Totals()
	if k != time.Second {
		t.Errorf("kernel = %v", k)
	}
}

// memFile is a minimal File for exercising the helpers.
type memFile struct {
	data []byte
	pos  int64
}

func (f *memFile) Write(p *sim.Proc, data []byte) (int, error) {
	f.data = append(f.data[:f.pos], data...)
	f.pos += int64(len(data))
	return len(data), nil
}
func (f *memFile) WriteN(p *sim.Proc, n int64) (int64, error) {
	f.pos += n
	if f.pos > int64(len(f.data)) {
		f.data = append(f.data, make([]byte, f.pos-int64(len(f.data)))...)
	}
	return n, nil
}
func (f *memFile) Read(p *sim.Proc, buf []byte) (int, error) {
	n := copy(buf, f.data[f.pos:])
	f.pos += int64(n)
	return n, nil
}
func (f *memFile) ReadN(p *sim.Proc, n int64) (int64, error) {
	rem := int64(len(f.data)) - f.pos
	if n > rem {
		n = rem
	}
	f.pos += n
	return n, nil
}
func (f *memFile) SeekTo(off int64) error  { f.pos = off; return nil }
func (f *memFile) Fsync(p *sim.Proc) error { return nil }
func (f *memFile) Close(p *sim.Proc) error { return nil }

func TestWriteAllChunks(t *testing.T) {
	env := sim.NewEnv()
	f := &memFile{}
	env.Go("t", func(p *sim.Proc) {
		payload := make([]byte, 1000)
		for i := range payload {
			payload[i] = byte(i)
		}
		n, err := WriteAll(p, f, payload, 64)
		if err != nil || n != 1000 {
			t.Errorf("WriteAll = %d, %v", n, err)
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(f.data) != 1000 {
		t.Errorf("stored %d bytes", len(f.data))
	}
}

func TestWriteAllNAndReadAllN(t *testing.T) {
	env := sim.NewEnv()
	f := &memFile{}
	env.Go("t", func(p *sim.Proc) {
		n, err := WriteAllN(p, f, 1<<20, 4096)
		if err != nil || n != 1<<20 {
			t.Errorf("WriteAllN = %d, %v", n, err)
		}
		f.SeekTo(0)
		got, err := ReadAllN(p, f, 1<<20, 4096)
		if err != nil || got != 1<<20 {
			t.Errorf("ReadAllN = %d, %v", got, err)
		}
		// Reading past EOF stops at the available bytes.
		f.SeekTo(0)
		got, err = ReadAllN(p, f, 2<<20, 4096)
		if err != nil || got != 1<<20 {
			t.Errorf("ReadAllN past EOF = %d, %v", got, err)
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
