// Package vfs defines the filesystem interface every storage system in
// this repository implements — NVMe-CR's microfs as well as the OrangeFS,
// GlusterFS, Crail, ext4/XFS, and Lustre baselines — plus the time
// accounting (user/kernel/IO) used to reproduce the paper's kernel-time
// measurements.
package vfs

import (
	"errors"
	"time"

	"github.com/nvme-cr/nvmecr/internal/sim"
)

// Error set shared by all filesystem implementations.
var (
	ErrNotExist = errors.New("vfs: file does not exist")
	ErrExist    = errors.New("vfs: file already exists")
	ErrIsDir    = errors.New("vfs: is a directory")
	ErrNotDir   = errors.New("vfs: not a directory")
	ErrClosed   = errors.New("vfs: file already closed")
	ErrReadOnly = errors.New("vfs: file not open for writing")
	ErrNoSpace  = errors.New("vfs: no space left on device")
	ErrPerm     = errors.New("vfs: permission denied")
)

// FileInfo describes a file.
type FileInfo struct {
	Path  string
	Size  int64
	Inode uint64
	Mode  uint32
	IsDir bool
}

// OpenFlags selects the access mode for Open.
type OpenFlags int

const (
	// ReadOnly opens for reading.
	ReadOnly OpenFlags = iota
	// WriteOnly opens for writing (appending or overwriting).
	WriteOnly
)

// Client is one process's view of a storage system. Methods block the
// calling simulation process for the modeled duration of the operation.
type Client interface {
	// Mkdir creates a directory.
	Mkdir(p *sim.Proc, path string, mode uint32) error
	// Create creates and opens a new file for writing.
	Create(p *sim.Proc, path string, mode uint32) (File, error)
	// Open opens an existing file.
	Open(p *sim.Proc, path string, flags OpenFlags) (File, error)
	// Unlink removes a file.
	Unlink(p *sim.Proc, path string) error
	// Rename atomically moves a file (the write-to-temp-then-rename
	// checkpoint commit idiom).
	Rename(p *sim.Proc, oldPath, newPath string) error
	// ReadDir lists the directory's immediate children in name order
	// (restart-time checkpoint discovery).
	ReadDir(p *sim.Proc, path string) ([]FileInfo, error)
	// Stat describes a file.
	Stat(p *sim.Proc, path string) (FileInfo, error)
	// Account exposes the client's time accounting.
	Account() *Account
}

// File is an open file handle.
type File interface {
	// Write appends/overwrites real bytes at the current position.
	Write(p *sim.Proc, data []byte) (int, error)
	// WriteN writes n synthetic bytes (timing-only workloads at
	// benchmark scale, where materializing payloads would be wasteful).
	WriteN(p *sim.Proc, n int64) (int64, error)
	// Read reads up to len(buf) bytes into buf at the current
	// position, returning the count (0 at EOF).
	Read(p *sim.Proc, buf []byte) (int, error)
	// ReadN reads n synthetic bytes, returning the count actually
	// available.
	ReadN(p *sim.Proc, n int64) (int64, error)
	// SeekTo sets the absolute position for the next Read/Write.
	SeekTo(offset int64) error
	// Fsync makes all written data durable.
	Fsync(p *sim.Proc) error
	// Close releases the handle.
	Close(p *sim.Proc) error
}

// TimeClass labels where modeled time is spent, reproducing the paper's
// "percentage of benchmark time in the kernel" analysis (Figure 7c:
// 10% for NVMe-CR versus 76.5%/79% for XFS/ext4).
type TimeClass int

const (
	// User is time in userspace software (SPDK submission, B+Tree,
	// log formatting).
	User TimeClass = iota
	// Kernel is time inside the OS (traps, VFS, block layer,
	// interrupts, page-cache copies).
	Kernel
	// IOWait is time blocked on device or fabric service.
	IOWait
)

// Account accumulates classified virtual time for one client.
type Account struct {
	user   time.Duration
	kernel time.Duration
	iowait time.Duration
}

// Charge sleeps the process for d and attributes it to the class.
func (a *Account) Charge(p *sim.Proc, class TimeClass, d time.Duration) {
	if d <= 0 {
		return
	}
	p.Sleep(d)
	a.Attribute(class, d)
}

// Attribute records time already spent (used when the wait happened
// inside a shared resource).
func (a *Account) Attribute(class TimeClass, d time.Duration) {
	if d <= 0 {
		return
	}
	switch class {
	case User:
		a.user += d
	case Kernel:
		a.kernel += d
	case IOWait:
		a.iowait += d
	}
}

// Totals returns the accumulated user, kernel, and IO-wait time.
func (a *Account) Totals() (user, kernel, iowait time.Duration) {
	return a.user, a.kernel, a.iowait
}

// KernelFraction returns the kernel share of CPU time,
// kernel / (user + kernel). Time blocked on devices or locks (IOWait)
// is excluded, matching a CPU-sampling measurement of "% time in the
// kernel" like the paper's.
func (a *Account) KernelFraction() float64 {
	cpu := a.user + a.kernel
	if cpu <= 0 {
		return 0
	}
	return float64(a.kernel) / float64(cpu)
}

// Reset clears the account.
func (a *Account) Reset() { a.user, a.kernel, a.iowait = 0, 0, 0 }

// WriteAll writes data through f in chunkBytes-sized application write
// calls, the way checkpoint dumps issue sequential write syscalls.
func WriteAll(p *sim.Proc, f File, data []byte, chunkBytes int64) (int64, error) {
	if chunkBytes <= 0 {
		chunkBytes = int64(len(data))
	}
	var written int64
	for off := int64(0); off < int64(len(data)); off += chunkBytes {
		end := off + chunkBytes
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		n, err := f.Write(p, data[off:end])
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// WriteAllN writes n synthetic bytes in chunkBytes-sized calls.
func WriteAllN(p *sim.Proc, f File, n, chunkBytes int64) (int64, error) {
	if chunkBytes <= 0 {
		chunkBytes = n
	}
	var written int64
	for written < n {
		c := chunkBytes
		if written+c > n {
			c = n - written
		}
		m, err := f.WriteN(p, c)
		written += m
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadAllN reads n synthetic bytes in chunkBytes-sized calls.
func ReadAllN(p *sim.Proc, f File, n, chunkBytes int64) (int64, error) {
	if chunkBytes <= 0 {
		chunkBytes = n
	}
	var read int64
	for read < n {
		c := chunkBytes
		if read+c > n {
			c = n - read
		}
		m, err := f.ReadN(p, c)
		read += m
		if err != nil {
			return read, err
		}
		if m == 0 {
			break
		}
	}
	return read, nil
}
