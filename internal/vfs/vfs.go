// Package vfs defines the filesystem interface every storage system in
// this repository implements — NVMe-CR's microfs as well as the OrangeFS,
// GlusterFS, Crail, ext4/XFS, and Lustre baselines — plus the mount-based
// Namespace that composes several backends into one multi-tenant tree,
// and the time accounting (user/kernel/IO) used to reproduce the paper's
// kernel-time measurements.
package vfs

import (
	"errors"
	"strings"
	"time"

	"github.com/nvme-cr/nvmecr/internal/sim"
)

// Error set shared by all filesystem implementations.
var (
	ErrNotExist = errors.New("vfs: file does not exist")
	ErrExist    = errors.New("vfs: file already exists")
	ErrIsDir    = errors.New("vfs: is a directory")
	ErrNotDir   = errors.New("vfs: not a directory")
	ErrClosed   = errors.New("vfs: file already closed")
	ErrReadOnly = errors.New("vfs: file not open for writing")
	// ErrWriteOnly is returned by Read on a handle opened O_WRONLY.
	ErrWriteOnly = errors.New("vfs: file not open for reading")
	ErrNoSpace   = errors.New("vfs: no space left on device")
	ErrPerm      = errors.New("vfs: permission denied")
	// ErrCrossMount is returned by Namespace.Rename when the two paths
	// resolve to different mounts: rename is atomic only within one
	// backend, so moving data across mounts must be an explicit
	// copy+unlink in the application.
	ErrCrossMount = errors.New("vfs: rename across mount boundary")
)

// FileInfo describes a file.
type FileInfo struct {
	Path  string
	Size  int64
	Inode uint64
	Mode  uint32
	IsDir bool
	// ModTime is the file's last modification instant in virtual time
	// (time since simulation start). Restart-time checkpoint discovery
	// orders candidates by recency with it instead of relying on path
	// naming conventions. Backends that do not track modification times
	// leave it zero.
	ModTime time.Duration
}

// OpenFlags is the POSIX-style open flag bitmask: an access mode
// (O_RDONLY, O_WRONLY, or O_RDWR) OR-ed with zero or more of O_CREATE,
// O_EXCL, O_TRUNC, and O_APPEND. The values match the Linux ABI so the
// POSIX interception layer passes flags through unmodified.
type OpenFlags int

const (
	// O_RDONLY opens for reading only.
	O_RDONLY OpenFlags = 0x0
	// O_WRONLY opens for writing only.
	O_WRONLY OpenFlags = 0x1
	// O_RDWR opens for reading and writing.
	O_RDWR OpenFlags = 0x2
	// O_ACCMODE masks the access mode out of a flag set.
	O_ACCMODE OpenFlags = 0x3
	// O_CREATE creates the file (with the Open call's mode argument)
	// when it does not exist.
	O_CREATE OpenFlags = 0x40
	// O_EXCL, with O_CREATE, fails with ErrExist when the file already
	// exists — the exclusive-create semantics of the old Create entry
	// point.
	O_EXCL OpenFlags = 0x80
	// O_TRUNC truncates an existing file to length zero when the handle
	// is writable.
	O_TRUNC OpenFlags = 0x200
	// O_APPEND positions the handle at end-of-file on open.
	O_APPEND OpenFlags = 0x400
)

// Access returns the access-mode bits (O_RDONLY, O_WRONLY, or O_RDWR).
func (f OpenFlags) Access() OpenFlags { return f & O_ACCMODE }

// Has reports whether every bit of flag is set.
func (f OpenFlags) Has(flag OpenFlags) bool { return f&flag == flag }

// Readable reports whether the access mode permits reads.
func (f OpenFlags) Readable() bool {
	a := f.Access()
	return a == O_RDONLY || a == O_RDWR
}

// Writable reports whether the access mode permits writes.
func (f OpenFlags) Writable() bool {
	a := f.Access()
	return a == O_WRONLY || a == O_RDWR
}

// String renders the flag set in open(2) notation.
func (f OpenFlags) String() string {
	var b strings.Builder
	switch f.Access() {
	case O_RDONLY:
		b.WriteString("O_RDONLY")
	case O_WRONLY:
		b.WriteString("O_WRONLY")
	case O_RDWR:
		b.WriteString("O_RDWR")
	default:
		b.WriteString("O_ACCMODE?")
	}
	for _, part := range []struct {
		bit  OpenFlags
		name string
	}{
		{O_CREATE, "O_CREATE"},
		{O_EXCL, "O_EXCL"},
		{O_TRUNC, "O_TRUNC"},
		{O_APPEND, "O_APPEND"},
	} {
		if f.Has(part.bit) {
			b.WriteString("|")
			b.WriteString(part.name)
		}
	}
	return b.String()
}

// Admission is the per-tenant admission-control hook a mount consults
// before dispatching an operation to its backend (internal/qos's
// *Tenant implements it). Admit must decide synchronously: nil admits
// the operation, a typed error (qos.ErrAdmission) rejects it — it must
// never block, so an over-limit tenant is told "no" immediately rather
// than hung. The mount dispatch consults quotas before admission, so a
// tenant that is simultaneously over quota and over its admission
// limit gets the quota error (ErrNoSpace), never a misclassified
// admission error; unlink is exempt so a throttled tenant can always
// free space.
type Admission interface {
	// Admit charges one operation of `bytes` payload (0 for metadata
	// operations) against the tenant's budget.
	Admit(op string, bytes int64) error
}

// Backend is one filesystem implementation: the seven operations a
// storage system must provide to serve a mount in a Namespace. Methods
// block the calling simulation process for the modeled duration of the
// operation. Paths are absolute within the backend ("/" is the backend's
// own root); the Namespace translates between namespace-absolute and
// backend-relative paths at the mount boundary.
type Backend interface {
	// Mkdir creates a directory.
	Mkdir(p *sim.Proc, path string, mode uint32) error
	// Open opens a file. With O_CREATE the file is created (using mode)
	// when absent; with O_CREATE|O_EXCL an existing file is an
	// ErrExist; with O_TRUNC a writable open truncates to zero length;
	// with O_APPEND the handle starts positioned at end-of-file.
	Open(p *sim.Proc, path string, flags OpenFlags, mode uint32) (File, error)
	// Unlink removes a file.
	Unlink(p *sim.Proc, path string) error
	// Rename atomically moves a file (the write-to-temp-then-rename
	// checkpoint commit idiom).
	Rename(p *sim.Proc, oldPath, newPath string) error
	// ReadDir lists the directory's immediate children in name order
	// (restart-time checkpoint discovery).
	ReadDir(p *sim.Proc, path string) ([]FileInfo, error)
	// Stat describes a file.
	Stat(p *sim.Proc, path string) (FileInfo, error)
}

// Client is one process's view of a storage system: a Backend plus its
// time accounting.
type Client interface {
	Backend
	// Account exposes the client's time accounting.
	Account() *Account
}

// File is an open file handle.
type File interface {
	// Write appends/overwrites real bytes at the current position.
	Write(p *sim.Proc, data []byte) (int, error)
	// WriteN writes n synthetic bytes (timing-only workloads at
	// benchmark scale, where materializing payloads would be wasteful).
	WriteN(p *sim.Proc, n int64) (int64, error)
	// Read reads up to len(buf) bytes into buf at the current
	// position, returning the count (0 at EOF).
	Read(p *sim.Proc, buf []byte) (int, error)
	// ReadN reads n synthetic bytes, returning the count actually
	// available.
	ReadN(p *sim.Proc, n int64) (int64, error)
	// SeekTo sets the absolute position for the next Read/Write.
	SeekTo(offset int64) error
	// Fsync makes all written data durable.
	Fsync(p *sim.Proc) error
	// Close releases the handle.
	Close(p *sim.Proc) error
}

// TimeClass labels where modeled time is spent, reproducing the paper's
// "percentage of benchmark time in the kernel" analysis (Figure 7c:
// 10% for NVMe-CR versus 76.5%/79% for XFS/ext4).
type TimeClass int

const (
	// User is time in userspace software (SPDK submission, B+Tree,
	// log formatting).
	User TimeClass = iota
	// Kernel is time inside the OS (traps, VFS, block layer,
	// interrupts, page-cache copies).
	Kernel
	// IOWait is time blocked on device or fabric service.
	IOWait
)

// Account accumulates classified virtual time for one client.
type Account struct {
	user   time.Duration
	kernel time.Duration
	iowait time.Duration
}

// Charge sleeps the process for d and attributes it to the class.
func (a *Account) Charge(p *sim.Proc, class TimeClass, d time.Duration) {
	if d <= 0 {
		return
	}
	p.Sleep(d)
	a.Attribute(class, d)
}

// Attribute records time already spent (used when the wait happened
// inside a shared resource).
func (a *Account) Attribute(class TimeClass, d time.Duration) {
	if d <= 0 {
		return
	}
	switch class {
	case User:
		a.user += d
	case Kernel:
		a.kernel += d
	case IOWait:
		a.iowait += d
	}
}

// Totals returns the accumulated user, kernel, and IO-wait time.
func (a *Account) Totals() (user, kernel, iowait time.Duration) {
	return a.user, a.kernel, a.iowait
}

// KernelFraction returns the kernel share of CPU time,
// kernel / (user + kernel). Time blocked on devices or locks (IOWait)
// is excluded, matching a CPU-sampling measurement of "% time in the
// kernel" like the paper's.
func (a *Account) KernelFraction() float64 {
	cpu := a.user + a.kernel
	if cpu <= 0 {
		return 0
	}
	return float64(a.kernel) / float64(cpu)
}

// Reset clears the account.
func (a *Account) Reset() { a.user, a.kernel, a.iowait = 0, 0, 0 }

// WriteAll writes data through f in chunkBytes-sized application write
// calls, the way checkpoint dumps issue sequential write syscalls.
func WriteAll(p *sim.Proc, f File, data []byte, chunkBytes int64) (int64, error) {
	if chunkBytes <= 0 {
		chunkBytes = int64(len(data))
	}
	var written int64
	for off := int64(0); off < int64(len(data)); off += chunkBytes {
		end := off + chunkBytes
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		n, err := f.Write(p, data[off:end])
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// WriteAllN writes n synthetic bytes in chunkBytes-sized calls.
func WriteAllN(p *sim.Proc, f File, n, chunkBytes int64) (int64, error) {
	if chunkBytes <= 0 {
		chunkBytes = n
	}
	var written int64
	for written < n {
		c := chunkBytes
		if written+c > n {
			c = n - written
		}
		m, err := f.WriteN(p, c)
		written += m
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadAllN reads n synthetic bytes in chunkBytes-sized calls.
func ReadAllN(p *sim.Proc, f File, n, chunkBytes int64) (int64, error) {
	if chunkBytes <= 0 {
		chunkBytes = n
	}
	var read int64
	for read < n {
		c := chunkBytes
		if read+c > n {
			c = n - read
		}
		m, err := f.ReadN(p, c)
		read += m
		if err != nil {
			return read, err
		}
		if m == 0 {
			break
		}
	}
	return read, nil
}
