package vfs

import (
	"errors"
	"sort"
	"testing"

	"github.com/nvme-cr/nvmecr/internal/faults"
	"github.com/nvme-cr/nvmecr/internal/telemetry"
)

// twoMounts builds /a on one memory backend and /a/b nested on another,
// returning (namespace, outer backend, inner backend).
func twoMounts(t *testing.T) (*Namespace, *MemBackend, *MemBackend) {
	t.Helper()
	ns := NewNamespace(nil)
	outer, inner := NewMemBackend(), NewMemBackend()
	if _, err := ns.Mount(MountConfig{Path: "/a", Backend: outer, Name: "outer"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Mount(MountConfig{Path: "/a/b", Backend: inner, Name: "inner"}); err != nil {
		t.Fatal(err)
	}
	return ns, outer, inner
}

func mustWrite(t *testing.T, ns Backend, path string, data []byte) {
	t.Helper()
	f, err := ns.Open(nil, path, O_WRONLY|O_CREATE|O_EXCL, 0o644)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	if _, err := f.Write(nil, data); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if err := f.Close(nil); err != nil {
		t.Fatal(err)
	}
}

func TestLongestPrefixWins(t *testing.T) {
	ns, outer, inner := twoMounts(t)
	// /a/b/f must land on the nested mount, /a/f on the outer one.
	mustWrite(t, ns, "/a/b/f", []byte("nested"))
	mustWrite(t, ns, "/a/f", []byte("outer"))
	if _, err := inner.Stat(nil, "/f"); err != nil {
		t.Errorf("/a/b/f should live on the inner backend at /f: %v", err)
	}
	if _, err := outer.Stat(nil, "/f"); err != nil {
		t.Errorf("/a/f should live on the outer backend at /f: %v", err)
	}
	if _, err := outer.Stat(nil, "/b/f"); err == nil {
		t.Error("/a/b/f leaked onto the outer backend")
	}
}

func TestNestedMountShadowsParent(t *testing.T) {
	ns, outer, _ := twoMounts(t)
	// Plant /b/hidden directly on the outer backend: through the
	// namespace, /a/b/* must resolve to the inner mount, so the file is
	// unreachable.
	if err := outer.Mkdir(nil, "/b", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := outer.Open(nil, "/b/hidden", O_WRONLY|O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Close(nil)
	if _, err := ns.Stat(nil, "/a/b/hidden"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Stat(/a/b/hidden) = %v, want ErrNotExist (inner mount shadows outer /b)", err)
	}
}

func TestCrossMountRenameRejected(t *testing.T) {
	ns, _, _ := twoMounts(t)
	mustWrite(t, ns, "/a/f", []byte("x"))
	if err := ns.Rename(nil, "/a/f", "/a/b/f"); !errors.Is(err, ErrCrossMount) {
		t.Fatalf("cross-mount rename = %v, want ErrCrossMount", err)
	}
	// Same-mount rename still works.
	if err := ns.Rename(nil, "/a/f", "/a/g"); err != nil {
		t.Fatalf("same-mount rename: %v", err)
	}
	if _, err := ns.Stat(nil, "/a/g"); err != nil {
		t.Fatal(err)
	}
}

func TestReadDirMergesMountEntries(t *testing.T) {
	ns, _, _ := twoMounts(t)
	mustWrite(t, ns, "/a/f", []byte("x"))
	entries, err := ns.ReadDir(nil, "/a")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, e := range entries {
		got[e.Path] = e.IsDir
	}
	if isDir, ok := got["/a/b"]; !ok || !isDir {
		t.Errorf("ReadDir(/a) = %v, want synthetic dir entry /a/b", entries)
	}
	if _, ok := got["/a/f"]; !ok {
		t.Errorf("ReadDir(/a) = %v, want backend entry /a/f", entries)
	}
	if !sort.SliceIsSorted(entries, func(i, j int) bool { return entries[i].Path < entries[j].Path }) {
		t.Errorf("ReadDir(/a) not sorted: %v", entries)
	}
	// The root is an ancestor of every mount: listing it yields the
	// synthetic /a even though no mount covers "/".
	rootEntries, err := ns.ReadDir(nil, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(rootEntries) != 1 || rootEntries[0].Path != "/a" || !rootEntries[0].IsDir {
		t.Errorf("ReadDir(/) = %v, want exactly the synthetic /a", rootEntries)
	}
}

func TestMountEntryShadowsBackendEntry(t *testing.T) {
	ns, outer, _ := twoMounts(t)
	// The outer backend also has a real file named /b; the mount entry
	// must replace it, not duplicate it.
	f, err := outer.Open(nil, "/b", O_WRONLY|O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Close(nil)
	entries, err := ns.ReadDir(nil, "/a")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if e.Path == "/a/b" {
			n++
			if !e.IsDir {
				t.Errorf("/a/b should appear as the mount's synthetic dir, got %+v", e)
			}
		}
	}
	if n != 1 {
		t.Errorf("/a/b appears %d times in ReadDir(/a), want exactly 1", n)
	}
}

func TestUncoveredPaths(t *testing.T) {
	ns, _, _ := twoMounts(t)
	if _, err := ns.Open(nil, "/elsewhere/f", O_RDONLY, 0); !errors.Is(err, ErrNotExist) {
		t.Errorf("Open uncovered = %v, want ErrNotExist", err)
	}
	// "/" is a mount ancestor: stat yields a synthetic directory, open
	// as a file fails with ErrIsDir.
	fi, err := ns.Stat(nil, "/")
	if err != nil || !fi.IsDir {
		t.Errorf("Stat(/) = %+v, %v, want synthetic dir", fi, err)
	}
	if _, err := ns.Open(nil, "/", O_RDONLY, 0); !errors.Is(err, ErrIsDir) {
		t.Errorf("Open(/) = %v, want ErrIsDir", err)
	}
	if err := ns.Unmount("/a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Stat(nil, "/a/b/f"); !errors.Is(err, ErrNotExist) {
		t.Errorf("after unmount, Stat = %v, want ErrNotExist (outer has no /b)", err)
	}
}

func TestMountValidation(t *testing.T) {
	ns := NewNamespace(nil)
	if _, err := ns.Mount(MountConfig{Path: "relative", Backend: NewMemBackend()}); err == nil {
		t.Error("relative mount path accepted")
	}
	if _, err := ns.Mount(MountConfig{Path: "/x", Backend: nil}); err == nil {
		t.Error("nil backend accepted")
	}
	if _, err := ns.Mount(MountConfig{Path: "/x", Backend: NewMemBackend()}); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Mount(MountConfig{Path: "/x", Backend: NewMemBackend()}); err == nil {
		t.Error("duplicate mount path accepted")
	}
	if err := ns.Unmount("/nope"); err == nil {
		t.Error("unmounting a non-mount succeeded")
	}
}

func TestQuotaBytes(t *testing.T) {
	ns := NewNamespace(nil)
	if _, err := ns.Mount(MountConfig{
		Path: "/t", Backend: NewMemBackend(), Name: "t", QuotaBytes: 100,
	}); err != nil {
		t.Fatal(err)
	}
	f, err := ns.Open(nil, "/t/f", O_WRONLY|O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteN(nil, 80); err != nil {
		t.Fatalf("write within quota: %v", err)
	}
	if _, err := f.WriteN(nil, 40); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("write past quota = %v, want ErrNoSpace", err)
	}
	// Rewriting existing bytes is not growth.
	if err := f.SeekTo(0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteN(nil, 80); err != nil {
		t.Fatalf("in-place rewrite: %v", err)
	}
	f.Close(nil)
	m := ns.Mounts()[0]
	if b, _ := m.Usage(); b != 80 {
		t.Errorf("bytes used = %d, want 80", b)
	}
	// O_TRUNC releases the old size.
	g, err := ns.Open(nil, "/t/f", O_WRONLY|O_TRUNC, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteN(nil, 100); err != nil {
		t.Fatalf("full-quota write after trunc: %v", err)
	}
	g.Close(nil)
	// Unlink returns the bytes.
	if err := ns.Unlink(nil, "/t/f"); err != nil {
		t.Fatal(err)
	}
	if b, i := m.Usage(); b != 0 || i != 0 {
		t.Errorf("usage after unlink = %d bytes, %d inodes, want 0, 0", b, i)
	}
}

func TestQuotaInodes(t *testing.T) {
	ns := NewNamespace(nil)
	if _, err := ns.Mount(MountConfig{
		Path: "/t", Backend: NewMemBackend(), Name: "t", QuotaInodes: 2,
	}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/t/a", "/t/b"} {
		f, err := ns.Open(nil, p, O_WRONLY|O_CREATE, 0o644)
		if err != nil {
			t.Fatalf("create %s: %v", p, err)
		}
		f.Close(nil)
	}
	if _, err := ns.Open(nil, "/t/c", O_WRONLY|O_CREATE, 0o644); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("third create = %v, want ErrNoSpace", err)
	}
	// Reopening an existing file consumes nothing.
	f, err := ns.Open(nil, "/t/a", O_RDWR, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	f.Close(nil)
	if err := ns.Unlink(nil, "/t/a"); err != nil {
		t.Fatal(err)
	}
	f, err = ns.Open(nil, "/t/c", O_WRONLY|O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("create after unlink: %v", err)
	}
	f.Close(nil)
	// Mkdir counts against the inode quota too.
	if err := ns.Mkdir(nil, "/t/d", 0o755); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("mkdir past inode quota = %v, want ErrNoSpace", err)
	}
}

func TestReadOnlyMount(t *testing.T) {
	b := NewMemBackend()
	f, err := b.Open(nil, "/f", O_WRONLY|O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(nil, []byte("frozen"))
	f.Close(nil)
	ns := NewNamespace(nil)
	if _, err := ns.Mount(MountConfig{Path: "/ro", Backend: b, ReadOnly: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Open(nil, "/ro/f", O_WRONLY, 0); !errors.Is(err, ErrPerm) {
		t.Errorf("write-open on read-only mount = %v, want ErrPerm", err)
	}
	if _, err := ns.Open(nil, "/ro/g", O_RDONLY|O_CREATE, 0o644); !errors.Is(err, ErrPerm) {
		t.Errorf("create on read-only mount = %v, want ErrPerm", err)
	}
	if err := ns.Unlink(nil, "/ro/f"); !errors.Is(err, ErrPerm) {
		t.Errorf("unlink on read-only mount = %v, want ErrPerm", err)
	}
	if err := ns.Rename(nil, "/ro/f", "/ro/g"); !errors.Is(err, ErrPerm) {
		t.Errorf("rename on read-only mount = %v, want ErrPerm", err)
	}
	g, err := ns.Open(nil, "/ro/f", O_RDONLY, 0)
	if err != nil {
		t.Fatalf("read-open on read-only mount: %v", err)
	}
	buf := make([]byte, 6)
	if n, _ := g.Read(nil, buf); string(buf[:n]) != "frozen" {
		t.Errorf("read %q, want frozen", buf[:n])
	}
	g.Close(nil)
}

func TestMountTelemetry(t *testing.T) {
	reg := telemetry.New()
	ns := NewNamespace(reg)
	if _, err := ns.Mount(MountConfig{
		Path: "/t", Backend: NewMemBackend(), Name: "ten", QuotaBytes: 10,
	}); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, ns, "/t/f", []byte("12345"))
	f, _ := ns.Open(nil, "/t/f", O_RDONLY, 0)
	f.Read(nil, make([]byte, 5))
	f.Close(nil)
	g, _ := ns.Open(nil, "/t/g", O_WRONLY|O_CREATE, 0o644)
	if _, err := g.WriteN(nil, 50); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("quota write = %v, want ErrNoSpace", err)
	}
	g.Close(nil)

	l := telemetry.Labels{"mount": "ten"}
	if v := reg.Counter("nvmecr_mount_bytes_written_total", l).Value(); v != 5 {
		t.Errorf("bytes_written = %d, want 5", v)
	}
	if v := reg.Counter("nvmecr_mount_bytes_read_total", l).Value(); v != 5 {
		t.Errorf("bytes_read = %d, want 5", v)
	}
	if v := reg.Counter("nvmecr_mount_quota_rejections_total", l).Value(); v != 1 {
		t.Errorf("quota_rejections = %d, want 1", v)
	}
	if v := reg.Counter("nvmecr_mount_ops_total", telemetry.Labels{"mount": "ten", "op": "open"}).Value(); v != 3 {
		t.Errorf("open ops = %d, want 3", v)
	}
	if v := reg.Gauge("nvmecr_mount_quota_bytes_used", l).Value(); v != 5 {
		t.Errorf("quota_bytes_used = %d, want 5", v)
	}
}

func TestPerMountFaultPlan(t *testing.T) {
	plan := faults.NewPlan(1, faults.Rule{
		Name: "fail-second-open", Layer: faults.LayerVFS, Op: "open",
		Nth: 2, Kind: faults.KindMediaError, Count: 1,
	})
	ns := NewNamespace(nil)
	if _, err := ns.Mount(MountConfig{
		Path: "/t", Backend: NewMemBackend(), Name: "t", Faults: plan,
	}); err != nil {
		t.Fatal(err)
	}
	// Mount without a plan is untouched.
	if _, err := ns.Mount(MountConfig{Path: "/clean", Backend: NewMemBackend()}); err != nil {
		t.Fatal(err)
	}
	f, err := ns.Open(nil, "/t/a", O_WRONLY|O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("first open: %v", err)
	}
	f.Close(nil)
	_, err = ns.Open(nil, "/t/b", O_WRONLY|O_CREATE, 0o644)
	if err == nil || !faults.IsInjected(err) {
		t.Fatalf("second open = %v, want injected fault", err)
	}
	if _, err := ns.Open(nil, "/t/c", O_WRONLY|O_CREATE, 0o644); err != nil {
		t.Fatalf("third open (rule exhausted): %v", err)
	}
	if f, err := ns.Open(nil, "/clean/x", O_WRONLY|O_CREATE, 0o644); err != nil {
		t.Fatalf("clean mount: %v", err)
	} else {
		f.Close(nil)
	}
}

func TestNamespaceAccountCharging(t *testing.T) {
	// The namespace satisfies Client: its account aggregates nothing by
	// itself but must exist and be stable.
	ns, _, _ := twoMounts(t)
	if ns.Account() == nil || ns.Account() != ns.Account() {
		t.Fatal("Account must return a stable non-nil pointer")
	}
}

// TestMountStats covers the aggregate per-mount summary, including the
// registry-less path the health engine's tenant objectives rely on.
func TestMountStats(t *testing.T) {
	for _, withReg := range []bool{true, false} {
		var reg *telemetry.Registry
		if withReg {
			reg = telemetry.New()
		}
		ns := NewNamespace(reg)
		m, err := ns.Mount(MountConfig{
			Path: "/t", Backend: NewMemBackend(), QuotaBytes: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		f, err := ns.Open(nil, "/t/a", O_RDWR|O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(nil, []byte("12345")); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(nil, []byte("too much")); err == nil {
			t.Fatal("quota breach not rejected")
		}
		f.Close(nil)
		if _, err := ns.Stat(nil, "/t/a"); err != nil {
			t.Fatal(err)
		}

		st := m.Stats()
		if st.Ops < 2 {
			t.Errorf("withReg=%v: Ops = %d, want >= 2 (open+stat)", withReg, st.Ops)
		}
		if st.QuotaRejections != 1 {
			t.Errorf("withReg=%v: QuotaRejections = %d, want 1", withReg, st.QuotaRejections)
		}
		if st.BytesWritten != 5 {
			t.Errorf("withReg=%v: BytesWritten = %d, want 5", withReg, st.BytesWritten)
		}
		if st.BytesUsed != 5 || st.InodesUsed != 1 {
			t.Errorf("withReg=%v: usage = %d bytes / %d inodes, want 5/1", withReg, st.BytesUsed, st.InodesUsed)
		}
		if withReg {
			// The aggregate must agree with the labeled per-op series.
			var snap telemetry.RegistrySnapshot
			reg.Snapshot(&snap)
			sum := snap.SumCounters("nvmecr_mount_ops_total", telemetry.Labels{"mount": "/t"})
			if sum != st.Ops {
				t.Errorf("per-op sum %d != aggregate %d", sum, st.Ops)
			}
		}
	}
}
