// Package btree implements an in-memory B+Tree mapping string keys to
// uint64 values. The NVMe-CR control plane keeps one per runtime
// instance, indexing file and directory names to their root inodes
// (DRAM-resident metadata with provenance logging for durability).
package btree

import "sort"

// degree is the maximum number of children of an internal node. Leaves
// hold up to degree-1 keys.
const degree = 32

// Tree is a B+Tree. The zero value is not usable; call New.
type Tree struct {
	root   node
	height int
	length int
}

// insertResult reports what happened during a recursive insert.
type insertResult struct {
	fresh    bool   // key was not previously present
	split    bool   // the node split
	promoted string // separator key to add to the parent
	right    node   // new right sibling
}

type node interface {
	insert(key string, val uint64) insertResult
	get(key string) (uint64, bool)
	del(key string) bool
	firstLeaf() *leaf
}

// New returns an empty tree.
func New() *Tree { return &Tree{root: &leaf{}} }

// Len returns the number of keys stored.
func (t *Tree) Len() int { return t.length }

// Height returns the tree height (1 for a lone leaf).
func (t *Tree) Height() int { return t.height + 1 }

// Insert stores val under key, replacing any existing value. It reports
// whether the key was newly inserted.
func (t *Tree) Insert(key string, val uint64) bool {
	res := t.root.insert(key, val)
	if res.split {
		t.root = &inner{keys: []string{res.promoted}, children: []node{t.root, res.right}}
		t.height++
	}
	if res.fresh {
		t.length++
	}
	return res.fresh
}

// Get returns the value stored under key.
func (t *Tree) Get(key string) (uint64, bool) { return t.root.get(key) }

// Delete removes key, reporting whether it was present. Nodes are not
// rebalanced on delete: checkpoint namespaces are ephemeral and deletes
// are rare, so space is reclaimed when the runtime checkpoints and
// rebuilds its metadata.
func (t *Tree) Delete(key string) bool {
	if t.root.del(key) {
		t.length--
		return true
	}
	return false
}

// AscendRange calls fn for each key k with from <= k < to (to == ""
// meaning unbounded), in order, until fn returns false.
func (t *Tree) AscendRange(from, to string, fn func(key string, val uint64) bool) {
	l := t.root.firstLeaf()
	for l != nil {
		for i, k := range l.keys {
			if k < from {
				continue
			}
			if to != "" && k >= to {
				return
			}
			if !fn(k, l.vals[i]) {
				return
			}
		}
		l = l.next
	}
}

// Ascend calls fn for every key in order until fn returns false.
func (t *Tree) Ascend(fn func(key string, val uint64) bool) {
	t.AscendRange("", "", fn)
}

// FootprintBytes estimates the DRAM footprint of the tree (keys, values,
// and node overhead), used for the paper's Table I metadata accounting.
func (t *Tree) FootprintBytes() int64 {
	var total int64
	l := t.root.firstLeaf()
	for l != nil {
		total += 48 // node header + next pointer
		for _, k := range l.keys {
			total += int64(len(k)) + 16 + 8 // string header + value
		}
		l = l.next
	}
	// Internal nodes add roughly 1/degree of the leaf footprint.
	return total + total/int64(degree)
}

// leaf is a leaf node: sorted keys with parallel values and a next
// pointer for range scans.
type leaf struct {
	keys []string
	vals []uint64
	next *leaf
}

func (l *leaf) firstLeaf() *leaf { return l }

func (l *leaf) search(key string) (int, bool) {
	i := sort.SearchStrings(l.keys, key)
	return i, i < len(l.keys) && l.keys[i] == key
}

func (l *leaf) get(key string) (uint64, bool) {
	if i, ok := l.search(key); ok {
		return l.vals[i], true
	}
	return 0, false
}

func (l *leaf) del(key string) bool {
	i, ok := l.search(key)
	if !ok {
		return false
	}
	l.keys = append(l.keys[:i], l.keys[i+1:]...)
	l.vals = append(l.vals[:i], l.vals[i+1:]...)
	return true
}

func (l *leaf) insert(key string, val uint64) insertResult {
	i, ok := l.search(key)
	if ok {
		l.vals[i] = val
		return insertResult{}
	}
	l.keys = append(l.keys, "")
	copy(l.keys[i+1:], l.keys[i:])
	l.keys[i] = key
	l.vals = append(l.vals, 0)
	copy(l.vals[i+1:], l.vals[i:])
	l.vals[i] = val
	if len(l.keys) < degree {
		return insertResult{fresh: true}
	}
	// Split.
	mid := len(l.keys) / 2
	right := &leaf{
		keys: append([]string(nil), l.keys[mid:]...),
		vals: append([]uint64(nil), l.vals[mid:]...),
		next: l.next,
	}
	l.keys = l.keys[:mid:mid]
	l.vals = l.vals[:mid:mid]
	l.next = right
	return insertResult{fresh: true, split: true, promoted: right.keys[0], right: right}
}

// inner is an internal node: keys[i] is the smallest key reachable in
// children[i+1].
type inner struct {
	keys     []string
	children []node
}

func (n *inner) firstLeaf() *leaf { return n.children[0].firstLeaf() }

// childIndex returns the child that may contain key.
func (n *inner) childIndex(key string) int {
	return sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
}

func (n *inner) get(key string) (uint64, bool) {
	return n.children[n.childIndex(key)].get(key)
}

func (n *inner) del(key string) bool {
	return n.children[n.childIndex(key)].del(key)
}

func (n *inner) insert(key string, val uint64) insertResult {
	ci := n.childIndex(key)
	res := n.children[ci].insert(key, val)
	if !res.split {
		return res
	}
	// Add the promoted separator and new child after position ci.
	n.keys = append(n.keys, "")
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = res.promoted
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = res.right
	if len(n.children) <= degree {
		return insertResult{fresh: res.fresh}
	}
	// Split this internal node.
	mid := len(n.keys) / 2
	promoted := n.keys[mid]
	right := &inner{
		keys:     append([]string(nil), n.keys[mid+1:]...),
		children: append([]node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return insertResult{fresh: res.fresh, split: true, promoted: promoted, right: right}
}
