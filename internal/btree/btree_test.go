package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if _, ok := tr.Get("x"); ok {
		t.Error("Get on empty tree found a key")
	}
	if tr.Delete("x") {
		t.Error("Delete on empty tree reported success")
	}
}

func TestInsertGet(t *testing.T) {
	tr := New()
	if !tr.Insert("alpha", 1) {
		t.Error("first insert not fresh")
	}
	if tr.Insert("alpha", 2) {
		t.Error("overwrite reported fresh")
	}
	v, ok := tr.Get("alpha")
	if !ok || v != 2 {
		t.Errorf("Get = %d, %v", v, ok)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestManyInsertionsSplit(t *testing.T) {
	tr := New()
	const n = 10000
	for i := 0; i < n; i++ {
		tr.Insert(fmt.Sprintf("key%06d", i), uint64(i))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if tr.Height() < 3 {
		t.Errorf("Height = %d, expected splits to raise it", tr.Height())
	}
	for i := 0; i < n; i += 97 {
		k := fmt.Sprintf("key%06d", i)
		v, ok := tr.Get(k)
		if !ok || v != uint64(i) {
			t.Fatalf("Get(%s) = %d, %v", k, v, ok)
		}
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Insert(fmt.Sprintf("k%04d", i), uint64(i))
	}
	for i := 0; i < 1000; i += 2 {
		if !tr.Delete(fmt.Sprintf("k%04d", i)) {
			t.Fatalf("Delete k%04d failed", i)
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d, want 500", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		_, ok := tr.Get(fmt.Sprintf("k%04d", i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(k%04d) present=%v, want %v", i, ok, want)
		}
	}
}

func TestAscendOrder(t *testing.T) {
	tr := New()
	keys := []string{"pear", "apple", "mango", "banana", "cherry"}
	for i, k := range keys {
		tr.Insert(k, uint64(i))
	}
	var got []string
	tr.Ascend(func(k string, v uint64) bool {
		got = append(got, k)
		return true
	})
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("Ascend visited %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(fmt.Sprintf("k%02d", i), uint64(i))
	}
	var got []uint64
	tr.AscendRange("k10", "k15", func(k string, v uint64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 5 {
		t.Fatalf("range returned %d keys, want 5: %v", len(got), got)
	}
	for i, v := range got {
		if v != uint64(10+i) {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(fmt.Sprintf("k%02d", i), uint64(i))
	}
	count := 0
	tr.Ascend(func(k string, v uint64) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Errorf("visited %d keys after early stop, want 7", count)
	}
}

func TestFootprintGrowsWithContent(t *testing.T) {
	tr := New()
	empty := tr.FootprintBytes()
	for i := 0; i < 5000; i++ {
		tr.Insert(fmt.Sprintf("checkpoint/rank%05d/file.dat", i), uint64(i))
	}
	full := tr.FootprintBytes()
	if full <= empty {
		t.Errorf("footprint did not grow: %d -> %d", empty, full)
	}
	// Roughly: 5000 keys x (~28 bytes + 24 overhead) ~ 260 KB.
	if full < 100_000 || full > 1_000_000 {
		t.Errorf("footprint = %d bytes, outside plausible range", full)
	}
}

// TestAgainstMapModel drives random operations against a map reference.
func TestAgainstMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New()
	ref := map[string]uint64{}
	for op := 0; op < 20000; op++ {
		k := fmt.Sprintf("k%03d", rng.Intn(500))
		switch rng.Intn(4) {
		case 0, 1: // insert
			v := rng.Uint64()
			_, existed := ref[k]
			fresh := tr.Insert(k, v)
			if fresh == existed {
				t.Fatalf("op %d: Insert(%s) fresh=%v but existed=%v", op, k, fresh, existed)
			}
			ref[k] = v
		case 2: // get
			v, ok := tr.Get(k)
			rv, rok := ref[k]
			if ok != rok || (ok && v != rv) {
				t.Fatalf("op %d: Get(%s) = %d,%v; want %d,%v", op, k, v, ok, rv, rok)
			}
		case 3: // delete
			_, existed := ref[k]
			if got := tr.Delete(k); got != existed {
				t.Fatalf("op %d: Delete(%s) = %v, want %v", op, k, got, existed)
			}
			delete(ref, k)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, tr.Len(), len(ref))
		}
	}
	// Final sweep: iteration must match the sorted reference.
	var want []string
	for k := range ref {
		want = append(want, k)
	}
	sort.Strings(want)
	var got []string
	tr.Ascend(func(k string, v uint64) bool {
		got = append(got, k)
		if ref[k] != v {
			t.Fatalf("Ascend: %s = %d, want %d", k, v, ref[k])
		}
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Ascend visited %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ascend[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

// Property: inserting any set of keys yields sorted, deduplicated
// iteration.
func TestPropertySortedIteration(t *testing.T) {
	f := func(keys []string) bool {
		tr := New()
		uniq := map[string]bool{}
		for _, k := range keys {
			tr.Insert(k, 1)
			uniq[k] = true
		}
		if tr.Len() != len(uniq) {
			return false
		}
		prev := ""
		first := true
		okOrder := true
		n := 0
		tr.Ascend(func(k string, v uint64) bool {
			if !first && k <= prev {
				okOrder = false
			}
			prev, first = k, false
			n++
			return true
		})
		return okOrder && n == len(uniq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: delete after insert leaves the tree exactly as before for
// disjoint keys.
func TestPropertyInsertDeleteInverse(t *testing.T) {
	f := func(base []string, extra string) bool {
		tr := New()
		inBase := false
		for _, k := range base {
			tr.Insert(k, 7)
			if k == extra {
				inBase = true
			}
		}
		if inBase {
			return true // not disjoint; skip
		}
		before := tr.Len()
		tr.Insert(extra, 9)
		tr.Delete(extra)
		if tr.Len() != before {
			return false
		}
		_, ok := tr.Get(extra)
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New()
	for i := 0; i < b.N; i++ {
		tr.Insert(fmt.Sprintf("key%09d", i), uint64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Insert(fmt.Sprintf("key%09d", i), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(fmt.Sprintf("key%09d", i%n))
	}
}
