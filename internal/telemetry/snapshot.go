package telemetry

import "time"

// This file defines the unified snapshot surface: every component that
// reports per-queue-pair activity (initiator pools, targets) returns
// these types, with one naming convention — Commands, Errors, Retries,
// Reconnects — instead of each package inventing its own stats struct.

// LatencySnapshot summarizes a latency histogram at one instant. P999
// is bucket-interpolated like the others — fine for dashboards; tail
// assertions in tests use exact sample quantiles instead (the QoS
// campaign runner keeps raw wall-clock samples for that reason).
type LatencySnapshot struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	P999  time.Duration
}

// HostQPSnapshot is the initiator-side view of one queue pair (one
// slot of a HostPool, or a standalone Host as slot 0).
type HostQPSnapshot struct {
	ID       int
	Healthy  bool
	InFlight int

	Commands   uint64
	Errors     uint64
	Retries    uint64
	Reconnects uint64
	BytesOut   uint64 // payload sent to the target (writes)
	BytesIn    uint64 // payload received from the target (reads)

	Latency LatencySnapshot
}

// TargetQPSnapshot is the target-side view of one accepted queue pair.
type TargetQPSnapshot struct {
	ID       int
	Remote   string
	NSID     uint32
	Commands uint64
	Errors   uint64
	BytesIn  uint64
	BytesOut uint64
}

// TargetSnapshot aggregates a target's activity: totals plus the live
// queue pairs, ordered by ID.
type TargetSnapshot struct {
	Commands uint64
	Errors   uint64
	BytesIn  uint64
	BytesOut uint64

	Latency    LatencySnapshot
	QueuePairs []TargetQPSnapshot
}
