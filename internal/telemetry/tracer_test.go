package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestTracerJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SpanVirt("microfs.write", 3, 10*time.Microsecond, 25*time.Microsecond, map[string]any{"bytes": 4096})
	tr.SpanWall("nvmeof.write", -1, time.Unix(100, 0), 2*time.Millisecond, nil)
	tr.Emit(Event{Name: "harness.experiment", Attrs: map[string]any{"id": "fig7b"}})
	if got := tr.Events(); got != 3 {
		t.Fatalf("Events = %d, want 3", got)
	}
	sc := bufio.NewScanner(&buf)
	var events []Event
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) != 3 {
		t.Fatalf("decoded %d events, want 3", len(events))
	}
	if events[0].Name != "microfs.write" || events[0].Kind != "span" || events[0].Rank != 3 {
		t.Fatalf("span 0 = %+v", events[0])
	}
	if events[0].VirtStartNS != 10_000 || events[0].VirtEndNS != 25_000 {
		t.Fatalf("virtual clock not recorded: %+v", events[0])
	}
	if events[1].WallNS != time.Unix(100, 0).UnixNano() || events[1].WallDurNS != int64(2*time.Millisecond) {
		t.Fatalf("wall clock not recorded: %+v", events[1])
	}
	if events[2].Kind != "point" || events[2].WallNS == 0 {
		t.Fatalf("point event not stamped: %+v", events[2])
	}
}

func TestTracerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.SpanVirt("op", w, 0, time.Microsecond, nil)
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Events(); got != 4000 {
		t.Fatalf("Events = %d, want 4000", got)
	}
	// Every line must still be valid JSON (no interleaving).
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d corrupt: %v", n, err)
		}
		n++
	}
	if n != 4000 {
		t.Fatalf("wrote %d lines, want 4000", n)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Name: "x"})
	tr.SpanVirt("x", 0, 0, 0, nil)
	tr.SpanWall("x", 0, time.Now(), 0, nil)
	if tr.Events() != 0 || tr.Err() != nil {
		t.Fatal("nil tracer must read zero")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n > 1 {
		return 0, errors.New("sink full")
	}
	return len(p), nil
}

func TestTracerSinkFailureIsSticky(t *testing.T) {
	tr := NewTracer(&failWriter{})
	tr.Emit(Event{Name: "a"})
	tr.Emit(Event{Name: "b"}) // fails
	tr.Emit(Event{Name: "c"}) // dropped silently
	if tr.Events() != 1 {
		t.Fatalf("Events = %d, want 1", tr.Events())
	}
	if tr.Err() == nil {
		t.Fatal("Err must report the sink failure")
	}
	if tr.Close() == nil {
		t.Fatal("Close must report the sink failure")
	}
}

// EmitStamped must preserve the caller's WallNS verbatim — including a
// deliberate zero — while Emit always stamps with the current time.
func TestEmitStampedPreservesWallNS(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.EmitStamped(Event{Name: "replayed", WallNS: 12345})
	tr.EmitStamped(Event{Name: "wall-less", VirtStartNS: 7, VirtEndNS: 9})
	tr.Emit(Event{Name: "stamped", WallNS: 12345}) // Emit overwrites
	sc := bufio.NewScanner(&buf)
	var events []Event
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if len(events) != 3 {
		t.Fatalf("decoded %d events, want 3", len(events))
	}
	if events[0].WallNS != 12345 {
		t.Errorf("EmitStamped rewrote WallNS: %+v", events[0])
	}
	if events[1].WallNS != 0 {
		t.Errorf("EmitStamped stamped a deliberate zero: %+v", events[1])
	}
	if events[2].WallNS == 12345 || events[2].WallNS == 0 {
		t.Errorf("Emit must stamp with the current time: %+v", events[2])
	}
}

func TestTracerCloseStopsEmits(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit(Event{Name: "before"})
	if err := tr.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
	tr.Emit(Event{Name: "after"}) // dropped
	if got := tr.Events(); got != 1 {
		t.Fatalf("Events = %d, want 1", got)
	}
	if err := tr.Close(); err != nil { // idempotent
		t.Fatalf("second Close = %v", err)
	}
	var nilTr *Tracer
	if err := nilTr.Close(); err != nil {
		t.Fatalf("nil Close = %v", err)
	}
}
