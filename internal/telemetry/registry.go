// Package telemetry is the live observability layer of the runtime: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// latency histograms) with Prometheus text exposition, plus a
// lightweight event tracer that records simulation virtual-time and
// wall-time spans to JSONL.
//
// It is distinct from internal/metrics, which computes offline
// statistics (mean, CoV, percentiles over complete sample sets) for the
// paper's tables after a run finishes. Telemetry instruments are live:
// they are updated on hot paths while the system serves traffic and can
// be scraped at any instant. Every instrument method is safe for
// concurrent use and nil-safe — a nil *Counter, *Gauge, *Histogram, or
// *Tracer is a no-op, so instrumented code never branches on whether
// observability is enabled.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels attach dimensions to an instrument (e.g. {"qp": "3"}). The
// same name+labels always yields the same instrument within a Registry.
type Labels map[string]string

// labelKey serializes labels deterministically for map keying and
// exposition ordering.
func labelKey(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down (queue depth, pool width).
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add shifts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is a gauge holding a float64 — health scores, SLO burn
// rates, ratios. Like the other instruments it is concurrency- and
// nil-safe.
type FloatGauge struct{ v atomic.Uint64 }

// Set replaces the gauge value.
func (g *FloatGauge) Set(v float64) {
	if g != nil {
		g.v.Store(math.Float64bits(v))
	}
}

// Value returns the current gauge value.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.v.Load())
}

// DefLatencyBuckets covers one microsecond to ~10 seconds, the span
// from an in-memory namespace access to a badly stalled fabric round
// trip. Values are seconds, Prometheus-style.
var DefLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets. Observations and
// snapshots are lock-free; a snapshot taken concurrently with
// observations is internally consistent to within the racing updates.
type Histogram struct {
	bounds []float64 // sorted upper bounds; implicit +Inf bucket follows
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a latency sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the owning bucket, the same estimate Prometheus's
// histogram_quantile computes. The highest finite bound caps the
// estimate (samples in the +Inf bucket report that bound).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(h.bounds) {
				// +Inf bucket: cap at the highest finite bound.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Latency summarizes the histogram as durations, treating observations
// as seconds.
func (h *Histogram) Latency() LatencySnapshot {
	if h == nil || h.Count() == 0 {
		return LatencySnapshot{}
	}
	n := h.Count()
	return LatencySnapshot{
		Count: n,
		Mean:  time.Duration(h.Sum() / float64(n) * float64(time.Second)),
		P50:   time.Duration(h.Quantile(0.50) * float64(time.Second)),
		P95:   time.Duration(h.Quantile(0.95) * float64(time.Second)),
		P99:   time.Duration(h.Quantile(0.99) * float64(time.Second)),
		P999:  time.Duration(h.Quantile(0.999) * float64(time.Second)),
	}
}

// instrument is one registered metric series.
type instrument struct {
	name   string
	labels Labels
	c      *Counter
	g      *Gauge
	fg     *FloatGauge
	h      *Histogram
}

// Registry holds named instruments. Get-or-create calls are idempotent:
// the same (name, labels) returns the same instrument, so components
// re-created across reconnects keep accumulating into one series.
// Lookup takes a lock; callers cache the returned pointer and update it
// lock-free on hot paths.
type Registry struct {
	mu    sync.RWMutex
	byKey map[string]*instrument
	order []*instrument
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byKey: make(map[string]*instrument)}
}

func (r *Registry) lookup(kind, name string, labels Labels) *instrument {
	key := name + "{" + labelKey(labels) + "}"
	r.mu.RLock()
	in := r.byKey[key]
	r.mu.RUnlock()
	if in != nil {
		return in
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if in := r.byKey[key]; in != nil {
		return in
	}
	in = &instrument{name: name, labels: labels}
	r.byKey[key] = in
	r.order = append(r.order, in)
	return in
}

// Counter returns the counter registered under name+labels, creating it
// on first use.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	in := r.lookup("counter", name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if in.c == nil {
		in.c = &Counter{}
	}
	return in.c
}

// Gauge returns the gauge registered under name+labels.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	in := r.lookup("gauge", name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if in.g == nil {
		in.g = &Gauge{}
	}
	return in.g
}

// FloatGauge returns the float gauge registered under name+labels.
func (r *Registry) FloatGauge(name string, labels Labels) *FloatGauge {
	in := r.lookup("floatgauge", name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if in.fg == nil {
		in.fg = &FloatGauge{}
	}
	return in.fg
}

// Histogram returns the histogram registered under name+labels with the
// given bucket upper bounds (DefLatencyBuckets when nil). Buckets are
// fixed at first registration.
func (r *Registry) Histogram(name string, buckets []float64, labels Labels) *Histogram {
	in := r.lookup("histogram", name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if in.h == nil {
		if buckets == nil {
			buckets = DefLatencyBuckets
		}
		in.h = newHistogram(buckets)
	}
	return in.h
}

// promLabels renders {a="x",b="y"} (or "") plus an extra label pair.
func promLabels(labels Labels, extraK, extraV string) string {
	base := labelKey(labels)
	if extraK != "" {
		kv := fmt.Sprintf("%s=%q", extraK, extraV)
		if base == "" {
			base = kv
		} else {
			base += "," + kv
		}
	}
	if base == "" {
		return ""
	}
	return "{" + base + "}"
}

// formatBound renders a bucket upper bound the way Prometheus clients
// do (shortest float representation).
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (text/plain; version 0.0.4). Histograms emit the
// standard _bucket/_sum/_count series plus live p50/p95/p99 estimates
// as a companion <name>_quantile gauge, so a plain curl shows latency
// quantiles without a PromQL evaluator.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	snapshot := append([]*instrument(nil), r.order...)
	r.mu.RUnlock()
	typed := map[string]bool{}
	emitType := func(name, kind string) {
		if !typed[name] {
			fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
			typed[name] = true
		}
	}
	var err error
	print := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, in := range snapshot {
		switch {
		case in.c != nil:
			emitType(in.name, "counter")
			print("%s%s %d\n", in.name, promLabels(in.labels, "", ""), in.c.Value())
		case in.g != nil:
			emitType(in.name, "gauge")
			print("%s%s %d\n", in.name, promLabels(in.labels, "", ""), in.g.Value())
		case in.fg != nil:
			emitType(in.name, "gauge")
			print("%s%s %g\n", in.name, promLabels(in.labels, "", ""), in.fg.Value())
		case in.h != nil:
			emitType(in.name, "histogram")
			var cum uint64
			for i, bound := range in.h.bounds {
				cum += in.h.counts[i].Load()
				print("%s_bucket%s %d\n", in.name, promLabels(in.labels, "le", formatBound(bound)), cum)
			}
			cum += in.h.counts[len(in.h.bounds)].Load()
			print("%s_bucket%s %d\n", in.name, promLabels(in.labels, "le", "+Inf"), cum)
			print("%s_sum%s %g\n", in.name, promLabels(in.labels, "", ""), in.h.Sum())
			print("%s_count%s %d\n", in.name, promLabels(in.labels, "", ""), in.h.Count())
			emitType(in.name+"_quantile", "gauge")
			for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
				print("%s_quantile%s %g\n", in.name,
					promLabels(in.labels, "quantile", strconv.FormatFloat(q, 'g', -1, 64)), in.h.Quantile(q))
			}
		}
	}
	return err
}

// InstrumentKind discriminates RegistrySnapshot entries.
type InstrumentKind uint8

const (
	KindCounter InstrumentKind = iota + 1
	KindGauge
	KindFloatGauge
	KindHistogram
)

// InstrumentSnapshot is one series at one instant, as captured by
// Registry.Snapshot. Labels and Bounds alias the live instrument's
// (immutable) maps and slices; Counts is owned by the snapshot and
// reused across captures.
type InstrumentSnapshot struct {
	Name   string
	Labels Labels
	Kind   InstrumentKind

	// Value is the instrument's scalar: the counter or (float) gauge
	// value, or the histogram's observation count.
	Value float64
	// U is the exact unsigned value for counters and histogram counts
	// (Value rounds above 2^53).
	U uint64

	// Histogram-only: per-bucket observation counts (not cumulative),
	// with one trailing +Inf bucket beyond the last bound.
	Bounds []float64
	Counts []uint64
	Sum    float64
}

// CountAtOrBelow returns how many observations fell into buckets whose
// upper bound is <= v — the "good event" count for a latency objective
// with threshold v (bucket granularity; choose thresholds on bucket
// bounds for exact counts).
func (s *InstrumentSnapshot) CountAtOrBelow(v float64) uint64 {
	if s == nil || s.Kind != KindHistogram {
		return 0
	}
	var cum uint64
	for i, b := range s.Bounds {
		if b > v {
			break
		}
		cum += s.Counts[i]
	}
	return cum
}

// Quantile estimates the q-th quantile from the snapshot's buckets, the
// same interpolation Histogram.Quantile computes on the live series.
func (s *InstrumentSnapshot) Quantile(q float64) float64 {
	if s == nil || s.Kind != KindHistogram || s.U == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.U)
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return s.Bounds[len(s.Bounds)-1]
}

// RegistrySnapshot is a point-in-time copy of every instrument in a
// Registry, captured with reusable buffers so a poller on a fixed
// cadence (the health engine) adds no per-tick garbage. Pass the same
// *RegistrySnapshot back to Registry.Snapshot to reuse it.
type RegistrySnapshot struct {
	Instruments []InstrumentSnapshot
}

// Snapshot captures every registered instrument into dst (allocated
// when nil) and returns it. Instrument order is registration order and
// stable across captures, so dst's per-entry bucket buffers are reused;
// steady-state captures allocate nothing.
func (r *Registry) Snapshot(dst *RegistrySnapshot) *RegistrySnapshot {
	if dst == nil {
		dst = new(RegistrySnapshot)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := len(r.order)
	if cap(dst.Instruments) < n {
		grown := make([]InstrumentSnapshot, n)
		// Carry over the old entries: registration order is append-only,
		// so index i keeps its instrument and its Counts buffer stays
		// the right size.
		copy(grown, dst.Instruments)
		dst.Instruments = grown
	}
	dst.Instruments = dst.Instruments[:n]
	for i, in := range r.order {
		out := &dst.Instruments[i]
		out.Name, out.Labels = in.name, in.labels
		out.Bounds = nil
		out.Sum = 0
		switch {
		case in.c != nil:
			out.Kind = KindCounter
			out.U = in.c.Value()
			out.Value = float64(out.U)
		case in.g != nil:
			out.Kind = KindGauge
			out.U = 0
			out.Value = float64(in.g.Value())
		case in.fg != nil:
			out.Kind = KindFloatGauge
			out.U = 0
			out.Value = in.fg.Value()
		case in.h != nil:
			out.Kind = KindHistogram
			out.Bounds = in.h.bounds
			nb := len(in.h.counts)
			if cap(out.Counts) < nb {
				out.Counts = make([]uint64, nb)
			}
			out.Counts = out.Counts[:nb]
			for j := range in.h.counts {
				out.Counts[j] = in.h.counts[j].Load()
			}
			out.U = in.h.count.Load()
			out.Value = float64(out.U)
			out.Sum = in.h.Sum()
		}
	}
	return dst
}

// labelsEqual reports whether two label sets carry identical pairs.
func labelsEqual(a, b Labels) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// labelsInclude reports whether labels carries every pair in match (a
// subset test, for summing across an extra dimension like "op").
func labelsInclude(labels, match Labels) bool {
	for k, v := range match {
		if lv, ok := labels[k]; !ok || lv != v {
			return false
		}
	}
	return true
}

// Find returns the snapshot entry for name with exactly these labels,
// or nil. Linear scan: snapshots are read a handful of times per tick.
func (s *RegistrySnapshot) Find(name string, labels Labels) *InstrumentSnapshot {
	if s == nil {
		return nil
	}
	for i := range s.Instruments {
		in := &s.Instruments[i]
		if in.Name == name && labelsEqual(in.Labels, labels) {
			return in
		}
	}
	return nil
}

// Counter returns the counter value for name+labels (0 when absent).
func (s *RegistrySnapshot) Counter(name string, labels Labels) uint64 {
	if in := s.Find(name, labels); in != nil && in.Kind == KindCounter {
		return in.U
	}
	return 0
}

// SumCounters sums every counter named name whose labels include all of
// match — e.g. nvmecr_mount_ops_total{mount="a"} summed across its
// per-op label.
func (s *RegistrySnapshot) SumCounters(name string, match Labels) uint64 {
	if s == nil {
		return 0
	}
	var sum uint64
	for i := range s.Instruments {
		in := &s.Instruments[i]
		if in.Name == name && in.Kind == KindCounter && labelsInclude(in.Labels, match) {
			sum += in.U
		}
	}
	return sum
}
