// Package telemetry is the live observability layer of the runtime: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// latency histograms) with Prometheus text exposition, plus a
// lightweight event tracer that records simulation virtual-time and
// wall-time spans to JSONL.
//
// It is distinct from internal/metrics, which computes offline
// statistics (mean, CoV, percentiles over complete sample sets) for the
// paper's tables after a run finishes. Telemetry instruments are live:
// they are updated on hot paths while the system serves traffic and can
// be scraped at any instant. Every instrument method is safe for
// concurrent use and nil-safe — a nil *Counter, *Gauge, *Histogram, or
// *Tracer is a no-op, so instrumented code never branches on whether
// observability is enabled.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels attach dimensions to an instrument (e.g. {"qp": "3"}). The
// same name+labels always yields the same instrument within a Registry.
type Labels map[string]string

// labelKey serializes labels deterministically for map keying and
// exposition ordering.
func labelKey(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down (queue depth, pool width).
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add shifts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefLatencyBuckets covers one microsecond to ~10 seconds, the span
// from an in-memory namespace access to a badly stalled fabric round
// trip. Values are seconds, Prometheus-style.
var DefLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets. Observations and
// snapshots are lock-free; a snapshot taken concurrently with
// observations is internally consistent to within the racing updates.
type Histogram struct {
	bounds []float64 // sorted upper bounds; implicit +Inf bucket follows
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a latency sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the owning bucket, the same estimate Prometheus's
// histogram_quantile computes. The highest finite bound caps the
// estimate (samples in the +Inf bucket report that bound).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(h.bounds) {
				// +Inf bucket: cap at the highest finite bound.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Latency summarizes the histogram as durations, treating observations
// as seconds.
func (h *Histogram) Latency() LatencySnapshot {
	if h == nil || h.Count() == 0 {
		return LatencySnapshot{}
	}
	n := h.Count()
	return LatencySnapshot{
		Count: n,
		Mean:  time.Duration(h.Sum() / float64(n) * float64(time.Second)),
		P50:   time.Duration(h.Quantile(0.50) * float64(time.Second)),
		P95:   time.Duration(h.Quantile(0.95) * float64(time.Second)),
		P99:   time.Duration(h.Quantile(0.99) * float64(time.Second)),
	}
}

// instrument is one registered metric series.
type instrument struct {
	name   string
	labels Labels
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named instruments. Get-or-create calls are idempotent:
// the same (name, labels) returns the same instrument, so components
// re-created across reconnects keep accumulating into one series.
// Lookup takes a lock; callers cache the returned pointer and update it
// lock-free on hot paths.
type Registry struct {
	mu    sync.RWMutex
	byKey map[string]*instrument
	order []*instrument
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byKey: make(map[string]*instrument)}
}

func (r *Registry) lookup(kind, name string, labels Labels) *instrument {
	key := name + "{" + labelKey(labels) + "}"
	r.mu.RLock()
	in := r.byKey[key]
	r.mu.RUnlock()
	if in != nil {
		return in
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if in := r.byKey[key]; in != nil {
		return in
	}
	in = &instrument{name: name, labels: labels}
	r.byKey[key] = in
	r.order = append(r.order, in)
	return in
}

// Counter returns the counter registered under name+labels, creating it
// on first use.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	in := r.lookup("counter", name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if in.c == nil {
		in.c = &Counter{}
	}
	return in.c
}

// Gauge returns the gauge registered under name+labels.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	in := r.lookup("gauge", name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if in.g == nil {
		in.g = &Gauge{}
	}
	return in.g
}

// Histogram returns the histogram registered under name+labels with the
// given bucket upper bounds (DefLatencyBuckets when nil). Buckets are
// fixed at first registration.
func (r *Registry) Histogram(name string, buckets []float64, labels Labels) *Histogram {
	in := r.lookup("histogram", name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if in.h == nil {
		if buckets == nil {
			buckets = DefLatencyBuckets
		}
		in.h = newHistogram(buckets)
	}
	return in.h
}

// promLabels renders {a="x",b="y"} (or "") plus an extra label pair.
func promLabels(labels Labels, extraK, extraV string) string {
	base := labelKey(labels)
	if extraK != "" {
		kv := fmt.Sprintf("%s=%q", extraK, extraV)
		if base == "" {
			base = kv
		} else {
			base += "," + kv
		}
	}
	if base == "" {
		return ""
	}
	return "{" + base + "}"
}

// formatBound renders a bucket upper bound the way Prometheus clients
// do (shortest float representation).
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (text/plain; version 0.0.4). Histograms emit the
// standard _bucket/_sum/_count series plus live p50/p95/p99 estimates
// as a companion <name>_quantile gauge, so a plain curl shows latency
// quantiles without a PromQL evaluator.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	snapshot := append([]*instrument(nil), r.order...)
	r.mu.RUnlock()
	typed := map[string]bool{}
	emitType := func(name, kind string) {
		if !typed[name] {
			fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
			typed[name] = true
		}
	}
	var err error
	print := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, in := range snapshot {
		switch {
		case in.c != nil:
			emitType(in.name, "counter")
			print("%s%s %d\n", in.name, promLabels(in.labels, "", ""), in.c.Value())
		case in.g != nil:
			emitType(in.name, "gauge")
			print("%s%s %d\n", in.name, promLabels(in.labels, "", ""), in.g.Value())
		case in.h != nil:
			emitType(in.name, "histogram")
			var cum uint64
			for i, bound := range in.h.bounds {
				cum += in.h.counts[i].Load()
				print("%s_bucket%s %d\n", in.name, promLabels(in.labels, "le", formatBound(bound)), cum)
			}
			cum += in.h.counts[len(in.h.bounds)].Load()
			print("%s_bucket%s %d\n", in.name, promLabels(in.labels, "le", "+Inf"), cum)
			print("%s_sum%s %g\n", in.name, promLabels(in.labels, "", ""), in.h.Sum())
			print("%s_count%s %d\n", in.name, promLabels(in.labels, "", ""), in.h.Count())
			emitType(in.name+"_quantile", "gauge")
			for _, q := range []float64{0.5, 0.95, 0.99} {
				print("%s_quantile%s %g\n", in.name,
					promLabels(in.labels, "quantile", strconv.FormatFloat(q, 'g', -1, 64)), in.h.Quantile(q))
			}
		}
	}
	return err
}
