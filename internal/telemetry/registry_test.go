package telemetry

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/nvme-cr/nvmecr/internal/metrics"
)

// TestConcurrentAddAndSnapshot hammers one registry from many
// goroutines while others snapshot it; run under -race this is the
// concurrency-safety contract of the package.
func TestConcurrentAddAndSnapshot(t *testing.T) {
	reg := New()
	const workers = 8
	const perWorker = 5000
	stop := make(chan struct{})
	// Scrapers run concurrently with writers.
	var scrapers sync.WaitGroup
	for i := 0; i < 2; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sb strings.Builder
				if err := reg.WritePrometheus(&sb); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
				reg.Histogram("latency_seconds", nil, nil).Quantile(0.95)
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			c := reg.Counter("commands_total", Labels{"qp": "0"})
			g := reg.Gauge("inflight", nil)
			h := reg.Histogram("latency_seconds", nil, nil)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%100) * 1e-6)
			}
		}()
	}
	writers.Wait()
	close(stop)
	scrapers.Wait()
	if got := reg.Counter("commands_total", Labels{"qp": "0"}).Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Gauge("inflight", nil).Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := reg.Histogram("latency_seconds", nil, nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestHistogramQuantileAgainstMetricsPercentile checks the live
// bucketed estimate against the exact offline percentile from
// internal/metrics on the same samples: the two must agree to within
// one bucket width.
func TestHistogramQuantileAgainstMetricsPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := newHistogram(DefLatencyBuckets)
	samples := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over [2µs, 50ms): the shape of a mixed
		// local/remote latency distribution.
		v := math.Exp(math.Log(2e-6) + rng.Float64()*(math.Log(5e-2)-math.Log(2e-6)))
		samples = append(samples, v)
		h.Observe(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := metrics.Percentile(samples, q*100)
		est := h.Quantile(q)
		// Tolerance: the estimate must land within the bucket holding
		// the exact value (bounds are 2.5x apart at the widest).
		lo, hi := exact/2.5, exact*2.5
		if est < lo || est > hi {
			t.Errorf("q=%.2f: estimate %.3g outside [%.3g, %.3g] around exact %.3g", q, est, lo, hi, exact)
		}
	}
}

// TestHistogramQuantileExactOnBounds places all samples exactly on
// bucket upper bounds; the interpolated quantile of a single-valued
// distribution must return (nearly) that value.
func TestHistogramQuantileExactOnBounds(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 1000; i++ {
		h.Observe(2)
	}
	if got := h.Quantile(0.99); got < 1 || got > 2 {
		t.Fatalf("Quantile(0.99) = %g, want within (1, 2]", got)
	}
	if got := h.Latency(); got.Count != 1000 {
		t.Fatalf("Latency().Count = %d", got.Count)
	}
}

// TestHistogramSumMean checks the CAS-accumulated float sum.
func TestHistogramSumMean(t *testing.T) {
	h := newHistogram(DefLatencyBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.ObserveDuration(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got, want := h.Sum(), 4000*0.001; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Sum = %g, want %g", got, want)
	}
	lat := h.Latency()
	if d := lat.Mean - time.Millisecond; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("Mean = %v, want ~1ms", lat.Mean)
	}
}

// TestWritePrometheusFormat spot-checks the exposition text.
func TestWritePrometheusFormat(t *testing.T) {
	reg := New()
	reg.Counter("nvmecr_qp_commands_total", Labels{"qp": "2"}).Add(7)
	reg.Gauge("nvmecr_pool_queue_pairs", nil).Set(4)
	reg.Histogram("nvmecr_qp_latency_seconds", []float64{0.001, 0.01}, Labels{"qp": "2"}).Observe(0.002)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE nvmecr_qp_commands_total counter",
		`nvmecr_qp_commands_total{qp="2"} 7`,
		"# TYPE nvmecr_pool_queue_pairs gauge",
		"nvmecr_pool_queue_pairs 4",
		"# TYPE nvmecr_qp_latency_seconds histogram",
		`nvmecr_qp_latency_seconds_bucket{qp="2",le="0.001"} 0`,
		`nvmecr_qp_latency_seconds_bucket{qp="2",le="0.01"} 1`,
		`nvmecr_qp_latency_seconds_bucket{qp="2",le="+Inf"} 1`,
		`nvmecr_qp_latency_seconds_count{qp="2"} 1`,
		`nvmecr_qp_latency_seconds_quantile{qp="2",quantile="0.5"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestSameInstrumentReturned verifies get-or-create idempotence: the
// reconnect path depends on the new Host landing on the old series.
func TestSameInstrumentReturned(t *testing.T) {
	reg := New()
	a := reg.Counter("x_total", Labels{"qp": "1"})
	b := reg.Counter("x_total", Labels{"qp": "1"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := reg.Counter("x_total", Labels{"qp": "2"})
	if a == c {
		t.Fatal("distinct labels returned the same counter")
	}
}

// TestNilInstrumentsAreNoOps: nil-safety is what lets uninstrumented
// hot paths skip telemetry without branching.
func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(-1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if (h.Latency() != LatencySnapshot{}) {
		t.Fatal("nil histogram Latency must be zero")
	}
}

func TestFloatGauge(t *testing.T) {
	r := New()
	fg := r.FloatGauge("nvmecr_health_score", Labels{"kind": "qp"})
	fg.Set(0.875)
	if got := fg.Value(); got != 0.875 {
		t.Fatalf("Value = %v, want 0.875", got)
	}
	if again := r.FloatGauge("nvmecr_health_score", Labels{"kind": "qp"}); again != fg {
		t.Fatal("same name+labels returned a different FloatGauge")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE nvmecr_health_score gauge") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `nvmecr_health_score{kind="qp"} 0.875`) {
		t.Fatalf("missing sample line:\n%s", out)
	}
	var nilFG *FloatGauge
	nilFG.Set(3)
	if nilFG.Value() != 0 {
		t.Fatal("nil FloatGauge not a no-op")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := New()
	c := r.Counter("cmds_total", Labels{"qp": "0"})
	c.Add(42)
	g := r.Gauge("depth", nil)
	g.Set(-3)
	fg := r.FloatGauge("score", nil)
	fg.Set(0.5)
	h := r.Histogram("lat_seconds", []float64{0.001, 0.01, 0.1}, nil)
	h.Observe(0.0005) // bucket 0
	h.Observe(0.005)  // bucket 1
	h.Observe(0.005)  // bucket 1
	h.Observe(5)      // +Inf bucket

	var snap RegistrySnapshot
	r.Snapshot(&snap)

	if len(snap.Instruments) != 4 {
		t.Fatalf("got %d instruments, want 4", len(snap.Instruments))
	}
	if got := snap.Counter("cmds_total", Labels{"qp": "0"}); got != 42 {
		t.Fatalf("Counter = %d, want 42", got)
	}
	if in := snap.Find("depth", nil); in == nil || in.Kind != KindGauge || in.Value != -3 {
		t.Fatalf("gauge snapshot wrong: %+v", in)
	}
	if in := snap.Find("score", nil); in == nil || in.Kind != KindFloatGauge || in.Value != 0.5 {
		t.Fatalf("floatgauge snapshot wrong: %+v", in)
	}
	hs := snap.Find("lat_seconds", nil)
	if hs == nil || hs.Kind != KindHistogram {
		t.Fatalf("histogram snapshot missing: %+v", hs)
	}
	if hs.U != 4 {
		t.Fatalf("histogram count = %d, want 4", hs.U)
	}
	if got := hs.CountAtOrBelow(0.01); got != 3 {
		t.Fatalf("CountAtOrBelow(0.01) = %d, want 3", got)
	}
	if got := hs.CountAtOrBelow(0.001); got != 1 {
		t.Fatalf("CountAtOrBelow(0.001) = %d, want 1", got)
	}
	// Quantile on the snapshot must match the live histogram exactly.
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99} {
		if got, want := hs.Quantile(q), h.Quantile(q); got != want {
			t.Fatalf("Quantile(%v) = %v, live = %v", q, got, want)
		}
	}
	// Mutate after snapshot: the snapshot must not move.
	c.Add(100)
	if got := snap.Counter("cmds_total", Labels{"qp": "0"}); got != 42 {
		t.Fatalf("snapshot moved with live counter: %d", got)
	}

	// SumCounters across a label dimension.
	r.Counter("ops_total", Labels{"mount": "a", "op": "read"}).Add(3)
	r.Counter("ops_total", Labels{"mount": "a", "op": "write"}).Add(4)
	r.Counter("ops_total", Labels{"mount": "b", "op": "read"}).Add(9)
	r.Snapshot(&snap)
	if got := snap.SumCounters("ops_total", Labels{"mount": "a"}); got != 7 {
		t.Fatalf("SumCounters(mount=a) = %d, want 7", got)
	}
	if got := snap.SumCounters("ops_total", nil); got != 16 {
		t.Fatalf("SumCounters(all) = %d, want 16", got)
	}
}

// TestSnapshotSteadyStateAllocs is the regression gate for the health
// engine's polling path: once the snapshot has seen the registry's full
// instrument set, re-capturing into the same buffer must not allocate.
func TestSnapshotSteadyStateAllocs(t *testing.T) {
	r := New()
	for i := 0; i < 8; i++ {
		qp := Labels{"qp": strconv.Itoa(i)}
		r.Counter("cmds_total", qp).Add(uint64(i))
		r.Gauge("depth", qp).Set(int64(i))
		r.Histogram("lat_seconds", DefLatencyBuckets, qp).Observe(0.001)
	}
	snap := r.Snapshot(nil) // warm-up sizes every buffer
	allocs := testing.AllocsPerRun(100, func() {
		r.Snapshot(snap)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Snapshot allocates %v per run, want 0", allocs)
	}
}
