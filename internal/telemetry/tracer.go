package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one trace record. Spans carry both clocks: virtual time
// (the simulation's deterministic clock, replayable run-to-run) and
// wall time (when the hosting process actually executed it). Events
// from real-TCP components carry wall time only.
type Event struct {
	// Name identifies the operation, dot-scoped by layer
	// (e.g. "microfs.write", "core.init-rank", "harness.experiment").
	Name string `json:"name"`
	// Kind is "span" (has an end) or "point".
	Kind string `json:"kind"`
	// Rank is the MPI rank the event belongs to (-1 when not rank-scoped).
	Rank int `json:"rank"`
	// VirtStartNS/VirtEndNS are simulation virtual time in nanoseconds.
	VirtStartNS int64 `json:"virt_start_ns,omitempty"`
	VirtEndNS   int64 `json:"virt_end_ns,omitempty"`
	// WallNS is the wall-clock instant the event was emitted (UnixNano).
	WallNS int64 `json:"wall_ns"`
	// WallDurNS is the wall-clock duration for wall-time spans.
	WallDurNS int64 `json:"wall_dur_ns,omitempty"`
	// Attrs carries operation-specific payload (bytes, path, status).
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Tracer appends events as JSON Lines to a writer. All methods are
// safe for concurrent use and nil-safe: a nil *Tracer discards
// everything, so call sites never branch on tracing being enabled.
type Tracer struct {
	mu     sync.Mutex
	enc    *json.Encoder
	events uint64
	err    error
	closed bool
}

// NewTracer wraps w (typically an *os.File); each event is one JSON
// line, flushed per event so a crash loses at most the line in flight.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{enc: json.NewEncoder(w)}
}

// Emit appends one event, stamping WallNS with the current time. Use
// EmitStamped to record an event whose WallNS the caller already set —
// Emit would overwrite it, and would mis-stamp a caller's deliberate
// zero (a wall-less virtual event) with "now".
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	ev.WallNS = time.Now().UnixNano()
	t.EmitStamped(ev)
}

// EmitStamped appends one event exactly as given: WallNS is trusted,
// including a deliberate zero. Only Kind defaults (to "point").
func (t *Tracer) EmitStamped(ev Event) {
	if t == nil {
		return
	}
	if ev.Kind == "" {
		ev.Kind = "point"
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil || t.closed {
		return
	}
	if err := t.enc.Encode(&ev); err != nil {
		t.err = err // sink broken: stop writing, keep the run alive
		return
	}
	t.events++
}

// SpanVirt records a span measured on the simulation's virtual clock.
func (t *Tracer) SpanVirt(name string, rank int, start, end time.Duration, attrs map[string]any) {
	if t == nil {
		return
	}
	t.Emit(Event{
		Name: name, Kind: "span", Rank: rank,
		VirtStartNS: int64(start), VirtEndNS: int64(end),
		Attrs: attrs,
	})
}

// SpanWall records a span measured on the wall clock (real TCP paths).
func (t *Tracer) SpanWall(name string, rank int, start time.Time, dur time.Duration, attrs map[string]any) {
	if t == nil {
		return
	}
	t.EmitStamped(Event{
		Name: name, Kind: "span", Rank: rank,
		WallNS: start.UnixNano(), WallDurNS: int64(dur),
		Attrs: attrs,
	})
}

// Events returns how many events have been written.
func (t *Tracer) Events() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Err reports the first write error, if the sink failed.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close stops the tracer — later emits are dropped — and reports the
// first sink error, so a run that silently lost trace events fails
// loudly at the end instead of producing a truncated file that parses.
// It does not close the underlying writer, which the caller owns.
// Close is idempotent and nil-safe.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	return t.err
}
