package microfs

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"time"

	"github.com/nvme-cr/nvmecr/internal/blockpool"
	"github.com/nvme-cr/nvmecr/internal/btree"
	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/vfs"
	"github.com/nvme-cr/nvmecr/internal/wal"
)

// snapMagic marks a valid snapshot header.
const snapMagic = 0x4D435246 // "FRCM"

// snapHeaderBytes is the fixed header written after the body; writing it
// last commits the snapshot atomically. The body region is split into
// two slots (A/B): each snapshot writes the slot the live header does
// NOT point to, so a crash mid-snapshot always leaves the previous
// snapshot intact.
const snapHeaderBytes = 32

// slotBase returns the device offset of body slot k (0 or 1).
func (inst *Instance) slotBase(k int) int64 {
	half := (inst.cfg.SnapBytes - snapHeaderBytes) / 2
	return inst.cfg.LogBytes + snapHeaderBytes + int64(k)*half
}

// slotCapacity returns the maximum body size per slot.
func (inst *Instance) slotCapacity() int64 {
	return (inst.cfg.SnapBytes - snapHeaderBytes) / 2
}

// snapInode is the serialized form of an inode.
type snapInode struct {
	ID     uint64
	Size   int64
	Blocks []int64
	Mode   uint32
	IsDir  bool
	Mtime  int64 // modification stamp, nanoseconds of virtual time
}

// snapImage is the gob-encoded snapshot body.
type snapImage struct {
	NextIno uint64
	Inodes  []snapInode
	Paths   []snapPath
	Pool    blockpool.State
	// LogEpoch is the epoch whose records follow this snapshot;
	// LogStart is the byte offset within that epoch from which replay
	// must begin (records before it are folded into the snapshot).
	LogEpoch byte
	LogStart int64
}

type snapPath struct {
	Path string
	Ino  uint64
}

// SnapshotNow checkpoints the instance's DRAM metadata (inodes, block
// pool, B+Tree) to the reserved snapshot region and, when no operations
// raced with it, truncates the provenance log. It is called by the
// background thread between application checkpoints, or synchronously
// when the log fills.
func (inst *Instance) SnapshotNow(p *sim.Proc) error {
	defer inst.traceSpan(p, "microfs.snapshot", -1)()
	defer inst.enter(p)()
	if inst.snapBusy {
		// Another process (background thread vs. forced path) is
		// already snapshotting; wait for it.
		inst.snapDone.Wait(p)
		return nil
	}
	inst.snapBusy = true
	defer func() {
		inst.snapBusy = false
		inst.snapDone.Fire()
	}()

	buildEpoch := inst.log.Epoch()
	buildHead := inst.log.Head()
	img := snapImage{
		NextIno:  inst.nextIno,
		Pool:     inst.pool.Snapshot(),
		LogEpoch: inst.log.NextEpoch(),
		LogStart: 0,
	}
	for _, ino := range inst.inodes {
		img.Inodes = append(img.Inodes, snapInode{
			ID: ino.id, Size: ino.size, Blocks: ino.blocks, Mode: ino.mode, IsDir: ino.isDir,
			Mtime: int64(ino.mtime),
		})
	}
	inst.tree.Ascend(func(path string, ino uint64) bool {
		img.Paths = append(img.Paths, snapPath{Path: path, Ino: ino})
		return true
	})

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&img); err != nil {
		return fmt.Errorf("microfs: snapshot encode: %w", err)
	}
	body := buf.Bytes()
	if int64(len(body)) > inst.slotCapacity() {
		return fmt.Errorf("microfs: snapshot of %d bytes exceeds slot of %d", len(body), inst.slotCapacity())
	}
	// Serialization cost: ~1µs per inode of CPU work.
	inst.acct.Charge(p, vfs.User, time.Duration(len(img.Inodes))*time.Microsecond)

	// Write the slot the live header does not reference.
	slot := 1 - inst.snapSlot
	hb := inst.pool.BlockSize()
	if err := inst.cfg.Plane.Write(p, inst.slotBase(slot), int64(len(body)), body, hb); err != nil {
		return err
	}
	// If operations were logged while the body was being written, the
	// snapshot must not claim the post-reset epoch: it instead points
	// at the suffix of the current epoch.
	reset := inst.log.Head() == buildHead && inst.log.Epoch() == buildEpoch
	if !reset {
		img.LogEpoch = inst.log.Epoch()
		img.LogStart = buildHead
		// Re-encode with the corrected pointers.
		buf.Reset()
		if err := gob.NewEncoder(&buf).Encode(&img); err != nil {
			return fmt.Errorf("microfs: snapshot re-encode: %w", err)
		}
		body = buf.Bytes()
		if err := inst.cfg.Plane.Write(p, inst.slotBase(slot), int64(len(body)), body, hb); err != nil {
			return err
		}
	}
	// Commit: the 32-byte header is a single sector-sized write.
	hdr := make([]byte, snapHeaderBytes)
	binary.LittleEndian.PutUint32(hdr[0:], snapMagic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(len(body)))
	binary.LittleEndian.PutUint32(hdr[12:], crc32.ChecksumIEEE(body))
	hdr[16] = byte(slot)
	if err := inst.cfg.Plane.Write(p, inst.cfg.LogBytes, snapHeaderBytes, hdr, 4*model.KB); err != nil {
		return err
	}
	inst.snapSlot = slot
	if reset {
		inst.log.Reset()
	}
	inst.snapLen = snapHeaderBytes + int64(len(body))
	inst.stats.Snapshots++
	return nil
}

// StartBackground launches the dedicated snapshot thread. It wakes on
// every close/unlink and checkpoints internal state once the application
// checkpoint phase has ended (no open files) and the log is filling,
// overlapping the work with the application's compute phase.
func (inst *Instance) StartBackground() {
	if inst.bgWG != nil {
		return
	}
	inst.bgWG = inst.env.NewWaitGroup()
	inst.bgWG.Add(1)
	inst.env.Go("microfs-snapshot", func(p *sim.Proc) {
		defer inst.bgWG.Done()
		for {
			if inst.bgStop {
				return
			}
			inst.closeSig.Wait(p)
			if inst.bgStop {
				return
			}
			if inst.openCnt == 0 && inst.log.FillFraction() >= inst.cfg.SnapThreshold {
				if err := inst.SnapshotNow(p); err != nil {
					// Snapshot failure is not fatal to the app; the
					// log simply fills sooner and a forced snapshot
					// will retry.
					continue
				}
			}
		}
	})
}

// StopBackground terminates the snapshot thread and waits for it. The
// thread may be mid-snapshot (and so not waiting on the signal); the
// stop loop re-fires until it has exited.
func (inst *Instance) StopBackground(p *sim.Proc) {
	if inst.bgWG == nil {
		return
	}
	inst.bgStop = true
	for inst.bgWG.Count() > 0 {
		inst.closeSig.Fire()
		p.Sleep(time.Microsecond)
	}
	inst.bgWG = nil
	inst.bgStop = false
}

// Recover rebuilds the instance's DRAM metadata from the SSD after a
// crash: it reads the latest snapshot, restores the block pool, B+Tree,
// and inodes, and replays the provenance log suffix. The backing device
// must capture payloads (functional mode); use ModelRecovery for
// timing-only estimates at benchmark scale.
func (inst *Instance) Recover(p *sim.Proc) error {
	defer inst.traceSpan(p, "microfs.restart", -1)()
	defer inst.enter(p)()
	hb := inst.pool.BlockSize()
	snapBase := inst.cfg.LogBytes
	hdr, err := inst.cfg.Plane.Read(p, snapBase, snapHeaderBytes, 4*model.KB)
	if err != nil {
		return err
	}
	if hdr == nil {
		return fmt.Errorf("microfs: recovery requires a payload-capturing device")
	}
	inst.resetMeta()
	expectEpoch := byte(1)
	replayFrom := int64(0)
	if binary.LittleEndian.Uint32(hdr[0:]) == snapMagic {
		bodyLen := int64(binary.LittleEndian.Uint64(hdr[4:]))
		wantCRC := binary.LittleEndian.Uint32(hdr[12:])
		slot := int(hdr[16])
		if slot != 0 && slot != 1 {
			return fmt.Errorf("microfs: snapshot header names slot %d", slot)
		}
		if bodyLen > inst.slotCapacity() {
			return fmt.Errorf("microfs: snapshot header claims %d bytes, slot holds %d", bodyLen, inst.slotCapacity())
		}
		body, err := inst.cfg.Plane.Read(p, inst.slotBase(slot), bodyLen, hb)
		if err != nil {
			return err
		}
		inst.snapSlot = slot
		if crc32.ChecksumIEEE(body) != wantCRC {
			return fmt.Errorf("microfs: snapshot body corrupt")
		}
		var img snapImage
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&img); err != nil {
			return fmt.Errorf("microfs: snapshot decode: %w", err)
		}
		if err := inst.restoreSnapshot(&img); err != nil {
			return err
		}
		expectEpoch = img.LogEpoch
		replayFrom = img.LogStart
		inst.snapLen = snapHeaderBytes + bodyLen
	}
	logImage, err := inst.cfg.Plane.Read(p, 0, inst.cfg.LogBytes, hb)
	if err != nil {
		return err
	}
	log, records, err := wal.Load(wal.Options{
		Capacity:   inst.cfg.LogBytes,
		PageSize:   inst.cfg.LogPageBytes,
		NoCoalesce: inst.cfg.NoCoalesce,
	}, inst.walWriteFunc(), logImage, expectEpoch)
	if err != nil {
		return err
	}
	inst.log = log
	for _, lr := range records {
		if lr.Off < replayFrom {
			continue
		}
		inst.acct.Charge(p, vfs.User, inst.cfg.Host.ReplayPerRecord)
		if err := inst.replay(lr.Record); err != nil {
			return fmt.Errorf("microfs: replaying %v at %d: %w", lr.Op, lr.Off, err)
		}
	}
	inst.stats.Recoveries++
	return nil
}

// resetMeta discards DRAM metadata, returning the instance to its
// initial (root-only) state.
func (inst *Instance) resetMeta() {
	pool, _ := blockpool.New(inst.cfg.Plane.Size()-inst.dataBase, inst.cfg.HugeblockBytes)
	inst.pool = pool
	inst.tree = btree.New()
	inst.inodes = map[uint64]*inode{rootIno: {id: rootIno, isDir: true, mode: 0o755}}
	inst.tree.Insert(rootPath, rootIno)
	inst.nextIno = rootIno + 1
	inst.openCnt = 0
	inst.snapLen = 0
}

// restoreSnapshot loads a decoded snapshot image.
func (inst *Instance) restoreSnapshot(img *snapImage) error {
	pool, err := blockpool.Restore(img.Pool)
	if err != nil {
		return err
	}
	inst.pool = pool
	inst.tree = btree.New()
	inst.inodes = make(map[uint64]*inode, len(img.Inodes))
	for _, si := range img.Inodes {
		inst.inodes[si.ID] = &inode{
			id: si.ID, size: si.Size, blocks: si.Blocks, mode: si.Mode, isDir: si.IsDir,
			mtime: time.Duration(si.Mtime),
		}
		if d := time.Duration(si.Mtime); d > inst.lastMtime {
			inst.lastMtime = d
		}
	}
	for _, sp := range img.Paths {
		inst.tree.Insert(sp.Path, sp.Ino)
	}
	inst.nextIno = img.NextIno
	return nil
}

// replay applies one provenance record. Block placement reproduces
// exactly because the circular pool is deterministic and replay repeats
// the original allocation order.
func (inst *Instance) replay(rec wal.Record) error {
	switch rec.Op {
	case wal.OpMkdir, wal.OpCreate:
		ino, err := inst.applyCreate(rec.Path, rec.Mode, rec.Op == wal.OpMkdir)
		if err != nil {
			return err
		}
		if ino.id != rec.Inode {
			return fmt.Errorf("microfs: nondeterministic replay: inode %d, logged %d", ino.id, rec.Inode)
		}
		return nil
	case wal.OpWrite:
		ino, ok := inst.inodes[rec.Inode]
		if !ok {
			return fmt.Errorf("microfs: write record for unknown inode %d", rec.Inode)
		}
		_, err := inst.growTo(ino, int64(rec.Offset+rec.Length))
		if err == nil {
			inst.touch(ino)
		}
		return err
	case wal.OpUnlink:
		return inst.applyUnlink(rec.Path)
	case wal.OpRename:
		return inst.applyRename(rec.Path, rec.Path2)
	case wal.OpTruncate:
		ino, ok := inst.inodes[rec.Inode]
		if !ok {
			return fmt.Errorf("microfs: truncate record for unknown inode %d", rec.Inode)
		}
		if int64(rec.Length) < ino.size {
			ino.size = int64(rec.Length)
		}
		inst.touch(ino)
		return nil
	default:
		return fmt.Errorf("microfs: unknown record op %v", rec.Op)
	}
}

// ModelRecovery charges the virtual time a post-crash runtime recovery
// would take (snapshot read + log read + replay CPU) without requiring
// payload capture. Used by benchmark-scale experiments (Table II).
func (inst *Instance) ModelRecovery(p *sim.Proc) error {
	defer inst.traceSpan(p, "microfs.restart-model", -1)()
	defer inst.enter(p)()
	hb := inst.pool.BlockSize()
	snapBase := inst.cfg.LogBytes
	if err := inst.cfg.Plane.Write(p, snapBase, 0, nil, 0); err != nil { // command round trip
		return err
	}
	if inst.snapLen > 0 {
		if _, err := inst.cfg.Plane.Read(p, snapBase, inst.snapLen, hb); err != nil {
			return err
		}
	}
	head := inst.log.Head()
	if head > 0 {
		if _, err := inst.cfg.Plane.Read(p, 0, head, hb); err != nil {
			return err
		}
	}
	inst.acct.Charge(p, vfs.User, time.Duration(inst.log.Records())*inst.cfg.Host.ReplayPerRecord)
	return nil
}
