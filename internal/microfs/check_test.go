package microfs

import (
	"strings"
	"testing"

	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/spdk"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

func TestCheckCleanPartition(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *sim.Proc) {
		r.inst.Mkdir(p, "/d", 0o755)
		for _, name := range []string{"/d/a", "/d/b", "/top"} {
			f, err := r.inst.Open(p, name, vfs.O_WRONLY|vfs.O_CREATE|vfs.O_EXCL, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			f.WriteN(p, 64*model.KB)
			f.Close(p)
		}
		r.inst.SnapshotNow(p)
		g, _ := r.inst.Open(p, "/post-snap", vfs.O_WRONLY|vfs.O_CREATE|vfs.O_EXCL, 0o644)
		g.WriteN(p, 32*model.KB)
		g.Close(p)

		acct := &vfs.Account{}
		pl, err := newTestPlane(r, acct)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Check(p, r.env, pl, Config{
			Host:      model.Default().Host,
			Features:  AllFeatures(),
			LogBytes:  r.cfg.LogBytes,
			SnapBytes: r.cfg.SnapBytes,
		})
		if err != nil {
			t.Fatalf("Check: %v", err)
		}
		if !rep.SnapshotValid {
			t.Error("snapshot not found")
		}
		if rep.Files != 4 || rep.Dirs != 1 {
			t.Errorf("files/dirs = %d/%d, want 4/1", rep.Files, rep.Dirs)
		}
		if rep.DataBytes != 3*64*model.KB+32*model.KB {
			t.Errorf("DataBytes = %d", rep.DataBytes)
		}
		if rep.LogRecords == 0 {
			t.Error("post-snapshot records not counted")
		}
		if len(rep.Problems) != 0 {
			t.Errorf("problems on clean partition: %v", rep.Problems)
		}
		if !strings.Contains(rep.String(), "clean") {
			t.Errorf("report rendering: %q", rep.String())
		}
	})
}

func TestCheckLogOnlyPartition(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.inst.Open(p, "/only", vfs.O_WRONLY|vfs.O_CREATE|vfs.O_EXCL, 0o644)
		f.WriteN(p, 32*model.KB)
		f.Close(p)
		acct := &vfs.Account{}
		pl, err := newTestPlane(r, acct)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Check(p, r.env, pl, Config{
			Host: model.Default().Host, Features: AllFeatures(),
			LogBytes: r.cfg.LogBytes, SnapBytes: r.cfg.SnapBytes,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.SnapshotValid {
			t.Error("phantom snapshot reported")
		}
		if len(rep.Problems) == 0 {
			t.Error("missing-snapshot problem not reported")
		}
		if rep.Files != 1 {
			t.Errorf("files = %d", rep.Files)
		}
	})
}

func TestCheckNeverWrites(t *testing.T) {
	// The read-only guard: Check over a plane that counts writes must
	// never trigger one.
	r := newRig(t, nil)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.inst.Open(p, "/x", vfs.O_WRONLY|vfs.O_CREATE|vfs.O_EXCL, 0o644)
		f.WriteN(p, 4096)
		f.Close(p)
		acct := &vfs.Account{}
		base, err := newTestPlane(r, acct)
		if err != nil {
			t.Fatal(err)
		}
		counter := &countingPlane{inner: base}
		if _, err := Check(p, r.env, counter, Config{
			Host: model.Default().Host, Features: AllFeatures(),
			LogBytes: r.cfg.LogBytes, SnapBytes: r.cfg.SnapBytes,
		}); err != nil {
			t.Fatal(err)
		}
		if counter.writes != 0 {
			t.Errorf("consistency check performed %d writes", counter.writes)
		}
	})
}

type countingPlane struct {
	inner  *spdk.Plane
	writes int
}

func (c *countingPlane) Write(p *sim.Proc, off, length int64, data []byte, cmdUnit int64) error {
	c.writes++
	return c.inner.Write(p, off, length, data, cmdUnit)
}

func (c *countingPlane) Read(p *sim.Proc, off, length int64, cmdUnit int64) ([]byte, error) {
	return c.inner.Read(p, off, length, cmdUnit)
}

func (c *countingPlane) Flush(p *sim.Proc) error { return c.inner.Flush(p) }
func (c *countingPlane) Size() int64             { return c.inner.Size() }
