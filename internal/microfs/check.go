package microfs

import (
	"fmt"

	"github.com/nvme-cr/nvmecr/internal/plane"
	"github.com/nvme-cr/nvmecr/internal/sim"
)

// Report is the result of a partition consistency check.
type Report struct {
	// SnapshotValid reports whether a committed metadata snapshot was
	// found with a good CRC; SnapshotBytes and SnapshotSlot describe it.
	SnapshotValid bool
	SnapshotBytes int64
	SnapshotSlot  int
	// LogRecords is the number of valid provenance records after the
	// snapshot; LogBytes their on-SSD extent.
	LogRecords int64
	LogBytes   int64
	// Files/Dirs/DataBytes summarize the recovered namespace.
	Files     int
	Dirs      int
	DataBytes int64
	// Problems lists non-fatal findings (torn final record, missing
	// snapshot).
	Problems []string
}

// String renders the report for humans.
func (r *Report) String() string {
	s := "microfs partition check:\n"
	if r.SnapshotValid {
		s += fmt.Sprintf("  snapshot: valid, %d bytes in slot %d\n", r.SnapshotBytes, r.SnapshotSlot)
	} else {
		s += "  snapshot: none (log-only recovery)\n"
	}
	s += fmt.Sprintf("  provenance log: %d records, %d bytes\n", r.LogRecords, r.LogBytes)
	s += fmt.Sprintf("  namespace: %d files, %d directories, %d data bytes\n", r.Files, r.Dirs, r.DataBytes)
	if len(r.Problems) == 0 {
		s += "  clean\n"
	}
	for _, p := range r.Problems {
		s += fmt.Sprintf("  problem: %s\n", p)
	}
	return s
}

// Check verifies a partition's on-SSD metadata without mutating it: it
// performs a full recovery into a scratch instance (snapshot CRC, log
// scan, record replay, deterministic block re-derivation) and summarizes
// what it found. The partition must be readable through pl (a capturing
// simulated device or a real TCP NVMe-oF target).
func Check(p *sim.Proc, env *sim.Env, pl plane.Plane, cfg Config) (*Report, error) {
	cfg.Plane = roPlane{pl}
	cfg.Account = nil
	inst, err := New(env, cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := inst.Recover(p); err != nil {
		return nil, fmt.Errorf("microfs: check: %w", err)
	}
	rep.SnapshotValid = inst.snapLen > 0
	rep.SnapshotBytes = inst.snapLen
	rep.SnapshotSlot = inst.snapSlot
	rep.LogRecords = inst.log.Records()
	rep.LogBytes = inst.log.Head()
	if !rep.SnapshotValid {
		rep.Problems = append(rep.Problems, "no metadata snapshot committed; recovery replays the full log")
	}
	for _, ino := range inst.inodes {
		if ino.id == rootIno {
			continue
		}
		if ino.isDir {
			rep.Dirs++
		} else {
			rep.Files++
			rep.DataBytes += ino.size
		}
	}
	return rep, nil
}

// roPlane guards Check against writes: recovery is read-only, and any
// write reaching the device would be a checker bug.
type roPlane struct {
	inner plane.Plane
}

func (r roPlane) Write(p *sim.Proc, off, length int64, data []byte, cmdUnit int64) error {
	return fmt.Errorf("microfs: consistency check attempted a device write at %d", off)
}

func (r roPlane) Read(p *sim.Proc, off, length int64, cmdUnit int64) ([]byte, error) {
	return r.inner.Read(p, off, length, cmdUnit)
}

func (r roPlane) Flush(p *sim.Proc) error { return nil }
func (r roPlane) Size() int64             { return r.inner.Size() }
