package microfs

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/vfs"
)

func TestRenameCommitIdiom(t *testing.T) {
	// The atomic-checkpoint idiom: write to a temp name, fsync, rename
	// into place.
	r := newRig(t, nil)
	payload := bytes.Repeat([]byte("atomic"), 10000)
	r.run(t, func(p *sim.Proc) {
		f, err := r.inst.Open(p, "/ckpt.tmp", vfs.O_WRONLY|vfs.O_CREATE|vfs.O_EXCL, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		vfs.WriteAll(p, f, payload, 32*model.KB)
		f.Fsync(p)
		f.Close(p)
		if err := r.inst.Rename(p, "/ckpt.tmp", "/ckpt.dat"); err != nil {
			t.Fatal(err)
		}
		if _, err := r.inst.Stat(p, "/ckpt.tmp"); err != vfs.ErrNotExist {
			t.Errorf("old name still visible: %v", err)
		}
		g, err := r.inst.Open(p, "/ckpt.dat", vfs.O_RDONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, len(payload))
		n, _ := g.Read(p, buf)
		if n != len(payload) || !bytes.Equal(buf, payload) {
			t.Fatal("content changed across rename")
		}
		g.Close(p)
	})
}

func TestRenameErrors(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *sim.Proc) {
		if err := r.inst.Rename(p, "/missing", "/x"); err != vfs.ErrNotExist {
			t.Errorf("rename missing: %v", err)
		}
		a, _ := r.inst.Open(p, "/a", vfs.O_WRONLY|vfs.O_CREATE|vfs.O_EXCL, 0o644)
		a.Close(p)
		b, _ := r.inst.Open(p, "/b", vfs.O_WRONLY|vfs.O_CREATE|vfs.O_EXCL, 0o644)
		b.Close(p)
		if err := r.inst.Rename(p, "/a", "/b"); err != vfs.ErrExist {
			t.Errorf("rename onto existing: %v", err)
		}
		if err := r.inst.Rename(p, "/a", "/nodir/x"); err == nil {
			t.Error("rename into missing directory accepted")
		}
		r.inst.Mkdir(p, "/d", 0o755)
		if err := r.inst.Rename(p, "/d", "/d2"); err != vfs.ErrIsDir {
			t.Errorf("directory rename: %v", err)
		}
	})
}

func TestRenameSurvivesRecovery(t *testing.T) {
	r := newRig(t, nil)
	payload := []byte("renamed and recovered")
	r.run(t, func(p *sim.Proc) {
		f, _ := r.inst.Open(p, "/tmp.0", vfs.O_WRONLY|vfs.O_CREATE|vfs.O_EXCL, 0o644)
		f.Write(p, payload)
		f.Close(p)
		r.inst.Rename(p, "/tmp.0", "/final.dat")
		// Crash + recover: the rename record must replay.
		inst2 := r.freshInstance(t)
		if err := inst2.Recover(p); err != nil {
			t.Fatal(err)
		}
		if _, err := inst2.Stat(p, "/tmp.0"); err != vfs.ErrNotExist {
			t.Errorf("temp name resurfaced after recovery: %v", err)
		}
		g, err := inst2.Open(p, "/final.dat", vfs.O_RDONLY, 0)
		if err != nil {
			t.Fatalf("renamed file missing after recovery: %v", err)
		}
		buf := make([]byte, len(payload))
		n, _ := g.Read(p, buf)
		if n != len(payload) || !bytes.Equal(buf, payload) {
			t.Fatal("renamed content corrupt after recovery")
		}
		g.Close(p)
	})
}

func TestReadDirListing(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *sim.Proc) {
		r.inst.Mkdir(p, "/ckpt", 0o755)
		r.inst.Mkdir(p, "/ckpt/sub", 0o755)
		for i := 0; i < 5; i++ {
			f, _ := r.inst.Open(p, fmt.Sprintf("/ckpt/step%03d.dat", i), vfs.O_WRONLY|vfs.O_CREATE|vfs.O_EXCL, 0o644)
			f.WriteN(p, int64(i+1)*1024)
			f.Close(p)
		}
		// A grandchild must not appear in /ckpt's listing.
		g, _ := r.inst.Open(p, "/ckpt/sub/deep.dat", vfs.O_WRONLY|vfs.O_CREATE|vfs.O_EXCL, 0o644)
		g.Close(p)

		entries, err := r.inst.ReadDir(p, "/ckpt")
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 6 { // 5 files + 1 subdir
			t.Fatalf("ReadDir = %d entries, want 6: %+v", len(entries), entries)
		}
		// Sorted by name; sizes correct.
		for i := 1; i < len(entries); i++ {
			if entries[i-1].Path >= entries[i].Path {
				t.Errorf("entries not sorted: %q >= %q", entries[i-1].Path, entries[i].Path)
			}
		}
		for _, e := range entries {
			if e.Path == "/ckpt/step002.dat" && e.Size != 3*1024 {
				t.Errorf("step002 size = %d", e.Size)
			}
			if e.Path == "/ckpt/sub" && !e.IsDir {
				t.Error("subdirectory not flagged as dir")
			}
		}
		// Root listing includes /ckpt.
		root, err := r.inst.ReadDir(p, "/")
		if err != nil || len(root) != 1 || root[0].Path != "/ckpt" {
			t.Errorf("root listing = %+v, %v", root, err)
		}
		// Errors.
		if _, err := r.inst.ReadDir(p, "/missing"); err != vfs.ErrNotExist {
			t.Errorf("ReadDir missing: %v", err)
		}
		if _, err := r.inst.ReadDir(p, "/ckpt/step000.dat"); err != vfs.ErrNotDir {
			t.Errorf("ReadDir on file: %v", err)
		}
	})
}

func TestReadDirDiscoversLatestCheckpoint(t *testing.T) {
	// The restart-discovery pattern: list the checkpoint directory and
	// pick the newest step.
	r := newRig(t, nil)
	r.run(t, func(p *sim.Proc) {
		r.inst.Mkdir(p, "/ckpt", 0o755)
		for i := 0; i < 7; i++ {
			f, _ := r.inst.Open(p, fmt.Sprintf("/ckpt/step%05d.dat", i*10), vfs.O_WRONLY|vfs.O_CREATE|vfs.O_EXCL, 0o644)
			f.Close(p)
		}
		entries, err := r.inst.ReadDir(p, "/ckpt")
		if err != nil {
			t.Fatal(err)
		}
		latest := entries[len(entries)-1].Path
		if latest != "/ckpt/step00060.dat" {
			t.Errorf("latest = %q", latest)
		}
	})
}
