package microfs

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/nvme-cr/nvmecr/internal/model"
	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/vfs"
	"github.com/nvme-cr/nvmecr/internal/wal"
)

// dirEntryBytes is the on-SSD size of one directory entry appended to
// the parent directory file.
const dirEntryBytes = 64

// enter marks p as the process executing inside the instance; internal
// layers (the WAL flush callback) use it to issue device IO.
func (inst *Instance) enter(p *sim.Proc) func() {
	prev := inst.curProc
	inst.curProc = p
	return func() { inst.curProc = prev }
}

// metaLock serializes the operation through the emulated global
// namespace when the private-namespace feature is disabled.
func (inst *Instance) metaLock(p *sim.Proc) func() {
	g := inst.cfg.GlobalNS
	if g == nil {
		return func() {}
	}
	t0 := p.Now()
	g.Lock.Acquire(p)
	inst.acct.Attribute(vfs.IOWait, p.Now()-t0)
	inst.acct.Charge(p, vfs.User, g.ServiceTime)
	return g.Lock.Release
}

// logOp appends a provenance record (flushing it to the SSD) and, when
// provenance is disabled, additionally journals the full inode and
// physical per-block records the way conventional filesystems do.
func (inst *Instance) logOp(p *sim.Proc, rec wal.Record) error {
	inst.acct.Charge(p, vfs.User, inst.cfg.Host.LogAppend)
	if _, err := inst.log.Append(rec); err != nil {
		if errors.Is(err, wal.ErrLogFull) {
			// Forced synchronous snapshot to reclaim log space.
			if serr := inst.SnapshotNow(p); serr != nil {
				return serr
			}
			_, err = inst.log.Append(rec)
		}
		if err != nil {
			return err
		}
	}
	if !inst.cfg.Features.Provenance {
		// Physical journaling, as conventional filesystems do: a full
		// inode block, plus one 4 KB journal block per 8 data blocks
		// touched (bitmaps and extent-tree blocks). Metadata
		// provenance replaces all of this with one compact record.
		extra := int64(4 * model.KB)
		if rec.Op == wal.OpWrite {
			blocks := (int64(rec.Length) + inst.pool.BlockSize() - 1) / inst.pool.BlockSize()
			extra += 4 * model.KB * ((blocks + 7) / 8)
		}
		if err := inst.cfg.Plane.Write(p, 0, extra, nil, 4*model.KB); err != nil {
			return err
		}
	}
	return nil
}

// Mkdir implements vfs.Client.
func (inst *Instance) Mkdir(p *sim.Proc, path string, mode uint32) error {
	defer inst.enter(p)()
	defer inst.metaLock(p)()
	path, err := normalize(path)
	if err != nil {
		return err
	}
	inst.acct.Charge(p, vfs.User, inst.cfg.Host.BTreeOp+inst.cfg.Host.InodeAlloc)
	ino, err := inst.applyCreate(path, mode, true)
	if err != nil {
		return err
	}
	if err := inst.logOp(p, wal.Record{Op: wal.OpMkdir, Path: path, Inode: ino.id, Mode: mode}); err != nil {
		return err
	}
	if err := inst.writeDirTail(p, parentOf(path)); err != nil {
		return err
	}
	inst.stats.Mkdirs++
	return nil
}

// Open implements vfs.Backend. With O_CREATE an absent file is created
// (one provenance record, like the old Create entry point); O_EXCL
// makes an existing file an error; a writable O_TRUNC logs a truncate
// record and drops the file to zero length (blocks stay allocated so
// replayed block placement is unchanged); O_APPEND positions the handle
// at end-of-file.
func (inst *Instance) Open(p *sim.Proc, path string, flags vfs.OpenFlags, mode uint32) (vfs.File, error) {
	defer inst.enter(p)()
	path, err := normalize(path)
	if err != nil {
		return nil, err
	}
	inst.acct.Charge(p, vfs.User, inst.cfg.Host.BTreeOp)
	ino, lerr := inst.lookup(path)
	switch {
	case lerr == nil:
		if flags.Has(vfs.O_CREATE) && flags.Has(vfs.O_EXCL) {
			return nil, vfs.ErrExist
		}
		if ino.isDir {
			return nil, vfs.ErrIsDir
		}
		if flags.Writable() && ino.mode&0o200 == 0 {
			return nil, vfs.ErrPerm
		}
		if flags.Readable() && ino.mode&0o400 == 0 {
			return nil, vfs.ErrPerm
		}
		if flags.Has(vfs.O_TRUNC) && flags.Writable() && ino.size > 0 {
			unlock := inst.metaLock(p)
			terr := inst.logOp(p, wal.Record{Op: wal.OpTruncate, Inode: ino.id, Length: 0})
			unlock()
			if terr != nil {
				return nil, terr
			}
			ino.size = 0
			inst.touch(ino)
		}
		inst.stats.Opens++
	case errors.Is(lerr, vfs.ErrNotExist) && flags.Has(vfs.O_CREATE):
		unlock := inst.metaLock(p)
		inst.acct.Charge(p, vfs.User, inst.cfg.Host.InodeAlloc)
		ino, err = inst.applyCreate(path, mode, false)
		if err == nil {
			err = inst.logOp(p, wal.Record{Op: wal.OpCreate, Path: path, Inode: ino.id, Mode: mode})
		}
		if err == nil {
			err = inst.writeDirTail(p, parentOf(path))
		}
		unlock()
		if err != nil {
			return nil, err
		}
		inst.stats.Creates++
	default:
		return nil, lerr
	}
	f := &file{inst: inst, ino: ino, writable: flags.Writable(), readable: flags.Readable()}
	if flags.Has(vfs.O_APPEND) {
		f.pos = ino.size
	}
	ino.opens++
	inst.openCnt++
	return f, nil
}

// Unlink implements vfs.Client.
func (inst *Instance) Unlink(p *sim.Proc, path string) error {
	defer inst.enter(p)()
	defer inst.metaLock(p)()
	path, err := normalize(path)
	if err != nil {
		return err
	}
	inst.acct.Charge(p, vfs.User, inst.cfg.Host.BTreeOp)
	ino, err := inst.lookup(path)
	if err != nil {
		return err
	}
	if err := inst.logOp(p, wal.Record{Op: wal.OpUnlink, Path: path, Inode: ino.id}); err != nil {
		return err
	}
	if err := inst.applyUnlink(path); err != nil {
		return err
	}
	inst.stats.Unlinks++
	inst.closeSig.Fire()
	return nil
}

// Rename implements vfs.Client: the atomic commit step of the
// write-to-temp-then-rename checkpoint idiom. Both names live in this
// process's private namespace, so no coordination is needed; one
// provenance record makes it durable.
func (inst *Instance) Rename(p *sim.Proc, oldPath, newPath string) error {
	defer inst.enter(p)()
	defer inst.metaLock(p)()
	oldPath, err := normalize(oldPath)
	if err != nil {
		return err
	}
	newPath, err = normalize(newPath)
	if err != nil {
		return err
	}
	inst.acct.Charge(p, vfs.User, 2*inst.cfg.Host.BTreeOp)
	ino, err := inst.lookup(oldPath)
	if err != nil {
		return err
	}
	if err := inst.logOp(p, wal.Record{Op: wal.OpRename, Path: oldPath, Path2: newPath, Inode: ino.id}); err != nil {
		return err
	}
	if err := inst.applyRename(oldPath, newPath); err != nil {
		return err
	}
	return inst.writeDirTail(p, parentOf(newPath))
}

// applyRename mutates metadata for a rename (shared with replay).
func (inst *Instance) applyRename(oldPath, newPath string) error {
	ino, err := inst.lookup(oldPath)
	if err != nil {
		return err
	}
	if ino.isDir {
		return vfs.ErrIsDir
	}
	parent, err := inst.lookup(parentOf(newPath))
	if err != nil {
		return fmt.Errorf("microfs: parent of %q: %w", newPath, err)
	}
	if !parent.isDir {
		return vfs.ErrNotDir
	}
	if _, exists := inst.tree.Get(newPath); exists {
		return vfs.ErrExist
	}
	inst.tree.Delete(oldPath)
	inst.tree.Insert(newPath, ino.id)
	// The destination directory gains an entry (the source's entry is
	// tombstoned, like unlink).
	return func() error {
		_, err := inst.growTo(parent, parent.size+dirEntryBytes)
		return err
	}()
}

// ReadDir implements vfs.Client: the B+Tree's ordered iteration makes
// the listing a single range scan.
func (inst *Instance) ReadDir(p *sim.Proc, path string) ([]vfs.FileInfo, error) {
	defer inst.enter(p)()
	path, err := normalize(path)
	if err != nil {
		return nil, err
	}
	dir, err := inst.lookup(path)
	if err != nil {
		return nil, err
	}
	if !dir.isDir {
		return nil, vfs.ErrNotDir
	}
	prefix := path
	if prefix != "/" {
		prefix += "/"
	}
	// Range-scan [prefix, prefix+0xFF); skip grandchildren.
	var out []vfs.FileInfo
	inst.tree.AscendRange(prefix, prefix+"\xff", func(name string, id uint64) bool {
		inst.acct.Attribute(vfs.User, inst.cfg.Host.BTreeOp)
		rest := name[len(prefix):]
		if rest == "" || strings.ContainsRune(rest, '/') {
			return true
		}
		if ino, ok := inst.inodes[id]; ok {
			out = append(out, vfs.FileInfo{
				Path: name, Size: ino.size, Inode: ino.id, Mode: ino.mode, IsDir: ino.isDir,
				ModTime: ino.mtime,
			})
		}
		return true
	})
	p.Sleep(time.Duration(len(out)) * inst.cfg.Host.BTreeOp)
	return out, nil
}

// Stat implements vfs.Client.
func (inst *Instance) Stat(p *sim.Proc, path string) (vfs.FileInfo, error) {
	defer inst.enter(p)()
	path, err := normalize(path)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	inst.acct.Charge(p, vfs.User, inst.cfg.Host.BTreeOp)
	ino, err := inst.lookup(path)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	return vfs.FileInfo{
		Path: path, Size: ino.size, Inode: ino.id, Mode: ino.mode, IsDir: ino.isDir,
		ModTime: ino.mtime,
	}, nil
}

// lookup resolves a normalized path to its inode.
func (inst *Instance) lookup(path string) (*inode, error) {
	id, ok := inst.tree.Get(path)
	if !ok {
		return nil, vfs.ErrNotExist
	}
	ino, ok := inst.inodes[id]
	if !ok {
		return nil, fmt.Errorf("microfs: dangling inode %d for %q", id, path)
	}
	return ino, nil
}

// applyCreate mutates metadata for a create/mkdir. It performs no IO and
// no logging, so the recovery path replays it verbatim; block placement
// stays deterministic because the parent directory entry growth below
// allocates from the circular pool in call order.
func (inst *Instance) applyCreate(path string, mode uint32, isDir bool) (*inode, error) {
	if path == rootPath {
		return nil, vfs.ErrExist
	}
	parent, err := inst.lookup(parentOf(path))
	if err != nil {
		return nil, fmt.Errorf("microfs: parent of %q: %w", path, err)
	}
	if !parent.isDir {
		return nil, vfs.ErrNotDir
	}
	if _, ok := inst.tree.Get(path); ok {
		return nil, vfs.ErrExist
	}
	ino := &inode{id: inst.nextIno, mode: mode, isDir: isDir}
	inst.touch(ino)
	inst.nextIno++
	inst.inodes[ino.id] = ino
	inst.tree.Insert(path, ino.id)
	// Append the directory entry to the parent directory file.
	if _, err := inst.growTo(parent, parent.size+dirEntryBytes); err != nil {
		return nil, err
	}
	return ino, nil
}

// applyUnlink mutates metadata for an unlink, freeing blocks in
// deterministic (file) order.
func (inst *Instance) applyUnlink(path string) error {
	ino, err := inst.lookup(path)
	if err != nil {
		return err
	}
	if ino.isDir {
		return vfs.ErrIsDir
	}
	for _, b := range ino.blocks {
		if err := inst.pool.FreeBlock(b); err != nil {
			return err
		}
	}
	inst.tree.Delete(path)
	delete(inst.inodes, ino.id)
	return nil
}

// growTo extends ino with pool blocks so it can hold newEnd bytes,
// returning the number of blocks allocated.
func (inst *Instance) growTo(ino *inode, newEnd int64) (int64, error) {
	if newEnd <= ino.size {
		return 0, nil
	}
	need := inst.pool.BlocksFor(newEnd) - int64(len(ino.blocks))
	if need > 0 {
		blocks, err := inst.pool.AllocN(need)
		if err != nil {
			return 0, vfs.ErrNoSpace
		}
		ino.blocks = append(ino.blocks, blocks...)
	}
	ino.size = newEnd
	if need < 0 {
		need = 0
	}
	return need, nil
}

// writeDirTail persists the parent directory file's tail hugeblock (the
// block holding the just-appended entry).
func (inst *Instance) writeDirTail(p *sim.Proc, parentPath string) error {
	parent, err := inst.lookup(parentPath)
	if err != nil {
		return err
	}
	if len(parent.blocks) == 0 {
		return nil
	}
	hb := inst.pool.BlockSize()
	tail := parent.blocks[len(parent.blocks)-1]
	return inst.cfg.Plane.Write(p, inst.dataBase+inst.pool.Offset(tail), hb, nil, hb)
}

// blockRun is a contiguous device range backing a contiguous file range.
type blockRun struct {
	devOff  int64
	fileOff int64
	n       int64
}

// runsFor returns the device runs covering file range [off, off+n).
func (inst *Instance) runsFor(ino *inode, off, n int64) ([]blockRun, error) {
	if n <= 0 {
		return nil, nil
	}
	hb := inst.pool.BlockSize()
	end := off + n
	if inst.pool.BlocksFor(end) > int64(len(ino.blocks)) {
		return nil, fmt.Errorf("microfs: range [%d,+%d) beyond allocated blocks of inode %d", off, n, ino.id)
	}
	var runs []blockRun
	pos := off
	for pos < end {
		bi := pos / hb
		within := pos % hb
		b := ino.blocks[bi]
		// Extend the run across physically consecutive blocks.
		last := bi
		for last+1 < int64(len(ino.blocks)) && (last+1)*hb < end && ino.blocks[last+1] == ino.blocks[last]+1 {
			last++
		}
		runEnd := (last + 1) * hb
		if runEnd > end {
			runEnd = end
		}
		runs = append(runs, blockRun{
			devOff:  inst.dataBase + inst.pool.Offset(b) + within,
			fileOff: pos,
			n:       runEnd - pos,
		})
		pos = runEnd
	}
	return runs, nil
}
