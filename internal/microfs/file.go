package microfs

import (
	"time"

	"github.com/nvme-cr/nvmecr/internal/sim"
	"github.com/nvme-cr/nvmecr/internal/vfs"
	"github.com/nvme-cr/nvmecr/internal/wal"
)

// file is an open handle onto a microfs inode.
type file struct {
	inst     *Instance
	ino      *inode
	pos      int64
	writable bool
	readable bool
	closed   bool
}

// Write implements vfs.File.
func (f *file) Write(p *sim.Proc, data []byte) (int, error) {
	n, err := f.write(p, data, int64(len(data)))
	return int(n), err
}

// WriteN implements vfs.File.
func (f *file) WriteN(p *sim.Proc, n int64) (int64, error) {
	return f.write(p, nil, n)
}

func (f *file) write(p *sim.Proc, data []byte, n int64) (int64, error) {
	inst := f.inst
	defer inst.traceSpan(p, "microfs.write", n)()
	defer inst.enter(p)()
	if f.closed {
		return 0, vfs.ErrClosed
	}
	if !f.writable {
		return 0, vfs.ErrReadOnly
	}
	if n == 0 {
		return 0, nil
	}
	// Write-ahead: the operation is logged (and the log flushed)
	// before the data lands, so metadata is always consistent.
	if err := inst.logOp(p, wal.Record{
		Op: wal.OpWrite, Inode: f.ino.id, Offset: uint64(f.pos), Length: uint64(n),
	}); err != nil {
		return 0, err
	}
	allocated, err := inst.growTo(f.ino, f.pos+n)
	if err != nil {
		return 0, err
	}
	if allocated > 0 {
		inst.acct.Charge(p, vfs.User, time.Duration(allocated)*inst.cfg.Host.BlockAlloc)
	}
	if g := inst.cfg.GlobalNS; g != nil && g.PerBlockJournal > 0 {
		// Base-design emulation: per-block allocation/journal work
		// serialized across every instance sharing the namespace.
		blocks := (n + inst.pool.BlockSize() - 1) / inst.pool.BlockSize()
		t0 := p.Now()
		g.Lock.Acquire(p)
		inst.acct.Attribute(vfs.IOWait, p.Now()-t0)
		inst.acct.Charge(p, vfs.Kernel, time.Duration(blocks)*g.PerBlockJournal)
		g.Lock.Release()
	}
	runs, err := inst.runsFor(f.ino, f.pos, n)
	if err != nil {
		return 0, err
	}
	hb := inst.pool.BlockSize()
	var written int64
	for _, r := range runs {
		var payload []byte
		if data != nil {
			payload = data[r.fileOff-f.pos : r.fileOff-f.pos+r.n]
		}
		if err := inst.cfg.Plane.Write(p, r.devOff, r.n, payload, hb); err != nil {
			return written, err
		}
		written += r.n
	}
	f.pos += n
	inst.touch(f.ino)
	inst.stats.Writes++
	inst.stats.BytesWritten += n
	return n, nil
}

// Read implements vfs.File.
func (f *file) Read(p *sim.Proc, buf []byte) (int, error) {
	out, n, err := f.read(p, int64(len(buf)), true)
	if n > 0 && out != nil {
		copy(buf, out)
	}
	return int(n), err
}

// ReadN implements vfs.File.
func (f *file) ReadN(p *sim.Proc, n int64) (int64, error) {
	_, got, err := f.read(p, n, false)
	return got, err
}

func (f *file) read(p *sim.Proc, n int64, wantData bool) ([]byte, int64, error) {
	inst := f.inst
	defer inst.enter(p)()
	if f.closed {
		return nil, 0, vfs.ErrClosed
	}
	if !f.readable {
		return nil, 0, vfs.ErrWriteOnly
	}
	if f.pos >= f.ino.size {
		return nil, 0, nil // EOF
	}
	if f.pos+n > f.ino.size {
		n = f.ino.size - f.pos
	}
	runs, err := inst.runsFor(f.ino, f.pos, n)
	if err != nil {
		return nil, 0, err
	}
	hb := inst.pool.BlockSize()
	var out []byte
	if wantData {
		out = make([]byte, 0, n)
	}
	var got int64
	for _, r := range runs {
		data, err := inst.cfg.Plane.Read(p, r.devOff, r.n, hb)
		if err != nil {
			return nil, got, err
		}
		if wantData {
			if data == nil {
				// Backing device does not capture payloads.
				data = make([]byte, r.n)
			}
			out = append(out, data...)
		}
		got += r.n
	}
	f.pos += got
	inst.stats.Reads++
	inst.stats.BytesRead += got
	return out, got, nil
}

// SeekTo implements vfs.File.
func (f *file) SeekTo(offset int64) error {
	if f.closed {
		return vfs.ErrClosed
	}
	if offset < 0 {
		offset = 0
	}
	f.pos = offset
	return nil
}

// Fsync implements vfs.File. NVMe-CR never buffers writes and flushes
// the log on every operation, so fsync is a single device flush command.
func (f *file) Fsync(p *sim.Proc) error {
	defer f.inst.traceSpan(p, "microfs.fsync", -1)()
	defer f.inst.enter(p)()
	if f.closed {
		return vfs.ErrClosed
	}
	return f.inst.cfg.Plane.Flush(p)
}

// Close implements vfs.File. Closing the last handle signals the
// background snapshot thread, which checkpoints internal metadata when
// the application's checkpoint phase ends.
func (f *file) Close(p *sim.Proc) error {
	defer f.inst.enter(p)()
	if f.closed {
		return vfs.ErrClosed
	}
	f.closed = true
	f.ino.opens--
	f.inst.openCnt--
	f.inst.closeSig.Fire()
	return nil
}
